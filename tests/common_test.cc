#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/arena.h"
#include "common/ophash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/value.h"

namespace hdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table t");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: table t");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

Result<int> Chain(int x) {
  HDB_ASSIGN_OR_RETURN(const int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, ValueAndErrorPaths) {
  EXPECT_EQ(*Chain(4), 9);
  EXPECT_EQ(Chain(-1).status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, OkStatusNormalizedToInternal) {
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ValueTest, NullOrdering) {
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Int(5).Compare(Value::Double(5.0)), 0);
  EXPECT_LT(Value::Int(5).Compare(Value::Double(5.5)), 0);
  EXPECT_GT(Value::Bigint(10).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, HashEqualValuesAgree) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Bigint(42).Hash());
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::String("hello").Hash(), Value::String("hello").Hash());
  EXPECT_NE(Value::String("hello").Hash(), Value::String("world").Hash());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Boolean(true).ToString(), "TRUE");
}

// Property: the order-preserving hash preserves Value ordering for every
// same-type pair.
class OpHashProperty : public ::testing::TestWithParam<TypeId> {};

TEST_P(OpHashProperty, PreservesOrder) {
  const TypeId type = GetParam();
  Rng rng(123);
  auto make = [&](int i) -> Value {
    switch (type) {
      case TypeId::kInt:
        return Value::Int(static_cast<int32_t>(rng.UniformRange(-1000, 1000)));
      case TypeId::kBigint:
        return Value::Bigint(rng.UniformRange(-100000, 100000));
      case TypeId::kDouble:
        return Value::Double(rng.NextDouble() * 2000 - 1000);
      case TypeId::kDate:
        return Value::Date(rng.UniformRange(0, 40000));
      case TypeId::kVarchar: {
        std::string s;
        const int len = static_cast<int>(rng.Uniform(6)) + 1;
        for (int k = 0; k < len; ++k) {
          s.push_back(static_cast<char>('a' + rng.Uniform(26)));
        }
        return Value::String(s);
      }
      default:
        return Value::Int(i);
    }
  };
  for (int i = 0; i < 500; ++i) {
    const Value a = make(i);
    const Value b = make(i + 1);
    const double ha = OrderPreservingHash(a);
    const double hb = OrderPreservingHash(b);
    if (a.Compare(b) < 0) {
      EXPECT_LE(ha, hb) << a.ToString() << " vs " << b.ToString();
    } else if (a.Compare(b) > 0) {
      EXPECT_GE(ha, hb) << a.ToString() << " vs " << b.ToString();
    } else {
      EXPECT_EQ(ha, hb);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, OpHashProperty,
                         ::testing::Values(TypeId::kInt, TypeId::kBigint,
                                           TypeId::kDouble, TypeId::kDate,
                                           TypeId::kVarchar));

TEST(OpHashTest, NullIsMinusInfinity) {
  EXPECT_EQ(OrderPreservingHash(Value::Null()),
            -std::numeric_limits<double>::infinity());
}

TEST(OpHashTest, ShortStringPrefixCollisions) {
  // Strings identical in the first 7 bytes collide — documented behavior.
  EXPECT_EQ(OrderPreservingHash(Value::String("abcdefgXXX")),
            OrderPreservingHash(Value::String("abcdefgYYY")));
}

TEST(OpHashTest, WordExtraction) {
  const auto words = ExtractWords("  Hello   World\tfoo\nBar ");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], "hello");
  EXPECT_EQ(words[3], "bar");
}

TEST(OpHashTest, LongStringHashCaseInsensitive) {
  EXPECT_EQ(LongStringHash("Hello"), LongStringHash("hello"));
  EXPECT_NE(LongStringHash("hello"), LongStringHash("hellp"));
}

TEST(ArenaTest, BumpAllocationAndHighWater) {
  Arena arena(/*budget=*/0, /*block=*/1024);
  void* a = arena.Allocate(100);
  void* b = arena.Allocate(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.bytes_used(), 200u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.high_water_mark(), 200u);
}

TEST(ArenaTest, BudgetEnforced) {
  Arena arena(/*budget=*/256);
  EXPECT_NE(arena.Allocate(200), nullptr);
  EXPECT_EQ(arena.Allocate(200), nullptr);  // over budget
  arena.Reset();
  EXPECT_NE(arena.Allocate(200), nullptr);  // budget is about live bytes
}

TEST(ArenaTest, TypedNew) {
  Arena arena;
  struct Point {
    int x = 3, y = 4;
  };
  Point* p = arena.New<Point>();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->x + p->y, 7);
}

TEST(RngTest, Deterministic) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformRangeBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(ZipfTest, SkewProducesFrequentHead) {
  ZipfGenerator zipf(1000, 1.2, 7);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[zipf.Next()]++;
  // Rank 0 must dominate: at least 10x the median draw frequency.
  EXPECT_GT(counts[0], 1000);
}

}  // namespace
}  // namespace hdb
