// Positive control for ThreadSafety.negative: correctly-locked code that
// MUST compile cleanly under -Werror=thread-safety. If this file fails,
// the harness's compiler or flags are broken — and a "failing" seeded
// violation would prove nothing — so the ctest fails loudly instead of
// reporting a hollow pass.
#include "common/lock_rank.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    hdb::LockGuard lock(mu_);
    DepositLocked(amount);
  }
  int balance() const {
    hdb::LockGuard lock(mu_);
    return balance_;
  }

 private:
  void DepositLocked(int amount) REQUIRES(mu_) { balance_ += amount; }

  mutable hdb::RankedMutex<hdb::LockRank::kCatalog> mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.Deposit(1);
  return a.balance() == 1 ? 0 : 1;
}
