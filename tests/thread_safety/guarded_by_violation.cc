// Seeded GUARDED_BY violation: reads a guarded field without holding its
// mutex. ThreadSafety.negative asserts this file FAILS to compile under
// -Werror=thread-safety — i.e. the annotations in common/lock_rank.h and
// common/thread_annotations.h actually reject unlocked accesses rather
// than expanding to nothing.
#include "common/lock_rank.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    hdb::LockGuard lock(mu_);
    balance_ += amount;
  }
  // BUG (intentional): unlocked read of a mu_-guarded field.
  int balance_racy() const { return balance_; }

 private:
  mutable hdb::RankedMutex<hdb::LockRank::kCatalog> mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.Deposit(1);
  return a.balance_racy() == 1 ? 0 : 1;
}
