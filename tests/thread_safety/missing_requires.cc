// Seeded REQUIRES violation: calls an assumes-lock-held helper without
// holding the mutex. ThreadSafety.negative asserts this file FAILS to
// compile under -Werror=thread-safety — the *Locked-helper contract
// (DESIGN.md §8.4) is machine-checked, not just a naming convention.
#include "common/lock_rank.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    hdb::LockGuard lock(mu_);
    DepositLocked(amount);
  }
  // BUG (intentional): calls the REQUIRES(mu_) helper with no lock held.
  void deposit_racy(int amount) { DepositLocked(amount); }

 private:
  void DepositLocked(int amount) REQUIRES(mu_) { balance_ += amount; }

  mutable hdb::RankedMutex<hdb::LockRank::kCatalog> mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.Deposit(1);
  a.deposit_racy(1);
  return 0;
}
