// Statement lifecycle tracing tests (DESIGN.md §11): StatementTrace span
// trees and wait attribution at the unit level, the StatementRegistry's
// active/slow machinery, the sys.active_statements / sys.slow_statements
// virtual tables over plain SQL, wait-cause correctness for real lock /
// WAL / spill blocking, Chrome-trace JSON export, and a many-session
// concurrency hammer (run under -DHDB_SANITIZE=thread via
// check_metrics.sh --tsan).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "obs/span_names.h"
#include "obs/trace.h"
#include "optimizer/plan.h"
#include "os/stable_storage.h"

namespace hdb {
namespace {

// Span/wait recording compiles to no-ops under -DHDB_TELEMETRY=OFF (the
// overhead baseline), so tests asserting recorded traces skip there. The
// sys.* schemas and the export scaffolding stay live in both builds.
#ifdef HDB_NO_TELEMETRY
#define SKIP_WITHOUT_TELEMETRY() \
  GTEST_SKIP() << "telemetry compiled out (-DHDB_TELEMETRY=OFF)"
#else
#define SKIP_WITHOUT_TELEMETRY() \
  do {                           \
  } while (false)
#endif

// ---------------------------------------------------------------------------
// StatementTrace units
// ---------------------------------------------------------------------------

TEST(StatementTraceTest, SpanTreeNestsAndRenders) {
  SKIP_WITHOUT_TELEMETRY();
  obs::StatementTrace trace(7, 1, "SELECT ?");
  const uint32_t root = trace.OpenSpan(obs::kSpanExecute);
  const uint32_t child = trace.OpenSpan(obs::kSpanOpSort, "big1");
  EXPECT_EQ(trace.current_span(), obs::kSpanOpSort);
  trace.CloseSpan(child);
  EXPECT_EQ(trace.current_span(), obs::kSpanExecute);
  trace.CloseSpan(root);
  EXPECT_EQ(trace.current_span(), "");

  const auto spans = trace.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_NE(spans[0].end_micros, 0u);
  EXPECT_NE(spans[1].end_micros, 0u);

  const std::string tree = trace.RenderSpanTree();
  EXPECT_NE(tree.find("stmt.phase.execute"), std::string::npos);
  EXPECT_NE(tree.find("\n  op.sort(big1)"), std::string::npos);
}

TEST(StatementTraceTest, OrphanCloseIsContainedAndIdempotent) {
  SKIP_WITHOUT_TELEMETRY();
  obs::StatementTrace trace(1, 1, "x");
  const uint32_t outer = trace.OpenSpan(obs::kSpanExecute);
  const uint32_t parent = trace.OpenSpan(obs::kSpanOpHashJoin);
  const uint32_t child = trace.OpenSpan(obs::kSpanOpSort);
  // Parent closes first (error-path unwind): the child closes with it.
  trace.CloseSpan(parent);
  EXPECT_EQ(trace.current_span(), obs::kSpanExecute);
  // A late close of the already-closed child must not unwind the still
  // open outer span below it.
  trace.CloseSpan(child);
  EXPECT_EQ(trace.current_span(), obs::kSpanExecute);
  trace.CloseSpan(outer);
  EXPECT_EQ(trace.current_span(), "");
}

TEST(StatementTraceTest, SpanCapCountsDrops) {
  SKIP_WITHOUT_TELEMETRY();
  obs::StatementTrace trace(1, 1, "x");
  for (size_t i = 0; i < obs::StatementTrace::kMaxSpans + 10; ++i) {
    const uint32_t id = trace.OpenSpan(obs::kSpanOpSort);
    if (i < obs::StatementTrace::kMaxSpans) {
      EXPECT_NE(id, 0u);
    } else {
      EXPECT_EQ(id, 0u);  // dropped; CloseSpan(0) stays a no-op
    }
    trace.CloseSpan(id);
  }
  EXPECT_EQ(trace.Spans().size(), obs::StatementTrace::kMaxSpans);
  EXPECT_EQ(trace.dropped_spans(), 10u);
}

TEST(StatementTraceTest, WaitRingWrapsButTalliesAreExact) {
  SKIP_WITHOUT_TELEMETRY();
  obs::StatementTrace trace(1, 1, "x");
  const size_t total = obs::StatementTrace::kMaxWaitEvents + 5;
  for (size_t i = 0; i < total; ++i) {
    trace.RecordWait(obs::WaitCause::kLock, /*resource=*/i,
                     /*duration_micros=*/10);
  }
  EXPECT_EQ(trace.wait_count(obs::WaitCause::kLock), total);
  EXPECT_EQ(trace.wait_micros(obs::WaitCause::kLock), total * 10);
  EXPECT_EQ(trace.dropped_wait_events(), 5u);

  const auto events = trace.WaitEvents();
  ASSERT_EQ(events.size(), obs::StatementTrace::kMaxWaitEvents);
  // Oldest surviving first: resources 5, 6, ... in recording order.
  EXPECT_EQ(events.front().resource, 5u);
  EXPECT_EQ(events.back().resource, total - 1);
}

TEST(StatementTraceTest, ScopedHelpersFollowThreadLocalInstall) {
  SKIP_WITHOUT_TELEMETRY();
  EXPECT_EQ(obs::CurrentStatementTrace(), nullptr);
  { obs::ScopedSpan noop(obs::kSpanParse); }  // no trace installed: no-op
  { obs::ScopedWait noop(obs::WaitCause::kLock, 1); }

  obs::StatementTrace trace(1, 1, "x");
  {
    obs::ScopedCurrentTrace install(&trace);
    EXPECT_EQ(obs::CurrentStatementTrace(), &trace);
    {
      // Null install (procedure-body recursion) inherits the outer trace.
      obs::ScopedCurrentTrace nested(nullptr);
      EXPECT_EQ(obs::CurrentStatementTrace(), &trace);
    }
    { obs::ScopedSpan span(obs::kSpanParse); }
    { obs::ScopedWait wait(obs::WaitCause::kWalDurable, 42); }
  }
  EXPECT_EQ(obs::CurrentStatementTrace(), nullptr);
  EXPECT_EQ(trace.Spans().size(), 1u);
  EXPECT_EQ(trace.wait_count(obs::WaitCause::kWalDurable), 1u);

  const auto breakdown = [&] {
    obs::ScopedCurrentTrace install(&trace);
    return obs::CurrentWaitBreakdown();
  }();
  EXPECT_EQ(breakdown.wal_micros,
            trace.wait_micros(obs::WaitCause::kWalDurable));
}

TEST(StatementTraceTest, WaitCauseNamesAreADistinctBijection) {
  std::set<std::string> names;
  for (int i = 0; i < obs::kWaitCauseCount; ++i) {
    const std::string name =
        obs::WaitCauseName(static_cast<obs::WaitCause>(i));
    EXPECT_EQ(name.rfind("wait.", 0), 0u) << name;
    names.insert(name);
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(obs::kWaitCauseCount));
}

// ---------------------------------------------------------------------------
// StatementRegistry units
// ---------------------------------------------------------------------------

TEST(StatementRegistryTest, CapturesSlowStatementsAndClearsActive) {
  SKIP_WITHOUT_TELEMETRY();
  obs::StatementRegistryOptions opts;
  opts.slow_floor_micros = 0;  // capture-all test mode
  obs::StatementRegistry registry(opts);

  {
    auto handle = registry.Begin(3, "SELECT ?");
    EXPECT_EQ(registry.active_count(), 1u);
    obs::ScopedCurrentTrace install(handle.trace());
    { obs::ScopedSpan exec(obs::kSpanExecute); }
    handle.trace()->RecordWait(obs::WaitCause::kAdmission, 8, 17);
    handle.set_ok(false);
  }
  EXPECT_EQ(registry.active_count(), 0u);

  const auto slow = registry.SlowSnapshot();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].conn_id, 3u);
  EXPECT_EQ(slow[0].shape, "SELECT ?");
  EXPECT_FALSE(slow[0].ok);
  EXPECT_EQ(
      slow[0].wait_micros[static_cast<size_t>(obs::WaitCause::kAdmission)],
      17u);
  EXPECT_NE(slow[0].span_tree.find("stmt.phase.execute"), std::string::npos);
}

TEST(StatementRegistryTest, SlowRingKeepsNewestOldestFirst) {
  SKIP_WITHOUT_TELEMETRY();
  obs::StatementRegistryOptions opts;
  opts.slow_floor_micros = 0;
  opts.slow_ring_capacity = 2;
  obs::StatementRegistry registry(opts);
  for (int i = 0; i < 3; ++i) {
    auto handle = registry.Begin(1, "stmt " + std::to_string(i));
  }
  const auto slow = registry.SlowSnapshot();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].shape, "stmt 1");
  EXPECT_EQ(slow[1].shape, "stmt 2");
}

TEST(StatementRegistryTest, ThresholdIsFloorWithoutEnoughSamples) {
  obs::StatementRegistryOptions opts;
  opts.slow_floor_micros = 12'345;
  obs::StatementRegistry registry(opts);
  EXPECT_EQ(registry.SlowThresholdMicros(), 12'345u);
  EXPECT_TRUE(registry.LikelySlow(12'345));
  EXPECT_FALSE(registry.LikelySlow(12'344));
}

// ---------------------------------------------------------------------------
// EXPLAIN rendering of per-operator waits
// ---------------------------------------------------------------------------

TEST(ExplainWaitsTest, RendersOnlyNonZeroCauses) {
  optimizer::PlanNode node;
  node.kind = optimizer::PlanKind::kSeqScan;
  optimizer::OpActualsMap actuals;
  optimizer::OpActuals& a = actuals[&node];
  a.rows = 3;
  a.invocations = 4;

  // All-zero waits: no wait= clause at all.
  EXPECT_EQ(node.Explain(0, &actuals).find("wait="), std::string::npos);

  a.wait_lock_micros = 5;
  a.wait_spill_micros = 7;
  const std::string text = node.Explain(0, &actuals);
  EXPECT_NE(text.find("wait=lock:5us,spill:7us"), std::string::npos);
  EXPECT_EQ(text.find("wal:"), std::string::npos);
  EXPECT_EQ(text.find("pool:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine-level SQL visibility
// ---------------------------------------------------------------------------

engine::DatabaseOptions CaptureAllOptions() {
  engine::DatabaseOptions opts;
  opts.statement_registry.slow_floor_micros = 0;
  return opts;
}

struct Db {
  explicit Db(engine::DatabaseOptions opts = CaptureAllOptions()) {
    auto db = engine::Database::Open(opts);
    EXPECT_TRUE(db.ok());
    database = std::move(*db);
    auto conn = database->Connect();
    EXPECT_TRUE(conn.ok());
    c = std::move(*conn);
  }

  engine::QueryResult Exec(const std::string& sql) {
    auto r = c->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : engine::QueryResult{};
  }

  std::unique_ptr<engine::Database> database;
  std::unique_ptr<engine::Connection> c;
};

TEST(ActiveStatementsTest, ScanSeesItselfExecuting) {
  SKIP_WITHOUT_TELEMETRY();
  Db db;
  const auto r = db.Exec(
      "SELECT stmt_id, sql, current_span FROM sys.active_statements");
  // The scanning statement is live while sys.active_statements
  // materializes, so it observes at least itself — inside its own
  // execute-phase span.
  ASSERT_GE(r.rows.size(), 1u);
  bool found_self = false;
  for (const auto& row : r.rows) {
    if (row[1].AsString().find("ACTIVE_STATEMENTS") != std::string::npos) {
      found_self = true;
      EXPECT_EQ(row[2].AsString(), obs::kSpanExecute);
    }
  }
  EXPECT_TRUE(found_self);
}

TEST(SlowStatementsTest, CapturesPhasesWaitsAndPlanOverSql) {
  SKIP_WITHOUT_TELEMETRY();
  Db db;
  db.Exec("CREATE TABLE t (a INT NOT NULL, b INT)");
  db.Exec("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  db.Exec("SELECT a FROM t ORDER BY b");

  auto conn2 = db.database->Connect();
  ASSERT_TRUE(conn2.ok());
  auto r = (*conn2)->Execute(
      "SELECT sql, ok, total_micros, spans, plan FROM sys.slow_statements");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GE(r->rows.size(), 3u);

  bool saw_select = false;
  for (const auto& row : r->rows) {
    EXPECT_TRUE(row[1].AsBool());  // every statement above succeeded
    if (row[0].AsString().find("ORDER BY") != std::string::npos) {
      saw_select = true;
      const std::string spans = row[3].AsString();
      EXPECT_NE(spans.find("stmt.phase.parse"), std::string::npos);
      EXPECT_NE(spans.find("stmt.phase.admission"), std::string::npos);
      EXPECT_NE(spans.find("stmt.phase.optimize"), std::string::npos);
      EXPECT_NE(spans.find("stmt.phase.execute"), std::string::npos);
      EXPECT_NE(spans.find("op.sort"), std::string::npos);
      // threshold 0 => every statement is "slow" => plan captured
      EXPECT_NE(row[4].AsString().find("Sort"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_select);
}

TEST(SlowStatementsTest, LockConflictRecordsLockWaitCause) {
  SKIP_WITHOUT_TELEMETRY();
  Db db;
  db.Exec("CREATE TABLE t (a INT NOT NULL, b INT)");
  db.Exec("INSERT INTO t VALUES (1, 10), (2, 20)");
  db.Exec("BEGIN");
  db.Exec("UPDATE t SET b = 11 WHERE a = 1");  // holds X locks

  auto conn2 = db.database->Connect();
  ASSERT_TRUE(conn2.ok());
  const auto blocked = (*conn2)->Execute("UPDATE t SET b = 12 WHERE a = 1");
  EXPECT_FALSE(blocked.ok());  // no-wait lock policy aborts the loser
  db.Exec("COMMIT");

  bool saw_lock_wait = false;
  for (const auto& s : db.database->statement_registry().SlowSnapshot()) {
    const size_t lock = static_cast<size_t>(obs::WaitCause::kLock);
    if (!s.ok && s.wait_counts[lock] >= 1) {
      saw_lock_wait = true;
      // The discrete event carries the contended key as its resource.
      bool event_found = false;
      for (const auto& w : s.waits) {
        if (w.cause == obs::WaitCause::kLock) event_found = true;
      }
      EXPECT_TRUE(event_found);
    }
  }
  EXPECT_TRUE(saw_lock_wait);

  // And the cause is SQL-visible as a dedicated column.
  const auto r = db.Exec(
      "SELECT wait_lock_micros FROM sys.slow_statements WHERE ok = FALSE");
  ASSERT_GE(r.rows.size(), 1u);
}

TEST(SlowStatementsTest, CommitRecordsWalDurableWait) {
  SKIP_WITHOUT_TELEMETRY();
  engine::DatabaseOptions opts = CaptureAllOptions();
  opts.media = std::make_shared<os::StableStorage>(opts.page_bytes);
  Db db(opts);
  db.Exec("CREATE TABLE t (a INT NOT NULL)");
  db.Exec("INSERT INTO t VALUES (1), (2), (3)");

  bool saw_commit_span = false;
  bool saw_wal_wait = false;
  for (const auto& s : db.database->statement_registry().SlowSnapshot()) {
    if (s.shape.find("INSERT") == std::string::npos) continue;
    if (s.span_tree.find("stmt.phase.commit") != std::string::npos) {
      saw_commit_span = true;
    }
    const size_t wal = static_cast<size_t>(obs::WaitCause::kWalDurable);
    if (s.wait_counts[wal] >= 1) saw_wal_wait = true;
  }
  EXPECT_TRUE(saw_commit_span);
  EXPECT_TRUE(saw_wal_wait);
}

TEST(SlowStatementsTest, ForcedSpillAttributesSpillWaits) {
  SKIP_WITHOUT_TELEMETRY();
  engine::DatabaseOptions opts = CaptureAllOptions();
  opts.initial_pool_frames = 64;
  opts.memory_governor.multiprogramming_level = 64;  // soft limit ~1 page
  Db db(opts);
  db.Exec("CREATE TABLE big (a INT NOT NULL, v DOUBLE)");
  std::string insert = "INSERT INTO big VALUES ";
  for (int i = 0; i < 2000; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i % 512) + ", " +
              std::to_string(i) + ".5)";
  }
  db.Exec(insert);
  const auto r = db.Exec("SELECT a, v FROM big ORDER BY v");
  ASSERT_EQ(r.rows.size(), 2000u);
  ASSERT_GT(r.exec_stats.spill_bytes_written, 0u) << "spill not forced";

  bool saw_spill = false;
  for (const auto& s : db.database->statement_registry().SlowSnapshot()) {
    if (s.shape.find("ORDER BY") == std::string::npos) continue;
    const size_t w = static_cast<size_t>(obs::WaitCause::kSpillWrite);
    const size_t rd = static_cast<size_t>(obs::WaitCause::kSpillRead);
    if (s.wait_counts[w] >= 1 && s.wait_counts[rd] >= 1 &&
        s.spilled_bytes > 0) {
      saw_spill = true;
      // The forced-spill decision appears as a span under the sort.
      EXPECT_NE(s.span_tree.find("op.spill"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_spill);
}

// ---------------------------------------------------------------------------
// Chrome/Perfetto trace export
// ---------------------------------------------------------------------------

// Minimal structural JSON scan: balanced {}/[] outside strings, no raw
// control characters inside strings. Catches broken escaping without a
// JSON library dependency.
bool JsonIsBalanced(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (static_cast<unsigned char>(ch) < 0x20) return false;
      if (ch == '\\') {
        ++i;  // skip the escaped character
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    switch (ch) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

TEST(TraceExportTest, EmitsWellFormedChromeTraceJson) {
  SKIP_WITHOUT_TELEMETRY();
  Db db;
  db.Exec("CREATE TABLE t (a INT NOT NULL)");
  db.Exec("INSERT INTO t VALUES (1), (2)");
  db.Exec("SELECT a FROM t WHERE a > 0 ORDER BY a");

  const std::string json = db.database->TraceExportJson();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  EXPECT_TRUE(JsonIsBalanced(json)) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"stmt\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"span\""), std::string::npos);
  EXPECT_NE(json.find("stmt.phase.execute"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency (the --tsan target)
// ---------------------------------------------------------------------------

TEST(TraceConcurrencyTest, ParallelSessionsAndReadersStayConsistent) {
  Db db;
  db.Exec("CREATE TABLE t (a INT NOT NULL, b INT)");
  db.Exec("INSERT INTO t VALUES (1, 1), (2, 2), (3, 3), (4, 4)");

  constexpr int kWriters = 4;
  constexpr int kStatementsPerWriter = 40;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&db, w] {
      auto conn = db.database->Connect();
      EXPECT_TRUE(conn.ok());
      if (!conn.ok()) return;
      for (int i = 0; i < kStatementsPerWriter; ++i) {
        switch ((w + i) % 3) {
          case 0:
            (void)(*conn)->Execute("SELECT a, b FROM t ORDER BY b");
            break;
          case 1:
            (void)(*conn)->Execute("INSERT INTO t VALUES (" +
                                   std::to_string(100 + w * 1000 + i) +
                                   ", 5)");
            break;
          default:
            (void)(*conn)->Execute(
                "SELECT stmt_id, current_span, wait_lock_micros FROM "
                "sys.active_statements");
            break;
        }
      }
    });
  }
  // A reader hammering every observation surface while statements run.
  std::thread reader([&db] {
    for (int i = 0; i < 60; ++i) {
      (void)db.database->TraceExportJson();
      (void)db.database->statement_registry().ActiveSnapshot();
      (void)db.database->statement_registry().SlowSnapshot();
      (void)db.database->TelemetrySnapshotJson();
    }
  });
  for (auto& t : threads) t.join();
  reader.join();

  EXPECT_EQ(db.database->statement_registry().active_count(), 0u);
  EXPECT_TRUE(JsonIsBalanced(db.database->TraceExportJson()));
}

}  // namespace
}  // namespace hdb
