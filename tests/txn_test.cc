#include <gtest/gtest.h>

#include "txn/lock_manager.h"
#include "txn/transaction.h"

namespace hdb::txn {
namespace {

struct Fixture {
  Fixture()
      : disk(storage::kDefaultPageBytes, nullptr, nullptr),
        pool(&disk, storage::BufferPoolOptions{.initial_frames = 64}),
        locks(&pool),
        tm(&pool, &locks) {}
  storage::DiskManager disk;
  storage::BufferPool pool;
  LockManager locks;
  TransactionManager tm;
};

TEST(LockManagerTest, SharedLocksCoexist) {
  Fixture f;
  const Rid rid{1, 0};
  EXPECT_TRUE(f.locks.LockRow(1, 10, rid, LockMode::kShared).ok());
  EXPECT_TRUE(f.locks.LockRow(2, 10, rid, LockMode::kShared).ok());
}

TEST(LockManagerTest, ExclusiveConflicts) {
  Fixture f;
  const Rid rid{1, 0};
  EXPECT_TRUE(f.locks.LockRow(1, 10, rid, LockMode::kExclusive).ok());
  EXPECT_EQ(f.locks.LockRow(2, 10, rid, LockMode::kExclusive).code(),
            StatusCode::kAborted);
  EXPECT_EQ(f.locks.LockRow(2, 10, rid, LockMode::kShared).code(),
            StatusCode::kAborted);
}

TEST(LockManagerTest, ReacquisitionIsIdempotent) {
  Fixture f;
  const Rid rid{1, 0};
  EXPECT_TRUE(f.locks.LockRow(1, 10, rid, LockMode::kExclusive).ok());
  EXPECT_TRUE(f.locks.LockRow(1, 10, rid, LockMode::kExclusive).ok());
  EXPECT_TRUE(f.locks.LockRow(1, 10, rid, LockMode::kShared).ok());
}

TEST(LockManagerTest, UpgradeSucceedsForSoleHolder) {
  Fixture f;
  const Rid rid{1, 0};
  EXPECT_TRUE(f.locks.LockRow(1, 10, rid, LockMode::kShared).ok());
  EXPECT_TRUE(f.locks.LockRow(1, 10, rid, LockMode::kExclusive).ok());
}

TEST(LockManagerTest, UpgradeBlockedByOtherReader) {
  Fixture f;
  const Rid rid{1, 0};
  EXPECT_TRUE(f.locks.LockRow(1, 10, rid, LockMode::kShared).ok());
  EXPECT_TRUE(f.locks.LockRow(2, 10, rid, LockMode::kShared).ok());
  EXPECT_EQ(f.locks.LockRow(1, 10, rid, LockMode::kExclusive).code(),
            StatusCode::kAborted);
}

TEST(LockManagerTest, UnlockReleasesEverything) {
  Fixture f;
  const Rid rid{1, 0};
  const uint64_t key = LockManager::RowKey(10, rid);
  EXPECT_TRUE(f.locks.LockRow(1, 10, rid, LockMode::kShared).ok());
  EXPECT_TRUE(f.locks.LockRow(1, 10, rid, LockMode::kExclusive).ok());
  f.locks.Unlock(1, key);
  EXPECT_TRUE(f.locks.LockRow(2, 10, rid, LockMode::kExclusive).ok());
}

TEST(LockManagerTest, TableLocksIndependentOfRowLocks) {
  Fixture f;
  EXPECT_TRUE(f.locks.LockTable(1, 10, LockMode::kExclusive).ok());
  EXPECT_EQ(f.locks.LockTable(2, 10, LockMode::kShared).code(),
            StatusCode::kAborted);
  // Row on a different table is unaffected.
  EXPECT_TRUE(f.locks.LockRow(2, 11, Rid{0, 0}, LockMode::kExclusive).ok());
}

TEST(LockManagerTest, ManyLocksGrowOnDisk) {
  // The disk-based lock table has no size knob: take 10k locks.
  Fixture f;
  for (uint32_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(f.locks
                    .LockRow(1, 10, Rid{i, static_cast<uint16_t>(i % 7)},
                             LockMode::kExclusive)
                    .ok());
  }
  EXPECT_EQ(f.locks.held_locks(), 10000u);
  EXPECT_GT(f.locks.lock_table_pages(), 1u);
}

TEST(TransactionTest, CommitReleasesLocksAndLogs) {
  Fixture f;
  Transaction* txn = f.tm.Begin();
  const Rid rid{2, 1};
  ASSERT_TRUE(f.locks.LockRow(txn->id(), 5, rid, LockMode::kExclusive).ok());
  txn->RecordLock(LockManager::RowKey(5, rid));
  ASSERT_TRUE(f.tm.Commit(txn).ok());
  EXPECT_EQ(txn->state(), TxnState::kCommitted);
  EXPECT_GT(f.tm.log_bytes(), 0u);
  // Lock released: another txn can take it.
  Transaction* t2 = f.tm.Begin();
  EXPECT_TRUE(f.locks.LockRow(t2->id(), 5, rid, LockMode::kExclusive).ok());
}

TEST(TransactionTest, AbortAppliesUndoInReverse) {
  Fixture f;
  Transaction* txn = f.tm.Begin();
  for (int i = 0; i < 3; ++i) {
    UndoRecord rec;
    rec.op = UndoOp::kInsert;
    rec.table_oid = 1;
    rec.rid = Rid{static_cast<uint32_t>(i), 0};
    txn->RecordUndo(std::move(rec));
  }
  std::vector<uint32_t> order;
  ASSERT_TRUE(f.tm.Abort(txn, [&order](const UndoRecord& rec) {
                  order.push_back(rec.rid.page_id);
                  return Status::OK();
                })
                  .ok());
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[2], 0u);
  EXPECT_EQ(txn->state(), TxnState::kAborted);
}

TEST(TransactionTest, ActiveCountTracksLifecycle) {
  Fixture f;
  EXPECT_EQ(f.tm.active_count(), 0u);
  Transaction* a = f.tm.Begin();
  Transaction* b = f.tm.Begin();
  EXPECT_EQ(f.tm.active_count(), 2u);
  ASSERT_TRUE(f.tm.Commit(a).ok());
  ASSERT_TRUE(
      f.tm.Abort(b, [](const UndoRecord&) { return Status::OK(); }).ok());
  EXPECT_EQ(f.tm.active_count(), 0u);
}

TEST(TransactionTest, DoubleCommitRejected) {
  Fixture f;
  Transaction* txn = f.tm.Begin();
  ASSERT_TRUE(f.tm.Commit(txn).ok());
  EXPECT_FALSE(f.tm.Commit(txn).ok());
}

TEST(TransactionTest, RedoLogSpansPages) {
  Fixture f;
  Transaction* txn = f.tm.Begin();
  const std::string payload(1000, 'r');
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(f.tm.AppendRedo(txn->id(), payload).ok());
  }
  EXPECT_GT(f.disk.NumPages(storage::SpaceId::kLog), 3u);
}

}  // namespace
}  // namespace hdb::txn
