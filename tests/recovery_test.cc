// Crash-recovery harness (ISSUE: durability subsystem).
//
// The central test sweeps the crash point: a seeded workload runs against
// a fault-injecting StableStorage that loses power after exactly N media
// operations, for every N up to the fault-free run's operation count. After
// each crash the database is reopened over the surviving bytes and checked
// against a shadow map that tracked only *successfully committed*
// transactions — committed data must be durable, uncommitted data must be
// gone, and the heap/index must agree. The sweep repeats with torn-write
// and short-write (out-of-order partial persistence) media.
//
// Seed selection: HDB_SEED overrides the default, which is how
// scripts/crash_matrix.sh turns this file into a many-seed soak.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "engine/database.h"
#include "os/stable_storage.h"

namespace hdb::engine {
namespace {

uint64_t TestSeed() {
  const char* env = std::getenv("HDB_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

DatabaseOptions DurableOptions(std::shared_ptr<os::StableStorage> media) {
  DatabaseOptions opts;
  opts.initial_pool_frames = 64;
  opts.media = std::move(media);
  return opts;
}

std::shared_ptr<os::StableStorage> MakeMedia(os::FaultOptions faults = {}) {
  return std::make_shared<os::StableStorage>(DatabaseOptions{}.page_bytes,
                                             faults);
}

/// kill -9: every media op from here on fails, the process state vanishes
/// with the Database object, and the media keeps only what was synced
/// (plus whatever the injected torn/short-write behavior leaves behind).
void Kill(std::unique_ptr<Connection>* conn, std::unique_ptr<Database>* db,
          os::StableStorage* media) {
  media->ScheduleCrash(0);
  conn->reset();
  db->reset();
  media->PowerCycle();
}

bool Ok(Connection* c, const std::string& sql) {
  return c->Execute(sql).ok();
}

// --- the seeded workload --------------------------------------------------

constexpr int kWorkloadTxns = 8;
constexpr int kKeySpace = 40;

struct WorkloadOutcome {
  /// State as of the last COMMIT that returned OK — guaranteed durable.
  std::map<int, int> shadow;
  /// True when a COMMIT statement itself failed: the commit record may or
  /// may not have reached the platter (an interrupted sync persists a
  /// random subset of the pending batch), so recovery may legitimately
  /// land on either side. The log's prefix-consistency makes the outcome
  /// binary: all of the transaction or none of it.
  bool commit_uncertain = false;
  std::map<int, int> uncertain;  // shadow + the uncertain transaction
};

/// Runs BEGIN/COMMIT transactions of random inserts/updates/deletes until
/// the workload finishes or a statement fails (injected crash). `shadow`
/// is updated only when COMMIT returns OK — a successful COMMIT is
/// durable; any transaction whose COMMIT never ran must be rolled back.
void RunWorkload(Connection* c, uint64_t seed, WorkloadOutcome* out) {
  std::map<int, int>* shadow = &out->shadow;
  Rng rng(seed);
  if (!Ok(c, "CREATE TABLE kv (k INT NOT NULL, v INT)")) return;
  (void)c->Execute("CREATE INDEX kv_k ON kv (k)");  // optional under faults

  for (int t = 0; t < kWorkloadTxns; ++t) {
    if (!Ok(c, "BEGIN")) return;
    std::map<int, int> pending = *shadow;
    const int ops = 1 + static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < ops; ++i) {
      const uint64_t kind = rng.Uniform(4);
      if (kind <= 1 || pending.empty()) {  // insert (biased: grows state)
        int k = 1 + static_cast<int>(rng.Uniform(kKeySpace));
        while (pending.count(k) != 0) k = 1 + (k % kKeySpace);
        const int v = static_cast<int>(rng.Uniform(1000));
        if (!Ok(c, "INSERT INTO kv VALUES (" + std::to_string(k) + ", " +
                       std::to_string(v) + ")")) {
          return;
        }
        pending[k] = v;
      } else {
        auto it = pending.begin();
        std::advance(it, static_cast<int>(rng.Uniform(pending.size())));
        const int k = it->first;
        if (kind == 2) {
          const int v = static_cast<int>(rng.Uniform(1000));
          if (!Ok(c, "UPDATE kv SET v = " + std::to_string(v) +
                         " WHERE k = " + std::to_string(k))) {
            return;
          }
          it->second = v;
        } else {
          if (!Ok(c, "DELETE FROM kv WHERE k = " + std::to_string(k))) {
            return;
          }
          pending.erase(it);
        }
      }
    }
    if (!Ok(c, "COMMIT")) {
      out->commit_uncertain = true;
      out->uncertain = pending;
      return;
    }
    *shadow = pending;
  }
}

/// Reopens over the surviving media and checks the table equals the
/// shadow, through both the rebuilt heap and (spot checks) the rebuilt
/// index.
void VerifyAgainstShadow(std::shared_ptr<os::StableStorage> media,
                         const WorkloadOutcome& expected,
                         const std::string& context) {
  auto db = Database::Open(DurableOptions(media));
  ASSERT_TRUE(db.ok()) << context << ": reopen failed: "
                       << db.status().ToString();
  auto conn = (*db)->Connect();
  ASSERT_TRUE(conn.ok()) << context;

  auto r = (*conn)->Execute("SELECT k, v FROM kv ORDER BY k");
  if (!r.ok()) {
    // Only legitimate if the crash beat CREATE TABLE's durability barrier —
    // in which case nothing was ever committed.
    EXPECT_TRUE(expected.shadow.empty())
        << context << ": table lost but " << expected.shadow.size()
        << " committed rows expected";
    return;
  }
  std::map<int, int> actual;
  for (const auto& row : r->rows) {
    ASSERT_EQ(row.size(), 2u) << context;
    actual[static_cast<int>(row[0].AsInt())] =
        static_cast<int>(row[1].AsInt());
  }
  const bool matches =
      actual == expected.shadow ||
      (expected.commit_uncertain && actual == expected.uncertain);
  EXPECT_TRUE(matches) << context << ": committed state diverged ("
                       << actual.size() << " rows, " << expected.shadow.size()
                       << " committed"
                       << (expected.commit_uncertain ? ", commit uncertain"
                                                     : "")
                       << ")";

  // Index integrity: point probes must agree with the heap scan.
  int probes = 0;
  for (const auto& [k, v] : actual) {
    if (++probes > 3) break;
    auto p = (*conn)->Execute("SELECT v FROM kv WHERE k = " +
                              std::to_string(k));
    ASSERT_TRUE(p.ok()) << context;
    ASSERT_EQ(p->rows.size(), 1u) << context << ": k=" << k;
    EXPECT_EQ(p->rows[0][0].AsInt(), v) << context << ": k=" << k;
  }
}

/// One crash-point run: fresh media that dies after `crash_after_ops`
/// media operations (plus the given torn/short-write flavor), workload,
/// kill, reopen, verify.
void RunCrashPoint(uint64_t seed, int64_t crash_after_ops,
                   os::FaultOptions flavor, const std::string& context) {
  os::FaultOptions faults = flavor;
  faults.seed = seed ^ static_cast<uint64_t>(crash_after_ops);
  faults.crash_after_ops = crash_after_ops;
  auto media = MakeMedia(faults);

  WorkloadOutcome outcome;
  {
    auto db = Database::Open(DurableOptions(media));
    if (!db.ok()) {
      // Crash landed inside Open itself; nothing committed.
      media->PowerCycle();
      VerifyAgainstShadow(media, outcome, context + " (died in open)");
      return;
    }
    auto conn = (*db)->Connect();
    ASSERT_TRUE(conn.ok()) << context;
    RunWorkload(conn->get(), seed, &outcome);
    Kill(&*conn, &*db, media.get());
  }
  VerifyAgainstShadow(media, outcome, context);
}

/// Measures how many media ops the fault-free workload performs, bounding
/// the sweep range.
int64_t FaultFreeOpCount(uint64_t seed) {
  auto media = MakeMedia();
  WorkloadOutcome outcome;
  {
    auto db = Database::Open(DurableOptions(media));
    EXPECT_TRUE(db.ok());
    auto conn = (*db)->Connect();
    EXPECT_TRUE(conn.ok());
    RunWorkload(conn->get(), seed, &outcome);
  }
  return static_cast<int64_t>(media->write_count() + media->sync_count());
}

// --- the sweep ------------------------------------------------------------

TEST(CrashSweepTest, EveryCrashPointCleanDrop) {
  const uint64_t seed = TestSeed();
  const int64_t total = FaultFreeOpCount(seed);
  ASSERT_GT(total, 10);  // the workload must actually hit the media
  for (int64_t n = 1; n <= total; ++n) {
    RunCrashPoint(seed, n, {},
                  "seed=" + std::to_string(seed) + " clean n=" +
                      std::to_string(n));
  }
}

TEST(CrashSweepTest, EveryCrashPointTornWrite) {
  const uint64_t seed = TestSeed();
  const int64_t total = FaultFreeOpCount(seed);
  os::FaultOptions flavor;
  flavor.torn_write = true;
  for (int64_t n = 1; n <= total; ++n) {
    RunCrashPoint(seed, n, flavor,
                  "seed=" + std::to_string(seed) + " torn n=" +
                      std::to_string(n));
  }
}

TEST(CrashSweepTest, EveryCrashPointShortWrite) {
  const uint64_t seed = TestSeed();
  const int64_t total = FaultFreeOpCount(seed);
  os::FaultOptions flavor;
  flavor.short_write = true;
  for (int64_t n = 1; n <= total; ++n) {
    RunCrashPoint(seed, n, flavor,
                  "seed=" + std::to_string(seed) + " short n=" +
                      std::to_string(n));
  }
}

// --- targeted recovery behaviors ------------------------------------------

TEST(RecoveryTest, CommittedSurviveUncommittedRollBack) {
  auto media = MakeMedia();
  auto db = Database::Open(DurableOptions(media));
  ASSERT_TRUE(db.ok());
  auto conn = (*db)->Connect();
  ASSERT_TRUE(conn.ok());
  Connection* c = conn->get();
  ASSERT_TRUE(Ok(c, "CREATE TABLE kv (k INT NOT NULL, v INT)"));
  ASSERT_TRUE(Ok(c, "CREATE INDEX kv_k ON kv (k)"));
  ASSERT_TRUE(Ok(c, "INSERT INTO kv VALUES (1, 10), (2, 20)"));  // durable

  // Leave a transaction open and force its changes onto the media: the
  // checkpoint makes the dirty pages (and the log behind them) durable, so
  // recovery must *undo* the loser, not merely never see it.
  ASSERT_TRUE(Ok(c, "BEGIN"));
  ASSERT_TRUE(Ok(c, "INSERT INTO kv VALUES (3, 30)"));
  ASSERT_TRUE(Ok(c, "UPDATE kv SET v = 99 WHERE k = 1"));
  ASSERT_TRUE((*db)->checkpoint_governor().ForceCheckpoint("test").ok());
  Kill(&*conn, &*db, media.get());

  auto db2 = Database::Open(DurableOptions(media));
  ASSERT_TRUE(db2.ok());
  const wal::RecoveryStats& rs = (*db2)->recovery_stats();
  EXPECT_TRUE(rs.log_found);
  EXPECT_GE(rs.loser_txns, 1u);
  EXPECT_GE(rs.undo_records, 1u);

  auto conn2 = (*db2)->Connect();
  ASSERT_TRUE(conn2.ok());
  auto r = (*conn2)->Execute("SELECT k, v FROM kv ORDER BY k");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 1);
  EXPECT_EQ(r->rows[0][1].AsInt(), 10);  // the loser's update was undone
  EXPECT_EQ(r->rows[1][0].AsInt(), 2);
  EXPECT_EQ(r->rows[1][1].AsInt(), 20);
}

TEST(RecoveryTest, DdlSurvivesKill) {
  auto media = MakeMedia();
  auto db = Database::Open(DurableOptions(media));
  ASSERT_TRUE(db.ok());
  auto conn = (*db)->Connect();
  ASSERT_TRUE(conn.ok());
  Connection* c = conn->get();
  ASSERT_TRUE(Ok(c, "CREATE TABLE parent (id INT NOT NULL)"));
  ASSERT_TRUE(Ok(c,
                 "CREATE TABLE child (pid INT, FOREIGN KEY (pid) REFERENCES "
                 "parent (id))"));
  ASSERT_TRUE(Ok(c, "CREATE UNIQUE INDEX parent_id ON parent (id)"));
  ASSERT_TRUE(
      Ok(c, "CREATE PROCEDURE add_parent (:k) AS INSERT INTO parent VALUES "
            "(:k)"));
  ASSERT_TRUE(Ok(c, "SET OPTION collect_statistics_on_dml = 'off'"));
  ASSERT_TRUE(Ok(c, "CALL add_parent(7)"));
  Kill(&*conn, &*db, media.get());

  auto db2 = Database::Open(DurableOptions(media));
  ASSERT_TRUE(db2.ok());
  EXPECT_EQ((*db2)->catalog().foreign_keys().size(), 1u);
  auto conn2 = (*db2)->Connect();
  ASSERT_TRUE(conn2.ok());
  ASSERT_TRUE(Ok(conn2->get(), "CALL add_parent(8)"));  // procedure replayed
  auto r = (*conn2)->Execute("SELECT id FROM parent ORDER BY id");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 7);
  EXPECT_EQ(r->rows[1][0].AsInt(), 8);
  // The index definition replayed with its uniqueness flag intact and is
  // usable for point lookups over the rebuilt tree.
  auto idx = (*db2)->catalog().GetIndex("parent_id");
  ASSERT_TRUE(idx.ok());
  EXPECT_TRUE((*idx)->unique);
  auto probe = (*conn2)->Execute("SELECT id FROM parent WHERE id = 8");
  ASSERT_TRUE(probe.ok());
  ASSERT_EQ(probe->rows.size(), 1u);
}

TEST(RecoveryTest, CheckpointBoundsRedo) {
  auto media = MakeMedia();
  auto db = Database::Open(DurableOptions(media));
  ASSERT_TRUE(db.ok());
  auto conn = (*db)->Connect();
  ASSERT_TRUE(conn.ok());
  Connection* c = conn->get();
  ASSERT_TRUE(Ok(c, "CREATE TABLE t (a INT NOT NULL)"));
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(Ok(c, "INSERT INTO t VALUES (" + std::to_string(i) + ")"));
  }
  ASSERT_TRUE((*db)->checkpoint_governor().ForceCheckpoint("test").ok());
  for (int i = 30; i < 40; ++i) {
    ASSERT_TRUE(Ok(c, "INSERT INTO t VALUES (" + std::to_string(i) + ")"));
  }
  Kill(&*conn, &*db, media.get());

  auto db2 = Database::Open(DurableOptions(media));
  ASSERT_TRUE(db2.ok());
  const wal::RecoveryStats& rs = (*db2)->recovery_stats();
  EXPECT_TRUE(rs.log_found);
  // Redo started at the checkpoint, not at the log's origin: the bulk of
  // the scanned history was skipped without page writes.
  EXPECT_GT(rs.redo_start_lsn, 1u);
  EXPECT_LT(rs.redo_records, rs.scanned_records);
  auto conn2 = (*db2)->Connect();
  ASSERT_TRUE(conn2.ok());
  auto r = (*conn2)->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 40);
}

TEST(RecoveryTest, CleanShutdownLeavesNoRedoWork) {
  auto media = MakeMedia();
  {
    auto db = Database::Open(DurableOptions(media));
    ASSERT_TRUE(db.ok());
    auto conn = (*db)->Connect();
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(Ok(conn->get(), "CREATE TABLE t (a INT NOT NULL)"));
    ASSERT_TRUE(Ok(conn->get(), "INSERT INTO t VALUES (1), (2), (3)"));
    // Destructors run in order (connection, then database): a clean
    // shutdown, which checkpoints.
  }
  auto db2 = Database::Open(DurableOptions(media));
  ASSERT_TRUE(db2.ok());
  const wal::RecoveryStats& rs = (*db2)->recovery_stats();
  EXPECT_TRUE(rs.log_found);
  EXPECT_EQ(rs.redo_records, 0u);
  EXPECT_EQ(rs.loser_txns, 0u);
  auto conn2 = (*db2)->Connect();
  ASSERT_TRUE(conn2.ok());
  auto r = (*conn2)->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 3);
}

TEST(RecoveryTest, CrashDuringRecoveryConverges) {
  const uint64_t seed = TestSeed() + 1000;
  auto media = MakeMedia();
  WorkloadOutcome outcome;
  {
    auto db = Database::Open(DurableOptions(media));
    ASSERT_TRUE(db.ok());
    auto conn = (*db)->Connect();
    ASSERT_TRUE(conn.ok());
    RunWorkload(conn->get(), seed, &outcome);
    ASSERT_FALSE(outcome.shadow.empty());
    Kill(&*conn, &*db, media.get());
  }
  // Crash the *recovery* itself at escalating points; each attempt must
  // leave the media in a state the next attempt (or the final clean one)
  // still recovers from.
  for (int64_t n = 1; n <= 10; ++n) {
    media->ScheduleCrash(n);
    {
      auto db = Database::Open(DurableOptions(media));
      // Open may fail (crash hit recovery) or succeed (crash pending for
      // the shutdown path); both must be survivable.
    }
    media->PowerCycle();
  }
  VerifyAgainstShadow(media, outcome,
                      "seed=" + std::to_string(seed) + " crash-in-recovery");
}

}  // namespace
}  // namespace hdb::engine
