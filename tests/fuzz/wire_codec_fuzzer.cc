// libFuzzer harness for the wire codec (net/wire.h): FrameAssembler and
// PayloadReader are the two classes that parse attacker-controlled bytes
// straight off a socket, so they get coverage-guided fuzzing on top of the
// unit tests. The invariant under test is the codec contract from
// DESIGN.md §12: arbitrary input must never crash, hang, or read out of
// bounds — framing violations poison the assembler, payload violations
// return a clean error Status, and nothing else happens.
//
// Two build modes (tests/CMakeLists.txt):
//   * -DHDB_LIBFUZZER=ON (Clang): real libFuzzer target, linked with
//     -fsanitize=fuzzer; seed it with the corpus from wire_fuzz_seedgen.
//   * otherwise: the same LLVMFuzzerTestOneInput plus a plain main() that
//     replays corpus files given as argv — so the harness logic and the
//     seeded corpus still execute under GCC (FuzzWire.replay) even though
//     coverage-guided mutation needs Clang (FuzzWire.libfuzzer, skip 77).
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#include "net/wire.h"

namespace {

using hdb::net::Frame;
using hdb::net::FrameAssembler;
using hdb::net::Opcode;
using hdb::net::PayloadReader;
using hdb::net::WireLimits;

// Decodes `payload` the way a peer would for `opcode`: the per-opcode
// field sequence from the Opcode table in net/wire.h. Unknown opcodes get
// a generic sweep so fuzzed opcode bytes still exercise every getter.
// Every Result is intentionally discarded — the property being fuzzed is
// "returns an error instead of misbehaving", not any particular value.
void DecodeAsOpcode(uint8_t opcode, std::string_view payload,
                    const WireLimits& limits) {
  PayloadReader in(payload, limits);
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kHello:
      (void)in.U32();
      (void)in.String();
      break;
    case Opcode::kQuery:
    case Opcode::kPrepare:
    case Opcode::kGoodbye:
      (void)in.String();
      break;
    case Opcode::kBind: {
      (void)in.U32();
      hdb::Result<uint16_t> n = in.U16();
      if (n.ok()) {
        for (uint16_t i = 0; i < *n; ++i) {
          if (!in.GetValue().ok()) break;
        }
      }
      break;
    }
    case Opcode::kExecute:
    case Opcode::kClosePrepared:
      (void)in.U32();
      break;
    case Opcode::kClose:
    case Opcode::kPing:
    case Opcode::kBindOk:
    case Opcode::kCloseOk:
    case Opcode::kPong:
      break;  // empty payloads: ExpectEnd below is the whole check
    case Opcode::kHelloOk:
      (void)in.U32();
      (void)in.U64();
      (void)in.String();
      break;
    case Opcode::kPrepareOk:
      (void)in.U32();
      (void)in.U16();
      break;
    case Opcode::kRowHeader: {
      hdb::Result<uint16_t> ncols = in.U16();
      if (ncols.ok()) {
        for (uint16_t i = 0; i < *ncols; ++i) {
          if (!in.String().ok()) break;
        }
      }
      break;
    }
    case Opcode::kRow: {
      hdb::Result<uint16_t> nvals = in.U16();
      if (nvals.ok()) {
        for (uint16_t i = 0; i < *nvals; ++i) {
          if (!in.GetValue().ok()) break;
        }
      }
      break;
    }
    case Opcode::kDone:
      (void)in.U64();
      (void)in.U64();
      break;
    case Opcode::kError:
      (void)in.U8();
      (void)in.String();
      break;
    case Opcode::kOverloaded:
      (void)in.U8();
      (void)in.U32();
      (void)in.String();
      break;
    default: {
      // Unknown opcode: generic sweep — values while they parse, then one
      // of each primitive so truncation paths at every width are hit.
      while (in.GetValue().ok()) {
      }
      (void)in.U8();
      (void)in.U16();
      (void)in.U32();
      (void)in.U64();
      (void)in.I64();
      (void)in.Double();
      (void)in.String();
      break;
    }
  }
  (void)in.ExpectEnd();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Tight limits so the fuzzer can actually reach the oversized-frame and
  // oversized-string rejection paths (the 16 MB/4 MB defaults would need
  // inputs libFuzzer never grows to).
  WireLimits limits;
  limits.max_frame_bytes = 1u << 16;
  limits.max_string_bytes = 1u << 12;

  // Pass 1: the input as a byte stream through the assembler. Chunk sizes
  // are derived from the input so reassembly boundaries are fuzzed too —
  // partial length prefixes, split opcodes, frames spanning Feed calls.
  FrameAssembler asem(limits);
  size_t pos = 0;
  size_t chunk = size % 7 + 1;
  while (pos < size && !asem.poisoned()) {
    const size_t n = std::min(chunk, size - pos);
    asem.Feed(reinterpret_cast<const char*>(data) + pos, n);
    pos += n;
    chunk = chunk % 13 + 1;
    for (;;) {
      hdb::Result<std::optional<Frame>> next = asem.Next();
      if (!next.ok() || !next->has_value()) break;
      // Frame::payload views the assembler's buffer and is only valid
      // until the next Next()/Feed() — decoding immediately is the
      // documented usage pattern (and the lifetime bug a fuzzer + ASan
      // would catch if the codec ever broke it).
      DecodeAsOpcode((*next)->opcode, (*next)->payload, limits);
    }
  }
  (void)asem.buffered_bytes();

  // Pass 2: the input as a bare payload (first byte = opcode), skipping
  // the framing layer so payload-level parsing gets the full fuzzing
  // budget even when the bytes don't form a plausible length prefix.
  if (size > 0) {
    DecodeAsOpcode(data[0],
                   std::string_view(reinterpret_cast<const char*>(data) + 1,
                                    size - 1),
                   limits);
  }
  return 0;
}

#ifndef HDB_LIBFUZZER
// Replay driver for toolchains without libFuzzer: run every corpus file
// given on the command line through the fuzz entry point once. This is
// what FuzzWire.replay executes under GCC; under Clang the libFuzzer
// runtime provides main() and this block is compiled out.
#include <cstdio>
#include <fstream>
#include <iterator>
#include <vector>

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "wire_codec_fuzzer: cannot open %s\n", argv[i]);
      return 1;
    }
    const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    ++replayed;
  }
  std::printf("wire_codec_fuzzer: replayed %d corpus file(s), no crashes\n",
              replayed);
  return 0;
}
#endif  // HDB_LIBFUZZER
