// Seed-corpus generator for the wire-codec fuzzer: writes a directory of
// starting inputs for wire_codec_fuzzer — well-formed frames for every
// opcode (built with the codec's own encoders, so the corpus can never
// drift from the format), the known-nasty malformations from
// tests/net_wire_test.cc (truncation, zero/oversized lengths, trailing
// bytes, garbage opcodes), and a deterministic seeded-mutation sweep over
// the valid session stream. scripts/fuzz_smoke.sh runs this into the
// build tree and hands the directory to the fuzzer (or the replay
// driver) as its seed dir.
//
//   wire_fuzz_seedgen <output-dir>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <string_view>

#include "net/wire.h"

namespace {

using hdb::StatusCode;
using hdb::TypeId;
using hdb::Value;
using hdb::net::AppendDoneFrame;
using hdb::net::AppendErrorFrame;
using hdb::net::AppendFrame;
using hdb::net::AppendGoodbyeFrame;
using hdb::net::AppendOverloadedFrame;
using hdb::net::kProtocolVersion;
using hdb::net::Opcode;
using hdb::net::PutString;
using hdb::net::PutU16;
using hdb::net::PutU32;
using hdb::net::PutValue;

bool WriteSeed(const std::string& dir, const std::string& name,
               std::string_view bytes) {
  const std::string path = dir + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "wire_fuzz_seedgen: cannot write %s\n",
                 path.c_str());
    return false;
  }
  return true;
}

// A full client session: hello, ad-hoc query, prepare/bind/execute with
// every value type, ping, close. The richest single seed — most of the
// decoder's branches are on its path.
std::string ClientSession() {
  std::string stream;
  std::string p;
  PutU32(&p, kProtocolVersion);
  PutString(&p, "fuzz-seed-client");
  AppendFrame(&stream, Opcode::kHello, p);

  p.clear();
  PutString(&p, "SELECT id, name FROM t WHERE id < 10");
  AppendFrame(&stream, Opcode::kQuery, p);

  p.clear();
  PutString(&p, "INSERT INTO t VALUES (?, ?, ?, ?, ?, ?, ?)");
  AppendFrame(&stream, Opcode::kPrepare, p);

  p.clear();
  PutU32(&p, 1);  // stmt_id
  PutU16(&p, 7);
  PutValue(&p, Value::Boolean(true));
  PutValue(&p, Value::Int(-7));
  PutValue(&p, Value::Bigint(1LL << 40));
  PutValue(&p, Value::Double(-0.5));
  PutValue(&p, Value::String("it's quoted"));
  PutValue(&p, Value::Date(19000));
  PutValue(&p, Value::Null(TypeId::kVarchar));
  AppendFrame(&stream, Opcode::kBind, p);

  p.clear();
  PutU32(&p, 1);
  AppendFrame(&stream, Opcode::kExecute, p);

  AppendFrame(&stream, Opcode::kPing, {});
  AppendFrame(&stream, Opcode::kClose, {});
  return stream;
}

// A full server response stream: hello-ok, row header, rows, done, plus
// the three standalone server frames.
std::string ServerSession() {
  std::string stream;
  std::string p;
  PutU32(&p, kProtocolVersion);
  hdb::net::PutU64(&p, 42);  // conn_id
  PutString(&p, "holisticdb");
  AppendFrame(&stream, Opcode::kHelloOk, p);

  p.clear();
  PutU16(&p, 2);
  PutString(&p, "id");
  PutString(&p, "name");
  AppendFrame(&stream, Opcode::kRowHeader, p);

  for (int i = 0; i < 3; ++i) {
    p.clear();
    PutU16(&p, 2);
    PutValue(&p, Value::Int(i));
    PutValue(&p, Value::String("row"));
    AppendFrame(&stream, Opcode::kRow, p);
  }
  AppendDoneFrame(&stream, 0, 3);
  AppendErrorFrame(&stream, StatusCode::kInvalidArgument, "seed error");
  AppendOverloadedFrame(&stream, 250, "past the MPL");
  AppendGoodbyeFrame(&stream, "draining");
  return stream;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: wire_fuzz_seedgen <output-dir>\n");
    return 2;
  }
  const std::string dir = argv[1];
  const std::string client = ClientSession();
  const std::string server = ServerSession();

  bool ok = WriteSeed(dir, "client_session.bin", client) &&
            WriteSeed(dir, "server_session.bin", server);

  // The known-nasty framing malformations (mirrors net_wire_test.cc).
  ok = ok && WriteSeed(dir, "truncated.bin",
                       std::string_view(client).substr(0, client.size() / 3));
  std::string zero_len(4, '\0');  // length field of 0: poisons the stream
  ok = ok && WriteSeed(dir, "zero_length.bin", zero_len);
  std::string oversized = {'\xff', '\xff', '\xff', '\xff'};  // 4 GiB frame
  ok = ok && WriteSeed(dir, "oversized_length.bin", oversized);
  std::string trailing;
  std::string p;
  PutU32(&p, 1);
  p += "junk after the last declared field";
  AppendFrame(&trailing, Opcode::kExecute, p);
  ok = ok && WriteSeed(dir, "trailing_bytes.bin", trailing);
  std::string badop;
  AppendFrame(&badop, static_cast<Opcode>(0x7f), "\x01\x02\x03");
  ok = ok && WriteSeed(dir, "unknown_opcode.bin", badop);

  // Seeded mutation sweep (fixed seed: the corpus is reproducible, which
  // keeps FuzzWire.replay deterministic): byte flips, truncations, and
  // splices of the valid session streams — the same three mutation
  // flavors net_wire_test.cc's corpus uses.
  std::mt19937 rng(0x5eedu);
  for (int i = 0; i < 24 && ok; ++i) {
    std::string m = (i % 2 == 0) ? client : server;
    switch (i % 3) {
      case 0: {  // flip a handful of bytes
        const int flips = 1 + static_cast<int>(rng() % 8);
        for (int f = 0; f < flips; ++f) {
          m[rng() % m.size()] ^= static_cast<char>(1u << (rng() % 8));
        }
        break;
      }
      case 1:  // truncate mid-stream
        m.resize(1 + rng() % (m.size() - 1));
        break;
      default: {  // splice a slice of one stream into the other
        const std::string& other = (i % 2 == 0) ? server : client;
        const size_t at = rng() % m.size();
        const size_t from = rng() % other.size();
        const size_t len = rng() % (other.size() - from);
        m.insert(at, other, from, len);
        break;
      }
    }
    ok = WriteSeed(dir, "mutated_" + std::to_string(i) + ".bin", m);
  }

  if (ok) {
    std::printf("wire_fuzz_seedgen: corpus written to %s\n", dir.c_str());
  }
  return ok ? 0 : 1;
}
