#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "common/ophash.h"
#include "optimizer/expr.h"
#include "optimizer/governor.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_cache.h"
#include "stats/stats_registry.h"
#include "storage/buffer_pool.h"

namespace hdb::optimizer {
namespace {

// --- Expressions ---

TEST(ExprTest, ThreeValuedLogic) {
  RowContext ctx;
  const auto null_bool = Expr::Literal(Value::Null(TypeId::kBoolean));
  const auto t = Expr::Literal(Value::Boolean(true));
  const auto f = Expr::Literal(Value::Boolean(false));

  // NULL AND FALSE = FALSE; NULL AND TRUE = NULL.
  EXPECT_FALSE((*Expr::And(null_bool, f)->Evaluate(ctx)).is_null());
  EXPECT_FALSE(*Expr::And(null_bool, f)->EvaluatesToTrue(ctx));
  EXPECT_TRUE((*Expr::And(null_bool, t)->Evaluate(ctx)).is_null());
  // NULL OR TRUE = TRUE.
  EXPECT_TRUE(*Expr::Or(null_bool, t)->EvaluatesToTrue(ctx));
  // NOT NULL = NULL.
  EXPECT_TRUE((*Expr::Not(null_bool)->Evaluate(ctx)).is_null());
}

TEST(ExprTest, ComparisonWithNullIsNull) {
  RowContext ctx;
  const auto e = Expr::Compare(CompareOp::kEq, Expr::Literal(Value::Int(1)),
                               Expr::Literal(Value::Null()));
  EXPECT_TRUE((*e->Evaluate(ctx)).is_null());
  EXPECT_FALSE(*e->EvaluatesToTrue(ctx));
}

TEST(ExprTest, ColumnRefAgainstContext) {
  std::vector<Value> row = {Value::Int(10), Value::String("hi")};
  RowContext ctx;
  ctx.rows = {&row};
  const auto e =
      Expr::Compare(CompareOp::kGt, Expr::Column(0, 0, TypeId::kInt),
                    Expr::Literal(Value::Int(5)));
  EXPECT_TRUE(*e->EvaluatesToTrue(ctx));
}

TEST(ExprTest, BetweenAndInList) {
  RowContext ctx;
  const auto five = Expr::Literal(Value::Int(5));
  EXPECT_TRUE(*Expr::Between(five, Expr::Literal(Value::Int(1)),
                             Expr::Literal(Value::Int(9)))
                   ->EvaluatesToTrue(ctx));
  std::vector<ExprPtr> list = {Expr::Literal(Value::Int(3)),
                               Expr::Literal(Value::Int(5))};
  EXPECT_TRUE(*Expr::InList(five, list)->EvaluatesToTrue(ctx));
  std::vector<ExprPtr> list2 = {Expr::Literal(Value::Int(3)),
                                Expr::Literal(Value::Null())};
  // 5 IN (3, NULL) = NULL.
  EXPECT_TRUE((*Expr::InList(five, list2)->Evaluate(ctx)).is_null());
}

TEST(ExprTest, LikeMatcher) {
  EXPECT_TRUE(Expr::LikeMatch("hello world", "%world"));
  EXPECT_TRUE(Expr::LikeMatch("hello world", "hello%"));
  EXPECT_TRUE(Expr::LikeMatch("hello world", "%lo wo%"));
  EXPECT_TRUE(Expr::LikeMatch("hello", "h_llo"));
  EXPECT_TRUE(Expr::LikeMatch("HELLO", "hello"));  // case-insensitive
  EXPECT_FALSE(Expr::LikeMatch("hello", "h_lo"));
  EXPECT_FALSE(Expr::LikeMatch("abc", "abcd%e"));
  EXPECT_TRUE(Expr::LikeMatch("", "%"));
}

TEST(ExprTest, ArithmeticIntegerAndDouble) {
  RowContext ctx;
  const auto sum = Expr::Arith(ArithOp::kAdd, Expr::Literal(Value::Int(2)),
                               Expr::Literal(Value::Int(3)));
  EXPECT_EQ((*sum->Evaluate(ctx)).AsInt(), 5);
  const auto div = Expr::Arith(ArithOp::kDiv, Expr::Literal(Value::Double(1)),
                               Expr::Literal(Value::Double(4)));
  EXPECT_DOUBLE_EQ((*div->Evaluate(ctx)).AsDouble(), 0.25);
  const auto by_zero =
      Expr::Arith(ArithOp::kDiv, Expr::Literal(Value::Int(1)),
                  Expr::Literal(Value::Int(0)));
  EXPECT_FALSE(by_zero->Evaluate(ctx).ok());
}

TEST(ExprTest, ParamBindingThroughContext) {
  std::vector<std::pair<std::string, Value>> params = {{"x", Value::Int(9)}};
  RowContext ctx;
  ctx.params = &params;
  const auto e = Expr::Compare(CompareOp::kEq, Expr::Param("x"),
                               Expr::Literal(Value::Int(9)));
  EXPECT_TRUE(*e->EvaluatesToTrue(ctx));
  RowContext empty;
  EXPECT_FALSE(e->EvaluatesToTrue(empty).ok());
}

TEST(ExprTest, SplitConjunctsFlattensAndTree) {
  const auto a = Expr::Literal(Value::Boolean(true));
  const auto b = Expr::Literal(Value::Boolean(true));
  const auto c = Expr::Literal(Value::Boolean(false));
  std::vector<ExprPtr> out;
  SplitConjuncts(Expr::And(Expr::And(a, b), c), &out);
  EXPECT_EQ(out.size(), 3u);
}

// --- Optimizer governor ---

TEST(GovernorTest, QuotaConsumedAndExhausted) {
  GovernorOptions opts;
  opts.initial_quota = 4;
  OptimizerGovernor gov(opts);
  EXPECT_TRUE(gov.TryVisit());
  EXPECT_TRUE(gov.TryVisit());
  EXPECT_TRUE(gov.TryVisit());
  EXPECT_TRUE(gov.TryVisit());
  EXPECT_FALSE(gov.TryVisit());
  EXPECT_TRUE(gov.Exhausted());
  EXPECT_EQ(gov.visits_used(), 4u);
}

TEST(GovernorTest, ChildGetsHalfOfRemainder) {
  GovernorOptions opts;
  opts.initial_quota = 100;
  OptimizerGovernor gov(opts);
  gov.EnterChild();  // child gets 50
  int child_visits = 0;
  while (gov.TryVisit()) ++child_visits;
  EXPECT_EQ(child_visits, 50);
  gov.LeaveChild();  // nothing returned
  gov.EnterChild();  // next child gets 25
  child_visits = 0;
  while (gov.TryVisit()) ++child_visits;
  EXPECT_EQ(child_visits, 25);
}

TEST(GovernorTest, PrunedSubtreeReturnsQuota) {
  GovernorOptions opts;
  opts.initial_quota = 100;
  OptimizerGovernor gov(opts);
  gov.EnterChild();  // 50 granted
  EXPECT_TRUE(gov.TryVisit());
  gov.LeaveChild();  // 49 returned -> parent has 99
  gov.EnterChild();
  int visits = 0;
  while (gov.TryVisit()) ++visits;
  EXPECT_EQ(visits, 49);  // floor(99/2)
}

TEST(GovernorTest, RedistributionOnBigImprovement) {
  GovernorOptions opts;
  opts.initial_quota = 128;
  OptimizerGovernor gov(opts);
  gov.EnterChild();
  gov.EnterChild();
  for (int i = 0; i < 30; ++i) gov.TryVisit();
  gov.OnImprovedPlan(0.5);  // >= 20%: redistribute
  EXPECT_EQ(gov.redistributions(), 1u);
  // Quota re-concentrated: the current subtree can keep going.
  int more = 0;
  while (gov.TryVisit() && more < 40) ++more;
  EXPECT_GT(more, 30);
}

TEST(GovernorTest, SmallImprovementDoesNotRedistribute) {
  OptimizerGovernor gov;
  gov.OnImprovedPlan(0.1);
  EXPECT_EQ(gov.redistributions(), 0u);
}

TEST(GovernorTest, DisabledGovernorNeverPrunes) {
  GovernorOptions opts;
  opts.enabled = false;
  opts.initial_quota = 1;
  OptimizerGovernor gov(opts);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(gov.TryVisit());
  EXPECT_FALSE(gov.Exhausted());
}

// --- Plan cache ---

std::shared_ptr<const PlanNode> MakePlan(PlanKind kind) {
  auto p = std::make_shared<PlanNode>();
  p->kind = kind;
  return p;
}

TEST(PlanCacheTest, TrainingRequiresIdenticalPlans) {
  PlanCacheOptions opts;
  opts.training_executions = 3;
  PlanCache cache(opts);
  // Two different plans alternate: never cached.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(cache.OnInvocation("q").action, PlanCache::Action::kOptimize);
    cache.OnPlanReady("q", MakePlan(i % 2 == 0 ? PlanKind::kSeqScan
                                               : PlanKind::kIndexScan));
  }
  EXPECT_EQ(cache.stats().trainings_completed, 0u);
  // Identical plans three times: cached.
  for (int i = 0; i < 3; ++i) {
    cache.OnInvocation("q");
    cache.OnPlanReady("q", MakePlan(PlanKind::kSeqScan));
  }
  EXPECT_EQ(cache.stats().trainings_completed, 1u);
  EXPECT_EQ(cache.OnInvocation("q").action, PlanCache::Action::kUseCached);
}

TEST(PlanCacheTest, DecayingVerificationSchedule) {
  PlanCacheOptions opts;
  opts.training_executions = 1;
  opts.first_verify_interval = 4;
  opts.verify_interval_growth = 4;
  PlanCache cache(opts);
  cache.OnInvocation("q");
  cache.OnPlanReady("q", MakePlan(PlanKind::kSeqScan));

  // Uses 1..3 cached; use 4 verifies.
  std::vector<int> verify_points;
  for (int use = 1; use <= 30; ++use) {
    const auto d = cache.OnInvocation("q");
    if (d.action == PlanCache::Action::kVerify) {
      verify_points.push_back(use);
      cache.OnPlanReady("q", MakePlan(PlanKind::kSeqScan));  // still same
    }
  }
  ASSERT_GE(verify_points.size(), 2u);
  EXPECT_EQ(verify_points[0], 4);
  // Interval grew 4x: next verification 16 uses later.
  EXPECT_EQ(verify_points[1], 20);
}

TEST(PlanCacheTest, VerificationMismatchInvalidatesAndRetrains) {
  PlanCacheOptions opts;
  opts.training_executions = 2;
  opts.first_verify_interval = 2;
  PlanCache cache(opts);
  for (int i = 0; i < 2; ++i) {
    cache.OnInvocation("q");
    cache.OnPlanReady("q", MakePlan(PlanKind::kSeqScan));
  }
  // Burn uses until verification.
  PlanCache::Decision d;
  do {
    d = cache.OnInvocation("q");
  } while (d.action == PlanCache::Action::kUseCached);
  ASSERT_EQ(d.action, PlanCache::Action::kVerify);
  // The world changed: fresh plan differs.
  const auto returned = cache.OnPlanReady("q", MakePlan(PlanKind::kIndexScan));
  EXPECT_EQ(returned->kind, PlanKind::kIndexScan);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.OnInvocation("q").action, PlanCache::Action::kOptimize);
}

TEST(PlanCacheTest, LruEviction) {
  PlanCacheOptions opts;
  opts.max_entries = 2;
  PlanCache cache(opts);
  cache.OnInvocation("a");
  cache.OnInvocation("b");
  cache.OnInvocation("c");
  EXPECT_LE(cache.size(), 2u);
}

// --- End-to-end optimization over a synthetic catalog ---

struct OptFixture {
  OptFixture()
      : disk(storage::kDefaultPageBytes, nullptr, nullptr),
        pool(&disk, storage::BufferPoolOptions{.initial_frames = 256}) {}

  catalog::TableDef* AddTable(const std::string& name, uint64_t rows,
                              uint64_t pages) {
    auto t = catalog.CreateTable(
        name, {{"id", TypeId::kInt, false}, {"fk", TypeId::kInt, true}});
    (*t)->row_count = rows;
    (*t)->page_count = pages;
    // Plausible uniform stats on both columns.
    std::vector<Value> ids, fks;
    Rng rng(name.size());
    for (uint64_t i = 0; i < std::min<uint64_t>(rows, 5000); ++i) {
      ids.push_back(Value::Int(static_cast<int32_t>(i)));
      fks.push_back(Value::Int(static_cast<int32_t>(rng.Uniform(100))));
    }
    stats.BuildColumn(**t, 0, ids);
    stats.BuildColumn(**t, 1, fks);
    return *t;
  }

  OptimizerContext Ctx() {
    OptimizerContext ctx;
    ctx.catalog = &catalog;
    ctx.stats = &stats;
    ctx.pool = &pool;
    ctx.index_stats = [](uint32_t) -> const index::IndexStats* {
      return nullptr;
    };
    return ctx;
  }

  Query MakeJoinQuery(const std::vector<catalog::TableDef*>& tables) {
    Query q;
    for (auto* t : tables) q.quantifiers.push_back(Quantifier{t, t->name});
    // Chain equi-joins on fk = id.
    for (size_t i = 0; i + 1 < tables.size(); ++i) {
      q.conjuncts.push_back(Expr::Compare(
          CompareOp::kEq,
          Expr::Column(static_cast<int>(i), 1, TypeId::kInt),
          Expr::Column(static_cast<int>(i + 1), 0, TypeId::kInt)));
    }
    SelectItem item;
    item.expr = Expr::Column(0, 0, TypeId::kInt, "id");
    item.name = "id";
    q.select.push_back(item);
    return q;
  }

  storage::DiskManager disk;
  storage::BufferPool pool;
  catalog::Catalog catalog;
  stats::StatsRegistry stats;
};

TEST(OptimizerTest, SingleTablePlanHasScanAndProject) {
  OptFixture f;
  auto* t = f.AddTable("t1", 1000, 10);
  Query q = f.MakeJoinQuery({t});
  Optimizer opt(f.Ctx());
  auto plan = opt.Optimize(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->kind, PlanKind::kProject);
  EXPECT_EQ((*plan)->children[0]->kind, PlanKind::kSeqScan);
}

TEST(OptimizerTest, JoinOrderSmallTableFirstish) {
  OptFixture f;
  auto* big = f.AddTable("big", 100000, 1000);
  auto* small = f.AddTable("small", 100, 2);
  Query q = f.MakeJoinQuery({big, small});
  Optimizer opt(f.Ctx());
  OptimizeDiagnostics diag;
  auto plan = opt.Optimize(q, false, &diag);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(diag.enumeration.plans_completed, 0u);
  EXPECT_GT(diag.enumeration.nodes_visited, 0u);
}

TEST(OptimizerTest, IndexChosenForSelectivePredicate) {
  OptFixture f;
  auto* t = f.AddTable("t", 100000, 2000);
  auto idx = f.catalog.CreateIndex("t_id", "t", {0}, false);
  ASSERT_TRUE(idx.ok());
  Query q;
  q.quantifiers.push_back(Quantifier{t, "t"});
  q.conjuncts.push_back(
      Expr::Compare(CompareOp::kEq, Expr::Column(0, 0, TypeId::kInt),
                    Expr::Literal(Value::Int(7))));
  SelectItem item;
  item.expr = Expr::Column(0, 1, TypeId::kInt, "fk");
  item.name = "fk";
  q.select.push_back(item);
  Optimizer opt(f.Ctx());
  auto plan = opt.Optimize(q);
  ASSERT_TRUE(plan.ok());
  const PlanNode* scan = (*plan)->children[0].get();
  EXPECT_EQ(scan->kind, PlanKind::kIndexScan);
  ASSERT_TRUE(scan->index_lo.has_value());
  EXPECT_DOUBLE_EQ(*scan->index_lo, 7.0);
  // The residual still re-checks the predicate (hash-collision safety).
  ASSERT_NE(scan->residual, nullptr);
}

TEST(OptimizerTest, BypassPlanForSimpleDml) {
  OptFixture f;
  auto* t = f.AddTable("t", 1000, 10);
  Query q = f.MakeJoinQuery({t});
  EXPECT_TRUE(Optimizer::QualifiesForBypass(q));
  Optimizer opt(f.Ctx());
  OptimizeDiagnostics diag;
  auto plan = opt.Optimize(q, /*allow_bypass=*/true, &diag);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(diag.bypassed);
  EXPECT_EQ(diag.enumeration.nodes_visited, 0u);
}

TEST(OptimizerTest, ChainJoinProducesLeftDeepPlan) {
  OptFixture f;
  std::vector<catalog::TableDef*> tables;
  for (int i = 0; i < 6; ++i) {
    tables.push_back(
        f.AddTable("t" + std::to_string(i), 1000 * (i + 1), 10 * (i + 1)));
  }
  Query q = f.MakeJoinQuery(tables);
  Optimizer opt(f.Ctx());
  OptimizeDiagnostics diag;
  auto plan = opt.Optimize(q, false, &diag);
  ASSERT_TRUE(plan.ok());
  // Count join nodes: must be 5 for 6 quantifiers.
  int joins = 0;
  const PlanNode* node = plan->get();
  std::function<void(const PlanNode*)> walk = [&](const PlanNode* n) {
    if (n->kind == PlanKind::kHashJoin || n->kind == PlanKind::kNLJoin ||
        n->kind == PlanKind::kIndexNLJoin) {
      ++joins;
    }
    for (const auto& c : n->children) walk(c.get());
  };
  walk(node);
  EXPECT_EQ(joins, 5);
  EXPECT_GT(diag.enumeration.prunes, 0u);
}

TEST(OptimizerTest, GovernorQuotaBoundsSearchOnBigJoins) {
  OptFixture f;
  std::vector<catalog::TableDef*> tables;
  for (int i = 0; i < 12; ++i) {
    tables.push_back(f.AddTable("j" + std::to_string(i), 5000, 50));
  }
  Query q = f.MakeJoinQuery(tables);
  auto ctx = f.Ctx();
  ctx.governor.initial_quota = 2000;
  Optimizer opt(ctx);
  OptimizeDiagnostics diag;
  auto plan = opt.Optimize(q, false, &diag);
  ASSERT_TRUE(plan.ok());
  EXPECT_LE(diag.enumeration.nodes_visited, 2000u);
}

TEST(OptimizerTest, ArenaBudgetReported) {
  OptFixture f;
  std::vector<catalog::TableDef*> tables;
  for (int i = 0; i < 8; ++i) {
    tables.push_back(f.AddTable("a" + std::to_string(i), 1000, 10));
  }
  Query q = f.MakeJoinQuery(tables);
  auto ctx = f.Ctx();
  ctx.arena_budget_bytes = 1 << 20;
  Optimizer opt(ctx);
  OptimizeDiagnostics diag;
  ASSERT_TRUE(opt.Optimize(q, false, &diag).ok());
  EXPECT_GT(diag.enumeration.arena_high_water, 0u);
  EXPECT_LE(diag.enumeration.arena_high_water, 1u << 20);
}

TEST(OptimizerTest, PlanFingerprintStableAndDiscriminating) {
  OptFixture f;
  auto* t = f.AddTable("t", 1000, 10);
  Query q = f.MakeJoinQuery({t});
  Optimizer opt(f.Ctx());
  auto p1 = opt.Optimize(q);
  auto p2 = opt.Optimize(q);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ((*p1)->Fingerprint(), (*p2)->Fingerprint());
  auto bypass = opt.BuildBypassPlan(q);
  // Same plan shape here, but Explain must render.
  EXPECT_FALSE((*p1)->Explain().empty());
}

TEST(OptimizerTest, VirtualIndexRequestsCollected) {
  OptFixture f;
  auto* t = f.AddTable("t", 50000, 500);
  Query q;
  q.quantifiers.push_back(Quantifier{t, "t"});
  q.conjuncts.push_back(
      Expr::Compare(CompareOp::kEq, Expr::Column(0, 0, TypeId::kInt),
                    Expr::Literal(Value::Int(3))));
  SelectItem item;
  item.expr = Expr::Column(0, 1, TypeId::kInt, "fk");
  item.name = "fk";
  q.select.push_back(item);

  VirtualIndexCollector collector(/*what_if=*/false);
  auto ctx = f.Ctx();
  ctx.virtual_indexes = &collector;
  Optimizer opt(ctx);
  ASSERT_TRUE(opt.Optimize(q).ok());
  const auto specs = collector.specs();
  ASSERT_GE(specs.size(), 1u);
  EXPECT_EQ(specs[0].columns[0], 0);
  EXPECT_GT(specs[0].benefit_micros, 0.0);
}

TEST(OptimizerTest, CostModelOrderingForScanSizes) {
  // Eq. (3): bigger tables must cost more to scan.
  OptFixture f;
  auto* small = f.AddTable("s", 100, 2);
  auto* large = f.AddTable("l", 100000, 2000);
  CostModel model(&f.catalog.dtt_model(), &f.pool,
                  [](uint32_t) -> const index::IndexStats* { return nullptr; });
  EXPECT_LT(model.SeqScanCost(*small, 1), model.SeqScanCost(*large, 1));
}

TEST(OptimizerTest, HashJoinSpillCostKicksInAboveQuota) {
  OptFixture f;
  CostModel model(&f.catalog.dtt_model(), &f.pool,
                  [](uint32_t) -> const index::IndexStats* { return nullptr; });
  const double fits = model.HashJoinCost(1000, 1000, /*quota_pages=*/1000);
  const double spills = model.HashJoinCost(1000000, 1000, /*quota=*/10);
  EXPECT_GT(spills, fits);
}

}  // namespace
}  // namespace hdb::optimizer
