// Edge cases and failure injection across the stack: parser rejection
// sweep, binder diagnostics, empty/degenerate inputs, boundary sizes, and
// multi-statement procedures.
#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/parser.h"
#include "exec/spill.h"
#include "stats/histogram.h"

namespace hdb {
namespace {

struct Db {
  Db() {
    auto opened = engine::Database::Open();
    EXPECT_TRUE(opened.ok());
    database = std::move(*opened);
    auto c = database->Connect();
    EXPECT_TRUE(c.ok());
    conn = std::move(*c);
  }
  engine::QueryResult Exec(const std::string& sql) {
    auto r = conn->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    return r.ok() ? *r : engine::QueryResult{};
  }
  std::unique_ptr<engine::Database> database;
  std::unique_ptr<engine::Connection> conn;
};

// --- Parser rejection sweep ---

class ParserRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserRejects, SyntaxErrorReported) {
  const auto r = engine::Parse(GetParam());
  ASSERT_FALSE(r.ok()) << GetParam();
  EXPECT_EQ(r.status().code(), StatusCode::kSyntaxError);
}

INSTANTIATE_TEST_SUITE_P(
    BadSql, ParserRejects,
    ::testing::Values(
        "", "SELECT", "SELECT a", "SELECT a FROM", "SELECT a FROM t WHERE",
        "SELECT a FROM t GROUP", "SELECT a FROM t ORDER a",
        "SELECT a FROM t LIMIT many", "INSERT t VALUES (1)",
        "INSERT INTO t (a VALUES (1)", "UPDATE t a = 1",
        "DELETE t WHERE a = 1", "CREATE TABLE t", "CREATE TABLE t (a)",
        "CREATE TABLE t (a BLOB)", "CREATE INDEX ON t (a)",
        "CREATE PROCEDURE p (x) AS SELECT 1 FROM t",
        "DROP t", "SET OPTION x", "SELECT a FROM t WHERE s LIKE pattern",
        "CALIBRATE", "SELECT a FROM t;; SELECT b FROM t"));

// --- Binder diagnostics ---

TEST(BinderErrors, UnknownTableAndColumn) {
  Db db;
  db.Exec("CREATE TABLE t (a INT)");
  EXPECT_EQ(db.conn->Execute("SELECT a FROM missing").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db.conn->Execute("SELECT nope FROM t").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db.conn->Execute("SELECT t2.a FROM t").status().code(),
            StatusCode::kNotFound);
}

TEST(BinderErrors, AmbiguousColumnAcrossQuantifiers) {
  Db db;
  db.Exec("CREATE TABLE x (a INT)");
  db.Exec("CREATE TABLE y (a INT)");
  const auto s = db.conn->Execute("SELECT a FROM x, y WHERE x.a = y.a");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.status().message().find("ambiguous"), std::string::npos);
}

TEST(BinderErrors, AggregateInWhereRejected) {
  Db db;
  db.Exec("CREATE TABLE t (a INT)");
  EXPECT_FALSE(db.conn->Execute("SELECT a FROM t WHERE COUNT(*) > 1").ok());
}

TEST(BinderErrors, AliasResolution) {
  Db db;
  db.Exec("CREATE TABLE t (a INT)");
  db.Exec("INSERT INTO t VALUES (1)");
  // Alias hides the table name for qualification purposes... both resolve.
  EXPECT_EQ(db.Exec("SELECT x.a FROM t x").rows.size(), 1u);
  EXPECT_EQ(db.Exec("SELECT t.a FROM t t").rows.size(), 1u);
}

// --- Degenerate shapes ---

TEST(EdgeCases, EmptyTableEverything) {
  Db db;
  db.Exec("CREATE TABLE t (a INT, s VARCHAR(8))");
  EXPECT_EQ(db.Exec("SELECT * FROM t").rows.size(), 0u);
  EXPECT_EQ(db.Exec("SELECT a FROM t WHERE a = 1").rows.size(), 0u);
  EXPECT_EQ(db.Exec("SELECT DISTINCT a FROM t ORDER BY a").rows.size(), 0u);
  EXPECT_EQ(db.Exec("SELECT a, COUNT(*) FROM t GROUP BY a").rows.size(), 0u);
  EXPECT_EQ(db.Exec("UPDATE t SET a = 1").rows_affected, 0u);
  EXPECT_EQ(db.Exec("DELETE FROM t").rows_affected, 0u);
  // Joins against empty tables.
  db.Exec("CREATE TABLE u (a INT)");
  db.Exec("INSERT INTO u VALUES (1)");
  EXPECT_EQ(db.Exec("SELECT COUNT(*) FROM t JOIN u ON t.a = u.a")
                .rows[0][0]
                .AsInt(),
            0);
}

TEST(EdgeCases, CrossJoinWithoutPredicate) {
  Db db;
  db.Exec("CREATE TABLE a (x INT)");
  db.Exec("CREATE TABLE b (y INT)");
  db.Exec("INSERT INTO a VALUES (1), (2), (3)");
  db.Exec("INSERT INTO b VALUES (10), (20)");
  // Cartesian product must still work (deferral is a heuristic, not a ban).
  EXPECT_EQ(db.Exec("SELECT COUNT(*) FROM a, b").rows[0][0].AsInt(), 6);
}

TEST(EdgeCases, LimitZeroAndOverLimit) {
  Db db;
  db.Exec("CREATE TABLE t (a INT)");
  db.Exec("INSERT INTO t VALUES (1), (2)");
  EXPECT_EQ(db.Exec("SELECT a FROM t LIMIT 0").rows.size(), 0u);
  EXPECT_EQ(db.Exec("SELECT a FROM t LIMIT 99").rows.size(), 2u);
}

TEST(EdgeCases, WidePredicateExpressions) {
  Db db;
  db.Exec("CREATE TABLE t (a INT, b INT, c INT)");
  db.Exec("INSERT INTO t VALUES (1, 2, 3), (4, 5, 6), (7, 8, 9)");
  EXPECT_EQ(db.Exec("SELECT a FROM t WHERE (a + b) * 2 = c * 2 AND "
                    "NOT (c BETWEEN 7 AND 9)")
                .rows.size(),
            1u);
  EXPECT_EQ(db.Exec("SELECT a FROM t WHERE a IN (1, 4) AND b IN (5)")
                .rows.size(),
            1u);
}

TEST(EdgeCases, StringsWithQuotesAndUnicodeBytes) {
  Db db;
  db.Exec("CREATE TABLE t (s VARCHAR(40))");
  db.Exec("INSERT INTO t VALUES ('it''s'), ('naïve')");
  EXPECT_EQ(db.Exec("SELECT s FROM t WHERE s = 'it''s'").rows.size(), 1u);
  EXPECT_EQ(db.Exec("SELECT s FROM t WHERE s = 'naïve'").rows.size(), 1u);
}

TEST(EdgeCases, BooleanAndDateColumns) {
  Db db;
  db.Exec("CREATE TABLE t (ok BOOLEAN, d DATE)");
  db.Exec("INSERT INTO t VALUES (TRUE, 19000), (FALSE, 19100), (NULL, NULL)");
  EXPECT_EQ(db.Exec("SELECT COUNT(*) FROM t WHERE ok = TRUE")
                .rows[0][0]
                .AsInt(),
            1);
  EXPECT_EQ(db.Exec("SELECT COUNT(*) FROM t WHERE d > 19050")
                .rows[0][0]
                .AsInt(),
            1);
}

TEST(EdgeCases, LikeUnderscoreWildcard) {
  Db db;
  db.Exec("CREATE TABLE t (s VARCHAR(10))");
  db.Exec("INSERT INTO t VALUES ('cat'), ('cut'), ('cart')");
  EXPECT_EQ(db.Exec("SELECT s FROM t WHERE s LIKE 'c_t'").rows.size(), 2u);
  EXPECT_EQ(db.Exec("SELECT s FROM t WHERE s NOT LIKE 'c_t'").rows.size(),
            1u);
}

TEST(EdgeCases, RowNearPageSizeBoundary) {
  Db db;
  db.Exec("CREATE TABLE t (s VARCHAR(4000))");
  // A row just under the page capacity round-trips; an impossible one errors.
  const std::string big(3900, 'x');
  EXPECT_TRUE(db.conn->Execute("INSERT INTO t VALUES ('" + big + "')").ok());
  auto r = db.Exec("SELECT s FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString().size(), big.size());
  const std::string too_big(5000, 'y');
  EXPECT_FALSE(
      db.conn->Execute("INSERT INTO t VALUES ('" + too_big + "')").ok());
}

TEST(EdgeCases, DivisionByZeroSurfacesError) {
  Db db;
  db.Exec("CREATE TABLE t (a INT)");
  db.Exec("INSERT INTO t VALUES (0)");
  EXPECT_FALSE(db.conn->Execute("SELECT 1 / a FROM t").ok());
}

// --- Multi-statement procedures ---

TEST(ProcedureTest, MultiStatementBodyRunsInOrder) {
  Db db;
  db.Exec("CREATE TABLE log (v INT)");
  db.Exec("CREATE PROCEDURE twice (:v) AS "
          "INSERT INTO log VALUES (:v); "
          "INSERT INTO log VALUES (:v + 1); "
          "SELECT COUNT(*) FROM log");
  auto r = db.Exec("CALL twice(10)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  r = db.Exec("CALL twice(20)");
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);
  EXPECT_EQ(db.Exec("SELECT COUNT(*) FROM log WHERE v = 21")
                .rows[0][0]
                .AsInt(),
            1);
}

TEST(ProcedureTest, StringParameterSubstitutionEscapes) {
  Db db;
  db.Exec("CREATE TABLE t (s VARCHAR(20))");
  db.Exec("CREATE PROCEDURE add_s (:s) AS INSERT INTO t VALUES (:s)");
  auto r = db.conn->Execute("CALL add_s('o''neil')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(db.Exec("SELECT s FROM t").rows[0][0].AsString(), "o'neil");
}

TEST(ProcedureTest, WrongArityRejected) {
  Db db;
  db.Exec("CREATE TABLE t (a INT)");
  db.Exec("CREATE PROCEDURE p (:a) AS SELECT a FROM t WHERE a = :a");
  EXPECT_FALSE(db.conn->Execute("CALL p()").ok());
  EXPECT_FALSE(db.conn->Execute("CALL p(1, 2)").ok());
  EXPECT_EQ(db.conn->Execute("CALL missing(1)").status().code(),
            StatusCode::kNotFound);
}

TEST(ProcedureTest, RowMovingUpdateKeepsIndexCorrect) {
  // A growing UPDATE relocates the row (delete + insert); every index must
  // follow the rid even when the key did not change.
  Db db;
  db.Exec("CREATE TABLE t (k INT NOT NULL, s VARCHAR(600))");
  db.Exec("CREATE INDEX tk ON t (k)");
  for (int i = 0; i < 50; ++i) {
    db.Exec("INSERT INTO t VALUES (" + std::to_string(i) + ", 'tiny')");
  }
  const std::string big(500, 'B');
  EXPECT_EQ(db.Exec("UPDATE t SET s = '" + big + "' WHERE k = 5")
                .rows_affected,
            1u);
  auto r = db.Exec("SELECT s FROM t WHERE k = 5");
  ASSERT_EQ(r.rows.size(), 1u);  // found via the index, post-move
  EXPECT_EQ(r.rows[0][0].AsString().size(), big.size());
  // And a rollback of a moving update restores everything.
  db.Exec("BEGIN");
  db.Exec("UPDATE t SET s = '" + big + big + big + "' WHERE k = 6");
  db.Exec("ROLLBACK");
  r = db.Exec("SELECT s FROM t WHERE k = 6");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "tiny");
}

// --- Histogram boundary conditions ---

TEST(HistogramEdge, EmptyAndSingleValue) {
  auto empty = stats::Histogram::Build(TypeId::kInt, {});
  EXPECT_EQ(empty.EstimateEquals(5), 0.0);
  EXPECT_EQ(empty.EstimateRange(0, true, 10, true), 0.0);

  auto one = stats::Histogram::Build(TypeId::kInt, {42.0});
  EXPECT_NEAR(one.EstimateEquals(42.0), 1.0, 0.01);
  EXPECT_EQ(one.EstimateEquals(41.0), 0.0);
}

TEST(HistogramEdge, AllNulls) {
  auto h = stats::Histogram::Build(TypeId::kInt, {}, /*nulls=*/100);
  EXPECT_DOUBLE_EQ(h.EstimateIsNull(), 1.0);
  EXPECT_EQ(h.EstimateEquals(1), 0.0);
}

TEST(HistogramEdge, InvertedRangeIsEmpty) {
  auto h = stats::Histogram::Build(TypeId::kInt, {1, 2, 3, 4, 5});
  EXPECT_EQ(h.EstimateRange(10, true, 5, true), 0.0);
}

TEST(HistogramEdge, DomainExtensionOnOutOfRangeInsert) {
  auto h = stats::Histogram::Build(TypeId::kInt, {10, 11, 12});
  h.OnInsert(1000, false);
  EXPECT_GT(h.EstimateRange(500, true, 1500, true), 0.0);
  EXPECT_GE(h.max_value(), 1000.0);
}

// --- Parser robustness fuzzing ---

TEST(ParserFuzz, RandomTokenSoupNeverCrashes) {
  static const char* kFragments[] = {
      "SELECT", "FROM", "WHERE",  "GROUP",  "BY",    "ORDER", "LIMIT",
      "INSERT", "INTO", "VALUES", "UPDATE", "SET",   "JOIN",  "ON",
      "AND",    "OR",   "NOT",    "(",      ")",     ",",     "=",
      "<",      ">",    "*",      "t",      "a",     "b",     "42",
      "3.14",   "'s'",  ":p",     "NULL",   "COUNT", "IN",    "BETWEEN",
      "LIKE",   "IS",   ";",      "--x",    "<=",    "<>"};
  Rng rng(2024);
  for (int i = 0; i < 3000; ++i) {
    std::string sql;
    const int len = 1 + static_cast<int>(rng.Uniform(24));
    for (int j = 0; j < len; ++j) {
      sql += kFragments[rng.Uniform(std::size(kFragments))];
      sql += " ";
    }
    // Must return a Status or a statement — never crash or hang.
    const auto r = engine::Parse(sql);
    (void)r;
  }
}

TEST(ParserFuzz, MutatedValidStatementsNeverCrash) {
  const std::string base =
      "SELECT a, COUNT(*) FROM t JOIN u ON t.a = u.b WHERE a BETWEEN 1 AND "
      "5 AND s LIKE '%x%' GROUP BY a HAVING COUNT(*) > 2 ORDER BY a LIMIT 3";
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    std::string sql = base;
    const int mutations = 1 + static_cast<int>(rng.Uniform(4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.Uniform(sql.size());
      switch (rng.Uniform(3)) {
        case 0: sql.erase(pos, 1 + rng.Uniform(5)); break;
        case 1: sql.insert(pos, 1, static_cast<char>(32 + rng.Uniform(95))); break;
        default: if (pos < sql.size()) sql[pos] = static_cast<char>(32 + rng.Uniform(95)); break;
      }
    }
    const auto r = engine::Parse(sql);
    (void)r;
  }
}

// --- Spill codec resilience ---

TEST(SpillEdge, TruncatedBytesRejected) {
  const std::string bytes =
      exec::EncodeValues({Value::Int(1), Value::String("abc")});
  size_t consumed = 0;
  for (size_t cut = 0; cut + 1 < bytes.size(); cut += 3) {
    auto r = exec::DecodeValues(bytes.data(), cut, &consumed);
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
  }
}

TEST(SpillEdge, EmptyTuple) {
  const std::string bytes = exec::EncodeValues({});
  size_t consumed = 0;
  auto r = exec::DecodeValues(bytes.data(), bytes.size(), &consumed);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

}  // namespace
}  // namespace hdb
