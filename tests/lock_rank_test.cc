// Lock-rank enforcement (common/lock_rank.h): death tests proving that
// hierarchy violations abort deterministically with both sites named, the
// documented same-rank exceptions stay legal, and an engine-level
// regression re-running the PR-3 eviction-vs-fsync-barrier ordering with
// the checker live.
//
// Everything here requires HDB_LOCK_RANK_ENABLED (the default outside
// Release builds); without it the wrappers are bare mutexes and the suite
// skips.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/lock_rank.h"
#include "engine/database.h"
#include "os/stable_storage.h"

namespace hdb {
namespace {

#if defined(HDB_LOCK_RANK_ENABLED)

// Fixture-free globals: each death test's child process re-acquires from a
// clean thread, so no state leaks between tests.
RankedMutex<LockRank::kBufferPool> g_pool_mu;
RankedMutex<LockRank::kBufferPool> g_pool_mu2;
RankedMutex<LockRank::kWalBuffer> g_wal_mu;
RankedSharedMutex<LockRank::kTableHeap> g_heap_a;
RankedSharedMutex<LockRank::kTableHeap> g_heap_b;
RankedRecursiveMutex<LockRank::kHistogram> g_hist_a;
RankedRecursiveMutex<LockRank::kHistogram> g_hist_b;

void AcquireOutOfOrder() {
  LockGuard wal(g_wal_mu);
  LockGuard pool(g_pool_mu);  // kBufferPool < kWalBuffer: must abort
}

void AcquireSameRankExclusive() {
  LockGuard a(g_pool_mu);
  LockGuard b(g_pool_mu2);  // same rank, both exclusive: must abort
}

void AcquireSameMutexTwice() {
  LockGuard a(g_pool_mu);
  LockGuard b(g_pool_mu);  // self-deadlock on a non-recursive mutex
}

void AcquireSharedUnderExclusive() {
  UniqueLock a(g_heap_a);  // exclusive hold at kTableHeap
  SharedLock b(g_heap_b);  // shared at the same rank: deadlock recipe
}

TEST(LockRankDeathTest, OutOfOrderAbortsNamingBothSites) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The report must name the offending acquisition (this file) with its
  // rank...
  EXPECT_DEATH(AcquireOutOfOrder(),
               "attempted: rank 100 \\(BufferPool\\) at [^ ]*lock_rank_test");
  // ...and the conflicting lock already held, also with its site.
  EXPECT_DEATH(
      AcquireOutOfOrder(),
      "while holding: rank 120 \\(WalBuffer\\) acquired at [^ ]*lock_rank_test");
}

TEST(LockRankDeathTest, SameRankExclusiveAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(AcquireSameRankExclusive(),
               "same-rank acquisition in exclusive mode");
}

TEST(LockRankDeathTest, RecursiveAcquisitionOfNonRecursiveAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(AcquireSameMutexTwice(),
               "recursive acquisition of a non-recursive lock");
}

TEST(LockRankDeathTest, SharedAcquireAtExclusivelyHeldRankAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(AcquireSharedUnderExclusive(),
               "shared acquisition at a rank held exclusively");
}

TEST(LockRankTest, InOrderChainIsLegal) {
  SharedLock heap(g_heap_a);  // 70
  LockGuard pool(g_pool_mu);  // 100
  LockGuard wal(g_wal_mu);    // 120
}

TEST(LockRankTest, SameRankSharedStackingIsLegal) {
  // Two table scans in one statement: both heap latches shared.
  SharedLock a(g_heap_a);
  SharedLock b(g_heap_b);
}

TEST(LockRankTest, RecursiveRankReentryIsLegal) {
  // Histogram self-lock plus the JoinHistogram address-ordered pair.
  LockGuard a(g_hist_a);
  LockGuard b(g_hist_b);
  LockGuard again(g_hist_a);
}

TEST(LockRankTest, UniqueLockDropAndRelockIsLegal) {
  // The buffer pool's GetVictimFrame dance: drop the pool latch around the
  // WAL barrier, take the barrier-side lock, re-acquire.
  UniqueLock pool(g_pool_mu);
  pool.unlock();
  {
    LockGuard wal(g_wal_mu);
  }
  pool.lock();  // re-acquire reports the original construction site
}

TEST(LockRankTest, ReleaseOnDifferentThreadThanLowerRankHolderIsLegal) {
  // Rank stacks are per-thread: another thread holding a high rank must
  // not constrain this thread.
  LockGuard wal(g_wal_mu);
  std::thread t([] { LockGuard pool(g_pool_mu); });
  t.join();
}

// --- PR-3 regression: eviction vs fsync barrier under the checker ---------
//
// A tiny pool forces dirty-page eviction on every insert batch while
// concurrent committers drive EnsureDurable: the eviction path must drop
// the pool latch (rank 100) before entering the WAL flush path (ranks
// 115/120) via the flush barrier — holding it across the barrier is
// exactly the inversion PR 3 fixed (pinned-victim protocol). With
// HDB_LOCK_RANK=ON this test aborts, not deadlocks, if that protocol ever
// regresses.
TEST(LockRankTest, EvictionVsFsyncBarrierOrderingHoldsUnderChecker) {
  auto media =
      std::make_shared<os::StableStorage>(engine::DatabaseOptions{}.page_bytes);
  engine::DatabaseOptions opts;
  opts.initial_pool_frames = 16;  // evict constantly
  opts.media = media;
  auto db = engine::Database::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status().message();

  auto setup = (*db)->Connect();
  ASSERT_TRUE(setup.ok());
  ASSERT_TRUE(
      (*setup)
          ->Execute("CREATE TABLE evict (k INT NOT NULL, v VARCHAR(64))")
          .ok());

  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto conn = (*db)->Connect();
      if (!conn.ok()) {
        failures.fetch_add(1);
        return;
      }
      const std::string pad(48, 'a' + static_cast<char>(t));
      for (int i = 0; i < kTxnsPerThread; ++i) {
        const std::string base =
            std::to_string(t * 1000 + i * 10);
        bool ok = (*conn)->Execute("BEGIN").ok();
        for (int r = 0; ok && r < 8; ++r) {
          ok = (*conn)
                   ->Execute("INSERT INTO evict VALUES (" + base + ", '" +
                             pad + "')")
                   .ok();
        }
        // COMMIT drives group commit + EnsureDurable while siblings evict.
        ok = ok && (*conn)->Execute("COMMIT").ok();
        if (!ok) failures.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);

  auto count = (*setup)->Execute("SELECT COUNT(*) FROM evict");
  ASSERT_TRUE(count.ok()) << count.status().message();
  ASSERT_EQ(count->rows.size(), 1u);
  EXPECT_EQ(count->rows[0][0].AsInt(), kThreads * kTxnsPerThread * 8);
}

#else  // !HDB_LOCK_RANK_ENABLED

TEST(LockRankTest, CheckerDisabledInThisBuild) {
  GTEST_SKIP() << "HDB_LOCK_RANK is OFF (Release default); the ranked "
                  "wrappers are bare mutexes here.";
}

#endif  // HDB_LOCK_RANK_ENABLED

}  // namespace
}  // namespace hdb
