#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "engine/database.h"
#include "engine/parser.h"

namespace hdb::engine {
namespace {

struct Db {
  Db() {
    auto db = Database::Open();
    EXPECT_TRUE(db.ok());
    database = std::move(*db);
    auto conn = database->Connect();
    EXPECT_TRUE(conn.ok());
    c = std::move(*conn);
  }

  QueryResult Exec(const std::string& sql) {
    auto r = c->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }
  Status Fail(const std::string& sql) {
    auto r = c->Execute(sql);
    EXPECT_FALSE(r.ok()) << sql;
    return r.status();
  }

  std::unique_ptr<Database> database;
  std::unique_ptr<Connection> c;
};

// --- Parser-level checks ---

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(Parse("FLY ME TO THE MOON").ok());
  EXPECT_FALSE(Parse("SELECT FROM x").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(Parse("INSERT INTO t VALUES (1").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t; SELECT b FROM t").ok());
}

TEST(ParserTest, AcceptsCoreForms) {
  EXPECT_TRUE(Parse("SELECT * FROM t").ok());
  EXPECT_TRUE(Parse("SELECT a, b AS x FROM t WHERE a = 1 AND b <> 'q'").ok());
  EXPECT_TRUE(Parse("SELECT t.a FROM t JOIN u ON t.a = u.b WHERE u.c > 3").ok());
  EXPECT_TRUE(
      Parse("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2 "
            "ORDER BY a DESC LIMIT 5").ok());
  EXPECT_TRUE(Parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5 "
                    "AND b LIKE '%x%' AND c IN (1, 2, 3) AND d IS NOT NULL")
                  .ok());
  EXPECT_TRUE(Parse("UPDATE t SET a = a + 1 WHERE b = 2").ok());
  EXPECT_TRUE(Parse("DELETE FROM t WHERE a < 0").ok());
  EXPECT_TRUE(Parse("CREATE TABLE t (a INT NOT NULL, b VARCHAR(40))").ok());
  EXPECT_TRUE(Parse("CREATE UNIQUE INDEX i ON t (a)").ok());
  EXPECT_TRUE(Parse("-- comment\nSELECT 1 + 2 FROM t;").ok());
}

TEST(ParserTest, StringEscapes) {
  auto stmt = Parse("SELECT a FROM t WHERE b = 'it''s'");
  ASSERT_TRUE(stmt.ok());
}

// --- DDL + basic DML ---

TEST(EngineTest, CreateInsertSelect) {
  Db db;
  db.Exec("CREATE TABLE emp (id INT NOT NULL, name VARCHAR(30), dept INT, "
          "salary DOUBLE)");
  db.Exec("INSERT INTO emp VALUES (1, 'ann', 10, 50.5), (2, 'bob', 20, 60.0),"
          " (3, 'carol', 10, 70.25)");
  auto r = db.Exec("SELECT name, salary FROM emp WHERE dept = 10 ORDER BY "
                   "salary");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");
  EXPECT_EQ(r.rows[1][0].AsString(), "carol");
  EXPECT_EQ(r.columns[1], "salary");
}

TEST(EngineTest, InsertColumnListAndNulls) {
  Db db;
  db.Exec("CREATE TABLE t (a INT NOT NULL, b VARCHAR(10), c DOUBLE)");
  db.Exec("INSERT INTO t (a) VALUES (1)");
  db.Exec("INSERT INTO t (c, a) VALUES (2.5, 2)");
  auto r = db.Exec("SELECT a, b, c FROM t WHERE b IS NULL ORDER BY a");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_DOUBLE_EQ(r.rows[1][2].AsDouble(), 2.5);
}

TEST(EngineTest, NotNullEnforced) {
  Db db;
  db.Exec("CREATE TABLE t (a INT NOT NULL)");
  const Status s = db.Fail("INSERT INTO t (a) VALUES (NULL)");
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
}

TEST(EngineTest, UpdateAndDelete) {
  Db db;
  db.Exec("CREATE TABLE t (id INT NOT NULL, v INT)");
  for (int i = 0; i < 20; ++i) {
    db.Exec("INSERT INTO t VALUES (" + std::to_string(i) + ", 0)");
  }
  auto r = db.Exec("UPDATE t SET v = id * 2 WHERE id >= 10");
  EXPECT_EQ(r.rows_affected, 10u);
  r = db.Exec("SELECT v FROM t WHERE id = 15");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 30);
  r = db.Exec("DELETE FROM t WHERE id < 5");
  EXPECT_EQ(r.rows_affected, 5u);
  r = db.Exec("SELECT COUNT(*) FROM t");
  EXPECT_EQ(r.rows[0][0].AsInt(), 15);
}

TEST(EngineTest, DmlUsesHeuristicBypass) {
  Db db;
  db.Exec("CREATE TABLE t (id INT NOT NULL, v INT)");
  db.Exec("INSERT INTO t VALUES (1, 1)");
  auto r = db.Exec("UPDATE t SET v = 2 WHERE id = 1");
  EXPECT_TRUE(r.diag.bypassed);  // §4.1: simple DML skips cost-based opt
}

TEST(EngineTest, DropTableAndIndex) {
  Db db;
  db.Exec("CREATE TABLE t (a INT)");
  db.Exec("CREATE INDEX ia ON t (a)");
  db.Exec("DROP INDEX ia");
  db.Exec("DROP TABLE t");
  EXPECT_EQ(db.Fail("SELECT * FROM t").code(), StatusCode::kNotFound);
}

// --- Expressions, predicates, projections ---

TEST(EngineTest, PredicateForms) {
  Db db;
  db.Exec("CREATE TABLE t (a INT, s VARCHAR(30))");
  db.Exec("INSERT INTO t VALUES (1, 'alpha one'), (2, 'beta two'), "
          "(3, 'gamma three'), (4, NULL), (5, 'alpha five')");
  EXPECT_EQ(db.Exec("SELECT a FROM t WHERE a BETWEEN 2 AND 4").rows.size(),
            3u);
  EXPECT_EQ(db.Exec("SELECT a FROM t WHERE a IN (1, 5, 99)").rows.size(), 2u);
  EXPECT_EQ(db.Exec("SELECT a FROM t WHERE s LIKE '%alpha%'").rows.size(),
            2u);
  EXPECT_EQ(db.Exec("SELECT a FROM t WHERE s IS NULL").rows.size(), 1u);
  EXPECT_EQ(db.Exec("SELECT a FROM t WHERE s IS NOT NULL").rows.size(), 4u);
  EXPECT_EQ(db.Exec("SELECT a FROM t WHERE NOT a = 1 AND (a = 2 OR a = 3)")
                .rows.size(),
            2u);
  EXPECT_EQ(db.Exec("SELECT a FROM t WHERE a + 1 = 3").rows.size(), 1u);
}

TEST(EngineTest, ProjectionExpressionsAndAliases) {
  Db db;
  db.Exec("CREATE TABLE t (a INT, b INT)");
  db.Exec("INSERT INTO t VALUES (3, 4)");
  auto r = db.Exec("SELECT a * b AS product, a + b sum2 FROM t");
  EXPECT_EQ(r.columns[0], "product");
  EXPECT_EQ(r.columns[1], "sum2");
  EXPECT_EQ(r.rows[0][0].AsInt(), 12);
  EXPECT_EQ(r.rows[0][1].AsInt(), 7);
}

// --- Joins ---

TEST(EngineTest, TwoWayJoinCorrect) {
  Db db;
  db.Exec("CREATE TABLE d (id INT NOT NULL, dname VARCHAR(20))");
  db.Exec("CREATE TABLE e (eid INT NOT NULL, dept INT, sal INT)");
  db.Exec("INSERT INTO d VALUES (10, 'eng'), (20, 'ops'), (30, 'hr')");
  db.Exec("INSERT INTO e VALUES (1, 10, 100), (2, 10, 200), (3, 20, 300), "
          "(4, 99, 400)");
  auto r = db.Exec(
      "SELECT e.eid, d.dname FROM e JOIN d ON e.dept = d.id ORDER BY e.eid");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][1].AsString(), "eng");
  EXPECT_EQ(r.rows[2][1].AsString(), "ops");
}

TEST(EngineTest, JoinAgainstBruteForce) {
  // Property test: random 3-table join checked against a nested-loop
  // reference computed in the test.
  Db db;
  db.Exec("CREATE TABLE a (x INT, y INT)");
  db.Exec("CREATE TABLE b (x INT, z INT)");
  db.Exec("CREATE TABLE c (z INT, w INT)");
  Rng rng(21);
  std::vector<std::pair<int, int>> ta, tb, tc;
  for (int i = 0; i < 60; ++i) {
    ta.emplace_back(rng.Uniform(10), rng.Uniform(100));
    tb.emplace_back(rng.Uniform(10), rng.Uniform(8));
    tc.emplace_back(rng.Uniform(8), rng.Uniform(100));
  }
  for (auto& [x, y] : ta) {
    db.Exec("INSERT INTO a VALUES (" + std::to_string(x) + ", " +
            std::to_string(y) + ")");
  }
  for (auto& [x, z] : tb) {
    db.Exec("INSERT INTO b VALUES (" + std::to_string(x) + ", " +
            std::to_string(z) + ")");
  }
  for (auto& [z, w] : tc) {
    db.Exec("INSERT INTO c VALUES (" + std::to_string(z) + ", " +
            std::to_string(w) + ")");
  }
  uint64_t expected = 0;
  for (auto& [ax, ay] : ta) {
    for (auto& [bx, bz] : tb) {
      if (ax != bx) continue;
      for (auto& [cz, cw] : tc) {
        if (bz == cz && ay > 50) ++expected;
      }
    }
  }
  auto r = db.Exec(
      "SELECT COUNT(*) FROM a, b, c WHERE a.x = b.x AND b.z = c.z AND "
      "a.y > 50");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(static_cast<uint64_t>(r.rows[0][0].AsInt()), expected);
}

TEST(EngineTest, IndexNLJoinChosenWithIndexAndStats) {
  Db db;
  db.Exec("CREATE TABLE dim (id INT NOT NULL, label VARCHAR(10))");
  db.Exec("CREATE TABLE fact (fid INT NOT NULL, dim_id INT)");
  for (int i = 0; i < 200; ++i) {
    db.Exec("INSERT INTO dim VALUES (" + std::to_string(i) + ", 'd')");
  }
  for (int i = 0; i < 2000; ++i) {
    db.Exec("INSERT INTO fact VALUES (" + std::to_string(i) + ", " +
            std::to_string(i % 200) + ")");
  }
  db.Exec("CREATE INDEX dim_id_ix ON dim (id)");
  db.Exec("CREATE STATISTICS fact");
  db.Exec("CREATE STATISTICS dim");
  auto explain = db.c->Explain(
      "SELECT fact.fid FROM fact JOIN dim ON fact.dim_id = dim.id "
      "WHERE dim.label = 'd'");
  ASSERT_TRUE(explain.ok());
  // Some join strategy was chosen and renders; correctness check below.
  auto r = db.Exec(
      "SELECT COUNT(*) FROM fact JOIN dim ON fact.dim_id = dim.id");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2000);
}

// --- Grouping, aggregates, having, distinct ---

TEST(EngineTest, GroupByWithAggregates) {
  Db db;
  db.Exec("CREATE TABLE s (dept INT, sal DOUBLE)");
  db.Exec("INSERT INTO s VALUES (1, 10), (1, 20), (2, 30), (2, 50), (3, 5)");
  auto r = db.Exec(
      "SELECT dept, COUNT(*), SUM(sal), AVG(sal), MIN(sal), MAX(sal) "
      "FROM s GROUP BY dept ORDER BY dept");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
  EXPECT_DOUBLE_EQ(r.rows[1][2].AsDouble(), 80.0);
  EXPECT_DOUBLE_EQ(r.rows[1][3].AsDouble(), 40.0);
  EXPECT_DOUBLE_EQ(r.rows[2][4].AsDouble(), 5.0);
}

TEST(EngineTest, HavingFiltersGroups) {
  Db db;
  db.Exec("CREATE TABLE s (dept INT, sal DOUBLE)");
  db.Exec("INSERT INTO s VALUES (1, 10), (1, 20), (2, 30), (3, 5)");
  auto r = db.Exec(
      "SELECT dept FROM s GROUP BY dept HAVING COUNT(*) > 1 ORDER BY dept");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
}

TEST(EngineTest, ScalarAggregateOverEmptyTable) {
  Db db;
  db.Exec("CREATE TABLE t (a INT)");
  auto r = db.Exec("SELECT COUNT(*), SUM(a), MAX(a) FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_TRUE(r.rows[0][2].is_null());
}

TEST(EngineTest, AggregatesIgnoreNulls) {
  Db db;
  db.Exec("CREATE TABLE t (a INT)");
  db.Exec("INSERT INTO t VALUES (1), (NULL), (3)");
  auto r = db.Exec("SELECT COUNT(*), COUNT(a), AVG(a) FROM t");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), 2.0);
}

TEST(EngineTest, GroupByValidationRejectsStrayColumns) {
  Db db;
  db.Exec("CREATE TABLE t (a INT, b INT)");
  EXPECT_FALSE(db.c->Execute("SELECT b FROM t GROUP BY a").ok());
}

TEST(EngineTest, DistinctAndLimit) {
  Db db;
  db.Exec("CREATE TABLE t (a INT)");
  db.Exec("INSERT INTO t VALUES (1), (2), (2), (3), (3), (3)");
  EXPECT_EQ(db.Exec("SELECT DISTINCT a FROM t").rows.size(), 3u);
  EXPECT_EQ(db.Exec("SELECT a FROM t LIMIT 2").rows.size(), 2u);
  EXPECT_EQ(db.Exec("SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 2")
                .rows.size(),
            2u);
}

TEST(EngineTest, OrderByMultipleKeysAndDirections) {
  Db db;
  db.Exec("CREATE TABLE t (a INT, b INT)");
  db.Exec("INSERT INTO t VALUES (1, 9), (1, 3), (2, 5), (2, 1)");
  auto r = db.Exec("SELECT a, b FROM t ORDER BY a ASC, b DESC");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 9);
  EXPECT_EQ(r.rows[1][1].AsInt(), 3);
  EXPECT_EQ(r.rows[2][1].AsInt(), 5);
}

// --- Index scans end-to-end ---

TEST(EngineTest, IndexScanMatchesSeqScanResults) {
  Db db;
  db.Exec("CREATE TABLE t (k INT NOT NULL, v VARCHAR(8))");
  for (int i = 0; i < 500; ++i) {
    db.Exec("INSERT INTO t VALUES (" + std::to_string(i % 50) + ", 'r')");
  }
  const auto before = db.Exec("SELECT COUNT(*) FROM t WHERE k = 7");
  db.Exec("CREATE INDEX tk ON t (k)");
  const auto after = db.Exec("SELECT COUNT(*) FROM t WHERE k = 7");
  EXPECT_EQ(before.rows[0][0].AsInt(), after.rows[0][0].AsInt());
  // Range predicates through the index too.
  EXPECT_EQ(db.Exec("SELECT COUNT(*) FROM t WHERE k BETWEEN 10 AND 19")
                .rows[0][0]
                .AsInt(),
            100);
}

TEST(EngineTest, IndexMaintainedAcrossDml) {
  Db db;
  db.Exec("CREATE TABLE t (k INT NOT NULL, v INT)");
  db.Exec("CREATE INDEX tk ON t (k)");
  for (int i = 0; i < 100; ++i) {
    db.Exec("INSERT INTO t VALUES (" + std::to_string(i) + ", 0)");
  }
  db.Exec("DELETE FROM t WHERE k < 10");
  db.Exec("UPDATE t SET k = 5 WHERE k = 50");
  auto r = db.Exec("SELECT COUNT(*) FROM t WHERE k = 5");
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  r = db.Exec("SELECT COUNT(*) FROM t WHERE k = 50");
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
}

// --- Transactions ---

TEST(EngineTest, RollbackUndoesInsertUpdateDelete) {
  Db db;
  db.Exec("CREATE TABLE t (id INT NOT NULL, v INT)");
  db.Exec("INSERT INTO t VALUES (1, 10), (2, 20)");
  db.Exec("BEGIN");
  db.Exec("INSERT INTO t VALUES (3, 30)");
  db.Exec("UPDATE t SET v = 99 WHERE id = 1");
  db.Exec("DELETE FROM t WHERE id = 2");
  EXPECT_EQ(db.Exec("SELECT COUNT(*) FROM t").rows[0][0].AsInt(), 2);
  db.Exec("ROLLBACK");
  auto r = db.Exec("SELECT id, v FROM t ORDER BY id");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 10);
  EXPECT_EQ(r.rows[1][0].AsInt(), 2);
}

TEST(EngineTest, CommitMakesChangesDurable) {
  Db db;
  db.Exec("CREATE TABLE t (id INT)");
  db.Exec("BEGIN");
  db.Exec("INSERT INTO t VALUES (1)");
  db.Exec("COMMIT");
  EXPECT_EQ(db.Exec("SELECT COUNT(*) FROM t").rows[0][0].AsInt(), 1);
}

TEST(EngineTest, ConflictingWritersAbort) {
  Db db;
  db.Exec("CREATE TABLE t (id INT NOT NULL, v INT)");
  db.Exec("INSERT INTO t VALUES (1, 0)");
  db.Exec("BEGIN");
  db.Exec("UPDATE t SET v = 1 WHERE id = 1");  // row locked by txn 1
  auto conn2 = db.database->Connect();
  ASSERT_TRUE(conn2.ok());
  auto r = (*conn2)->Execute("UPDATE t SET v = 2 WHERE id = 1");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAborted);
  db.Exec("COMMIT");
}

// --- Procedures and the plan cache ---

TEST(EngineTest, ProcedureWithParamsAndPlanCache) {
  Db db;
  db.Exec("CREATE TABLE t (k INT NOT NULL, v INT)");
  for (int i = 0; i < 100; ++i) {
    db.Exec("INSERT INTO t VALUES (" + std::to_string(i % 10) + ", " +
            std::to_string(i) + ")");
  }
  db.Exec("CREATE PROCEDURE get_by_k (:k) AS SELECT v FROM t WHERE k = :k");

  // First calls train; later calls hit the cache.
  for (int i = 0; i < 8; ++i) {
    auto r = db.Exec("CALL get_by_k(" + std::to_string(i % 3) + ")");
    EXPECT_EQ(r.rows.size(), 10u);
  }
  const auto& stats = db.c->plan_cache().stats();
  EXPECT_GT(stats.trainings_completed, 0u);
  EXPECT_GT(stats.cached_uses, 0u);

  // Different parameters, same cached plan, correct (different) results.
  auto r0 = db.Exec("CALL get_by_k(0)");
  auto r9 = db.Exec("CALL get_by_k(9)");
  std::set<int64_t> v0, v9;
  for (auto& row : r0.rows) v0.insert(row[0].AsInt());
  for (auto& row : r9.rows) v9.insert(row[0].AsInt());
  EXPECT_NE(v0, v9);

  // Procedure statistics accumulated (paper §3.2).
  bool found = false;
  db.database->proc_stats().Estimate("get_by_k", 0, &found);
  EXPECT_TRUE(found);
}

TEST(EngineTest, ProcedureDmlWithParams) {
  Db db;
  db.Exec("CREATE TABLE t (k INT NOT NULL)");
  db.Exec("CREATE PROCEDURE add_row (:k) AS INSERT INTO t VALUES (:k)");
  db.Exec("CALL add_row(5)");
  db.Exec("CALL add_row(6)");
  EXPECT_EQ(db.Exec("SELECT COUNT(*) FROM t").rows[0][0].AsInt(), 2);
}

TEST(EngineTest, AdHocStatementsReOptimizeEveryTime) {
  Db db;
  db.Exec("CREATE TABLE t (k INT)");
  db.Exec("INSERT INTO t VALUES (1)");
  for (int i = 0; i < 5; ++i) db.Exec("SELECT k FROM t WHERE k = 1");
  // Plan cache only serves procedure statements (paper §4.1).
  EXPECT_EQ(db.c->plan_cache().stats().invocations, 0u);
}

// --- Statistics integration ---

TEST(EngineTest, CreateStatisticsImprovesEstimates) {
  Db db;
  db.Exec("CREATE TABLE t (k INT)");
  for (int i = 0; i < 1000; ++i) {
    db.Exec("INSERT INTO t VALUES (" + std::to_string(i % 4) + ")");
  }
  db.Exec("CREATE STATISTICS t (k)");
  const double sel = db.database->stats().SelEquals(
      db.database->catalog().GetTable("t").value()->oid, 0, Value::Int(1));
  EXPECT_NEAR(sel, 0.25, 0.05);
}

TEST(EngineTest, ExecutionFeedbackRefinesStats) {
  Db db;
  db.Exec("CREATE TABLE t (k INT)");
  for (int i = 0; i < 500; ++i) {
    db.Exec("INSERT INTO t VALUES (" + std::to_string(i % 10) + ")");
  }
  db.Exec("CREATE STATISTICS t (k)");
  const uint32_t oid = db.database->catalog().GetTable("t").value()->oid;
  // Make the distribution drift massively without stats-aware DML paths
  // noticing the skew change... then let query feedback catch it.
  for (int i = 0; i < 500; ++i) db.Exec("INSERT INTO t VALUES (7)");
  for (int i = 0; i < 5; ++i) db.Exec("SELECT COUNT(*) FROM t WHERE k = 7");
  const double sel = db.database->stats().SelEquals(oid, 0, Value::Int(7));
  EXPECT_GT(sel, 0.3);  // true value is 550/1000
}

TEST(EngineTest, SetOptionStored) {
  Db db;
  db.Exec("SET OPTION collect_statistics_on_dml = 'off'");
  EXPECT_EQ(db.database->catalog().GetOption("collect_statistics_on_dml"),
            "off");
}

TEST(EngineTest, ExplainRendersPlan) {
  Db db;
  db.Exec("CREATE TABLE t (a INT)");
  db.Exec("INSERT INTO t VALUES (1)");
  auto text = db.c->Explain("SELECT a FROM t WHERE a = 1");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("SeqScan"), std::string::npos);
  EXPECT_NE(text->find("Project"), std::string::npos);
}

TEST(EngineTest, ForeignKeyInformsJoinSelectivity) {
  Db db;
  db.Exec("CREATE TABLE parent (id INT NOT NULL)");
  db.Exec(
      "CREATE TABLE child (pid INT, FOREIGN KEY (pid) REFERENCES parent "
      "(id))");
  EXPECT_EQ(db.database->catalog().foreign_keys().size(), 1u);
}

TEST(EngineTest, ConnectionCountTracksLifecycle) {
  Db db;
  EXPECT_EQ(db.database->connection_count(), 1);
  {
    auto c2 = db.database->Connect();
    ASSERT_TRUE(c2.ok());
    EXPECT_EQ(db.database->connection_count(), 2);
  }
  EXPECT_EQ(db.database->connection_count(), 1);
}

TEST(EngineTest, LoadTableBulkBuildsStats) {
  Db db;
  db.Exec("CREATE TABLE t (k INT, s VARCHAR(20))");
  std::vector<table::Row> rows;
  for (int i = 0; i < 5000; ++i) {
    rows.push_back({Value::Int(i % 100), Value::String("word" +
                    std::to_string(i % 7))});
  }
  ASSERT_TRUE(db.database->LoadTable("t", rows).ok());
  EXPECT_EQ(db.Exec("SELECT COUNT(*) FROM t").rows[0][0].AsInt(), 5000);
  const uint32_t oid = db.database->catalog().GetTable("t").value()->oid;
  EXPECT_TRUE(db.database->stats().HasStats(oid, 0));
  EXPECT_TRUE(db.database->stats().HasStats(oid, 1));
  EXPECT_NEAR(db.database->stats().SelEquals(oid, 0, Value::Int(5)), 0.01,
              0.005);
}

TEST(EngineTest, CalibrateRequiresDevice) {
  Db db;  // no device attached
  EXPECT_EQ(db.Fail("CALIBRATE DATABASE").code(), StatusCode::kNotSupported);
}

TEST(EngineTest, CalibrateStoresModelInCatalog) {
  DatabaseOptions opts;
  opts.device = DeviceKind::kRotational;
  auto db = Database::Open(opts);
  ASSERT_TRUE(db.ok());
  auto conn = (*db)->Connect();
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE((*conn)->Execute("CALIBRATE DATABASE").ok());
  EXPECT_FALSE((*db)->catalog().dtt_model().is_default());
  // The calibrated model round-trips through its catalog text form.
  const std::string blob = (*db)->catalog().dtt_model().Serialize();
  EXPECT_TRUE(os::DttModel::Parse(blob).ok());
}

}  // namespace
}  // namespace hdb::engine
