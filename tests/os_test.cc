#include <gtest/gtest.h>

#include "os/dtt_model.h"
#include "os/memory_env.h"
#include "os/virtual_clock.h"
#include "os/virtual_disk.h"

namespace hdb::os {
namespace {

TEST(VirtualClockTest, AdvanceAndSet) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  EXPECT_EQ(clock.Advance(50), 150);
  clock.SetMicros(7);
  EXPECT_EQ(clock.NowMicros(), 7);
}

TEST(MemoryEnvTest, WorkingSetEqualsAllocationWhenUncontended) {
  MemoryEnv env(100 << 20);
  env.SetAllocation("db", 30 << 20);
  EXPECT_EQ(env.WorkingSetSize("db"), 30u << 20);
  EXPECT_EQ(env.FreePhysical(), 70u << 20);
}

TEST(MemoryEnvTest, OvercommitTrimsWorkingSetsProportionally) {
  MemoryEnv env(100 << 20);
  env.SetAllocation("db", 80 << 20);
  env.SetAllocation("app", 80 << 20);
  // 160 MB demanded on a 100 MB machine: each process sees 50 MB resident.
  EXPECT_EQ(env.WorkingSetSize("db"), 50u << 20);
  EXPECT_EQ(env.WorkingSetSize("app"), 50u << 20);
  EXPECT_EQ(env.FreePhysical(), 0u);
}

TEST(MemoryEnvTest, RemoveProcessFreesMemory) {
  MemoryEnv env(64 << 20);
  env.SetAllocation("app", 60 << 20);
  env.RemoveProcess("app");
  EXPECT_EQ(env.FreePhysical(), 64u << 20);
  EXPECT_EQ(env.Allocation("app"), 0u);
}

// --- Default DTT model: the Figure 2(a) shape properties ---

TEST(DttModelTest, SequentialCostIsTransferOnly) {
  const DttModel m = DttModel::Default();
  // Band 1 = sequential: well under a millisecond per 4K page.
  EXPECT_LT(m.MicrosPerPage(DttOp::kRead, 4096, 1), 200.0);
}

TEST(DttModelTest, CostIncreasesWithBandSize) {
  const DttModel m = DttModel::Default();
  double prev = 0;
  for (const double band : {1.0, 4.0, 64.0, 512.0, 2048.0, 100000.0}) {
    const double cost = m.MicrosPerPage(DttOp::kRead, 4096, band);
    EXPECT_GE(cost, prev) << "band " << band;
    prev = cost;
  }
}

TEST(DttModelTest, RandomCostApproachesSeekPlusRotation) {
  const DttModel m = DttModel::Default();
  const double big = m.MicrosPerPage(DttOp::kRead, 4096, 1e6);
  EXPECT_GT(big, 8000.0);
  EXPECT_LT(big, 20000.0);
}

TEST(DttModelTest, WritesCheaperThanReadsAtLargeBands) {
  // The paper's counterintuitive observation: async writes benefit from
  // scheduling, so the write curve lies below the read curve.
  const DttModel m = DttModel::Default();
  for (const double band : {64.0, 1024.0, 100000.0}) {
    EXPECT_LT(m.MicrosPerPage(DttOp::kWrite, 4096, band),
              m.MicrosPerPage(DttOp::kRead, 4096, band));
  }
}

TEST(DttModelTest, LargerPagesCostMorePerPage) {
  const DttModel m = DttModel::Default();
  EXPECT_GT(m.MicrosPerPage(DttOp::kRead, 8192, 1000),
            m.MicrosPerPage(DttOp::kRead, 4096, 1000));
}

TEST(DttModelTest, SerializeParseRoundTrip) {
  DttModel m = DttModel::Calibrated("test-dev");
  DttModel::Curve c;
  c.bands = {1, 100, 10000};
  c.micros = {50, 3000, 9000};
  m.SetCurve(DttOp::kRead, 4096, c);
  m.SetCurve(DttOp::kWrite, 4096, c);

  const std::string blob = m.Serialize();
  auto parsed = DttModel::Parse(blob);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->is_default());
  EXPECT_EQ(parsed->device_name(), "test-dev");
  EXPECT_DOUBLE_EQ(parsed->MicrosPerPage(DttOp::kRead, 4096, 100), 3000.0);
}

TEST(DttModelTest, ParseRejectsGarbage) {
  EXPECT_FALSE(DttModel::Parse("not a model").ok());
}

TEST(DttModelTest, CalibratedInterpolatesInLogSpace) {
  DttModel m = DttModel::Calibrated("dev");
  DttModel::Curve c;
  c.bands = {1, 10000};
  c.micros = {0, 8000};
  m.SetCurve(DttOp::kRead, 4096, c);
  // log-interpolation: band 100 is halfway between 1 and 10000 in log.
  EXPECT_NEAR(m.MicrosPerPage(DttOp::kRead, 4096, 100), 4000.0, 100.0);
  // Clamped at the extremes.
  EXPECT_DOUBLE_EQ(m.MicrosPerPage(DttOp::kRead, 4096, 1e9), 8000.0);
}

// --- Virtual devices ---

TEST(RotationalDiskTest, SequentialFasterThanRandom) {
  RotationalDiskOptions opts;
  RotationalDisk disk(opts);
  double seq = 0;
  for (int i = 0; i < 100; ++i) seq += disk.ReadMicros(1000 + i);
  Rng rng(3);
  double rnd = 0;
  for (int i = 0; i < 100; ++i) {
    rnd += disk.ReadMicros(rng.Uniform(opts.total_pages));
  }
  EXPECT_LT(seq * 5, rnd);  // at least 5x gap
}

TEST(RotationalDiskTest, WritesDiscountedWhenRandom) {
  RotationalDiskOptions opts;
  opts.seed = 42;
  RotationalDisk reads(opts);
  RotationalDisk writes(opts);
  Rng rng_a(9), rng_b(9);
  double r = 0, w = 0;
  for (int i = 0; i < 300; ++i) {
    r += reads.ReadMicros(rng_a.Uniform(opts.total_pages));
    w += writes.WriteMicros(rng_b.Uniform(opts.total_pages));
  }
  EXPECT_LT(w, r);
}

TEST(FlashDiskTest, PositionIndependentReads) {
  FlashDiskOptions opts;
  opts.jitter = 0;
  FlashDisk disk(opts);
  const double near = disk.ReadMicros(1);
  const double far = disk.ReadMicros(opts.total_pages - 1);
  EXPECT_DOUBLE_EQ(near, far);
}

TEST(FlashDiskTest, WritesMuchSlowerThanReads) {
  FlashDiskOptions opts;
  opts.jitter = 0;
  FlashDisk disk(opts);
  EXPECT_GT(disk.WriteMicros(0), 3 * disk.ReadMicros(0));
}

// --- Calibration (the CALIBRATE DATABASE probe sequence) ---

TEST(CalibrateTest, RotationalReadCurveIsMonotoneAndSpansMagnitudes) {
  RotationalDiskOptions dopts;
  RotationalDisk disk(dopts);
  CalibrationOptions copts;
  const DttModel model = CalibrateDisk(disk, copts);
  EXPECT_FALSE(model.is_default());

  const double seq = model.MicrosPerPage(DttOp::kRead, 4096, 1);
  const double rnd = model.MicrosPerPage(DttOp::kRead, 4096, 1 << 20);
  EXPECT_GT(rnd, seq * 10);
  // Roughly monotone over sampled bands.
  double prev = 0;
  for (const double band : {1.0, 64.0, 4096.0, 262144.0}) {
    const double cost = model.MicrosPerPage(DttOp::kRead, 4096, band);
    EXPECT_GE(cost, prev * 0.8) << band;  // allow sampling noise
    prev = cost;
  }
}

TEST(CalibrateTest, WriteCurveDerivedFromReadCurve) {
  RotationalDiskOptions dopts;
  RotationalDisk disk(dopts);
  const DttModel model = CalibrateDisk(disk, CalibrationOptions{});
  // Paper §4.2: the write curve is the read curve scaled by a fitted
  // factor, so their ratio is constant across bands.
  const double r1 = model.MicrosPerPage(DttOp::kRead, 4096, 256);
  const double w1 = model.MicrosPerPage(DttOp::kWrite, 4096, 256);
  const double r2 = model.MicrosPerPage(DttOp::kRead, 4096, 65536);
  const double w2 = model.MicrosPerPage(DttOp::kWrite, 4096, 65536);
  EXPECT_NEAR(w1 / r1, w2 / r2, 1e-9);
  EXPECT_LT(w1, r1);  // rotational writes are discounted
}

TEST(CalibrateTest, FlashCurveIsFlat) {
  FlashDiskOptions dopts;
  FlashDisk disk(dopts);
  const DttModel model = CalibrateDisk(disk, CalibrationOptions{});
  const double small = model.MicrosPerPage(DttOp::kRead, 4096, 4);
  const double large = model.MicrosPerPage(DttOp::kRead, 4096, 65536);
  // Figure 3: uniform random access times on the SD card.
  EXPECT_NEAR(small, large, small * 0.2);
  // And writes are far above reads.
  EXPECT_GT(model.MicrosPerPage(DttOp::kWrite, 4096, 64), 2 * large);
}

}  // namespace
}  // namespace hdb::os
