#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "os/dtt_model.h"
#include "os/memory_env.h"
#include "os/stable_storage.h"
#include "os/virtual_clock.h"
#include "os/virtual_disk.h"

namespace hdb::os {
namespace {

TEST(VirtualClockTest, AdvanceAndSet) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  EXPECT_EQ(clock.Advance(50), 150);
  clock.SetMicros(7);
  EXPECT_EQ(clock.NowMicros(), 7);
}

TEST(MemoryEnvTest, WorkingSetEqualsAllocationWhenUncontended) {
  MemoryEnv env(100 << 20);
  env.SetAllocation("db", 30 << 20);
  EXPECT_EQ(env.WorkingSetSize("db"), 30u << 20);
  EXPECT_EQ(env.FreePhysical(), 70u << 20);
}

TEST(MemoryEnvTest, OvercommitTrimsWorkingSetsProportionally) {
  MemoryEnv env(100 << 20);
  env.SetAllocation("db", 80 << 20);
  env.SetAllocation("app", 80 << 20);
  // 160 MB demanded on a 100 MB machine: each process sees 50 MB resident.
  EXPECT_EQ(env.WorkingSetSize("db"), 50u << 20);
  EXPECT_EQ(env.WorkingSetSize("app"), 50u << 20);
  EXPECT_EQ(env.FreePhysical(), 0u);
}

TEST(MemoryEnvTest, RemoveProcessFreesMemory) {
  MemoryEnv env(64 << 20);
  env.SetAllocation("app", 60 << 20);
  env.RemoveProcess("app");
  EXPECT_EQ(env.FreePhysical(), 64u << 20);
  EXPECT_EQ(env.Allocation("app"), 0u);
}

// --- Default DTT model: the Figure 2(a) shape properties ---

TEST(DttModelTest, SequentialCostIsTransferOnly) {
  const DttModel m = DttModel::Default();
  // Band 1 = sequential: well under a millisecond per 4K page.
  EXPECT_LT(m.MicrosPerPage(DttOp::kRead, 4096, 1), 200.0);
}

TEST(DttModelTest, CostIncreasesWithBandSize) {
  const DttModel m = DttModel::Default();
  double prev = 0;
  for (const double band : {1.0, 4.0, 64.0, 512.0, 2048.0, 100000.0}) {
    const double cost = m.MicrosPerPage(DttOp::kRead, 4096, band);
    EXPECT_GE(cost, prev) << "band " << band;
    prev = cost;
  }
}

TEST(DttModelTest, RandomCostApproachesSeekPlusRotation) {
  const DttModel m = DttModel::Default();
  const double big = m.MicrosPerPage(DttOp::kRead, 4096, 1e6);
  EXPECT_GT(big, 8000.0);
  EXPECT_LT(big, 20000.0);
}

TEST(DttModelTest, WritesCheaperThanReadsAtLargeBands) {
  // The paper's counterintuitive observation: async writes benefit from
  // scheduling, so the write curve lies below the read curve.
  const DttModel m = DttModel::Default();
  for (const double band : {64.0, 1024.0, 100000.0}) {
    EXPECT_LT(m.MicrosPerPage(DttOp::kWrite, 4096, band),
              m.MicrosPerPage(DttOp::kRead, 4096, band));
  }
}

TEST(DttModelTest, LargerPagesCostMorePerPage) {
  const DttModel m = DttModel::Default();
  EXPECT_GT(m.MicrosPerPage(DttOp::kRead, 8192, 1000),
            m.MicrosPerPage(DttOp::kRead, 4096, 1000));
}

TEST(DttModelTest, SerializeParseRoundTrip) {
  DttModel m = DttModel::Calibrated("test-dev");
  DttModel::Curve c;
  c.bands = {1, 100, 10000};
  c.micros = {50, 3000, 9000};
  m.SetCurve(DttOp::kRead, 4096, c);
  m.SetCurve(DttOp::kWrite, 4096, c);

  const std::string blob = m.Serialize();
  auto parsed = DttModel::Parse(blob);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->is_default());
  EXPECT_EQ(parsed->device_name(), "test-dev");
  EXPECT_DOUBLE_EQ(parsed->MicrosPerPage(DttOp::kRead, 4096, 100), 3000.0);
}

TEST(DttModelTest, ParseRejectsGarbage) {
  EXPECT_FALSE(DttModel::Parse("not a model").ok());
}

TEST(DttModelTest, CalibratedInterpolatesInLogSpace) {
  DttModel m = DttModel::Calibrated("dev");
  DttModel::Curve c;
  c.bands = {1, 10000};
  c.micros = {0, 8000};
  m.SetCurve(DttOp::kRead, 4096, c);
  // log-interpolation: band 100 is halfway between 1 and 10000 in log.
  EXPECT_NEAR(m.MicrosPerPage(DttOp::kRead, 4096, 100), 4000.0, 100.0);
  // Clamped at the extremes.
  EXPECT_DOUBLE_EQ(m.MicrosPerPage(DttOp::kRead, 4096, 1e9), 8000.0);
}

// --- Virtual devices ---

TEST(RotationalDiskTest, SequentialFasterThanRandom) {
  RotationalDiskOptions opts;
  RotationalDisk disk(opts);
  double seq = 0;
  for (int i = 0; i < 100; ++i) seq += disk.ReadMicros(1000 + i);
  Rng rng(3);
  double rnd = 0;
  for (int i = 0; i < 100; ++i) {
    rnd += disk.ReadMicros(rng.Uniform(opts.total_pages));
  }
  EXPECT_LT(seq * 5, rnd);  // at least 5x gap
}

TEST(RotationalDiskTest, WritesDiscountedWhenRandom) {
  RotationalDiskOptions opts;
  opts.seed = 42;
  RotationalDisk reads(opts);
  RotationalDisk writes(opts);
  Rng rng_a(9), rng_b(9);
  double r = 0, w = 0;
  for (int i = 0; i < 300; ++i) {
    r += reads.ReadMicros(rng_a.Uniform(opts.total_pages));
    w += writes.WriteMicros(rng_b.Uniform(opts.total_pages));
  }
  EXPECT_LT(w, r);
}

TEST(FlashDiskTest, PositionIndependentReads) {
  FlashDiskOptions opts;
  opts.jitter = 0;
  FlashDisk disk(opts);
  const double near = disk.ReadMicros(1);
  const double far = disk.ReadMicros(opts.total_pages - 1);
  EXPECT_DOUBLE_EQ(near, far);
}

TEST(FlashDiskTest, WritesMuchSlowerThanReads) {
  FlashDiskOptions opts;
  opts.jitter = 0;
  FlashDisk disk(opts);
  EXPECT_GT(disk.WriteMicros(0), 3 * disk.ReadMicros(0));
}

// --- Calibration (the CALIBRATE DATABASE probe sequence) ---

TEST(CalibrateTest, RotationalReadCurveIsMonotoneAndSpansMagnitudes) {
  RotationalDiskOptions dopts;
  RotationalDisk disk(dopts);
  CalibrationOptions copts;
  const DttModel model = CalibrateDisk(disk, copts);
  EXPECT_FALSE(model.is_default());

  const double seq = model.MicrosPerPage(DttOp::kRead, 4096, 1);
  const double rnd = model.MicrosPerPage(DttOp::kRead, 4096, 1 << 20);
  EXPECT_GT(rnd, seq * 10);
  // Roughly monotone over sampled bands.
  double prev = 0;
  for (const double band : {1.0, 64.0, 4096.0, 262144.0}) {
    const double cost = model.MicrosPerPage(DttOp::kRead, 4096, band);
    EXPECT_GE(cost, prev * 0.8) << band;  // allow sampling noise
    prev = cost;
  }
}

TEST(CalibrateTest, WriteCurveDerivedFromReadCurve) {
  RotationalDiskOptions dopts;
  RotationalDisk disk(dopts);
  const DttModel model = CalibrateDisk(disk, CalibrationOptions{});
  // Paper §4.2: the write curve is the read curve scaled by a fitted
  // factor, so their ratio is constant across bands.
  const double r1 = model.MicrosPerPage(DttOp::kRead, 4096, 256);
  const double w1 = model.MicrosPerPage(DttOp::kWrite, 4096, 256);
  const double r2 = model.MicrosPerPage(DttOp::kRead, 4096, 65536);
  const double w2 = model.MicrosPerPage(DttOp::kWrite, 4096, 65536);
  EXPECT_NEAR(w1 / r1, w2 / r2, 1e-9);
  EXPECT_LT(w1, r1);  // rotational writes are discounted
}

TEST(CalibrateTest, FlashCurveIsFlat) {
  FlashDiskOptions dopts;
  FlashDisk disk(dopts);
  const DttModel model = CalibrateDisk(disk, CalibrationOptions{});
  const double small = model.MicrosPerPage(DttOp::kRead, 4096, 4);
  const double large = model.MicrosPerPage(DttOp::kRead, 4096, 65536);
  // Figure 3: uniform random access times on the SD card.
  EXPECT_NEAR(small, large, small * 0.2);
  // And writes are far above reads.
  EXPECT_GT(model.MicrosPerPage(DttOp::kWrite, 4096, 64), 2 * large);
}

// ---------------------------------------------------------------------------
// StableStorage: power-failure semantics and injected faults, independent
// of the WAL built on top of it.
// ---------------------------------------------------------------------------

constexpr uint32_t kPage = 512;

std::vector<char> Fill(char byte) { return std::vector<char>(kPage, byte); }

TEST(StableStorageTest, UnsyncedWritesDieAtPowerCycle) {
  StableStorage media(kPage);
  const auto img = Fill('a');
  ASSERT_TRUE(media.Write(7, img.data()).ok());

  // Read-your-writes before any sync: the device cache is visible.
  std::vector<char> out(kPage);
  ASSERT_TRUE(media.Read(7, out.data()).ok());
  EXPECT_EQ(out, img);

  media.PowerCycle();
  EXPECT_EQ(media.Read(7, out.data()).code(), StatusCode::kNotFound);
}

TEST(StableStorageTest, SyncedWritesSurvivePowerCycle) {
  StableStorage media(kPage);
  const auto img = Fill('b');
  ASSERT_TRUE(media.Write(3, img.data()).ok());
  ASSERT_TRUE(media.Sync().ok());
  media.PowerCycle();
  std::vector<char> out(kPage);
  ASSERT_TRUE(media.Read(3, out.data()).ok());
  EXPECT_EQ(out, img);
}

TEST(StableStorageTest, ScheduledCrashFailsTheTriggeringOpAndAllLaterIo) {
  StableStorage media(kPage);
  const auto img = Fill('c');
  media.ScheduleCrash(/*after_ops=*/1);
  ASSERT_TRUE(media.Write(0, img.data()).ok());
  EXPECT_EQ(media.Write(1, img.data()).code(), StatusCode::kIOError);
  EXPECT_TRUE(media.crashed());
  EXPECT_EQ(media.Sync().code(), StatusCode::kIOError);

  media.PowerCycle();
  EXPECT_FALSE(media.crashed());
  ASSERT_TRUE(media.Write(1, img.data()).ok());
}

TEST(StableStorageTest, ShortWritePersistsARandomSubsetOutOfOrder) {
  // The OS cache flushed *some* of the un-synced pages before power died —
  // in arbitrary order, so later writes may survive while earlier ones are
  // lost. Every page must read as exactly the old or the new image, and
  // (for this seed) the subset must be proper: a mix of both.
  FaultOptions faults;
  faults.seed = 42;
  faults.short_write = true;
  StableStorage media(kPage, faults);

  const auto old_img = Fill('o');
  const auto new_img = Fill('n');
  constexpr uint64_t kPages = 32;
  for (uint64_t p = 0; p < kPages; ++p) {
    ASSERT_TRUE(media.Write(p, old_img.data()).ok());
  }
  ASSERT_TRUE(media.Sync().ok());
  for (uint64_t p = 0; p < kPages; ++p) {
    ASSERT_TRUE(media.Write(p, new_img.data()).ok());
  }
  media.PowerCycle();

  uint64_t survived = 0;
  std::vector<char> out(kPage);
  for (uint64_t p = 0; p < kPages; ++p) {
    ASSERT_TRUE(media.Read(p, out.data()).ok()) << p;
    ASSERT_TRUE(out == old_img || out == new_img) << p;
    if (out == new_img) ++survived;
  }
  EXPECT_GT(survived, 0u);
  EXPECT_LT(survived, kPages);
}

TEST(StableStorageTest, TornWriteReportsCrcMismatch) {
  FaultOptions faults;
  faults.seed = 7;
  faults.torn_write = true;
  StableStorage media(kPage * 4, faults);  // multi-sector page can tear

  const std::vector<char> old_img(kPage * 4, 'o');
  const std::vector<char> new_img(kPage * 4, 'n');
  ASSERT_TRUE(media.Write(0, old_img.data()).ok());
  ASSERT_TRUE(media.Sync().ok());
  ASSERT_TRUE(media.Write(0, new_img.data()).ok());
  media.PowerCycle();

  // Without torn tolerance the mismatch is an I/O error; with it, the
  // corrupt bytes come back flagged, containing sectors from both images.
  std::vector<char> out(kPage * 4);
  EXPECT_EQ(media.Read(0, out.data()).code(), StatusCode::kIOError);
  bool torn = false;
  ASSERT_TRUE(media.Read(0, out.data(), &torn).ok());
  EXPECT_TRUE(torn);
  EXPECT_NE(out, old_img);
  EXPECT_NE(out, new_img);
}

TEST(StableStorageTest, TransientReadErrorsEveryNth) {
  FaultOptions faults;
  faults.read_error_every = 3;
  StableStorage media(kPage, faults);
  const auto img = Fill('r');
  ASSERT_TRUE(media.Write(0, img.data()).ok());
  ASSERT_TRUE(media.Sync().ok());

  std::vector<char> out(kPage);
  int errors = 0;
  for (int i = 0; i < 9; ++i) {
    if (media.Read(0, out.data()).code() == StatusCode::kIOError) ++errors;
  }
  EXPECT_EQ(errors, 3);
}

TEST(StableStorageTest, DropRangeAndMaxDurablePage) {
  StableStorage media(kPage);
  const auto img = Fill('d');
  for (const uint64_t p : {10u, 11u, 20u}) {
    ASSERT_TRUE(media.Write(p, img.data()).ok());
  }
  ASSERT_TRUE(media.Sync().ok());
  EXPECT_EQ(media.MaxDurablePage(0, 100), 20);
  EXPECT_EQ(media.MaxDurablePage(0, 15), 11);
  media.DropRange(10, 12);
  EXPECT_FALSE(media.Contains(10));
  EXPECT_FALSE(media.Contains(11));
  EXPECT_TRUE(media.Contains(20));
  EXPECT_EQ(media.MaxDurablePage(0, 15), -1);
}

}  // namespace
}  // namespace hdb::os
