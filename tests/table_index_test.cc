#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/ophash.h"
#include "common/rng.h"
#include "index/btree.h"
#include "table/row_codec.h"
#include "table/table_heap.h"

namespace hdb {
namespace {

catalog::TableDef MakeSchema() {
  catalog::TableDef def;
  def.oid = 1;
  def.name = "t";
  def.columns = {{"id", TypeId::kInt, false},
                 {"name", TypeId::kVarchar, true},
                 {"score", TypeId::kDouble, true},
                 {"flag", TypeId::kBoolean, true},
                 {"when_ts", TypeId::kTimestamp, true}};
  return def;
}

// --- Row codec ---

struct CodecCase {
  table::Row row;
};

class RowCodecRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RowCodecRoundTrip, RoundTrips) {
  const catalog::TableDef def = MakeSchema();
  Rng rng(GetParam());
  table::Row row = {
      Value::Int(static_cast<int32_t>(rng.UniformRange(-10000, 10000))),
      rng.Bernoulli(0.3) ? Value::Null(TypeId::kVarchar)
                         : Value::String(std::string(rng.Uniform(40), 'x')),
      rng.Bernoulli(0.3) ? Value::Null(TypeId::kDouble)
                         : Value::Double(rng.NextDouble() * 100),
      rng.Bernoulli(0.5) ? Value::Boolean(rng.Bernoulli(0.5))
                         : Value::Null(TypeId::kBoolean),
      Value::Timestamp(rng.UniformRange(0, 1e15))};
  auto bytes = table::EncodeRow(def, row);
  ASSERT_TRUE(bytes.ok());
  auto decoded = table::DecodeRow(def, bytes->data(), bytes->size());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(row[i].Compare((*decoded)[i]), 0) << i;
    EXPECT_EQ(row[i].is_null(), (*decoded)[i].is_null()) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RowCodecRoundTrip, ::testing::Range(0, 20));

TEST(RowCodecTest, NotNullViolationRejected) {
  const catalog::TableDef def = MakeSchema();
  table::Row row = {Value::Null(TypeId::kInt), Value::Null(), Value::Null(),
                    Value::Null(), Value::Null()};
  EXPECT_EQ(table::EncodeRow(def, row).status().code(),
            StatusCode::kConstraintViolation);
}

TEST(RowCodecTest, ArityMismatchRejected) {
  const catalog::TableDef def = MakeSchema();
  EXPECT_FALSE(table::EncodeRow(def, {Value::Int(1)}).ok());
}

// --- Table heap ---

struct HeapFixture {
  HeapFixture()
      : disk(storage::kDefaultPageBytes, nullptr, nullptr),
        pool(&disk, storage::BufferPoolOptions{.initial_frames = 128}),
        def(MakeSchema()),
        heap(&pool, &def) {}

  table::Row MakeRow(int id, const std::string& name = "row") {
    return {Value::Int(id), Value::String(name), Value::Double(id * 1.5),
            Value::Boolean(id % 2 == 0), Value::Timestamp(id)};
  }
  Rid Insert(int id) {
    auto bytes = table::EncodeRow(def, MakeRow(id));
    auto rid = heap.Insert(*bytes);
    return *rid;
  }

  storage::DiskManager disk;
  storage::BufferPool pool;
  catalog::TableDef def;
  table::TableHeap heap;
};

TEST(TableHeapTest, InsertGetDelete) {
  HeapFixture f;
  const Rid rid = f.Insert(42);
  auto bytes = f.heap.Get(rid);
  ASSERT_TRUE(bytes.ok());
  auto row = table::DecodeRow(f.def, bytes->data(), bytes->size());
  EXPECT_EQ((*row)[0].AsInt(), 42);
  ASSERT_TRUE(f.heap.Delete(rid).ok());
  EXPECT_EQ(f.heap.Get(rid).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(f.heap.Delete(rid).code(), StatusCode::kNotFound);
}

TEST(TableHeapTest, RowAndPageCountsMaintained) {
  HeapFixture f;
  for (int i = 0; i < 500; ++i) f.Insert(i);
  EXPECT_EQ(f.def.row_count, 500u);
  EXPECT_GT(f.def.page_count, 1u);
  ASSERT_TRUE(f.heap.Delete(Rid{f.def.first_page, 0}).ok());
  EXPECT_EQ(f.def.row_count, 499u);
}

TEST(TableHeapTest, ScanVisitsAllLiveRows) {
  HeapFixture f;
  std::set<int> expected;
  for (int i = 0; i < 300; ++i) {
    const Rid rid = f.Insert(i);
    if (i % 3 == 0) {
      ASSERT_TRUE(f.heap.Delete(rid).ok());
    } else {
      expected.insert(i);
    }
  }
  std::set<int> seen;
  auto it = f.heap.Scan();
  Rid rid;
  std::string bytes;
  while (it.Next(&rid, &bytes)) {
    auto row = table::DecodeRow(f.def, bytes.data(), bytes.size());
    seen.insert(static_cast<int>((*row)[0].AsInt()));
  }
  EXPECT_EQ(seen, expected);
}

TEST(TableHeapTest, UpdateInPlaceKeepsRid) {
  HeapFixture f;
  const Rid rid = f.Insert(1);
  auto bytes = table::EncodeRow(f.def, f.MakeRow(1, "ab"));  // shorter
  auto new_rid = f.heap.Update(rid, *bytes);
  ASSERT_TRUE(new_rid.ok());
  EXPECT_EQ(*new_rid, rid);
}

TEST(TableHeapTest, UpdateGrowingRowMayMove) {
  HeapFixture f;
  const Rid rid = f.Insert(1);
  auto bytes = table::EncodeRow(f.def, f.MakeRow(1, std::string(500, 'y')));
  auto new_rid = f.heap.Update(rid, *bytes);
  ASSERT_TRUE(new_rid.ok());
  auto back = f.heap.Get(*new_rid);
  ASSERT_TRUE(back.ok());
  auto row = table::DecodeRow(f.def, back->data(), back->size());
  EXPECT_EQ((*row)[1].AsString().size(), 500u);
}

// --- B+-tree ---

struct TreeFixture {
  TreeFixture()
      : disk(storage::kDefaultPageBytes, nullptr, nullptr),
        pool(&disk, storage::BufferPoolOptions{.initial_frames = 512}) {
    idx.oid = 9;
    idx.name = "ix";
    idx.table_oid = 1;
    idx.column_indexes = {0};
    tree = std::make_unique<index::BTree>(&pool, &idx);
    EXPECT_TRUE(tree->Init().ok());
  }
  storage::DiskManager disk;
  storage::BufferPool pool;
  catalog::IndexDef idx;
  std::unique_ptr<index::BTree> tree;
};

TEST(BTreeTest, InsertAndPointLookup) {
  TreeFixture f;
  ASSERT_TRUE(f.tree->Insert(10.0, Rid{1, 1}).ok());
  ASSERT_TRUE(f.tree->Insert(20.0, Rid{2, 2}).ok());
  auto c = f.tree->Contains(10.0);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(*c);
  EXPECT_FALSE(*f.tree->Contains(15.0));
}

TEST(BTreeTest, RangeScanInOrder) {
  TreeFixture f;
  Rng rng(4);
  std::vector<double> keys;
  for (int i = 0; i < 3000; ++i) {
    const double k = static_cast<double>(rng.Uniform(100000));
    keys.push_back(k);
    ASSERT_TRUE(
        f.tree->Insert(k, Rid{static_cast<uint32_t>(i), 0}).ok());
  }
  std::vector<double> scanned;
  ASSERT_TRUE(f.tree
                  ->ScanRange(-1e18, true, 1e18, true,
                              [&scanned](double k, Rid) {
                                scanned.push_back(k);
                                return true;
                              })
                  .ok());
  ASSERT_EQ(scanned.size(), keys.size());
  EXPECT_TRUE(std::is_sorted(scanned.begin(), scanned.end()));
}

TEST(BTreeTest, BoundedRangeScan) {
  TreeFixture f;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(f.tree->Insert(i, Rid{static_cast<uint32_t>(i), 0}).ok());
  }
  auto count = f.tree->CountRange(10, 19);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 10u);
  // Exclusive bounds.
  uint64_t n = 0;
  ASSERT_TRUE(f.tree
                  ->ScanRange(10, false, 19, false,
                              [&n](double, Rid) {
                                ++n;
                                return true;
                              })
                  .ok());
  EXPECT_EQ(n, 8u);
}

TEST(BTreeTest, DuplicateKeysAllReturned) {
  TreeFixture f;
  for (uint32_t i = 0; i < 600; ++i) {
    ASSERT_TRUE(f.tree->Insert(5.0, Rid{i, 0}).ok());
  }
  EXPECT_EQ(*f.tree->CountRange(5.0, 5.0), 600u);
  EXPECT_EQ(*f.tree->CountRange(4.0, 4.9), 0u);
}

TEST(BTreeTest, RemoveExactEntry) {
  TreeFixture f;
  ASSERT_TRUE(f.tree->Insert(1.0, Rid{1, 0}).ok());
  ASSERT_TRUE(f.tree->Insert(1.0, Rid{2, 0}).ok());
  ASSERT_TRUE(f.tree->Remove(1.0, Rid{1, 0}).ok());
  EXPECT_EQ(*f.tree->CountRange(1.0, 1.0), 1u);
  EXPECT_EQ(f.tree->Remove(1.0, Rid{1, 0}).code(), StatusCode::kNotFound);
}

TEST(BTreeTest, LargeTreeConsistency) {
  TreeFixture f;
  std::map<int, int> model;  // key -> count
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const int k = static_cast<int>(rng.Uniform(2000));
    ASSERT_TRUE(
        f.tree->Insert(k, Rid{static_cast<uint32_t>(i), 0}).ok());
    model[k]++;
  }
  for (int k = 0; k < 2000; k += 131) {
    const uint64_t expected = model.count(k) ? model[k] : 0;
    EXPECT_EQ(*f.tree->CountRange(k, k), expected) << k;
  }
  EXPECT_EQ(f.tree->stats().num_entries, 20000u);
  EXPECT_GT(f.tree->stats().leaf_pages, 50u);
}

TEST(BTreeStatsTest, DistinctKeysTracked) {
  TreeFixture f;
  for (uint32_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(f.tree->Insert(i % 10, Rid{i, 0}).ok());
  }
  EXPECT_EQ(f.tree->stats().distinct_keys, 10u);
  // Removing one of many duplicates keeps the key distinct...
  ASSERT_TRUE(f.tree->Remove(0.0, Rid{0, 0}).ok());
  EXPECT_EQ(f.tree->stats().distinct_keys, 10u);
}

TEST(BTreeStatsTest, ClusteringReflectsInsertOrder) {
  // Sequential heap pages -> clustered; random pages -> not.
  TreeFixture clustered;
  for (uint32_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(clustered.tree->Insert(i, Rid{i / 50, 0}).ok());
  }
  EXPECT_GT(clustered.tree->stats().clustering_fraction(), 0.9);

  TreeFixture random;
  Rng rng(3);
  for (uint32_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(random.tree
                    ->Insert(i, Rid{static_cast<uint32_t>(rng.Uniform(10000)),
                                    0})
                    .ok());
  }
  EXPECT_LT(random.tree->stats().clustering_fraction(), 0.2);
}

}  // namespace
}  // namespace hdb
