// Tests for the cross-cutting adaptive mechanisms added on top of the
// base build: parameterized cached plans, governor ablation modes,
// min-score victim selection, and the DTT model across devices.
#include <gtest/gtest.h>

#include "engine/database.h"
#include "optimizer/governor.h"
#include "os/virtual_disk.h"
#include "storage/clock_replacer.h"

namespace hdb {
namespace {

struct Db {
  explicit Db(engine::DatabaseOptions opts = {}) {
    auto opened = engine::Database::Open(opts);
    EXPECT_TRUE(opened.ok());
    database = std::move(*opened);
    auto c = database->Connect();
    EXPECT_TRUE(c.ok());
    conn = std::move(*c);
  }
  engine::QueryResult Exec(const std::string& sql) {
    auto r = conn->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    return r.ok() ? *r : engine::QueryResult{};
  }
  std::unique_ptr<engine::Database> database;
  std::unique_ptr<engine::Connection> conn;
};

// --- Parameterized plans through the cache (§4.1) ---

TEST(ParamPlanTest, CachedPlanUsesIndexWithRuntimeBounds) {
  Db db;
  db.Exec("CREATE TABLE t (k INT NOT NULL, v INT)");
  std::vector<table::Row> rows;
  for (int i = 0; i < 5000; ++i) {
    rows.push_back({Value::Int(i % 100), Value::Int(i)});
  }
  ASSERT_TRUE(db.database->LoadTable("t", rows).ok());
  db.Exec("CREATE INDEX tk ON t (k)");
  db.Exec("CREATE PROCEDURE pk (:k) AS SELECT v FROM t WHERE k = :k");

  // Train, then verify the cached plan scans dramatically fewer rows than
  // a sequential scan would (index bound evaluated from the parameter).
  for (int i = 0; i < 6; ++i) db.Exec("CALL pk(3)");
  auto r = db.Exec("CALL pk(7)");
  EXPECT_EQ(r.rows.size(), 50u);
  EXPECT_LT(r.exec_stats.rows_scanned, 200u)
      << "cached plan should probe the index, not scan 5000 rows";
  for (const auto& row : r.rows) {
    EXPECT_EQ(row[0].AsInt() % 100, 7);
  }
  EXPECT_GT(db.conn->plan_cache().stats().cached_uses, 0u);
}

TEST(ParamPlanTest, ParamRangePredicates) {
  Db db;
  db.Exec("CREATE TABLE t (k INT NOT NULL)");
  for (int i = 0; i < 100; ++i) {
    db.Exec("INSERT INTO t VALUES (" + std::to_string(i) + ")");
  }
  db.Exec("CREATE INDEX tk ON t (k)");
  db.Exec("CREATE PROCEDURE below (:x) AS "
          "SELECT COUNT(*) FROM t WHERE k < :x");
  EXPECT_EQ(db.Exec("CALL below(10)").rows[0][0].AsInt(), 10);
  EXPECT_EQ(db.Exec("CALL below(90)").rows[0][0].AsInt(), 90);
  EXPECT_EQ(db.Exec("CALL below(0)").rows[0][0].AsInt(), 0);
}

TEST(ParamPlanTest, FingerprintIndependentOfParamValues) {
  Db db;
  db.Exec("CREATE TABLE t (k INT NOT NULL)");
  db.Exec("INSERT INTO t VALUES (1), (2), (3)");
  db.Exec("CREATE PROCEDURE g (:k) AS SELECT k FROM t WHERE k = :k");
  // Different argument values during training must still converge (the
  // plan shape is identical; only bound values differ).
  for (int i = 0; i < 6; ++i) {
    db.Exec("CALL g(" + std::to_string(i % 3 + 1) + ")");
  }
  EXPECT_GT(db.conn->plan_cache().stats().trainings_completed, 0u);
}

// --- Governor ablation modes ---

TEST(GovernorModesTest, NonDistributingModeIsGlobalCountdown) {
  optimizer::GovernorOptions opts;
  opts.initial_quota = 10;
  opts.distribute = false;
  optimizer::OptimizerGovernor gov(opts);
  gov.EnterChild();
  gov.EnterChild();
  int visits = 0;
  while (gov.TryVisit()) ++visits;
  EXPECT_EQ(visits, 10);  // the whole budget flowed down undivided
  gov.LeaveChild();
  gov.LeaveChild();
  EXPECT_TRUE(gov.Exhausted());
}

TEST(GovernorModesTest, DistributingModeSplitsAcrossChildren) {
  optimizer::GovernorOptions opts;
  opts.initial_quota = 16;
  optimizer::OptimizerGovernor gov(opts);
  gov.EnterChild();  // 8
  int c1 = 0;
  while (gov.TryVisit()) ++c1;
  gov.LeaveChild();
  gov.EnterChild();  // (8 remaining)/2 = 4
  int c2 = 0;
  while (gov.TryVisit()) ++c2;
  gov.LeaveChild();
  EXPECT_EQ(c1, 8);
  EXPECT_EQ(c2, 4);
}

// --- Victim selection properties (§2.2) ---

TEST(ClockVictimTest, MinScoreFrameEvictedNotFirstUnpinned) {
  storage::ClockReplacer clock(4);
  // Frame 0: very hot (referenced across many segments). Frames 1-3: cold.
  for (int round = 0; round < 40; ++round) {
    clock.RecordReference(0);
    for (uint32_t f = 1; f < 4; ++f) clock.RecordReference(f);
  }
  // Extra cross-segment refs for frame 0 only.
  for (int round = 0; round < 40; ++round) {
    clock.RecordReference(0);
    clock.RecordReference(1);
  }
  for (uint32_t f = 0; f < 4; ++f) clock.SetEvictable(f, true);
  const auto victim = clock.Victim();
  ASSERT_TRUE(victim.has_value());
  EXPECT_NE(*victim, 0u);  // the hot frame survives
}

TEST(ClockVictimTest, EvictionBurstPreservesHotSet) {
  // Repeated evictions without intervening references must not erode the
  // hot frames' protection (the failure mode of decrement-to-zero GCLOCK).
  storage::ClockReplacer clock(16);
  // Cold frames: touched once (a scan's single pass).
  for (uint32_t f = 4; f < 16; ++f) clock.RecordReference(f);
  // Hot frames: re-referenced across many segments.
  for (int round = 0; round < 50; ++round) {
    for (uint32_t f = 0; f < 4; ++f) clock.RecordReference(f);
    for (uint32_t f = 4; f < 16; ++f) clock.RecordReference(f % 4);
  }
  for (uint32_t f = 0; f < 16; ++f) clock.SetEvictable(f, true);
  // Evict half the pool in one burst.
  for (int i = 0; i < 8; ++i) {
    const auto victim = clock.Victim();
    ASSERT_TRUE(victim.has_value());
    EXPECT_GE(*victim, 4u) << "hot frame evicted during burst " << i;
  }
}

// --- DTT model across devices (parameterized sweep) ---

struct DttCase {
  const char* name;
  bool rotational;
  uint32_t page_bytes;
};

class DttDeviceSweep : public ::testing::TestWithParam<DttCase> {};

TEST_P(DttDeviceSweep, CalibratedModelMatchesDeviceShape) {
  const DttCase& c = GetParam();
  std::unique_ptr<os::VirtualDisk> disk;
  if (c.rotational) {
    os::RotationalDiskOptions opts;
    opts.page_bytes = c.page_bytes;
    disk = std::make_unique<os::RotationalDisk>(opts);
  } else {
    os::FlashDiskOptions opts;
    opts.page_bytes = c.page_bytes;
    disk = std::make_unique<os::FlashDisk>(opts);
  }
  const os::DttModel model = os::CalibrateDisk(*disk, {});
  const double seq = model.MicrosPerPage(os::DttOp::kRead, c.page_bytes, 1);
  const double rnd =
      model.MicrosPerPage(os::DttOp::kRead, c.page_bytes, 1 << 18);
  if (c.rotational) {
    EXPECT_GT(rnd, seq * 5) << "rotational devices pay for seeks";
  } else {
    EXPECT_NEAR(rnd, seq, seq * 0.3) << "flash is position-independent";
    EXPECT_GT(model.MicrosPerPage(os::DttOp::kWrite, c.page_bytes, 64),
              rnd * 2)
        << "flash writes are much slower than reads";
  }
  // Round-trip through the catalog text form.
  auto parsed = os::DttModel::Parse(model.Serialize());
  ASSERT_TRUE(parsed.ok());
  const double want =
      model.MicrosPerPage(os::DttOp::kRead, c.page_bytes, 1000);
  EXPECT_NEAR(parsed->MicrosPerPage(os::DttOp::kRead, c.page_bytes, 1000),
              want, want * 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Devices, DttDeviceSweep,
    ::testing::Values(DttCase{"hdd4k", true, 4096},
                      DttCase{"hdd8k", true, 8192},
                      DttCase{"sd4k", false, 4096},
                      DttCase{"sd2k", false, 2048}),
    [](const auto& info) { return std::string(info.param.name); });

// --- Index probing (§3) ---

TEST(IndexProbingTest, LongStringEqualityProbedThroughIndex) {
  Db db;
  db.Exec("CREATE TABLE docs (body VARCHAR(300))");
  std::vector<table::Row> rows;
  const std::string filler(120, 'z');
  for (int i = 0; i < 2000; ++i) {
    // 10% of rows share one long value; the rest are unique.
    const std::string v =
        (i % 10 == 0) ? "needle-" + filler
                      : "hay-" + std::to_string(i) + "-" + filler;
    rows.push_back({Value::String(v)});
  }
  ASSERT_TRUE(db.database->LoadTable("docs", rows).ok());
  db.Exec("CREATE INDEX docs_body ON docs (body)");

  const uint32_t oid = db.database->catalog().GetTable("docs").value()->oid;
  // Long-string column: the histogram infrastructure is out; no feedback
  // bucket exists yet. The registry alone can only guess the default...
  EXPECT_DOUBLE_EQ(db.database->stats().SelEquals(
                       oid, 0, Value::String("needle-" + filler)),
                   stats::DefaultSelectivity::kEquals);
  // ...but the estimator probes the index and lands near the truth (10%).
  optimizer::SelectivityEstimator est(&db.database->stats(),
                                      &db.database->catalog(),
                                      db.database->IndexProber());
  optimizer::Query q;
  q.quantifiers.push_back(
      {*db.database->catalog().GetTable("docs"), "docs"});
  const auto pred = optimizer::Expr::Compare(
      optimizer::CompareOp::kEq,
      optimizer::Expr::Column(0, 0, TypeId::kVarchar, "body"),
      optimizer::Expr::Literal(Value::String("needle-" + filler)));
  // Note: the op-hash truncates to 7 bytes, so "needle-…" probes may also
  // count colliding prefixes; all needles share the prefix, hay rows do
  // not (they start "hay-"), so the probe is exact here.
  EXPECT_NEAR(est.LocalSelectivity(q, 0, pred), 0.10, 0.02);
}

TEST(IndexProbingTest, NoProbeWithoutIndexFallsBackToDefault) {
  Db db;
  db.Exec("CREATE TABLE docs (body VARCHAR(300))");
  std::vector<table::Row> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({Value::String(std::string(100, 'q'))});
  }
  ASSERT_TRUE(db.database->LoadTable("docs", rows).ok());
  optimizer::SelectivityEstimator est(&db.database->stats(),
                                      &db.database->catalog(),
                                      db.database->IndexProber());
  optimizer::Query q;
  q.quantifiers.push_back(
      {*db.database->catalog().GetTable("docs"), "docs"});
  const auto pred = optimizer::Expr::Compare(
      optimizer::CompareOp::kEq,
      optimizer::Expr::Column(0, 0, TypeId::kVarchar, "body"),
      optimizer::Expr::Literal(Value::String("nope")));
  EXPECT_DOUBLE_EQ(est.LocalSelectivity(q, 0, pred),
                   stats::DefaultSelectivity::kEquals);
}

// --- EXPLAIN renders adaptive annotations ---

TEST(ExplainTest, HashJoinShowsMemoryQuotaAndAltStrategy) {
  Db db;
  db.Exec("CREATE TABLE big (k INT NOT NULL, v INT)");
  db.Exec("CREATE TABLE small (k INT NOT NULL)");
  std::vector<table::Row> rows;
  for (int i = 0; i < 20000; ++i) {
    rows.push_back({Value::Int(i), Value::Int(i)});
  }
  ASSERT_TRUE(db.database->LoadTable("big", rows).ok());
  db.Exec("CREATE INDEX big_k ON big (k)");
  std::vector<table::Row> srows;
  for (int i = 0; i < 500; ++i) srows.push_back({Value::Int(i)});
  ASSERT_TRUE(db.database->LoadTable("small", srows).ok());

  auto explain = db.conn->Explain(
      "SELECT COUNT(*) FROM big JOIN small ON big.k = small.k");
  ASSERT_TRUE(explain.ok());
  // Some join strategy rendered with row/cost estimates.
  EXPECT_NE(explain->find("rows="), std::string::npos);
  EXPECT_NE(explain->find("Join"), std::string::npos);
}

// --- Windows CE database profile end to end ---

TEST(CeProfileTest, FlashDeviceAndCeGovernorWorkTogether) {
  engine::DatabaseOptions opts;
  opts.device = engine::DeviceKind::kFlash;
  opts.pool_governor.ce_mode = true;
  opts.physical_memory_bytes = 32ull << 20;
  opts.initial_pool_frames = 768;
  Db db(opts);
  ASSERT_TRUE(db.conn->Execute("CALIBRATE DATABASE").ok());
  db.Exec("CREATE TABLE t (a INT)");
  db.Exec("INSERT INTO t VALUES (1), (2)");
  EXPECT_EQ(db.Exec("SELECT COUNT(*) FROM t").rows[0][0].AsInt(), 2);
  EXPECT_FALSE(db.database->catalog().dtt_model().is_default());
}

}  // namespace
}  // namespace hdb
