#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/ophash.h"
#include "common/rng.h"
#include "stats/feedback.h"
#include "stats/greenwald.h"
#include "stats/histogram.h"
#include "stats/join_histogram.h"
#include "stats/proc_stats.h"
#include "stats/stats_registry.h"
#include "stats/string_stats.h"

namespace hdb::stats {
namespace {

// --- Greenwald sketch ---

TEST(GreenwaldTest, QuantilesAccurateOnUniformStream) {
  GreenwaldSketch sketch(0.01);
  Rng rng(1);
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    sketch.Insert(static_cast<double>(rng.Uniform(100000)));
  }
  for (const double phi : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double q = sketch.Quantile(phi);
    EXPECT_NEAR(q / 100000.0, phi, 0.05) << phi;
  }
}

TEST(GreenwaldTest, SketchMuchSmallerThanInput) {
  GreenwaldSketch sketch(0.01);
  for (int i = 0; i < 100000; ++i) sketch.Insert(i * 0.5);
  EXPECT_LT(sketch.tuple_count(), 4000u);
  EXPECT_EQ(sketch.count(), 100000u);
}

TEST(GreenwaldTest, EquiDepthBoundariesMonotone) {
  GreenwaldSketch sketch;
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    sketch.Insert(rng.NextDouble() * 1000);
  }
  const auto bounds = sketch.EquiDepthBoundaries(20);
  ASSERT_GE(bounds.size(), 10u);
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
}

// --- Histogram ---

std::vector<double> UniformValues(int n, int domain, uint64_t seed = 3) {
  Rng rng(seed);
  std::vector<double> v;
  v.reserve(n);
  for (int i = 0; i < n; ++i) {
    v.push_back(static_cast<double>(rng.Uniform(domain)));
  }
  return v;
}

TEST(HistogramTest, UniformEqualityNearTruth) {
  auto h = Histogram::Build(TypeId::kInt, UniformValues(50000, 1000));
  // True selectivity ~ 1/1000.
  EXPECT_NEAR(h.EstimateEquals(500), 0.001, 0.0015);
}

TEST(HistogramTest, UniformRangeNearTruth) {
  auto h = Histogram::Build(TypeId::kInt, UniformValues(50000, 1000));
  const double est = h.EstimateRange(100, true, 299, true);
  EXPECT_NEAR(est, 0.2, 0.04);
}

TEST(HistogramTest, OpenRangesCoverDomain) {
  auto h = Histogram::Build(TypeId::kInt, UniformValues(10000, 1000));
  EXPECT_NEAR(h.EstimateRange(h.min_value(), true, h.max_value(), true), 1.0,
              0.05);
  EXPECT_EQ(h.EstimateRange(5000, true, 6000, true), 0.0);  // outside
}

TEST(HistogramTest, SkewedValueBecomesSingleton) {
  // 30% of rows share one value: must be captured as a singleton bucket.
  std::vector<double> values = UniformValues(7000, 1000);
  for (int i = 0; i < 3000; ++i) values.push_back(777777.0);
  auto h = Histogram::Build(TypeId::kInt, std::move(values));
  EXPECT_GE(h.singleton_count(), 1u);
  EXPECT_NEAR(h.EstimateEquals(777777.0), 0.3, 0.02);
  // Non-frequent values estimated via density, not dragged up by the spike.
  EXPECT_LT(h.EstimateEquals(500), 0.01);
}

TEST(HistogramTest, ZipfCapturesTopSingletons) {
  ZipfGenerator zipf(5000, 1.1, 5);
  std::vector<double> values;
  for (int i = 0; i < 40000; ++i) {
    values.push_back(static_cast<double>(zipf.Next()));
  }
  auto h = Histogram::Build(TypeId::kInt, std::move(values));
  EXPECT_GE(h.singleton_count(), 5u);
  EXPECT_LE(h.singleton_count(), 100u);  // the paper's cap
  // Rank-0 value dominates and is estimated accurately.
  EXPECT_GT(h.EstimateEquals(0.0), 0.05);
}

TEST(HistogramTest, AllSingletonsCompressedForm) {
  // A 3-valued column: every value is frequent.
  std::vector<double> values;
  for (int i = 0; i < 3000; ++i) values.push_back(i % 3);
  auto h = Histogram::Build(TypeId::kInt, std::move(values));
  EXPECT_TRUE(h.all_singletons());
  EXPECT_NEAR(h.EstimateEquals(1.0), 1.0 / 3, 0.01);
}

TEST(HistogramTest, NullsTracked) {
  auto h =
      Histogram::Build(TypeId::kInt, UniformValues(9000, 100), /*nulls=*/1000);
  EXPECT_NEAR(h.EstimateIsNull(), 0.1, 0.001);
  // Null rows dilute equality estimates (fraction of all rows).
  EXPECT_NEAR(h.EstimateEquals(50), 0.9 / 100, 0.004);
}

TEST(HistogramTest, DmlMaintenanceShiftsEstimates) {
  auto h = Histogram::Build(TypeId::kInt, UniformValues(10000, 100));
  const double before = h.EstimateRange(0, true, 9, true);
  // Insert a burst of rows in [0, 9].
  for (int i = 0; i < 5000; ++i) h.OnInsert(i % 10, false);
  const double after = h.EstimateRange(0, true, 9, true);
  EXPECT_GT(after, before * 1.5);
  EXPECT_NEAR(h.total_rows(), 15000, 1);
}

TEST(HistogramTest, DeleteMaintenance) {
  auto h = Histogram::Build(TypeId::kInt, UniformValues(10000, 100));
  for (int i = 0; i < 4000; ++i) h.OnDelete(i % 100, false);
  EXPECT_NEAR(h.total_rows(), 6000, 1);
}

TEST(HistogramTest, EqualityFeedbackCreatesSingleton) {
  auto h = Histogram::Build(TypeId::kInt, UniformValues(10000, 1000));
  // Execution reveals that value 42 actually matches 5% of rows.
  h.FeedbackEquals(42.0, 0.05);
  EXPECT_NEAR(h.EstimateEquals(42.0), 0.05, 0.02);
  EXPECT_GE(h.singleton_count(), 1u);
}

TEST(HistogramTest, RangeFeedbackConvergesToObservation) {
  auto h = Histogram::Build(TypeId::kInt, UniformValues(10000, 1000));
  // The data drifted: [0, 99] now holds 60% of rows, not ~10%.
  for (int i = 0; i < 12; ++i) h.FeedbackRange(0, 99, 0.6);
  EXPECT_NEAR(h.EstimateRange(0, true, 99, true), 0.6, 0.12);
}

TEST(HistogramTest, BucketsSplitUnderConcentration) {
  Histogram::Options opts;
  opts.restructure_period = 8;
  auto h =
      Histogram::Build(TypeId::kInt, UniformValues(10000, 1000), 0, opts);
  const size_t before = h.bucket_count();
  // Concentrate mass into one bucket via feedback, repeatedly.
  for (int i = 0; i < 40; ++i) h.FeedbackRange(0, 50, 0.7);
  EXPECT_GT(h.bucket_count(), before);
}

TEST(HistogramTest, DistinctEstimateReasonable) {
  auto h = Histogram::Build(TypeId::kInt, UniformValues(50000, 750));
  EXPECT_NEAR(h.EstimateDistinct(), 750, 40);
}

// --- String statistics ---

TEST(StringStatsTest, PredicateBucketsRemembered) {
  StringStats s;
  s.RecordPredicate(StringPredicate::kEquals, "widget", 0.02);
  bool found = false;
  EXPECT_NEAR(s.Estimate(StringPredicate::kEquals, "widget", &found), 0.02,
              1e-9);
  EXPECT_TRUE(found);
  s.Estimate(StringPredicate::kEquals, "unknown", &found);
  EXPECT_FALSE(found);
}

TEST(StringStatsTest, PredicateKindsDisambiguated) {
  StringStats s;
  s.RecordPredicate(StringPredicate::kEquals, "x", 0.5);
  s.RecordPredicate(StringPredicate::kLike, "x", 0.1);
  bool found = false;
  EXPECT_NEAR(s.Estimate(StringPredicate::kLike, "x", &found), 0.1, 1e-9);
}

TEST(StringStatsTest, WordFrequenciesDriveLikeEstimates) {
  StringStats s;
  s.RecordValue("the quick brown fox");
  s.RecordValue("the lazy dog");
  s.RecordValue("a quick test");
  s.RecordValue("nothing here");
  bool found = false;
  EXPECT_NEAR(s.EstimateLikeWord("quick", &found), 0.5, 1e-9);
  EXPECT_TRUE(found);
  EXPECT_NEAR(s.EstimateLikeWord("the", &found), 0.5, 1e-9);
  s.EstimateLikeWord("zebra", &found);
  EXPECT_FALSE(found);
}

TEST(StringStatsTest, DeleteMaintainsWordCounts) {
  StringStats s;
  s.RecordValue("alpha beta");
  s.RecordValue("alpha");
  s.RecordDelete("alpha");
  bool found = false;
  EXPECT_NEAR(s.EstimateLikeWord("alpha", &found), 1.0, 1e-9);
}

TEST(StringStatsTest, LruBoundsBucketCount) {
  StringStats s(/*max_buckets=*/16);
  for (int i = 0; i < 100; ++i) {
    s.RecordPredicate(StringPredicate::kEquals, "v" + std::to_string(i),
                      0.01);
  }
  EXPECT_LE(s.bucket_count(), 16u);
  // Most recent still present.
  bool found = false;
  s.Estimate(StringPredicate::kEquals, "v99", &found);
  EXPECT_TRUE(found);
}

// --- Join histograms ---

TEST(JoinHistogramTest, ForeignKeyShapedJoin) {
  // Parent: 1000 distinct ids. Child: 20000 rows uniform over those ids.
  std::vector<double> parent;
  for (int i = 0; i < 1000; ++i) parent.push_back(i);
  auto hp = Histogram::Build(TypeId::kInt, parent);
  auto hc = Histogram::Build(TypeId::kInt, UniformValues(20000, 1000));
  const JoinHistogram jh(hc, hp);
  // True selectivity = 1/1000 of the cross product.
  EXPECT_NEAR(jh.selectivity(), 0.001, 0.0005);
}

TEST(JoinHistogramTest, DisjointDomainsDoNotJoin) {
  std::vector<double> a, b;
  for (int i = 0; i < 1000; ++i) a.push_back(i);
  for (int i = 5000; i < 6000; ++i) b.push_back(i);
  const JoinHistogram jh(Histogram::Build(TypeId::kInt, a),
                         Histogram::Build(TypeId::kInt, b));
  EXPECT_LT(jh.selectivity(), 1e-4);
}

TEST(JoinHistogramTest, SkewHandledThroughSingletons) {
  // Both sides share a heavy value: naive 1/distinct underestimates badly.
  std::vector<double> a = UniformValues(5000, 1000, 7);
  std::vector<double> b = UniformValues(5000, 1000, 8);
  for (int i = 0; i < 5000; ++i) {
    a.push_back(42.0);
    b.push_back(42.0);
  }
  const auto ha = Histogram::Build(TypeId::kInt, a);
  const auto hb = Histogram::Build(TypeId::kInt, b);
  const JoinHistogram jh(ha, hb);
  // True: the 42x42 pairs alone contribute (5000*5000)/(10^8) = 0.25.
  EXPECT_GT(jh.selectivity(), 0.15);
  EXPECT_GT(jh.singleton_singleton_pairs(), 0.0);
}

// --- Procedure statistics ---

TEST(ProcStatsTest, MovingAverageAndVariants) {
  ProcStatsRegistry reg;
  for (int i = 0; i < 10; ++i) reg.Record("p", 1, 100.0, 10.0);
  bool found = false;
  auto est = reg.Estimate("p", 1, &found);
  ASSERT_TRUE(found);
  EXPECT_NEAR(est.avg_cpu_micros, 100.0, 1.0);

  // A parameter value that behaves very differently gets its own entry.
  for (int i = 0; i < 5; ++i) reg.Record("p", 99, 5000.0, 800.0);
  est = reg.Estimate("p", 99, &found);
  ASSERT_TRUE(found);
  EXPECT_GT(est.avg_cpu_micros, 1000.0);
  // The default estimate is still near the typical case.
  est = reg.Estimate("p", 1234, &found);
  EXPECT_LT(est.avg_cpu_micros, 3000.0);
  EXPECT_EQ(reg.variant_count("p"), 1u);
}

TEST(ProcStatsTest, UnknownProcedureNotFound) {
  ProcStatsRegistry reg;
  bool found = true;
  reg.Estimate("nope", 0, &found);
  EXPECT_FALSE(found);
}

// --- Registry + feedback collector ---

catalog::TableDef RegistrySchema() {
  catalog::TableDef def;
  def.oid = 5;
  def.name = "r";
  def.columns = {{"k", TypeId::kInt, true}, {"s", TypeId::kVarchar, true}};
  return def;
}

TEST(StatsRegistryTest, BuildAndEstimate) {
  StatsRegistry reg;
  const auto def = RegistrySchema();
  std::vector<Value> values;
  for (int i = 0; i < 10000; ++i) values.push_back(Value::Int(i % 100));
  reg.BuildColumn(def, 0, values);
  EXPECT_TRUE(reg.HasStats(5, 0));
  EXPECT_NEAR(reg.SelEquals(5, 0, Value::Int(5)), 0.01, 0.005);
  EXPECT_NEAR(reg.SelRange(5, 0, nullptr, true, nullptr, true), 1.0, 0.05);
}

TEST(StatsRegistryTest, DefaultsWithoutStats) {
  StatsRegistry reg;
  EXPECT_DOUBLE_EQ(reg.SelEquals(9, 0, Value::Int(1)),
                   DefaultSelectivity::kEquals);
  EXPECT_DOUBLE_EQ(reg.SelRange(9, 0, nullptr, true, nullptr, true),
                   DefaultSelectivity::kRange);
}

TEST(StatsRegistryTest, GreenwaldPathForLargeColumns) {
  StatsRegistry reg;
  const auto def = RegistrySchema();
  std::vector<Value> values;
  Rng rng(9);
  for (int i = 0; i < 60000; ++i) {
    values.push_back(Value::Int(static_cast<int32_t>(rng.Uniform(1000))));
  }
  reg.BuildColumn(def, 0, values, /*sketch_threshold=*/50000);
  EXPECT_NEAR(reg.SelRange(5, 0, &values[0], true, nullptr, true), 0.5, 0.45);
  const double sel =
      reg.SelRange(5, 0, nullptr, true, nullptr, true);
  EXPECT_GT(sel, 0.8);
}

TEST(StatsRegistryTest, LikePatternForms) {
  StatsRegistry reg;
  const auto def = RegistrySchema();
  std::vector<Value> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(Value::String(i < 25 ? "alpha item" : "other thing"));
  }
  reg.BuildColumn(def, 1, values);
  // %word% via word statistics.
  EXPECT_NEAR(reg.SelLike(5, 1, "%alpha%"), 0.25, 0.02);
  // prefix% via histogram range over the hash domain.
  const double prefix_sel = reg.SelLike(5, 1, "alpha%");
  EXPECT_GT(prefix_sel, 0.1);
  EXPECT_LT(prefix_sel, 0.5);
}

TEST(StatsRegistryTest, LongStringsSwitchInfrastructure) {
  StatsRegistry reg;
  const auto def = RegistrySchema();
  std::vector<Value> values;
  const std::string long_str(200, 'z');
  for (int i = 0; i < 100; ++i) {
    values.push_back(Value::String(long_str + std::to_string(i)));
  }
  reg.BuildColumn(def, 1, values);
  const ColumnStats* cs = reg.Get(5, 1);
  ASSERT_NE(cs, nullptr);
  EXPECT_TRUE(cs->long_string);
  // Equality on long strings: observed-predicate buckets after feedback.
  reg.FeedbackEquals(5, 1, Value::String(long_str + "1"), 0.01);
  EXPECT_NEAR(reg.SelEquals(5, 1, Value::String(long_str + "1")), 0.01, 1e-6);
}

TEST(FeedbackCollectorTest, AggregatesAndFlushes) {
  StatsRegistry reg;
  const auto def = RegistrySchema();
  std::vector<Value> values;
  for (int i = 0; i < 1000; ++i) values.push_back(Value::Int(i % 10));
  reg.BuildColumn(def, 0, values);

  FeedbackCollector fc;
  // Execution observes: k=3 matches 60% of rows now (data drifted).
  for (int i = 0; i < 1000; ++i) {
    fc.ObserveEquals(5, 0, Value::Int(3), i % 10 < 6);
  }
  EXPECT_EQ(fc.pending(), 1u);
  fc.Flush(&reg);
  EXPECT_EQ(fc.pending(), 0u);
  EXPECT_GT(reg.SelEquals(5, 0, Value::Int(3)), 0.2);
}

TEST(FeedbackCollectorTest, MinRowsGuard) {
  StatsRegistry reg;
  const auto def = RegistrySchema();
  std::vector<Value> values;
  for (int i = 0; i < 1000; ++i) values.push_back(Value::Int(i % 10));
  reg.BuildColumn(def, 0, values);
  const double before = reg.SelEquals(5, 0, Value::Int(3));

  FeedbackCollector fc(FeedbackOptions{.min_rows = 64});
  for (int i = 0; i < 10; ++i) fc.ObserveEquals(5, 0, Value::Int(3), true);
  fc.Flush(&reg);
  // Too few observations: estimate unchanged.
  EXPECT_DOUBLE_EQ(reg.SelEquals(5, 0, Value::Int(3)), before);
}

}  // namespace
}  // namespace hdb::stats
