// Observability layer tests: MetricsRegistry thread safety, the sys.*
// virtual tables queried over plain SQL (from a second connection, as a
// DBA would), EXPLAIN ANALYZE actuals next to estimates, and the governor
// decision log after forced governor activity. Run these under
// -DHDB_SANITIZE=thread as well — the registry and the sys.* scans are
// read concurrently with live instrumentation writes.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "obs/decision_log.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace hdb {
namespace {

// Counter/gauge/histogram mutations compile to no-ops under
// -DHDB_TELEMETRY=OFF (the overhead-measurement baseline), so tests that
// assert recorded *values* skip there. Structure (sys.* schemas, EXPLAIN
// ANALYZE, the decision log) stays live in both configurations.
#ifdef HDB_NO_TELEMETRY
#define SKIP_WITHOUT_TELEMETRY() \
  GTEST_SKIP() << "telemetry compiled out (-DHDB_TELEMETRY=OFF)"
#else
#define SKIP_WITHOUT_TELEMETRY() \
  do {                           \
  } while (false)
#endif

// ---------------------------------------------------------------------------
// MetricsRegistry primitives
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CountersAreExactUnderContention) {
  SKIP_WITHOUT_TELEMETRY();
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 100'000;

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      // Every thread registers by name — registration must be idempotent
      // and hand back the same counter — then hammers it.
      obs::Counter* shared = registry.RegisterCounter("test.shared");
      obs::Counter* pairs = registry.RegisterCounter("test.pairs");
      obs::Gauge* gauge = registry.RegisterGauge("test.gauge");
      obs::LatencyHistogram* hist = registry.RegisterHistogram("test.lat");
      for (int i = 0; i < kAddsPerThread; ++i) {
        shared->Add();
        pairs->Add(2);
        gauge->Set(i);
        hist->Record(i % 1000);
      }
    });
  }
  for (auto& w : workers) w.join();

  const uint64_t n = uint64_t{kThreads} * kAddsPerThread;
  EXPECT_EQ(registry.RegisterCounter("test.shared")->value(), n);
  EXPECT_EQ(registry.RegisterCounter("test.pairs")->value(), 2 * n);
  EXPECT_EQ(registry.RegisterHistogram("test.lat")->count(), n);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndComplete) {
  SKIP_WITHOUT_TELEMETRY();
  obs::MetricsRegistry registry;
  registry.RegisterCounter("z.last")->Add(3);
  registry.RegisterGauge("a.first")->Set(7);
  registry.RegisterCallback("m.middle", [] { return 42.0; });
  registry.RegisterHistogram("h.lat")->Record(100);

  const auto samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].name, "a.first");
  EXPECT_EQ(samples[0].value, 7.0);
  EXPECT_EQ(samples[1].name, "h.lat");
  EXPECT_EQ(samples[1].count, 1u);
  EXPECT_EQ(samples[2].name, "m.middle");
  EXPECT_EQ(samples[2].value, 42.0);
  EXPECT_EQ(samples[3].name, "z.last");
  EXPECT_EQ(samples[3].value, 3.0);
}

TEST(MetricsRegistryTest, HistogramQuantilesAreMonotone) {
  SKIP_WITHOUT_TELEMETRY();
  obs::LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i);
  const auto p50 = h.QuantileMicros(0.5);
  const auto p95 = h.QuantileMicros(0.95);
  EXPECT_GT(p50, 0);
  EXPECT_GE(p95, p50);
  EXPECT_EQ(h.count(), 1000u);
}

TEST(DecisionLogTest, RingBufferKeepsNewestEntries) {
  obs::DecisionLog log(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    log.Record(i, "pool", "grow", "test", i, i + 1);
  }
  EXPECT_EQ(log.total_recorded(), 10u);
  const auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Oldest-first, and only the newest `capacity` survive.
  EXPECT_EQ(snap.front().seq, 6u);
  EXPECT_EQ(snap.back().seq, 9u);
  EXPECT_EQ(snap.back().governor, "pool");
}

// ---------------------------------------------------------------------------
// sys.* virtual tables over SQL
// ---------------------------------------------------------------------------

struct ObsDb {
  ObsDb() {
    auto db = engine::Database::Open();
    EXPECT_TRUE(db.ok());
    database = std::move(*db);
    auto conn = database->Connect();
    EXPECT_TRUE(conn.ok());
    c = std::move(*conn);
  }

  engine::QueryResult Exec(const std::string& sql) {
    auto r = c->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : engine::QueryResult{};
  }

  std::unique_ptr<engine::Database> database;
  std::unique_ptr<engine::Connection> c;
};

std::map<std::string, int64_t> CountersByName(
    const engine::QueryResult& r) {
  std::map<std::string, int64_t> out;
  for (const auto& row : r.rows) out[row[0].AsString()] = row[1].AsInt();
  return out;
}

TEST(SysTablesTest, CountersVisibleFromSecondConnection) {
  SKIP_WITHOUT_TELEMETRY();
  ObsDb db;
  db.Exec("CREATE TABLE t (k INT, v INT)");
  db.Exec("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  db.Exec("SELECT * FROM t WHERE k > 1");
  db.Exec("UPDATE t SET v = v + 1 WHERE k = 2");

  // A second concurrent connection — the DBA console — reads the registry
  // through plain SQL while the first connection stays open.
  auto conn2 = db.database->Connect();
  ASSERT_TRUE(conn2.ok());
  auto r = (*conn2)->Execute("SELECT name, value FROM sys.counters");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r->rows.empty());

  const auto counters = CountersByName(*r);
  // Statement-kind counters reflect the workload above.
  ASSERT_TRUE(counters.count(obs::kStmtSelect));
  EXPECT_GE(counters.at(obs::kStmtSelect), 1);
  EXPECT_GE(counters.at(obs::kStmtInsert), 1);
  EXPECT_GE(counters.at(obs::kStmtUpdate), 1);
  EXPECT_GE(counters.at(obs::kStmtDdl), 1);
  // Live pool state and admission-gate counters come through as well.
  ASSERT_TRUE(counters.count(obs::kPoolCurrentFrames));
  EXPECT_GT(counters.at(obs::kPoolCurrentFrames), 0);
  ASSERT_TRUE(counters.count(obs::kGateAdmittedImmediately));
  EXPECT_GE(counters.at(obs::kGateAdmittedImmediately), 1);
  // Histograms are flattened into .count/.mean/.p50/.p95 rows.
  ASSERT_TRUE(counters.count(std::string(obs::kLatencyExecuteMicros) +
                             ".count"));
  EXPECT_GE(counters.at(std::string(obs::kLatencyExecuteMicros) + ".count"),
            1);
}

TEST(SysTablesTest, PoolLocksStatementsAnswerSql) {
  ObsDb db;
  db.Exec("CREATE TABLE t (k INT)");
  db.Exec("INSERT INTO t VALUES (1), (2)");
  db.Exec("SELECT * FROM t");
  db.Exec("SELECT * FROM t");  // same shape, second hit

  auto pool = db.Exec("SELECT metric, value FROM sys.pool");
  EXPECT_FALSE(pool.rows.empty());
  const auto pool_metrics = CountersByName(pool);
  EXPECT_TRUE(pool_metrics.count("current_frames"));

  auto locks = db.Exec("SELECT metric, value FROM sys.locks");
  const auto lock_metrics = CountersByName(locks);
  EXPECT_TRUE(lock_metrics.count("held"));
  EXPECT_TRUE(lock_metrics.count("conflicts"));

  auto stmts = db.Exec(
      "SELECT shape, count FROM sys.statements WHERE count >= 2");
  bool found = false;
  for (const auto& row : stmts.rows) {
    if (row[0].AsString() == "SELECT * FROM T") {
      found = true;
      EXPECT_GE(row[1].AsInt(), 2);
    }
  }
  EXPECT_TRUE(found) << "normalized SELECT shape missing from sys.statements";
}

TEST(SysTablesTest, VirtualTablesRejectDmlAndDdl) {
  ObsDb db;
  auto ins = db.c->Execute("INSERT INTO sys.counters VALUES ('x', 1)");
  EXPECT_FALSE(ins.ok());
  auto upd = db.c->Execute("UPDATE sys.pool SET value = 0 WHERE metric = 'x'");
  EXPECT_FALSE(upd.ok());
  auto del = db.c->Execute("DELETE FROM sys.governors WHERE seq = 0");
  EXPECT_FALSE(del.ok());
  auto drop = db.c->Execute("DROP TABLE sys.counters");
  EXPECT_FALSE(drop.ok());
  auto create = db.c->Execute("CREATE TABLE sys.mine (a INT)");
  EXPECT_FALSE(create.ok());
  auto idx = db.c->Execute("CREATE INDEX i ON sys.counters (name)");
  EXPECT_FALSE(idx.ok());
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE
// ---------------------------------------------------------------------------

TEST(ExplainAnalyzeTest, ThreeWayJoinReportsActualsNextToEstimates) {
  ObsDb db;
  db.Exec("CREATE TABLE a (id INT, b_id INT)");
  db.Exec("CREATE TABLE b (id INT, c_id INT)");
  db.Exec("CREATE TABLE c (id INT, tag VARCHAR(10))");
  for (int i = 0; i < 30; ++i) {
    db.Exec("INSERT INTO a VALUES (" + std::to_string(i) + ", " +
            std::to_string(i % 10) + ")");
  }
  for (int i = 0; i < 10; ++i) {
    db.Exec("INSERT INTO b VALUES (" + std::to_string(i) + ", " +
            std::to_string(i % 5) + ")");
    db.Exec("INSERT INTO c VALUES (" + std::to_string(i) + ", 'tag')");
  }

  auto r = db.Exec(
      "EXPLAIN ANALYZE SELECT a.id, c.tag FROM a "
      "JOIN b ON a.b_id = b.id JOIN c ON b.c_id = c.id");
  ASSERT_FALSE(r.explain.empty());
  // Estimated cardinalities are still printed...
  EXPECT_NE(r.explain.find("rows="), std::string::npos) << r.explain;
  // ...and every executed operator now carries its measured actuals.
  size_t actuals = 0;
  for (size_t pos = r.explain.find("actual rows="); pos != std::string::npos;
       pos = r.explain.find("actual rows=", pos + 1)) {
    ++actuals;
  }
  EXPECT_GE(actuals, 3u) << r.explain;  // scans + joins, at least
  EXPECT_NE(r.explain.find("time="), std::string::npos) << r.explain;
  EXPECT_NE(r.explain.find("invocations="), std::string::npos) << r.explain;
  // The statement *executed*: its row count is reported, not its rows.
  EXPECT_EQ(r.rows_affected, 30);
  EXPECT_TRUE(r.rows.empty());
}

TEST(ExplainAnalyzeTest, PlainExplainHasNoActuals) {
  ObsDb db;
  db.Exec("CREATE TABLE t (k INT)");
  auto r = db.Exec("EXPLAIN SELECT * FROM t");
  ASSERT_FALSE(r.explain.empty());
  EXPECT_EQ(r.explain.find("actual rows="), std::string::npos) << r.explain;
}

// ---------------------------------------------------------------------------
// Governor decision log
// ---------------------------------------------------------------------------

TEST(GovernorLogTest, PoolResizeIsLoggedAndQueryable) {
  engine::DatabaseOptions opts;
  opts.initial_pool_frames = 64;
  auto open = engine::Database::Open(opts);
  ASSERT_TRUE(open.ok());
  auto& db = **open;
  auto conn = db.Connect();
  ASSERT_TRUE(conn.ok());
  engine::Connection* c = conn->get();

  // Touch enough pages that the governor's poll has a miss-rate signal,
  // then force polls until it acts (growing from a small pool).
  ASSERT_TRUE(c->Execute("CREATE TABLE big (k INT, pad VARCHAR(60))").ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        c->Execute("INSERT INTO big VALUES (" + std::to_string(i) +
                   ", '" + std::string(50, 'x') + "')")
            .ok());
  }
  for (int i = 0; i < 50; ++i) {
    auto r = c->Execute("SELECT * FROM big WHERE k >= 0");
    ASSERT_TRUE(r.ok());
    db.Tick(200'000);
    db.pool_governor().PollNow();
  }

  // Every poll is a decision; at least one should have been recorded.
  EXPECT_GT(db.decision_log().total_recorded(), 0u);
  const auto snap = db.decision_log().Snapshot();
  ASSERT_FALSE(snap.empty());
  bool pool_decision = false;
  for (const auto& d : snap) {
    if (d.governor == "pool") pool_decision = true;
  }
  EXPECT_TRUE(pool_decision);

  // And the same log answers SQL through sys.governors.
  auto rows = c->Execute(
      "SELECT seq, governor, action, reason FROM sys.governors");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_FALSE(rows->rows.empty());
  bool pool_row = false;
  for (const auto& row : rows->rows) {
    if (row[1].AsString() == "pool") pool_row = true;
  }
  EXPECT_TRUE(pool_row);
}

}  // namespace
}  // namespace hdb
