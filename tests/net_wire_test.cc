// Wire-protocol codec tests (DESIGN.md §12): value/frame roundtrips,
// byte-at-a-time reassembly, and — the point of a codec test — malformed
// input: truncated frames, oversized/zero lengths, garbage opcodes,
// trailing payload bytes, and a seeded random-mutation corpus. The codec
// must never crash or read out of bounds on any input; framing violations
// poison the stream, payload violations return clean InvalidArgument.
#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <string>
#include <vector>

#include "net/wire.h"

namespace hdb::net {
namespace {

// Feeds `bytes` to a fresh assembler and pulls every frame out.
std::vector<std::pair<uint8_t, std::string>> Reassemble(
    const std::string& bytes, size_t chunk, WireLimits limits = {}) {
  FrameAssembler asem(limits);
  std::vector<std::pair<uint8_t, std::string>> frames;
  size_t pos = 0;
  while (pos < bytes.size()) {
    const size_t n = std::min(chunk, bytes.size() - pos);
    asem.Feed(bytes.data() + pos, n);
    pos += n;
    for (;;) {
      Result<std::optional<Frame>> next = asem.Next();
      if (!next.ok() || !next->has_value()) break;
      frames.emplace_back((*next)->opcode, std::string((*next)->payload));
    }
  }
  return frames;
}

TEST(WireCodecTest, PrimitiveRoundtrip) {
  std::string buf;
  PutU8(&buf, 0xab);
  PutU16(&buf, 0x1234);
  PutU32(&buf, 0xdeadbeef);
  PutU64(&buf, 0x0123456789abcdefULL);
  PutI64(&buf, -42);
  PutDouble(&buf, 3.25);
  PutString(&buf, "hello");

  PayloadReader in(buf);
  EXPECT_EQ(0xab, *in.U8());
  EXPECT_EQ(0x1234, *in.U16());
  EXPECT_EQ(0xdeadbeefu, *in.U32());
  EXPECT_EQ(0x0123456789abcdefULL, *in.U64());
  EXPECT_EQ(-42, *in.I64());
  EXPECT_EQ(3.25, *in.Double());
  EXPECT_EQ("hello", *in.String());
  EXPECT_TRUE(in.ExpectEnd().ok());
}

TEST(WireCodecTest, ValueRoundtripAllTypes) {
  const std::vector<Value> values = {
      Value::Boolean(true),
      Value::Boolean(false),
      Value::Int(-7),
      Value::Bigint(1LL << 40),
      Value::Double(-0.5),
      Value::String("it's quoted"),
      Value::String(""),
      Value::Date(19000),
      Value::Timestamp(1700000000000000LL),
      Value::Null(TypeId::kInt),
      Value::Null(TypeId::kVarchar),
  };
  std::string buf;
  for (const Value& v : values) PutValue(&buf, v);
  PayloadReader in(buf);
  for (const Value& want : values) {
    Result<Value> got = in.GetValue();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(want.type(), got->type());
    EXPECT_EQ(want.is_null(), got->is_null());
    if (!want.is_null()) {
      EXPECT_EQ(want.ToString(), got->ToString());
    }
  }
  EXPECT_TRUE(in.ExpectEnd().ok());
}

TEST(WireCodecTest, FrameRoundtripByteAtATime) {
  std::string stream;
  std::string query_payload;
  PutString(&query_payload, "SELECT 1");
  AppendFrame(&stream, Opcode::kQuery, query_payload);
  AppendDoneFrame(&stream, 3, 0);
  AppendErrorFrame(&stream, StatusCode::kNotFound, "no such table");
  AppendOverloadedFrame(&stream, 250, "busy");
  AppendGoodbyeFrame(&stream, "drain");
  AppendFrame(&stream, Opcode::kPing, {});

  // Chunk sizes from pathological (1 byte) to everything-at-once.
  for (size_t chunk : {size_t{1}, size_t{2}, size_t{7}, stream.size()}) {
    auto frames = Reassemble(stream, chunk);
    ASSERT_EQ(6u, frames.size()) << "chunk=" << chunk;
    EXPECT_EQ(static_cast<uint8_t>(Opcode::kQuery), frames[0].first);
    EXPECT_EQ("SELECT 1",
              *PayloadReader(frames[0].second).String());
    EXPECT_EQ(static_cast<uint8_t>(Opcode::kDone), frames[1].first);
    EXPECT_EQ(static_cast<uint8_t>(Opcode::kError), frames[2].first);
    EXPECT_EQ(static_cast<uint8_t>(Opcode::kOverloaded), frames[3].first);
    EXPECT_EQ(static_cast<uint8_t>(Opcode::kGoodbye), frames[4].first);
    EXPECT_EQ(static_cast<uint8_t>(Opcode::kPing), frames[5].first);
    EXPECT_TRUE(frames[5].second.empty());
  }
}

TEST(WireCodecTest, TruncatedPayloadFailsCleanly) {
  std::string buf;
  PutString(&buf, "hello world");
  // Chop at every prefix length: each must fail with InvalidArgument,
  // never crash or succeed with garbage.
  for (size_t len = 0; len < buf.size(); ++len) {
    PayloadReader in(reinterpret_cast<const uint8_t*>(buf.data()), len);
    Result<std::string> s = in.String();
    EXPECT_FALSE(s.ok()) << "prefix " << len;
    if (!s.ok()) {
      EXPECT_EQ(StatusCode::kInvalidArgument, s.status().code());
    }
  }
}

TEST(WireCodecTest, OversizedStringLengthRejected) {
  std::string buf;
  PutU32(&buf, 0xffffffffu);  // claims a 4 GiB string
  buf += "abc";
  PayloadReader in(buf);
  Result<std::string> s = in.String();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, s.status().code());
}

TEST(WireCodecTest, ZeroAndOversizedFrameLengthPoison) {
  {
    FrameAssembler asem;
    std::string bytes;
    PutU32(&bytes, 0);  // zero length: no opcode byte possible
    asem.Feed(bytes);
    Result<std::optional<Frame>> next = asem.Next();
    EXPECT_FALSE(next.ok());
    EXPECT_TRUE(asem.poisoned());
    // Poisoned stays poisoned: further feeds don't resurrect it.
    asem.Feed(bytes);
    EXPECT_FALSE(asem.Next().ok());
  }
  {
    WireLimits limits;
    limits.max_frame_bytes = 1024;
    FrameAssembler asem(limits);
    std::string bytes;
    PutU32(&bytes, 4096);
    asem.Feed(bytes);
    EXPECT_FALSE(asem.Next().ok());
    EXPECT_TRUE(asem.poisoned());
  }
}

TEST(WireCodecTest, GarbageOpcodeIsNotAClientOpcode) {
  for (int op = 0; op < 256; ++op) {
    const bool legal = op >= static_cast<int>(Opcode::kHello) &&
                       op <= static_cast<int>(Opcode::kPing);
    EXPECT_EQ(legal, IsClientOpcode(static_cast<uint8_t>(op))) << op;
  }
}

TEST(WireCodecTest, TrailingBytesRejected) {
  std::string buf;
  PutU32(&buf, 7);
  PutU8(&buf, 99);  // one extra byte
  PayloadReader in(buf);
  ASSERT_TRUE(in.U32().ok());
  Status end = in.ExpectEnd();
  EXPECT_FALSE(end.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, end.code());
}

TEST(WireCodecTest, BadValueTagAndFlagsRejected) {
  {
    std::string buf;
    PutU8(&buf, 200);  // no such TypeId
    PutU8(&buf, 0);
    EXPECT_FALSE(PayloadReader(buf).GetValue().ok());
  }
  {
    std::string buf;
    PutU8(&buf, static_cast<uint8_t>(TypeId::kInt));
    PutU8(&buf, 0x80);  // undefined flag bits
    PutI64(&buf, 1);
    EXPECT_FALSE(PayloadReader(buf).GetValue().ok());
  }
  {
    std::string buf;
    PutU8(&buf, static_cast<uint8_t>(TypeId::kBoolean));
    PutU8(&buf, 0);
    PutU8(&buf, 7);  // booleans are 0/1
    EXPECT_FALSE(PayloadReader(buf).GetValue().ok());
  }
  {
    std::string buf;
    PutU8(&buf, static_cast<uint8_t>(TypeId::kInt));
    PutU8(&buf, 0);
    PutI64(&buf, 1LL << 40);  // out of 32-bit INT range
    EXPECT_FALSE(PayloadReader(buf).GetValue().ok());
  }
}

TEST(WireCodecTest, SqlLiteralQuoting) {
  EXPECT_EQ("NULL", SqlLiteral(Value::Null(TypeId::kVarchar)));
  EXPECT_EQ("TRUE", SqlLiteral(Value::Boolean(true)));
  EXPECT_EQ("-42", SqlLiteral(Value::Int(-42)));
  EXPECT_EQ("'plain'", SqlLiteral(Value::String("plain")));
  EXPECT_EQ("'it''s'", SqlLiteral(Value::String("it's")));
  EXPECT_EQ("''''''", SqlLiteral(Value::String("''")));
  // %.17g round-trips through strtod exactly.
  const double d = 0.1 + 0.2;
  EXPECT_EQ(d, std::stod(SqlLiteral(Value::Double(d))));
}

TEST(WireCodecTest, SplitOnPlaceholders) {
  using V = std::vector<std::string>;
  EXPECT_EQ(V({"SELECT 1"}), SplitOnPlaceholders("SELECT 1"));
  EXPECT_EQ(V({"a = ", ""}), SplitOnPlaceholders("a = ?"));
  EXPECT_EQ(V({"a = ", " AND b = ", ""}),
            SplitOnPlaceholders("a = ? AND b = ?"));
  // '?' inside a string literal is not a placeholder.
  EXPECT_EQ(V({"SELECT '?' FROM t WHERE a = ", ""}),
            SplitOnPlaceholders("SELECT '?' FROM t WHERE a = ?"));
  // '' escaping keeps the lexer-visible string open across the quote.
  EXPECT_EQ(V({"SELECT 'it''s ?' , ", ""}),
            SplitOnPlaceholders("SELECT 'it''s ?' , ?"));
}

// The mutation corpus: take a valid multi-frame stream, flip bytes at
// seeded-random positions, and run the full decode pipeline (assembler →
// opcode check → payload parse) over the result. Any outcome is fine
// EXCEPT a crash, a hang, or an out-of-bounds read (ASan/TSan jobs run
// this too); successfully-decoded frames must still honor the limits.
TEST(WireCodecTest, SeededMutationCorpusNeverCrashes) {
  std::string pristine;
  AppendFrame(&pristine, Opcode::kHello, [] {
    std::string p;
    PutU32(&p, kProtocolVersion);
    PutString(&p, "fuzz");
    return p;
  }());
  AppendFrame(&pristine, Opcode::kQuery, [] {
    std::string p;
    PutString(&p, "SELECT a, b FROM t WHERE a = 'x''y' AND b = 3.5");
    return p;
  }());
  AppendFrame(&pristine, Opcode::kBind, [] {
    std::string p;
    PutU32(&p, 1);
    PutU16(&p, 3);
    PutValue(&p, Value::Int(7));
    PutValue(&p, Value::Null(TypeId::kDouble));
    PutValue(&p, Value::String("str"));
    return p;
  }());
  AppendDoneFrame(&pristine, 1, 2);

  WireLimits limits;
  limits.max_frame_bytes = 1u << 20;
  limits.max_string_bytes = 1u << 16;

  std::mt19937 gen(424242);
  std::uniform_int_distribution<size_t> pos_dist(0, pristine.size() - 1);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::uniform_int_distribution<int> nmut_dist(1, 8);

  int decoded_frames = 0;
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = pristine;
    const int nmut = nmut_dist(gen);
    for (int m = 0; m < nmut; ++m) {
      mutated[pos_dist(gen)] = static_cast<char>(byte_dist(gen));
    }
    // Sometimes truncate as well — torn TCP streams.
    if (round % 3 == 0) {
      mutated.resize(pos_dist(gen));
    }

    FrameAssembler asem(limits);
    // Feed in two chunks to exercise the compaction path.
    const size_t half = mutated.size() / 2;
    asem.Feed(mutated.data(), half);
    asem.Feed(mutated.data() + half, mutated.size() - half);
    for (;;) {
      Result<std::optional<Frame>> next = asem.Next();
      if (!next.ok()) {
        EXPECT_TRUE(asem.poisoned());
        break;
      }
      if (!next->has_value()) break;
      ++decoded_frames;
      const Frame& f = **next;
      if (!IsClientOpcode(f.opcode)) continue;
      // Parse the payload as every client shape; failures must be clean.
      PayloadReader in(f.payload, limits);
      switch (static_cast<Opcode>(f.opcode)) {
        case Opcode::kHello: {
          Result<uint32_t> v = in.U32();
          if (v.ok()) (void)in.String();
          break;
        }
        case Opcode::kQuery:
        case Opcode::kPrepare:
          (void)in.String();
          break;
        case Opcode::kBind: {
          Result<uint32_t> id = in.U32();
          Result<uint16_t> n = id.ok() ? in.U16() : Result<uint16_t>(
                                                        id.status());
          if (n.ok()) {
            for (uint16_t i = 0; i < *n; ++i) {
              if (!in.GetValue().ok()) break;
            }
          }
          break;
        }
        case Opcode::kExecute:
        case Opcode::kClosePrepared:
          (void)in.U32();
          break;
        default:
          break;
      }
    }
  }
  // The corpus must actually exercise the decode path, not just die at
  // the first length field every time.
  EXPECT_GT(decoded_frames, 100);
}

}  // namespace
}  // namespace hdb::net
