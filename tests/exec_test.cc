#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "catalog/catalog.h"
#include "exec/memory_governor.h"
#include "exec/morsel.h"
#include "exec/mpl_controller.h"
#include "exec/recursive_union.h"
#include "exec/spill.h"
#include "table/row_codec.h"
#include "table/table_heap.h"

namespace hdb::exec {
namespace {

struct Fixture {
  Fixture()
      : disk(storage::kDefaultPageBytes, nullptr, nullptr),
        pool(&disk, storage::BufferPoolOptions{.initial_frames = 256}) {}
  storage::DiskManager disk;
  storage::BufferPool pool;
};

// --- Memory governor (Eq. 4 and Eq. 5) ---

TEST(MemoryGovernorTest, SoftLimitIsPoolOverMpl) {
  Fixture f;
  MemoryGovernorOptions opts;
  opts.multiprogramming_level = 8;
  MemoryGovernor gov(&f.pool, opts);
  EXPECT_EQ(gov.SoftLimitPages(), 256u / 8);
  gov.SetMultiprogrammingLevel(4);
  EXPECT_EQ(gov.SoftLimitPages(), 256u / 4);
  // Tracks the *current* pool size as the pool resizes.
  f.pool.Resize(512);
  EXPECT_EQ(gov.SoftLimitPages(), 512u / 4);
}

TEST(MemoryGovernorTest, HardLimitDividesByActiveRequests) {
  Fixture f;
  MemoryGovernorOptions opts;
  opts.max_pool_pages = 3000;
  opts.hard_limit_factor = 4.0 / 3.0;
  MemoryGovernor gov(&f.pool, opts);
  auto t1 = gov.BeginTask();
  EXPECT_EQ(gov.HardLimitPages(), 4000u);
  auto t2 = gov.BeginTask();
  EXPECT_EQ(gov.HardLimitPages(), 2000u);
  t2.reset();
  EXPECT_EQ(gov.HardLimitPages(), 4000u);
}

TEST(MemoryGovernorTest, HardLimitKillsStatement) {
  Fixture f;
  MemoryGovernorOptions opts;
  opts.max_pool_pages = 100;  // hard = 133 pages for one request
  MemoryGovernor gov(&f.pool, opts);
  auto task = gov.BeginTask();
  const uint64_t page = f.pool.page_bytes();
  EXPECT_TRUE(task->ChargeBytes(100 * page).ok());
  const Status s = task->ChargeBytes(100 * page);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

class FakeConsumer : public MemoryConsumer {
 public:
  FakeConsumer(const char* n, int level, double cost, uint64_t bytes)
      : bytes_(bytes), cost_(cost) {
    name = n;
    plan_level = level;
  }
  SpillableStats SpillStats() const override {
    SpillableStats s;
    s.spillable_bytes = bytes_ > reserve_ ? bytes_ - reserve_ : 0;
    s.must_reserve_bytes = reserve_;
    s.respill_cost = cost_;
    return s;
  }
  Result<uint64_t> SpillSome(uint64_t target) override {
    spill_calls++;
    if (fail_) return Status::Internal("injected spill-write failure");
    const uint64_t avail = bytes_ > reserve_ ? bytes_ - reserve_ : 0;
    const uint64_t freed = std::min(target, avail);
    bytes_ -= freed;
    return freed;
  }
  uint64_t bytes_;
  uint64_t reserve_ = 0;
  double cost_;
  bool fail_ = false;
  int spill_calls = 0;
};

TEST(MemoryGovernorTest, SchedulerPicksCheapestVictim) {
  Fixture f;
  MemoryGovernorOptions opts;
  opts.multiprogramming_level = 16;  // soft = 16 pages
  opts.max_pool_pages = 1 << 20;     // hard: effectively unlimited
  MemoryGovernor gov(&f.pool, opts);
  auto task = gov.BeginTask();
  const uint64_t page = f.pool.page_bytes();
  FakeConsumer dear("hash_join", /*level=*/1, /*cost=*/3.0, 100 * page);
  FakeConsumer cheap("sort", /*level=*/3, /*cost=*/1.5, 100 * page);
  task->RegisterConsumer(&dear);
  task->RegisterConsumer(&cheap);
  // Charge past the soft limit: the CHEAP consumer spills, the dear one
  // is never touched — the broker owns the choice, not stack order.
  ASSERT_TRUE(task->ChargeBytes(40 * page).ok());
  EXPECT_GE(cheap.spill_calls, 1);
  EXPECT_EQ(dear.spill_calls, 0);
  EXPECT_LT(cheap.bytes_, 100 * page);
  EXPECT_GT(task->reclamations(), 0u);
  EXPECT_GT(task->spill_decisions(), 0u);
}

TEST(MemoryGovernorTest, SchedulerTieBreaksToHigherPlanLevel) {
  Fixture f;
  MemoryGovernorOptions opts;
  opts.multiprogramming_level = 16;
  opts.max_pool_pages = 1 << 20;
  MemoryGovernor gov(&f.pool, opts);
  auto task = gov.BeginTask();
  const uint64_t page = f.pool.page_bytes();
  FakeConsumer low("low", /*level=*/1, /*cost=*/2.0, 100 * page);
  FakeConsumer high("high", /*level=*/5, /*cost=*/2.0, 100 * page);
  task->RegisterConsumer(&low);
  task->RegisterConsumer(&high);
  ASSERT_TRUE(task->ChargeBytes(40 * page).ok());
  EXPECT_GE(high.spill_calls, 1);
  EXPECT_EQ(low.spill_calls, 0);
}

TEST(MemoryGovernorTest, SchedulerHonorsReserveFloor) {
  Fixture f;
  MemoryGovernorOptions opts;
  opts.multiprogramming_level = 16;
  opts.max_pool_pages = 1 << 20;
  MemoryGovernor gov(&f.pool, opts);
  auto task = gov.BeginTask();
  const uint64_t page = f.pool.page_bytes();
  FakeConsumer c("group_by", /*level=*/2, /*cost=*/2.0, 100 * page);
  c.reserve_ = 90 * page;  // only 10 pages are actually offered
  task->RegisterConsumer(&c);
  // Deficit (24 pages) exceeds what the consumer offers; the scheduler
  // must stop at the reserve floor instead of draining it.
  ASSERT_TRUE(task->ChargeBytes(40 * page).ok());
  EXPECT_GE(c.bytes_, c.reserve_);
  EXPECT_EQ(c.bytes_, 90 * page);
}

TEST(MemoryGovernorTest, SpillErrorPropagatesToChargingStatement) {
  Fixture f;
  MemoryGovernorOptions opts;
  opts.multiprogramming_level = 16;
  opts.max_pool_pages = 1 << 20;
  MemoryGovernor gov(&f.pool, opts);
  auto task = gov.BeginTask();
  const uint64_t page = f.pool.page_bytes();
  FakeConsumer broken("sort", /*level=*/3, /*cost=*/1.5, 100 * page);
  broken.fail_ = true;
  task->RegisterConsumer(&broken);
  ASSERT_TRUE(task->ChargeBytes(10 * page).ok());
  const uint64_t before = task->bytes_charged();
  // The old release-callback protocol swallowed this; the scheduler's
  // error channel aborts the charge and rolls the account back.
  const Status s = task->ChargeBytes(30 * page);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(task->bytes_charged(), before);
}

TEST(MemoryGovernorTest, ExhaustedConsumersAreSkippedNotRelooped) {
  Fixture f;
  MemoryGovernorOptions opts;
  opts.multiprogramming_level = 16;
  opts.max_pool_pages = 1 << 20;
  MemoryGovernor gov(&f.pool, opts);
  auto task = gov.BeginTask();
  const uint64_t page = f.pool.page_bytes();
  // Claims spillable bytes but never actually frees any: the scheduler
  // must mark it exhausted after one ask instead of spinning.
  class Stuck : public MemoryConsumer {
   public:
    SpillableStats SpillStats() const override {
      SpillableStats s;
      s.spillable_bytes = 1 << 20;
      return s;
    }
    Result<uint64_t> SpillSome(uint64_t) override {
      calls++;
      return uint64_t{0};
    }
    int calls = 0;
  };
  Stuck stuck;
  task->RegisterConsumer(&stuck);
  ASSERT_TRUE(task->ChargeBytes(40 * page).ok());
  EXPECT_EQ(stuck.calls, 1);
}

// --- Spill files ---

TEST(SpillTest, EncodeDecodeRoundTrip) {
  const std::vector<Value> tuple = {
      Value::Int(5), Value::Null(), Value::String("spilled"),
      Value::Double(2.5), Value::Boolean(true), Value::Timestamp(99)};
  const std::string bytes = EncodeValues(tuple);
  size_t consumed = 0;
  auto decoded = DecodeValues(bytes.data(), bytes.size(), &consumed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(consumed, bytes.size());
  ASSERT_EQ(decoded->size(), tuple.size());
  for (size_t i = 0; i < tuple.size(); ++i) {
    EXPECT_EQ(tuple[i].Compare((*decoded)[i]), 0);
  }
}

TEST(SpillTest, AppendReadManyTuples) {
  Fixture f;
  SpillFile spill(&f.pool);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(spill.Append({Value::Int(i), Value::String("x")}).ok());
  }
  EXPECT_GT(spill.page_count(), 5u);
  auto reader = spill.Read();
  std::vector<Value> tuple;
  int i = 0;
  for (;;) {
    auto more = reader.Next(&tuple);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    EXPECT_EQ(tuple[0].AsInt(), i++);
  }
  EXPECT_EQ(i, 5000);
}

TEST(SpillTest, ClearDiscardsToLookaside) {
  Fixture f;
  SpillFile spill(&f.pool);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(spill.Append({Value::Int(i)}).ok());
  }
  spill.Clear();
  EXPECT_EQ(spill.tuple_count(), 0u);
  EXPECT_EQ(spill.page_count(), 0u);
}

TEST(SpillTest, ByteCountTracksAppendsAndClear) {
  Fixture f;
  SpillFile spill(&f.pool);
  EXPECT_EQ(spill.byte_count(), 0u);
  ASSERT_TRUE(spill.Append({Value::Int(1), Value::String("abc")}).ok());
  const uint64_t one = spill.byte_count();
  EXPECT_GT(one, 0u);
  ASSERT_TRUE(spill.Append({Value::Int(2), Value::String("abc")}).ok());
  EXPECT_EQ(spill.byte_count(), 2 * one);
  spill.Clear();
  EXPECT_EQ(spill.byte_count(), 0u);
}

TEST(SpillTest, MergeReaderInterleavesSortedRuns) {
  Fixture f;
  SpillFile a(&f.pool), b(&f.pool), c(&f.pool);
  for (const int v : {1, 4, 7, 10}) ASSERT_TRUE(a.Append({Value::Int(v)}).ok());
  for (const int v : {2, 5, 8}) ASSERT_TRUE(b.Append({Value::Int(v)}).ok());
  for (const int v : {3, 6, 9}) ASSERT_TRUE(c.Append({Value::Int(v)}).ok());
  SpillMergeReader merge(
      {&a, &b, &c},
      [](const std::vector<Value>& x, const std::vector<Value>& y) {
        return x[0].Compare(y[0]);
      });
  ASSERT_TRUE(merge.Init().ok());
  std::vector<Value> tuple;
  int expect = 1;
  for (;;) {
    auto more = merge.Next(&tuple);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    EXPECT_EQ(tuple[0].AsInt(), expect++);
  }
  EXPECT_EQ(expect, 11);
}

TEST(SpillTest, MergeReaderTiesKeepEarliestRun) {
  Fixture f;
  SpillFile a(&f.pool), b(&f.pool);
  ASSERT_TRUE(a.Append({Value::Int(1), Value::String("first")}).ok());
  ASSERT_TRUE(b.Append({Value::Int(1), Value::String("second")}).ok());
  SpillMergeReader merge(
      {&a, &b},
      [](const std::vector<Value>& x, const std::vector<Value>& y) {
        return x[0].Compare(y[0]);
      });
  ASSERT_TRUE(merge.Init().ok());
  std::vector<Value> tuple;
  auto more = merge.Next(&tuple);
  ASSERT_TRUE(more.ok() && *more);
  EXPECT_EQ(tuple[1].AsString(), "first");  // stability on equal keys
  more = merge.Next(&tuple);
  ASSERT_TRUE(more.ok() && *more);
  EXPECT_EQ(tuple[1].AsString(), "second");
}

// --- Recursive union (§4.3) ---

std::vector<RecursiveUnion::Row> GraphStep(
    const std::map<int, std::vector<int>>& edges,
    const std::vector<RecursiveUnion::Row>& delta) {
  std::vector<RecursiveUnion::Row> next;
  for (const auto& row : delta) {
    const auto it = edges.find(static_cast<int>(row[0].AsInt()));
    if (it == edges.end()) continue;
    for (const int to : it->second) next.push_back({Value::Int(to)});
  }
  return next;
}

TEST(RecursiveUnionTest, TransitiveClosureOfChain) {
  std::map<int, std::vector<int>> edges;
  for (int i = 0; i < 50; ++i) edges[i] = {i + 1};
  RecursiveUnion ru;
  auto result = ru.Run({{Value::Int(0)}}, [&](const auto& delta) {
    return GraphStep(edges, delta);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 51u);  // 0..50
}

TEST(RecursiveUnionTest, CycleTerminatesThroughDedup) {
  std::map<int, std::vector<int>> edges = {{0, {1}}, {1, {2}}, {2, {0}}};
  RecursiveUnion ru;
  auto result = ru.Run({{Value::Int(0)}}, [&](const auto& delta) {
    return GraphStep(edges, delta);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);
}

TEST(RecursiveUnionTest, StrategiesAgree) {
  std::map<int, std::vector<int>> edges;
  Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    for (int j = 0; j < 3; ++j) {
      edges[i].push_back(static_cast<int>(rng.Uniform(300)));
    }
  }
  auto run = [&](std::optional<RecursiveStrategy> force) {
    RecursiveUnionOptions opts;
    opts.force = force;
    RecursiveUnion ru(opts);
    auto r = ru.Run({{Value::Int(0)}}, [&](const auto& delta) {
      return GraphStep(edges, delta);
    });
    std::set<int64_t> out;
    for (const auto& row : *r) out.insert(row[0].AsInt());
    return out;
  };
  const auto hash_result = run(RecursiveStrategy::kHashProbe);
  const auto sort_result = run(RecursiveStrategy::kSortMerge);
  const auto adaptive = run(std::nullopt);
  EXPECT_EQ(hash_result, sort_result);
  EXPECT_EQ(hash_result, adaptive);
}

TEST(RecursiveUnionTest, AdaptiveSwitchesStrategiesAcrossIterations) {
  // A fan-out graph: early iterations have huge candidate batches relative
  // to history (sort-merge wins), later ones shrink (hash wins).
  std::map<int, std::vector<int>> edges;
  for (int i = 0; i < 20000; ++i) edges[0].push_back(i + 1);
  for (int i = 1; i < 21001; ++i) edges[i] = {21001};
  RecursiveUnion ru;
  auto result = ru.Run({{Value::Int(0)}}, [&](const auto& delta) {
    return GraphStep(edges, delta);
  });
  ASSERT_TRUE(result.ok());
  std::set<RecursiveStrategy> used;
  for (const auto& info : ru.iterations()) used.insert(info.used);
  EXPECT_EQ(used.size(), 2u) << "expected both strategies across iterations";
}

// --- MPL controller (§6 extension) ---

TEST(MplControllerTest, ClimbsWhileThroughputImproves) {
  Fixture f;
  MemoryGovernorOptions mopts;
  mopts.multiprogramming_level = 8;
  MemoryGovernor gov(&f.pool, mopts);
  os::VirtualClock clock;
  MplControllerOptions opts;
  opts.interval_micros = 1000;
  opts.step = 2;
  MplController ctl(&gov, &clock, opts);

  int completed = 10;
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < completed; ++j) ctl.OnRequestComplete();
    clock.Advance(1001);
    ctl.MaybeAdapt();
    completed += 10;  // throughput keeps improving
  }
  EXPECT_GT(gov.multiprogramming_level(), 8);
}

TEST(MplControllerTest, ReversesWhenThroughputDrops) {
  Fixture f;
  MemoryGovernor gov(&f.pool, MemoryGovernorOptions{});
  os::VirtualClock clock;
  MplControllerOptions opts;
  opts.interval_micros = 1000;
  MplController ctl(&gov, &clock, opts);
  const int start_mpl = gov.multiprogramming_level();

  // Interval 1: high throughput. Interval 2: collapse. Interval 3+: the
  // direction must have flipped downward.
  for (int j = 0; j < 100; ++j) ctl.OnRequestComplete();
  clock.Advance(1001);
  ctl.MaybeAdapt();
  for (int j = 0; j < 10; ++j) ctl.OnRequestComplete();
  clock.Advance(1001);
  ctl.MaybeAdapt();
  for (int j = 0; j < 5; ++j) ctl.OnRequestComplete();
  clock.Advance(1001);
  ctl.MaybeAdapt();
  EXPECT_LE(gov.multiprogramming_level(), start_mpl + 2);
  ASSERT_GE(ctl.history().size(), 3u);
  // The collapse in interval 2 must have reversed the climb direction.
  EXPECT_EQ(ctl.history()[1].direction, -1);
}

// --- Morsel dispenser (§4.4) ---

struct ParallelFixture {
  ParallelFixture()
      : disk(storage::kDefaultPageBytes, nullptr, nullptr),
        pool(&disk, storage::BufferPoolOptions{.initial_frames = 2048}) {}

  catalog::TableDef* MakeTable(catalog::Catalog& cat, const std::string& name,
                               int rows, int key_domain, uint64_t seed) {
    auto def = cat.CreateTable(name, {{"k", TypeId::kInt, false},
                                      {"g", TypeId::kInt, false}});
    auto heap = std::make_unique<table::TableHeap>(&pool, *def);
    Rng rng(seed);
    for (int i = 0; i < rows; ++i) {
      const table::Row row = {
          Value::Int(static_cast<int32_t>(rng.Uniform(key_domain))),
          Value::Int(static_cast<int32_t>(i % 5))};
      auto bytes = table::EncodeRow(**def, row);
      auto rid = heap->Insert(*bytes);
      EXPECT_TRUE(rid.ok());
    }
    heaps[(*def)->oid] = std::move(heap);
    return *def;
  }

  table::TableHeap* Heap(uint32_t oid) { return heaps[oid].get(); }

  storage::DiskManager disk;
  storage::BufferPool pool;
  std::map<uint32_t, std::unique_ptr<table::TableHeap>> heaps;
};

TEST(MorselDispenserTest, DispensesAllRowsExactlyOnce) {
  ParallelFixture f;
  catalog::Catalog cat;
  auto* t = f.MakeTable(cat, "md1", 20000, 100, 1);
  MorselDispenser d(f.Heap(t->oid), 512);
  std::atomic<uint64_t> total{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      std::vector<std::string> bytes;
      std::vector<Rid> rids;
      for (;;) {
        auto n = d.Next(&bytes, &rids);
        if (!n.ok() || *n == 0) break;
        total.fetch_add(*n, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : workers) th.join();
  EXPECT_EQ(total.load(), 20000u);
  EXPECT_GE(d.morsels(), 20000u / 512);
}

// The small-fix satellite: FCFS dispensing must preserve the heap scan's
// sequential page order no matter how many workers pull concurrently —
// parallelism must not turn sequential I/O into random I/O (paper §4.4).
TEST(MorselDispenserTest, DispatchPreservesHeapPageOrder) {
  ParallelFixture f;
  catalog::Catalog cat;
  auto* t = f.MakeTable(cat, "md2", 50000, 100, 2);
  MorselDispenser d(f.Heap(t->oid), 256);
  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&] {
      std::vector<std::string> bytes;
      std::vector<Rid> rids;
      for (;;) {
        auto n = d.Next(&bytes, &rids);
        if (!n.ok() || *n == 0) break;
      }
    });
  }
  for (auto& th : workers) th.join();
  const std::vector<uint32_t> pages = d.DispatchedPages();
  ASSERT_GT(pages.size(), 4u);
  for (size_t i = 1; i < pages.size(); ++i) {
    ASSERT_GE(pages[i], pages[i - 1])
        << "morsel " << i << " dispatched out of page order";
  }
}

TEST(MorselDispenserTest, EndOfTableIsSticky) {
  ParallelFixture f;
  catalog::Catalog cat;
  auto* t = f.MakeTable(cat, "md3", 100, 10, 3);
  MorselDispenser d(f.Heap(t->oid), 0);  // 0 = kDefaultMorselRows
  std::vector<std::string> bytes;
  std::vector<Rid> rids;
  uint64_t total = 0;
  for (;;) {
    auto n = d.Next(&bytes, &rids);
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
    total += *n;
  }
  EXPECT_EQ(total, 100u);
  auto again = d.Next(&bytes, &rids);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

}  // namespace
}  // namespace hdb::exec
