#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "os/stable_storage.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "wal/checkpoint_governor.h"
#include "wal/wal_manager.h"
#include "wal/wal_record.h"

namespace hdb::wal {
namespace {

constexpr uint32_t kPageBytes = 1024;

struct Rig {
  std::shared_ptr<os::StableStorage> media;
  std::unique_ptr<storage::DiskManager> disk;
  std::unique_ptr<WalManager> wal;

  explicit Rig(os::FaultOptions faults = {}, WalOptions wopts = {})
      : media(std::make_shared<os::StableStorage>(kPageBytes, faults)) {
    Reopen(wopts);
  }

  /// kill -9 + power loss: the WalManager's shutdown flush must fail, not
  /// quietly rescue the un-synced tail, so the media dies first.
  void Crash() {
    media->ScheduleCrash(0);
    wal.reset();
    disk.reset();
    media->PowerCycle();
  }

  /// Simulated restart: new DiskManager + WalManager over the same media.
  void Reopen(WalOptions wopts = {}) {
    wal.reset();
    disk = std::make_unique<storage::DiskManager>(kPageBytes, nullptr,
                                                  nullptr, media);
    wal = std::make_unique<WalManager>(disk.get(), wopts);
  }
};

storage::Lsn Append(WalManager& wal, uint64_t txn, const std::string& payload,
                    WalRecordType type = WalRecordType::kHeapInsert) {
  auto lsn = wal.Append(type, txn, payload);
  EXPECT_TRUE(lsn.ok()) << lsn.status().message();
  return lsn.ok() ? *lsn : storage::kNullLsn;
}

TEST(WalManagerTest, AppendScanRoundtripAcrossPages) {
  Rig rig;
  // Payloads big enough that the log spills onto several pages.
  const std::string blob(200, 'x');
  std::vector<storage::Lsn> lsns;
  for (uint64_t i = 1; i <= 20; ++i) {
    lsns.push_back(Append(*rig.wal, i, blob + std::to_string(i)));
  }
  ASSERT_TRUE(rig.wal->EnsureDurable(lsns.back()).ok());
  ASSERT_GT(rig.disk->NumPages(storage::SpaceId::kLog), 1u);

  auto scan = rig.wal->ScanLog();
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 20u);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(scan->records[i].lsn, lsns[i]);
    EXPECT_EQ(scan->records[i].txn_id, i + 1);
    EXPECT_EQ(scan->records[i].payload, blob + std::to_string(i + 1));
    EXPECT_EQ(scan->records[i].type, WalRecordType::kHeapInsert);
  }
  EXPECT_EQ(scan->max_lsn, lsns.back());
  EXPECT_EQ(scan->max_txn_id, 20u);
}

TEST(WalManagerTest, PowerCycleKeepsExactlyTheDurablePrefix) {
  Rig rig;
  const storage::Lsn l1 = Append(*rig.wal, 1, "one");
  const storage::Lsn l2 = Append(*rig.wal, 1, "two");
  ASSERT_TRUE(rig.wal->EnsureDurable(l2).ok());
  Append(*rig.wal, 2, "lost-a");
  Append(*rig.wal, 2, "lost-b");

  rig.Crash();
  rig.Reopen();
  auto scan = rig.wal->ScanLog();
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[0].lsn, l1);
  EXPECT_EQ(scan->records[1].lsn, l2);
  EXPECT_EQ(scan->records[1].payload, "two");
}

TEST(WalManagerTest, ResumeBumpsEpochAndKeepsLsnsContinuous) {
  Rig rig;
  const storage::Lsn l1 = Append(*rig.wal, 1, "first-life");
  ASSERT_TRUE(rig.wal->EnsureDurable(l1).ok());
  rig.Crash();

  rig.Reopen();
  auto scan = rig.wal->ScanLog();
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  const uint32_t old_epoch = scan->records[0].epoch;
  ASSERT_TRUE(
      rig.wal->ResumeAt(scan->tail_page, scan->tail_offset, scan->max_lsn + 1)
          .ok());

  const storage::Lsn l2 = Append(*rig.wal, 2, "second-life");
  EXPECT_EQ(l2, l1 + 1);
  ASSERT_TRUE(rig.wal->EnsureDurable(l2).ok());

  auto rescan = rig.wal->ScanLog();
  ASSERT_TRUE(rescan.ok());
  ASSERT_EQ(rescan->records.size(), 2u);
  EXPECT_EQ(rescan->records[0].payload, "first-life");
  EXPECT_EQ(rescan->records[1].payload, "second-life");
  EXPECT_GT(rescan->records[1].epoch, old_epoch);
}

TEST(WalManagerTest, TornTailSalvagesValidRecordPrefix) {
  os::FaultOptions faults;
  faults.seed = 11;
  faults.torn_write = true;
  Rig rig(faults);

  const storage::Lsn l1 = Append(*rig.wal, 1, "durable-record");
  ASSERT_TRUE(rig.wal->EnsureDurable(l1).ok());
  // Fill past the first page: advancing eagerly writes page 0 (now also
  // carrying the second record) to the media cache. Power dies with that
  // rewrite pending, so the media tears it: a mix of old (l1-only) and new
  // sectors.
  Append(*rig.wal, 2, std::string(600, 'z'));
  Append(*rig.wal, 3, std::string(600, 'w'));
  rig.Crash();

  rig.Reopen();
  auto scan = rig.wal->ScanLog();
  ASSERT_TRUE(scan.ok()) << scan.status().message();
  // The salvage must keep l1 (its bytes are identical in both images) and
  // may or may not keep the torn record — but never garbage.
  ASSERT_GE(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].lsn, l1);
  EXPECT_EQ(scan->records[0].payload, "durable-record");
  for (size_t i = 0; i < scan->records.size(); ++i) {
    EXPECT_EQ(scan->records[i].lsn, l1 + i);  // strict continuity
  }

  // And the writer can resume past the salvage point.
  ASSERT_TRUE(
      rig.wal->ResumeAt(scan->tail_page, scan->tail_offset, scan->max_lsn + 1)
          .ok());
  const storage::Lsn l3 = Append(*rig.wal, 3, "after-salvage");
  ASSERT_TRUE(rig.wal->EnsureDurable(l3).ok());
  auto rescan = rig.wal->ScanLog();
  ASSERT_TRUE(rescan.ok());
  EXPECT_EQ(rescan->records.back().payload, "after-salvage");
}

TEST(WalManagerTest, GroupCommitMakesWaitersDurable) {
  WalOptions wopts;
  wopts.group_commit = true;
  Rig rig({}, wopts);
  rig.wal->StartFlusher();

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 10; ++i) {
        auto lsn = rig.wal->Append(WalRecordType::kCommit,
                                   static_cast<uint64_t>(t * 100 + i), "");
        if (!lsn.ok() || !rig.wal->WaitDurable(*lsn).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  const WalStats s = rig.wal->stats();
  EXPECT_EQ(s.appends, 80u);
  EXPECT_GE(s.durable_lsn, s.appended_lsn);
  EXPECT_GE(s.group_batches, 1u);
  rig.wal->Shutdown();
}

TEST(WalManagerTest, CommitWaitSurfacesMediaDeath) {
  WalOptions wopts;
  wopts.group_commit = true;
  Rig rig({}, wopts);
  rig.wal->StartFlusher();

  const storage::Lsn ok_lsn = Append(*rig.wal, 1, "", WalRecordType::kCommit);
  ASSERT_TRUE(rig.wal->WaitDurable(ok_lsn).ok());

  rig.media->ScheduleCrash(0);
  auto lsn = rig.wal->Append(WalRecordType::kCommit, 2, "");
  if (lsn.ok()) {
    EXPECT_FALSE(rig.wal->WaitDurable(*lsn).ok());
  }
  rig.wal->Shutdown();
}

TEST(WalManagerTest, DisabledWalIsInert) {
  WalOptions wopts;
  wopts.enabled = false;
  Rig rig({}, wopts);
  auto lsn = rig.wal->Append(WalRecordType::kHeapInsert, 1, "ignored");
  ASSERT_TRUE(lsn.ok());
  EXPECT_TRUE(rig.wal->EnsureDurable(*lsn).ok());
  EXPECT_TRUE(rig.wal->WaitDurable(*lsn).ok());
  EXPECT_EQ(rig.disk->NumPages(storage::SpaceId::kLog), 0u);
  EXPECT_EQ(rig.wal->stats().appends, 0u);
}

// ---------------------------------------------------------------------------
// WAL-before-data barrier through the buffer pool.
// ---------------------------------------------------------------------------

TEST(WalBarrierTest, FlushingALoggedPageForcesLogDurabilityFirst) {
  Rig rig;
  storage::BufferPoolOptions popts;
  popts.initial_frames = 16;
  storage::BufferPool pool(rig.disk.get(), popts);
  pool.SetFlushBarrier(
      [&](storage::Lsn lsn) { return rig.wal->EnsureDurable(lsn); });

  const storage::Lsn lsn = Append(*rig.wal, 1, "page change");
  EXPECT_LT(rig.wal->durable_lsn(), lsn);  // not yet durable

  storage::PageId id = storage::kInvalidPageId;
  {
    auto h = pool.NewPage(storage::SpaceId::kMain, storage::PageType::kHeap,
                          /*owner=*/0, &id);
    ASSERT_TRUE(h.ok());
    h->data()[0] = 'w';
    h->MarkDirty(lsn);
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  // The barrier ran: everything up to the page's LSN hit the media first.
  EXPECT_GE(rig.wal->durable_lsn(), lsn);
}

TEST(WalBarrierTest, MinDirtyLsnTracksPinnedUnflushedFrames) {
  Rig rig;
  storage::BufferPoolOptions popts;
  popts.initial_frames = 16;
  storage::BufferPool pool(rig.disk.get(), popts);
  pool.SetFlushBarrier(
      [&](storage::Lsn lsn) { return rig.wal->EnsureDurable(lsn); });

  const storage::Lsn lsn = Append(*rig.wal, 1, "pinned change");
  storage::PageId id = storage::kInvalidPageId;
  {
    auto h = pool.NewPage(storage::SpaceId::kMain, storage::PageType::kHeap,
                          /*owner=*/0, &id);
    ASSERT_TRUE(h.ok());
    h->data()[0] = 'p';
    h->MarkDirty(lsn);
  }  // unpin records the frame's LSN
  auto repin = pool.FetchPage({storage::SpaceId::kMain, id},
                              storage::PageType::kHeap, /*owner=*/0);
  ASSERT_TRUE(repin.ok());
  // Frame is pinned: FlushAll must skip it and MinDirtyLsn must report it —
  // the checkpoint's min recLSN (redo must start at or before this LSN).
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.MinDirtyLsn(), lsn);
}

TEST(WalBarrierTest, MarkDirtyPublishesRecLsnWhileStillPinned) {
  Rig rig;
  storage::BufferPoolOptions popts;
  popts.initial_frames = 16;
  storage::BufferPool pool(rig.disk.get(), popts);
  pool.SetFlushBarrier(
      [&](storage::Lsn lsn) { return rig.wal->EnsureDurable(lsn); });

  const storage::Lsn lsn = Append(*rig.wal, 1, "mutation");
  storage::PageId id = storage::kInvalidPageId;
  auto h = pool.NewPage(storage::SpaceId::kMain, storage::PageType::kHeap,
                        /*owner=*/0, &id);
  ASSERT_TRUE(h.ok());
  h->data()[0] = 'm';
  h->MarkDirty(lsn);
  // The frame's dirty flag and recLSN must be visible *before* the handle
  // is released: a fuzzy checkpoint running concurrently with a pinned
  // mutator must not see the frame as clean and skip it in min recLSN.
  EXPECT_EQ(pool.MinDirtyLsn(), lsn);
}

TEST(WalBarrierTest, InflightLsnRegistersAndReleases) {
  Rig rig;
  EXPECT_EQ(rig.wal->MinInflightLsn(), storage::kNullLsn);
  WalManager::InflightLsn inflight;
  auto lsn = rig.wal->Append(WalRecordType::kHeapInsert, 1, "in flight",
                             /*flags=*/0, &inflight);
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(rig.wal->MinInflightLsn(), *lsn);
  inflight.Release();
  EXPECT_EQ(rig.wal->MinInflightLsn(), storage::kNullLsn);
}

TEST(CheckpointGovernorTest, CheckpointCoversInflightMutation) {
  Rig rig;
  storage::BufferPoolOptions popts;
  popts.initial_frames = 16;
  storage::BufferPool pool(rig.disk.get(), popts);
  pool.SetFlushBarrier(
      [&](storage::Lsn lsn) { return rig.wal->EnsureDurable(lsn); });
  os::VirtualClock clock(0);
  CheckpointGovernor gov(rig.wal.get(), &pool, &clock);

  // A mutator has appended its record but not yet published the change to
  // a frame (the append-to-MarkDirty window). A checkpoint firing inside
  // that window must pull its redo start back to the in-flight LSN even
  // though every frame looks clean.
  WalManager::InflightLsn inflight;
  auto lsn = rig.wal->Append(WalRecordType::kHeapInsert, 1, "unpublished",
                             /*flags=*/0, &inflight);
  ASSERT_TRUE(lsn.ok());
  ASSERT_TRUE(gov.ForceCheckpoint("test").ok());
  inflight.Release();

  auto scan = rig.wal->ScanLog();
  ASSERT_TRUE(scan.ok());
  ASSERT_GE(scan->records.size(), 3u);
  const WalRecord& end = scan->records.back();
  ASSERT_EQ(end.type, WalRecordType::kCheckpointEnd);
  storage::Lsn begin = storage::kNullLsn, min_rec = storage::kNullLsn;
  ASSERT_TRUE(DecodeCheckpointEnd(end, &begin, &min_rec));
  EXPECT_NE(min_rec, storage::kNullLsn);
  EXPECT_LE(min_rec, *lsn);  // redo restarts at or before the mutation
}

// ---------------------------------------------------------------------------
// Checkpoint governor: trigger derives from measurements, no interval knob.
// ---------------------------------------------------------------------------

TEST(CheckpointGovernorTest, CostBalanceFiresAndResetsLogDebt) {
  Rig rig;
  storage::BufferPoolOptions popts;
  popts.initial_frames = 16;
  storage::BufferPool pool(rig.disk.get(), popts);
  pool.SetFlushBarrier(
      [&](storage::Lsn lsn) { return rig.wal->EnsureDurable(lsn); });
  os::VirtualClock clock(0);
  CheckpointGovernor gov(rig.wal.get(), &pool, &clock);

  EXPECT_FALSE(gov.MaybeCheckpoint());  // empty log: nothing to bound

  // Accumulate enough log that the estimated redo work after a crash
  // exceeds the (cheap: pool is clean) cost of checkpointing now.
  const std::string blob(500, 'y');
  storage::Lsn last = storage::kNullLsn;
  while (rig.wal->bytes_since_checkpoint() < 256 * 1024) {
    last = Append(*rig.wal, 1, blob);
  }
  ASSERT_TRUE(rig.wal->EnsureDurable(last).ok());

  EXPECT_TRUE(gov.MaybeCheckpoint());
  EXPECT_EQ(gov.stats().checkpoints, 1u);
  EXPECT_EQ(rig.wal->bytes_since_checkpoint(), 0u);
  EXPECT_NE(rig.wal->last_checkpoint_begin(), storage::kNullLsn);
  // Debt cleared: the very next poll must not fire again.
  EXPECT_FALSE(gov.MaybeCheckpoint());
}

TEST(CheckpointGovernorTest, CheckpointPairSurvivesInLog) {
  Rig rig;
  storage::BufferPoolOptions popts;
  popts.initial_frames = 16;
  storage::BufferPool pool(rig.disk.get(), popts);
  os::VirtualClock clock(0);
  CheckpointGovernor gov(rig.wal.get(), &pool, &clock);

  Append(*rig.wal, 1, "before");
  ASSERT_TRUE(gov.ForceCheckpoint("test").ok());

  auto scan = rig.wal->ScanLog();
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 3u);
  EXPECT_EQ(scan->records[1].type, WalRecordType::kCheckpointBegin);
  EXPECT_EQ(scan->records[2].type, WalRecordType::kCheckpointEnd);
  storage::Lsn begin = storage::kNullLsn, min_rec = storage::kNullLsn;
  ASSERT_TRUE(DecodeCheckpointEnd(scan->records[2], &begin, &min_rec));
  EXPECT_EQ(begin, scan->records[1].lsn);
  EXPECT_EQ(min_rec, storage::kNullLsn);  // clean pool: everything flushed
}

}  // namespace
}  // namespace hdb::wal
