// Spill-scheduler parity: every query must return the same result set no
// matter how starved the statement's memory quota is. The starved
// database pins the soft limit to a single page (64 frames / mpl 64), so
// every blocking operator — hash join build, hash aggregate, hash
// distinct, sort — is forced through the statement-scoped spill
// scheduler: victim selection, partition eviction, external-merge runs,
// and grace-hash re-partitioning of oversized spilled partitions
// (DESIGN.md §10). A divergence means a spill path lost, duplicated, or
// reordered rows.
//
// Also pins the observability contracts riding on the scheduler: EXPLAIN
// ANALYZE renders `spilled=<B>B/<N>t` actuals, sys.governors carries one
// row per victim choice, and the exec.spill.* statement counters move.
// The Concurrent case runs spill-heavy statements from several threads
// against one starved database so the sanitizer matrix (TSan) checks the
// task-memory latch, the DecisionLog, and the shared temp-page path.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/database.h"

namespace hdb {
namespace {

/// Same 20-query shape as the batch-parity corpus: every operator with a
/// spill path plus the scan/filter/projection plumbing around them.
const char* kCorpus[] = {
    "SELECT a, b, v, s FROM t",
    "SELECT a FROM t WHERE a >= 100 AND a < 900",
    "SELECT a, v FROM t WHERE v < 0.25",
    "SELECT a FROM t WHERE a BETWEEN 200 AND 300",
    "SELECT a, b FROM t WHERE b IS NULL",
    "SELECT a, b FROM t WHERE b IS NOT NULL AND b > 10",
    "SELECT a, s FROM t WHERE s LIKE 'al%'",
    "SELECT a FROM t WHERE a IN (1, 2, 3, 500, 501)",
    "SELECT a FROM t WHERE a < 50 OR a > 950",
    "SELECT a + b, v * 2.0 FROM t WHERE b IS NOT NULL",
    "SELECT g, COUNT(*), SUM(v), MIN(a), MAX(a) FROM t GROUP BY g",
    "SELECT g, COUNT(*) FROM t WHERE a > 250 GROUP BY g",
    "SELECT g, SUM(v) FROM t GROUP BY g HAVING COUNT(*) > 5",
    "SELECT COUNT(*) FROM t",
    "SELECT DISTINCT g FROM t",
    "SELECT t.a, d.w FROM t JOIN d ON t.j = d.id WHERE d.w < 40",
    "SELECT COUNT(*) FROM t JOIN d ON t.j = d.id",
    "SELECT t.a, d.id FROM t JOIN d ON t.a < d.id WHERE t.a BETWEEN 40 AND 60",
    "SELECT a, v FROM t ORDER BY a, v LIMIT 20",
    "SELECT a FROM t WHERE a >= 400 ORDER BY a DESC LIMIT 10",
};

/// `big1`/`big2` give the acceptance-criteria workload: a hash-join build
/// side and a sort input each tens of pages wide while the starved soft
/// limit is one page — comfortably past the required 10x.
std::unique_ptr<engine::Database> MakeDb(size_t pool_frames, int mpl) {
  engine::DatabaseOptions opts;
  opts.initial_pool_frames = pool_frames;
  opts.memory_governor.multiprogramming_level = mpl;
  auto db = engine::Database::Open(opts);
  EXPECT_TRUE(db.ok());

  auto conn = (*db)->Connect();
  EXPECT_TRUE(conn.ok());
  auto st = (*conn)->Execute(
      "CREATE TABLE t (a INT NOT NULL, g INT NOT NULL, j INT NOT NULL, "
      "b INT, v DOUBLE, s VARCHAR(24))");
  EXPECT_TRUE(st.ok());
  st = (*conn)->Execute("CREATE TABLE d (id INT NOT NULL, w INT NOT NULL)");
  EXPECT_TRUE(st.ok());
  st = (*conn)->Execute(
      "CREATE TABLE big1 (a INT NOT NULL, j INT NOT NULL, v DOUBLE)");
  EXPECT_TRUE(st.ok());
  st = (*conn)->Execute(
      "CREATE TABLE big2 (a INT NOT NULL, j INT NOT NULL, v DOUBLE)");
  EXPECT_TRUE(st.ok());

  // Fixed seed: every database instance loads byte-identical data.
  Rng rng(1234);
  static const char* kTags[] = {"alpha", "bravo", "carbon", "delta"};
  std::vector<table::Row> rows;
  for (int i = 0; i < 1000; ++i) {
    rows.push_back(
        {Value::Int(static_cast<int32_t>(rng.Uniform(1000))),
         Value::Int(static_cast<int32_t>(rng.Uniform(16))),
         Value::Int(static_cast<int32_t>(rng.Uniform(64))),
         rng.Bernoulli(0.2) ? Value::Null(TypeId::kInt)
                            : Value::Int(static_cast<int32_t>(rng.Uniform(20))),
         Value::Double(static_cast<double>(rng.Uniform(1000)) / 1000.0),
         Value::String(std::string(kTags[rng.Uniform(4)]) + "-" +
                       std::to_string(rng.Uniform(100)))});
  }
  EXPECT_TRUE((*db)->LoadTable("t", rows).ok());
  rows.clear();
  for (int i = 0; i < 64; ++i) {
    rows.push_back({Value::Int(i),
                    Value::Int(static_cast<int32_t>(rng.Uniform(100)))});
  }
  EXPECT_TRUE((*db)->LoadTable("d", rows).ok());
  for (const char* big : {"big1", "big2"}) {
    rows.clear();
    for (int i = 0; i < 2000; ++i) {
      rows.push_back(
          {Value::Int(i),
           Value::Int(static_cast<int32_t>(rng.Uniform(512))),
           Value::Double(static_cast<double>(rng.Uniform(100000)) / 100.0)});
    }
    EXPECT_TRUE((*db)->LoadTable(big, rows).ok());
  }
  return std::move(*db);
}

std::unique_ptr<engine::Database> RoomyDb() {
  return MakeDb(/*pool_frames=*/4096, /*mpl=*/4);
}
std::unique_ptr<engine::Database> StarvedDb() {
  return MakeDb(/*pool_frames=*/64, /*mpl=*/64);  // soft limit: one page
}

std::vector<std::string> Canon(const engine::QueryResult& r) {
  std::vector<std::string> out;
  out.reserve(r.rows.size());
  for (const auto& row : r.rows) {
    std::string line;
    for (const auto& v : row) {
      line += v.is_null() ? "<null>" : v.ToString();
      line += '|';
    }
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(SpillParity, CorpusMatchesUnconstrainedRun) {
  auto roomy = RoomyDb();
  auto starved = StarvedDb();
  auto crr = roomy->Connect();
  auto cr = std::move(*crr);
  auto csr = starved->Connect();
  auto cs = std::move(*csr);

  for (const char* sql : kCorpus) {
    auto rr = cr->Execute(sql);
    auto rs = cs->Execute(sql);
    ASSERT_TRUE(rr.ok()) << sql << ": " << rr.status().ToString();
    ASSERT_TRUE(rs.ok()) << sql << ": " << rs.status().ToString();
    const auto want = Canon(*rr);
    EXPECT_EQ(want, Canon(*rs)) << "starved quota diverged: " << sql;
    EXPECT_FALSE(want.empty()) << "degenerate corpus entry: " << sql;
  }
}

// Acceptance criteria: hash join and ORDER BY whose inputs are ≥10x the
// statement soft limit (one page starved vs ~25+ pages of build/sort
// state) complete with results identical to the unconstrained run, and
// the statement counters prove the scheduler actually ran.
TEST(SpillParity, JoinAndSortTenTimesOverSoftLimit) {
  auto roomy = RoomyDb();
  auto starved = StarvedDb();
  auto crr = roomy->Connect();
  auto cr = std::move(*crr);
  auto csr = starved->Connect();
  auto cs = std::move(*csr);

  const char* join_sql =
      "SELECT big1.a, big2.v FROM big1 JOIN big2 ON big1.j = big2.j "
      "WHERE big2.a < 1500";
  auto rr = cr->Execute(join_sql);
  auto rs = cs->Execute(join_sql);
  ASSERT_TRUE(rr.ok()) << rr.status().ToString();
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_GT(rr->rows.size(), 1000u);  // the workload is genuinely large
  EXPECT_EQ(Canon(*rr), Canon(*rs));
  EXPECT_EQ(rr->exec_stats.spill_bytes_written, 0u);
  EXPECT_GT(rs->exec_stats.spill_bytes_written, 0u);
  EXPECT_GT(rs->exec_stats.spill_bytes_read, 0u);
  EXPECT_GT(rs->exec_stats.spill_decisions, 0u);

  const char* sort_sql = "SELECT a, j, v FROM big1 ORDER BY v, a";
  rr = cr->Execute(sort_sql);
  rs = cs->Execute(sort_sql);
  ASSERT_TRUE(rr.ok()) << rr.status().ToString();
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rr->rows.size(), rs->rows.size());
  // Ordered: compare row for row, not canonicalized.
  for (size_t i = 0; i < rr->rows.size(); ++i) {
    for (size_t c = 0; c < rr->rows[i].size(); ++c) {
      ASSERT_EQ(rr->rows[i][c].ToString(), rs->rows[i][c].ToString())
          << "row " << i << " col " << c;
    }
  }
  EXPECT_GT(rs->exec_stats.sort_runs_spilled, 0u);
}

// The scheduler's victim choices are observable: one sys.governors row
// per spill decision, governor='memory', action='spill', with the victim
// operator named in the reason.
TEST(SpillParity, SpillDecisionsVisibleInSysGovernors) {
  auto db = StarvedDb();
  auto connr = db->Connect();
  auto conn = std::move(*connr);
  auto big = conn->Execute(
      "SELECT big1.a, big2.v FROM big1 JOIN big2 ON big1.j = big2.j");
  ASSERT_TRUE(big.ok()) << big.status().ToString();
  ASSERT_GT(big->exec_stats.spill_decisions, 0u);

  auto gov = conn->Execute("SELECT governor, action, reason FROM sys.governors");
  ASSERT_TRUE(gov.ok()) << gov.status().ToString();
  size_t spill_rows = 0;
  bool victim_named = false;
  for (const auto& row : gov->rows) {
    if (row[0].AsString() == "memory" && row[1].AsString() == "spill") {
      ++spill_rows;
      if (row[2].AsString().find("victim=") != std::string::npos) {
        victim_named = true;
      }
    }
  }
  EXPECT_GT(spill_rows, 0u);
  EXPECT_TRUE(victim_named);
}

// EXPLAIN ANALYZE regression pin: operators that spilled render
// `spilled=<bytes>B/<tuples>t` in their actuals block; an unconstrained
// run renders no spilled= at all.
TEST(SpillParity, ExplainAnalyzeRendersSpilledActuals) {
  auto starved = StarvedDb();
  auto csr = starved->Connect();
  auto cs = std::move(*csr);
  auto r = cs->Execute(
      "EXPLAIN ANALYZE SELECT big1.a, big2.v FROM big1 "
      "JOIN big2 ON big1.j = big2.j");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const size_t at = r->explain.find(" spilled=");
  ASSERT_NE(at, std::string::npos) << r->explain;
  // Shape: spilled=<digits>B/<digits>t
  const std::string tail = r->explain.substr(at + 9, 40);
  const size_t slash = tail.find("B/");
  ASSERT_NE(slash, std::string::npos) << tail;
  EXPECT_GT(std::stoull(tail.substr(0, slash)), 0u);
  EXPECT_GT(std::stoull(tail.substr(slash + 2)), 0u);

  auto roomy = RoomyDb();
  auto crr = roomy->Connect();
  auto cr = std::move(*crr);
  r = cr->Execute(
      "EXPLAIN ANALYZE SELECT big1.a, big2.v FROM big1 "
      "JOIN big2 ON big1.j = big2.j");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->explain.find("spilled="), std::string::npos) << r->explain;
}

// Shared-database case for the sanitizer matrix: several threads push
// spill-heavy statements through one starved database. Each statement has
// its own TaskMemoryContext, but the DecisionLog, metrics registry, and
// temp-page allocation are shared; TSan must stay quiet.
TEST(SpillParity, ConcurrentSpillingStatementsAgree) {
  auto db = StarvedDb();
  auto refr = db->Connect();
  auto ref_conn = std::move(*refr);
  const char* kSpillCorpus[] = {
      "SELECT big1.a, big2.v FROM big1 JOIN big2 ON big1.j = big2.j "
      "WHERE big2.a < 500",
      "SELECT j, COUNT(*), SUM(v) FROM big1 GROUP BY j",
      "SELECT a, v FROM big2 ORDER BY v LIMIT 100",
  };
  std::vector<std::vector<std::string>> want;
  for (const char* sql : kSpillCorpus) {
    auto r = ref_conn->Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    want.push_back(Canon(*r));
  }

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto connr = db->Connect();
      auto conn = std::move(*connr);
      for (int round = 0; round < 2; ++round) {
        for (size_t q = 0; q < std::size(kSpillCorpus); ++q) {
          auto r = conn->Execute(kSpillCorpus[q]);
          if (!r.ok() || Canon(*r) != want[q]) mismatches[t]++;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace hdb
