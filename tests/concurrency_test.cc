// Concurrent-session tests: N threads, each with its own Connection,
// execute SQL against one Database. The no-wait lock manager may answer
// kAborted and the admission gate kOverloaded — both are legal
// outcomes under contention; lost updates, crashes and TSan reports are
// not. Run these under -DHDB_SANITIZE=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "exec/admission_gate.h"
#include "exec/memory_governor.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace hdb {
namespace {

bool TolerableFailure(const Status& s) {
  // No-wait lock conflicts abort; admission queues time out (kOverloaded);
  // memory hard limits kill (kResourceExhausted). Anything else is a real
  // bug.
  return s.code() == StatusCode::kAborted ||
         s.code() == StatusCode::kOverloaded ||
         s.code() == StatusCode::kResourceExhausted;
}

// ---------------------------------------------------------------------------
// AdmissionGate
// ---------------------------------------------------------------------------

struct GateFixture {
  GateFixture(int mpl, int64_t timeout_micros) {
    disk = std::make_unique<storage::DiskManager>(storage::kDefaultPageBytes,
                                                  nullptr, nullptr);
    pool = std::make_unique<storage::BufferPool>(disk.get());
    exec::MemoryGovernorOptions g;
    g.multiprogramming_level = mpl;
    governor = std::make_unique<exec::MemoryGovernor>(pool.get(), g);
    exec::AdmissionGateOptions a;
    a.queue_timeout_micros = timeout_micros;
    gate = std::make_unique<exec::AdmissionGate>(governor.get(), a);
  }

  std::unique_ptr<storage::DiskManager> disk;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<exec::MemoryGovernor> governor;
  std::unique_ptr<exec::AdmissionGate> gate;
};

TEST(AdmissionGateTest, AdmitsUpToMplThenTimesOut) {
  GateFixture f(/*mpl=*/2, /*timeout_micros=*/20'000);
  auto t1 = f.gate->Admit();
  auto t2 = f.gate->Admit();
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(f.gate->stats().active, 2u);

  // Third request finds the gate full and times out.
  auto t3 = f.gate->Admit();
  ASSERT_FALSE(t3.ok());
  EXPECT_EQ(t3.status().code(), StatusCode::kOverloaded);
  EXPECT_EQ(f.gate->stats().timed_out, 1u);

  // Releasing a slot makes the next request succeed immediately.
  t1->Release();
  auto t4 = f.gate->Admit();
  ASSERT_TRUE(t4.ok());
  EXPECT_EQ(f.gate->stats().active, 2u);
}

TEST(AdmissionGateTest, QueuedRequestWakesOnRelease) {
  GateFixture f(/*mpl=*/1, /*timeout_micros=*/5'000'000);
  auto held = f.gate->Admit();
  ASSERT_TRUE(held.ok());

  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    auto t = f.gate->Admit();
    EXPECT_TRUE(t.ok());
    admitted.store(true);
  });
  // Give the waiter time to queue, then free the slot.
  while (f.gate->stats().waiting == 0) std::this_thread::yield();
  EXPECT_FALSE(admitted.load());
  held->Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(f.gate->stats().admitted_after_wait, 1u);
}

TEST(AdmissionGateTest, RaisingMplAndPokingAdmitsWaiter) {
  GateFixture f(/*mpl=*/1, /*timeout_micros=*/5'000'000);
  auto held = f.gate->Admit();
  ASSERT_TRUE(held.ok());

  exec::AdmissionGate::Ticket waiter_ticket;
  std::thread waiter([&] {
    auto t = f.gate->Admit();
    ASSERT_TRUE(t.ok());
    waiter_ticket = std::move(*t);
  });
  while (f.gate->stats().waiting == 0) std::this_thread::yield();
  f.governor->SetMultiprogrammingLevel(2);
  f.gate->Poke();
  waiter.join();
  EXPECT_EQ(f.gate->stats().active, 2u);
  EXPECT_EQ(f.gate->stats().admitted_after_wait, 1u);
}

TEST(AdmissionGateTest, DisabledGateAlwaysAdmits) {
  storage::DiskManager disk(storage::kDefaultPageBytes, nullptr, nullptr);
  storage::BufferPool pool(&disk);
  exec::MemoryGovernorOptions g;
  g.multiprogramming_level = 1;
  exec::MemoryGovernor governor(&pool, g);
  exec::AdmissionGateOptions a;
  a.enabled = false;
  exec::AdmissionGate gate(&governor, a);
  auto t1 = gate.Admit();
  auto t2 = gate.Admit();
  EXPECT_TRUE(t1.ok());
  EXPECT_TRUE(t2.ok());
  EXPECT_FALSE(t1->holds_slot());
}

// ---------------------------------------------------------------------------
// TaskMemoryContext telemetry accessors vs concurrent charging
// ---------------------------------------------------------------------------

// Regression (DESIGN.md §8.4): the thread-safety annotation sweep found
// bytes_charged()/reclamations()/reclaimed_pages()/spill_decisions()
// reading mu_-guarded counters with no lock — an exact pattern for a TSan
// report (and a torn read on platforms without atomic 64-bit loads) when
// a monitor thread polls a task that operators are concurrently charging.
// The accessors now lock. This test reproduces that shape; run it under
// -DHDB_SANITIZE=thread to see the original bug.
TEST(MemoryGovernorConcurrencyTest, TelemetryAccessorsRaceCharging) {
  storage::DiskManager disk(storage::kDefaultPageBytes, nullptr, nullptr);
  storage::BufferPool pool(&disk);
  exec::MemoryGovernorOptions g;
  g.multiprogramming_level = 4;
  exec::MemoryGovernor governor(&pool, g);
  auto task = governor.BeginTask();

  constexpr int kChargers = 3;
  constexpr int kRoundsPerCharger = 400;
  constexpr uint64_t kBytesPerRound = 1024;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kChargers; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRoundsPerCharger; ++i) {
        if (task->ChargeBytes(kBytesPerRound).ok()) {
          task->ReleaseBytes(kBytesPerRound);
        }
      }
    });
  }
  // The monitor: hammer every telemetry accessor while charging runs.
  std::thread monitor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t bytes = task->bytes_charged();
      // Charges are matched by releases of the same size, so any
      // observed value is a multiple of the round size — a torn read
      // would not be.
      EXPECT_EQ(bytes % kBytesPerRound, 0u);
      (void)task->pages_charged();
      (void)task->reclamations();
      (void)task->reclaimed_pages();
      (void)task->spill_decisions();
    }
  });
  for (auto& th : threads) th.join();
  stop.store(true, std::memory_order_release);
  monitor.join();

  // Every charge was released: the task must end balanced.
  EXPECT_EQ(task->bytes_charged(), 0u);
  EXPECT_EQ(task->pages_charged(), 0u);
}

// ---------------------------------------------------------------------------
// Buffer pool under concurrent pin/unpin/dirty + Resize
// ---------------------------------------------------------------------------

TEST(BufferPoolConcurrencyTest, ResizeStressLosesNoWrites) {
  storage::DiskManager disk(storage::kDefaultPageBytes, nullptr, nullptr);
  storage::BufferPoolOptions opts;
  opts.initial_frames = 64;
  storage::BufferPool pool(&disk, opts);

  constexpr int kThreads = 4;
  constexpr int kPagesPerThread = 40;
  constexpr int kIters = 300;

  // Each thread owns a disjoint set of pages (page *bytes* are only
  // synchronized by the owner in the engine; the pool only guards frames).
  std::vector<storage::PageId> pages(kThreads * kPagesPerThread);
  for (auto& id : pages) {
    auto h = pool.NewPage(storage::SpaceId::kMain, storage::PageType::kTable,
                          /*owner=*/1, &id);
    ASSERT_TRUE(h.ok());
    std::memset(h->data(), 0, storage::kDefaultPageBytes);
    std::memcpy(h->data(), &id, sizeof(id));
    h->MarkDirty();
  }

  std::atomic<bool> stop{false};
  std::thread resizer([&] {
    size_t target = 16;
    while (!stop.load(std::memory_order_relaxed)) {
      pool.Resize(target);
      target = (target == 16) ? 256 : 16;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const storage::PageId id = pages[t * kPagesPerThread +
                                         (i % kPagesPerThread)];
        auto h = pool.FetchPage(
            storage::SpacePageId{storage::SpaceId::kMain, id},
            storage::PageType::kTable, /*owner=*/1);
        ASSERT_TRUE(h.ok()) << h.status().ToString();
        storage::PageId stamp;
        std::memcpy(&stamp, h->data(), sizeof(stamp));
        ASSERT_EQ(stamp, id);  // eviction/reload kept the page intact
        uint32_t counter;
        std::memcpy(&counter, h->data() + sizeof(stamp), sizeof(counter));
        ++counter;
        std::memcpy(h->data() + sizeof(stamp), &counter, sizeof(counter));
        h->MarkDirty();
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true);
  resizer.join();

  // Every increment must have reached the page image, through any number
  // of evictions and reloads.
  for (int t = 0; t < kThreads; ++t) {
    for (int p = 0; p < kPagesPerThread; ++p) {
      const storage::PageId id = pages[t * kPagesPerThread + p];
      auto h = pool.FetchPage(
          storage::SpacePageId{storage::SpaceId::kMain, id},
          storage::PageType::kTable, 1);
      ASSERT_TRUE(h.ok());
      uint32_t counter;
      std::memcpy(&counter, h->data() + sizeof(storage::PageId),
                  sizeof(counter));
      const uint32_t expected = kIters / kPagesPerThread +
                                (p < kIters % kPagesPerThread ? 1 : 0);
      EXPECT_EQ(counter, expected) << "page " << id;
    }
  }

  const auto stats = pool.stats();
  EXPECT_EQ(stats.pinned_frames, 0u);
  EXPECT_GE(stats.current_frames, 1u);
}

// ---------------------------------------------------------------------------
// Engine: concurrent sessions over one Database
// ---------------------------------------------------------------------------

TEST(EngineConcurrencyTest, ConnectDisconnectCountStaysExact) {
  auto db = engine::Database::Open();
  ASSERT_TRUE(db.ok());
  engine::Database* database = db->get();

  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        auto conn = database->Connect();
        ASSERT_TRUE(conn.ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(database->connection_count(), 0);
}

TEST(EngineConcurrencyTest, ParallelMixedSqlKeepsCountsConsistent) {
  auto opened = engine::Database::Open();
  ASSERT_TRUE(opened.ok());
  engine::Database* db = opened->get();

  {
    auto setup = db->Connect();
    ASSERT_TRUE(setup.ok());
    ASSERT_TRUE(
        (*setup)->Execute("CREATE TABLE t (k INT NOT NULL, v INT)").ok());
    ASSERT_TRUE((*setup)->Execute("CREATE INDEX t_k ON t (k)").ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE((*setup)
                      ->Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                                ", 0)")
                      .ok());
    }
  }

  constexpr int kThreads = 4;
  constexpr int kIters = 80;
  std::atomic<int64_t> net_rows{100};
  std::atomic<int> hard_failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto conn = db->Connect();
      ASSERT_TRUE(conn.ok());
      engine::Connection* c = conn->get();
      // Disjoint key space per thread for DML; reads roam everywhere.
      const int base = 1000 * (t + 1);
      for (int i = 0; i < kIters; ++i) {
        switch (i % 4) {
          case 0: {
            auto r = c->Execute("INSERT INTO t VALUES (" +
                                std::to_string(base + i) + ", 1)");
            if (r.ok()) {
              net_rows.fetch_add(1);
            } else if (!TolerableFailure(r.status())) {
              ++hard_failures;
            }
            break;
          }
          case 1: {
            auto r = c->Execute("SELECT v FROM t WHERE k < 50");
            if (!r.ok() && !TolerableFailure(r.status())) ++hard_failures;
            break;
          }
          case 2: {
            auto r = c->Execute("UPDATE t SET v = v + 1 WHERE k = " +
                                std::to_string(base + i - 2));
            if (!r.ok() && !TolerableFailure(r.status())) ++hard_failures;
            break;
          }
          case 3: {
            auto r = c->Execute("DELETE FROM t WHERE k = " +
                                std::to_string(base + i - 3));
            if (r.ok()) {
              net_rows.fetch_sub(static_cast<int64_t>(r->rows_affected));
            } else if (!TolerableFailure(r.status())) {
              ++hard_failures;
            }
            break;
          }
        }
        db->Tick(500);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(hard_failures.load(), 0);

  auto check = db->Connect();
  ASSERT_TRUE(check.ok());
  auto count = (*check)->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  ASSERT_EQ(count->rows.size(), 1u);
  EXPECT_EQ(count->rows[0][0].AsInt(), net_rows.load());
}

TEST(EngineConcurrencyTest, DdlRunsExclusiveAgainstQueries) {
  auto opened = engine::Database::Open();
  ASSERT_TRUE(opened.ok());
  engine::Database* db = opened->get();
  {
    auto setup = db->Connect();
    ASSERT_TRUE(setup.ok());
    ASSERT_TRUE(
        (*setup)->Execute("CREATE TABLE t (k INT NOT NULL, v INT)").ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE((*setup)
                      ->Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                                ", " + std::to_string(i % 7) + ")")
                      .ok());
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<int> hard_failures{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      auto conn = db->Connect();
      ASSERT_TRUE(conn.ok());
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = (*conn)->Execute("SELECT v FROM t WHERE k < 100");
        if (!r.ok() && !TolerableFailure(r.status())) ++hard_failures;
      }
    });
  }

  {
    auto ddl = db->Connect();
    ASSERT_TRUE(ddl.ok());
    for (int i = 0; i < 20; ++i) {
      auto c = (*ddl)->Execute("CREATE INDEX t_k ON t (k)");
      if (!c.ok() && !TolerableFailure(c.status())) ++hard_failures;
      auto d = (*ddl)->Execute("DROP INDEX t_k");
      if (!d.ok() && !TolerableFailure(d.status())) ++hard_failures;
      auto s = (*ddl)->Execute("CREATE STATISTICS t (v)");
      if (!s.ok() && !TolerableFailure(s.status())) ++hard_failures;
    }
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_EQ(hard_failures.load(), 0);
}

TEST(EngineConcurrencyTest, MplAdaptsUnderConcurrentLoad) {
  engine::DatabaseOptions opts;
  opts.memory_governor.multiprogramming_level = 4;
  opts.mpl_controller.min_mpl = 2;
  opts.mpl_controller.max_mpl = 16;
  opts.mpl_controller.step = 2;
  opts.mpl_controller.interval_micros = 20'000;  // virtual
  opts.mpl_controller.dead_band = 0.0;  // adapt on any throughput change
  auto opened = engine::Database::Open(opts);
  ASSERT_TRUE(opened.ok());
  engine::Database* db = opened->get();
  {
    auto setup = db->Connect();
    ASSERT_TRUE(setup.ok());
    ASSERT_TRUE(
        (*setup)->Execute("CREATE TABLE t (k INT NOT NULL, v INT)").ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*setup)
                      ->Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                                ", 0)")
                      .ok());
    }
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      auto conn = db->Connect();
      ASSERT_TRUE(conn.ok());
      for (int i = 0; i < 150; ++i) {
        auto r = (*conn)->Execute("SELECT v FROM t WHERE k < 25");
        ASSERT_TRUE(r.ok() || TolerableFailure(r.status()));
        db->Tick(1'000);  // advance virtual time so intervals elapse
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto history = db->mpl_controller().history();
  ASSERT_GE(history.size(), 2u);
  bool stepped = false;
  for (const auto& s : history) {
    if (s.mpl != 4) stepped = true;
  }
  EXPECT_TRUE(stepped);
}

}  // namespace
}  // namespace hdb
