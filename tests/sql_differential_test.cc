// Randomized differential testing: every query runs both through the full
// engine (parser -> binder -> optimizer -> executor, with statistics
// feedback enabled) and through a reference evaluator written directly
// against the in-test row vectors. Any divergence is a bug in some layer
// of the stack.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "engine/database.h"

namespace hdb {
namespace {

struct RefRow {
  int32_t a;
  int32_t b;
  bool b_null;
  std::string s;
};

struct DiffFixture {
  DiffFixture(uint64_t seed, bool with_index) : rng(seed) {
    auto opened = engine::Database::Open();
    EXPECT_TRUE(opened.ok());
    db = std::move(*opened);
    auto c = db->Connect();
    EXPECT_TRUE(c.ok());
    conn = std::move(*c);

    Exec("CREATE TABLE t (a INT NOT NULL, b INT, s VARCHAR(16))");
    const int n = 200 + static_cast<int>(rng.Uniform(300));
    std::vector<table::Row> rows;
    static const char* kWords[] = {"alpha", "beta", "gamma", "delta",
                                   "epsilon"};
    for (int i = 0; i < n; ++i) {
      RefRow r;
      r.a = static_cast<int32_t>(rng.Uniform(50));
      r.b_null = rng.Bernoulli(0.15);
      r.b = static_cast<int32_t>(rng.Uniform(20));
      r.s = std::string(kWords[rng.Uniform(5)]) + " " +
            std::to_string(rng.Uniform(4));
      ref.push_back(r);
      rows.push_back({Value::Int(r.a),
                      r.b_null ? Value::Null(TypeId::kInt) : Value::Int(r.b),
                      Value::String(r.s)});
    }
    EXPECT_TRUE(db->LoadTable("t", rows).ok());
    if (with_index) {
      Exec("CREATE INDEX ta ON t (a)");
    }
  }

  engine::QueryResult Exec(const std::string& sql) {
    auto r = conn->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    return r.ok() ? *r : engine::QueryResult{};
  }

  Rng rng;
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<engine::Connection> conn;
  std::vector<RefRow> ref;
};

class SqlDifferential
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(SqlDifferential, PointAndRangeQueries) {
  const auto [seed, with_index] = GetParam();
  DiffFixture f(seed, with_index);
  Rng qrng(seed * 31 + 7);

  for (int q = 0; q < 25; ++q) {
    const int lo = static_cast<int>(qrng.Uniform(50));
    const int hi = lo + static_cast<int>(qrng.Uniform(20));
    const int bval = static_cast<int>(qrng.Uniform(20));
    const int mode = static_cast<int>(qrng.Uniform(5));
    std::string where;
    std::function<bool(const RefRow&)> pred;
    switch (mode) {
      case 0:
        where = "a = " + std::to_string(lo);
        pred = [lo](const RefRow& r) { return r.a == lo; };
        break;
      case 1:
        where = "a BETWEEN " + std::to_string(lo) + " AND " +
                std::to_string(hi);
        pred = [lo, hi](const RefRow& r) { return r.a >= lo && r.a <= hi; };
        break;
      case 2:
        where = "a >= " + std::to_string(lo) + " AND b = " +
                std::to_string(bval);
        pred = [lo, bval](const RefRow& r) {
          return r.a >= lo && !r.b_null && r.b == bval;
        };
        break;
      case 3:
        where = "b IS NULL OR a < " + std::to_string(lo);
        pred = [lo](const RefRow& r) { return r.b_null || r.a < lo; };
        break;
      default:
        where = "s LIKE '%alpha%' AND a <> " + std::to_string(lo);
        pred = [lo](const RefRow& r) {
          return r.s.find("alpha") != std::string::npos && r.a != lo;
        };
        break;
    }
    const auto result =
        f.Exec("SELECT COUNT(*) FROM t WHERE " + where);
    int64_t expected = 0;
    for (const RefRow& r : f.ref) {
      if (pred(r)) ++expected;
    }
    ASSERT_EQ(result.rows.size(), 1u) << where;
    EXPECT_EQ(result.rows[0][0].AsInt(), expected) << where;
  }
}

TEST_P(SqlDifferential, GroupByAggregates) {
  const auto [seed, with_index] = GetParam();
  DiffFixture f(seed, with_index);

  const auto result = f.Exec(
      "SELECT a, COUNT(*), SUM(b), MIN(b), MAX(b) FROM t GROUP BY a "
      "ORDER BY a");
  struct Agg {
    int64_t count = 0;
    int64_t sum = 0;
    bool has_b = false;
    int32_t min_b = 0, max_b = 0;
  };
  std::map<int32_t, Agg> expected;
  for (const RefRow& r : f.ref) {
    Agg& a = expected[r.a];
    a.count++;
    if (!r.b_null) {
      a.sum += r.b;
      if (!a.has_b || r.b < a.min_b) a.min_b = r.b;
      if (!a.has_b || r.b > a.max_b) a.max_b = r.b;
      a.has_b = true;
    }
  }
  ASSERT_EQ(result.rows.size(), expected.size());
  size_t i = 0;
  for (const auto& [key, agg] : expected) {
    const auto& row = result.rows[i++];
    EXPECT_EQ(row[0].AsInt(), key);
    EXPECT_EQ(row[1].AsInt(), agg.count);
    if (agg.has_b) {
      EXPECT_EQ(row[2].AsInt(), agg.sum) << key;
      EXPECT_EQ(row[3].AsInt(), agg.min_b) << key;
      EXPECT_EQ(row[4].AsInt(), agg.max_b) << key;
    } else {
      EXPECT_TRUE(row[2].is_null());
    }
  }
}

TEST_P(SqlDifferential, OrderByDistinctLimit) {
  const auto [seed, with_index] = GetParam();
  DiffFixture f(seed, with_index);

  const auto result =
      f.Exec("SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 10");
  std::set<int32_t> distinct;
  for (const RefRow& r : f.ref) distinct.insert(r.a);
  std::vector<int32_t> expected(distinct.rbegin(), distinct.rend());
  if (expected.size() > 10) expected.resize(10);
  ASSERT_EQ(result.rows.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.rows[i][0].AsInt(), expected[i]);
  }
}

TEST_P(SqlDifferential, SelfJoinViaTwoTables) {
  const auto [seed, with_index] = GetParam();
  DiffFixture f(seed, with_index);
  // Second table u(a, w): join t.a = u.a.
  f.Exec("CREATE TABLE u (a INT NOT NULL, w INT)");
  Rng urng(seed + 99);
  std::vector<std::pair<int32_t, int32_t>> uref;
  std::vector<table::Row> urows;
  for (int i = 0; i < 80; ++i) {
    const auto a = static_cast<int32_t>(urng.Uniform(50));
    const auto w = static_cast<int32_t>(urng.Uniform(5));
    uref.emplace_back(a, w);
    urows.push_back({Value::Int(a), Value::Int(w)});
  }
  ASSERT_TRUE(f.db->LoadTable("u", urows).ok());

  const auto result = f.Exec(
      "SELECT COUNT(*) FROM t JOIN u ON t.a = u.a WHERE u.w < 3");
  int64_t expected = 0;
  for (const RefRow& r : f.ref) {
    for (const auto& [ua, uw] : uref) {
      if (r.a == ua && uw < 3) ++expected;
    }
  }
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsInt(), expected);
}

TEST_P(SqlDifferential, DmlThenQueryConsistency) {
  const auto [seed, with_index] = GetParam();
  DiffFixture f(seed, with_index);
  Rng drng(seed * 17 + 3);

  // Random DML mixed with verification queries.
  for (int step = 0; step < 10; ++step) {
    const int pivot = static_cast<int>(drng.Uniform(50));
    if (drng.Bernoulli(0.5)) {
      f.Exec("DELETE FROM t WHERE a = " + std::to_string(pivot));
      std::erase_if(f.ref, [pivot](const RefRow& r) { return r.a == pivot; });
    } else {
      f.Exec("UPDATE t SET b = 99 WHERE a = " + std::to_string(pivot));
      for (RefRow& r : f.ref) {
        if (r.a == pivot) {
          r.b = 99;
          r.b_null = false;
        }
      }
    }
    const auto result = f.Exec("SELECT COUNT(*) FROM t WHERE b = 99");
    int64_t expected = 0;
    for (const RefRow& r : f.ref) {
      if (!r.b_null && r.b == 99) ++expected;
    }
    EXPECT_EQ(result.rows[0][0].AsInt(), expected) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SqlDifferential,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Bool()),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_indexed" : "_heap");
    });

}  // namespace
}  // namespace hdb
