// Batch-execution parity: every query must return the same result set no
// matter the batch cap. Cap 1 degenerates the vectorized executor to
// row-at-a-time, 7 exercises partial batches and selection-vector
// compaction at awkward boundaries, 1024 is the production default. A
// divergence means some operator's NextBatch disagrees with its Next().
//
// Also covers the batch-adjacent observability contracts: EXPLAIN ANALYZE
// actual rows count *selected* rows (not batch pulls), and the memory
// governor shrinks the effective cap under a starved quota
// (stats.batch_cap_shrinks). The Concurrent case runs the corpus from
// several threads against one database so the sanitizer matrix (TSan)
// checks the shared scan path — heap latch, RowDecoder, metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/database.h"

namespace hdb {
namespace {

/// The corpus leans on every operator the vectorized executor touches:
/// seq scan, index scan, filter (fast-path compare/BETWEEN and generic
/// OR/LIKE/IN/IS NULL), projection (pass-through and arithmetic), hash
/// join, nested-loop join, group by, distinct, order by, limit.
const char* kCorpus[] = {
    "SELECT a, b, v, s FROM t",
    "SELECT a FROM t WHERE a >= 100 AND a < 900",
    "SELECT a, v FROM t WHERE v < 0.25",
    "SELECT a FROM t WHERE a BETWEEN 200 AND 300",
    "SELECT a, b FROM t WHERE b IS NULL",
    "SELECT a, b FROM t WHERE b IS NOT NULL AND b > 10",
    "SELECT a, s FROM t WHERE s LIKE 'al%'",
    "SELECT a FROM t WHERE a IN (1, 2, 3, 500, 501)",
    "SELECT a FROM t WHERE a < 50 OR a > 950",
    "SELECT a + b, v * 2.0 FROM t WHERE b IS NOT NULL",
    "SELECT g, COUNT(*), SUM(v), MIN(a), MAX(a) FROM t GROUP BY g",
    "SELECT g, COUNT(*) FROM t WHERE a > 250 GROUP BY g",
    "SELECT g, SUM(v) FROM t GROUP BY g HAVING COUNT(*) > 5",
    "SELECT COUNT(*) FROM t",
    "SELECT DISTINCT g FROM t",
    "SELECT t.a, d.w FROM t JOIN d ON t.j = d.id WHERE d.w < 40",
    "SELECT COUNT(*) FROM t JOIN d ON t.j = d.id",
    "SELECT t.a, d.id FROM t JOIN d ON t.a < d.id WHERE t.a BETWEEN 40 AND 60",
    "SELECT a, v FROM t ORDER BY a, v LIMIT 20",
    "SELECT a FROM t WHERE a >= 400 ORDER BY a DESC LIMIT 10",
};

std::unique_ptr<engine::Database> MakeDb(size_t batch_cap,
                                         size_t pool_frames = 512,
                                         int mpl = 8) {
  engine::DatabaseOptions opts;
  opts.exec_batch_cap = batch_cap;
  opts.initial_pool_frames = pool_frames;
  opts.memory_governor.multiprogramming_level = mpl;
  auto db = engine::Database::Open(opts);
  EXPECT_TRUE(db.ok());

  auto conn = (*db)->Connect();
  EXPECT_TRUE(conn.ok());
  auto st = (*conn)->Execute(
      "CREATE TABLE t (a INT NOT NULL, g INT NOT NULL, j INT NOT NULL, "
      "b INT, v DOUBLE, s VARCHAR(24))");
  EXPECT_TRUE(st.ok());
  st = (*conn)->Execute("CREATE TABLE d (id INT NOT NULL, w INT NOT NULL)");
  EXPECT_TRUE(st.ok());

  // Fixed seed: every database instance loads byte-identical data.
  Rng rng(1234);
  static const char* kTags[] = {"alpha", "bravo", "carbon", "delta"};
  std::vector<table::Row> rows;
  for (int i = 0; i < 1000; ++i) {
    rows.push_back(
        {Value::Int(static_cast<int32_t>(rng.Uniform(1000))),
         Value::Int(static_cast<int32_t>(rng.Uniform(16))),
         Value::Int(static_cast<int32_t>(rng.Uniform(64))),
         rng.Bernoulli(0.2) ? Value::Null(TypeId::kInt)
                            : Value::Int(static_cast<int32_t>(rng.Uniform(20))),
         Value::Double(static_cast<double>(rng.Uniform(1000)) / 1000.0),
         Value::String(std::string(kTags[rng.Uniform(4)]) + "-" +
                       std::to_string(rng.Uniform(100)))});
  }
  EXPECT_TRUE((*db)->LoadTable("t", rows).ok());
  rows.clear();
  for (int i = 0; i < 64; ++i) {
    rows.push_back({Value::Int(i),
                    Value::Int(static_cast<int32_t>(rng.Uniform(100)))});
  }
  EXPECT_TRUE((*db)->LoadTable("d", rows).ok());
  st = (*conn)->Execute("CREATE INDEX t_a ON t (a)");
  EXPECT_TRUE(st.ok());
  return std::move(*db);
}

/// Canonical order-independent form of a result set. ORDER BY queries are
/// still checked row-for-row by including the sorted form; a wrong sort
/// that permutes equal keys is out of scope here (covered by exec_test).
std::vector<std::string> Canon(const engine::QueryResult& r) {
  std::vector<std::string> out;
  out.reserve(r.rows.size());
  for (const auto& row : r.rows) {
    std::string line;
    for (const auto& v : row) {
      line += v.is_null() ? "<null>" : v.ToString();
      line += '|';
    }
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(BatchParity, CapSweepMatchesRowAtATime) {
  auto base = MakeDb(1);  // cap 1: row-at-a-time semantics
  auto mid = MakeDb(7);   // prime cap: partial final batches everywhere
  auto full = MakeDb(1024);
  auto cbr = base->Connect();
  auto cb = std::move(*cbr);
  auto cmr = mid->Connect();
  auto cm = std::move(*cmr);
  auto cfr = full->Connect();
  auto cf = std::move(*cfr);

  for (const char* sql : kCorpus) {
    auto rb = cb->Execute(sql);
    auto rm = cm->Execute(sql);
    auto rf = cf->Execute(sql);
    ASSERT_TRUE(rb.ok()) << sql << ": " << rb.status().ToString();
    ASSERT_TRUE(rm.ok()) << sql << ": " << rm.status().ToString();
    ASSERT_TRUE(rf.ok()) << sql << ": " << rf.status().ToString();
    const auto want = Canon(*rb);
    EXPECT_EQ(want, Canon(*rm)) << "cap 7 diverged: " << sql;
    EXPECT_EQ(want, Canon(*rf)) << "cap 1024 diverged: " << sql;
    EXPECT_FALSE(want.empty()) << "degenerate corpus entry: " << sql;
  }
}

TEST(BatchParity, OrderedQueriesMatchRowForRow) {
  auto base = MakeDb(1);
  auto full = MakeDb(1024);
  auto cbr = base->Connect();
  auto cb = std::move(*cbr);
  auto cfr = full->Connect();
  auto cf = std::move(*cfr);
  const char* ordered[] = {
      "SELECT a, v FROM t ORDER BY a, v LIMIT 50",
      "SELECT g, COUNT(*) FROM t GROUP BY g ORDER BY g",
  };
  for (const char* sql : ordered) {
    auto rb = cb->Execute(sql);
    auto rf = cf->Execute(sql);
    ASSERT_TRUE(rb.ok() && rf.ok()) << sql;
    ASSERT_EQ(rb->rows.size(), rf->rows.size()) << sql;
    for (size_t i = 0; i < rb->rows.size(); ++i) {
      for (size_t c = 0; c < rb->rows[i].size(); ++c) {
        EXPECT_EQ(rb->rows[i][c].ToString(), rf->rows[i][c].ToString())
            << sql << " row " << i << " col " << c;
      }
    }
  }
}

// Shared-database case for the sanitizer matrix: several threads sweep the
// corpus through their own connections. Batches, the table heap's shared
// latch, prepared RowDecoders, and the metrics registry are all exercised
// concurrently; TSan must stay quiet.
TEST(BatchParity, ConcurrentScansAgree) {
  auto db = MakeDb(1024);
  auto refr = db->Connect();
  auto ref_conn = std::move(*refr);
  std::vector<std::vector<std::string>> want;
  for (const char* sql : kCorpus) {
    auto r = ref_conn->Execute(sql);
    ASSERT_TRUE(r.ok()) << sql;
    want.push_back(Canon(*r));
  }

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto connr = db->Connect();
      auto conn = std::move(*connr);
      for (int round = 0; round < 3; ++round) {
        for (size_t q = 0; q < std::size(kCorpus); ++q) {
          auto r = conn->Execute(kCorpus[q]);
          if (!r.ok() || Canon(*r) != want[q]) mismatches[t]++;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

// DESIGN.md §6: EXPLAIN ANALYZE "actual rows" are selected rows, not
// NextBatch() pulls. A filtered scan over 1000 rows with ~100 survivors
// must report ~100 — under batching a naive count of batch returns would
// report the pull count (1 per 1024-batch) or the pre-filter size.
TEST(BatchParity, ExplainAnalyzeActualRowsAreSelectedRows) {
  auto db = MakeDb(1024);
  auto connr = db->Connect();
  auto conn = std::move(*connr);
  auto counted = conn->Execute("SELECT COUNT(*) FROM t WHERE a < 100");
  ASSERT_TRUE(counted.ok());
  const int64_t selected = counted->rows[0][0].AsInt();
  ASSERT_GT(selected, 0);
  ASSERT_LT(selected, 1000);

  auto r = conn->Execute("EXPLAIN ANALYZE SELECT a FROM t WHERE a < 100");
  ASSERT_TRUE(r.ok());
  const std::string needle =
      "actual rows=" + std::to_string(selected);
  EXPECT_NE(r->explain.find(needle), std::string::npos) << r->explain;
  // The scan ran batch-driven, and says so.
  EXPECT_NE(r->explain.find("batches="), std::string::npos) << r->explain;
}

// A starved memory quota (tiny pool, high multiprogramming level) must
// shrink the effective batch cap instead of blowing the statement budget
// on row pools — and the query must still be correct.
TEST(BatchParity, LowMemoryShrinksBatchCap) {
  // Roomy: soft quota comfortably above a full 1024-row pool (4096 frames
  // / mpl 4 ≈ 8 MB soft). Starved: 64 frames / mpl 64 pins the quota to a
  // single page, forcing the cap toward row-at-a-time.
  auto roomy = MakeDb(1024, /*pool_frames=*/4096, /*mpl=*/4);
  auto starved = MakeDb(1024, /*pool_frames=*/64, /*mpl=*/64);
  auto crr = roomy->Connect();
  auto cr = std::move(*crr);
  auto csr = starved->Connect();
  auto cs = std::move(*csr);

  const char* sql = "SELECT a, b, v, s FROM t WHERE a < 500";
  auto rr = cr->Execute(sql);
  auto rs = cs->Execute(sql);
  ASSERT_TRUE(rr.ok() && rs.ok());
  EXPECT_EQ(rr->exec_stats.batch_cap_shrinks, 0u);
  EXPECT_GT(rs->exec_stats.batch_cap_shrinks, 0u);
  EXPECT_EQ(Canon(*rr), Canon(*rs));
}

}  // namespace
}  // namespace hdb
