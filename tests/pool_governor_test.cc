#include <gtest/gtest.h>

#include "os/memory_env.h"
#include "os/virtual_clock.h"
#include "storage/buffer_pool.h"
#include "storage/pool_governor.h"

namespace hdb::storage {
namespace {

constexpr uint64_t kMB = 1ull << 20;

struct GovFixture {
  explicit GovFixture(PoolGovernorOptions opts = DefaultOptions(),
                      uint64_t physical = 128 * kMB)
      : env(physical),
        disk(kDefaultPageBytes, nullptr, nullptr),
        pool(&disk, BufferPoolOptions{.initial_frames = 1024}),  // 4 MB
        governor(&pool, &env, &clock, opts) {}

  static PoolGovernorOptions DefaultOptions() {
    PoolGovernorOptions o;
    o.min_bytes = 1 * kMB;
    o.max_bytes = 64 * kMB;
    o.os_reserve_bytes = 5 * kMB;
    return o;
  }

  /// Gives the database enough on-disk pages that Eq. (1) does not
  /// constrain the pool below `bytes`.
  void GrowDatabase(uint64_t bytes) {
    const uint64_t pages = bytes / kDefaultPageBytes;
    for (uint64_t i = 0; i < pages; ++i) disk.AllocatePage(SpaceId::kMain);
  }

  /// Simulates buffer misses so growth is permitted.
  void CauseMisses() {
    PageId id;
    auto h = pool.NewPage(SpaceId::kMain, PageType::kTable, 1, &id);
    (void)h;
  }

  os::VirtualClock clock;
  os::MemoryEnv env;
  DiskManager disk;
  BufferPool pool;
  PoolGovernor governor;
};

TEST(PoolGovernorTest, GrowsIntoFreeMemoryWhenMissing) {
  GovFixture f;
  f.GrowDatabase(80 * kMB);
  const uint64_t before = f.pool.CurrentBytes();
  f.CauseMisses();
  const auto s = f.governor.PollNow();
  EXPECT_TRUE(s.grew);
  EXPECT_GT(f.pool.CurrentBytes(), before);
}

TEST(PoolGovernorTest, GrowthBlockedWithoutMisses) {
  GovFixture f;
  f.GrowDatabase(80 * kMB);
  f.CauseMisses();
  f.governor.PollNow();            // first poll grows
  (void)f.pool.TakeMissesSinceLastPoll();
  const uint64_t size = f.pool.CurrentBytes();
  const auto s = f.governor.PollNow();  // no misses since
  EXPECT_TRUE(s.growth_blocked_no_misses || s.in_dead_zone);
  EXPECT_EQ(f.pool.CurrentBytes(), size);
}

TEST(PoolGovernorTest, ShrinksUnderExternalMemoryPressure) {
  GovFixture f;
  f.GrowDatabase(80 * kMB);
  for (int i = 0; i < 6; ++i) {
    f.CauseMisses();
    f.governor.PollNow();
  }
  const uint64_t grown = f.pool.CurrentBytes();
  ASSERT_GT(grown, 16 * kMB);
  // A competing application takes most of the machine.
  f.env.SetAllocation("other-app", 110 * kMB);
  // Shrinking is always permitted, even with zero misses.
  for (int i = 0; i < 8; ++i) f.governor.PollNow();
  EXPECT_LT(f.pool.CurrentBytes(), grown / 2);
}

TEST(PoolGovernorTest, SoftUpperBoundTracksDatabaseSize) {
  // Eq. (1): target <= db size + main heap. A tiny database caps the pool
  // regardless of free memory.
  GovFixture f;
  f.GrowDatabase(2 * kMB);
  for (int i = 0; i < 5; ++i) {
    f.CauseMisses();
    f.governor.PollNow();
  }
  EXPECT_LE(f.pool.CurrentBytes(), 8 * kMB);
  // Growing temporary results unconstrains the bound automatically.
  const uint64_t pages = (60 * kMB) / kDefaultPageBytes;
  for (uint64_t i = 0; i < pages; ++i) f.disk.AllocatePage(SpaceId::kTemp);
  for (int i = 0; i < 8; ++i) {
    f.CauseMisses();
    f.governor.PollNow();
  }
  EXPECT_GT(f.pool.CurrentBytes(), 16 * kMB);
}

TEST(PoolGovernorTest, MainHeapBytesExtendTheSoftBound) {
  GovFixture f;
  f.GrowDatabase(2 * kMB);
  f.governor.AddMainHeapBytes(32 * kMB);
  for (int i = 0; i < 6; ++i) {
    f.CauseMisses();
    f.governor.PollNow();
  }
  EXPECT_GT(f.pool.CurrentBytes(), 8 * kMB);
}

TEST(PoolGovernorTest, DampingLimitsStepSize) {
  // Eq. (2): one poll moves 90% of the way to the target.
  GovFixture f;
  f.GrowDatabase(80 * kMB);
  const auto current = static_cast<double>(f.pool.CurrentBytes());
  f.CauseMisses();
  const auto s = f.governor.PollNow();
  const auto target = static_cast<double>(s.target_bytes);
  const auto expected = 0.9 * target + 0.1 * current;
  EXPECT_NEAR(static_cast<double>(s.new_size_bytes), expected,
              expected * 0.02);
}

TEST(PoolGovernorTest, DeadZoneSuppressesTinyChanges) {
  auto opts = GovFixture::DefaultOptions();
  GovFixture f(opts);
  f.GrowDatabase(80 * kMB);
  // Converge.
  for (int i = 0; i < 30; ++i) {
    f.CauseMisses();
    f.governor.PollNow();
  }
  f.CauseMisses();
  const auto s = f.governor.PollNow();
  EXPECT_TRUE(s.in_dead_zone) << s.target_bytes << " vs " << s.new_size_bytes;
}

TEST(PoolGovernorTest, HardBoundsRespected) {
  auto opts = GovFixture::DefaultOptions();
  opts.max_bytes = 10 * kMB;
  GovFixture f(opts);
  f.GrowDatabase(80 * kMB);
  for (int i = 0; i < 10; ++i) {
    f.CauseMisses();
    f.governor.PollNow();
  }
  EXPECT_LE(f.pool.CurrentBytes(), 10 * kMB);
}

TEST(PoolGovernorTest, FastSamplingAtStartupThenNominal) {
  auto opts = GovFixture::DefaultOptions();
  opts.startup_fast_polls = 2;
  GovFixture f(opts);
  // First polls scheduled at the 20s fast period.
  const int64_t first_gap = f.governor.next_poll_micros();
  EXPECT_EQ(first_gap, opts.fast_poll_period_micros);
  f.governor.PollNow();
  f.governor.PollNow();
  f.governor.PollNow();
  // After startup polls are exhausted: nominal one-minute period.
  const int64_t gap = f.governor.next_poll_micros() - f.clock.NowMicros();
  EXPECT_EQ(gap, opts.poll_period_micros);
}

TEST(PoolGovernorTest, SignificantDatabaseGrowthReArmsFastSampling) {
  auto opts = GovFixture::DefaultOptions();
  opts.startup_fast_polls = 0;
  GovFixture f(opts);
  f.GrowDatabase(10 * kMB);
  f.governor.PollNow();
  // Grow the database by far more than 10%.
  f.GrowDatabase(20 * kMB);
  f.governor.PollNow();
  const int64_t gap = f.governor.next_poll_micros() - f.clock.NowMicros();
  EXPECT_EQ(gap, opts.fast_poll_period_micros);
}

TEST(PoolGovernorTest, MaybePollHonorsSchedule) {
  GovFixture f;
  EXPECT_FALSE(f.governor.MaybePoll());  // too early
  f.clock.Advance(f.governor.options().fast_poll_period_micros + 1);
  EXPECT_TRUE(f.governor.MaybePoll());
}

TEST(PoolGovernorTest, CeModeGrowsOnlyWhenFreeMemoryIncreases) {
  auto opts = GovFixture::DefaultOptions();
  opts.ce_mode = true;
  GovFixture f(opts);
  f.GrowDatabase(80 * kMB);

  // Free memory unchanged between polls: no growth even with misses.
  f.CauseMisses();
  f.governor.PollNow();
  const uint64_t stable = f.pool.CurrentBytes();
  f.CauseMisses();
  f.governor.PollNow();
  EXPECT_EQ(f.pool.CurrentBytes(), stable);

  // Another app frees memory: free goes *up* since the last poll -> grow.
  f.env.SetAllocation("app", 40 * kMB);
  f.governor.PollNow();  // records lower free level
  f.env.RemoveProcess("app");
  f.CauseMisses();
  const auto s = f.governor.PollNow();
  EXPECT_TRUE(s.grew);
}

TEST(PoolGovernorTest, CeModeShrinksWhenDeviceMemoryTight) {
  auto opts = GovFixture::DefaultOptions();
  opts.ce_mode = true;
  GovFixture f(opts, /*physical=*/32 * kMB);
  f.GrowDatabase(80 * kMB);
  // Other applications allocate nearly everything.
  f.env.SetAllocation("app", 26 * kMB);
  const uint64_t before = f.pool.CurrentBytes();
  f.governor.PollNow();
  EXPECT_LT(f.pool.CurrentBytes(), before);
}

TEST(PoolGovernorTest, HysteresisGuardCapsRegrowthAfterShrink) {
  auto opts = GovFixture::DefaultOptions();
  opts.hysteresis_polls = 3;
  opts.hysteresis_growth_cap = 0.25;
  GovFixture f(opts);
  f.GrowDatabase(80 * kMB);
  for (int i = 0; i < 6; ++i) {
    f.CauseMisses();
    f.governor.PollNow();
  }
  const uint64_t grown = f.pool.CurrentBytes();
  f.env.SetAllocation("spike", 100 * kMB);
  f.governor.PollNow();  // shrink
  const uint64_t shrunk = f.pool.CurrentBytes();
  ASSERT_LT(shrunk, grown);
  f.env.RemoveProcess("spike");
  f.CauseMisses();
  f.governor.PollNow();  // would normally leap back up
  const uint64_t regrown = f.pool.CurrentBytes();
  // Capped to a quarter of what was shrunk away.
  EXPECT_LE(regrown, shrunk + (grown - shrunk) / 4 +
                         f.governor.options().dead_zone_bytes);
}

TEST(PoolGovernorTest, HistoryRecordsEveryPoll) {
  GovFixture f;
  f.governor.PollNow();
  f.governor.PollNow();
  EXPECT_EQ(f.governor.history().size(), 2u);
}

}  // namespace
}  // namespace hdb::storage
