#include <gtest/gtest.h>

#include "engine/database.h"
#include "profile/analyzer.h"
#include "profile/index_consultant.h"
#include "profile/tracer.h"

namespace hdb::profile {
namespace {

struct Db {
  Db() {
    auto db = engine::Database::Open();
    EXPECT_TRUE(db.ok());
    database = std::move(*db);
    auto conn = database->Connect();
    EXPECT_TRUE(conn.ok());
    c = std::move(*conn);
  }
  void Exec(const std::string& sql) {
    auto r = c->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  }
  std::unique_ptr<engine::Database> database;
  std::unique_ptr<engine::Connection> c;
};

TEST(NormalizeTest, LiteralsBecomePlaceholders) {
  EXPECT_EQ(NormalizeStatement("SELECT a FROM t WHERE b = 42"),
            NormalizeStatement("select A from T where B = 977"));
  EXPECT_EQ(NormalizeStatement("SELECT a FROM t WHERE s = 'x'"),
            "SELECT A FROM T WHERE S = ?");
  EXPECT_NE(NormalizeStatement("SELECT a FROM t"),
            NormalizeStatement("SELECT b FROM t"));
}

TEST(TracerTest, CapturesEvents) {
  Db db;
  RequestTracer tracer;
  ASSERT_TRUE(tracer.Attach(db.database.get(), nullptr).ok());
  db.Exec("CREATE TABLE t (a INT)");
  db.Exec("INSERT INTO t VALUES (1)");
  db.Exec("SELECT a FROM t");
  tracer.Detach();
  db.Exec("SELECT a FROM t");  // not captured
  ASSERT_EQ(tracer.events().size(), 3u);
  EXPECT_EQ(tracer.events()[2].rows_returned, 1u);
}

TEST(TracerTest, UploadsIntoSinkDatabase) {
  // The paper's architecture: trace rows stream into another database for
  // analysis (substitution: in-process instead of TCP/IP).
  Db monitored;
  auto sink = engine::Database::Open();
  ASSERT_TRUE(sink.ok());
  RequestTracer tracer;
  ASSERT_TRUE(tracer.Attach(monitored.database.get(), sink->get()).ok());
  monitored.Exec("CREATE TABLE t (a INT)");
  monitored.Exec("INSERT INTO t VALUES (7)");
  monitored.Exec("SELECT a FROM t WHERE a = 7");
  tracer.Detach();

  auto conn = (*sink)->Connect();
  ASSERT_TRUE(conn.ok());
  auto rows = (*conn)->Execute("SELECT sql, rows_returned FROM profile_trace");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 3u);
  EXPECT_EQ(tracer.dropped_sink_writes(), 0u);
}

TEST(TracerTest, SelfTracingDoesNotRecurse) {
  // "Convenience" mode: the trace is stored in the same database.
  Db db;
  RequestTracer tracer;
  ASSERT_TRUE(tracer.Attach(db.database.get(), db.database.get()).ok());
  db.Exec("CREATE TABLE t (a INT)");
  db.Exec("SELECT a FROM t");
  tracer.Detach();
  EXPECT_EQ(tracer.events().size(), 2u);  // not an event per insert
}

TEST(AnalyzerTest, DetectsClientSideJoin) {
  Db db;
  RequestTracer tracer;
  ASSERT_TRUE(tracer.Attach(db.database.get(), nullptr).ok());
  db.Exec("CREATE TABLE item (id INT NOT NULL, price DOUBLE)");
  for (int i = 0; i < 50; ++i) {
    db.Exec("INSERT INTO item VALUES (" + std::to_string(i) + ", 1.0)");
  }
  // The application-side loop: one probe per id (the client-side join).
  for (int i = 0; i < 30; ++i) {
    db.Exec("SELECT price FROM item WHERE id = " + std::to_string(i));
  }
  tracer.Detach();

  WorkloadAnalyzer analyzer;
  const auto findings = analyzer.Analyze(tracer.events(), db.database.get());
  bool saw = false;
  for (const auto& f : findings) {
    if (f.kind == FindingKind::kClientSideJoin) {
      saw = true;
      EXPECT_GE(f.occurrences, 30u);
    }
  }
  EXPECT_TRUE(saw);
}

TEST(AnalyzerTest, NoFalsePositiveOnRepeatedIdenticalStatement) {
  Db db;
  RequestTracer tracer;
  ASSERT_TRUE(tracer.Attach(db.database.get(), nullptr).ok());
  db.Exec("CREATE TABLE t (a INT)");
  for (int i = 0; i < 30; ++i) db.Exec("SELECT a FROM t WHERE a = 5");
  tracer.Detach();
  WorkloadAnalyzer analyzer;
  for (const auto& f :
       analyzer.Analyze(tracer.events(), db.database.get())) {
    EXPECT_NE(f.kind, FindingKind::kClientSideJoin) << f.message;
  }
}

TEST(AnalyzerTest, FlagsSuspiciousOptions) {
  Db db;
  db.Exec("SET OPTION collect_statistics_on_dml = 'off'");
  db.Exec("SET OPTION max_query_tasks = '1'");
  WorkloadAnalyzer analyzer;
  const auto findings = analyzer.Analyze({}, db.database.get());
  int option_findings = 0;
  for (const auto& f : findings) {
    if (f.kind == FindingKind::kSuspiciousOption) ++option_findings;
  }
  EXPECT_EQ(option_findings, 2);
}

TEST(AnalyzerTest, FlagsExpensiveScans) {
  Db db;
  db.Exec("CREATE TABLE big (k INT, v INT)");
  std::vector<table::Row> rows;
  for (int i = 0; i < 5000; ++i) {
    rows.push_back({Value::Int(i), Value::Int(i)});
  }
  ASSERT_TRUE(db.database->LoadTable("big", rows).ok());
  RequestTracer tracer;
  ASSERT_TRUE(tracer.Attach(db.database.get(), nullptr).ok());
  db.Exec("SELECT v FROM big WHERE k = 17");
  tracer.Detach();
  WorkloadAnalyzer analyzer;
  bool saw = false;
  for (const auto& f :
       analyzer.Analyze(tracer.events(), db.database.get())) {
    if (f.kind == FindingKind::kExpensiveScan) saw = true;
  }
  EXPECT_TRUE(saw);
}

// --- Index consultant (§5) ---

TEST(ConsultantTest, RecommendsIndexForFilteredWorkload) {
  Db db;
  db.Exec("CREATE TABLE orders (id INT NOT NULL, customer INT, total DOUBLE)");
  std::vector<table::Row> rows;
  Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    rows.push_back({Value::Int(i),
                    Value::Int(static_cast<int32_t>(rng.Uniform(500))),
                    Value::Double(rng.NextDouble() * 100)});
  }
  ASSERT_TRUE(db.database->LoadTable("orders", rows).ok());

  std::vector<std::string> workload;
  for (int i = 0; i < 10; ++i) {
    workload.push_back("SELECT total FROM orders WHERE customer = " +
                       std::to_string(i * 7));
  }
  IndexConsultant consultant(db.database.get());
  auto analysis = consultant.Analyze(workload);
  ASSERT_TRUE(analysis.ok());
  ASSERT_GE(analysis->recommendations.size(), 1u);
  const auto& rec = analysis->recommendations[0];
  EXPECT_EQ(rec.kind, Recommendation::Kind::kCreateIndex);
  EXPECT_EQ(rec.table, "orders");
  ASSERT_FALSE(rec.columns.empty());
  EXPECT_EQ(rec.columns[0], "customer");
  EXPECT_GT(rec.benefit_micros, 0.0);
  // What-if costing shows the workload getting cheaper.
  EXPECT_LT(analysis->workload_cost_after, analysis->workload_cost_before);

  // The recommendation's DDL actually runs.
  db.Exec(rec.ddl);
}

TEST(ConsultantTest, RecommendsDroppingUnusedIndex) {
  Db db;
  db.Exec("CREATE TABLE t (a INT, b INT)");
  for (int i = 0; i < 100; ++i) {
    db.Exec("INSERT INTO t VALUES (" + std::to_string(i) + ", 0)");
  }
  db.Exec("CREATE INDEX unused_ix ON t (b)");
  // Workload never touches b.
  IndexConsultant consultant(db.database.get());
  auto analysis = consultant.Analyze({"SELECT a FROM t WHERE a = 1"});
  ASSERT_TRUE(analysis.ok());
  bool drop_seen = false;
  for (const auto& rec : analysis->recommendations) {
    if (rec.kind == Recommendation::Kind::kDropIndex &&
        rec.index_name == "unused_ix") {
      drop_seen = true;
    }
  }
  EXPECT_TRUE(drop_seen);
}

TEST(ConsultantTest, JoinColumnsRequestedAndTightened) {
  Db db;
  db.Exec("CREATE TABLE f (a INT, j INT)");
  db.Exec("CREATE TABLE d (j INT, v INT)");
  std::vector<table::Row> fr, dr;
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    fr.push_back({Value::Int(static_cast<int32_t>(rng.Uniform(100))),
                  Value::Int(static_cast<int32_t>(rng.Uniform(200)))});
  }
  for (int i = 0; i < 200; ++i) {
    dr.push_back({Value::Int(i), Value::Int(i)});
  }
  ASSERT_TRUE(db.database->LoadTable("f", fr).ok());
  ASSERT_TRUE(db.database->LoadTable("d", dr).ok());
  IndexConsultant consultant(db.database.get());
  auto analysis = consultant.Analyze(
      {"SELECT d.v FROM f JOIN d ON f.j = d.j WHERE f.a = 5"});
  ASSERT_TRUE(analysis.ok());
  // The optimizer should have wished for indexes on join/predicate columns.
  EXPECT_GE(analysis->raw_specs.size(), 2u);
}

}  // namespace
}  // namespace hdb::profile
