#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>

#include "storage/buffer_pool.h"
#include "storage/clock_replacer.h"
#include "storage/disk_manager.h"
#include "storage/lookaside_queue.h"

namespace hdb::storage {
namespace {

std::unique_ptr<DiskManager> MakeDisk() {
  return std::make_unique<DiskManager>(kDefaultPageBytes, nullptr, nullptr);
}

TEST(DiskManagerTest, AllocateWriteRead) {
  auto disk = MakeDisk();
  const PageId id = disk->AllocatePage(SpaceId::kMain);
  std::vector<char> buf(kDefaultPageBytes, 'x');
  ASSERT_TRUE(disk->WritePage(SpaceId::kMain, id, buf.data()).ok());
  std::vector<char> out(kDefaultPageBytes);
  ASSERT_TRUE(disk->ReadPage(SpaceId::kMain, id, out.data()).ok());
  EXPECT_EQ(std::memcmp(buf.data(), out.data(), kDefaultPageBytes), 0);
}

TEST(DiskManagerTest, FreeListReuse) {
  auto disk = MakeDisk();
  const PageId a = disk->AllocatePage(SpaceId::kTemp);
  disk->DeallocatePage(SpaceId::kTemp, a);
  const PageId b = disk->AllocatePage(SpaceId::kTemp);
  EXPECT_EQ(a, b);
  EXPECT_EQ(disk->NumPages(SpaceId::kTemp), 1u);
  EXPECT_EQ(disk->LivePages(SpaceId::kTemp), 1u);
}

TEST(DiskManagerTest, ReadOfUnallocatedPageFails) {
  auto disk = MakeDisk();
  std::vector<char> out(kDefaultPageBytes);
  EXPECT_EQ(disk->ReadPage(SpaceId::kMain, 99, out.data()).code(),
            StatusCode::kIOError);
}

TEST(DiskManagerTest, TotalBytesSpanSpaces) {
  auto disk = MakeDisk();
  disk->AllocatePage(SpaceId::kMain);
  disk->AllocatePage(SpaceId::kTemp);
  disk->AllocatePage(SpaceId::kLog);
  EXPECT_EQ(disk->TotalDatabaseBytes(), 3ull * kDefaultPageBytes);
}

TEST(LookasideQueueTest, FifoAndBounds) {
  LookasideQueue q(4);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_EQ(*q.Pop(), 1u);
  EXPECT_EQ(*q.Pop(), 2u);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(LookasideQueueTest, FullQueueRejectsPush) {
  LookasideQueue q(2);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_FALSE(q.Push(3));
}

TEST(LookasideQueueTest, ConcurrentPushPop) {
  LookasideQueue q(1024);
  constexpr int kPerThread = 20000;
  std::atomic<uint64_t> popped_sum{0};
  std::atomic<int> popped_count{0};
  auto producer = [&q](int base) {
    for (int i = 0; i < kPerThread; ++i) {
      while (!q.Push(static_cast<uint32_t>(base + i))) {
        std::this_thread::yield();
      }
    }
  };
  auto consumer = [&]() {
    while (popped_count.load() < 2 * kPerThread) {
      if (auto v = q.Pop()) {
        popped_sum.fetch_add(*v);
        popped_count.fetch_add(1);
      }
    }
  };
  std::thread p1(producer, 0), p2(producer, kPerThread);
  std::thread c1(consumer), c2(consumer);
  p1.join();
  p2.join();
  c1.join();
  c2.join();
  uint64_t expected = 0;
  for (int i = 0; i < 2 * kPerThread; ++i) expected += i;
  EXPECT_EQ(popped_sum.load(), expected);
}

// --- Segmented clock replacement (paper §2.2) ---

TEST(ClockReplacerTest, EvictsUntouchedFrameFirst) {
  ClockReplacer clock(8);
  for (uint32_t f = 0; f < 8; ++f) {
    clock.RecordReference(f);
    clock.SetEvictable(f, true);
  }
  // Re-reference everything except frame 3, across segments.
  for (int round = 0; round < 4; ++round) {
    for (uint32_t f = 0; f < 8; ++f) {
      if (f != 3) clock.RecordReference(f);
    }
  }
  const auto victim = clock.Victim();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 3u);
}

TEST(ClockReplacerTest, PinnedFramesNeverVictims) {
  ClockReplacer clock(2);
  clock.RecordReference(0);
  clock.RecordReference(1);
  clock.SetEvictable(0, false);
  clock.SetEvictable(1, false);
  EXPECT_FALSE(clock.Victim().has_value());
  clock.SetEvictable(1, true);
  EXPECT_EQ(*clock.Victim(), 1u);
}

TEST(ClockReplacerTest, ScanResistance) {
  // Hot pages re-referenced across segments accumulate score; a one-pass
  // scan touches pages once. The scanned page must be evicted before the
  // hot pages.
  ClockReplacer clock(16);
  for (uint32_t f = 0; f < 4; ++f) {
    clock.RecordReference(f);
    clock.SetEvictable(f, true);
  }
  // Many re-references of the hot set spread over the tick series.
  for (int round = 0; round < 20; ++round) {
    for (uint32_t f = 0; f < 4; ++f) clock.RecordReference(f);
  }
  // The "scan" loads frame 10 once.
  clock.RecordReference(10);
  clock.SetEvictable(10, true);
  EXPECT_EQ(*clock.Victim(), 10u);
}

TEST(ClockReplacerTest, AdjacentReferencesDoNotInflateScore) {
  // A burst of references in one segment counts once (the paper's table
  // scan pattern); a page referenced the same number of times but across
  // segments scores higher.
  ClockReplacer clock(64);
  clock.RecordReference(1);  // burst page
  for (int i = 0; i < 10; ++i) clock.RecordReference(1);
  const uint32_t burst_score = clock.EffectiveScore(1);

  clock.RecordReference(2);
  for (int i = 0; i < 10; ++i) {
    // Space references out: touch other frames to advance segments.
    for (uint32_t f = 10; f < 60; ++f) clock.RecordReference(f);
    clock.RecordReference(2);
  }
  EXPECT_GT(clock.EffectiveScore(2), burst_score);
}

TEST(ClockReplacerTest, ExponentialDecayMakesOldPagesCandidates) {
  ClockReplacer clock(8);
  for (int i = 0; i < 50; ++i) {
    for (uint32_t f = 0; f < 4; ++f) clock.RecordReference(f);
  }
  const uint32_t hot = clock.EffectiveScore(0);
  EXPECT_GT(hot, 0u);
  // Age frame 0 by referencing others for many windows.
  for (int i = 0; i < 2000; ++i) {
    for (uint32_t f = 1; f < 4; ++f) clock.RecordReference(f);
  }
  EXPECT_LT(clock.EffectiveScore(0), hot);
}

// --- Buffer pool ---

struct PoolFixture {
  std::unique_ptr<DiskManager> disk = MakeDisk();
  BufferPool pool{disk.get(), BufferPoolOptions{.initial_frames = 8}};
};

TEST(BufferPoolTest, NewFetchRoundTrip) {
  PoolFixture f;
  PageId id = kInvalidPageId;
  {
    auto h = f.pool.NewPage(SpaceId::kMain, PageType::kTable, 1, &id);
    ASSERT_TRUE(h.ok());
    std::memcpy(h->data(), "hello", 5);
    h->MarkDirty();
  }
  auto h2 = f.pool.FetchPage({SpaceId::kMain, id}, PageType::kTable, 1);
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(std::memcmp(h2->data(), "hello", 5), 0);
  EXPECT_EQ(f.pool.stats().hits, 1u);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  PoolFixture f;
  std::vector<PageId> ids;
  // Fill way past capacity; all unpinned after write.
  for (int i = 0; i < 32; ++i) {
    PageId id;
    auto h = f.pool.NewPage(SpaceId::kMain, PageType::kTable, 1, &id);
    ASSERT_TRUE(h.ok());
    h->data()[0] = static_cast<char>(i);
    h->MarkDirty();
    ids.push_back(id);
  }
  EXPECT_GT(f.pool.stats().evictions, 0u);
  // Every page still readable with correct contents.
  for (int i = 0; i < 32; ++i) {
    auto h = f.pool.FetchPage({SpaceId::kMain, ids[i]}, PageType::kTable, 1);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->data()[0], static_cast<char>(i));
  }
}

TEST(BufferPoolTest, AllPinnedExhaustsPool) {
  PoolFixture f;
  std::vector<PageHandle> pins;
  for (int i = 0; i < 8; ++i) {
    PageId id;
    auto h = f.pool.NewPage(SpaceId::kMain, PageType::kTable, 1, &id);
    ASSERT_TRUE(h.ok());
    pins.push_back(std::move(*h));
  }
  PageId id;
  auto h = f.pool.NewPage(SpaceId::kMain, PageType::kTable, 1, &id);
  EXPECT_EQ(h.status().code(), StatusCode::kResourceExhausted);
}

TEST(BufferPoolTest, ResizeGrowAddsFreeFrames) {
  PoolFixture f;
  EXPECT_EQ(f.pool.Resize(16), 16u);
  EXPECT_EQ(f.pool.CurrentFrames(), 16u);
}

TEST(BufferPoolTest, ResizeShrinkEvictsUnpinned) {
  PoolFixture f;
  for (int i = 0; i < 8; ++i) {
    PageId id;
    auto h = f.pool.NewPage(SpaceId::kMain, PageType::kTable, 1, &id);
    ASSERT_TRUE(h.ok());
    h->MarkDirty();
  }
  EXPECT_EQ(f.pool.Resize(3), 3u);
  EXPECT_EQ(f.pool.CurrentFrames(), 3u);
}

TEST(BufferPoolTest, ShrinkStopsAtPinnedFrames) {
  PoolFixture f;
  std::vector<PageHandle> pins;
  for (int i = 0; i < 6; ++i) {
    PageId id;
    auto h = f.pool.NewPage(SpaceId::kMain, PageType::kTable, 1, &id);
    ASSERT_TRUE(h.ok());
    pins.push_back(std::move(*h));
  }
  // 6 of 8 frames pinned: cannot shrink below 6.
  EXPECT_GE(f.pool.Resize(2), 6u);
}

TEST(BufferPoolTest, DiscardFeedsLookasideForImmediateReuse) {
  PoolFixture f;
  PageId id;
  {
    auto h = f.pool.NewPage(SpaceId::kTemp, PageType::kHeap, 2, &id);
    ASSERT_TRUE(h.ok());
  }
  f.pool.DiscardPage({SpaceId::kTemp, id});
  // Fill the pool so a victim is needed; the discarded frame is reused
  // via the lookaside queue once the free list runs dry.
  for (int i = 0; i < 12; ++i) {
    PageId id2;
    auto h = f.pool.NewPage(SpaceId::kMain, PageType::kTable, 1, &id2);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_GT(f.pool.stats().lookaside_reuses, 0u);
}

TEST(BufferPoolTest, MissCounterResetsOnPoll) {
  PoolFixture f;
  PageId id;
  { auto h = f.pool.NewPage(SpaceId::kMain, PageType::kTable, 1, &id); }
  EXPECT_GT(f.pool.TakeMissesSinceLastPoll(), 0u);
  // Hits do not count as misses.
  { auto h = f.pool.FetchPage({SpaceId::kMain, id}, PageType::kTable, 1); }
  EXPECT_EQ(f.pool.TakeMissesSinceLastPoll(), 0u);
}

TEST(BufferPoolTest, OwnerResidencyTracksLoadedPages) {
  PoolFixture f;
  for (int i = 0; i < 4; ++i) {
    PageId id;
    auto h = f.pool.NewPage(SpaceId::kMain, PageType::kTable, 7, &id);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_EQ(f.pool.ResidentPages(7), 4u);
  f.pool.Resize(2);  // evicts two
  EXPECT_LE(f.pool.ResidentPages(7), 2u);
}

TEST(BufferPoolTest, HeapStealAccounting) {
  PoolFixture f;
  // Create unpinned dirty heap pages, then force eviction pressure.
  for (int i = 0; i < 8; ++i) {
    PageId id;
    auto h = f.pool.NewPage(SpaceId::kTemp, PageType::kHeap, 3, &id);
    ASSERT_TRUE(h.ok());
    h->MarkDirty();
  }
  for (int i = 0; i < 8; ++i) {
    PageId id;
    auto h = f.pool.NewPage(SpaceId::kMain, PageType::kTable, 1, &id);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_GT(f.pool.stats().heap_steals, 0u);
}

}  // namespace
}  // namespace hdb::storage
