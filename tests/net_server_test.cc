// End-to-end tests for the network front end (DESIGN.md §12): real
// sockets against the epoll server, the blocking Client, overload
// shedding through the admission gate, idle shedding, drain, and the
// sys.connections view. Everything binds 127.0.0.1:0 (ephemeral).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/value.h"
#include "engine/database.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/metric_names.h"

namespace hdb {
namespace {

#ifdef HDB_NO_TELEMETRY
#define SKIP_WITHOUT_TELEMETRY() \
  GTEST_SKIP() << "telemetry compiled out (-DHDB_TELEMETRY=OFF)"
#else
#define SKIP_WITHOUT_TELEMETRY() \
  do {                           \
  } while (false)
#endif

using net::Client;
using net::NetResult;
using net::Server;

/// Database + running server, torn down in the right order (server
/// first: its metrics callback and sys.connections provider reach into
/// the database).
struct NetFixture {
  explicit NetFixture(engine::DatabaseOptions db_opts = {},
                      net::ServerOptions server_opts = {}) {
    auto db_or = engine::Database::Open(db_opts);
    EXPECT_TRUE(db_or.ok()) << db_or.status().ToString();
    db = std::move(*db_or);
    auto conn_or = db->Connect();
    EXPECT_TRUE(conn_or.ok());
    embedded = std::move(*conn_or);
    auto server_or = Server::Start(db.get(), server_opts);
    EXPECT_TRUE(server_or.ok()) << server_or.status().ToString();
    server = std::move(*server_or);
  }

  ~NetFixture() {
    server.reset();  // joins the event loop + workers
    embedded.reset();
    db.reset();
  }

  engine::QueryResult Exec(const std::string& sql) {
    auto r = embedded->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : engine::QueryResult{};
  }

  std::unique_ptr<Client> Connect(net::ClientOptions options = {}) {
    auto c = Client::Connect("127.0.0.1", server->port(), std::move(options));
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return c.ok() ? std::move(*c) : nullptr;
  }

  /// Counter value via SQL — the same path an operator would use.
  int64_t Counter(const std::string& name) {
    auto r = embedded->Execute(
        "SELECT value FROM sys.counters WHERE name = '" + name + "'");
    if (!r.ok() || r->rows.empty()) return 0;
    return r->rows[0][0].AsInt();
  }

  std::unique_ptr<engine::Database> db;
  std::unique_ptr<engine::Connection> embedded;
  std::unique_ptr<Server> server;
};

// ---------------------------------------------------------------------------
// Basic protocol round trips
// ---------------------------------------------------------------------------

TEST(NetServerTest, HandshakeQueryAndTypedResults) {
  NetFixture fx;
  fx.Exec("CREATE TABLE t (a INT, b DOUBLE, c VARCHAR, d BOOLEAN)");
  fx.Exec("INSERT INTO t VALUES (7, 2.5, 'it''s', TRUE)");
  fx.Exec("INSERT INTO t VALUES (8, NULL, NULL, FALSE)");

  std::unique_ptr<Client> client = fx.Connect();
  ASSERT_NE(client, nullptr);
  EXPECT_GT(client->conn_id(), 0u);
  EXPECT_TRUE(client->Ping().ok());

  auto r = client->Query("SELECT a, b, c, d FROM t ORDER BY a");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->columns.size(), 4u);
  EXPECT_EQ(r->columns[0], "a");
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->row_count, 2u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 7);
  EXPECT_DOUBLE_EQ(r->rows[0][1].AsDouble(), 2.5);
  EXPECT_EQ(r->rows[0][2].AsString(), "it's");
  EXPECT_TRUE(r->rows[0][3].AsBool());
  EXPECT_EQ(r->rows[1][0].AsInt(), 8);
  EXPECT_TRUE(r->rows[1][1].is_null());
  EXPECT_TRUE(r->rows[1][2].is_null());

  // DML reports rows_affected with no result set.
  auto ins = client->Query("INSERT INTO t VALUES (9, 1.0, 'x', TRUE)");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  EXPECT_EQ(ins->rows_affected, 1u);
  EXPECT_TRUE(ins->columns.empty());

  // EXPLAIN streams as a one-column result set.
  auto ex = client->Query("EXPLAIN SELECT a FROM t");
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  ASSERT_EQ(ex->columns.size(), 1u);
  EXPECT_GT(ex->rows.size(), 0u);

  EXPECT_TRUE(client->Close().ok());
}

TEST(NetServerTest, PreparedStatementLifecycle) {
  NetFixture fx;
  fx.Exec("CREATE TABLE kv (k INT, v VARCHAR)");

  std::unique_ptr<Client> client = fx.Connect();
  ASSERT_NE(client, nullptr);

  auto ins = client->Prepare("INSERT INTO kv VALUES (?, ?)");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  EXPECT_EQ(ins->param_count, 2u);

  // Execute twice with different bindings — including a value whose
  // literal needs quoting.
  ASSERT_TRUE(client->Bind(ins->stmt_id,
                           {Value::Int(1), Value::String("o'brien")})
                  .ok());
  auto r1 = client->ExecutePrepared(ins->stmt_id);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->rows_affected, 1u);
  ASSERT_TRUE(
      client->Bind(ins->stmt_id, {Value::Int(2), Value::Null(TypeId::kVarchar)})
          .ok());
  ASSERT_TRUE(client->ExecutePrepared(ins->stmt_id).ok());

  auto sel = client->Prepare("SELECT v FROM kv WHERE k = ?");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->param_count, 1u);
  ASSERT_TRUE(client->Bind(sel->stmt_id, {Value::Int(1)}).ok());
  auto rows = client->ExecutePrepared(sel->stmt_id);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].AsString(), "o'brien");

  // Binding the wrong arity is an error; the statement stays usable.
  EXPECT_FALSE(client->Bind(sel->stmt_id, {}).ok());
  ASSERT_TRUE(client->Bind(sel->stmt_id, {Value::Int(2)}).ok());
  auto null_row = client->ExecutePrepared(sel->stmt_id);
  ASSERT_TRUE(null_row.ok());
  ASSERT_EQ(null_row->rows.size(), 1u);
  EXPECT_TRUE(null_row->rows[0][0].is_null());

  // Close; further execution of that id is kNotFound.
  EXPECT_TRUE(client->ClosePrepared(sel->stmt_id).ok());
  auto gone = client->ExecutePrepared(sel->stmt_id);
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);

  EXPECT_TRUE(client->Close().ok());
}

TEST(NetServerTest, ErrorFramesKeepTheConnectionUsable) {
  NetFixture fx;
  fx.Exec("CREATE TABLE t (a INT)");
  fx.Exec("INSERT INTO t VALUES (1)");

  std::unique_ptr<Client> client = fx.Connect();
  ASSERT_NE(client, nullptr);

  auto bad = client->Query("SELECT FROM WHERE");
  EXPECT_FALSE(bad.ok());
  auto missing = client->Query("SELECT a FROM no_such_table");
  EXPECT_FALSE(missing.ok());

  // The connection survived both errors.
  auto good = client->Query("SELECT a FROM t");
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  ASSERT_EQ(good->rows.size(), 1u);
  EXPECT_EQ(good->rows[0][0].AsInt(), 1);
  EXPECT_TRUE(client->Close().ok());
}

// ---------------------------------------------------------------------------
// sys.connections + transactions over the wire
// ---------------------------------------------------------------------------

TEST(NetServerTest, SysConnectionsTracksWireSessions) {
  NetFixture fx;
  fx.Exec("CREATE TABLE t (a INT)");

  std::unique_ptr<Client> a = fx.Connect();
  std::unique_ptr<Client> b = fx.Connect();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(a->Query("BEGIN").ok());
  ASSERT_TRUE(a->Query("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(a->Prepare("SELECT a FROM t WHERE a = ?").ok());

  // The embedded connection is not a wire session; exactly the two
  // clients appear.
  auto rows = fx.Exec(
      "SELECT conn_id, state, in_txn, prepared, statements "
      "FROM sys.connections ORDER BY conn_id");
  ASSERT_EQ(rows.rows.size(), 2u);

  bool saw_a = false;
  for (const auto& row : rows.rows) {
    if (static_cast<uint64_t>(row[0].AsInt()) != a->conn_id()) continue;
    saw_a = true;
    // The reply frame is written before the worker clears its executing
    // flag, so the state may transiently still read "executing".
    EXPECT_TRUE(row[1].AsString() == "ready" ||
                row[1].AsString() == "executing")
        << row[1].AsString();
    EXPECT_TRUE(row[2].AsBool());          // BEGIN left a open
    EXPECT_EQ(row[3].AsInt(), 1);          // one prepared statement
    EXPECT_GE(row[4].AsInt(), 2);          // BEGIN + INSERT at least
  }
  EXPECT_TRUE(saw_a);

  ASSERT_TRUE(a->Query("COMMIT").ok());
  auto after = fx.Exec("SELECT in_txn FROM sys.connections WHERE conn_id = " +
                       std::to_string(a->conn_id()));
  ASSERT_EQ(after.rows.size(), 1u);
  EXPECT_FALSE(after.rows[0][0].AsBool());

  // The transaction's insert committed — visible through the engine.
  auto committed = fx.Exec("SELECT COUNT(*) FROM t");
  EXPECT_EQ(committed.rows[0][0].AsInt(), 1);

  ASSERT_TRUE(a->Close().ok());
  ASSERT_TRUE(b->Close().ok());
  // The event loop reaps closed connections asynchronously.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fx.server->stats().active > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(fx.server->stats().active, 0u);
  auto none = fx.Exec("SELECT COUNT(*) FROM sys.connections");
  EXPECT_EQ(none.rows[0][0].AsInt(), 0);
}

// ---------------------------------------------------------------------------
// Multiplexing: connections ≫ workers
// ---------------------------------------------------------------------------

TEST(NetServerTest, ManyConnectionsMultiplexOntoTwoWorkers) {
  net::ServerOptions so;
  so.workers = 2;
  NetFixture fx({}, so);
  fx.Exec("CREATE TABLE t (a INT)");
  fx.Exec("INSERT INTO t VALUES (41)");

  constexpr int kClients = 64;
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(fx.Connect());
    ASSERT_NE(clients.back(), nullptr) << "client " << i;
  }
  EXPECT_EQ(fx.server->stats().active, static_cast<size_t>(kClients));

  // Every connection executes; two workers serve all 64 sockets.
  for (int i = 0; i < kClients; ++i) {
    auto r = clients[i]->Query("SELECT a FROM t");
    ASSERT_TRUE(r.ok()) << "client " << i << ": " << r.status().ToString();
    ASSERT_EQ(r->rows.size(), 1u);
    EXPECT_EQ(r->rows[0][0].AsInt(), 41);
  }

  auto count = fx.Exec("SELECT COUNT(*) FROM sys.connections");
  EXPECT_EQ(count.rows[0][0].AsInt(), kClients);

  for (auto& c : clients) EXPECT_TRUE(c->Close().ok());
}

TEST(NetServerTest, ConcurrentClientsSeeConsistentResults) {
  net::ServerOptions so;
  so.workers = 3;
  NetFixture fx({}, so);
  fx.Exec("CREATE TABLE acc (id INT, bal INT)");
  fx.Exec("INSERT INTO acc VALUES (1, 100)");
  fx.Exec("INSERT INTO acc VALUES (2, 200)");

  constexpr int kThreads = 6;
  constexpr int kQueriesEach = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  const uint16_t port = fx.server->port();
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([port, &failures] {
      auto c = Client::Connect("127.0.0.1", port);
      if (!c.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kQueriesEach; ++i) {
        auto r = (*c)->Query("SELECT SUM(bal) FROM acc");
        if (!r.ok() || r->rows.size() != 1 || r->rows[0][0].AsInt() != 300) {
          failures.fetch_add(1);
          return;
        }
      }
      (void)(*c)->Close();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------------
// Overload: the MPL gate answers with structured frames, never a hang
// ---------------------------------------------------------------------------

TEST(NetServerTest, OverloadShedsWithRetryHintInsteadOfHanging) {
  engine::DatabaseOptions dbo;
  // Pin the multiprogramming level to 1 so a single slow statement
  // saturates the gate deterministically, and keep the queue timeout
  // short so queued statements shed fast.
  dbo.memory_governor.multiprogramming_level = 1;
  dbo.mpl_controller.min_mpl = 1;
  dbo.mpl_controller.max_mpl = 1;
  dbo.admission_gate.queue_timeout_micros = 100'000;  // 100 ms

  net::ServerOptions so;
  so.workers = 4;
  // Shed as soon as anyone is queued — with MPL 1, one hog executing and
  // one hog queued means every further statement gets kOverloaded
  // without ever parking a worker.
  so.session.overload_waiting_limit = 1;
  so.session.overload_retry_ms = 50;
  NetFixture fx(dbo, so);

  // A join big enough to hold the only MPL slot for a while on one core:
  // every row shares b, so the self-join produces rows² pairs.
  fx.Exec("CREATE TABLE hog (a INT, b INT)");
  fx.Exec("BEGIN");
  for (int i = 0; i < 1200; ++i) {
    fx.Exec("INSERT INTO hog VALUES (" + std::to_string(i) + ", 1)");
  }
  fx.Exec("COMMIT");
  fx.Exec("CREATE TABLE tiny (a INT)");
  fx.Exec("INSERT INTO tiny VALUES (1)");

  const std::string slow =
      "SELECT COUNT(*) FROM hog x JOIN hog y ON x.b = y.b";

  std::atomic<bool> stop{false};
  std::atomic<int> hog_overloads{0};
  std::atomic<int> hog_errors{0};
  const uint16_t port = fx.server->port();
  auto hog_loop = [&] {
    auto c = Client::Connect("127.0.0.1", port);
    if (!c.ok()) {
      hog_errors.fetch_add(1);
      return;
    }
    while (!stop.load()) {
      auto r = (*c)->Query(slow);
      if (!r.ok()) {
        if (r.status().code() == StatusCode::kOverloaded) {
          hog_overloads.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        } else {
          hog_errors.fetch_add(1);
          return;
        }
      }
    }
    (void)(*c)->Close();
  };
  std::thread hog_a(hog_loop);
  std::thread hog_b(hog_loop);

  // Probe until we observe shedding: a cheap query answered kOverloaded
  // with the retry hint, while the hogs keep the one MPL slot busy.
  std::unique_ptr<Client> probe = fx.Connect();
  ASSERT_NE(probe, nullptr);
  int overloads_seen = 0;
  int ok_seen = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (overloads_seen == 0 && std::chrono::steady_clock::now() < deadline) {
    auto r = probe->Query("SELECT a FROM tiny");
    if (!r.ok()) {
      ASSERT_EQ(r.status().code(), StatusCode::kOverloaded)
          << r.status().ToString();
      ++overloads_seen;
      EXPECT_GT(probe->retry_after_ms(), 0u);
    } else {
      ++ok_seen;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  hog_a.join();
  hog_b.join();

  EXPECT_GT(overloads_seen, 0) << "gate never saturated (ok=" << ok_seen
                               << ", hog overloads=" << hog_overloads.load()
                               << ")";
  EXPECT_EQ(hog_errors.load(), 0);

  // Overload is a structured answer, not a dropped connection: the same
  // probe connection works once the hogs stop.
  auto after = probe->Query("SELECT a FROM tiny");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->rows[0][0].AsInt(), 1);
  EXPECT_TRUE(probe->Close().ok());

#ifndef HDB_NO_TELEMETRY
  EXPECT_GT(fx.Counter(obs::kNetOverloadsSent), 0);
#endif
}

TEST(NetServerTest, AcceptBeyondMaxConnectionsIsRefusedWithOverloadFrame) {
  net::ServerOptions so;
  so.max_connections = 2;
  NetFixture fx({}, so);

  std::unique_ptr<Client> a = fx.Connect();
  std::unique_ptr<Client> b = fx.Connect();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  auto c = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kOverloaded)
      << c.status().ToString();
  EXPECT_GE(fx.server->stats().rejected, 1u);

  // Freeing a slot lets the next connect through.
  ASSERT_TRUE(a->Close().ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  std::unique_ptr<Client> d;
  while (std::chrono::steady_clock::now() < deadline) {
    auto retry = Client::Connect("127.0.0.1", fx.server->port());
    if (retry.ok()) {
      d = std::move(*retry);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_NE(d, nullptr) << "slot never freed after close";
  EXPECT_TRUE(d->Ping().ok());
}

// ---------------------------------------------------------------------------
// Idle shedding + drain
// ---------------------------------------------------------------------------

TEST(NetServerTest, IdleConnectionsAreShedWithGoodbye) {
  net::ServerOptions so;
  so.idle_timeout_ms = 100;
  NetFixture fx({}, so);

  std::unique_ptr<Client> idle = fx.Connect();
  ASSERT_NE(idle, nullptr);
  EXPECT_TRUE(idle->Ping().ok());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (fx.server->stats().shed == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(fx.server->stats().shed, 1u);

  // The client's next request fails — the server said goodbye and closed.
  net::ClientOptions timeout;
  EXPECT_FALSE(idle->Ping().ok());
}

TEST(NetServerTest, RequestShutdownDrainsIdleConnections) {
  NetFixture fx;
  std::unique_ptr<Client> a = fx.Connect();
  std::unique_ptr<Client> b = fx.Connect();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  fx.server->RequestShutdown();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!fx.server->finished() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(fx.server->finished());
  EXPECT_EQ(fx.server->stats().active, 0u);

  // Clients observe the goodbye (or the close) — either way no hang.
  EXPECT_FALSE(a->Ping().ok());
  EXPECT_FALSE(b->Ping().ok());

  // New connections are refused during/after drain.
  auto late = Client::Connect("127.0.0.1", fx.server->port());
  EXPECT_FALSE(late.ok());

  fx.server->Stop();  // idempotent
}

// ---------------------------------------------------------------------------
// Malformed input over a raw socket
// ---------------------------------------------------------------------------

/// Hand-rolled socket speaking raw bytes — for tests the Client cannot
/// express (protocol violations).
struct RawConn {
  int fd = -1;
  net::FrameAssembler assembler;

  bool Connect(uint16_t port) {
    fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      close(fd);
      fd = -1;
      return false;
    }
    timeval tv{};
    tv.tv_sec = 10;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return true;
  }

  ~RawConn() {
    if (fd >= 0) close(fd);
  }

  bool SendAll(std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Next frame, or nullopt on EOF/poison. `storage` owns the payload.
  std::optional<net::Frame> ReadFrame(std::string* storage) {
    while (true) {
      auto next = assembler.Next();
      if (!next.ok()) return std::nullopt;
      if (next->has_value()) {
        storage->assign((**next).payload);
        return net::Frame{(**next).opcode, *storage};
      }
      char buf[4096];
      ssize_t n = recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) return std::nullopt;
      assembler.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
  }

  bool SendHello() {
    std::string payload;
    net::PutU32(&payload, net::kProtocolVersion);
    net::PutString(&payload, "raw-test");
    std::string frame;
    net::AppendFrame(&frame, net::Opcode::kHello, payload);
    if (!SendAll(frame)) return false;
    std::string storage;
    auto reply = ReadFrame(&storage);
    return reply.has_value() &&
           reply->opcode == static_cast<uint8_t>(net::Opcode::kHelloOk);
  }
};

TEST(NetServerTest, UnknownOpcodeGetsErrorFrameAndConnectionSurvives) {
  NetFixture fx;
  RawConn raw;
  ASSERT_TRUE(raw.Connect(fx.server->port()));
  ASSERT_TRUE(raw.SendHello());

  // Valid framing, nonsense opcode: recoverable.
  std::string frame;
  net::PutU32(&frame, 1);  // length: opcode only
  frame.push_back(static_cast<char>(0x55));
  ASSERT_TRUE(raw.SendAll(frame));
  std::string storage;
  auto reply = raw.ReadFrame(&storage);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->opcode, static_cast<uint8_t>(net::Opcode::kError));

  // Still alive: ping answers.
  std::string ping;
  net::AppendFrame(&ping, net::Opcode::kPing, {});
  ASSERT_TRUE(raw.SendAll(ping));
  auto pong = raw.ReadFrame(&storage);
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->opcode, static_cast<uint8_t>(net::Opcode::kPong));
}

TEST(NetServerTest, FramingViolationClosesTheConnection) {
  NetFixture fx;
  RawConn raw;
  ASSERT_TRUE(raw.Connect(fx.server->port()));
  ASSERT_TRUE(raw.SendHello());

  // Zero-length frame: framing is unrecoverable — the server answers
  // with error + goodbye and closes.
  std::string zeros(4, '\0');
  ASSERT_TRUE(raw.SendAll(zeros));

  bool saw_goodbye = false;
  std::string storage;
  while (auto f = raw.ReadFrame(&storage)) {
    if (f->opcode == static_cast<uint8_t>(net::Opcode::kGoodbye)) {
      saw_goodbye = true;
    }
  }
  EXPECT_TRUE(saw_goodbye);

  // recv hits EOF after the goodbye: the fd really closed.
  char byte;
  ssize_t n = recv(raw.fd, &byte, 1, 0);
  EXPECT_LE(n, 0);

  // The server itself is unharmed.
  std::unique_ptr<Client> ok = fx.Connect();
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->Ping().ok());
}

TEST(NetServerTest, StatementsBeforeHandshakeAreRejected) {
  NetFixture fx;
  RawConn raw;
  ASSERT_TRUE(raw.Connect(fx.server->port()));

  std::string payload;
  net::PutString(&payload, "SELECT 1");
  std::string frame;
  net::AppendFrame(&frame, net::Opcode::kQuery, payload);
  ASSERT_TRUE(raw.SendAll(frame));

  std::string storage;
  auto reply = raw.ReadFrame(&storage);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->opcode, static_cast<uint8_t>(net::Opcode::kError));
  // Pre-handshake violations close the connection after the error frame.
  auto next = raw.ReadFrame(&storage);
  EXPECT_FALSE(next.has_value());
}

// ---------------------------------------------------------------------------
// Telemetry surface
// ---------------------------------------------------------------------------

TEST(NetServerTest, NetMetricsShowUpInSysCounters) {
  SKIP_WITHOUT_TELEMETRY();
  NetFixture fx;
  fx.Exec("CREATE TABLE t (a INT)");

  std::unique_ptr<Client> client = fx.Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Query("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(client->Query("SELECT a FROM t").ok());

  EXPECT_GE(fx.Counter(obs::kNetConnectionsAccepted), 1);
  EXPECT_EQ(fx.Counter(obs::kNetConnectionsActive), 1);
  EXPECT_GE(fx.Counter(obs::kNetFramesIn), 3);   // hello + 2 queries
  EXPECT_GE(fx.Counter(obs::kNetFramesOut), 3);  // hello_ok + replies
  EXPECT_GT(fx.Counter(obs::kNetBytesIn), 0);
  EXPECT_GT(fx.Counter(obs::kNetBytesOut), 0);
  EXPECT_GE(fx.Counter(obs::kNetStatements), 2);

  ASSERT_TRUE(client->Close().ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fx.Counter(obs::kNetConnectionsClosed) < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(fx.Counter(obs::kNetConnectionsClosed), 1);
  EXPECT_EQ(fx.Counter(obs::kNetConnectionsActive), 0);
}

}  // namespace
}  // namespace hdb
