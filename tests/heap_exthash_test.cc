#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>

#include "storage/ext_hash.h"
#include "storage/heap.h"

namespace hdb::storage {
namespace {

struct Fixture {
  Fixture() : disk(kDefaultPageBytes, nullptr, nullptr),
              pool(&disk, BufferPoolOptions{.initial_frames = 64}) {}
  DiskManager disk;
  BufferPool pool;
};

TEST(ConnectionHeapTest, AllocateAndResolve) {
  Fixture f;
  ConnectionHeap heap(&f.pool, 1);
  auto p = heap.Allocate(64);
  ASSERT_TRUE(p.ok());
  auto* data = static_cast<char*>(heap.Resolve(*p));
  ASSERT_NE(data, nullptr);
  std::memset(data, 0xAB, 64);
  EXPECT_EQ(heap.allocated_bytes(), 64u);
}

TEST(ConnectionHeapTest, AllocationAligned) {
  Fixture f;
  ConnectionHeap heap(&f.pool, 1);
  auto a = heap.Allocate(3);
  auto b = heap.Allocate(5);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(b->offset % 8, 0u);
}

TEST(ConnectionHeapTest, GrowsAcrossPages) {
  Fixture f;
  ConnectionHeap heap(&f.pool, 1);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(heap.Allocate(1000).ok());
  }
  EXPECT_GE(heap.page_count(), 5u);
}

TEST(ConnectionHeapTest, OversizeAllocationRejected) {
  Fixture f;
  ConnectionHeap heap(&f.pool, 1);
  EXPECT_EQ(heap.Allocate(kDefaultPageBytes + 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ConnectionHeapTest, UnlockedHeapRefusesAllocation) {
  Fixture f;
  ConnectionHeap heap(&f.pool, 1);
  heap.Unlock();
  EXPECT_FALSE(heap.Allocate(8).ok());
  EXPECT_EQ(heap.Resolve(HeapPtr{0, 0}), nullptr);
}

TEST(ConnectionHeapTest, ContentSurvivesStealAndRelock) {
  Fixture f;
  ConnectionHeap heap(&f.pool, 1);
  auto p = heap.Allocate(128);
  ASSERT_TRUE(p.ok());
  std::memcpy(heap.Resolve(*p), "persistent!", 12);

  heap.Unlock();
  // Steal every frame: flood the pool with table pages.
  for (int i = 0; i < 200; ++i) {
    PageId id;
    auto h = f.pool.NewPage(SpaceId::kMain, PageType::kTable, 9, &id);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_GT(f.pool.stats().heap_steals, 0u);

  ASSERT_TRUE(heap.Lock().ok());
  EXPECT_STREQ(static_cast<char*>(heap.Resolve(*p)), "persistent!");
}

TEST(ConnectionHeapTest, SwizzleEpochAdvancesOnRelock) {
  Fixture f;
  ConnectionHeap heap(&f.pool, 1);
  ASSERT_TRUE(heap.Allocate(8).ok());
  const uint64_t e0 = heap.swizzle_epoch();
  heap.Unlock();
  ASSERT_TRUE(heap.Lock().ok());
  EXPECT_GT(heap.swizzle_epoch(), e0);
}

TEST(ConnectionHeapTest, SwizzledPtrReResolves) {
  Fixture f;
  ConnectionHeap heap(&f.pool, 1);
  auto p = heap.New<int>();
  ASSERT_TRUE(p.ok());
  SwizzledPtr<int> sp(*p);
  *sp.get(heap) = 77;
  heap.Unlock();
  for (int i = 0; i < 200; ++i) {
    PageId id;
    auto h = f.pool.NewPage(SpaceId::kMain, PageType::kTable, 9, &id);
    ASSERT_TRUE(h.ok());
  }
  ASSERT_TRUE(heap.Lock().ok());
  EXPECT_EQ(*sp.get(heap), 77);
}

TEST(ConnectionHeapTest, ResetDiscardsPages) {
  Fixture f;
  ConnectionHeap heap(&f.pool, 1);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(heap.Allocate(2000).ok());
  const size_t pages = heap.page_count();
  EXPECT_GT(pages, 0u);
  heap.Reset();
  EXPECT_EQ(heap.page_count(), 0u);
  EXPECT_EQ(heap.allocated_bytes(), 0u);
  // Discarded pages are immediately reusable.
  ASSERT_TRUE(heap.Allocate(8).ok());
}

// --- Extendible hash (the no-knobs lock table substrate, §2.1) ---

TEST(ExtHashTest, InsertLookupRemove) {
  Fixture f;
  ExtHashTable table(&f.pool);
  ASSERT_TRUE(table.Insert(42, 100).ok());
  ASSERT_TRUE(table.Insert(42, 200).ok());
  auto vals = table.Lookup(42);
  ASSERT_TRUE(vals.ok());
  EXPECT_EQ(vals->size(), 2u);
  ASSERT_TRUE(table.Remove(42, 100).ok());
  vals = table.Lookup(42);
  ASSERT_EQ(vals->size(), 1u);
  EXPECT_EQ((*vals)[0], 200u);
  EXPECT_EQ(table.Remove(42, 999).code(), StatusCode::kNotFound);
}

TEST(ExtHashTest, GrowsByDirectoryDoubling) {
  Fixture f;
  ExtHashTable table(&f.pool);
  for (uint64_t k = 0; k < 5000; ++k) {
    ASSERT_TRUE(table.Insert(k, k * 2).ok());
  }
  EXPECT_EQ(table.size(), 5000u);
  EXPECT_GT(table.global_depth(), 2u);
  // Every key findable.
  for (uint64_t k = 0; k < 5000; k += 97) {
    auto vals = table.Lookup(k);
    ASSERT_TRUE(vals.ok());
    ASSERT_EQ(vals->size(), 1u) << k;
    EXPECT_EQ((*vals)[0], k * 2);
  }
}

TEST(ExtHashTest, DuplicateKeysUseOverflowChains) {
  Fixture f;
  ExtHashTable table(&f.pool);
  // One key with far more values than a bucket page holds (255 entries):
  // overflow chains must absorb them — no lock-escalation threshold.
  constexpr uint64_t kValues = 2000;
  for (uint64_t v = 0; v < kValues; ++v) {
    ASSERT_TRUE(table.Insert(7, v).ok());
  }
  auto vals = table.Lookup(7);
  ASSERT_TRUE(vals.ok());
  EXPECT_EQ(vals->size(), kValues);
  std::set<uint64_t> seen(vals->begin(), vals->end());
  EXPECT_EQ(seen.size(), kValues);
}

TEST(ExtHashTest, ForEachEarlyStop) {
  Fixture f;
  ExtHashTable table(&f.pool);
  for (uint64_t v = 0; v < 10; ++v) ASSERT_TRUE(table.Insert(1, v).ok());
  int count = 0;
  ASSERT_TRUE(table.ForEach(1, [&count](uint64_t) {
    return ++count < 3;
  }).ok());
  EXPECT_EQ(count, 3);
}

TEST(ExtHashTest, MixedWorkloadConsistency) {
  Fixture f;
  ExtHashTable table(&f.pool);
  std::map<uint64_t, std::multiset<uint64_t>> model;
  Rng rng(17);
  for (int i = 0; i < 8000; ++i) {
    const uint64_t key = rng.Uniform(200);
    const uint64_t value = rng.Uniform(50);
    if (rng.Bernoulli(0.7)) {
      ASSERT_TRUE(table.Insert(key, value).ok());
      model[key].insert(value);
    } else {
      const bool expect_found =
          model.count(key) != 0 && model[key].count(value) != 0;
      const Status s = table.Remove(key, value);
      EXPECT_EQ(s.ok(), expect_found) << key << "," << value;
      if (expect_found) model[key].erase(model[key].find(value));
    }
  }
  for (const auto& [key, values] : model) {
    auto vals = table.Lookup(key);
    ASSERT_TRUE(vals.ok());
    EXPECT_EQ(vals->size(), values.size()) << key;
  }
}

}  // namespace
}  // namespace hdb::storage
