// Parity + governor coverage for morsel-driven intra-query parallelism
// (paper §4.4, DESIGN.md §13, EXPERIMENTS C5).
//
//  * ParallelParity: the same SQL corpus executed serially and at
//    parallel.max_workers ∈ {2, 4, 8} must return exactly the same rows.
//    Queries without a top-level ORDER BY are compared as multisets
//    (exchange packet arrival order is nondeterministic by design);
//    ORDER BY queries are additionally checked to come back sorted.
//  * ParallelRevocation: a parallel statement is revoked mid-query —
//    memory pressure end-to-end (the group-by crew crosses Eq. (5) and
//    sheds workers at a morsel boundary), MPL pressure at the governor
//    level (real AdmissionGate tickets drain the allowance).
//  * ParallelismGovernorTest: PickWorkers/Reassess clamp rules.
//  * TaskMemoryConcurrency: the DESIGN.md §13 charge/release contract
//    hammered from many threads — the TSan regression for the shared
//    statement account (wired into check_metrics.sh --tsan).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "exec/admission_gate.h"
#include "exec/memory_governor.h"
#include "exec/parallel_governor.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace hdb {
namespace {

using engine::Connection;
using engine::Database;
using engine::DatabaseOptions;
using engine::QueryResult;

struct Db {
  explicit Db(DatabaseOptions opts = {}) {
    auto db = Database::Open(std::move(opts));
    EXPECT_TRUE(db.ok());
    database = std::move(*db);
    auto conn = database->Connect();
    EXPECT_TRUE(conn.ok());
    c = std::move(*conn);
  }

  QueryResult Exec(const std::string& sql) {
    auto r = c->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  std::unique_ptr<Database> database;
  std::unique_ptr<Connection> c;
};

// Deterministic LCG so every Database instance loads identical data.
struct Lcg {
  uint64_t s;
  explicit Lcg(uint64_t seed) : s(seed) {}
  uint32_t Next(uint32_t bound) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>((s >> 33) % bound);
  }
};

constexpr int kFactRows = 20000;

void LoadCorpusTables(Db& db) {
  db.Exec("CREATE TABLE fact (k INT NOT NULL, g INT NOT NULL, v INT, "
          "s VARCHAR(16))");
  db.Exec("CREATE TABLE dim (k INT NOT NULL, tag INT, name VARCHAR(16))");
  Lcg rng(99);
  std::string multi_insert;
  for (int i = 0; i < kFactRows; ++i) {
    const int k = static_cast<int>(rng.Next(500));
    const int g = static_cast<int>(rng.Next(23));
    const bool null_v = rng.Next(37) == 0;
    std::string row = "(" + std::to_string(k) + ", " + std::to_string(g) +
                      ", " +
                      (null_v ? "NULL" : std::to_string(rng.Next(1000))) +
                      ", 's" + std::to_string(rng.Next(40)) + "')";
    if (multi_insert.empty()) {
      multi_insert = "INSERT INTO fact VALUES " + row;
    } else {
      multi_insert += ", " + row;
    }
    if ((i + 1) % 500 == 0) {
      db.Exec(multi_insert);
      multi_insert.clear();
    }
  }
  for (int i = 0; i < 400; ++i) {
    db.Exec("INSERT INTO dim VALUES (" + std::to_string(i) + ", " +
            std::to_string(i % 9) + ", 'd" + std::to_string(i % 11) + "')");
  }
}

DatabaseOptions ParallelOptions(int max_workers) {
  DatabaseOptions opts;
  opts.parallel.max_workers = max_workers;
  // Small thresholds so the 20k-row corpus genuinely fans out.
  opts.parallel.rows_per_worker = 1024;
  opts.parallel.min_table_rows = 256;
  opts.parallel.morsel_rows = 512;
  return opts;
}

std::string RowKey(const std::vector<Value>& row) {
  std::string key;
  for (const auto& v : row) {
    key += v.is_null() ? std::string("<null>") : v.ToString();
    key += '\x01';
  }
  return key;
}

std::vector<std::string> Canonical(const QueryResult& r, bool ordered) {
  std::vector<std::string> keys;
  keys.reserve(r.rows.size());
  for (const auto& row : r.rows) keys.push_back(RowKey(row));
  // ORDER BY ties (and all unordered queries) are canonicalized by a
  // full-row sort; ordered queries assert the sort-key order separately.
  if (!ordered) std::sort(keys.begin(), keys.end());
  return keys;
}

struct CorpusQuery {
  const char* sql;
  bool ordered;         // top-level ORDER BY with a unique sort key
  bool expect_parallel; // must actually run a parallel pipeline at w>1
};

const CorpusQuery kCorpus[] = {
    // Scan / filter / project fragments.
    {"SELECT k, g, v FROM fact WHERE v > 500", false, true},
    {"SELECT k + g, v FROM fact WHERE k < 100 AND v IS NOT NULL", false,
     true},
    {"SELECT s FROM fact WHERE s LIKE 's1%'", false, true},
    // Hash join (build side dim, probe side fact) + residual filter.
    {"SELECT fact.k, dim.tag, fact.v FROM fact, dim "
     "WHERE fact.k = dim.k AND dim.tag < 4",
     false, true},
    {"SELECT fact.g, dim.name FROM fact, dim "
     "WHERE fact.k = dim.k AND fact.v > 900",
     false, true},
    // Hash group by: parallel pre-aggregation + ordered merge; the merge
    // emission order is deterministic, and with ORDER BY it is total.
    {"SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM fact GROUP BY g "
     "ORDER BY g",
     true, true},
    {"SELECT g, COUNT(v) FROM fact GROUP BY g HAVING COUNT(*) > 100",
     false, true},
    // Scalar aggregate (one group, empty key).
    {"SELECT COUNT(*), SUM(v), AVG(v) FROM fact WHERE g < 5", false, true},
    // Hash distinct over a projected fragment.
    {"SELECT DISTINCT g FROM fact", false, true},
    {"SELECT DISTINCT s FROM fact WHERE k < 50", false, true},
    // Sort above a parallel fragment (unique key k makes order total).
    {"SELECT k, SUM(v) FROM fact GROUP BY k ORDER BY k", true, true},
    // LIMIT without ORDER BY pins the fragment serial (which rows the
    // limit keeps must not depend on packet arrival order) — parity
    // still holds on the row count, checked specially below.
    {"SELECT g FROM fact WHERE g = 7 LIMIT 10", false, false},
    // Group-by under LIMIT stays parallel: merge emission order is
    // deterministic either way.
    {"SELECT g, COUNT(*) FROM fact GROUP BY g ORDER BY g LIMIT 5", true,
     true},
    // Small table: under min_table_rows, stays serial by seeding.
    {"SELECT tag, COUNT(*) FROM dim GROUP BY tag", false, false},
};

TEST(ParallelParity, CorpusMatchesSerialAtEveryWidth) {
  Db serial;  // defaults: max_workers = 1, exchange never built
  LoadCorpusTables(serial);

  std::vector<std::vector<std::string>> expected;
  std::vector<size_t> expected_rows;
  for (const auto& q : kCorpus) {
    QueryResult r = serial.Exec(q.sql);
    EXPECT_EQ(r.exec_stats.parallel_pipelines, 0u)
        << q.sql << ": serial run must not build exchange operators";
    expected_rows.push_back(r.rows.size());
    expected.push_back(Canonical(r, q.ordered));
  }

  for (const int workers : {2, 4, 8}) {
    SCOPED_TRACE("max_workers=" + std::to_string(workers));
    Db par(ParallelOptions(workers));
    LoadCorpusTables(par);
    for (size_t i = 0; i < std::size(kCorpus); ++i) {
      const auto& q = kCorpus[i];
      SCOPED_TRACE(q.sql);
      QueryResult r = par.Exec(q.sql);
      if (q.expect_parallel) {
        EXPECT_GT(r.exec_stats.parallel_pipelines, 0u);
        EXPECT_GE(r.exec_stats.parallel_workers_started, 2u);
        EXPECT_GT(r.exec_stats.parallel_morsels, 0u);
      } else {
        EXPECT_EQ(r.exec_stats.parallel_pipelines, 0u);
      }
      ASSERT_EQ(r.rows.size(), expected_rows[i]);
      // LIMIT-without-ORDER-BY keeps an arbitrary subset; only the
      // count is contractual (and it ran serial anyway — same rows).
      EXPECT_EQ(Canonical(r, q.ordered), expected[i]);
    }
  }
}

TEST(ParallelParity, ExplainAnalyzeReportsWorkers) {
  Db par(ParallelOptions(4));
  LoadCorpusTables(par);
  QueryResult r = par.Exec(
      "EXPLAIN ANALYZE SELECT g, COUNT(*) FROM fact GROUP BY g");
  EXPECT_NE(r.explain.find("workers="), std::string::npos) << r.explain;
  EXPECT_NE(r.explain.find("parallel<="), std::string::npos) << r.explain;
}

// Memory-pressure revocation end-to-end: a high-cardinality group by
// whose per-worker partial maps cross the statement's Eq. (5) soft limit
// mid-query. The governor must shed workers at a morsel boundary and the
// result must still be exact.
TEST(ParallelRevocation, MemoryPressureShedsWorkersMidQuery) {
  DatabaseOptions opts = ParallelOptions(4);
  // Tiny soft limit: Eq. (5) = pool pages / MPL. The group-by state
  // (20k distinct keys) crosses it long before the scan finishes.
  opts.memory_governor.multiprogramming_level = 64;
  Db db(opts);
  db.Exec("CREATE TABLE wide (k INT NOT NULL, v INT)");
  for (int chunk = 0; chunk < 20; ++chunk) {
    std::string sql;
    for (int i = 0; i < 1000; ++i) {
      const int k = chunk * 1000 + i;
      sql += (sql.empty() ? "INSERT INTO wide VALUES " : ", ");
      sql += "(" + std::to_string(k) + ", " + std::to_string(k % 97) + ")";
    }
    db.Exec(sql);
  }

  QueryResult r =
      db.Exec("SELECT k, COUNT(*), SUM(v) FROM wide GROUP BY k");
  EXPECT_EQ(r.rows.size(), 20000u);
  EXPECT_GT(r.exec_stats.parallel_pipelines, 0u);
  EXPECT_GE(r.exec_stats.parallel_workers_started, 2u);
  EXPECT_GT(r.exec_stats.parallel_workers_revoked, 0u)
      << "soft-limit pressure never revoked a worker";
}

// MPL-pressure revocation against the real AdmissionGate: once queued
// statements appear (or the MPL slots fill), Reassess drops the pipeline
// target to 1 and PickWorkers grants no parallelism at all.
TEST(ParallelRevocation, MplPressureDrainsAllowance) {
  exec::MemoryGovernorOptions mopts;
  mopts.multiprogramming_level = 4;
  storage::DiskManager disk(storage::kDefaultPageBytes, nullptr, nullptr);
  storage::BufferPool pool(&disk, storage::BufferPoolOptions{.initial_frames = 64});
  exec::MemoryGovernor memory(&pool, mopts);
  exec::AdmissionGate gate(&memory);
  exec::ParallelExecOptions popts;
  popts.max_workers = 8;
  exec::ParallelismGovernor gov(&memory, &gate, popts);

  // Idle gate: the statement's own slot plus the three idle ones.
  auto t0 = gate.Admit();  // the parallel statement itself
  ASSERT_TRUE(t0.ok());
  EXPECT_EQ(gov.PickWorkers(8, 0), 4);

  auto pipeline = gov.StartPipeline(4);
  EXPECT_EQ(gov.Reassess(pipeline.get(), nullptr), 4);

  // Two more statements admitted mid-query: idle slots shrink, the
  // morsel-boundary reassessment revokes workers (monotonically).
  auto t1 = gate.Admit();
  auto t2 = gate.Admit();
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(gov.Reassess(pipeline.get(), nullptr), 2);
  EXPECT_EQ(pipeline->target.load(), 2);

  // Fill the gate and queue a waiter: allowance collapses to 1 — queued
  // statements own the slots extra workers would consume.
  auto t3 = gate.Admit();
  ASSERT_TRUE(t3.ok());
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    auto t = gate.Admit();  // blocks: gate full at MPL 4
    admitted.store(true);
  });
  while (gate.stats().waiting == 0) std::this_thread::yield();
  EXPECT_EQ(gov.Reassess(pipeline.get(), nullptr), 1);
  EXPECT_EQ(gov.PickWorkers(8, 0), 1);
  t0->Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());

  // Revocation is one-way: pressure easing never re-grows the pipeline.
  t1->Release();
  t2->Release();
  t3->Release();
  EXPECT_EQ(gov.Reassess(pipeline.get(), nullptr), 1);
}

TEST(ParallelismGovernorTest, PickWorkersClampsRequestAndMemory) {
  exec::MemoryGovernorOptions mopts;
  mopts.multiprogramming_level = 16;
  storage::DiskManager disk(storage::kDefaultPageBytes, nullptr, nullptr);
  storage::BufferPool pool(&disk, storage::BufferPoolOptions{.initial_frames = 64});
  exec::MemoryGovernor memory(&pool, mopts);
  exec::ParallelExecOptions popts;
  popts.max_workers = 4;
  exec::ParallelismGovernor gov(&memory, /*gate=*/nullptr, popts);

  EXPECT_EQ(gov.PickWorkers(0, 0), 1);
  EXPECT_EQ(gov.PickWorkers(1, 0), 1);
  EXPECT_EQ(gov.PickWorkers(3, 0), 3);
  EXPECT_EQ(gov.PickWorkers(100, 0), 4);  // max_workers cap

  // Memory clamp: each worker share must fit Eq. (5) up front. Soft
  // limit here is pool/MPL = 64/16 = 4 pages.
  EXPECT_EQ(gov.PickWorkers(4, /*per_worker_quota_pages=*/2), 2);
  EXPECT_EQ(gov.PickWorkers(4, /*per_worker_quota_pages=*/8), 1);
  EXPECT_EQ(gov.PickWorkers(4, /*per_worker_quota_pages=*/1), 4);
}

TEST(ParallelismGovernorTest, ReassessRevokesOnMemoryPressure) {
  exec::MemoryGovernorOptions mopts;
  mopts.multiprogramming_level = 8;
  storage::DiskManager disk(storage::kDefaultPageBytes, nullptr, nullptr);
  storage::BufferPool pool(&disk, storage::BufferPoolOptions{.initial_frames = 64});
  exec::MemoryGovernor memory(&pool, mopts);
  exec::ParallelExecOptions popts;
  popts.max_workers = 8;
  exec::ParallelismGovernor gov(&memory, nullptr, popts);

  auto task = memory.BeginTask();
  auto pipeline = gov.StartPipeline(4);
  EXPECT_EQ(gov.Reassess(pipeline.get(), task.get()), 4);

  // Push the statement over Eq. (5): soft limit is 64/8 = 8 pages.
  ASSERT_TRUE(task->ChargeBytes(9 * storage::kDefaultPageBytes).ok());
  ASSERT_TRUE(task->over_soft_limit());
  EXPECT_EQ(gov.Reassess(pipeline.get(), task.get()), 1);

  // Releasing the memory does not re-grow the pipeline (one-way).
  task->ReleaseBytes(9 * storage::kDefaultPageBytes);
  EXPECT_EQ(gov.Reassess(pipeline.get(), task.get()), 1);
}

// The DESIGN.md §13 concurrency contract on the shared statement
// account: worker charges, releases, and soft-limit polls from many
// threads while the coordinator charges through the spill path. Run
// under TSan via check_metrics.sh --tsan; the invariant checked here is
// exact conservation of the account.
TEST(TaskMemoryConcurrency, ConcurrentChargersConserveAccount) {
  exec::MemoryGovernorOptions mopts;
  mopts.multiprogramming_level = 2;
  storage::DiskManager disk(storage::kDefaultPageBytes, nullptr, nullptr);
  storage::BufferPool pool(&disk,
                           storage::BufferPoolOptions{.initial_frames = 1024});
  exec::MemoryGovernor memory(&pool, mopts);
  auto task = memory.BeginTask();

  constexpr int kThreads = 8;
  constexpr int kRounds = 2000;
  std::atomic<uint64_t> kills{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&task, &kills, t] {
      for (int i = 0; i < kRounds; ++i) {
        const uint64_t bytes = 64 + static_cast<uint64_t>((t * 37 + i) % 512);
        Status s = task->ChargeBytesFromWorker(bytes);
        if (!s.ok()) {
          // Eq. (4) kill is an acceptable outcome under contention; the
          // charge was not applied, so nothing to release.
          kills.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (i % 3 == 0) (void)task->over_soft_limit();
        task->ReleaseBytes(bytes);
      }
    });
  }
  // Coordinator-side traffic through the spill-scheduler entry point.
  for (int i = 0; i < 200; ++i) {
    const uint64_t bytes = 4096;
    if (task->ChargeBytes(bytes).ok()) {
      task->ReleaseBytes(bytes);
    }
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(task->bytes_charged(), 0u)
      << "account must balance exactly after all charges are released "
         "(kills observed: "
      << kills.load() << ")";
}

}  // namespace
}  // namespace hdb
