// Process-level smoke test: fork a real server process, talk to it over
// TCP with the Client, then SIGTERM it and verify the graceful drain —
// the same lifecycle scripts/check_metrics.sh and operators exercise.
// The child builds its database *after* fork (no inherited threads) and
// reports through its exit code; the parent owns all the assertions.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "engine/database.h"
#include "net/client.h"
#include "net/server.h"

namespace hdb {
namespace {

net::Server* g_server = nullptr;

void HandleTerm(int) {
  // RequestShutdown is async-signal-safe: one eventfd write.
  if (g_server != nullptr) g_server->RequestShutdown();
}

/// Child: open a database, serve it, write the port to `port_pipe_wr`,
/// then wait for the SIGTERM-initiated drain. Exit codes name the
/// failure stage for the parent's diagnostics.
int RunServerChild(int port_pipe_wr) {
  auto db = engine::Database::Open();
  if (!db.ok()) return 10;
  auto conn = (*db)->Connect();
  if (!conn.ok()) return 11;
  if (!(*conn)->Execute("CREATE TABLE t (a INT, b VARCHAR)").ok()) return 12;
  if (!(*conn)->Execute("INSERT INTO t VALUES (1, 'smoke')").ok()) return 13;

  net::ServerOptions so;
  so.workers = 2;
  so.drain_timeout_ms = 3000;
  auto server = net::Server::Start(db->get(), so);
  if (!server.ok()) return 14;
  g_server = server->get();

  struct sigaction sa {};
  sa.sa_handler = HandleTerm;
  sigaction(SIGTERM, &sa, nullptr);

  const uint16_t port = (*server)->port();
  if (write(port_pipe_wr, &port, sizeof(port)) != sizeof(port)) return 15;
  close(port_pipe_wr);

  // Wait (bounded) for the drain the signal handler kicks off.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!(*server)->finished() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (!(*server)->finished()) return 16;
  g_server = nullptr;
  (*server)->Stop();
  server->reset();
  conn->reset();
  db->reset();
  return 0;
}

TEST(NetSmokeTest, ServerProcessServesQueriesAndDrainsOnSigterm) {
  int port_pipe[2];
  ASSERT_EQ(pipe(port_pipe), 0);

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    close(port_pipe[0]);
    _exit(RunServerChild(port_pipe[1]));
  }
  close(port_pipe[1]);

  uint16_t port = 0;
  ASSERT_EQ(read(port_pipe[0], &port, sizeof(port)),
            static_cast<ssize_t>(sizeof(port)));
  close(port_pipe[0]);
  ASSERT_GT(port, 0);

  // Real client, real socket, across a process boundary.
  net::ClientOptions co;
  co.recv_timeout_ms = 10'000;
  auto client_or = net::Client::Connect("127.0.0.1", port, co);
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  std::unique_ptr<net::Client> client = std::move(*client_or);

  auto r = client->Query("SELECT a, b FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 1);
  EXPECT_EQ(r->rows[0][1].AsString(), "smoke");

  auto prep = client->Prepare("SELECT b FROM t WHERE a = ?");
  ASSERT_TRUE(prep.ok());
  ASSERT_TRUE(client->Bind(prep->stmt_id, {Value::Int(1)}).ok());
  auto pr = client->ExecutePrepared(prep->stmt_id);
  ASSERT_TRUE(pr.ok()) << pr.status().ToString();
  ASSERT_EQ(pr->rows.size(), 1u);
  EXPECT_EQ(pr->rows[0][0].AsString(), "smoke");

  // SIGTERM: the server drains; the idle client gets a goodbye (or the
  // close) instead of a hang.
  ASSERT_EQ(kill(child, SIGTERM), 0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool disconnected = false;
  while (!disconnected && std::chrono::steady_clock::now() < deadline) {
    if (!client->Ping().ok()) disconnected = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(disconnected) << "server never dropped the client after SIGTERM";

  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status)) << "child did not exit cleanly";
  EXPECT_EQ(WEXITSTATUS(status), 0) << "child failure stage "
                                    << WEXITSTATUS(status);
}

TEST(NetSmokeTest, SigtermWhileStatementsAreInFlightStillDrains) {
  int port_pipe[2];
  ASSERT_EQ(pipe(port_pipe), 0);
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    close(port_pipe[0]);
    _exit(RunServerChild(port_pipe[1]));
  }
  close(port_pipe[1]);

  uint16_t port = 0;
  ASSERT_EQ(read(port_pipe[0], &port, sizeof(port)),
            static_cast<ssize_t>(sizeof(port)));
  close(port_pipe[0]);

  net::ClientOptions co;
  co.recv_timeout_ms = 15'000;
  auto busy_or = net::Client::Connect("127.0.0.1", port, co);
  ASSERT_TRUE(busy_or.ok());
  std::unique_ptr<net::Client> busy = std::move(*busy_or);

  // Keep statements flowing while the SIGTERM lands; after the drain
  // starts every outcome is acceptable except a hang.
  std::thread churner([&busy] {
    for (int i = 0; i < 10'000; ++i) {
      auto r = busy->Query("INSERT INTO t VALUES (2, 'churn')");
      if (!r.ok()) return;  // goodbye / closed — drain reached us
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(kill(child, SIGTERM), 0);
  churner.join();

  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << "child failure stage "
                                    << WEXITSTATUS(status);
}

}  // namespace
}  // namespace hdb
