// Holistic integration tests: the paper's thesis is that the
// self-management mechanisms work *in concert*. These scenarios wire
// several of them together end to end.
#include <gtest/gtest.h>

#include "engine/database.h"
#include "exec/executor.h"
#include "exec/memory_governor.h"
#include "optimizer/optimizer.h"

namespace hdb {
namespace {

constexpr uint64_t kMB = 1ull << 20;

struct Db {
  explicit Db(engine::DatabaseOptions opts = {}) {
    auto db = engine::Database::Open(opts);
    EXPECT_TRUE(db.ok());
    database = std::move(*db);
    auto conn = database->Connect();
    EXPECT_TRUE(conn.ok());
    c = std::move(*conn);
  }
  engine::QueryResult Exec(const std::string& sql) {
    auto r = c->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    return r.ok() ? *r : engine::QueryResult{};
  }
  std::unique_ptr<engine::Database> database;
  std::unique_ptr<engine::Connection> c;
};

TEST(IntegrationTest, PoolGovernorRespondsToWorkloadOverTime) {
  engine::DatabaseOptions opts;
  opts.initial_pool_frames = 512;  // 2 MB
  opts.physical_memory_bytes = 96 * kMB;
  opts.pool_governor.min_bytes = 1 * kMB;
  opts.pool_governor.max_bytes = 48 * kMB;
  Db db(opts);

  // Build a database big enough that Eq. (1) is not the binding limit.
  db.Exec("CREATE TABLE t (k INT, pad VARCHAR(200))");
  std::vector<table::Row> rows;
  for (int i = 0; i < 40000; ++i) {
    rows.push_back({Value::Int(i % 1000), Value::String(std::string(180, 'p'))});
  }
  ASSERT_TRUE(db.database->LoadTable("t", rows).ok());

  const uint64_t before = db.database->pool().CurrentBytes();
  // Query activity (buffer misses) + time passing => the governor grows
  // the pool into free memory.
  for (int round = 0; round < 6; ++round) {
    db.Exec("SELECT COUNT(*) FROM t WHERE k < 500");
    db.database->Tick(25 * 1000 * 1000);  // 25 virtual seconds
  }
  const uint64_t grown = db.database->pool().CurrentBytes();
  EXPECT_GT(grown, before);

  // A competing application appears; subsequent polls shrink the pool.
  db.database->memory_env().SetAllocation("browser", 85 * kMB);
  for (int round = 0; round < 10; ++round) {
    db.database->Tick(61 * 1000 * 1000);
  }
  EXPECT_LT(db.database->pool().CurrentBytes(), grown);
}

TEST(IntegrationTest, TwentyWayStarJoinExecutesCorrectly) {
  Db db;
  // A hub table joined to 19 dimension tables.
  std::string hub_cols = "id INT NOT NULL";
  for (int d = 0; d < 19; ++d) {
    hub_cols += ", d" + std::to_string(d) + " INT";
  }
  db.Exec("CREATE TABLE hub (" + hub_cols + ")");
  for (int d = 0; d < 19; ++d) {
    const std::string t = "dim" + std::to_string(d);
    db.Exec("CREATE TABLE " + t + " (id INT NOT NULL, v INT)");
    for (int i = 0; i < 5; ++i) {
      db.Exec("INSERT INTO " + t + " VALUES (" + std::to_string(i) + ", " +
              std::to_string(i * 10) + ")");
    }
  }
  for (int i = 0; i < 40; ++i) {
    std::string vals = std::to_string(i);
    for (int d = 0; d < 19; ++d) vals += ", " + std::to_string((i + d) % 5);
    db.Exec("INSERT INTO hub VALUES (" + vals + ")");
  }
  std::string sql = "SELECT COUNT(*) FROM hub";
  for (int d = 0; d < 19; ++d) {
    const std::string t = "dim" + std::to_string(d);
    sql += ", " + t;
  }
  sql += " WHERE ";
  for (int d = 0; d < 19; ++d) {
    if (d > 0) sql += " AND ";
    sql += "hub.d" + std::to_string(d) + " = dim" + std::to_string(d) + ".id";
  }
  auto r = db.Exec(sql);
  ASSERT_EQ(r.rows.size(), 1u);
  // Every hub row joins exactly one row in each dimension.
  EXPECT_EQ(r.rows[0][0].AsInt(), 40);
  EXPECT_GT(r.diag.enumeration.nodes_visited, 0u);
}

TEST(IntegrationTest, MemoryGovernorDegradesGroupByGracefully) {
  engine::DatabaseOptions opts;
  opts.initial_pool_frames = 256;
  opts.memory_governor.multiprogramming_level = 64;  // soft limit: 4 pages
  Db db(opts);
  db.Exec("CREATE TABLE t (g INT, v INT)");
  std::vector<table::Row> rows;
  for (int i = 0; i < 20000; ++i) {
    rows.push_back({Value::Int(i), Value::Int(1)});  // 20k distinct groups
  }
  ASSERT_TRUE(db.database->LoadTable("t", rows).ok());
  auto r = db.Exec("SELECT g, COUNT(*) FROM t GROUP BY g");
  EXPECT_EQ(r.rows.size(), 20000u);
  // The low-memory fallback must have engaged (paper §4.3).
  EXPECT_TRUE(r.exec_stats.group_by_used_fallback);
}

TEST(IntegrationTest, HashJoinSpillsAndStaysCorrect) {
  engine::DatabaseOptions opts;
  opts.initial_pool_frames = 256;
  opts.memory_governor.multiprogramming_level = 64;
  Db db(opts);
  db.Exec("CREATE TABLE build_side (k INT, pad VARCHAR(60))");
  db.Exec("CREATE TABLE probe_side (k INT)");
  std::vector<table::Row> build_rows, probe_rows;
  for (int i = 0; i < 8000; ++i) {
    build_rows.push_back({Value::Int(i), Value::String(std::string(50, 'b'))});
  }
  for (int i = 0; i < 4000; ++i) {
    probe_rows.push_back({Value::Int(i * 2)});
  }
  ASSERT_TRUE(db.database->LoadTable("build_side", build_rows).ok());
  ASSERT_TRUE(db.database->LoadTable("probe_side", probe_rows).ok());
  auto r = db.Exec(
      "SELECT COUNT(*) FROM probe_side JOIN build_side ON probe_side.k = "
      "build_side.k");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 4000);
  EXPECT_GT(r.exec_stats.hash_partitions_evicted, 0u);
}

TEST(IntegrationTest, SortSpillsExternallyAndStaysSorted) {
  engine::DatabaseOptions opts;
  opts.initial_pool_frames = 256;
  opts.memory_governor.multiprogramming_level = 64;
  Db db(opts);
  db.Exec("CREATE TABLE t (k INT, pad VARCHAR(60))");
  std::vector<table::Row> rows;
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    rows.push_back({Value::Int(static_cast<int32_t>(rng.Uniform(1000000))),
                    Value::String(std::string(50, 's'))});
  }
  ASSERT_TRUE(db.database->LoadTable("t", rows).ok());
  auto r = db.Exec("SELECT k FROM t ORDER BY k");
  ASSERT_EQ(r.rows.size(), 10000u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    ASSERT_LE(r.rows[i - 1][0].AsInt(), r.rows[i][0].AsInt());
  }
  EXPECT_GT(r.exec_stats.sort_runs_spilled, 0u);
}

TEST(IntegrationTest, AdaptiveHashJoinSwitchesToIndexNl) {
  Db db;
  db.Exec("CREATE TABLE big (k INT NOT NULL, v INT)");
  db.Exec("CREATE TABLE tiny (k INT NOT NULL)");
  std::vector<table::Row> big_rows;
  for (int i = 0; i < 20000; ++i) {
    big_rows.push_back({Value::Int(i), Value::Int(i)});
  }
  ASSERT_TRUE(db.database->LoadTable("big", big_rows).ok());
  db.Exec("CREATE INDEX big_k ON big (k)");
  // Mislead the optimizer: stats say tiny is big-ish, then delete rows
  // without stats-aware DML noticing enough.
  for (int i = 0; i < 200; ++i) {
    db.Exec("INSERT INTO tiny VALUES (" + std::to_string(i) + ")");
  }
  db.Exec("CREATE STATISTICS tiny");
  db.Exec("DELETE FROM tiny WHERE k >= 3");

  auto r = db.Exec(
      "SELECT COUNT(*) FROM big JOIN tiny ON big.k = tiny.k");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  // Whether or not the alternate fired depends on costing; the result must
  // be correct either way, and the plumbing must at least have annotated.
}

TEST(IntegrationTest, FeedbackLoopImprovesARepeatedQuerysEstimate) {
  Db db;
  db.Exec("CREATE TABLE t (k INT)");
  std::vector<table::Row> rows;
  for (int i = 0; i < 2000; ++i) rows.push_back({Value::Int(i % 100)});
  ASSERT_TRUE(db.database->LoadTable("t", rows).ok());
  const uint32_t oid = db.database->catalog().GetTable("t").value()->oid;

  // Skew the data after stats were built: k=5 becomes dominant.
  for (int i = 0; i < 3000; ++i) rows.clear();
  std::vector<table::Row> skew;
  for (int i = 0; i < 3000; ++i) skew.push_back({Value::Int(5)});
  // Insert without rebuilding stats (plain DML path maintains counts but
  // bucket shapes drift).
  for (int i = 0; i < 30; ++i) {
    db.Exec("INSERT INTO t VALUES (5), (5), (5), (5), (5), (5), (5), (5), "
            "(5), (5)");
  }
  const double before = db.database->stats().SelEquals(oid, 0, Value::Int(5));
  for (int i = 0; i < 4; ++i) db.Exec("SELECT COUNT(*) FROM t WHERE k = 5");
  const double after = db.database->stats().SelEquals(oid, 0, Value::Int(5));
  const double truth = 320.0 / 2300.0;
  EXPECT_LT(std::abs(after - truth), std::abs(before - truth) + 0.02);
  EXPECT_NEAR(after, truth, 0.05);
}

TEST(IntegrationTest, ZeroAdministrationLifecycle) {
  // The paper's embedding story: open, work, disconnect; a second
  // connection sees the data; statistics and governors need no setup.
  auto db = engine::Database::Open();
  ASSERT_TRUE(db.ok());
  {
    auto conn = (*db)->Connect();
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE((*conn)->Execute("CREATE TABLE kv (k INT, v VARCHAR(20))").ok());
    ASSERT_TRUE(
        (*conn)->Execute("INSERT INTO kv VALUES (1, 'one'), (2, 'two')").ok());
  }
  EXPECT_EQ((*db)->connection_count(), 0);
  auto conn2 = (*db)->Connect();
  ASSERT_TRUE(conn2.ok());
  auto r = (*conn2)->Execute("SELECT v FROM kv WHERE k = 2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "two");
}

TEST(IntegrationTest, FailedLoadTableRollsBackPartialRows) {
  Db db;
  db.Exec("CREATE TABLE t (k INT, v VARCHAR(10))");
  db.Exec("CREATE INDEX t_k ON t (k)");
  // Third row has the wrong arity, so the bulk load fails after two rows
  // have already landed in the heap and the index.
  std::vector<table::Row> rows;
  rows.push_back({Value::Int(1), Value::String("a")});
  rows.push_back({Value::Int(2), Value::String("b")});
  rows.push_back({Value::Int(3)});
  const Status st = db.database->LoadTable("t", rows);
  ASSERT_FALSE(st.ok());
  // The partial rows must be rolled back, both in the heap scan and
  // through the index.
  auto r = db.Exec("SELECT COUNT(*) FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  r = db.Exec("SELECT COUNT(*) FROM t WHERE k = 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  // The table stays usable afterwards.
  db.Exec("INSERT INTO t VALUES (7, 'x')");
  r = db.Exec("SELECT COUNT(*) FROM t");
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
}

TEST(IntegrationTest, FlashDeviceChangesCostModelAfterCalibration) {
  engine::DatabaseOptions opts;
  opts.device = engine::DeviceKind::kFlash;
  Db db(opts);
  ASSERT_TRUE(db.c->Execute("CALIBRATE DATABASE").ok());
  const auto& model = db.database->catalog().dtt_model();
  // Flash: flat random-access curve (Figure 3 shape).
  const double small = model.MicrosPerPage(os::DttOp::kRead, 4096, 2);
  const double large = model.MicrosPerPage(os::DttOp::kRead, 4096, 100000);
  EXPECT_NEAR(small, large, small * 0.25);
}

}  // namespace
}  // namespace hdb
