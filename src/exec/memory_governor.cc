#include "exec/memory_governor.h"

#include <algorithm>
#include <string>

#include "obs/metric_names.h"
#include "obs/trace.h"

namespace hdb::exec {

MemoryGovernor::MemoryGovernor(storage::BufferPool* pool,
                               MemoryGovernorOptions options)
    : pool_(pool), options_(options), mpl_(options.multiprogramming_level) {}

std::unique_ptr<TaskMemoryContext> MemoryGovernor::BeginTask() {
  return std::make_unique<TaskMemoryContext>(this);
}

uint64_t MemoryGovernor::HardLimitPages() const {
  const uint64_t active =
      std::max<uint64_t>(1, active_.load(std::memory_order_relaxed));
  return static_cast<uint64_t>(options_.hard_limit_factor *
                               static_cast<double>(options_.max_pool_pages)) /
         active;
}

uint64_t MemoryGovernor::SoftLimitPages() const {
  const int mpl = std::max(1, mpl_.load(std::memory_order_relaxed));
  return std::max<uint64_t>(1, pool_->CurrentFrames() /
                                   static_cast<uint64_t>(mpl));
}

uint64_t MemoryGovernor::PredictedSoftLimitPages() const {
  return SoftLimitPages();
}

void MemoryGovernor::SetMultiprogrammingLevel(int mpl) {
  mpl_.store(std::max(1, mpl), std::memory_order_relaxed);
}

int MemoryGovernor::multiprogramming_level() const {
  return mpl_.load(std::memory_order_relaxed);
}

void MemoryGovernor::AttachTelemetry(obs::MetricsRegistry* registry,
                                     obs::DecisionLog* decisions,
                                     os::VirtualClock* clock) {
  if (registry != nullptr) {
    reclamations_counter_ = registry->RegisterCounter(obs::kMemReclamations);
    reclaimed_pages_counter_ =
        registry->RegisterCounter(obs::kMemReclaimedPages);
    kills_counter_ = registry->RegisterCounter(obs::kMemHardLimitKills);
    registry->RegisterCallback(obs::kMemActiveTasks, [this] {
      return static_cast<double>(active_requests());
    });
    registry->RegisterCallback(obs::kMemSoftLimitPages, [this] {
      return static_cast<double>(SoftLimitPages());
    });
    registry->RegisterCallback(obs::kMemHardLimitPages, [this] {
      return static_cast<double>(HardLimitPages());
    });
    registry->RegisterCallback(obs::kMplCurrent, [this] {
      return static_cast<double>(multiprogramming_level());
    });
  }
  decisions_ = decisions;
  telemetry_clock_ = clock;
}

TaskMemoryContext::TaskMemoryContext(MemoryGovernor* governor)
    : governor_(governor) {
  governor_->active_.fetch_add(1, std::memory_order_relaxed);
}

TaskMemoryContext::~TaskMemoryContext() {
  governor_->active_.fetch_sub(1, std::memory_order_relaxed);
}

uint64_t TaskMemoryContext::pages_charged() const {
  LockGuard lock(mu_);
  return (bytes_ + governor_->pool()->page_bytes() - 1) /
         governor_->pool()->page_bytes();
}

Status TaskMemoryContext::RunSpillSchedulerLocked() {
  const uint64_t page_bytes = governor_->pool()->page_bytes();
  const uint64_t soft = governor_->SoftLimitPages();
  uint64_t pages = (bytes_ + page_bytes - 1) / page_bytes;
  if (pages <= soft) return Status::OK();
  ++reclamations_;
  if (governor_->reclamations_counter_ != nullptr) {
    governor_->reclamations_counter_->Add();
  }
  uint64_t freed_total_pages = 0;
  // Victims that answered 0 this pass: not asked again until the next
  // soft-limit crossing (their state may have changed by then).
  std::vector<const MemoryConsumer*> exhausted;
  for (;;) {
    pages = (bytes_ + page_bytes - 1) / page_bytes;
    if (pages <= soft) break;
    const uint64_t deficit_bytes = (pages - soft) * page_bytes;
    // Cheapest victim across the whole plan: min respill cost, ties to
    // the higher (consumer-side) operator, then to the larger holding —
    // producers below keep their memory unless they are genuinely the
    // cheapest to restart (paper §4.3's starvation rule, generalized).
    MemoryConsumer* victim = nullptr;
    SpillableStats victim_stats;
    for (MemoryConsumer* c : consumers_) {
      if (std::find(exhausted.begin(), exhausted.end(), c) !=
          exhausted.end()) {
        continue;
      }
      const SpillableStats s = c->SpillStats();
      if (s.spillable_bytes == 0) continue;
      const bool better =
          victim == nullptr || s.respill_cost < victim_stats.respill_cost ||
          (s.respill_cost == victim_stats.respill_cost &&
           (c->plan_level > victim->plan_level ||
            (c->plan_level == victim->plan_level &&
             s.spillable_bytes > victim_stats.spillable_bytes)));
      if (better) {
        victim = c;
        victim_stats = s;
      }
    }
    if (victim == nullptr) break;  // nothing left to spill
    const uint64_t ask =
        std::min<uint64_t>(deficit_bytes, victim_stats.spillable_bytes);
    const Result<uint64_t> released = [&] {
      // The forced-spill decision is a span on the statement's trace; the
      // per-tuple write time underneath accumulates as wait.spill_write.
      obs::ScopedSpan spill_span(obs::kSpanSpill, victim->name);
      return victim->SpillSome(ask);
    }();
    if (!released.ok()) {
      // The error channel: a failed spill write aborts the charging
      // statement instead of being dropped inside a callback.
      return released.status();
    }
    if (*released == 0) {
      exhausted.push_back(victim);
      continue;
    }
    ++spill_decisions_;
    bytes_ -= std::min(bytes_, *released);
    const uint64_t freed_pages = (*released + page_bytes - 1) / page_bytes;
    reclaimed_pages_ += freed_pages;
    freed_total_pages += freed_pages;
    if (governor_->decisions_ != nullptr) {
      const int64_t now = governor_->telemetry_clock_ != nullptr
                              ? governor_->telemetry_clock_->NowMicros()
                              : 0;
      governor_->decisions_->Record(
          now, "memory", "spill",
          std::string("soft_limit_exceeded victim=") + victim->name +
              " level=" + std::to_string(victim->plan_level) + " cost=" +
              std::to_string(victim_stats.respill_cost),
          static_cast<double>(deficit_bytes),
          static_cast<double>(*released));
    }
  }
  if (governor_->reclaimed_pages_counter_ != nullptr &&
      freed_total_pages > 0) {
    governor_->reclaimed_pages_counter_->Add(freed_total_pages);
  }
  return Status::OK();
}

Status TaskMemoryContext::ChargeBytes(uint64_t bytes) {
  LockGuard lock(mu_);
  const uint64_t page_bytes = governor_->pool()->page_bytes();
  bytes_ += bytes;
  const uint64_t pages = (bytes_ + page_bytes - 1) / page_bytes;
  if (pages > governor_->HardLimitPages()) {
    // Attempt spilling first; the hard limit only kills when the task
    // genuinely cannot fit.
    const Status spilled = RunSpillSchedulerLocked();
    if (!spilled.ok()) {
      bytes_ -= std::min(bytes_, bytes);
      return spilled;
    }
    const uint64_t after = (bytes_ + page_bytes - 1) / page_bytes;
    if (after > governor_->HardLimitPages()) {
      bytes_ -= std::min(bytes_, bytes);
      if (governor_->kills_counter_ != nullptr) {
        governor_->kills_counter_->Add();
      }
      if (governor_->decisions_ != nullptr) {
        const int64_t now = governor_->telemetry_clock_ != nullptr
                                ? governor_->telemetry_clock_->NowMicros()
                                : 0;
        governor_->decisions_->Record(
            now, "memory", "kill", "hard_limit_exceeded",
            static_cast<double>(after),
            static_cast<double>(governor_->HardLimitPages()));
      }
      return Status::ResourceExhausted(
          "statement exceeded its hard memory limit (Eq. 4)");
    }
    return Status::OK();
  }
  if (pages > governor_->SoftLimitPages()) {
    const Status spilled = RunSpillSchedulerLocked();
    if (!spilled.ok()) {
      bytes_ -= std::min(bytes_, bytes);
      return spilled;
    }
  }
  return Status::OK();
}

Status TaskMemoryContext::ChargeBytesFromWorker(uint64_t bytes) {
  LockGuard lock(mu_);
  const uint64_t page_bytes = governor_->pool()->page_bytes();
  bytes_ += bytes;
  const uint64_t pages = (bytes_ + page_bytes - 1) / page_bytes;
  if (pages > governor_->HardLimitPages()) {
    bytes_ -= std::min(bytes_, bytes);
    if (governor_->kills_counter_ != nullptr) {
      governor_->kills_counter_->Add();
    }
    if (governor_->decisions_ != nullptr) {
      const int64_t now = governor_->telemetry_clock_ != nullptr
                              ? governor_->telemetry_clock_->NowMicros()
                              : 0;
      governor_->decisions_->Record(
          now, "memory", "kill", "hard_limit_exceeded_parallel_worker",
          static_cast<double>(pages),
          static_cast<double>(governor_->HardLimitPages()));
    }
    return Status::ResourceExhausted(
        "statement exceeded its hard memory limit (Eq. 4)");
  }
  return Status::OK();
}

bool TaskMemoryContext::over_soft_limit() const {
  LockGuard lock(mu_);
  const uint64_t page_bytes = governor_->pool()->page_bytes();
  return (bytes_ + page_bytes - 1) / page_bytes > governor_->SoftLimitPages();
}

void TaskMemoryContext::ReleaseBytes(uint64_t bytes) {
  LockGuard lock(mu_);
  bytes_ = bytes_ > bytes ? bytes_ - bytes : 0;
}

void TaskMemoryContext::RegisterConsumer(MemoryConsumer* c) {
  LockGuard lock(mu_);
  consumers_.push_back(c);
}

void TaskMemoryContext::UnregisterConsumer(MemoryConsumer* c) {
  LockGuard lock(mu_);
  std::erase(consumers_, c);
}

}  // namespace hdb::exec
