#include "exec/memory_governor.h"

#include <algorithm>

namespace hdb::exec {

MemoryGovernor::MemoryGovernor(storage::BufferPool* pool,
                               MemoryGovernorOptions options)
    : pool_(pool), options_(options), mpl_(options.multiprogramming_level) {}

std::unique_ptr<TaskMemoryContext> MemoryGovernor::BeginTask() {
  return std::make_unique<TaskMemoryContext>(this);
}

uint64_t MemoryGovernor::HardLimitPages() const {
  const uint64_t active =
      std::max<uint64_t>(1, active_.load(std::memory_order_relaxed));
  return static_cast<uint64_t>(options_.hard_limit_factor *
                               static_cast<double>(options_.max_pool_pages)) /
         active;
}

uint64_t MemoryGovernor::SoftLimitPages() const {
  const int mpl = std::max(1, mpl_.load(std::memory_order_relaxed));
  return std::max<uint64_t>(1, pool_->CurrentFrames() /
                                   static_cast<uint64_t>(mpl));
}

uint64_t MemoryGovernor::PredictedSoftLimitPages() const {
  return SoftLimitPages();
}

void MemoryGovernor::SetMultiprogrammingLevel(int mpl) {
  mpl_.store(std::max(1, mpl), std::memory_order_relaxed);
}

int MemoryGovernor::multiprogramming_level() const {
  return mpl_.load(std::memory_order_relaxed);
}

TaskMemoryContext::TaskMemoryContext(MemoryGovernor* governor)
    : governor_(governor) {
  governor_->active_.fetch_add(1, std::memory_order_relaxed);
}

TaskMemoryContext::~TaskMemoryContext() {
  governor_->active_.fetch_sub(1, std::memory_order_relaxed);
}

uint64_t TaskMemoryContext::pages_charged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return (bytes_ + governor_->pool()->page_bytes() - 1) /
         governor_->pool()->page_bytes();
}

void TaskMemoryContext::ReclaimLocked() {
  const uint64_t page_bytes = governor_->pool()->page_bytes();
  const uint64_t soft = governor_->SoftLimitPages();
  uint64_t pages = (bytes_ + page_bytes - 1) / page_bytes;
  if (pages <= soft) return;
  ++reclamations_;
  // Highest consumer first: prevents an input operator from being starved
  // by its consumer while letting each proceed with as much memory as
  // possible (paper §4.3).
  std::vector<MemoryConsumer*> order = consumers_;
  std::sort(order.begin(), order.end(),
            [](const MemoryConsumer* a, const MemoryConsumer* b) {
              return a->plan_level > b->plan_level;
            });
  for (MemoryConsumer* c : order) {
    pages = (bytes_ + page_bytes - 1) / page_bytes;
    if (pages <= soft) break;
    const size_t freed = c->ReleasePages(pages - soft);
    reclaimed_pages_ += freed;
    const uint64_t freed_bytes = static_cast<uint64_t>(freed) * page_bytes;
    bytes_ = bytes_ > freed_bytes ? bytes_ - freed_bytes : 0;
  }
}

Status TaskMemoryContext::ChargeBytes(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t page_bytes = governor_->pool()->page_bytes();
  bytes_ += bytes;
  const uint64_t pages = (bytes_ + page_bytes - 1) / page_bytes;
  if (pages > governor_->HardLimitPages()) {
    // Attempt reclamation first; the hard limit only kills when the task
    // genuinely cannot fit.
    ReclaimLocked();
    const uint64_t after = (bytes_ + page_bytes - 1) / page_bytes;
    if (after > governor_->HardLimitPages()) {
      bytes_ -= std::min(bytes_, bytes);
      return Status::ResourceExhausted(
          "statement exceeded its hard memory limit (Eq. 4)");
    }
    return Status::OK();
  }
  if (pages > governor_->SoftLimitPages()) ReclaimLocked();
  return Status::OK();
}

void TaskMemoryContext::ReleaseBytes(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  bytes_ = bytes_ > bytes ? bytes_ - bytes : 0;
}

void TaskMemoryContext::RegisterConsumer(MemoryConsumer* c) {
  std::lock_guard<std::mutex> lock(mu_);
  consumers_.push_back(c);
}

void TaskMemoryContext::UnregisterConsumer(MemoryConsumer* c) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase(consumers_, c);
}

}  // namespace hdb::exec
