#ifndef HDB_EXEC_MPL_CONTROLLER_H_
#define HDB_EXEC_MPL_CONTROLLER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "exec/memory_governor.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "os/virtual_clock.h"

#include "common/lock_rank.h"

namespace hdb::exec {

struct MplControllerOptions {
  int min_mpl = 2;
  int max_mpl = 64;
  int step = 2;
  int64_t interval_micros = 1000000;
  /// Relative throughput change below this is noise: hold position.
  double dead_band = 0.02;
};

/// Adaptive multiprogramming-level controller — one of the paper's §6
/// future-work items ("dynamically changing the server's multiprogramming
/// level in response to database workload"), implemented as an extension.
///
/// Hill-climbing on throughput: each control interval compares completed
/// requests per second against the previous interval; if throughput
/// improved, keep moving the MPL in the same direction, otherwise reverse.
/// The MPL feeds straight into the memory governor's Eq. (5) denominator.
///
/// Thread safety: OnRequestComplete is lock-free (relaxed counter) so
/// session threads never serialize on the controller's mutex just to
/// report completions; MaybeAdapt and history() take the mutex.
class MplController {
 public:
  using Options = MplControllerOptions;

  struct Sample {
    int64_t at_micros;
    int mpl;
    double throughput;  // completed requests per second
    int direction;
  };

  MplController(MemoryGovernor* governor, os::VirtualClock* clock,
                Options options = {});

  /// Report one completed request. Lock-free; callable from any thread.
  void OnRequestComplete();

  /// Runs one control step if the interval has elapsed. Returns true when
  /// an adaptation decision was made.
  bool MaybeAdapt();

  /// Snapshot of the decision trace (copied: concurrent adapts may append).
  std::vector<Sample> history() const;

  /// Wires the controller into the engine's telemetry (DESIGN.md §6):
  /// adaptation/MPL-change counters into `registry`, one Decision per
  /// control step into `decisions`.
  void AttachTelemetry(obs::MetricsRegistry* registry,
                       obs::DecisionLog* decisions);

 private:
  MemoryGovernor* governor_;
  os::VirtualClock* clock_;
  Options options_;

  /// Guards the control state and the history; the completion counter is
  /// a relaxed atomic so it can be bumped outside the mutex.
  mutable RankedMutex<LockRank::kMplController> mu_;
  std::atomic<int64_t> interval_start_;
  std::atomic<uint64_t> completed_in_interval_{0};
  double last_throughput_ GUARDED_BY(mu_) = -1;
  int direction_ GUARDED_BY(mu_) = +1;
  std::vector<Sample> history_ GUARDED_BY(mu_);

  // Telemetry (optional; null when not attached). Published under mu_ by
  // AttachTelemetry and only read inside MaybeAdapt's critical section.
  obs::Counter* adaptations_counter_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* changes_counter_ GUARDED_BY(mu_) = nullptr;
  obs::DecisionLog* decisions_ GUARDED_BY(mu_) = nullptr;
};

}  // namespace hdb::exec

#endif  // HDB_EXEC_MPL_CONTROLLER_H_
