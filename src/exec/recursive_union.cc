#include "exec/recursive_union.h"

#include <algorithm>
#include <cmath>

#include "exec/spill.h"

namespace hdb::exec {

RecursiveUnion::Strategy RecursiveUnion::Choose(size_t candidates,
                                                size_t history) const {
  if (options_.force.has_value()) return *options_.force;
  // Hash probing costs ~1 unit per candidate; sort-merge pays the sort on
  // the batch but streams the history without hashing overhead. With a
  // cheap per-probe constant the hash wins unless the batch dwarfs the
  // accumulated history (early, explosive iterations).
  const double hash_cost = static_cast<double>(candidates) * 1.0;
  const double sort_cost =
      candidates == 0
          ? 0
          : static_cast<double>(candidates) *
                    std::log2(static_cast<double>(candidates) + 2) * 0.25 +
                static_cast<double>(history) * 0.05;
  return sort_cost < hash_cost ? Strategy::kSortMerge : Strategy::kHashProbe;
}

Result<std::vector<RecursiveUnion::Row>> RecursiveUnion::Run(
    const std::vector<Row>& seed, const StepFn& step) {
  iterations_.clear();
  std::vector<Row> result;
  std::unordered_set<std::string> seen;      // hash-probe shared work
  std::vector<std::string> sorted_history;   // sort-merge shared work
  bool sorted_dirty = false;

  std::vector<Row> delta;
  // Seed iteration deduplicates too (UNION semantics).
  std::vector<Row> candidates = seed;
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    IterationInfo info;
    info.candidates = candidates.size();
    info.used = Choose(candidates.size(), result.size());

    delta.clear();
    if (info.used == Strategy::kHashProbe) {
      for (Row& row : candidates) {
        std::string key = EncodeValues(row);
        if (seen.insert(key).second) {
          sorted_dirty = true;
          delta.push_back(std::move(row));
        }
      }
    } else {
      // Sort-merge: sort candidate keys, merge against sorted history.
      if (sorted_dirty) {
        sorted_history.assign(seen.begin(), seen.end());
        std::sort(sorted_history.begin(), sorted_history.end());
        sorted_dirty = false;
      }
      std::vector<std::pair<std::string, size_t>> keyed;
      keyed.reserve(candidates.size());
      for (size_t i = 0; i < candidates.size(); ++i) {
        keyed.emplace_back(EncodeValues(candidates[i]), i);
      }
      std::sort(keyed.begin(), keyed.end());
      std::string prev;
      bool has_prev = false;
      for (const auto& [key, idx] : keyed) {
        if (has_prev && key == prev) continue;
        prev = key;
        has_prev = true;
        const bool in_history = std::binary_search(
            sorted_history.begin(), sorted_history.end(), key);
        if (!in_history) {
          seen.insert(key);
          sorted_dirty = true;
          delta.push_back(std::move(candidates[idx]));
        }
      }
    }

    info.new_rows = delta.size();
    iterations_.push_back(info);
    if (delta.empty()) break;
    for (const Row& r : delta) result.push_back(r);
    candidates = step(delta);
    if (candidates.empty()) {
      iterations_.push_back(IterationInfo{0, 0, info.used});
      break;
    }
  }
  return result;
}

}  // namespace hdb::exec
