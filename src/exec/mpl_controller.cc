#include "exec/mpl_controller.h"

#include <algorithm>
#include <cmath>

namespace hdb::exec {

MplController::MplController(MemoryGovernor* governor,
                             os::VirtualClock* clock, Options options)
    : governor_(governor), clock_(clock), options_(options),
      interval_start_(clock->NowMicros()) {}

void MplController::OnRequestComplete() {
  completed_in_interval_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<MplController::Sample> MplController::history() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

bool MplController::MaybeAdapt() {
  // Cheap unlatched gate: every completed request may call this, and most
  // calls land mid-interval.
  if (clock_->NowMicros() -
          interval_start_.load(std::memory_order_relaxed) <
      options_.interval_micros) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = clock_->NowMicros();
  const int64_t start = interval_start_.load(std::memory_order_relaxed);
  if (now - start < options_.interval_micros) return false;  // lost race
  const double seconds = static_cast<double>(now - start) / 1e6;
  const uint64_t completed =
      completed_in_interval_.exchange(0, std::memory_order_relaxed);
  const double throughput =
      seconds > 0 ? static_cast<double>(completed) / seconds : 0;

  int mpl = governor_->multiprogramming_level();
  if (last_throughput_ >= 0) {
    const double base = std::max(last_throughput_, 1e-9);
    const double change = (throughput - last_throughput_) / base;
    if (change < -options_.dead_band) {
      direction_ = -direction_;  // got worse: reverse course
    }
    // Improved or flat: keep climbing in the current direction.
    if (std::abs(change) > options_.dead_band || last_throughput_ == 0) {
      mpl = std::clamp(mpl + direction_ * options_.step, options_.min_mpl,
                       options_.max_mpl);
      governor_->SetMultiprogrammingLevel(mpl);
    }
  }
  history_.push_back(Sample{now, mpl, throughput, direction_});
  last_throughput_ = throughput;
  interval_start_.store(now, std::memory_order_relaxed);
  return true;
}

}  // namespace hdb::exec
