#include "exec/mpl_controller.h"

#include <algorithm>
#include <cmath>

#include "obs/metric_names.h"

namespace hdb::exec {

MplController::MplController(MemoryGovernor* governor,
                             os::VirtualClock* clock, Options options)
    : governor_(governor), clock_(clock), options_(options),
      interval_start_(clock->NowMicros()) {}

void MplController::OnRequestComplete() {
  completed_in_interval_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<MplController::Sample> MplController::history() const {
  LockGuard lock(mu_);
  return history_;
}

void MplController::AttachTelemetry(obs::MetricsRegistry* registry,
                                    obs::DecisionLog* decisions) {
  // Register before taking mu_: snapshot callbacks run under the registry
  // mutex and may take subsystem mutexes, so the reverse order here would
  // be a lock-order inversion.
  obs::Counter* adaptations = nullptr;
  obs::Counter* changes = nullptr;
  if (registry != nullptr) {
    adaptations = registry->RegisterCounter(obs::kMplAdaptations);
    changes = registry->RegisterCounter(obs::kMplChanges);
  }
  LockGuard lock(mu_);
  adaptations_counter_ = adaptations;
  changes_counter_ = changes;
  decisions_ = decisions;
}

bool MplController::MaybeAdapt() {
  // Cheap unlatched gate: every completed request may call this, and most
  // calls land mid-interval.
  if (clock_->NowMicros() -
          interval_start_.load(std::memory_order_relaxed) <
      options_.interval_micros) {
    return false;
  }
  LockGuard lock(mu_);
  const int64_t now = clock_->NowMicros();
  const int64_t start = interval_start_.load(std::memory_order_relaxed);
  if (now - start < options_.interval_micros) return false;  // lost race
  const double seconds = static_cast<double>(now - start) / 1e6;
  const uint64_t completed =
      completed_in_interval_.exchange(0, std::memory_order_relaxed);
  const double throughput =
      seconds > 0 ? static_cast<double>(completed) / seconds : 0;

  const int mpl_before = governor_->multiprogramming_level();
  int mpl = mpl_before;
  bool in_dead_band = true;
  if (last_throughput_ >= 0) {
    const double base = std::max(last_throughput_, 1e-9);
    const double change = (throughput - last_throughput_) / base;
    if (change < -options_.dead_band) {
      direction_ = -direction_;  // got worse: reverse course
    }
    // Improved or flat: keep climbing in the current direction.
    if (std::abs(change) > options_.dead_band || last_throughput_ == 0) {
      in_dead_band = false;
      mpl = std::clamp(mpl + direction_ * options_.step, options_.min_mpl,
                       options_.max_mpl);
      governor_->SetMultiprogrammingLevel(mpl);
    }
  }
  history_.push_back(Sample{now, mpl, throughput, direction_});
  last_throughput_ = throughput;
  interval_start_.store(now, std::memory_order_relaxed);

  if (adaptations_counter_ != nullptr) {
    adaptations_counter_->Add();
    if (mpl != mpl_before) changes_counter_->Add();
  }
  if (decisions_ != nullptr) {
    const char* action = mpl > mpl_before ? "raise"
                         : mpl < mpl_before ? "lower"
                                            : "hold";
    const char* reason = in_dead_band ? "dead_band"
                         : direction_ > 0 ? "climbing"
                                          : "backing_off";
    decisions_->Record(now, "mpl", action, reason, throughput,
                       static_cast<double>(mpl));
  }
  return true;
}

}  // namespace hdb::exec
