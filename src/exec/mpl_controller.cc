#include "exec/mpl_controller.h"

#include <algorithm>
#include <cmath>

namespace hdb::exec {

MplController::MplController(MemoryGovernor* governor,
                             os::VirtualClock* clock, Options options)
    : governor_(governor), clock_(clock), options_(options),
      interval_start_(clock->NowMicros()) {}

void MplController::OnRequestComplete() { ++completed_in_interval_; }

bool MplController::MaybeAdapt() {
  const int64_t now = clock_->NowMicros();
  if (now - interval_start_ < options_.interval_micros) return false;
  const double seconds =
      static_cast<double>(now - interval_start_) / 1e6;
  const double throughput =
      seconds > 0 ? static_cast<double>(completed_in_interval_) / seconds : 0;

  int mpl = governor_->multiprogramming_level();
  if (last_throughput_ >= 0) {
    const double base = std::max(last_throughput_, 1e-9);
    const double change = (throughput - last_throughput_) / base;
    if (change < -options_.dead_band) {
      direction_ = -direction_;  // got worse: reverse course
    }
    // Improved or flat: keep climbing in the current direction.
    if (std::abs(change) > options_.dead_band || last_throughput_ == 0) {
      mpl = std::clamp(mpl + direction_ * options_.step, options_.min_mpl,
                       options_.max_mpl);
      governor_->SetMultiprogrammingLevel(mpl);
    }
  }
  history_.push_back(Sample{now, mpl, throughput, direction_});
  last_throughput_ = throughput;
  completed_in_interval_ = 0;
  interval_start_ = now;
  return true;
}

}  // namespace hdb::exec
