#ifndef HDB_EXEC_MEMORY_GOVERNOR_H_
#define HDB_EXEC_MEMORY_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "os/virtual_clock.h"
#include "storage/buffer_pool.h"

#include "common/lock_rank.h"

namespace hdb::exec {

struct MemoryGovernorOptions {
  /// Numerator factor of the hard limit, Eq. (4):
  ///   hard = hard_limit_factor * max_pool_pages / active_requests.
  /// The paper's PDF renders the fraction ambiguously ("( 43 ...")); we
  /// read it as 4/3 — a kill limit above the soft limit — and keep it
  /// configurable (see DESIGN.md substitution #6).
  double hard_limit_factor = 4.0 / 3.0;
  /// Server multiprogramming level, the denominator of Eq. (5).
  int multiprogramming_level = 8;
  /// Maximum buffer pool size in pages (the pool governor's hard upper
  /// bound); used by Eq. (4).
  uint64_t max_pool_pages = 1 << 18;
};

class TaskMemoryContext;

/// What a memory-intensive operator reports to the statement's spill
/// scheduler each time the soft limit is crossed (DESIGN.md §10).
struct SpillableStats {
  /// Bytes the consumer could free right now by spilling, net of its own
  /// reserve. Zero means the consumer is not currently a viable victim
  /// (nothing buffered, or it is replaying already-spilled data).
  uint64_t spillable_bytes = 0;
  /// Floor the consumer must keep to make forward progress (e.g. the one
  /// spilled partition a hash join is currently re-reading). The
  /// scheduler never asks a victim to go below this.
  uint64_t must_reserve_bytes = 0;
  /// Estimated relative cost of spilling here and re-reading later,
  /// per byte (write + read + rebuild work). The scheduler picks the
  /// cheapest victim across the whole plan.
  double respill_cost = 1.0;
};

/// A memory-intensive operator (hash join, hash group by, hash distinct,
/// sort) registers one of these with its task. The statement-scoped spill
/// scheduler inside TaskMemoryContext queries SpillStats() and demands
/// memory back via SpillSome() — which has a real error channel: a failed
/// spill write aborts the charging statement instead of being dropped.
class MemoryConsumer {
 public:
  virtual ~MemoryConsumer() = default;

  virtual SpillableStats SpillStats() const = 0;

  /// Spills roughly `target_bytes` (e.g. by evicting hash-join
  /// partitions or writing a sort run); returns bytes actually released.
  /// Returning 0 marks the consumer exhausted for this scheduling pass.
  /// MUST NOT call ChargeBytes/ReleaseBytes on the task (the scheduler
  /// holds the task latch and adjusts the account itself).
  virtual Result<uint64_t> SpillSome(uint64_t target_bytes) = 0;

  /// Short stable operator name for DecisionLog rows.
  const char* name = "consumer";
  /// Height in the execution tree (root = large). Victim tie-break.
  int plan_level = 0;
  /// The optimizer's plan-time prediction of this operator's memory need
  /// (PlanNode::memory_quota_pages); observability only.
  uint32_t predicted_pages = 0;
};

/// Server-wide memory governor (paper §4.3). Tracks active requests and
/// hands each task a TaskMemoryContext enforcing:
///  * hard limit, Eq. (4): exceeding it terminates the statement with an
///    error (Status::ResourceExhausted);
///  * soft limit, Eq. (5) = current pool size / multiprogramming level:
///    crossing it triggers the statement's spill scheduler, which picks
///    the cheapest victim across all registered consumers.
class MemoryGovernor {
 public:
  MemoryGovernor(storage::BufferPool* pool,
                 MemoryGovernorOptions options = {});

  /// Begins a request; the context's destructor ends it.
  std::unique_ptr<TaskMemoryContext> BeginTask();

  uint64_t active_requests() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// Eq. (4), in pages.
  uint64_t HardLimitPages() const;
  /// Eq. (5), in pages.
  uint64_t SoftLimitPages() const;
  /// What the optimizer should assume at plan time (paper: "the query
  /// optimizer uses the predicted soft limit to estimate execution
  /// costs"). One more request (this one) will be active at run time.
  uint64_t PredictedSoftLimitPages() const;

  void SetMultiprogrammingLevel(int mpl);
  int multiprogramming_level() const;

  storage::BufferPool* pool() { return pool_; }
  const MemoryGovernorOptions& options() const { return options_; }

  /// Wires the governor into the engine's telemetry (DESIGN.md §6):
  /// reclamation/kill counters and limit gauges into `registry`, one
  /// Decision per spill choice or kill into `decisions`. `clock` stamps
  /// the decisions; pass null to stamp them 0.
  void AttachTelemetry(obs::MetricsRegistry* registry,
                       obs::DecisionLog* decisions, os::VirtualClock* clock);

 private:
  friend class TaskMemoryContext;

  storage::BufferPool* pool_;
  MemoryGovernorOptions options_;
  std::atomic<uint64_t> active_{0};
  std::atomic<int> mpl_;

  // Telemetry (optional; null when not attached). Counters are atomic, so
  // concurrent tasks may bump them without the governor's involvement.
  // Set once by AttachTelemetry before concurrent task traffic, read
  // lock-free afterwards (DESIGN.md §8.4 set-once contract).
  obs::Counter* reclamations_counter_ = nullptr;
  obs::Counter* reclaimed_pages_counter_ = nullptr;
  obs::Counter* kills_counter_ = nullptr;
  obs::DecisionLog* decisions_ = nullptr;
  os::VirtualClock* telemetry_clock_ = nullptr;
};

/// Per-request memory accounting plus the statement-scoped spill
/// scheduler: one broker owning every spill decision for the query
/// (DESIGN.md §10). Operators never spill on their own initiative; they
/// charge bytes here and the scheduler picks victims plan-wide.
///
/// Concurrency contract (DESIGN.md §13): one statement's exchange workers
/// all share this one context. Every accounting path — ChargeBytes,
/// ChargeBytesFromWorker, ReleaseBytes, Register/UnregisterConsumer, and
/// the spill scheduler itself — is linearized under the single task
/// latch, so a worker charging while the scheduler picks a victim simply
/// waits its turn; the scheduler's own victim accounting (it subtracts
/// released bytes itself, which is why SpillSome must not call
/// ChargeBytes/ReleaseBytes) can therefore never interleave with a
/// concurrent charge or release. Fairness is the latch's: chargers are
/// admitted in acquisition order and each pass charges exactly the bytes
/// it asked for — no charger can consume another's release.
///
/// SpillSome victims are only ever invoked from ChargeBytes, the
/// coordinating thread's entry point. Worker threads must charge via
/// ChargeBytesFromWorker, which never runs the spill scheduler: victims
/// mutate operator state owned by the coordinating thread, which may be
/// mid-Next() in that very operator while the worker charges. Worker-side
/// soft-limit pressure instead surfaces through over_soft_limit(), which
/// the ParallelismGovernor polls at morsel boundaries to revoke workers;
/// the hard limit, Eq. (4), still kills the statement from any thread.
class TaskMemoryContext {
 public:
  explicit TaskMemoryContext(MemoryGovernor* governor);
  ~TaskMemoryContext();

  TaskMemoryContext(const TaskMemoryContext&) = delete;
  TaskMemoryContext& operator=(const TaskMemoryContext&) = delete;

  /// Accounts `bytes` of operator memory. Crossing the soft limit runs
  /// the spill scheduler; a failed spill write surfaces here (the error
  /// channel the old release-callback protocol lacked). Returns
  /// kResourceExhausted when the hard limit would be exceeded even after
  /// spilling everything spillable (the statement must terminate,
  /// Eq. (4)).
  [[nodiscard]] Status ChargeBytes(uint64_t bytes);
  void ReleaseBytes(uint64_t bytes);

  /// ChargeBytes for exchange worker threads (see the concurrency
  /// contract above): accounts against the same statement total and
  /// enforces the Eq. (4) hard limit, but never invokes the spill
  /// scheduler — soft-limit pressure is left for the ParallelismGovernor
  /// to resolve by revoking workers at the next morsel boundary.
  [[nodiscard]] Status ChargeBytesFromWorker(uint64_t bytes);

  /// True when the statement's charged pages exceed Eq. (5). The
  /// ParallelismGovernor's morsel-boundary revocation signal.
  bool over_soft_limit() const;

  void RegisterConsumer(MemoryConsumer* c);
  void UnregisterConsumer(MemoryConsumer* c);

  uint64_t pages_charged() const;
  uint64_t bytes_charged() const {
    LockGuard lock(mu_);
    return bytes_;
  }
  uint64_t soft_limit_pages() const { return governor_->SoftLimitPages(); }
  uint64_t hard_limit_pages() const { return governor_->HardLimitPages(); }

  /// Scheduler passes (soft-limit crossings that found work to do).
  uint64_t reclamations() const {
    LockGuard lock(mu_);
    return reclamations_;
  }
  uint64_t reclaimed_pages() const {
    LockGuard lock(mu_);
    return reclaimed_pages_;
  }
  /// Individual victim choices across all passes (one DecisionLog row
  /// each when telemetry is attached).
  uint64_t spill_decisions() const {
    LockGuard lock(mu_);
    return spill_decisions_;
  }

 private:
  /// The spill scheduler: while over the soft limit, pick the cheapest
  /// victim (min respill_cost, tie-break higher plan level then larger
  /// spillable) among consumers with spillable bytes, honoring each
  /// consumer's reserve floor, and ask it to spill the deficit. Errors
  /// from a victim's spill write propagate to the caller.
  [[nodiscard]] Status RunSpillSchedulerLocked() REQUIRES(mu_);

  MemoryGovernor* governor_;
  mutable RankedMutex<LockRank::kTaskMemory> mu_;
  uint64_t bytes_ GUARDED_BY(mu_) = 0;
  std::vector<MemoryConsumer*> consumers_ GUARDED_BY(mu_);
  uint64_t reclamations_ GUARDED_BY(mu_) = 0;
  uint64_t reclaimed_pages_ GUARDED_BY(mu_) = 0;
  uint64_t spill_decisions_ GUARDED_BY(mu_) = 0;
};

}  // namespace hdb::exec

#endif  // HDB_EXEC_MEMORY_GOVERNOR_H_
