#ifndef HDB_EXEC_MEMORY_GOVERNOR_H_
#define HDB_EXEC_MEMORY_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "os/virtual_clock.h"
#include "storage/buffer_pool.h"

#include "common/lock_rank.h"

namespace hdb::exec {

struct MemoryGovernorOptions {
  /// Numerator factor of the hard limit, Eq. (4):
  ///   hard = hard_limit_factor * max_pool_pages / active_requests.
  /// The paper's PDF renders the fraction ambiguously ("( 43 ...")); we
  /// read it as 4/3 — a kill limit above the soft limit — and keep it
  /// configurable (see DESIGN.md substitution #6).
  double hard_limit_factor = 4.0 / 3.0;
  /// Server multiprogramming level, the denominator of Eq. (5).
  int multiprogramming_level = 8;
  /// Maximum buffer pool size in pages (the pool governor's hard upper
  /// bound); used by Eq. (4).
  uint64_t max_pool_pages = 1 << 18;
};

class TaskMemoryContext;

/// A memory-intensive operator (hash join, hash group by, hash distinct,
/// sort) registers one of these with its task so the governor can demand
/// memory back, starting at the *highest* consumer in the plan and moving
/// down — producers must not be starved by consumers (paper §4.3).
class MemoryConsumer {
 public:
  virtual ~MemoryConsumer() = default;

  /// Frees up to `target_pages`, e.g. by evicting the largest hash-join
  /// partition; returns pages actually released.
  virtual size_t ReleasePages(size_t target_pages) = 0;

  virtual size_t PagesHeld() const = 0;

  /// Height in the execution tree (root = large). Reclamation order.
  int plan_level = 0;
};

/// Server-wide memory governor (paper §4.3). Tracks active requests and
/// hands each task a TaskMemoryContext enforcing:
///  * hard limit, Eq. (4): exceeding it terminates the statement with an
///    error (Status::ResourceExhausted);
///  * soft limit, Eq. (5) = current pool size / multiprogramming level:
///    crossing it triggers top-down reclamation from registered consumers.
class MemoryGovernor {
 public:
  MemoryGovernor(storage::BufferPool* pool,
                 MemoryGovernorOptions options = {});

  /// Begins a request; the context's destructor ends it.
  std::unique_ptr<TaskMemoryContext> BeginTask();

  uint64_t active_requests() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// Eq. (4), in pages.
  uint64_t HardLimitPages() const;
  /// Eq. (5), in pages.
  uint64_t SoftLimitPages() const;
  /// What the optimizer should assume at plan time (paper: "the query
  /// optimizer uses the predicted soft limit to estimate execution
  /// costs"). One more request (this one) will be active at run time.
  uint64_t PredictedSoftLimitPages() const;

  void SetMultiprogrammingLevel(int mpl);
  int multiprogramming_level() const;

  storage::BufferPool* pool() { return pool_; }
  const MemoryGovernorOptions& options() const { return options_; }

  /// Wires the governor into the engine's telemetry (DESIGN.md §6):
  /// reclamation/kill counters and limit gauges into `registry`, one
  /// Decision per reclamation or kill into `decisions`. `clock` stamps
  /// the decisions; pass null to stamp them 0.
  void AttachTelemetry(obs::MetricsRegistry* registry,
                       obs::DecisionLog* decisions, os::VirtualClock* clock);

 private:
  friend class TaskMemoryContext;

  storage::BufferPool* pool_;
  MemoryGovernorOptions options_;
  std::atomic<uint64_t> active_{0};
  std::atomic<int> mpl_;

  // Telemetry (optional; null when not attached). Counters are atomic, so
  // concurrent tasks may bump them without the governor's involvement.
  obs::Counter* reclamations_counter_ = nullptr;
  obs::Counter* reclaimed_pages_counter_ = nullptr;
  obs::Counter* kills_counter_ = nullptr;
  obs::DecisionLog* decisions_ = nullptr;
  os::VirtualClock* telemetry_clock_ = nullptr;
};

/// Per-request memory accounting and reclamation.
class TaskMemoryContext {
 public:
  explicit TaskMemoryContext(MemoryGovernor* governor);
  ~TaskMemoryContext();

  TaskMemoryContext(const TaskMemoryContext&) = delete;
  TaskMemoryContext& operator=(const TaskMemoryContext&) = delete;

  /// Accounts `bytes` of operator memory. Returns kResourceExhausted when
  /// the hard limit would be exceeded even after reclaiming everything
  /// reclaimable (the statement must terminate, Eq. (4)).
  Status ChargeBytes(uint64_t bytes);
  void ReleaseBytes(uint64_t bytes);

  void RegisterConsumer(MemoryConsumer* c);
  void UnregisterConsumer(MemoryConsumer* c);

  uint64_t pages_charged() const;
  uint64_t bytes_charged() const { return bytes_; }
  uint64_t soft_limit_pages() const { return governor_->SoftLimitPages(); }
  uint64_t hard_limit_pages() const { return governor_->HardLimitPages(); }

  uint64_t reclamations() const { return reclamations_; }
  uint64_t reclaimed_pages() const { return reclaimed_pages_; }

 private:
  /// Asks consumers, highest plan level first, to release until the task
  /// is back under the soft limit.
  void ReclaimLocked();

  MemoryGovernor* governor_;
  mutable RankedMutex<LockRank::kTaskMemory> mu_;
  uint64_t bytes_ = 0;
  std::vector<MemoryConsumer*> consumers_;
  uint64_t reclamations_ = 0;
  uint64_t reclaimed_pages_ = 0;
};

}  // namespace hdb::exec

#endif  // HDB_EXEC_MEMORY_GOVERNOR_H_
