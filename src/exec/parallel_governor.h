#ifndef HDB_EXEC_PARALLEL_GOVERNOR_H_
#define HDB_EXEC_PARALLEL_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "exec/admission_gate.h"
#include "exec/memory_governor.h"
#include "exec/morsel.h"
#include "obs/decision_log.h"
#include "os/virtual_clock.h"

namespace hdb::exec {

/// Intra-query parallelism knobs (paper §4.4, DESIGN.md §13).
struct ParallelExecOptions {
  /// Hard cap on workers per parallel pipeline. 1 (the default) keeps
  /// every plan serial — the exchange operators are never even built.
  int max_workers = 1;
  /// Rows per dispensed morsel; 0 = kDefaultMorselRows. The revocation
  /// granularity: workers re-check their grant between morsels.
  size_t morsel_rows = 0;
  /// Worker-count seed: the optimizer asks for one worker per this many
  /// estimated fragment input rows (capped by max_workers).
  double rows_per_worker = 8192;
  /// Fragments whose scan estimates fewer rows than this stay serial —
  /// thread startup would cost more than the scan.
  double min_table_rows = 2048;
};

/// Decides how many workers each parallel pipeline gets (paper §4.4,
/// EXPERIMENTS C5). Two decision points:
///
///  * PickWorkers — at pipeline start: the optimizer's seeded worker
///    count is clamped by the admission gate's idle MPL slots (workers
///    beyond the first consume the very capacity Eq. (5) budgets per
///    statement, so a gate with queued statements grants no parallelism
///    at all) and by memory headroom (every worker's predicted share
///    must fit the statement's soft limit).
///
///  * Reassess — at every morsel boundary, called by the workers
///    themselves: re-applies the same MPL rule against live gate stats
///    and additionally sheds workers when the statement is over its soft
///    limit (parallel operators never spill; giving memory back means
///    giving back concurrency). The pipeline target only ever decreases
///    — the paper's "number of threads can easily be changed during
///    execution", restricted to revocation so no worker ever joins a
///    half-built pipeline.
///
/// Thread safety: fully thread-safe; Reassess is called from worker
/// threads while PickWorkers serves the coordinating thread.
class ParallelismGovernor {
 public:
  /// One running parallel pipeline. `target` starts at the granted count
  /// and only ever decreases; worker `w` exits at the next morsel
  /// boundary once `w >= target` (worker 0 always runs to completion).
  struct Pipeline {
    explicit Pipeline(int started) : started(started), target(started) {}
    const int started;
    std::atomic<int> target;
  };

  ParallelismGovernor(MemoryGovernor* memory, AdmissionGate* gate,
                      ParallelExecOptions options = {});

  /// Start-of-pipeline grant: `requested` workers (the optimizer's seed)
  /// clamped by max_workers, the gate's idle MPL slots, and — when
  /// `per_worker_quota_pages` is non-zero — the number of worker shares
  /// that fit the statement soft limit. Always >= 1.
  int PickWorkers(int requested, uint32_t per_worker_quota_pages) const;

  /// Registers a pipeline running `workers` workers (records the grant).
  std::shared_ptr<Pipeline> StartPipeline(int workers);

  /// Morsel-boundary re-check; lowers `pipeline->target` under MPL or
  /// memory pressure (`task` may be null) and returns the current target.
  int Reassess(Pipeline* pipeline, const TaskMemoryContext* task);

  const ParallelExecOptions& options() const { return options_; }

  /// Decision telemetry (DESIGN.md §6): one Decision per grant and per
  /// revocation. `clock` stamps them; null stamps 0.
  void AttachTelemetry(obs::DecisionLog* decisions, os::VirtualClock* clock);

 private:
  /// Workers admissible under the gate right now, at most `upper`.
  int MplAllowance(int upper) const;
  void RecordDecision(const char* action, const char* reason, double input,
                      double output) const;

  MemoryGovernor* memory_;
  AdmissionGate* gate_;
  ParallelExecOptions options_;

  // Set once by AttachTelemetry before query traffic, read lock-free
  // afterwards (DESIGN.md §8.4 set-once contract).
  obs::DecisionLog* decisions_ = nullptr;
  os::VirtualClock* clock_ = nullptr;
};

}  // namespace hdb::exec

#endif  // HDB_EXEC_PARALLEL_GOVERNOR_H_
