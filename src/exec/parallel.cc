#include "exec/parallel.h"

#include <chrono>
#include <mutex>
#include <thread>

#include "table/row_codec.h"

namespace hdb::exec {

namespace {
double NowMicros() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

void ParallelHashPipeline::HashTable::Reserve(size_t expected) {
  const size_t nb = RoundUpPow2(std::max<size_t>(16, expected * 2));
  buckets.assign(nb, {});
  if (use_bloom) {
    const size_t bits = RoundUpPow2(std::max<size_t>(64, expected * 8));
    bloom.assign(bits / 64, 0);
    bloom_mask = bits - 1;
  }
}

void ParallelHashPipeline::HashTable::Insert(const Value& key) {
  const uint64_t h = key.Hash();
  const auto idx = static_cast<uint32_t>(keys.size());
  keys.push_back(key);
  buckets[h & (buckets.size() - 1)].push_back(idx);
  if (use_bloom) {
    const uint64_t b1 = h & bloom_mask;
    const uint64_t b2 = (h >> 17) & bloom_mask;
    bloom[b1 / 64] |= 1ull << (b1 % 64);
    bloom[b2 / 64] |= 1ull << (b2 % 64);
  }
}

bool ParallelHashPipeline::HashTable::MaybeContains(uint64_t h) const {
  if (!use_bloom) return true;
  const uint64_t b1 = h & bloom_mask;
  const uint64_t b2 = (h >> 17) & bloom_mask;
  return (bloom[b1 / 64] >> (b1 % 64) & 1) != 0 &&
         (bloom[b2 / 64] >> (b2 % 64) & 1) != 0;
}

bool ParallelHashPipeline::HashTable::Contains(const Value& key,
                                               uint64_t h) const {
  for (const uint32_t idx : buckets[h & (buckets.size() - 1)]) {
    if (keys[idx].Compare(key) == 0) return true;
  }
  return false;
}

ParallelHashPipeline::RowDispenser::RowDispenser(table::TableHeap* heap,
                                                 size_t batch_rows)
    : it_(heap->Scan()), batch_rows_(batch_rows) {}

bool ParallelHashPipeline::RowDispenser::NextBatch(
    std::vector<std::string>* batch) {
  LockGuard lock(mu_);
  if (done_) return false;
  // Page-batched copy: one heap latch and one page pin per visited page,
  // instead of one of each per row.
  const Result<size_t> n = it_.NextBytes(batch_rows_, batch, &rids_);
  if (!n.ok() || *n == 0) {
    done_ = true;
    return false;
  }
  batch->resize(*n);
  return true;
}

ParallelHashPipeline::ParallelHashPipeline(HeapProvider heaps, Spec spec,
                                           int num_workers)
    : heaps_(std::move(heaps)),
      spec_(std::move(spec)),
      num_workers_(std::max(1, num_workers)),
      target_workers_(std::max(1, num_workers)) {}

void ParallelHashPipeline::ReduceWorkers(int target) {
  target_workers_.store(std::max(1, target), std::memory_order_relaxed);
}

Result<ParallelHashPipeline::Stats> ParallelHashPipeline::Run() {
  stats_ = Stats{};
  stats_.workers_started = num_workers_;
  tables_.assign(spec_.joins.size(), HashTable{});

  // ---- Build phase: FCFS-parallel per join, then merge (paper §4.4). ----
  const double build_start = NowMicros();
  for (size_t j = 0; j < spec_.joins.size(); ++j) {
    const JoinSpec& join = spec_.joins[j];
    table::TableHeap* heap = heaps_(join.build_table->oid);
    if (heap == nullptr) return Status::Internal("missing build heap");
    RowDispenser dispenser(heap, 64);
    std::vector<std::vector<Value>> worker_keys(num_workers_);
    std::vector<std::thread> threads;
    std::atomic<bool> failed{false};
    for (int w = 0; w < num_workers_; ++w) {
      threads.emplace_back([&, w]() {
        std::vector<std::string> batch;
        table::Row row;  // reused across rows: decode-into, no churn
        while (!failed.load(std::memory_order_relaxed) &&
               dispenser.NextBatch(&batch)) {
          if (w >= target_workers_.load(std::memory_order_relaxed) &&
              num_workers_ > 1) {
            // Dynamically reduced: this worker drains its batch and exits.
          }
          for (const std::string& bytes : batch) {
            const Status st = table::DecodeRowInto(
                *join.build_table, bytes.data(), bytes.size(), &row);
            if (!st.ok()) {
              failed.store(true, std::memory_order_relaxed);
              return;
            }
            const Value& key = row[join.build_key_column];
            if (!key.is_null()) worker_keys[w].push_back(key);
          }
          if (w >= target_workers_.load(std::memory_order_relaxed) &&
              num_workers_ > 1) {
            return;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    if (failed.load()) return Status::Internal("build row decode failed");
    // Merge per-worker tables into one (paper: "the hash tables are then
    // merged into a single hash table for each join").
    size_t total = 0;
    for (const auto& wk : worker_keys) total += wk.size();
    tables_[j].use_bloom = join.use_bloom_filter;
    tables_[j].Reserve(total);
    for (const auto& wk : worker_keys) {
      for (const Value& key : wk) tables_[j].Insert(key);
    }
  }
  stats_.build_wall_micros = NowMicros() - build_start;

  // ---- Probe phase: FCFS from the single probe scan (paper §4.4). ----
  const double probe_start = NowMicros();
  table::TableHeap* probe_heap = heaps_(spec_.probe_table->oid);
  if (probe_heap == nullptr) return Status::Internal("missing probe heap");
  RowDispenser dispenser(probe_heap, 64);
  RankedMutex<LockRank::kParallelMerge> merge_mu;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> probe_rows{0}, output_rows{0}, bloom_rejects{0};
  std::atomic<bool> failed{false};
  std::atomic<int> active_at_end{0};
  for (int w = 0; w < num_workers_; ++w) {
    threads.emplace_back([&, w]() {
      std::map<std::string, int64_t> local_groups;
      uint64_t local_probe = 0, local_out = 0, local_bloom = 0;
      std::vector<std::string> batch;
      table::Row row;  // reused across rows: decode-into, no churn
      bool reduced_out = false;
      while (!failed.load(std::memory_order_relaxed)) {
        if (w >= target_workers_.load(std::memory_order_relaxed) &&
            num_workers_ > 1 && w != 0) {
          reduced_out = true;
          break;  // dynamic thread reduction at a batch boundary
        }
        if (!dispenser.NextBatch(&batch)) break;
        for (const std::string& bytes : batch) {
          const Status st = table::DecodeRowInto(
              *spec_.probe_table, bytes.data(), bytes.size(), &row);
          if (!st.ok()) {
            failed.store(true, std::memory_order_relaxed);
            return;
          }
          ++local_probe;
          bool survives = true;
          for (size_t j = 0; j < spec_.joins.size(); ++j) {
            const Value& key = row[spec_.joins[j].probe_key_column];
            if (key.is_null()) {
              survives = false;
              break;
            }
            const uint64_t h = key.Hash();
            if (!tables_[j].MaybeContains(h)) {
              ++local_bloom;
              survives = false;
              break;
            }
            if (!tables_[j].Contains(key, h)) {
              survives = false;
              break;
            }
          }
          if (!survives) continue;
          ++local_out;
          if (spec_.group_by_column >= 0) {
            local_groups[row[spec_.group_by_column].ToString()]++;
          }
        }
      }
      probe_rows.fetch_add(local_probe, std::memory_order_relaxed);
      output_rows.fetch_add(local_out, std::memory_order_relaxed);
      bloom_rejects.fetch_add(local_bloom, std::memory_order_relaxed);
      if (!reduced_out) active_at_end.fetch_add(1, std::memory_order_relaxed);
      if (!local_groups.empty()) {
        LockGuard lock(merge_mu);
        for (const auto& [k, v] : local_groups) stats_.groups[k] += v;
      }
    });
  }
  for (auto& t : threads) t.join();
  if (failed.load()) return Status::Internal("probe row decode failed");
  stats_.probe_wall_micros = NowMicros() - probe_start;
  stats_.probe_rows = probe_rows.load();
  stats_.output_rows = output_rows.load();
  stats_.bloom_rejects = bloom_rejects.load();
  stats_.workers_at_finish = active_at_end.load();
  return stats_;
}

}  // namespace hdb::exec
