#include "exec/parallel_governor.h"

#include <algorithm>

namespace hdb::exec {

ParallelismGovernor::ParallelismGovernor(MemoryGovernor* memory,
                                         AdmissionGate* gate,
                                         ParallelExecOptions options)
    : memory_(memory), gate_(gate), options_(options) {}

int ParallelismGovernor::MplAllowance(int upper) const {
  if (gate_ == nullptr) return upper;
  const AdmissionGateStats s = gate_->stats();
  // Queued statements are entitled to the slots extra workers would
  // consume: grant nothing beyond the statement's own slot.
  if (s.waiting > 0) return 1;
  const int64_t idle = static_cast<int64_t>(memory_->multiprogramming_level()) -
                       static_cast<int64_t>(s.active);
  return static_cast<int>(
      std::min<int64_t>(upper, 1 + std::max<int64_t>(0, idle)));
}

int ParallelismGovernor::PickWorkers(int requested,
                                     uint32_t per_worker_quota_pages) const {
  int w = std::clamp(requested, 1, std::max(1, options_.max_workers));
  if (w <= 1) return 1;
  w = MplAllowance(w);
  if (w > 1 && per_worker_quota_pages > 0) {
    // Parallel operators run no-spill, so w worker shares must fit the
    // statement's Eq. (5) budget up front.
    const uint64_t shares = std::max<uint64_t>(
        1, memory_->SoftLimitPages() / per_worker_quota_pages);
    w = static_cast<int>(std::min<uint64_t>(w, shares));
  }
  return std::max(1, w);
}

std::shared_ptr<ParallelismGovernor::Pipeline>
ParallelismGovernor::StartPipeline(int workers) {
  RecordDecision("grant", "pipeline_start",
                 static_cast<double>(options_.max_workers),
                 static_cast<double>(workers));
  return std::make_shared<Pipeline>(workers);
}

int ParallelismGovernor::Reassess(Pipeline* pipeline,
                                  const TaskMemoryContext* task) {
  int target = pipeline->target.load(std::memory_order_relaxed);
  if (target <= 1) return std::max(1, target);
  int want = MplAllowance(target);
  const char* reason = "mpl_pressure";
  if (want > 1 && task != nullptr && task->over_soft_limit()) {
    // Parallel operators cannot spill; shedding workers is how the
    // statement hands memory back (each worker's partial state and
    // arena die with it).
    want = 1;
    reason = "memory_pressure";
  }
  if (want < target) {
    // Several workers may reassess at once; a min-CAS keeps the target
    // monotonically non-increasing.
    while (target > want && !pipeline->target.compare_exchange_weak(
                                target, want, std::memory_order_relaxed)) {
    }
    RecordDecision("revoke", reason, static_cast<double>(pipeline->started),
                   static_cast<double>(want));
  }
  return std::max(1, pipeline->target.load(std::memory_order_relaxed));
}

void ParallelismGovernor::AttachTelemetry(obs::DecisionLog* decisions,
                                          os::VirtualClock* clock) {
  decisions_ = decisions;
  clock_ = clock;
}

void ParallelismGovernor::RecordDecision(const char* action,
                                         const char* reason, double input,
                                         double output) const {
  if (decisions_ == nullptr) return;
  const int64_t now = clock_ != nullptr ? clock_->NowMicros() : 0;
  decisions_->Record(now, "parallel", action, reason, input, output);
}

}  // namespace hdb::exec
