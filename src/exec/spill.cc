#include "exec/spill.h"

#include <cstring>

#include "obs/trace.h"

namespace hdb::exec {

namespace {
// Type tags for the schema-free codec.
enum Tag : uint8_t {
  kTagNull = 0,
  kTagBool,
  kTagInt,
  kTagBigint,
  kTagDouble,
  kTagString,
  kTagDate,
  kTagTimestamp,
};
}  // namespace

std::string EncodeValues(const std::vector<Value>& values) {
  std::string out;
  EncodeValuesTo(values, &out);
  return out;
}

void EncodeValuesTo(const std::vector<Value>& values, std::string* out_ptr) {
  std::string& out = *out_ptr;
  out.clear();
  const auto n = static_cast<uint16_t>(values.size());
  out.append(reinterpret_cast<const char*>(&n), 2);
  for (const Value& v : values) {
    if (v.is_null()) {
      out.push_back(static_cast<char>(kTagNull));
      continue;
    }
    switch (v.type()) {
      case TypeId::kBoolean:
        out.push_back(static_cast<char>(kTagBool));
        out.push_back(v.AsBool() ? 1 : 0);
        break;
      case TypeId::kInt:
      case TypeId::kBigint:
      case TypeId::kDate:
      case TypeId::kTimestamp: {
        const Tag tag = v.type() == TypeId::kInt        ? kTagInt
                        : v.type() == TypeId::kBigint   ? kTagBigint
                        : v.type() == TypeId::kDate     ? kTagDate
                                                        : kTagTimestamp;
        out.push_back(static_cast<char>(tag));
        const int64_t x = v.AsInt();
        out.append(reinterpret_cast<const char*>(&x), 8);
        break;
      }
      case TypeId::kDouble: {
        out.push_back(static_cast<char>(kTagDouble));
        const double d = v.AsDouble();
        out.append(reinterpret_cast<const char*>(&d), 8);
        break;
      }
      case TypeId::kVarchar: {
        out.push_back(static_cast<char>(kTagString));
        const auto len = static_cast<uint32_t>(v.AsString().size());
        out.append(reinterpret_cast<const char*>(&len), 4);
        out.append(v.AsString());
        break;
      }
    }
  }
}

Result<std::vector<Value>> DecodeValues(const char* data, size_t len,
                                        size_t* consumed) {
  if (len < 2) return Status::Internal("spill tuple underflow");
  uint16_t n = 0;
  std::memcpy(&n, data, 2);
  size_t pos = 2;
  std::vector<Value> out;
  out.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    if (pos >= len) return Status::Internal("spill tuple underflow");
    const Tag tag = static_cast<Tag>(data[pos++]);
    switch (tag) {
      case kTagNull:
        out.push_back(Value::Null());
        break;
      case kTagBool:
        if (pos + 1 > len) return Status::Internal("spill underflow");
        out.push_back(Value::Boolean(data[pos] != 0));
        pos += 1;
        break;
      case kTagInt:
      case kTagBigint:
      case kTagDate:
      case kTagTimestamp: {
        if (pos + 8 > len) return Status::Internal("spill underflow");
        int64_t x = 0;
        std::memcpy(&x, data + pos, 8);
        pos += 8;
        switch (tag) {
          case kTagInt: out.push_back(Value::Int(static_cast<int32_t>(x))); break;
          case kTagBigint: out.push_back(Value::Bigint(x)); break;
          case kTagDate: out.push_back(Value::Date(x)); break;
          default: out.push_back(Value::Timestamp(x)); break;
        }
        break;
      }
      case kTagDouble: {
        if (pos + 8 > len) return Status::Internal("spill underflow");
        double d = 0;
        std::memcpy(&d, data + pos, 8);
        pos += 8;
        out.push_back(Value::Double(d));
        break;
      }
      case kTagString: {
        if (pos + 4 > len) return Status::Internal("spill underflow");
        uint32_t slen = 0;
        std::memcpy(&slen, data + pos, 4);
        pos += 4;
        if (pos + slen > len) return Status::Internal("spill underflow");
        out.push_back(Value::String(std::string(data + pos, slen)));
        pos += slen;
        break;
      }
      default:
        return Status::Internal("bad spill tag");
    }
  }
  *consumed = pos;
  return out;
}

SpillFile::SpillFile(storage::BufferPool* pool) : pool_(pool) {}

SpillFile::~SpillFile() { Clear(); }

void SpillFile::Clear() {
  for (const storage::PageId id : pages_) {
    pool_->DiscardPage(
        storage::SpacePageId{storage::SpaceId::kTemp, id});
  }
  pages_.clear();
  used_.clear();
  tuples_ = 0;
  bytes_ = 0;
}

Status SpillFile::Append(const std::vector<Value>& tuple) {
  // Accumulate-only wait attribution: per-tuple, so a ring event each
  // would be noise — the forced-spill *decision* gets its span in the
  // memory governor; here we charge the I/O time and bytes.
  obs::StatementTrace* trace = obs::CurrentStatementTrace();
  const uint64_t t0 = trace != nullptr ? obs::TraceNowMicros() : 0;
  const std::string bytes = EncodeValues(tuple);
  // Record: [u32 len][payload], never spanning pages.
  const uint32_t need = 4 + static_cast<uint32_t>(bytes.size());
  const uint32_t capacity = pool_->page_bytes();
  if (need > capacity) {
    return Status::InvalidArgument("spilled tuple larger than a page");
  }
  if (pages_.empty() || used_.back() + need > capacity) {
    storage::PageId id = storage::kInvalidPageId;
    HDB_ASSIGN_OR_RETURN(
        storage::PageHandle h,
        pool_->NewPage(storage::SpaceId::kTemp,
                       storage::PageType::kTempTable, /*owner=*/0, &id));
    h.MarkDirty();
    pages_.push_back(id);
    used_.push_back(0);
  }
  HDB_ASSIGN_OR_RETURN(
      storage::PageHandle h,
      pool_->FetchPage(
          storage::SpacePageId{storage::SpaceId::kTemp, pages_.back()},
          storage::PageType::kTempTable, /*owner=*/0));
  const auto len = static_cast<uint32_t>(bytes.size());
  std::memcpy(h.data() + used_.back(), &len, 4);
  std::memcpy(h.data() + used_.back() + 4, bytes.data(), bytes.size());
  h.MarkDirty();
  used_.back() += need;
  ++tuples_;
  bytes_ += need;
  if (trace != nullptr) {
    trace->AccumulateWait(obs::WaitCause::kSpillWrite,
                          obs::TraceNowMicros() - t0);
    trace->AddSpilledBytes(need);
  }
  return Status::OK();
}

Result<bool> SpillFile::Reader::Next(std::vector<Value>* tuple) {
  obs::StatementTrace* trace = obs::CurrentStatementTrace();
  const uint64_t t0 = trace != nullptr ? obs::TraceNowMicros() : 0;
  while (page_index_ < file_->pages_.size()) {
    if (offset_ + 4 > file_->used_[page_index_]) {
      ++page_index_;
      offset_ = 0;
      continue;
    }
    HDB_ASSIGN_OR_RETURN(
        storage::PageHandle h,
        file_->pool_->FetchPage(
            storage::SpacePageId{storage::SpaceId::kTemp,
                                 file_->pages_[page_index_]},
            storage::PageType::kTempTable, /*owner=*/0));
    uint32_t len = 0;
    std::memcpy(&len, h.data() + offset_, 4);
    size_t consumed = 0;
    HDB_ASSIGN_OR_RETURN(*tuple,
                         DecodeValues(h.data() + offset_ + 4, len, &consumed));
    offset_ += 4 + len;
    if (trace != nullptr) {
      trace->AccumulateWait(obs::WaitCause::kSpillRead,
                            obs::TraceNowMicros() - t0);
    }
    return true;
  }
  return false;
}

SpillMergeReader::SpillMergeReader(std::vector<const SpillFile*> runs,
                                   Comparator cmp)
    : runs_(std::move(runs)), cmp_(std::move(cmp)) {}

Status SpillMergeReader::Init() {
  cursors_.clear();
  cursors_.reserve(runs_.size());
  for (const SpillFile* run : runs_) {
    Cursor c{run->Read(), {}, false};
    HDB_ASSIGN_OR_RETURN(const bool more, c.reader.Next(&c.row));
    c.done = !more;
    cursors_.push_back(std::move(c));
  }
  return Status::OK();
}

Result<bool> SpillMergeReader::Next(std::vector<Value>* tuple) {
  // Linear scan beats a heap here: run counts are small (one per spill
  // pass) and the comparator dominates either way. Strict `<` keeps the
  // earliest run first on ties.
  int best = -1;
  for (size_t i = 0; i < cursors_.size(); ++i) {
    if (cursors_[i].done) continue;
    if (best < 0 || cmp_(cursors_[i].row, cursors_[best].row) < 0) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) return false;
  *tuple = std::move(cursors_[best].row);
  HDB_ASSIGN_OR_RETURN(const bool more,
                       cursors_[best].reader.Next(&cursors_[best].row));
  cursors_[best].done = !more;
  return true;
}

}  // namespace hdb::exec
