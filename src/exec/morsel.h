#ifndef HDB_EXEC_MORSEL_H_
#define HDB_EXEC_MORSEL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/result.h"
#include "table/table_heap.h"

namespace hdb::exec {

/// Rows handed out per dispenser call. Matches the executor's default
/// batch capacity: one morsel fills one worker RowBatch.
inline constexpr size_t kDefaultMorselRows = 1024;

/// FCFS morsel dispenser over a single heap scan — "the single scan
/// feeding the pipeline" of paper §4.4. Exchange workers pull morsels
/// first-come-first-served; the critical section is deliberately short
/// (copy up to `morsel_rows` encoded rows off consecutive heap pages) and
/// the iterator only ever moves forward, so concurrent workers receive
/// disjoint page ranges *in scan order* and parallelism never turns the
/// heap's sequential I/O pattern into random I/O. Decoding happens on the
/// worker, outside the latch.
///
/// Thread safety: fully thread-safe; this class exists to be shared.
class MorselDispenser {
 public:
  /// The iterator must come from `heap->Scan()`; the heap must outlive
  /// the dispenser. `morsel_rows` == 0 falls back to kDefaultMorselRows.
  MorselDispenser(table::TableHeap* heap, size_t morsel_rows);

  /// Fills `bytes`/`rids` with the next morsel in scan order, resizing
  /// the buffers up as needed (entries past the returned count are
  /// stale — reuse the same pair across pulls to recycle string
  /// capacity). Returns the row count; 0 = end of table (sticky).
  Result<size_t> Next(std::vector<std::string>* bytes, std::vector<Rid>* rids);

  size_t morsel_rows() const { return morsel_rows_; }
  uint64_t morsels() const { return morsels_.load(std::memory_order_relaxed); }

  /// Heap page of the first row of every dispensed morsel, in dispatch
  /// order. Test introspection for the sequential-I/O property: the
  /// sequence must be non-decreasing no matter how many workers pull.
  std::vector<uint32_t> DispatchedPages() const;

 private:
  const size_t morsel_rows_;
  mutable RankedMutex<LockRank::kParallelDispenser> mu_;
  table::TableHeap::Iterator it_ GUARDED_BY(mu_);
  bool done_ GUARDED_BY(mu_) = false;
  std::vector<uint32_t> first_pages_ GUARDED_BY(mu_);
  std::atomic<uint64_t> morsels_{0};
};

}  // namespace hdb::exec

#endif  // HDB_EXEC_MORSEL_H_
