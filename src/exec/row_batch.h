#ifndef HDB_EXEC_ROW_BATCH_H_
#define HDB_EXEC_ROW_BATCH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/value.h"
#include "optimizer/expr.h"
#include "table/row_codec.h"

namespace hdb::exec {

/// Default rows-per-batch for the vectorized executor (DESIGN.md §9).
/// ExecContext::batch_cap overrides it; the memory governor can shrink the
/// effective cap per operator under low-memory strategies.
inline constexpr size_t kDefaultBatchCap = 1024;
/// Selection-vector entries are uint16_t, so a batch never exceeds this.
inline constexpr size_t kMaxBatchCap = 65535;

/// A batch of rows flowing through the vectorized executor (DESIGN.md §9).
///
/// Layout: one pointer column per RowContext slot (quantifier slots plus
/// the group-by pseudo-slot), where each entry points at a decoded
/// table::Row owned by the producing operator's reusable pool. A batch is
/// therefore a struct-of-slot-pointers view, not a value copy: producers
/// bind only the slots they fill (BindSlot), and consumers materialize one
/// position into a RowContext with a handful of pointer stores (BindRow).
///
/// Filtering never moves rows — it compacts the selection vector
/// (MutableSel/SetSelection), so a filter pass over 1024 rows writes at
/// most 1024 uint16s. NextBatch may legally return a batch whose
/// ActiveCount() is 0 (everything filtered); consumers iterate actives.
///
/// Lifetime contract: slot pointers are valid until the producing operator
/// is asked for its next batch (or closed). Operators that hold rows
/// across batch boundaries (hash build sides, sorts) must copy.
class RowBatch {
 public:
  RowBatch(size_t num_slots, size_t capacity,
           const std::vector<std::pair<std::string, Value>>* params)
      : cap_(std::min(std::max<size_t>(capacity, 1), kMaxBatchCap)),
        params_(params),
        cols_(num_slots),
        bound_(num_slots, 0) {}

  size_t capacity() const { return cap_; }
  size_t num_slots() const { return cols_.size(); }
  const std::vector<std::pair<std::string, Value>>* params() const {
    return params_;
  }

  /// Empties the batch for refill. Pointer columns, owned rows, and the
  /// output column keep their storage (that reuse is the point).
  void Reset() {
    size_ = 0;
    sel_size_ = 0;
    identity_ = true;
    has_output_ = false;
    for (const uint16_t s : bound_list_) bound_[s] = 0;
    bound_list_.clear();
  }

  // --- Producer side ---

  /// Marks slot `s` bound for this batch and returns its pointer column
  /// (capacity() entries). Every position in [0, size) must be filled.
  const table::Row** BindSlot(size_t s) {
    if (cols_[s].size() < cap_) cols_[s].resize(cap_);
    if (!bound_[s]) {
      bound_[s] = 1;
      bound_list_.push_back(static_cast<uint16_t>(s));
    }
    return cols_[s].data();
  }

  /// Sets the row count; the selection vector becomes the identity [0, n).
  void SetSize(size_t n) {
    size_ = n;
    sel_size_ = n;
    identity_ = true;
  }

  size_t size() const { return size_; }

  /// Owned output-row storage at `pos` (capacity reused across batches);
  /// marks the batch as carrying projected output.
  table::Row* OutputRow(size_t pos) {
    if (output_.size() < cap_) output_.resize(cap_);
    has_output_ = true;
    return &output_[pos];
  }

  /// Whole output column (capacity() rows) for producers that fill many
  /// positions — one bounds check instead of one per row.
  table::Row* OutputColumn() {
    if (output_.size() < cap_) output_.resize(cap_);
    has_output_ = true;
    return output_.data();
  }

  bool has_output() const { return has_output_; }
  const table::Row& output(size_t pos) const { return output_[pos]; }
  /// Mutable output row for consumers that steal the buffer (result
  /// fetch moves rows out; the slot refills next batch).
  table::Row* MutableOutput(size_t pos) { return &output_[pos]; }

  /// Copies the bound slots of `ctx` (and, if `with_output`, ctx->output)
  /// into owned storage at `pos` — the row→batch default adapter. Copy
  /// assignment reuses the owned Values' string capacity.
  void CaptureRow(size_t pos, const optimizer::RowContext& ctx,
                  bool with_output) {
    if (owned_.size() < cols_.size()) owned_.resize(cols_.size());
    const size_t limit = std::min(cols_.size(), ctx.rows.size());
    for (size_t s = 0; s < limit; ++s) {
      const table::Row* src = ctx.rows[s];
      if (src == nullptr) continue;
      if (owned_[s].size() < cap_) owned_[s].resize(cap_);
      owned_[s][pos] = *src;
      BindSlot(s)[pos] = &owned_[s][pos];
    }
    if (with_output) *OutputRow(pos) = ctx.output;
  }

  /// Copies this batch's bound slot pointers at `from_pos` into `to` at
  /// `to_pos` (joins carry the outer side into the result batch). The
  /// pointers stay valid as long as this batch is not refilled.
  void CopySlots(size_t from_pos, RowBatch* to, size_t to_pos) const {
    for (const uint16_t s : bound_list_) {
      to->BindSlot(s)[to_pos] = cols_[s][from_pos];
    }
  }

  // --- Selection vector ---

  size_t ActiveCount() const { return sel_size_; }
  size_t Active(size_t i) const { return identity_ ? i : sel_[i]; }

  /// Selection array for in-place compaction: read positions via
  /// Active(i), write survivors to the returned array at k <= i, then
  /// call SetSelection(k). Safe because k never passes i.
  uint16_t* MutableSel() {
    if (sel_.size() < cap_) sel_.resize(cap_);
    return sel_.data();
  }
  void SetSelection(size_t n) {
    sel_size_ = n;
    identity_ = false;
  }
  /// Keeps only the first `n` active rows (LIMIT).
  void TruncateActive(size_t n) {
    if (n < sel_size_) sel_size_ = n;
  }

  // --- Consumer side ---

  /// Binds the bound slots at `pos` into `ctx` (pointer stores); leaves
  /// other slots untouched so sibling subtrees' bindings survive. With
  /// `with_output`, also copies the output row into ctx->output.
  void BindRow(size_t pos, optimizer::RowContext* ctx,
               bool with_output = false) const {
    for (const uint16_t s : bound_list_) {
      ctx->rows[s] = cols_[s][pos];
    }
    if (with_output && has_output_) ctx->output = output_[pos];
  }

  /// Read-only pointer column for slot `s`, or nullptr when the slot is
  /// not bound this batch. The vectorized fast paths (compiled simple
  /// predicates, plain-column projection) read values straight from the
  /// column instead of materializing a RowContext per row.
  const table::Row* const* Column(size_t s) const {
    return bound_[s] ? cols_[s].data() : nullptr;
  }

 private:
  size_t cap_;
  const std::vector<std::pair<std::string, Value>>* params_;
  std::vector<std::vector<const table::Row*>> cols_;  // [slot][pos]
  std::vector<uint8_t> bound_;       // per-slot "bound this batch" flag
  std::vector<uint16_t> bound_list_;
  std::vector<std::vector<table::Row>> owned_;  // CaptureRow storage
  std::vector<table::Row> output_;
  std::vector<uint16_t> sel_;
  size_t size_ = 0;
  size_t sel_size_ = 0;
  bool identity_ = true;
  bool has_output_ = false;
};

}  // namespace hdb::exec

#endif  // HDB_EXEC_ROW_BATCH_H_
