#ifndef HDB_EXEC_AGG_H_
#define HDB_EXEC_AGG_H_

#include <cstdint>
#include <vector>

#include "common/value.h"
#include "optimizer/query.h"

namespace hdb::exec {

/// Running state of one aggregate over one group. Shared by the serial
/// hash group by (executor.cc), its spill encode/decode, and the parallel
/// pre-aggregation workers (exchange.cc) — AggMerge is exactly the
/// partial-merge both the spill replay and the worker barrier need.
struct AggState {
  int64_t count = 0;       // non-null inputs
  int64_t count_star = 0;  // all rows
  double sum = 0;
  bool int_only = true;
  bool has = false;
  Value min, max;
};

inline void AggUpdate(AggState& s, optimizer::AggKind kind, const Value& v) {
  s.count_star++;
  if (kind == optimizer::AggKind::kCountStar) return;
  if (v.is_null()) return;
  s.count++;
  if (v.type() == TypeId::kDouble) s.int_only = false;
  const double d = v.type() == TypeId::kVarchar ? 0 : v.AsDouble();
  s.sum += d;
  if (!s.has || v.Compare(s.min) < 0) s.min = v;
  if (!s.has || v.Compare(s.max) > 0) s.max = v;
  s.has = true;
}

inline void AggMerge(AggState& into, const AggState& from) {
  into.count += from.count;
  into.count_star += from.count_star;
  into.sum += from.sum;
  into.int_only = into.int_only && from.int_only;
  if (from.has) {
    if (!into.has || from.min.Compare(into.min) < 0) into.min = from.min;
    if (!into.has || from.max.Compare(into.max) > 0) into.max = from.max;
    into.has = true;
  }
}

inline Value AggFinalize(const AggState& s, optimizer::AggKind kind) {
  switch (kind) {
    case optimizer::AggKind::kCountStar:
      return Value::Bigint(s.count_star);
    case optimizer::AggKind::kCount:
      return Value::Bigint(s.count);
    case optimizer::AggKind::kSum:
      if (s.count == 0) return Value::Null(TypeId::kDouble);
      return s.int_only ? Value::Bigint(static_cast<int64_t>(s.sum))
                        : Value::Double(s.sum);
    case optimizer::AggKind::kMin:
      return s.has ? s.min : Value::Null();
    case optimizer::AggKind::kMax:
      return s.has ? s.max : Value::Null();
    case optimizer::AggKind::kAvg:
      if (s.count == 0) return Value::Null(TypeId::kDouble);
      return Value::Double(s.sum / static_cast<double>(s.count));
  }
  return Value::Null();
}

/// Spill wire format for a partial AggState: kAggStateArity Values per
/// aggregate, appended after the group-key values.
inline constexpr size_t kAggStateArity = 7;

inline std::vector<Value> EncodeAggState(const AggState& s) {
  return {Value::Bigint(s.count),          Value::Bigint(s.count_star),
          Value::Double(s.sum),            Value::Boolean(s.int_only),
          Value::Boolean(s.has),           s.has ? s.min : Value::Null(),
          s.has ? s.max : Value::Null()};
}

inline AggState DecodeAggState(const std::vector<Value>& v, size_t at) {
  AggState s;
  s.count = v[at].AsInt();
  s.count_star = v[at + 1].AsInt();
  s.sum = v[at + 2].AsDouble();
  s.int_only = v[at + 3].AsBool();
  s.has = v[at + 4].AsBool();
  s.min = v[at + 5];
  s.max = v[at + 6];
  return s;
}

}  // namespace hdb::exec

#endif  // HDB_EXEC_AGG_H_
