#ifndef HDB_EXEC_EXECUTOR_H_
#define HDB_EXEC_EXECUTOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "exec/memory_governor.h"
#include "index/btree.h"
#include "optimizer/expr.h"
#include "optimizer/plan.h"
#include "stats/feedback.h"
#include "table/table_heap.h"

namespace hdb::exec {

/// Counters the adaptive machinery exposes for tests and benches.
struct RuntimeStats {
  uint64_t rows_scanned = 0;
  uint64_t rows_output = 0;
  uint64_t hash_partitions_evicted = 0;
  uint64_t hash_spilled_tuples = 0;
  bool hash_join_used_alternate = false;
  bool group_by_used_fallback = false;
  uint64_t group_by_spilled_groups = 0;
  uint64_t sort_runs_spilled = 0;
};

/// Everything an executor needs from the engine.
struct ExecContext {
  storage::BufferPool* pool = nullptr;
  /// Table heap by table oid; index by index oid.
  std::function<table::TableHeap*(uint32_t)> table_heap;
  std::function<index::BTree*(uint32_t)> index;
  /// Optional: execution-feedback statistics collection (paper §3).
  stats::FeedbackCollector* feedback = nullptr;
  /// Optional: memory governor context (paper §4.3).
  TaskMemoryContext* memory = nullptr;
  /// Quantifier count of the query (sizes RowContext).
  size_t num_quantifiers = 0;
  /// Procedure parameter bindings, propagated into every RowContext.
  const std::vector<std::pair<std::string, Value>>* params = nullptr;
  /// Row source for virtual `sys.*` tables (by table oid): the engine
  /// materializes live telemetry at scan Open() time; SeqScan iterates
  /// the materialized rows instead of heap pages.
  std::function<Result<std::vector<std::vector<Value>>>(uint32_t)>
      virtual_rows;
  /// Non-null under EXPLAIN ANALYZE: BuildExecutor wraps every operator
  /// with an instrumenting decorator that fills one entry per plan node.
  optimizer::OpActualsMap* actuals = nullptr;
  RuntimeStats stats;
};

/// Pull-based physical operator. Next() binds quantifier slots in the
/// shared RowContext (and, for Project and above, fills ctx->output).
class Operator {
 public:
  virtual ~Operator() = default;
  virtual Status Open() = 0;
  virtual Result<bool> Next(optimizer::RowContext* ctx) = 0;
  virtual void Close() = 0;
  /// True when this operator (or its pass-through chain) fills
  /// ctx->output rather than just quantifier slots.
  virtual bool ProducesOutput() const { return false; }
  /// Bytes of working memory currently held (hash build sides, group
  /// tables, sort buffers). Sampled by EXPLAIN ANALYZE for the peak.
  virtual uint64_t MemoryBytes() const { return 0; }
};

/// Compiles a physical plan into an operator tree.
Result<std::unique_ptr<Operator>> BuildExecutor(
    const optimizer::PlanNode* plan, ExecContext* ctx);

/// Runs the plan to completion and returns the projected rows (requires a
/// Project somewhere at the root chain) or flattened quantifier rows.
Result<std::vector<std::vector<Value>>> ExecuteToRows(
    const optimizer::PlanNode* plan, ExecContext* ctx);

}  // namespace hdb::exec

#endif  // HDB_EXEC_EXECUTOR_H_
