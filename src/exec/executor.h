#ifndef HDB_EXEC_EXECUTOR_H_
#define HDB_EXEC_EXECUTOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "exec/memory_governor.h"
#include "exec/morsel.h"
#include "exec/parallel_governor.h"
#include "exec/row_batch.h"
#include "index/btree.h"
#include "optimizer/expr.h"
#include "optimizer/plan.h"
#include "stats/feedback.h"
#include "table/table_heap.h"

namespace hdb::exec {

/// Counters the adaptive machinery exposes for tests and benches.
struct RuntimeStats {
  uint64_t rows_scanned = 0;
  uint64_t rows_output = 0;
  uint64_t hash_partitions_evicted = 0;
  uint64_t hash_spilled_tuples = 0;
  bool hash_join_used_alternate = false;
  bool group_by_used_fallback = false;
  uint64_t group_by_spilled_groups = 0;
  uint64_t sort_runs_spilled = 0;
  /// Vectorized-execution counters (exec.batch.* metrics): batches and
  /// rows produced by leaf scans, the peak bytes charged for batch row
  /// pools ("arena"), and how often the memory governor shrank an
  /// operator's batch cap below the configured one.
  uint64_t batches = 0;
  uint64_t batch_rows = 0;
  uint64_t batch_arena_peak_bytes = 0;
  uint64_t batch_cap_shrinks = 0;
  /// Spill-scheduler counters (exec.spill.* metrics, DESIGN.md §10):
  /// bytes moved through SpillFiles in each direction, grace-hash
  /// re-partition passes over oversized spilled partitions, and victim
  /// choices made by the statement's spill scheduler.
  uint64_t spill_bytes_written = 0;
  uint64_t spill_bytes_read = 0;
  uint64_t spill_repartitions = 0;
  uint64_t spill_decisions = 0;
  /// Intra-query parallelism counters (exec.parallel.* metrics, paper
  /// §4.4): pipelines that ran with more than one worker, workers
  /// launched, workers revoked at a morsel boundary by the
  /// ParallelismGovernor, and morsels dispensed to exchange workers.
  uint64_t parallel_pipelines = 0;
  uint64_t parallel_workers_started = 0;
  uint64_t parallel_workers_revoked = 0;
  uint64_t parallel_morsels = 0;
};

/// Everything an executor needs from the engine.
struct ExecContext {
  storage::BufferPool* pool = nullptr;
  /// Table heap by table oid; index by index oid.
  std::function<table::TableHeap*(uint32_t)> table_heap;
  std::function<index::BTree*(uint32_t)> index;
  /// Optional: execution-feedback statistics collection (paper §3).
  stats::FeedbackCollector* feedback = nullptr;
  /// Optional: memory governor context (paper §4.3).
  TaskMemoryContext* memory = nullptr;
  /// Quantifier count of the query (sizes RowContext).
  size_t num_quantifiers = 0;
  /// Procedure parameter bindings, propagated into every RowContext.
  const std::vector<std::pair<std::string, Value>>* params = nullptr;
  /// Row source for virtual `sys.*` tables (by table oid): the engine
  /// materializes live telemetry at scan Open() time; SeqScan iterates
  /// the materialized rows instead of heap pages.
  std::function<Result<std::vector<std::vector<Value>>>(uint32_t)>
      virtual_rows;
  /// Non-null under EXPLAIN ANALYZE: BuildExecutor wraps every operator
  /// with an instrumenting decorator that fills one entry per plan node.
  optimizer::OpActualsMap* actuals = nullptr;
  /// Rows per execution batch; 0 = kDefaultBatchCap. The memory governor
  /// can shrink the effective cap per operator (DESIGN.md §9).
  size_t batch_cap = 0;
  /// Live bytes currently charged for batch row pools (arena accounting);
  /// the peak lands in stats.batch_arena_peak_bytes.
  uint64_t batch_arena_live = 0;
  /// Per-quantifier column-materialization masks (column pruning), filled
  /// by ExecuteToRows from every expression in the plan when the root
  /// projects output. Empty = decode everything. A scan passes
  /// scan_masks[quantifier] (when present and sized to its table) down to
  /// DecodeRowInto so unreferenced columns are skipped, not copied.
  std::vector<std::vector<uint8_t>> scan_masks;
  /// Intra-query parallelism (paper §4.4, DESIGN.md §13). Non-null when
  /// the engine permits parallel pipelines; BuildExecutor consults it for
  /// plan nodes the optimizer marked parallel-eligible and falls back to
  /// the serial operators when the governor grants a single worker.
  ParallelismGovernor* parallel = nullptr;
  /// Worker-fragment fields, set only in the private ExecContext an
  /// exchange operator hands each worker: the shared morsel dispenser
  /// that replaces the scan's own heap iterator (for quantifier
  /// `morsel_quantifier`), and the flag that reroutes arena charges
  /// through TaskMemoryContext::ChargeBytesFromWorker (see the
  /// concurrency contract in memory_governor.h).
  MorselDispenser* morsel_source = nullptr;
  int morsel_quantifier = -1;
  bool in_parallel_worker = false;
  /// Revocation probe, polled by the morsel-consuming scan immediately
  /// before pulling a NEW morsel from `morsel_source` — never mid-morsel,
  /// so a revoked worker can't drop rows the dispenser already handed it.
  /// Returning true makes the scan report end-of-input; the worker then
  /// winds down through its normal drain path (flush packets, merge
  /// partial aggregation state). Null = never revoked.
  std::function<bool()> morsel_revoked;
  RuntimeStats stats;
};

/// Physical operator with two pull interfaces. The native one is
/// NextBatch(): fill a RowBatch with up to capacity() rows. Next() is the
/// legacy row-at-a-time protocol, kept for operators that are inherently
/// row-oriented (nested-loop join, sort) and for incremental migration;
/// the base class bridges the two directions:
///   * a row-native operator inherits the default NextBatch(), which
///     pulls Next() into the batch via RowBatch::CaptureRow;
///   * a batch-native operator keeps its row-at-a-time Next() as well, so
///     row-driven parents (nested-loop join, sort) still compose with it.
/// Either way, Next() binds quantifier slots in the shared RowContext
/// (and, for Project and above, fills ctx->output), and NextBatch()
/// returns false only at end of stream — a true return with
/// ActiveCount()==0 just means every row of the batch was filtered.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual Status Open() = 0;
  virtual Result<bool> Next(optimizer::RowContext* ctx) = 0;
  /// Resets and fills `batch`. Default: row→batch adapter over Next().
  virtual Result<bool> NextBatch(RowBatch* batch);
  virtual void Close() = 0;
  /// True when this operator (or its pass-through chain) fills
  /// ctx->output rather than just quantifier slots.
  virtual bool ProducesOutput() const { return false; }
  /// Bytes of working memory currently held (hash build sides, group
  /// tables, sort buffers). Sampled by EXPLAIN ANALYZE for the peak.
  virtual uint64_t MemoryBytes() const { return 0; }
  /// Cumulative spill output of this operator (bytes / tuples written to
  /// SpillFiles). Sampled by EXPLAIN ANALYZE for the `spilled=` actuals.
  virtual uint64_t SpilledBytes() const { return 0; }
  virtual uint64_t SpilledTuples() const { return 0; }

 private:
  // Scratch state of the default row→batch adapter.
  optimizer::RowContext adapter_ctx_;
};

/// Compiles a physical plan into an operator tree.
Result<std::unique_ptr<Operator>> BuildExecutor(
    const optimizer::PlanNode* plan, ExecContext* ctx);

/// Runs the plan to completion and returns the projected rows (requires a
/// Project somewhere at the root chain) or flattened quantifier rows.
Result<std::vector<std::vector<Value>>> ExecuteToRows(
    const optimizer::PlanNode* plan, ExecContext* ctx);

}  // namespace hdb::exec

#endif  // HDB_EXEC_EXECUTOR_H_
