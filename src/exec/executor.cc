#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include <string_view>

#include "common/ophash.h"
#include "exec/agg.h"
#include "exec/exchange.h"
#include "exec/spill.h"
#include "obs/trace.h"
#include "table/row_codec.h"

namespace hdb::exec {

// Default row→batch adapter: any operator that only speaks the row
// protocol (nested-loop join, sort) still participates in batch flow by
// pulling itself row-at-a-time into the caller's batch. CaptureRow copies
// the bound slots into batch-owned storage, so the batch's pointer
// lifetime contract holds even though the source pointers rotate per row.
Result<bool> Operator::NextBatch(RowBatch* batch) {
  batch->Reset();
  if (adapter_ctx_.rows.size() != batch->num_slots()) {
    adapter_ctx_.rows.assign(batch->num_slots(), nullptr);
    adapter_ctx_.params = batch->params();
  }
  const bool with_output = ProducesOutput();
  size_t n = 0;
  while (n < batch->capacity()) {
    HDB_ASSIGN_OR_RETURN(const bool more, Next(&adapter_ctx_));
    if (!more) break;
    batch->CaptureRow(n, adapter_ctx_, with_output);
    ++n;
  }
  batch->SetSize(n);
  return n > 0;
}

namespace {

using optimizer::CompareOp;
using optimizer::Expr;
using optimizer::ExprKind;
using optimizer::ExprPtr;
using optimizer::PlanKind;
using optimizer::PlanNode;
using optimizer::RowContext;

// ---------------------------------------------------------------------------
// Feedback observation: recognize single-column predicates whose outcomes
// can update the self-managing statistics (paper §3.2: "the evaluation of
// (almost) any predicate over a base column can lead to an update of the
// histogram for this column").
// ---------------------------------------------------------------------------

struct ObservablePred {
  enum Kind { kEq, kRange, kIsNull, kLike } kind = kEq;
  int column = -1;
  std::optional<Value> lo, hi;
  std::string pattern;
};

std::optional<ObservablePred> ClassifyObservable(const ExprPtr& e,
                                                 int quantifier) {
  ObservablePred p;
  if (e->kind() == ExprKind::kCompare) {
    const Expr* l = e->children()[0].get();
    const Expr* r = e->children()[1].get();
    const Expr* col = nullptr;
    const Expr* lit = nullptr;
    CompareOp op = e->compare_op();
    if (l->kind() == ExprKind::kColumnRef && r->kind() == ExprKind::kLiteral) {
      col = l;
      lit = r;
    } else if (r->kind() == ExprKind::kColumnRef &&
               l->kind() == ExprKind::kLiteral) {
      col = r;
      lit = l;
      switch (op) {
        case CompareOp::kLt: op = CompareOp::kGt; break;
        case CompareOp::kLe: op = CompareOp::kGe; break;
        case CompareOp::kGt: op = CompareOp::kLt; break;
        case CompareOp::kGe: op = CompareOp::kLe; break;
        default: break;
      }
    } else {
      return std::nullopt;
    }
    if (col->quantifier() != quantifier) return std::nullopt;
    p.column = col->column();
    switch (op) {
      case CompareOp::kEq:
        p.kind = ObservablePred::kEq;
        p.lo = lit->literal();
        return p;
      case CompareOp::kLt:
      case CompareOp::kLe:
        p.kind = ObservablePred::kRange;
        p.hi = lit->literal();
        return p;
      case CompareOp::kGt:
      case CompareOp::kGe:
        p.kind = ObservablePred::kRange;
        p.lo = lit->literal();
        return p;
      default:
        return std::nullopt;
    }
  }
  if (e->kind() == ExprKind::kBetween) {
    const Expr* v = e->children()[0].get();
    const Expr* lo = e->children()[1].get();
    const Expr* hi = e->children()[2].get();
    if (v->kind() == ExprKind::kColumnRef && v->quantifier() == quantifier &&
        lo->kind() == ExprKind::kLiteral && hi->kind() == ExprKind::kLiteral) {
      p.kind = ObservablePred::kRange;
      p.column = v->column();
      p.lo = lo->literal();
      p.hi = hi->literal();
      return p;
    }
    return std::nullopt;
  }
  if (e->kind() == ExprKind::kIsNull) {
    const Expr* v = e->children()[0].get();
    if (v->kind() == ExprKind::kColumnRef && v->quantifier() == quantifier &&
        !e->negated()) {
      p.kind = ObservablePred::kIsNull;
      p.column = v->column();
      return p;
    }
    return std::nullopt;
  }
  if (e->kind() == ExprKind::kLike) {
    const Expr* v = e->children()[0].get();
    if (v->kind() == ExprKind::kColumnRef && v->quantifier() == quantifier) {
      p.kind = ObservablePred::kLike;
      p.column = v->column();
      p.pattern = e->pattern();
      return p;
    }
  }
  return std::nullopt;
}

void Observe(ExecContext* ec, uint32_t table_oid, const ObservablePred& p,
             bool matched) {
  if (ec->feedback == nullptr) return;
  switch (p.kind) {
    case ObservablePred::kEq:
      ec->feedback->ObserveEquals(table_oid, p.column, *p.lo, matched);
      break;
    case ObservablePred::kRange:
      ec->feedback->ObserveRange(table_oid, p.column, p.lo, p.hi, matched);
      break;
    case ObservablePred::kIsNull:
      ec->feedback->ObserveIsNull(table_oid, p.column, matched);
      break;
    case ObservablePred::kLike:
      ec->feedback->ObserveLike(table_oid, p.column, p.pattern, matched);
      break;
  }
}

/// A conjunct compiled down to "column <op> literal" (or BETWEEN two
/// literals), evaluable against a batch column without walking the
/// expression tree or constructing a Result<Value> per row. The literals
/// are non-null, so matching `v.is_null() -> false; else Value::Compare`
/// is exactly the three-valued-logic outcome of Expr::Evaluate.
struct FastPred {
  bool is_between = false;
  int slot = 0;    // quantifier slot whose batch column holds the row
  int column = 0;  // column within that row
  optimizer::CompareOp op = optimizer::CompareOp::kEq;
  Value lo, hi;  // compare: lo only; between: [lo, hi]
};

std::optional<FastPred> ClassifyFast(const ExprPtr& e) {
  using optimizer::CompareOp;
  if (e->kind() == ExprKind::kCompare) {
    const Expr* l = e->children()[0].get();
    const Expr* r = e->children()[1].get();
    FastPred f;
    f.op = e->compare_op();
    if (l->kind() == ExprKind::kColumnRef &&
        r->kind() == ExprKind::kLiteral) {
      f.slot = l->quantifier();
      f.column = l->column();
      f.lo = r->literal();
    } else if (r->kind() == ExprKind::kColumnRef &&
               l->kind() == ExprKind::kLiteral) {
      f.slot = r->quantifier();
      f.column = r->column();
      f.lo = l->literal();
      switch (f.op) {  // literal <op> column: mirror the operator
        case CompareOp::kLt: f.op = CompareOp::kGt; break;
        case CompareOp::kLe: f.op = CompareOp::kGe; break;
        case CompareOp::kGt: f.op = CompareOp::kLt; break;
        case CompareOp::kGe: f.op = CompareOp::kLe; break;
        default: break;  // = and <> are symmetric
      }
    } else {
      return std::nullopt;
    }
    if (f.lo.is_null()) return std::nullopt;
    return f;
  }
  if (e->kind() == ExprKind::kBetween) {
    const Expr* v = e->children()[0].get();
    const Expr* lo = e->children()[1].get();
    const Expr* hi = e->children()[2].get();
    if (v->kind() != ExprKind::kColumnRef ||
        lo->kind() != ExprKind::kLiteral ||
        hi->kind() != ExprKind::kLiteral) {
      return std::nullopt;
    }
    FastPred f;
    f.is_between = true;
    f.slot = v->quantifier();
    f.column = v->column();
    f.lo = lo->literal();
    f.hi = hi->literal();
    if (f.lo.is_null() || f.hi.is_null()) return std::nullopt;
    return f;
  }
  return std::nullopt;
}

bool FastMatch(const FastPred& f, const table::Row& row) {
  using optimizer::CompareOp;
  const Value& v = row[f.column];
  if (v.is_null()) return false;  // NULL comparison fails a filter
  if (f.is_between) return v.Compare(f.lo) >= 0 && v.Compare(f.hi) <= 0;
  const int c = v.Compare(f.lo);
  switch (f.op) {
    case CompareOp::kEq: return c == 0;
    case CompareOp::kNe: return c != 0;
    case CompareOp::kLt: return c < 0;
    case CompareOp::kLe: return c <= 0;
    case CompareOp::kGt: return c > 0;
    case CompareOp::kGe: return c >= 0;
  }
  return false;
}

/// A conjunct plus its (optional) observable classification and compiled
/// fast form.
struct CheckedPred {
  ExprPtr expr;
  std::optional<ObservablePred> observable;
  std::optional<FastPred> fast;
};

std::vector<CheckedPred> PrepareResidual(const ExprPtr& residual,
                                         int quantifier) {
  std::vector<CheckedPred> out;
  std::vector<ExprPtr> conjuncts;
  optimizer::SplitConjuncts(residual, &conjuncts);
  for (const ExprPtr& c : conjuncts) {
    out.push_back(
        CheckedPred{c, ClassifyObservable(c, quantifier), ClassifyFast(c)});
  }
  return out;
}

/// Evaluates the residual conjuncts, observing outcomes. Short-circuits on
/// the first failure (later conjuncts go unobserved, which matches a real
/// engine's evaluation order).
Result<bool> EvalResidual(ExecContext* ec, uint32_t table_oid,
                          const std::vector<CheckedPred>& preds,
                          const RowContext& ctx) {
  for (const CheckedPred& p : preds) {
    HDB_ASSIGN_OR_RETURN(const bool ok, p.expr->EvaluatesToTrue(ctx));
    if (p.observable.has_value()) {
      Observe(ec, table_oid, *p.observable, ok);
    }
    if (!ok) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Vectorized-execution helpers (DESIGN.md §9)
// ---------------------------------------------------------------------------

void BumpBatchStats(ExecContext* ec, size_t rows) {
  ec->stats.batches++;
  ec->stats.batch_rows += rows;
}

/// Heterogeneous hash so encoded group/distinct keys can be probed as
/// string_view without materializing a std::string per row (C++20
/// transparent unordered lookup).
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

/// Rough decoded-row footprint for a table: Value header plus small-string
/// storage per column, vector header per row. Used only to size batch row
/// pools against the memory governor's quota, not for exact accounting.
size_t ApproxRowBytes(const catalog::TableDef& table) {
  return 48 * table.columns.size() + 64;
}

/// Effective rows-per-batch for one operator: the configured cap, shrunk
/// so that a batch row pool of `row_bytes_hint`-sized rows never claims
/// more than 1/8 of the statement's soft memory quota. Under low-memory
/// strategies (paper §4.3) the cap degrades toward 1 — back to
/// row-at-a-time — before the blocking operators above start spilling.
size_t EffectiveBatchCap(ExecContext* ec, size_t row_bytes_hint) {
  size_t cap = ec->batch_cap != 0 ? ec->batch_cap : kDefaultBatchCap;
  cap = std::min(cap, kMaxBatchCap);
  if (ec->memory != nullptr && ec->pool != nullptr && row_bytes_hint > 0) {
    const uint64_t soft_bytes =
        static_cast<uint64_t>(ec->memory->soft_limit_pages()) *
        ec->pool->page_bytes();
    const uint64_t max_rows =
        std::max<uint64_t>(1, (soft_bytes / 8) / row_bytes_hint);
    if (max_rows < cap) {
      cap = static_cast<size_t>(max_rows);
      ec->stats.batch_cap_shrinks++;
    }
  }
  return cap;
}

/// Charges a batch row pool ("arena") against the statement quota and
/// tracks the live/peak arena bytes. `*charged` accumulates what must be
/// released.
Status ChargeArena(ExecContext* ec, uint64_t bytes, uint64_t* charged) {
  if (bytes == 0) return Status::OK();
  if (ec->memory != nullptr) {
    // Exchange workers must never run the coordinator-only spill
    // scheduler (memory_governor.h concurrency contract); their charges
    // take the latch-only path and rely on Eq. (4) for the hard stop.
    if (ec->in_parallel_worker) {
      HDB_RETURN_IF_ERROR(ec->memory->ChargeBytesFromWorker(bytes));
    } else {
      HDB_RETURN_IF_ERROR(ec->memory->ChargeBytes(bytes));
    }
  }
  *charged += bytes;
  ec->batch_arena_live += bytes;
  ec->stats.batch_arena_peak_bytes =
      std::max(ec->stats.batch_arena_peak_bytes, ec->batch_arena_live);
  return Status::OK();
}

void ReleaseArena(ExecContext* ec, uint64_t* charged) {
  if (*charged == 0) return;
  if (ec->memory != nullptr) ec->memory->ReleaseBytes(*charged);
  ec->batch_arena_live -= std::min(ec->batch_arena_live, *charged);
  *charged = 0;
}

void InitScratchCtx(ExecContext* ec, RowContext* ctx) {
  ctx->rows.assign(ec->num_quantifiers + 1, nullptr);
  ctx->params = ec->params;
}

/// Applies residual conjuncts to a batch by compacting its selection
/// vector, conjunct-major: conjunct j is only evaluated on the survivors
/// of conjuncts 1..j-1, so per-row short-circuiting — and therefore the
/// set of feedback observations (paper §3.2) — is identical to the
/// row-at-a-time path. In-place compaction is safe because the write
/// index never passes the read index.
Status ApplyPredsToBatch(ExecContext* ec, uint32_t table_oid,
                         const std::vector<CheckedPred>& preds, RowBatch* b,
                         RowContext* ctx) {
  for (const CheckedPred& p : preds) {
    const size_t n = b->ActiveCount();
    if (n == 0) break;
    uint16_t* sel = b->MutableSel();
    size_t k = 0;
    const table::Row* const* fast_col =
        p.fast.has_value() ? b->Column(p.fast->slot) : nullptr;
    if (fast_col != nullptr) {
      // Compiled simple conjunct: tight loop over the batch column, no
      // RowContext binding and no expression-tree walk per row.
      const FastPred& f = *p.fast;
      const bool observe = p.observable.has_value() && ec != nullptr;
      for (size_t i = 0; i < n; ++i) {
        const size_t pos = b->Active(i);
        const bool ok = FastMatch(f, *fast_col[pos]);
        if (observe) Observe(ec, table_oid, *p.observable, ok);
        if (ok) sel[k++] = static_cast<uint16_t>(pos);
      }
      b->SetSelection(k);
      continue;
    }
    for (size_t i = 0; i < n; ++i) {
      const size_t pos = b->Active(i);
      b->BindRow(pos, ctx);
      HDB_ASSIGN_OR_RETURN(const bool ok, p.expr->EvaluatesToTrue(*ctx));
      if (p.observable.has_value() && ec != nullptr) {
        Observe(ec, table_oid, *p.observable, ok);
      }
      if (ok) sel[k++] = static_cast<uint16_t>(pos);
    }
    b->SetSelection(k);
  }
  return Status::OK();
}

/// Splits an expression into unobserved CheckedPreds (plain conjuncts, no
/// feedback classification) for batch evaluation of join extra conditions
/// and standalone filters.
std::vector<CheckedPred> PrepareUnobserved(const ExprPtr& e) {
  std::vector<CheckedPred> out;
  if (e == nullptr) return out;
  std::vector<ExprPtr> conjuncts;
  optimizer::SplitConjuncts(e, &conjuncts);
  for (const ExprPtr& c : conjuncts) {
    out.push_back(CheckedPred{c, std::nullopt, ClassifyFast(c)});
  }
  return out;
}

/// Evaluates `e` for the row bound in `ctx`, fast-pathing the ubiquitous
/// plain-column case: a single copy-assign (which keeps `out`'s string
/// capacity) instead of an Evaluate tree walk returning a fresh
/// Result<Value> per row.
Status EvalExprInto(const Expr* e, const RowContext& ctx, Value* out) {
  if (e->kind() == ExprKind::kColumnRef) {
    const table::Row* r = ctx.rows[e->quantifier()];
    if (r != nullptr) {
      *out = (*r)[e->column()];
      return Status::OK();
    }
  }
  HDB_ASSIGN_OR_RETURN(Value v, e->Evaluate(ctx));
  *out = std::move(v);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Column pruning (DESIGN.md §9): which columns of each quantifier's base
// table does the plan actually reference? A scan hands the mask to
// DecodeRowInto so unreferenced columns are skipped in the byte stream
// rather than copied into the row pool.
// ---------------------------------------------------------------------------

void CollectExprColumns(const Expr* e,
                        std::vector<std::vector<uint8_t>>* masks) {
  if (e == nullptr) return;
  if (e->kind() == ExprKind::kColumnRef) {
    const int q = e->quantifier();
    const int c = e->column();
    if (q >= 0 && c >= 0) {
      if (masks->size() <= static_cast<size_t>(q)) masks->resize(q + 1);
      auto& m = (*masks)[q];
      if (m.size() <= static_cast<size_t>(c)) m.resize(c + 1, 0);
      m[c] = 1;
    }
  }
  for (const ExprPtr& ch : e->children()) CollectExprColumns(ch.get(), masks);
}

void CollectPlanColumnMasks(const PlanNode* n,
                            std::vector<std::vector<uint8_t>>* masks) {
  CollectExprColumns(n->residual.get(), masks);
  CollectExprColumns(n->outer_key.get(), masks);
  CollectExprColumns(n->inner_key.get(), masks);
  CollectExprColumns(n->extra_condition.get(), masks);
  CollectExprColumns(n->index_lo_expr.get(), masks);
  CollectExprColumns(n->index_hi_expr.get(), masks);
  CollectExprColumns(n->having.get(), masks);
  for (const ExprPtr& k : n->group_keys) CollectExprColumns(k.get(), masks);
  for (const auto& a : n->aggregates) CollectExprColumns(a.arg.get(), masks);
  for (const auto& o : n->order) CollectExprColumns(o.expr.get(), masks);
  for (const auto& p : n->projections) CollectExprColumns(p.expr.get(), masks);
  for (const auto& c : n->children) CollectPlanColumnMasks(c.get(), masks);
}

/// Plan-level mirror of Operator::ProducesOutput: true when the root
/// chain delivers projected output rows, so result fetch never flattens
/// raw quantifier slots — the precondition for column pruning.
bool PlanProducesOutput(const PlanNode* n) {
  switch (n->kind) {
    case PlanKind::kProject:
    case PlanKind::kHashDistinct:
      return true;
    case PlanKind::kFilter:
    case PlanKind::kLimit:
      return !n->children.empty() && PlanProducesOutput(n->children[0].get());
    default:
      // Sort and the joins/scans mirror Operator::ProducesOutput and
      // report false; result fetch flattens raw slots for them, so every
      // column must be materialized.
      return false;
  }
}

void CollectBoundQuantifiers(const PlanNode* n, std::vector<int>* out) {
  switch (n->kind) {
    case PlanKind::kSeqScan:
    case PlanKind::kIndexScan:
      out->push_back(n->quantifier);
      return;
    case PlanKind::kIndexNLJoin:
      CollectBoundQuantifiers(n->children[0].get(), out);
      out->push_back(n->quantifier);
      return;
    default:
      for (const auto& c : n->children) {
        CollectBoundQuantifiers(c.get(), out);
      }
  }
}

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

class SeqScanOp : public Operator {
 public:
  SeqScanOp(const PlanNode* plan, ExecContext* ec)
      : plan_(plan), ec_(ec),
        preds_(PrepareResidual(plan->residual, plan->quantifier)) {}

  Status Open() override {
    InitScratchCtx(ec_, &scratch_);
    if (plan_->table->is_virtual) {
      // sys.* scan: the engine materializes live telemetry rows here.
      if (ec_->virtual_rows == nullptr) {
        return Status::Internal("no virtual-table row source");
      }
      HDB_ASSIGN_OR_RETURN(virtual_rows_,
                           ec_->virtual_rows(plan_->table->oid));
      virtual_pos_ = 0;
      cap_ = EffectiveBatchCap(ec_, 0);
      return Status::OK();
    }
    heap_ = ec_->table_heap(plan_->table->oid);
    if (heap_ == nullptr) return Status::Internal("missing table heap");
    // Exchange-worker fragment: this scan's rows come from the pipeline's
    // shared morsel dispenser (FCFS over one heap iterator, DESIGN.md
    // §13) instead of a private iterator. Decoding still happens here,
    // outside the dispenser's latch.
    morsel_mode_ = ec_->morsel_source != nullptr &&
                   plan_->quantifier == ec_->morsel_quantifier;
    morsel_n_ = 0;
    morsel_pos_ = 0;
    if (!morsel_mode_) it_ = heap_->Scan();
    const size_t hint = ApproxRowBytes(*plan_->table);
    cap_ = EffectiveBatchCap(ec_, hint);
    HDB_RETURN_IF_ERROR(ChargeArena(ec_, cap_ * hint, &arena_charged_));
    // Column pruning: when ExecuteToRows computed reference masks (root
    // projects output), decode only the columns this plan touches. The
    // decoder is prepared either way — fixed-offset decode pays off even
    // without a mask.
    const uint8_t* needed = nullptr;
    if (!ec_->scan_masks.empty()) {
      const auto q = static_cast<size_t>(plan_->quantifier);
      mask_storage_.assign(plan_->table->columns.size(), 0);
      if (q < ec_->scan_masks.size()) {
        const auto& m = ec_->scan_masks[q];
        std::copy(m.begin(),
                  m.begin() + std::min(m.size(), mask_storage_.size()),
                  mask_storage_.begin());
      }
      needed = mask_storage_.data();
    }
    decoder_.Prepare(*plan_->table, needed);
    return Status::OK();
  }

  Result<bool> NextBatch(RowBatch* b) override {
    b->Reset();
    const size_t cap = std::min(cap_, b->capacity());
    if (plan_->table->is_virtual) {
      if (virtual_pos_ >= virtual_rows_.size()) return false;
      const size_t n = std::min(cap, virtual_rows_.size() - virtual_pos_);
      const table::Row** col = b->BindSlot(plan_->quantifier);
      for (size_t i = 0; i < n; ++i) {
        col[i] = &virtual_rows_[virtual_pos_ + i];
      }
      virtual_pos_ += n;
      ec_->stats.rows_scanned += n;
      BumpBatchStats(ec_, n);
      b->SetSize(n);
      HDB_RETURN_IF_ERROR(
          ApplyPredsToBatch(ec_, plan_->table->oid, preds_, b, &scratch_));
      return true;
    }
    if (morsel_mode_) {
      if (morsel_pos_ >= morsel_n_) {
        // The revocation boundary (DESIGN.md §13): only between morsels,
        // never mid-morsel — rows already dispensed to this worker must
        // be fully consumed before it may stand down.
        if (ec_->morsel_revoked && ec_->morsel_revoked()) return false;
        HDB_ASSIGN_OR_RETURN(morsel_n_, ec_->morsel_source->Next(
                                            &morsel_bytes_, &morsel_rids_));
        morsel_pos_ = 0;
        if (morsel_n_ == 0) return false;
      }
      // A morsel can exceed the (governor-shrunk) batch cap; carry the
      // remainder over to the next pull instead of over-filling.
      const size_t n = std::min(cap, morsel_n_ - morsel_pos_);
      if (rows_pool_.size() < n) rows_pool_.resize(n);
      for (size_t i = 0; i < n; ++i) {
        const std::string& bytes = morsel_bytes_[morsel_pos_ + i];
        HDB_RETURN_IF_ERROR(
            decoder_.DecodeInto(bytes.data(), bytes.size(), &rows_pool_[i]));
      }
      morsel_pos_ += n;
      ec_->stats.rows_scanned += n;
      BumpBatchStats(ec_, n);
      const table::Row** col = b->BindSlot(plan_->quantifier);
      for (size_t i = 0; i < n; ++i) col[i] = &rows_pool_[i];
      b->SetSize(n);
      HDB_RETURN_IF_ERROR(
          ApplyPredsToBatch(ec_, plan_->table->oid, preds_, b, &scratch_));
      return true;
    }
    HDB_ASSIGN_OR_RETURN(
        const size_t n, it_->NextRows(cap, &rows_pool_, &rids_pool_,
                                      &decoder_));
    if (n == 0) return false;
    ec_->stats.rows_scanned += n;
    BumpBatchStats(ec_, n);
    const table::Row** col = b->BindSlot(plan_->quantifier);
    for (size_t i = 0; i < n; ++i) col[i] = &rows_pool_[i];
    b->SetSize(n);
    HDB_RETURN_IF_ERROR(
        ApplyPredsToBatch(ec_, plan_->table->oid, preds_, b, &scratch_));
    return true;
  }

  Result<bool> Next(RowContext* ctx) override {
    if (plan_->table->is_virtual) {
      while (virtual_pos_ < virtual_rows_.size()) {
        ec_->stats.rows_scanned++;
        row_ = virtual_rows_[virtual_pos_++];
        ctx->rows[plan_->quantifier] = &row_;
        HDB_ASSIGN_OR_RETURN(
            const bool pass,
            EvalResidual(ec_, plan_->table->oid, preds_, *ctx));
        if (pass) return true;
      }
      ctx->rows[plan_->quantifier] = nullptr;
      return false;
    }
    if (morsel_mode_) {
      for (;;) {
        if (morsel_pos_ >= morsel_n_) {
          // Morsel-boundary revocation; see the NextBatch twin above.
          if (ec_->morsel_revoked && ec_->morsel_revoked()) break;
          HDB_ASSIGN_OR_RETURN(morsel_n_, ec_->morsel_source->Next(
                                              &morsel_bytes_, &morsel_rids_));
          morsel_pos_ = 0;
          if (morsel_n_ == 0) break;
        }
        const std::string& bytes = morsel_bytes_[morsel_pos_++];
        ec_->stats.rows_scanned++;
        HDB_RETURN_IF_ERROR(
            decoder_.DecodeInto(bytes.data(), bytes.size(), &row_));
        ctx->rows[plan_->quantifier] = &row_;
        HDB_ASSIGN_OR_RETURN(
            const bool pass,
            EvalResidual(ec_, plan_->table->oid, preds_, *ctx));
        if (pass) return true;
      }
      ctx->rows[plan_->quantifier] = nullptr;
      return false;
    }
    Rid rid;
    std::string bytes;
    while (it_->Next(&rid, &bytes)) {
      ec_->stats.rows_scanned++;
      HDB_ASSIGN_OR_RETURN(
          row_, table::DecodeRow(*plan_->table, bytes.data(), bytes.size()));
      ctx->rows[plan_->quantifier] = &row_;
      HDB_ASSIGN_OR_RETURN(const bool pass,
                           EvalResidual(ec_, plan_->table->oid, preds_, *ctx));
      if (pass) return true;
    }
    ctx->rows[plan_->quantifier] = nullptr;
    return false;
  }

  void Close() override {
    it_.reset();
    ReleaseArena(ec_, &arena_charged_);
  }

 private:
  const PlanNode* plan_;
  ExecContext* ec_;
  std::vector<CheckedPred> preds_;
  table::TableHeap* heap_ = nullptr;
  std::optional<table::TableHeap::Iterator> it_;
  std::vector<std::vector<Value>> virtual_rows_;
  size_t virtual_pos_ = 0;
  std::vector<Value> row_;
  // Batch path: reusable decoded-row pool (the "arena") + scratch context
  // for residual evaluation.
  size_t cap_ = kDefaultBatchCap;
  uint64_t arena_charged_ = 0;
  std::vector<table::Row> rows_pool_;
  std::vector<Rid> rids_pool_;
  // Morsel mode (exchange-worker fragments): encoded rows pulled from the
  // shared dispenser, consumed across batch pulls at morsel_pos_.
  bool morsel_mode_ = false;
  std::vector<std::string> morsel_bytes_;
  std::vector<Rid> morsel_rids_;
  size_t morsel_n_ = 0;
  size_t morsel_pos_ = 0;
  std::vector<uint8_t> mask_storage_;  // padded to the table's arity
  table::RowDecoder decoder_;          // compiled (schema, mask) decode
  RowContext scratch_;
};

class IndexScanOp : public Operator {
 public:
  IndexScanOp(const PlanNode* plan, ExecContext* ec)
      : plan_(plan), ec_(ec),
        preds_(PrepareResidual(plan->residual, plan->quantifier)) {}

  Status Open() override {
    heap_ = ec_->table_heap(plan_->table->oid);
    index::BTree* tree = ec_->index(plan_->index->oid);
    if (heap_ == nullptr || tree == nullptr) {
      return Status::Internal("missing table heap or index");
    }
    rids_.clear();
    pos_ = 0;
    double lo = plan_->index_lo.value_or(
        -std::numeric_limits<double>::infinity());
    double hi =
        plan_->index_hi.value_or(std::numeric_limits<double>::infinity());
    // Parameterized bounds: the cached plan is parameter-independent; the
    // concrete range binds here, per invocation (paper §4.1).
    RowContext param_ctx;
    param_ctx.params = ec_->params;
    if (plan_->index_lo_expr != nullptr) {
      HDB_ASSIGN_OR_RETURN(const Value v,
                           plan_->index_lo_expr->Evaluate(param_ctx));
      lo = OrderPreservingHash(v);
    }
    if (plan_->index_hi_expr != nullptr) {
      HDB_ASSIGN_OR_RETURN(const Value v,
                           plan_->index_hi_expr->Evaluate(param_ctx));
      hi = OrderPreservingHash(v);
    }
    HDB_RETURN_IF_ERROR(tree->ScanRange(lo, plan_->index_lo_inclusive, hi,
                                        plan_->index_hi_inclusive,
                                        [this](double, Rid rid) {
                                          rids_.push_back(rid);
                                          return true;
                                        }));
    InitScratchCtx(ec_, &scratch_);
    const size_t hint = ApproxRowBytes(*plan_->table);
    cap_ = EffectiveBatchCap(ec_, hint);
    HDB_RETURN_IF_ERROR(ChargeArena(ec_, cap_ * hint, &arena_charged_));
    return Status::OK();
  }

  Result<bool> NextBatch(RowBatch* b) override {
    b->Reset();
    if (pos_ >= rids_.size()) return false;
    const size_t n = std::min(std::min(cap_, b->capacity()),
                              rids_.size() - pos_);
    HDB_RETURN_IF_ERROR(heap_->GetMany(&rids_[pos_], n, &rows_pool_));
    pos_ += n;
    ec_->stats.rows_scanned += n;
    BumpBatchStats(ec_, n);
    const table::Row** col = b->BindSlot(plan_->quantifier);
    for (size_t i = 0; i < n; ++i) col[i] = &rows_pool_[i];
    b->SetSize(n);
    HDB_RETURN_IF_ERROR(
        ApplyPredsToBatch(ec_, plan_->table->oid, preds_, b, &scratch_));
    return true;
  }

  Result<bool> Next(RowContext* ctx) override {
    while (pos_ < rids_.size()) {
      const Rid rid = rids_[pos_++];
      ec_->stats.rows_scanned++;
      HDB_ASSIGN_OR_RETURN(const std::string bytes, heap_->Get(rid));
      HDB_ASSIGN_OR_RETURN(
          row_, table::DecodeRow(*plan_->table, bytes.data(), bytes.size()));
      ctx->rows[plan_->quantifier] = &row_;
      HDB_ASSIGN_OR_RETURN(const bool pass,
                           EvalResidual(ec_, plan_->table->oid, preds_, *ctx));
      if (pass) return true;
    }
    ctx->rows[plan_->quantifier] = nullptr;
    return false;
  }

  void Close() override { ReleaseArena(ec_, &arena_charged_); }

 private:
  const PlanNode* plan_;
  ExecContext* ec_;
  std::vector<CheckedPred> preds_;
  table::TableHeap* heap_ = nullptr;
  std::vector<Rid> rids_;
  size_t pos_ = 0;
  std::vector<Value> row_;
  size_t cap_ = kDefaultBatchCap;
  uint64_t arena_charged_ = 0;
  std::vector<table::Row> rows_pool_;
  RowContext scratch_;
};

// ---------------------------------------------------------------------------
// Simple relational operators
// ---------------------------------------------------------------------------

class FilterOp : public Operator {
 public:
  FilterOp(const PlanNode* plan, std::unique_ptr<Operator> child)
      : plan_(plan), child_(std::move(child)),
        conjuncts_(PrepareUnobserved(plan->residual)) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(RowContext* ctx) override {
    for (;;) {
      HDB_ASSIGN_OR_RETURN(const bool more, child_->Next(ctx));
      if (!more) return false;
      if (plan_->residual == nullptr) return true;
      HDB_ASSIGN_OR_RETURN(const bool ok,
                           plan_->residual->EvaluatesToTrue(*ctx));
      if (ok) return true;
    }
  }

  Result<bool> NextBatch(RowBatch* b) override {
    HDB_ASSIGN_OR_RETURN(const bool more, child_->NextBatch(b));
    if (!more) return false;
    if (scratch_.rows.size() != b->num_slots()) {
      scratch_.rows.assign(b->num_slots(), nullptr);
      scratch_.params = b->params();
    }
    HDB_RETURN_IF_ERROR(ApplyPredsToBatch(/*ec=*/nullptr, /*table_oid=*/0,
                                          conjuncts_, b, &scratch_));
    return true;
  }

  void Close() override { child_->Close(); }
  bool ProducesOutput() const override { return child_->ProducesOutput(); }

 private:
  const PlanNode* plan_;
  std::unique_ptr<Operator> child_;
  std::vector<CheckedPred> conjuncts_;
  RowContext scratch_;
};

class ProjectOp : public Operator {
 public:
  ProjectOp(const PlanNode* plan, std::unique_ptr<Operator> child)
      : plan_(plan), child_(std::move(child)) {
    // Plain pass-through projection (every item a column reference) gets a
    // dedicated loop reading child batch columns directly — no RowContext
    // binding and no expression dispatch per row.
    all_simple_ = !plan_->projections.empty();
    for (const auto& item : plan_->projections) {
      if (item.expr == nullptr || item.expr->kind() != ExprKind::kColumnRef ||
          item.expr->quantifier() < 0) {
        all_simple_ = false;
        break;
      }
      simple_.emplace_back(item.expr->quantifier(), item.expr->column());
    }
  }

  Status Open() override { return child_->Open(); }

  Result<bool> Next(RowContext* ctx) override {
    HDB_ASSIGN_OR_RETURN(const bool more, child_->Next(ctx));
    if (!more) return false;
    ctx->output.clear();
    ctx->output.reserve(plan_->projections.size());
    for (const auto& item : plan_->projections) {
      HDB_ASSIGN_OR_RETURN(Value v, item.expr->Evaluate(*ctx));
      ctx->output.push_back(std::move(v));
    }
    return true;
  }

  Result<bool> NextBatch(RowBatch* b) override {
    HDB_ASSIGN_OR_RETURN(const bool more, child_->NextBatch(b));
    if (!more) return false;
    if (scratch_.rows.size() != b->num_slots()) {
      scratch_.rows.assign(b->num_slots(), nullptr);
      scratch_.params = b->params();
    }
    const size_t n = b->ActiveCount();
    const size_t nproj = plan_->projections.size();
    if (all_simple_) {
      bool cols_ok = true;
      src_cols_.resize(nproj);
      for (size_t j = 0; j < nproj; ++j) {
        src_cols_[j] = b->Column(simple_[j].first);
        cols_ok &= src_cols_[j] != nullptr;
      }
      if (cols_ok) {
        table::Row* outcol = b->OutputColumn();
        for (size_t i = 0; i < n; ++i) {
          const size_t pos = b->Active(i);
          table::Row& out = outcol[pos];
          out.resize(nproj);
          for (size_t j = 0; j < nproj; ++j) {
            out[j] = (*src_cols_[j][pos])[simple_[j].second];
          }
        }
        return true;
      }
    }
    for (size_t i = 0; i < n; ++i) {
      const size_t pos = b->Active(i);
      b->BindRow(pos, &scratch_);
      table::Row* out = b->OutputRow(pos);
      out->resize(nproj);
      for (size_t j = 0; j < nproj; ++j) {
        // Copy-assign into the reused output slot keeps string capacity.
        HDB_RETURN_IF_ERROR(EvalExprInto(plan_->projections[j].expr.get(),
                                         scratch_, &(*out)[j]));
      }
    }
    return true;
  }

  void Close() override { child_->Close(); }
  bool ProducesOutput() const override { return true; }

 private:
  const PlanNode* plan_;
  std::unique_ptr<Operator> child_;
  bool all_simple_ = false;
  std::vector<std::pair<int, int>> simple_;  // (quantifier, column)
  std::vector<const table::Row* const*> src_cols_;
  RowContext scratch_;
};

class LimitOp : public Operator {
 public:
  LimitOp(const PlanNode* plan, std::unique_ptr<Operator> child)
      : plan_(plan), child_(std::move(child)) {}

  Status Open() override {
    emitted_ = 0;
    return child_->Open();
  }

  Result<bool> Next(RowContext* ctx) override {
    if (plan_->limit >= 0 && emitted_ >= plan_->limit) return false;
    HDB_ASSIGN_OR_RETURN(const bool more, child_->Next(ctx));
    if (!more) return false;
    ++emitted_;
    return true;
  }

  Result<bool> NextBatch(RowBatch* b) override {
    if (plan_->limit >= 0 && emitted_ >= plan_->limit) return false;
    HDB_ASSIGN_OR_RETURN(const bool more, child_->NextBatch(b));
    if (!more) return false;
    if (plan_->limit >= 0) {
      const auto remaining = static_cast<size_t>(plan_->limit - emitted_);
      if (b->ActiveCount() > remaining) b->TruncateActive(remaining);
    }
    emitted_ += static_cast<int64_t>(b->ActiveCount());
    return true;
  }

  void Close() override { child_->Close(); }
  bool ProducesOutput() const override { return child_->ProducesOutput(); }

 private:
  const PlanNode* plan_;
  std::unique_ptr<Operator> child_;
  int64_t emitted_ = 0;
};

/// Hash distinct with a deferred-dedup spill path (DESIGN.md §10). While
/// in memory it streams: unseen keys pass through immediately. Once the
/// spill scheduler picks it as a victim, the already-emitted keys are
/// dumped to an "emitted" spill file and the operator switches to
/// deferred mode: further rows are appended to a candidate file (deduped
/// against a best-effort in-memory cache that the scheduler may drop at
/// any time), then replayed in arrival order at end of input against the
/// emitted-key set — so ORDER BY below DISTINCT stays ordered.
class HashDistinctOp : public Operator, public MemoryConsumer {
 public:
  HashDistinctOp(const PlanNode* plan, std::unique_ptr<Operator> child,
                 ExecContext* ec)
      : plan_(plan), child_(std::move(child)), ec_(ec) {
    name = "hash_distinct";
  }

  Status Open() override {
    seen_.clear();
    bytes_held_ = 0;
    spilled_ = false;
    draining_ = false;
    emitted_spill_.reset();
    candidate_spill_.reset();
    drain_reader_.reset();
    if (ec_->memory != nullptr) {
      plan_level = 4;
      predicted_pages = plan_->memory_quota_pages;
      ec_->memory->RegisterConsumer(this);
    }
    return child_->Open();
  }

  Result<bool> Next(RowContext* ctx) override {
    for (;;) {
      if (draining_) return NextDrain(ctx);
      HDB_ASSIGN_OR_RETURN(const bool more, child_->Next(ctx));
      if (!more) {
        if (!spilled_) return false;
        HDB_RETURN_IF_ERROR(PrepareDrain());
        continue;
      }
      EncodeValuesTo(ctx->output, &key_buf_);
      if (!spilled_) {
        if (seen_.find(std::string_view(key_buf_)) != seen_.end()) continue;
        HDB_RETURN_IF_ERROR(AdmitKey());
        if (!spilled_) return true;
        // The charge for this very key tipped us into spilling: the key
        // went out with the emitted dump, so emitting the row now is
        // still exactly-once.
        return true;
      }
      HDB_RETURN_IF_ERROR(DeferRow(ctx->output));
    }
  }

  Result<bool> NextBatch(RowBatch* b) override {
    if (spilled_ || draining_) {
      // Deferred mode is row-oriented; the default adapter captures
      // drained rows (with output) into the caller's batch.
      return Operator::NextBatch(b);
    }
    HDB_ASSIGN_OR_RETURN(const bool more, child_->NextBatch(b));
    if (!more) return false;
    const size_t n = b->ActiveCount();
    uint16_t* sel = b->MutableSel();
    size_t k = 0;
    for (size_t i = 0; i < n; ++i) {
      const size_t pos = b->Active(i);
      EncodeValuesTo(b->output(pos), &key_buf_);
      if (spilled_) {
        // A charge earlier in this batch spilled us; the rest of the
        // batch joins the deferred stream.
        HDB_RETURN_IF_ERROR(DeferRow(b->output(pos)));
        continue;
      }
      // Transparent find: duplicates (the common case) never allocate.
      if (seen_.find(std::string_view(key_buf_)) == seen_.end()) {
        HDB_RETURN_IF_ERROR(AdmitKey());
        sel[k++] = static_cast<uint16_t>(pos);
      }
    }
    b->SetSelection(k);
    return true;
  }

  void Close() override {
    child_->Close();
    if (ec_->memory != nullptr) {
      ec_->memory->UnregisterConsumer(this);
      ec_->memory->ReleaseBytes(bytes_held_);
    }
    bytes_held_ = 0;
    seen_.clear();
    emitted_spill_.reset();
    candidate_spill_.reset();
    drain_reader_.reset();
  }
  bool ProducesOutput() const override { return true; }
  uint64_t MemoryBytes() const override { return bytes_held_; }
  uint64_t SpilledBytes() const override { return op_spilled_bytes_; }
  uint64_t SpilledTuples() const override { return op_spilled_tuples_; }

  // MemoryConsumer. During the drain the key set is load-bearing (it is
  // the dedup state being replayed) — reserve it, offer nothing.
  SpillableStats SpillStats() const override {
    SpillableStats s;
    s.spillable_bytes = draining_ ? 0 : bytes_held_;
    s.must_reserve_bytes = draining_ ? bytes_held_ : 0;
    s.respill_cost = 2.5;
    return s;
  }

  Result<uint64_t> SpillSome(uint64_t /*target_bytes*/) override {
    if (draining_ || seen_.empty()) return static_cast<uint64_t>(0);
    if (!spilled_) {
      // First spill: the in-memory keys have all been emitted to the
      // parent; persist them so the drain can still dedup against them.
      if (emitted_spill_ == nullptr) {
        emitted_spill_ = std::make_unique<SpillFile>(ec_->pool);
        candidate_spill_ = std::make_unique<SpillFile>(ec_->pool);
      }
      const uint64_t before = emitted_spill_->byte_count();
      for (const auto& key : seen_) {
        HDB_RETURN_IF_ERROR(emitted_spill_->Append({Value::String(key)}));
      }
      const uint64_t delta = emitted_spill_->byte_count() - before;
      ec_->stats.spill_bytes_written += delta;
      op_spilled_bytes_ += delta;
      op_spilled_tuples_ += seen_.size();
      spilled_ = true;
    }
    // Later spills just drop the candidate dedup cache: duplicates in
    // the candidate file are legal (the drain dedups), so the cache is
    // pure memory.
    const uint64_t freed = bytes_held_;
    seen_.clear();
    bytes_held_ = 0;
    return freed;
  }

 private:
  /// Inserts key_buf_ into seen_ and charges it. The charge may run the
  /// spill scheduler against *this* operator (dump + clear); the caller
  /// handles the spilled_ transition.
  Status AdmitKey() {
    seen_.insert(key_buf_);
    const uint64_t bytes = key_buf_.size() + 32;
    bytes_held_ += bytes;
    if (ec_->memory != nullptr) {
      HDB_RETURN_IF_ERROR(ec_->memory->ChargeBytes(bytes));
    }
    return Status::OK();
  }

  /// Deferred mode: dedup against the (droppable) cache, then append the
  /// row to the candidate stream instead of emitting.
  Status DeferRow(const std::vector<Value>& tuple) {
    if (seen_.find(std::string_view(key_buf_)) != seen_.end()) {
      return Status::OK();
    }
    HDB_RETURN_IF_ERROR(AdmitKey());
    if (seen_.find(std::string_view(key_buf_)) == seen_.end()) {
      // The charge spilled us again and dropped the cache; re-seed it
      // (uncharged — the scheduler already took the account to zero).
      seen_.insert(key_buf_);
    }
    const uint64_t before = candidate_spill_->byte_count();
    HDB_RETURN_IF_ERROR(candidate_spill_->Append(tuple));
    const uint64_t delta = candidate_spill_->byte_count() - before;
    ec_->stats.spill_bytes_written += delta;
    op_spilled_bytes_ += delta;
    op_spilled_tuples_++;
    return Status::OK();
  }

  /// End of input in deferred mode: reload the emitted-key set (charged
  /// — it fit in memory once) and replay candidates in arrival order.
  Status PrepareDrain() {
    draining_ = true;  // before any charge: we are no longer a victim
    seen_.clear();
    const uint64_t stale = bytes_held_;
    bytes_held_ = 0;
    if (ec_->memory != nullptr) ec_->memory->ReleaseBytes(stale);
    auto reader = emitted_spill_->Read();
    std::vector<Value> tuple;
    for (;;) {
      HDB_ASSIGN_OR_RETURN(const bool more, reader.Next(&tuple));
      if (!more) break;
      key_buf_ = tuple[0].AsString();
      HDB_RETURN_IF_ERROR(AdmitKey());
    }
    ec_->stats.spill_bytes_read += emitted_spill_->byte_count();
    drain_reader_.emplace(candidate_spill_->Read());
    return Status::OK();
  }

  Result<bool> NextDrain(RowContext* ctx) {
    std::vector<Value> tuple;
    for (;;) {
      HDB_ASSIGN_OR_RETURN(const bool more, drain_reader_->Next(&tuple));
      if (!more) {
        ec_->stats.spill_bytes_read += candidate_spill_->byte_count();
        return false;
      }
      EncodeValuesTo(tuple, &key_buf_);
      if (seen_.find(std::string_view(key_buf_)) != seen_.end()) continue;
      HDB_RETURN_IF_ERROR(AdmitKey());
      ctx->output = std::move(tuple);
      return true;
    }
  }

  const PlanNode* plan_;
  std::unique_ptr<Operator> child_;
  ExecContext* ec_;
  std::unordered_set<std::string, TransparentStringHash, std::equal_to<>>
      seen_;
  std::string key_buf_;
  uint64_t bytes_held_ = 0;
  bool spilled_ = false;
  bool draining_ = false;
  std::unique_ptr<SpillFile> emitted_spill_;    // keys emitted pre-spill
  std::unique_ptr<SpillFile> candidate_spill_;  // deferred output rows
  std::optional<SpillFile::Reader> drain_reader_;
  uint64_t op_spilled_bytes_ = 0;
  uint64_t op_spilled_tuples_ = 0;
};

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

class NLJoinOp : public Operator {
 public:
  NLJoinOp(const PlanNode* plan, std::unique_ptr<Operator> outer,
           std::unique_ptr<Operator> inner)
      : plan_(plan), outer_(std::move(outer)), inner_(std::move(inner)) {}

  Status Open() override {
    HDB_RETURN_IF_ERROR(outer_->Open());
    have_outer_ = false;
    return Status::OK();
  }

  Result<bool> Next(RowContext* ctx) override {
    for (;;) {
      if (!have_outer_) {
        HDB_ASSIGN_OR_RETURN(const bool more, outer_->Next(ctx));
        if (!more) return false;
        have_outer_ = true;
        inner_->Close();
        HDB_RETURN_IF_ERROR(inner_->Open());
      }
      HDB_ASSIGN_OR_RETURN(const bool imore, inner_->Next(ctx));
      if (!imore) {
        have_outer_ = false;
        continue;
      }
      if (plan_->extra_condition != nullptr) {
        HDB_ASSIGN_OR_RETURN(const bool ok,
                             plan_->extra_condition->EvaluatesToTrue(*ctx));
        if (!ok) continue;
      }
      return true;
    }
  }

  void Close() override {
    outer_->Close();
    inner_->Close();
  }

 private:
  const PlanNode* plan_;
  std::unique_ptr<Operator> outer_;
  std::unique_ptr<Operator> inner_;
  bool have_outer_ = false;
};

class IndexNLJoinOp : public Operator {
 public:
  IndexNLJoinOp(const PlanNode* plan, std::unique_ptr<Operator> outer,
                ExecContext* ec)
      : plan_(plan), outer_(std::move(outer)), ec_(ec),
        preds_(PrepareResidual(plan->residual, plan->quantifier)),
        extra_preds_(PrepareUnobserved(plan->extra_condition)) {}

  Status Open() override {
    heap_ = ec_->table_heap(plan_->table->oid);
    tree_ = ec_->index(plan_->index->oid);
    if (heap_ == nullptr || tree_ == nullptr) {
      return Status::Internal("index-NL join: missing heap or index");
    }
    matches_.clear();
    pos_ = 0;
    InitScratchCtx(ec_, &scratch_);
    pending_.clear();
    pending_pos_ = 0;
    outer_done_ = false;
    const size_t hint = ApproxRowBytes(*plan_->table);
    cap_ = EffectiveBatchCap(ec_, hint);
    HDB_RETURN_IF_ERROR(ChargeArena(ec_, cap_ * hint, &arena_charged_));
    return outer_->Open();
  }

  Result<bool> Next(RowContext* ctx) override {
    for (;;) {
      while (pos_ < matches_.size()) {
        const Rid rid = matches_[pos_++];
        HDB_ASSIGN_OR_RETURN(const std::string bytes, heap_->Get(rid));
        HDB_ASSIGN_OR_RETURN(row_, table::DecodeRow(*plan_->table,
                                                    bytes.data(),
                                                    bytes.size()));
        ctx->rows[plan_->quantifier] = &row_;
        HDB_ASSIGN_OR_RETURN(
            const bool pass,
            EvalResidual(ec_, plan_->table->oid, preds_, *ctx));
        if (!pass) continue;
        if (plan_->extra_condition != nullptr) {
          HDB_ASSIGN_OR_RETURN(const bool ok,
                               plan_->extra_condition->EvaluatesToTrue(*ctx));
          if (!ok) continue;
        }
        return true;
      }
      // Advance the outer row and probe.
      HDB_ASSIGN_OR_RETURN(const bool more, outer_->Next(ctx));
      if (!more) {
        ctx->rows[plan_->quantifier] = nullptr;
        return false;
      }
      HDB_ASSIGN_OR_RETURN(const Value key, plan_->outer_key->Evaluate(*ctx));
      matches_.clear();
      pos_ = 0;
      if (key.is_null()) continue;  // NULL never equi-joins
      const double h = OrderPreservingHash(key);
      HDB_RETURN_IF_ERROR(tree_->ScanRange(h, true, h, true,
                                           [this](double, Rid rid) {
                                             matches_.push_back(rid);
                                             return true;
                                           }));
    }
  }

  Result<bool> NextBatch(RowBatch* b) override {
    b->Reset();
    for (;;) {
      if (pending_pos_ < pending_.size()) {
        // Fetch up to one batch of matched inner rows (one heap latch for
        // the whole chunk) and pair them with their outer rows.
        const size_t n = std::min(std::min(cap_, b->capacity()),
                                  pending_.size() - pending_pos_);
        fetch_rids_.resize(n);
        for (size_t i = 0; i < n; ++i) {
          fetch_rids_[i] = pending_[pending_pos_ + i].second;
        }
        HDB_RETURN_IF_ERROR(heap_->GetMany(fetch_rids_.data(), n,
                                           &fetch_pool_));
        const table::Row** col = b->BindSlot(plan_->quantifier);
        for (size_t i = 0; i < n; ++i) {
          outer_batch_->CopySlots(pending_[pending_pos_ + i].first, b, i);
          col[i] = &fetch_pool_[i];
        }
        pending_pos_ += n;
        b->SetSize(n);
        BumpBatchStats(ec_, n);
        HDB_RETURN_IF_ERROR(
            ApplyPredsToBatch(ec_, plan_->table->oid, preds_, b, &scratch_));
        HDB_RETURN_IF_ERROR(ApplyPredsToBatch(/*ec=*/nullptr, /*table_oid=*/0,
                                              extra_preds_, b, &scratch_));
        return true;
      }
      if (outer_done_) return false;
      if (outer_batch_ == nullptr) {
        outer_batch_ = std::make_unique<RowBatch>(
            ec_->num_quantifiers + 1, cap_, ec_->params);
      }
      HDB_ASSIGN_OR_RETURN(const bool more,
                           outer_->NextBatch(outer_batch_.get()));
      if (!more) {
        outer_done_ = true;
        continue;
      }
      // Evaluate the outer keys for the whole batch, then probe the B-tree
      // under a single index latch.
      pending_.clear();
      pending_pos_ = 0;
      probe_keys_.clear();
      probe_pos_.clear();
      const size_t on = outer_batch_->ActiveCount();
      for (size_t i = 0; i < on; ++i) {
        const size_t opos = outer_batch_->Active(i);
        outer_batch_->BindRow(opos, &scratch_);
        HDB_RETURN_IF_ERROR(
            EvalExprInto(plan_->outer_key.get(), scratch_, &key_scratch_));
        const Value& key = key_scratch_;
        if (key.is_null()) continue;  // NULL never equi-joins
        probe_keys_.push_back(OrderPreservingHash(key));
        probe_pos_.push_back(static_cast<uint16_t>(opos));
      }
      if (!probe_keys_.empty()) {
        HDB_RETURN_IF_ERROR(tree_->ScanEqualBatch(
            probe_keys_.data(), probe_keys_.size(),
            [this](size_t i, Rid rid) {
              pending_.emplace_back(probe_pos_[i], rid);
              return true;
            }));
      }
    }
  }

  void Close() override {
    outer_->Close();
    ReleaseArena(ec_, &arena_charged_);
  }

 private:
  const PlanNode* plan_;
  std::unique_ptr<Operator> outer_;
  ExecContext* ec_;
  std::vector<CheckedPred> preds_;
  std::vector<CheckedPred> extra_preds_;
  table::TableHeap* heap_ = nullptr;
  index::BTree* tree_ = nullptr;
  std::vector<Rid> matches_;
  size_t pos_ = 0;
  std::vector<Value> row_;
  // Batch path: outer batch, (outer pos, inner rid) match list, and the
  // reusable inner-row pool.
  std::unique_ptr<RowBatch> outer_batch_;
  bool outer_done_ = false;
  std::vector<std::pair<uint16_t, Rid>> pending_;
  size_t pending_pos_ = 0;
  std::vector<double> probe_keys_;
  std::vector<uint16_t> probe_pos_;
  std::vector<Rid> fetch_rids_;
  std::vector<table::Row> fetch_pool_;
  size_t cap_ = kDefaultBatchCap;
  uint64_t arena_charged_ = 0;
  Value key_scratch_;  // reused join-key value (keeps string capacity)
  RowContext scratch_;
};

// ---------------------------------------------------------------------------
// Hash join with partition eviction and the alternate index-NL strategy
// (paper §4.3)
// ---------------------------------------------------------------------------

class HashJoinOp : public Operator, public MemoryConsumer {
 public:
  static constexpr int kPartitions = 8;

  /// Levels of recursive re-partitioning for spilled partitions whose
  /// build side exceeds the budget. Level 0 is the initial h % 8 split;
  /// each further level consumes the next 3 hash bits.
  static constexpr int kMaxSpillLevels = 5;

  HashJoinOp(const PlanNode* plan, std::unique_ptr<Operator> outer,
             std::unique_ptr<Operator> inner, ExecContext* ec)
      : plan_(plan), outer_(std::move(outer)), inner_(std::move(inner)),
        ec_(ec), extra_preds_(PrepareUnobserved(plan->extra_condition)) {
    CollectBoundQuantifiers(plan_->children[0].get(), &outer_quants_);
    name = "hash_join";
  }

  uint64_t MemoryBytes() const override {
    return build_bytes_ + spill_loaded_bytes_;
  }
  uint64_t SpilledBytes() const override { return op_spilled_bytes_; }
  uint64_t SpilledTuples() const override { return op_spilled_tuples_; }

  Status Open() override {
    build_quantifier_ = plan_->children[1]->quantifier;
    InitScratchCtx(ec_, &probe_ctx_);
    InitScratchCtx(ec_, &row_ctx_);
    cap_ = EffectiveBatchCap(ec_, 0);
    emit_.clear();
    emit_pos_ = 0;
    if (ec_->memory != nullptr) {
      plan_level = 1;
      predicted_pages = plan_->memory_quota_pages;
      ec_->memory->RegisterConsumer(this);
    }
    HDB_RETURN_IF_ERROR(BuildPhase());
    if (plan_->alt_index_nl && !AnyPartitionSpilled() &&
        TotalBuildRows() <= plan_->alt_switch_threshold_rows &&
        (plan_->children[0]->kind == PlanKind::kSeqScan ||
         plan_->children[0]->kind == PlanKind::kIndexScan)) {
      // The optimizer's estimate was wrong and the build input is tiny:
      // switch to the annotated index nested-loops strategy instead of
      // scanning the whole probe side (paper §4.3).
      alternate_ = true;
      ec_->stats.hash_join_used_alternate = true;
      return OpenAlternate();
    }
    HDB_RETURN_IF_ERROR(outer_->Open());
    return Status::OK();
  }

  Result<bool> Next(RowContext* ctx) override {
    if (alternate_) return NextAlternate(ctx);
    for (;;) {
      // Emit pending matches for the current probe row.
      while (match_pos_ < current_matches_.size()) {
        const size_t idx = current_matches_[match_pos_++];
        ctx->rows[build_quantifier_] = &build_rows_[idx];
        if (plan_->extra_condition != nullptr) {
          HDB_ASSIGN_OR_RETURN(const bool ok,
                               plan_->extra_condition->EvaluatesToTrue(*ctx));
          if (!ok) continue;
        }
        return true;
      }
      // Spilled-partition processing after the main probe is drained.
      if (outer_done_) {
        HDB_ASSIGN_OR_RETURN(const bool more, NextSpilled(ctx));
        if (more) return true;
        ctx->rows[build_quantifier_] = nullptr;
        return false;
      }
      HDB_ASSIGN_OR_RETURN(const bool more, outer_->Next(ctx));
      if (!more) {
        outer_done_ = true;
        HDB_RETURN_IF_ERROR(PrepareSpilledProcessing());
        continue;
      }
      HDB_ASSIGN_OR_RETURN(const Value key, plan_->outer_key->Evaluate(*ctx));
      current_matches_.clear();
      match_pos_ = 0;
      if (key.is_null()) continue;
      const uint64_t h = key.Hash();
      const int p = static_cast<int>(h % kPartitions);
      if (partition_spilled_[p]) {
        // Probe rows destined for an evicted partition are spilled too.
        std::vector<Value> flat;
        FlattenOuter(*ctx, &flat);
        HDB_RETURN_IF_ERROR(AppendSpill(probe_spill_[p].get(), flat));
        continue;
      }
      auto it = table_.find(h);
      if (it == table_.end()) continue;
      for (const size_t idx : it->second) {
        if (build_partition_[idx] == p &&
            build_keys_[idx].Compare(key) == 0) {
          current_matches_.push_back(idx);
        }
      }
    }
  }

  Result<bool> NextBatch(RowBatch* b) override {
    b->Reset();
    if (alternate_) {
      // The alternate strategy and spilled-partition replays stay
      // row-oriented (they are the degraded low-memory paths); capture
      // their rows into the batch.
      return FillFromRowFn(b, [this](RowContext* c) {
        return NextAlternate(c);
      });
    }
    for (;;) {
      if (emit_pos_ < emit_.size()) {
        const size_t n = std::min(std::min(cap_, b->capacity()),
                                  emit_.size() - emit_pos_);
        const table::Row** col = b->BindSlot(build_quantifier_);
        for (size_t i = 0; i < n; ++i) {
          const auto& [opos, idx] = emit_[emit_pos_ + i];
          outer_batch_->CopySlots(opos, b, i);
          col[i] = &build_rows_[idx];
        }
        emit_pos_ += n;
        b->SetSize(n);
        HDB_RETURN_IF_ERROR(ApplyPredsToBatch(/*ec=*/nullptr, /*table_oid=*/0,
                                              extra_preds_, b, &probe_ctx_));
        return true;
      }
      if (outer_done_) {
        return FillFromRowFn(b, [this](RowContext* c) {
          return NextSpilled(c);
        });
      }
      if (outer_batch_ == nullptr) {
        outer_batch_ = std::make_unique<RowBatch>(
            ec_->num_quantifiers + 1, cap_, ec_->params);
      }
      HDB_ASSIGN_OR_RETURN(const bool more,
                           outer_->NextBatch(outer_batch_.get()));
      if (!more) {
        outer_done_ = true;
        HDB_RETURN_IF_ERROR(PrepareSpilledProcessing());
        continue;
      }
      // Probe the whole outer batch, collecting (outer pos, build row)
      // match pairs for chunked emission.
      emit_.clear();
      emit_pos_ = 0;
      const size_t on = outer_batch_->ActiveCount();
      for (size_t i = 0; i < on; ++i) {
        const size_t opos = outer_batch_->Active(i);
        outer_batch_->BindRow(opos, &probe_ctx_);
        HDB_RETURN_IF_ERROR(
            EvalExprInto(plan_->outer_key.get(), probe_ctx_, &key_scratch_));
        const Value& key = key_scratch_;
        if (key.is_null()) continue;
        const uint64_t h = key.Hash();
        const int p = static_cast<int>(h % kPartitions);
        if (partition_spilled_[p]) {
          flat_scratch_.clear();
          FlattenOuter(probe_ctx_, &flat_scratch_);
          HDB_RETURN_IF_ERROR(AppendSpill(probe_spill_[p].get(), flat_scratch_));
          continue;
        }
        auto it = table_.find(h);
        if (it == table_.end()) continue;
        for (const size_t idx : it->second) {
          if (build_partition_[idx] == p &&
              build_keys_[idx].Compare(key) == 0) {
            emit_.emplace_back(static_cast<uint16_t>(opos), idx);
          }
        }
      }
    }
  }

  void Close() override {
    outer_->Close();
    inner_->Close();
    if (ec_->memory != nullptr) {
      ec_->memory->UnregisterConsumer(this);
      ec_->memory->ReleaseBytes(build_bytes_ + spill_loaded_bytes_);
    }
    build_bytes_ = 0;
    spill_loaded_bytes_ = 0;
    spill_queue_.clear();
    current_pair_.build.reset();
    current_pair_.probe.reset();
    probe_reader_.reset();
  }

  // MemoryConsumer. The build side is the expensive thing to restart
  // (write + read back + rehash), so the join reports the highest respill
  // cost of the four blocking operators. Once the alternate index-NL
  // strategy scans build_rows_ by position, or spilled-partition replay
  // holds a loaded partition, nothing here is safely evictable — that
  // state is the reserve floor.
  SpillableStats SpillStats() const override {
    SpillableStats s;
    s.respill_cost = 3.0;
    if (alternate_ || outer_done_) {
      s.must_reserve_bytes = build_bytes_ + spill_loaded_bytes_;
      return s;
    }
    s.spillable_bytes = build_bytes_;
    return s;
  }

  Result<uint64_t> SpillSome(uint64_t target_bytes) override {
    if (alternate_ || outer_done_) return uint64_t{0};
    uint64_t freed = 0;
    // Evict whole partitions, largest first (paper §4.3: "selecting the
    // partition with the most rows frees up the most memory").
    while (freed < target_bytes) {
      int victim = -1;
      uint64_t victim_bytes = 0;
      for (int p = 0; p < kPartitions; ++p) {
        if (partition_spilled_[p]) continue;
        if (partition_bytes_[p] > victim_bytes) {
          victim_bytes = partition_bytes_[p];
          victim = p;
        }
      }
      if (victim < 0 || victim_bytes == 0) break;
      HDB_ASSIGN_OR_RETURN(const uint64_t bytes, EvictPartition(victim));
      if (bytes == 0) break;
      freed += bytes;
    }
    build_bytes_ -= std::min<uint64_t>(build_bytes_, freed);
    return freed;
  }

 private:
  size_t TotalBuildRows() const {
    size_t n = 0;
    for (int p = 0; p < kPartitions; ++p) n += partition_rows_[p];
    for (int p = 0; p < kPartitions; ++p) {
      if (build_spill_[p] != nullptr) n += build_spill_[p]->tuple_count();
    }
    return n;
  }

  bool AnyPartitionSpilled() const {
    for (int p = 0; p < kPartitions; ++p) {
      if (partition_spilled_[p]) return true;
    }
    return false;
  }

  Status BuildPhase() {
    HDB_RETURN_IF_ERROR(inner_->Open());
    RowContext build_ctx;
    build_ctx.rows.assign(ec_->num_quantifiers + 1, nullptr);
    build_ctx.params = ec_->params;
    if (build_batch_ == nullptr) {
      build_batch_ = std::make_unique<RowBatch>(ec_->num_quantifiers + 1,
                                                cap_, ec_->params);
    }
    for (;;) {
      HDB_ASSIGN_OR_RETURN(const bool more,
                           inner_->NextBatch(build_batch_.get()));
      if (!more) break;
      const size_t bn = build_batch_->ActiveCount();
      for (size_t r = 0; r < bn; ++r) {
        build_ctx.rows[build_quantifier_] = nullptr;
        build_batch_->BindRow(build_batch_->Active(r), &build_ctx);
        HDB_RETURN_IF_ERROR(
            EvalExprInto(plan_->inner_key.get(), build_ctx, &key_scratch_));
        const Value& key = key_scratch_;
        if (key.is_null()) continue;
        const uint64_t h = key.Hash();
        const int p = static_cast<int>(h % kPartitions);
        const std::vector<Value>& row = *build_ctx.rows[build_quantifier_];
        if (partition_spilled_[p]) {
          HDB_RETURN_IF_ERROR(AppendSpill(build_spill_[p].get(), row));
          continue;
        }
        const uint64_t row_bytes = 48 * row.size() + 64;
        if (ec_->memory != nullptr) {
          // Charging may run the spill scheduler, which may evict
          // partitions — including p — via SpillSome re-entering this
          // operator.
          HDB_RETURN_IF_ERROR(ec_->memory->ChargeBytes(row_bytes));
        }
        build_bytes_ += row_bytes;
        if (partition_spilled_[p]) {
          HDB_RETURN_IF_ERROR(AppendSpill(build_spill_[p].get(), row));
          build_bytes_ -= std::min(build_bytes_, row_bytes);
          if (ec_->memory != nullptr) ec_->memory->ReleaseBytes(row_bytes);
          continue;
        }
        const size_t idx = build_rows_.size();
        build_rows_.push_back(row);
        build_keys_.push_back(key);
        build_partition_.push_back(p);
        partition_rows_[p]++;
        partition_bytes_[p] += row_bytes;
        table_[h].push_back(idx);
      }
    }
    inner_->Close();
    return Status::OK();
  }

  /// Appends one tuple to a spill file, propagating the write status and
  /// keeping the spill-volume counters honest.
  Status AppendSpill(SpillFile* f, const std::vector<Value>& row) {
    const uint64_t before = f->byte_count();
    HDB_RETURN_IF_ERROR(f->Append(row));
    const uint64_t delta = f->byte_count() - before;
    op_spilled_bytes_ += delta;
    ec_->stats.spill_bytes_written += delta;
    ++op_spilled_tuples_;
    ec_->stats.hash_spilled_tuples++;
    return Status::OK();
  }

  /// Moves every in-memory row of partition `p` to its spill file.
  /// Returns bytes freed; a failed spill write propagates to the
  /// scheduler and aborts the charging statement.
  Result<uint64_t> EvictPartition(int p) {
    if (partition_spilled_[p]) return uint64_t{0};
    partition_spilled_[p] = true;
    if (build_spill_[p] == nullptr) {
      build_spill_[p] = std::make_unique<SpillFile>(ec_->pool);
      probe_spill_[p] = std::make_unique<SpillFile>(ec_->pool);
    }
    uint64_t freed = 0;
    for (size_t i = 0; i < build_rows_.size(); ++i) {
      if (build_partition_[i] != p || build_rows_[i].empty()) continue;
      HDB_RETURN_IF_ERROR(AppendSpill(build_spill_[p].get(), build_rows_[i]));
      freed += 48 * build_rows_[i].size() + 64;
      build_rows_[i].clear();
      build_keys_[i] = Value::Null();
      build_partition_[i] = -1;
    }
    ec_->stats.hash_partitions_evicted++;
    partition_rows_[p] = 0;
    partition_bytes_[p] = 0;
    return freed;
  }

  void FlattenOuter(const RowContext& ctx, std::vector<Value>* flat) const {
    for (const int q : outer_quants_) {
      const std::vector<Value>& row = *ctx.rows[q];
      for (const Value& v : row) flat->push_back(v);
    }
  }

  void RestoreOuter(const std::vector<Value>& flat, RowContext* ctx) {
    size_t pos = 0;
    reload_rows_.assign(ec_->num_quantifiers + 1, {});
    for (const int q : outer_quants_) {
      const size_t arity = outer_arity_.at(q);
      reload_rows_[q].assign(flat.begin() + pos, flat.begin() + pos + arity);
      ctx->rows[q] = &reload_rows_[q];
      pos += arity;
    }
  }

  /// One unit of grace-hash work: a spilled (build, probe) pair at some
  /// re-partitioning depth. Level 0 pairs are the original h % 8
  /// partitions; a level-L child was split on bits (h >> 3(L)) % 8.
  struct SpillPair {
    std::unique_ptr<SpillFile> build;
    std::unique_ptr<SpillFile> probe;
    int level = 0;
  };

  Status PrepareSpilledProcessing() {
    // Record outer arities for reload (from the plan's table defs).
    outer_arity_.clear();
    RecordArities(plan_->children[0].get());
    // The in-memory probe phase is over: drop the memory-resident build
    // side and its charge so spilled-partition replay starts from a clean
    // account, then queue every spilled pair as grace-hash work.
    table_.clear();
    build_rows_.clear();
    build_keys_.clear();
    build_partition_.clear();
    if (ec_->memory != nullptr && build_bytes_ > 0) {
      ec_->memory->ReleaseBytes(build_bytes_);
    }
    build_bytes_ = 0;
    for (int p = 0; p < kPartitions; ++p) {
      partition_rows_[p] = 0;
      partition_bytes_[p] = 0;
      if (!partition_spilled_[p] || build_spill_[p] == nullptr) continue;
      // An inner join needs both sides; a pair missing either is dead.
      if (build_spill_[p]->tuple_count() == 0 ||
          probe_spill_[p]->tuple_count() == 0) {
        build_spill_[p].reset();
        probe_spill_[p].reset();
        continue;
      }
      spill_queue_.push_back(SpillPair{std::move(build_spill_[p]),
                                       std::move(probe_spill_[p]),
                                       /*level=*/0});
    }
    spill_loaded_ = false;
    return Status::OK();
  }

  /// Bytes of loaded build side the replay phase allows itself before
  /// re-partitioning instead: half the statement's soft limit, but at
  /// least one page (so tiny limits still terminate the recursion).
  uint64_t SpillLoadBudgetBytes() const {
    const uint64_t page_bytes = ec_->pool->page_bytes();
    if (ec_->memory == nullptr) return std::numeric_limits<uint64_t>::max();
    return std::max<uint64_t>(page_bytes,
                              ec_->memory->soft_limit_pages() * page_bytes / 2);
  }

  /// Splits an oversized spilled pair into up to kPartitions children on
  /// the next 3 hash bits and queues the live ones (grace hash join
  /// recursion). Skew-proof enough for the corpus: a pair whose build
  /// side is a single tuple, or that is already at the deepest level, is
  /// loaded as-is instead.
  Status Repartition(SpillPair pair) {
    const int level = pair.level + 1;
    const int shift = 3 * level;
    std::vector<SpillPair> kids(kPartitions);
    for (auto& k : kids) {
      k.build = std::make_unique<SpillFile>(ec_->pool);
      k.probe = std::make_unique<SpillFile>(ec_->pool);
      k.level = level;
    }
    RowContext key_ctx;
    key_ctx.rows.assign(ec_->num_quantifiers + 1, nullptr);
    key_ctx.params = ec_->params;
    std::vector<Value> row;
    auto breader = pair.build->Read();
    for (;;) {
      HDB_ASSIGN_OR_RETURN(const bool more, breader.Next(&row));
      if (!more) break;
      key_ctx.rows[build_quantifier_] = &row;
      HDB_ASSIGN_OR_RETURN(const Value key, plan_->inner_key->Evaluate(key_ctx));
      const int c = static_cast<int>((key.Hash() >> shift) % kPartitions);
      HDB_RETURN_IF_ERROR(kids[c].build->Append(row));
    }
    ec_->stats.spill_bytes_read += pair.build->byte_count();
    std::vector<Value> flat;
    auto preader = pair.probe->Read();
    RowContext probe_ctx;
    probe_ctx.rows.assign(ec_->num_quantifiers + 1, nullptr);
    probe_ctx.params = ec_->params;
    for (;;) {
      HDB_ASSIGN_OR_RETURN(const bool more, preader.Next(&flat));
      if (!more) break;
      RestoreOuter(flat, &probe_ctx);
      HDB_ASSIGN_OR_RETURN(const Value key,
                           plan_->outer_key->Evaluate(probe_ctx));
      if (key.is_null()) continue;
      const int c = static_cast<int>((key.Hash() >> shift) % kPartitions);
      HDB_RETURN_IF_ERROR(kids[c].probe->Append(flat));
    }
    ec_->stats.spill_bytes_read += pair.probe->byte_count();
    ec_->stats.spill_repartitions++;
    for (auto& k : kids) {
      if (k.build->tuple_count() == 0 || k.probe->tuple_count() == 0) continue;
      // Re-partition passes move bytes, not new tuples: count the write
      // volume but leave the tuple counters to the original eviction.
      ec_->stats.spill_bytes_written +=
          k.build->byte_count() + k.probe->byte_count();
      spill_queue_.push_back(std::move(k));
    }
    return Status::OK();
  }

  /// Loads a pair's build side into the hash table, charging every row to
  /// the task quota (the old path loaded unconditionally — a spilled
  /// partition could silently blow the limit it was evicted to respect).
  Status LoadPair(SpillPair pair) {
    spill_build_rows_.clear();
    spill_build_keys_.clear();
    spill_table_.clear();
    RowContext key_ctx;
    key_ctx.rows.assign(ec_->num_quantifiers + 1, nullptr);
    key_ctx.params = ec_->params;
    auto reader = pair.build->Read();
    std::vector<Value> row;
    for (;;) {
      HDB_ASSIGN_OR_RETURN(const bool more, reader.Next(&row));
      if (!more) break;
      const uint64_t row_bytes = 48 * row.size() + 64;
      if (ec_->memory != nullptr) {
        HDB_RETURN_IF_ERROR(ec_->memory->ChargeBytes(row_bytes));
      }
      spill_loaded_bytes_ += row_bytes;
      spill_build_rows_.push_back(row);
      key_ctx.rows[build_quantifier_] = &spill_build_rows_.back();
      HDB_ASSIGN_OR_RETURN(const Value key,
                           plan_->inner_key->Evaluate(key_ctx));
      spill_build_keys_.push_back(key);
      spill_table_[key.Hash()].push_back(spill_build_rows_.size() - 1);
    }
    ec_->stats.spill_bytes_read += pair.build->byte_count();
    current_pair_ = std::move(pair);
    probe_reader_.emplace(current_pair_.probe->Read());
    spill_loaded_ = true;
    current_matches_.clear();
    match_pos_ = 0;
    return Status::OK();
  }

  void FinishCurrentPair() {
    ec_->stats.spill_bytes_read += current_pair_.probe->byte_count();
    if (ec_->memory != nullptr && spill_loaded_bytes_ > 0) {
      ec_->memory->ReleaseBytes(spill_loaded_bytes_);
    }
    spill_loaded_bytes_ = 0;
    spill_build_rows_.clear();
    spill_build_keys_.clear();
    spill_table_.clear();
    probe_reader_.reset();
    current_pair_.build.reset();
    current_pair_.probe.reset();
    spill_loaded_ = false;
  }

  void RecordArities(const PlanNode* n) {
    if (n->table != nullptr && n->quantifier >= 0) {
      outer_arity_[n->quantifier] = n->table->columns.size();
    }
    for (const auto& c : n->children) RecordArities(c.get());
  }

  /// Fills a batch by capturing rows from a row-producing member function
  /// (spilled-partition replay, alternate strategy). The sources rebind
  /// per-row storage, so CaptureRow's copy is required.
  template <typename Fn>
  Result<bool> FillFromRowFn(RowBatch* b, Fn&& fn) {
    size_t n = 0;
    while (n < std::min(cap_, b->capacity())) {
      HDB_ASSIGN_OR_RETURN(const bool more, fn(&row_ctx_));
      if (!more) break;
      b->CaptureRow(n, row_ctx_, /*with_output=*/false);
      ++n;
    }
    b->SetSize(n);
    return n > 0;
  }

  Result<bool> NextSpilled(RowContext* ctx) {
    for (;;) {
      while (match_pos_ < current_matches_.size()) {
        const size_t idx = current_matches_[match_pos_++];
        ctx->rows[build_quantifier_] = &spill_build_rows_[idx];
        if (plan_->extra_condition != nullptr) {
          HDB_ASSIGN_OR_RETURN(const bool ok,
                               plan_->extra_condition->EvaluatesToTrue(*ctx));
          if (!ok) continue;
        }
        return true;
      }
      // Advance within the current spilled pair's probe stream.
      if (spill_loaded_) {
        std::vector<Value> flat;
        HDB_ASSIGN_OR_RETURN(const bool more, probe_reader_->Next(&flat));
        if (more) {
          RestoreOuter(flat, ctx);
          HDB_ASSIGN_OR_RETURN(const Value key,
                               plan_->outer_key->Evaluate(*ctx));
          current_matches_.clear();
          match_pos_ = 0;
          if (key.is_null()) continue;
          auto it = spill_table_.find(key.Hash());
          if (it == spill_table_.end()) continue;
          for (const size_t idx : it->second) {
            if (spill_build_keys_[idx].Compare(key) == 0) {
              current_matches_.push_back(idx);
            }
          }
          continue;
        }
        FinishCurrentPair();
      }
      // Pop the next pair of grace-hash work. A build side too big for
      // the load budget is split on the next 3 hash bits instead of being
      // loaded whole — the recursion that makes ≥10x-over-limit inputs
      // finish inside the limit.
      if (spill_queue_.empty()) return false;
      SpillPair pair = std::move(spill_queue_.front());
      spill_queue_.pop_front();
      if (pair.build->byte_count() > SpillLoadBudgetBytes() &&
          pair.level + 1 < kMaxSpillLevels && pair.build->tuple_count() > 1) {
        HDB_RETURN_IF_ERROR(Repartition(std::move(pair)));
        continue;
      }
      HDB_RETURN_IF_ERROR(LoadPair(std::move(pair)));
    }
  }

  // --- Alternate index-NL strategy ---
  Status OpenAlternate() {
    const PlanNode* outer_scan = plan_->children[0].get();
    alt_heap_ = ec_->table_heap(outer_scan->table->oid);
    alt_tree_ = ec_->index(plan_->alt_index->oid);
    if (alt_heap_ == nullptr || alt_tree_ == nullptr) {
      return Status::Internal("alternate strategy: missing heap or index");
    }
    alt_outer_preds_ =
        PrepareResidual(outer_scan->residual, outer_scan->quantifier);
    alt_build_pos_ = 0;
    alt_matches_.clear();
    alt_match_pos_ = 0;
    return Status::OK();
  }

  Result<bool> NextAlternate(RowContext* ctx) {
    const PlanNode* outer_scan = plan_->children[0].get();
    const int outer_q = outer_scan->quantifier;
    for (;;) {
      while (alt_match_pos_ < alt_matches_.size()) {
        const Rid rid = alt_matches_[alt_match_pos_++];
        HDB_ASSIGN_OR_RETURN(const std::string bytes, alt_heap_->Get(rid));
        HDB_ASSIGN_OR_RETURN(
            alt_outer_row_,
            table::DecodeRow(*outer_scan->table, bytes.data(), bytes.size()));
        ctx->rows[outer_q] = &alt_outer_row_;
        ctx->rows[build_quantifier_] = &build_rows_[alt_build_pos_ - 1];
        HDB_ASSIGN_OR_RETURN(const bool pass,
                             EvalResidual(ec_, outer_scan->table->oid,
                                          alt_outer_preds_, *ctx));
        if (!pass) continue;
        // Re-verify the equi condition on values (index probes use hash
        // codes) and any extra condition.
        HDB_ASSIGN_OR_RETURN(const Value ov, plan_->outer_key->Evaluate(*ctx));
        HDB_ASSIGN_OR_RETURN(const Value iv, plan_->inner_key->Evaluate(*ctx));
        if (ov.is_null() || iv.is_null() || ov.Compare(iv) != 0) continue;
        if (plan_->extra_condition != nullptr) {
          HDB_ASSIGN_OR_RETURN(const bool ok,
                               plan_->extra_condition->EvaluatesToTrue(*ctx));
          if (!ok) continue;
        }
        return true;
      }
      // Next build row: probe the outer table's index with its key.
      for (;;) {
        if (alt_build_pos_ >= build_rows_.size()) return false;
        if (!build_rows_[alt_build_pos_].empty()) break;
        ++alt_build_pos_;
      }
      RowContext key_ctx;
      key_ctx.rows.assign(ec_->num_quantifiers + 1, nullptr);
      key_ctx.params = ec_->params;
      key_ctx.rows[build_quantifier_] = &build_rows_[alt_build_pos_];
      ++alt_build_pos_;
      HDB_ASSIGN_OR_RETURN(const Value key,
                           plan_->inner_key->Evaluate(key_ctx));
      alt_matches_.clear();
      alt_match_pos_ = 0;
      if (key.is_null()) continue;
      const double h = OrderPreservingHash(key);
      HDB_RETURN_IF_ERROR(alt_tree_->ScanRange(h, true, h, true,
                                               [this](double, Rid rid) {
                                                 alt_matches_.push_back(rid);
                                                 return true;
                                               }));
    }
  }

  const PlanNode* plan_;
  std::unique_ptr<Operator> outer_;
  std::unique_ptr<Operator> inner_;
  ExecContext* ec_;

  int build_quantifier_ = -1;
  std::vector<int> outer_quants_;

  // In-memory build state.
  std::unordered_map<uint64_t, std::vector<size_t>> table_;
  std::vector<std::vector<Value>> build_rows_;
  std::vector<Value> build_keys_;
  std::vector<int> build_partition_;
  size_t partition_rows_[kPartitions] = {};
  uint64_t partition_bytes_[kPartitions] = {};
  bool partition_spilled_[kPartitions] = {};
  std::unique_ptr<SpillFile> build_spill_[kPartitions];
  std::unique_ptr<SpillFile> probe_spill_[kPartitions];
  uint64_t build_bytes_ = 0;

  // Probe state.
  std::vector<size_t> current_matches_;
  size_t match_pos_ = 0;
  bool outer_done_ = false;

  // Batch path: outer/build batches, (outer pos, build idx) match list
  // for chunked emission, and scratch contexts. row_ctx_ is dedicated to
  // the row-oriented capture paths (spill replay, alternate strategy).
  std::unique_ptr<RowBatch> outer_batch_;
  std::unique_ptr<RowBatch> build_batch_;
  std::vector<std::pair<uint16_t, size_t>> emit_;
  size_t emit_pos_ = 0;
  std::vector<CheckedPred> extra_preds_;
  std::vector<Value> flat_scratch_;
  size_t cap_ = kDefaultBatchCap;
  Value key_scratch_;  // reused join-key value (keeps string capacity)
  RowContext probe_ctx_;
  RowContext row_ctx_;

  // Spilled-partition (grace hash) replay state: the work queue of
  // spilled pairs, the pair currently loaded, and the quota charged for
  // its build side (released when the pair is drained).
  std::deque<SpillPair> spill_queue_;
  SpillPair current_pair_;
  uint64_t spill_loaded_bytes_ = 0;
  bool spill_loaded_ = false;
  std::map<int, size_t> outer_arity_;
  std::vector<std::vector<Value>> reload_rows_;
  std::vector<std::vector<Value>> spill_build_rows_;
  std::vector<Value> spill_build_keys_;
  std::unordered_map<uint64_t, std::vector<size_t>> spill_table_;
  std::optional<SpillFile::Reader> probe_reader_;
  // Cumulative spill output for EXPLAIN ANALYZE's `spilled=` actuals.
  uint64_t op_spilled_bytes_ = 0;
  uint64_t op_spilled_tuples_ = 0;

  // Alternate-strategy state.
  bool alternate_ = false;
  table::TableHeap* alt_heap_ = nullptr;
  index::BTree* alt_tree_ = nullptr;
  std::vector<CheckedPred> alt_outer_preds_;
  size_t alt_build_pos_ = 0;
  std::vector<Rid> alt_matches_;
  size_t alt_match_pos_ = 0;
  std::vector<Value> alt_outer_row_;
};

// ---------------------------------------------------------------------------
// Hash group by with the low-memory fallback (paper §4.3)
// ---------------------------------------------------------------------------

// AggState and its update/merge/finalize/encode helpers live in
// exec/agg.h, shared with the parallel pre-aggregation in exchange.cc.

class HashGroupByOp : public Operator, public MemoryConsumer {
 public:
  HashGroupByOp(const PlanNode* plan, std::unique_ptr<Operator> child,
                ExecContext* ec)
      : plan_(plan), child_(std::move(child)), ec_(ec) {
    name = "hash_group_by";
  }

  Status Open() override {
    if (ec_->memory != nullptr) {
      plan_level = 2;
      predicted_pages = plan_->memory_quota_pages;
      ec_->memory->RegisterConsumer(this);
    }
    emitting_ = false;
    HDB_RETURN_IF_ERROR(Aggregate());
    emitting_ = true;
    pos_ = results_.begin();
    return Status::OK();
  }

  Result<bool> Next(RowContext* ctx) override {
    const size_t group_slot = ec_->num_quantifiers;
    while (pos_ != results_.end()) {
      current_ = pos_->second;
      ++pos_;
      ctx->rows[group_slot] = &current_;
      if (plan_->having != nullptr) {
        HDB_ASSIGN_OR_RETURN(const bool ok,
                             plan_->having->EvaluatesToTrue(*ctx));
        if (!ok) continue;
      }
      return true;
    }
    ctx->rows[group_slot] = nullptr;
    return false;
  }

  Result<bool> NextBatch(RowBatch* b) override {
    b->Reset();
    const size_t group_slot = ec_->num_quantifiers;
    // Bind result rows directly: the results_ map is stable for the whole
    // emission phase, so no copy per group is needed.
    const table::Row** col = b->BindSlot(group_slot);
    size_t n = 0;
    while (n < b->capacity() && pos_ != results_.end()) {
      col[n++] = &pos_->second;
      ++pos_;
    }
    if (n == 0) return false;
    b->SetSize(n);
    if (plan_->having != nullptr) {
      if (emit_ctx_.rows.size() != b->num_slots()) {
        emit_ctx_.rows.assign(b->num_slots(), nullptr);
        emit_ctx_.params = b->params();
      }
      uint16_t* sel = b->MutableSel();
      size_t k = 0;
      for (size_t i = 0; i < n; ++i) {
        const size_t pos = b->Active(i);
        b->BindRow(pos, &emit_ctx_);
        HDB_ASSIGN_OR_RETURN(const bool ok,
                             plan_->having->EvaluatesToTrue(emit_ctx_));
        if (ok) sel[k++] = static_cast<uint16_t>(pos);
      }
      b->SetSelection(k);
    }
    return true;
  }

  void Close() override {
    child_->Close();
    if (ec_->memory != nullptr) {
      ec_->memory->UnregisterConsumer(this);
      ec_->memory->ReleaseBytes(bytes_held_);
    }
    bytes_held_ = 0;
  }

  // MemoryConsumer: the low-memory fallback — flush partially computed
  // groups (keys + encoded AggStates) to a temporary stream and keep
  // aggregating; the finalize phase merges partials back (paper §4.3).
  // Once emission starts, results_ is not spillable — it is the reserve.
  SpillableStats SpillStats() const override {
    SpillableStats s;
    s.respill_cost = 2.0;
    if (emitting_) {
      s.must_reserve_bytes = bytes_held_;
      return s;
    }
    s.spillable_bytes = bytes_held_;
    return s;
  }

  Result<uint64_t> SpillSome(uint64_t /*target_bytes*/) override {
    if (emitting_ || groups_.empty()) return uint64_t{0};
    if (spill_ == nullptr) spill_ = std::make_unique<SpillFile>(ec_->pool);
    const uint64_t before = spill_->byte_count();
    for (auto& [key, entry] : groups_) {
      std::vector<Value> tuple = entry.key_values;
      for (const AggState& s : entry.states) {
        const auto enc = EncodeAggState(s);
        tuple.insert(tuple.end(), enc.begin(), enc.end());
      }
      HDB_RETURN_IF_ERROR(spill_->Append(tuple));
      ++op_spilled_tuples_;
    }
    const uint64_t written = spill_->byte_count() - before;
    op_spilled_bytes_ += written;
    ec_->stats.spill_bytes_written += written;
    ec_->stats.group_by_used_fallback = true;
    ec_->stats.group_by_spilled_groups += groups_.size();
    const uint64_t freed = bytes_held_;
    groups_.clear();
    bytes_held_ = 0;
    return freed;
  }

  uint64_t MemoryBytes() const override { return bytes_held_; }
  uint64_t SpilledBytes() const override { return op_spilled_bytes_; }
  uint64_t SpilledTuples() const override { return op_spilled_tuples_; }

 private:
  struct GroupEntry {
    std::vector<Value> key_values;
    std::vector<AggState> states;
  };

  Status Aggregate() {
    HDB_RETURN_IF_ERROR(child_->Open());
    RowContext ctx;
    ctx.rows.assign(ec_->num_quantifiers + 1, nullptr);
    ctx.params = ec_->params;
    if (child_batch_ == nullptr) {
      child_batch_ = std::make_unique<RowBatch>(
          ec_->num_quantifiers + 1, EffectiveBatchCap(ec_, 0), ec_->params);
    }
    const size_t nkeys = plan_->group_keys.size();
    const size_t naggs = plan_->aggregates.size();
    scratch_keys_.resize(nkeys);
    scratch_args_.resize(naggs);
    for (;;) {
      HDB_ASSIGN_OR_RETURN(const bool more,
                           child_->NextBatch(child_batch_.get()));
      if (!more) break;
      const size_t bn = child_batch_->ActiveCount();
      for (size_t r = 0; r < bn; ++r) {
        child_batch_->BindRow(child_batch_->Active(r), &ctx);
        for (size_t ki = 0; ki < nkeys; ++ki) {
          HDB_RETURN_IF_ERROR(EvalExprInto(plan_->group_keys[ki].get(), ctx,
                                           &scratch_keys_[ki]));
        }
        // Aggregate arguments are evaluated *before* any quota charge:
        // charging may reclaim memory by evicting a hash-join partition
        // below us, invalidating the rows the ctx slots point into.
        for (size_t a = 0; a < naggs; ++a) {
          const auto& spec = plan_->aggregates[a];
          if (spec.arg != nullptr) {
            HDB_RETURN_IF_ERROR(
                EvalExprInto(spec.arg.get(), ctx, &scratch_args_[a]));
          } else {
            scratch_args_[a] = Value();
          }
        }
        EncodeValuesTo(scratch_keys_, &key_buf_);
        auto it = groups_.find(std::string_view(key_buf_));
        if (it == groups_.end()) {
          auto [it2, inserted] = groups_.try_emplace(key_buf_);
          it = it2;
          it->second.key_values = scratch_keys_;
          it->second.states.resize(naggs);
          const uint64_t bytes = key_buf_.size() + 64 * naggs + 64;
          bytes_held_ += bytes;
          if (ec_->memory != nullptr) {
            // May pick this operator as spill victim, clearing groups_.
            HDB_RETURN_IF_ERROR(ec_->memory->ChargeBytes(bytes));
            if (groups_.empty()) {
              auto [it3, ins3] = groups_.try_emplace(key_buf_);
              it3->second.key_values = scratch_keys_;
              it3->second.states.resize(naggs);
              it = it3;
            }
          }
        }
        for (size_t a = 0; a < naggs; ++a) {
          AggUpdate(it->second.states[a], plan_->aggregates[a].kind,
                    scratch_args_[a]);
        }
      }
    }

    // Finalize: merge the in-memory groups with any spilled partials.
    results_.clear();
    auto emit = [this](const std::string& key, const GroupEntry& e) {
      auto [it, inserted] = results_.try_emplace(key);
      if (inserted) {
        it->second = e.key_values;
        for (size_t a = 0; a < plan_->aggregates.size(); ++a) {
          it->second.push_back(
              AggFinalize(e.states[a], plan_->aggregates[a].kind));
        }
      }
    };
    if (spill_ != nullptr) {
      // Merge spilled partial groups first (keyed merge), then the
      // residual in-memory groups.
      std::map<std::string, GroupEntry> merged;
      auto reader = spill_->Read();
      std::vector<Value> tuple;
      for (;;) {
        HDB_ASSIGN_OR_RETURN(const bool more, reader.Next(&tuple));
        if (!more) break;
        GroupEntry e;
        e.key_values.assign(tuple.begin(), tuple.begin() + nkeys);
        for (size_t a = 0; a < plan_->aggregates.size(); ++a) {
          e.states.push_back(
              DecodeAggState(tuple, nkeys + a * kAggStateArity));
        }
        const std::string key = EncodeValues(e.key_values);
        auto [it, inserted] = merged.try_emplace(key, e);
        if (!inserted) {
          for (size_t a = 0; a < e.states.size(); ++a) {
            AggMerge(it->second.states[a], e.states[a]);
          }
        }
      }
      for (auto& [key, entry] : groups_) {
        auto [it, inserted] = merged.try_emplace(key, entry);
        if (!inserted) {
          for (size_t a = 0; a < entry.states.size(); ++a) {
            AggMerge(it->second.states[a], entry.states[a]);
          }
        }
      }
      for (const auto& [key, entry] : merged) emit(key, entry);
      ec_->stats.spill_bytes_read += spill_->byte_count();
      spill_.reset();
    } else {
      for (const auto& [key, entry] : groups_) emit(key, entry);
    }
    groups_.clear();

    // Scalar aggregation (no GROUP BY) over zero rows still yields one row.
    if (plan_->group_keys.empty() && results_.empty() &&
        !plan_->aggregates.empty()) {
      std::vector<Value> row;
      for (const auto& spec : plan_->aggregates) {
        row.push_back(AggFinalize(AggState{}, spec.kind));
      }
      results_[""] = row;
    }
    return Status::OK();
  }

  const PlanNode* plan_;
  std::unique_ptr<Operator> child_;
  ExecContext* ec_;

  std::unordered_map<std::string, GroupEntry, TransparentStringHash,
                     std::equal_to<>>
      groups_;
  std::unique_ptr<SpillFile> spill_;
  uint64_t bytes_held_ = 0;
  bool emitting_ = false;
  uint64_t op_spilled_bytes_ = 0;
  uint64_t op_spilled_tuples_ = 0;

  std::map<std::string, std::vector<Value>> results_;
  std::map<std::string, std::vector<Value>>::iterator pos_;
  std::vector<Value> current_;

  // Batch path: child batch plus per-row scratch buffers (reused across
  // the whole aggregation, so the hot loop does not allocate).
  std::unique_ptr<RowBatch> child_batch_;
  std::vector<Value> scratch_keys_;
  std::vector<Value> scratch_args_;
  std::string key_buf_;
  RowContext emit_ctx_;
};

// ---------------------------------------------------------------------------
// Sort (external merge when over quota)
// ---------------------------------------------------------------------------

class SortOp : public Operator, public MemoryConsumer {
 public:
  SortOp(const PlanNode* plan, std::unique_ptr<Operator> child,
         ExecContext* ec)
      : plan_(plan), child_(std::move(child)), ec_(ec) {
    for (const auto& c : plan_->children) CollectBoundQuantifiers(c.get(), &quants_);
    name = "sort";
  }

  Status Open() override {
    pending_.clear();
    runs_.clear();
    rows_.clear();
    merge_.reset();
    merging_ = false;
    merge_read_counted_ = false;
    pos_ = 0;
    if (ec_->memory != nullptr) {
      plan_level = 3;
      predicted_pages = plan_->memory_quota_pages;
      ec_->memory->RegisterConsumer(this);
    }
    HDB_RETURN_IF_ERROR(Materialize());
    return Status::OK();
  }

  Result<bool> Next(RowContext* ctx) override {
    if (merging_) {
      std::vector<Value> flat;
      HDB_ASSIGN_OR_RETURN(const bool more, merge_->Next(&flat));
      if (!more) {
        if (!merge_read_counted_) {
          for (const auto& run : runs_) {
            ec_->stats.spill_bytes_read += run->byte_count();
          }
          merge_read_counted_ = true;
        }
        return false;
      }
      Bind(Unflatten(flat), ctx);
      return true;
    }
    if (pos_ >= rows_.size()) return false;
    Bind(rows_[pos_++], ctx);
    return true;
  }

  void Close() override {
    child_->Close();
    if (ec_->memory != nullptr) {
      ec_->memory->UnregisterConsumer(this);
      ec_->memory->ReleaseBytes(bytes_held_);
    }
    bytes_held_ = 0;
    merge_.reset();
    runs_.clear();
  }

  // MemoryConsumer: a sort run is cheap to respill (sequential write, one
  // sequential read back through the merge, no rebuild), so the sort is
  // the scheduler's preferred victim. During the merge phase the buffer
  // is already on disk — nothing left to give.
  SpillableStats SpillStats() const override {
    SpillableStats s;
    s.respill_cost = 1.5;
    if (merging_) return s;
    s.spillable_bytes = bytes_held_;
    return s;
  }

  Result<uint64_t> SpillSome(uint64_t /*target_bytes*/) override {
    if (merging_ || pending_.empty()) return uint64_t{0};
    HDB_RETURN_IF_ERROR(WriteRun());
    const uint64_t freed = bytes_held_;
    bytes_held_ = 0;
    return freed;
  }

  uint64_t MemoryBytes() const override { return bytes_held_; }
  uint64_t SpilledBytes() const override { return op_spilled_bytes_; }
  uint64_t SpilledTuples() const override { return op_spilled_tuples_; }

 private:
  struct MatRow {
    std::vector<std::vector<Value>> slots;  // indexed by quantifier
    std::vector<Value> group_row;           // pseudo-quantifier content
    bool has_group = false;
    std::vector<Value> keys;                // precomputed sort keys
  };

  int Compare(const MatRow& a, const MatRow& b) const {
    for (size_t i = 0; i < plan_->order.size(); ++i) {
      const int c = a.keys[i].Compare(b.keys[i]);
      if (c != 0) return plan_->order[i].ascending ? c : -c;
    }
    return 0;
  }

  void SortPending() {
    std::stable_sort(pending_.begin(), pending_.end(),
                     [this](const MatRow& a, const MatRow& b) {
                       return Compare(a, b) < 0;
                     });
  }

  /// Sorts the pending buffer and writes it out as one run, propagating
  /// any spill-write failure.
  Status WriteRun() {
    SortPending();
    auto run = std::make_unique<SpillFile>(ec_->pool);
    for (const auto& r : pending_) {
      HDB_RETURN_IF_ERROR(run->Append(Flatten(r)));
    }
    op_spilled_bytes_ += run->byte_count();
    op_spilled_tuples_ += run->tuple_count();
    ec_->stats.spill_bytes_written += run->byte_count();
    ec_->stats.sort_runs_spilled++;
    runs_.push_back(std::move(run));
    pending_.clear();
    return Status::OK();
  }

  std::vector<Value> Flatten(const MatRow& r) const {
    // [keys..., has_group, group arity, group..., per quant: arity, vals...]
    std::vector<Value> flat = r.keys;
    flat.push_back(Value::Boolean(r.has_group));
    flat.push_back(Value::Bigint(static_cast<int64_t>(r.group_row.size())));
    for (const Value& v : r.group_row) flat.push_back(v);
    for (const int q : quants_) {
      const auto& slot = r.slots[q];
      flat.push_back(Value::Bigint(static_cast<int64_t>(slot.size())));
      for (const Value& v : slot) flat.push_back(v);
    }
    return flat;
  }

  MatRow Unflatten(const std::vector<Value>& flat) const {
    MatRow r;
    size_t pos = 0;
    r.keys.assign(flat.begin(), flat.begin() + plan_->order.size());
    pos = plan_->order.size();
    r.has_group = flat[pos++].AsBool();
    const auto garity = static_cast<size_t>(flat[pos++].AsInt());
    r.group_row.assign(flat.begin() + pos, flat.begin() + pos + garity);
    pos += garity;
    r.slots.resize(ec_->num_quantifiers + 1);
    for (const int q : quants_) {
      const auto arity = static_cast<size_t>(flat[pos++].AsInt());
      r.slots[q].assign(flat.begin() + pos, flat.begin() + pos + arity);
      pos += arity;
    }
    return r;
  }

  void Bind(const MatRow& r, RowContext* ctx) {
    current_ = r;
    for (size_t q = 0; q < ctx->rows.size(); ++q) ctx->rows[q] = nullptr;
    for (const int q : quants_) ctx->rows[q] = &current_.slots[q];
    if (current_.has_group) {
      ctx->rows[ec_->num_quantifiers] = &current_.group_row;
    }
  }

  Status Materialize() {
    HDB_RETURN_IF_ERROR(child_->Open());
    RowContext ctx;
    ctx.rows.assign(ec_->num_quantifiers + 1, nullptr);
    ctx.params = ec_->params;
    for (;;) {
      HDB_ASSIGN_OR_RETURN(const bool more, child_->Next(&ctx));
      if (!more) break;
      MatRow r;
      r.slots.resize(ec_->num_quantifiers + 1);
      for (const int q : quants_) {
        if (ctx.rows[q] != nullptr) r.slots[q] = *ctx.rows[q];
      }
      if (ctx.rows[ec_->num_quantifiers] != nullptr) {
        r.group_row = *ctx.rows[ec_->num_quantifiers];
        r.has_group = true;
      }
      r.keys.reserve(plan_->order.size());
      for (const auto& o : plan_->order) {
        HDB_ASSIGN_OR_RETURN(Value v, o.expr->Evaluate(ctx));
        r.keys.push_back(std::move(v));
      }
      uint64_t bytes = 96;
      for (const auto& s : r.slots) bytes += 48 * s.size();
      bytes_held_ += bytes;
      pending_.push_back(std::move(r));
      if (ec_->memory != nullptr) {
        HDB_RETURN_IF_ERROR(ec_->memory->ChargeBytes(bytes));
      }
    }

    if (runs_.empty()) {
      SortPending();
      rows_ = std::move(pending_);
      pending_.clear();
      return Status::OK();
    }
    // External merge: the in-memory remainder becomes a final run (and
    // its charge is genuinely released — the old path cleared the buffer
    // without crediting the account), then all runs merge *streamingly*:
    // one decoded tuple per run, never the whole result (the old path
    // re-materialized everything it had just spilled).
    if (!pending_.empty()) {
      HDB_RETURN_IF_ERROR(WriteRun());
      if (ec_->memory != nullptr) ec_->memory->ReleaseBytes(bytes_held_);
      bytes_held_ = 0;
    }
    std::vector<const SpillFile*> run_ptrs;
    run_ptrs.reserve(runs_.size());
    for (const auto& run : runs_) run_ptrs.push_back(run.get());
    merge_ = std::make_unique<SpillMergeReader>(
        std::move(run_ptrs),
        [this](const std::vector<Value>& a,
               const std::vector<Value>& b) -> int {
          // Flat run tuples lead with the precomputed sort keys.
          for (size_t i = 0; i < plan_->order.size(); ++i) {
            const int c = a[i].Compare(b[i]);
            if (c != 0) return plan_->order[i].ascending ? c : -c;
          }
          return 0;
        });
    HDB_RETURN_IF_ERROR(merge_->Init());
    merging_ = true;
    return Status::OK();
  }

  const PlanNode* plan_;
  std::unique_ptr<Operator> child_;
  ExecContext* ec_;
  std::vector<int> quants_;

  std::vector<MatRow> pending_;
  std::vector<std::unique_ptr<SpillFile>> runs_;
  std::vector<MatRow> rows_;
  size_t pos_ = 0;
  MatRow current_;
  uint64_t bytes_held_ = 0;

  // Streaming-merge emission state (spilled executions only).
  std::unique_ptr<SpillMergeReader> merge_;
  bool merging_ = false;
  bool merge_read_counted_ = false;
  uint64_t op_spilled_bytes_ = 0;
  uint64_t op_spilled_tuples_ = 0;
};

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE instrumentation
// ---------------------------------------------------------------------------

/// Decorator measuring one operator for EXPLAIN ANALYZE. Wall time is
/// inclusive of children (which are themselves wrapped, so self time can
/// be derived by subtraction); memory is the high-water mark of the
/// wrapped operator's MemoryBytes(), sampled after Open and each Next.
class InstrumentedOp : public Operator {
 public:
  InstrumentedOp(const PlanNode* plan, std::unique_ptr<Operator> inner,
                 ExecContext* ec)
      : plan_(plan), inner_(std::move(inner)), ec_(ec) {}

  Status Open() override {
    const auto t0 = std::chrono::steady_clock::now();
    const obs::WaitBreakdown w0 = obs::CurrentWaitBreakdown();
    const Status s = inner_->Open();
    optimizer::OpActuals& a = Sample(t0, w0);
    a.opens++;
    return s;
  }

  Result<bool> Next(RowContext* ctx) override {
    const auto t0 = std::chrono::steady_clock::now();
    const obs::WaitBreakdown w0 = obs::CurrentWaitBreakdown();
    Result<bool> r = inner_->Next(ctx);
    optimizer::OpActuals& a = Sample(t0, w0);
    a.invocations++;
    if (r.ok() && *r) a.rows++;
    return r;
  }

  Result<bool> NextBatch(RowBatch* batch) override {
    const auto t0 = std::chrono::steady_clock::now();
    const obs::WaitBreakdown w0 = obs::CurrentWaitBreakdown();
    Result<bool> r = inner_->NextBatch(batch);
    optimizer::OpActuals& a = Sample(t0, w0);
    a.invocations++;
    a.batches++;
    // Under batching, actual rows are the *selected* rows the operator
    // produced — not the number of NextBatch pulls (DESIGN.md §6).
    if (r.ok() && *r) a.rows += batch->ActiveCount();
    return r;
  }

  void Close() override {
    optimizer::OpActuals& a = (*ec_->actuals)[plan_];
    a.peak_memory_bytes = std::max(a.peak_memory_bytes, inner_->MemoryBytes());
    a.spilled_bytes = inner_->SpilledBytes();
    a.spilled_tuples = inner_->SpilledTuples();
    inner_->Close();
  }

  bool ProducesOutput() const override { return inner_->ProducesOutput(); }
  uint64_t MemoryBytes() const override { return inner_->MemoryBytes(); }
  uint64_t SpilledBytes() const override { return inner_->SpilledBytes(); }
  uint64_t SpilledTuples() const override { return inner_->SpilledTuples(); }

 private:
  optimizer::OpActuals& Sample(std::chrono::steady_clock::time_point started,
                               const obs::WaitBreakdown& before) {
    optimizer::OpActuals& a = (*ec_->actuals)[plan_];
    a.wall_micros += std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - started)
                         .count();
    a.peak_memory_bytes = std::max(a.peak_memory_bytes, inner_->MemoryBytes());
    a.spilled_bytes = inner_->SpilledBytes();
    a.spilled_tuples = inner_->SpilledTuples();
    // Statement-trace wait deltas across the wrapped call (children
    // included, same nesting rule as wall_micros). Tallies only grow, so
    // the subtraction is safe; all-zero when no trace is installed.
    const obs::WaitBreakdown after = obs::CurrentWaitBreakdown();
    a.wait_lock_micros += after.lock_micros - before.lock_micros;
    a.wait_wal_micros += after.wal_micros - before.wal_micros;
    a.wait_spill_micros += after.spill_micros - before.spill_micros;
    a.wait_pool_micros += after.pool_micros - before.pool_micros;
    return a;
  }

  const PlanNode* plan_;
  std::unique_ptr<Operator> inner_;
  ExecContext* ec_;
};

/// Decorator bracketing a blocking (materializing) operator with a span on
/// the statement's trace: opened at Open(), closed after Close() so child
/// operator spans nest inside. Installed only when the building thread
/// carries a statement trace.
class SpanOp : public Operator {
 public:
  SpanOp(const char* span_name, std::unique_ptr<Operator> inner,
         obs::StatementTrace* trace)
      : span_name_(span_name), inner_(std::move(inner)), trace_(trace) {}

  ~SpanOp() override {
    // Error paths can skip Close(); the span must not dangle past the
    // operator tree.
    if (span_id_ != 0) trace_->CloseSpan(span_id_);
  }

  Status Open() override {
    // NL-join inner sides re-open per outer row: each rebuild gets its
    // own span (capped by the trace's span budget).
    if (span_id_ != 0) trace_->CloseSpan(span_id_);
    span_id_ = trace_->OpenSpan(span_name_);
    return inner_->Open();
  }

  Result<bool> Next(RowContext* ctx) override { return inner_->Next(ctx); }
  Result<bool> NextBatch(RowBatch* batch) override {
    return inner_->NextBatch(batch);
  }

  void Close() override {
    inner_->Close();
    if (span_id_ != 0) {
      trace_->CloseSpan(span_id_);
      span_id_ = 0;
    }
  }

  bool ProducesOutput() const override { return inner_->ProducesOutput(); }
  uint64_t MemoryBytes() const override { return inner_->MemoryBytes(); }
  uint64_t SpilledBytes() const override { return inner_->SpilledBytes(); }
  uint64_t SpilledTuples() const override { return inner_->SpilledTuples(); }

 private:
  const char* span_name_;
  std::unique_ptr<Operator> inner_;
  obs::StatementTrace* trace_;
  uint32_t span_id_ = 0;
};

Result<std::unique_ptr<Operator>> BuildExecutorNode(const PlanNode* plan,
                                                    ExecContext* ctx);

}  // namespace

// ---------------------------------------------------------------------------
// Plan compilation
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Operator>> BuildExecutor(const PlanNode* plan,
                                                ExecContext* ctx) {
  HDB_ASSIGN_OR_RETURN(auto op, BuildExecutorNode(plan, ctx));
  if (ctx->actuals != nullptr) {
    op = std::unique_ptr<Operator>(new InstrumentedOp(plan, std::move(op), ctx));
  }
  if (obs::StatementTrace* trace = obs::CurrentStatementTrace();
      trace != nullptr) {
    // Blocking operators get lifetime spans on the statement trace; SpanOp
    // wraps outermost so its bookkeeping stays out of the EXPLAIN ANALYZE
    // wall time.
    const char* span_name = nullptr;
    switch (plan->kind) {
      case PlanKind::kHashJoin:
        span_name = obs::kSpanOpHashJoin;
        break;
      case PlanKind::kSort:
        span_name = obs::kSpanOpSort;
        break;
      case PlanKind::kHashGroupBy:
        span_name = obs::kSpanOpHashGroupBy;
        break;
      case PlanKind::kHashDistinct:
        span_name = obs::kSpanOpHashDistinct;
        break;
      default:
        break;
    }
    if (span_name != nullptr) {
      op = std::unique_ptr<Operator>(
          new SpanOp(span_name, std::move(op), trace));
    }
  }
  return op;
}

namespace {

// Children are built through BuildExecutor so each level gets wrapped
// when EXPLAIN ANALYZE instrumentation is on.
Result<std::unique_ptr<Operator>> BuildExecutorNode(const PlanNode* plan,
                                                    ExecContext* ctx) {
  // Intra-query parallelism (paper §4.4, DESIGN.md §13): for nodes the
  // optimizer marked parallel-eligible, ask the governor for a worker
  // grant at pipeline start. grant == 1 (the default under load, and
  // always when parallel.max_workers is 1) falls through to the serial
  // operators below — the parallel machinery costs serial plans nothing.
  // Worker fragments never recurse here (in_parallel_worker), and an
  // exchange already consuming a dispenser never nests another.
  if (ctx->parallel != nullptr && plan->parallel_workers > 1 &&
      ctx->morsel_source == nullptr && !ctx->in_parallel_worker) {
    // Per-worker predicted share: the optimizer's quota is for the whole
    // operator; join build partitions are disjoint across the crew and
    // pre-aggregation maps split the same way, so the crew collectively
    // holds roughly the serial plan's memory.
    const uint32_t share =
        plan->memory_quota_pages == 0
            ? 0
            : std::max<uint32_t>(
                  1, plan->memory_quota_pages /
                         static_cast<uint32_t>(plan->parallel_workers));
    const int grant = ctx->parallel->PickWorkers(plan->parallel_workers, share);
    if (grant > 1) return MakeExchangeOp(plan, ctx, grant);
  }
  switch (plan->kind) {
    case PlanKind::kSeqScan:
      return std::unique_ptr<Operator>(new SeqScanOp(plan, ctx));
    case PlanKind::kIndexScan:
      if (plan->index_is_virtual) {
        return Status::Internal("virtual index in an executable plan");
      }
      return std::unique_ptr<Operator>(new IndexScanOp(plan, ctx));
    case PlanKind::kFilter: {
      HDB_ASSIGN_OR_RETURN(auto child,
                           BuildExecutor(plan->children[0].get(), ctx));
      return std::unique_ptr<Operator>(new FilterOp(plan, std::move(child)));
    }
    case PlanKind::kProject: {
      HDB_ASSIGN_OR_RETURN(auto child,
                           BuildExecutor(plan->children[0].get(), ctx));
      return std::unique_ptr<Operator>(new ProjectOp(plan, std::move(child)));
    }
    case PlanKind::kLimit: {
      HDB_ASSIGN_OR_RETURN(auto child,
                           BuildExecutor(plan->children[0].get(), ctx));
      return std::unique_ptr<Operator>(new LimitOp(plan, std::move(child)));
    }
    case PlanKind::kHashDistinct: {
      HDB_ASSIGN_OR_RETURN(auto child,
                           BuildExecutor(plan->children[0].get(), ctx));
      return std::unique_ptr<Operator>(
          new HashDistinctOp(plan, std::move(child), ctx));
    }
    case PlanKind::kNLJoin: {
      HDB_ASSIGN_OR_RETURN(auto outer,
                           BuildExecutor(plan->children[0].get(), ctx));
      HDB_ASSIGN_OR_RETURN(auto inner,
                           BuildExecutor(plan->children[1].get(), ctx));
      return std::unique_ptr<Operator>(
          new NLJoinOp(plan, std::move(outer), std::move(inner)));
    }
    case PlanKind::kIndexNLJoin: {
      if (plan->index_is_virtual) {
        return Status::Internal("virtual index in an executable plan");
      }
      HDB_ASSIGN_OR_RETURN(auto outer,
                           BuildExecutor(plan->children[0].get(), ctx));
      return std::unique_ptr<Operator>(
          new IndexNLJoinOp(plan, std::move(outer), ctx));
    }
    case PlanKind::kHashJoin: {
      HDB_ASSIGN_OR_RETURN(auto outer,
                           BuildExecutor(plan->children[0].get(), ctx));
      HDB_ASSIGN_OR_RETURN(auto inner,
                           BuildExecutor(plan->children[1].get(), ctx));
      return std::unique_ptr<Operator>(
          new HashJoinOp(plan, std::move(outer), std::move(inner), ctx));
    }
    case PlanKind::kHashGroupBy: {
      HDB_ASSIGN_OR_RETURN(auto child,
                           BuildExecutor(plan->children[0].get(), ctx));
      return std::unique_ptr<Operator>(
          new HashGroupByOp(plan, std::move(child), ctx));
    }
    case PlanKind::kSort: {
      HDB_ASSIGN_OR_RETURN(auto child,
                           BuildExecutor(plan->children[0].get(), ctx));
      return std::unique_ptr<Operator>(
          new SortOp(plan, std::move(child), ctx));
    }
  }
  return Status::Internal("unhandled plan kind");
}

}  // namespace

Result<std::vector<std::vector<Value>>> ExecuteToRows(const PlanNode* plan,
                                                      ExecContext* ctx) {
  // Column pruning: when the root chain projects output (so result fetch
  // never flattens raw slots), collect which columns of each quantifier
  // the plan references; scans skip decoding the rest.
  ctx->scan_masks.clear();
  if (PlanProducesOutput(plan)) {
    ctx->scan_masks.resize(ctx->num_quantifiers + 1);
    CollectPlanColumnMasks(plan, &ctx->scan_masks);
  }
  HDB_ASSIGN_OR_RETURN(auto op, BuildExecutor(plan, ctx));
  RowContext rc;
  rc.rows.assign(ctx->num_quantifiers + 1, nullptr);
  rc.params = ctx->params;
  RowBatch batch(ctx->num_quantifiers + 1,
                 ctx->batch_cap != 0 ? ctx->batch_cap : kDefaultBatchCap,
                 ctx->params);
  HDB_RETURN_IF_ERROR(op->Open());
  std::vector<std::vector<Value>> out;
  const bool projected = op->ProducesOutput();
  for (;;) {
    HDB_ASSIGN_OR_RETURN(const bool more, op->NextBatch(&batch));
    if (!more) break;
    const size_t n = batch.ActiveCount();
    ctx->stats.rows_output += n;
    for (size_t i = 0; i < n; ++i) {
      const size_t pos = batch.Active(i);
      if (projected) {
        // Steal the output row's buffer; the slot refills next batch.
        out.push_back(std::move(*batch.MutableOutput(pos)));
      } else {
        batch.BindRow(pos, &rc);
        std::vector<Value> flat;
        for (const auto* slot : rc.rows) {
          if (slot != nullptr) {
            flat.insert(flat.end(), slot->begin(), slot->end());
          }
        }
        out.push_back(std::move(flat));
      }
    }
  }
  op->Close();
  return out;
}

}  // namespace hdb::exec
