#include "exec/admission_gate.h"

#include <algorithm>
#include <chrono>

#include "obs/metric_names.h"
#include "obs/trace.h"

namespace hdb::exec {

void AdmissionGate::Ticket::Release() {
  if (gate_ != nullptr) {
    gate_->ReleaseSlot();
    gate_ = nullptr;
  }
}

AdmissionGate::AdmissionGate(MemoryGovernor* governor,
                             AdmissionGateOptions options)
    : governor_(governor), options_(options) {}

Result<AdmissionGate::Ticket> AdmissionGate::Admit() {
  if (!options_.enabled) return Ticket();
  UniqueLock lock(mu_);
  const auto capacity = [this] {
    return static_cast<uint64_t>(
        std::max(1, governor_->multiprogramming_level()));
  };
  if (active_ < capacity()) {
    ++active_;
    ++admitted_immediately_;
    return Ticket(this);
  }
  ++waiting_;
  const auto wait_start = std::chrono::steady_clock::now();
  const auto deadline =
      wait_start + std::chrono::microseconds(options_.queue_timeout_micros);
  // Explicit wait loop rather than a wait_for predicate: the predicate
  // reads mu_-guarded active_, and the analysis checks a lambda as a
  // separate (lock-free) function — the loop keeps the guarded read in
  // this scope, where `lock` visibly holds mu_. Semantics match
  // wait_for(pred): one final predicate check after a timeout.
  bool admitted;
  while (!(admitted = active_ < capacity())) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      admitted = active_ < capacity();
      break;
    }
  }
  --waiting_;
  const auto waited_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wait_start)
          .count());
  if (wait_hist_ != nullptr) wait_hist_->Record(waited_micros);
  if (obs::StatementTrace* trace = obs::CurrentStatementTrace()) {
    trace->RecordWait(obs::WaitCause::kAdmission, capacity(), waited_micros);
  }
  if (!admitted) {
    ++timed_out_;
    if (timeout_counter_ != nullptr) timeout_counter_->Add();
    return Status::Overloaded(
        "admission queue timeout: server at multiprogramming level");
  }
  ++active_;
  ++admitted_after_wait_;
  return Ticket(this);
}

void AdmissionGate::ReleaseSlot() {
  {
    LockGuard lock(mu_);
    if (active_ > 0) --active_;
  }
  cv_.notify_one();
}

void AdmissionGate::Poke() { cv_.notify_all(); }

void AdmissionGate::AttachTelemetry(obs::MetricsRegistry* registry) {
  // Register before taking mu_: the registry invokes this gate's stats()
  // callbacks (which take mu_) under its own mutex, so registering under
  // mu_ would invert that order.
  obs::LatencyHistogram* hist =
      registry != nullptr ? registry->RegisterHistogram(obs::kGateWaitMicros)
                          : nullptr;
  obs::Counter* timeouts =
      registry != nullptr ? registry->RegisterCounter(obs::kAdmissionTimeouts)
                          : nullptr;
  LockGuard lock(mu_);
  wait_hist_ = hist;
  timeout_counter_ = timeouts;
}

AdmissionGateStats AdmissionGate::stats() const {
  LockGuard lock(mu_);
  AdmissionGateStats s;
  s.admitted_immediately = admitted_immediately_;
  s.admitted_after_wait = admitted_after_wait_;
  s.timed_out = timed_out_;
  s.active = active_;
  s.waiting = waiting_;
  return s;
}

}  // namespace hdb::exec
