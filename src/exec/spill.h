#ifndef HDB_EXEC_SPILL_H_
#define HDB_EXEC_SPILL_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "storage/buffer_pool.h"

namespace hdb::exec {

/// Schema-free value-tuple codec for spilled intermediate results.
std::string EncodeValues(const std::vector<Value>& values);
/// Encodes into `out` (cleared first, capacity reused) — the per-row hot
/// path for hash group by / distinct key lookups.
void EncodeValuesTo(const std::vector<Value>& values, std::string* out);
Result<std::vector<Value>> DecodeValues(const char* data, size_t len,
                                        size_t* consumed);

/// An append-only stream of value tuples in temporary-space pages
/// (PageType::kTempTable). This is the sink for every operator spill:
/// evicted hash-join partitions, hash-group-by partial groups, and
/// external-sort runs. Pages are discarded to the buffer pool's lookaside
/// queue on destruction — exactly the "immediately reusable" page class of
/// paper §2.2.
class SpillFile {
 public:
  explicit SpillFile(storage::BufferPool* pool);
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  Status Append(const std::vector<Value>& tuple);

  /// Sequential reader over all appended tuples.
  class Reader {
   public:
    /// Returns false at end of stream.
    Result<bool> Next(std::vector<Value>* tuple);

   private:
    friend class SpillFile;
    explicit Reader(const SpillFile* file) : file_(file) {}
    const SpillFile* file_;
    size_t page_index_ = 0;
    uint32_t offset_ = 0;
  };

  Reader Read() const { return Reader(this); }

  uint64_t tuple_count() const { return tuples_; }
  size_t page_count() const { return pages_.size(); }
  /// Payload bytes written (records + length prefixes). The spill
  /// scheduler's unit of account for spill I/O and re-partition budgets.
  uint64_t byte_count() const { return bytes_; }

  /// Releases all pages now (lookaside reuse) and resets to empty.
  void Clear();

 private:
  friend class Reader;

  storage::BufferPool* pool_;
  std::vector<storage::PageId> pages_;
  // Per-page used byte count (records never span pages).
  std::vector<uint32_t> used_;
  uint64_t tuples_ = 0;
  uint64_t bytes_ = 0;
};

/// Streaming k-way merge over sorted SpillFile runs. Each run must be
/// internally sorted under `cmp` (strict weak ordering over flat tuples);
/// ties are broken by run index, so earlier runs win and a stable
/// producer (external merge sort over stable_sort'ed runs) stays stable.
/// Holds one decoded tuple per run — the whole point: the merged output
/// is never materialized.
class SpillMergeReader {
 public:
  using Comparator =
      std::function<int(const std::vector<Value>&, const std::vector<Value>&)>;

  SpillMergeReader(std::vector<const SpillFile*> runs, Comparator cmp);

  /// Primes one cursor per run. Call once before Next().
  [[nodiscard]] Status Init();

  /// Returns false at end of all runs.
  Result<bool> Next(std::vector<Value>* tuple);

 private:
  struct Cursor {
    SpillFile::Reader reader;
    std::vector<Value> row;
    bool done = false;
  };
  std::vector<const SpillFile*> runs_;
  Comparator cmp_;
  std::vector<Cursor> cursors_;
};

}  // namespace hdb::exec

#endif  // HDB_EXEC_SPILL_H_
