#ifndef HDB_EXEC_SPILL_H_
#define HDB_EXEC_SPILL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "storage/buffer_pool.h"

namespace hdb::exec {

/// Schema-free value-tuple codec for spilled intermediate results.
std::string EncodeValues(const std::vector<Value>& values);
/// Encodes into `out` (cleared first, capacity reused) — the per-row hot
/// path for hash group by / distinct key lookups.
void EncodeValuesTo(const std::vector<Value>& values, std::string* out);
Result<std::vector<Value>> DecodeValues(const char* data, size_t len,
                                        size_t* consumed);

/// An append-only stream of value tuples in temporary-space pages
/// (PageType::kTempTable). This is the sink for every operator spill:
/// evicted hash-join partitions, hash-group-by partial groups, and
/// external-sort runs. Pages are discarded to the buffer pool's lookaside
/// queue on destruction — exactly the "immediately reusable" page class of
/// paper §2.2.
class SpillFile {
 public:
  explicit SpillFile(storage::BufferPool* pool);
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  Status Append(const std::vector<Value>& tuple);

  /// Sequential reader over all appended tuples.
  class Reader {
   public:
    /// Returns false at end of stream.
    Result<bool> Next(std::vector<Value>* tuple);

   private:
    friend class SpillFile;
    explicit Reader(const SpillFile* file) : file_(file) {}
    const SpillFile* file_;
    size_t page_index_ = 0;
    uint32_t offset_ = 0;
  };

  Reader Read() const { return Reader(this); }

  uint64_t tuple_count() const { return tuples_; }
  size_t page_count() const { return pages_.size(); }

  /// Releases all pages now (lookaside reuse) and resets to empty.
  void Clear();

 private:
  friend class Reader;

  storage::BufferPool* pool_;
  std::vector<storage::PageId> pages_;
  // Per-page used byte count (records never span pages).
  std::vector<uint32_t> used_;
  uint64_t tuples_ = 0;
};

}  // namespace hdb::exec

#endif  // HDB_EXEC_SPILL_H_
