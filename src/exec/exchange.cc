#include "exec/exchange.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/lock_rank.h"
#include "exec/agg.h"
#include "exec/spill.h"
#include "obs/span_names.h"
#include "obs/trace.h"

namespace hdb::exec {
namespace {

using optimizer::PlanKind;
using optimizer::PlanNode;
using optimizer::RowContext;

// ---------------------------------------------------------------------------
// Fragment shape. The optimizer only marks fragments of the form
// {Filter, Project}* over a non-virtual SeqScan (MarkParallelFragments),
// so a marked subtree always has exactly one scan quantifier and never a
// blocking operator — every worker can run a private copy of it against
// the shared morsel dispenser.
// ---------------------------------------------------------------------------

const PlanNode* FragmentScan(const PlanNode* n) {
  while (n->kind == PlanKind::kFilter || n->kind == PlanKind::kProject) {
    n = n->children[0].get();
  }
  return n->kind == PlanKind::kSeqScan ? n : nullptr;
}

bool FragmentProducesOutput(const PlanNode* n) {
  for (;;) {
    switch (n->kind) {
      case PlanKind::kProject:
        return true;
      case PlanKind::kFilter:
        n = n->children[0].get();
        break;
      default:
        return false;
    }
  }
}

/// Private execution context for one worker thread: shares the engine
/// callbacks, parameters, and the statement's TaskMemoryContext with the
/// coordinator, but owns its stats and is flagged so arena charges route
/// through ChargeBytesFromWorker (memory_governor.h contract). Feedback
/// and EXPLAIN ANALYZE actuals stay coordinator-only — neither collector
/// is thread-safe.
ExecContext MakeWorkerContext(const ExecContext& ec, MorselDispenser* source,
                              int quantifier) {
  ExecContext w;
  w.pool = ec.pool;
  w.table_heap = ec.table_heap;
  w.index = ec.index;
  w.feedback = nullptr;
  w.memory = ec.memory;
  w.num_quantifiers = ec.num_quantifiers;
  w.params = ec.params;
  w.virtual_rows = nullptr;
  w.actuals = nullptr;
  w.batch_cap = ec.batch_cap;
  w.scan_masks = ec.scan_masks;
  w.parallel = nullptr;  // no nested parallelism inside a fragment
  w.morsel_source = source;
  w.morsel_quantifier = quantifier;
  w.in_parallel_worker = true;
  return w;
}

/// Folds one worker's runtime counters into the coordinator's. Called
/// after the crew joined, so no synchronization is needed.
void FoldWorkerStats(ExecContext* ec, const RuntimeStats& w) {
  ec->stats.rows_scanned += w.rows_scanned;
  ec->stats.batches += w.batches;
  ec->stats.batch_rows += w.batch_rows;
  ec->stats.batch_arena_peak_bytes =
      std::max(ec->stats.batch_arena_peak_bytes, w.batch_arena_peak_bytes);
  ec->stats.batch_cap_shrinks += w.batch_cap_shrinks;
}

/// EXPLAIN ANALYZE `workers=` actual for the exchange's plan node.
void RecordActualWorkers(ExecContext* ec, const PlanNode* plan, int workers) {
  if (ec->actuals != nullptr) (*ec->actuals)[plan].workers = workers;
}

size_t WorkerBatchCap(const ExecContext& wc) {
  return wc.batch_cap != 0 ? wc.batch_cap : kDefaultBatchCap;
}

struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

// ---------------------------------------------------------------------------
// Packets: worker → coordinator row transport. A packet owns its rows
// (copied out of the worker's batch), so its lifetime is independent of
// the producing fragment; the coordinator binds slot pointers straight
// into the packet and keeps it alive until the parent asks for the next
// batch (the RowBatch lifetime contract).
// ---------------------------------------------------------------------------

/// Rows per packet before a worker pushes (matches the batch cap so one
/// coordinator batch drains roughly one packet).
struct Packet {
  std::vector<uint16_t> slots;
  std::vector<std::vector<table::Row>> rows;  // parallel with `slots`
  std::vector<table::Row> output;
  bool has_output = false;
  size_t count = 0;
};

void AppendToPacket(Packet* p, const RowContext& ctx,
                    const std::vector<uint16_t>& slots, bool with_output) {
  if (p->slots.empty()) {
    p->slots = slots;
    p->rows.resize(slots.size());
  }
  for (size_t i = 0; i < slots.size(); ++i) {
    p->rows[i].push_back(*ctx.rows[slots[i]]);
  }
  if (with_output) {
    p->output.push_back(ctx.output);
    p->has_output = true;
  }
  p->count++;
}

/// Bounded MPMC queue of packets. Workers push (blocking while full, so
/// a slow coordinator applies backpressure instead of unbounded
/// buffering); the coordinator pops (blocking while empty until every
/// producer is done). Abort() unblocks everyone — Close()/destruction
/// must never deadlock on a full queue.
class PacketQueue {
 public:
  PacketQueue(size_t capacity, int producers)
      : cap_(std::max<size_t>(1, capacity)), producers_(producers) {}

  /// False when the queue was aborted (the worker should stop producing).
  bool Push(Packet&& p) {
    UniqueLock lock(mu_);
    // Explicit wait loops throughout (see admission_gate.cc): the
    // predicates read mu_-guarded state, which the thread-safety analysis
    // only accepts in a scope that visibly holds mu_.
    while (q_.size() >= cap_ && !aborted_) cv_.wait(lock);
    if (aborted_) return false;
    q_.push_back(std::move(p));
    cv_.notify_all();
    return true;
  }

  void ProducerDone() {
    {
      LockGuard lock(mu_);
      --producers_;
    }
    cv_.notify_all();
  }

  /// False when drained (all producers done, queue empty) or aborted.
  bool Pop(Packet* out) {
    UniqueLock lock(mu_);
    while (q_.empty() && producers_ > 0 && !aborted_) cv_.wait(lock);
    if (q_.empty()) return false;
    *out = std::move(q_.front());
    q_.pop_front();
    cv_.notify_all();
    return true;
  }

  void Abort() {
    {
      LockGuard lock(mu_);
      aborted_ = true;
      q_.clear();
    }
    cv_.notify_all();
  }

 private:
  const size_t cap_;
  RankedMutex<LockRank::kParallelQueue> mu_;
  std::condition_variable_any cv_;
  std::deque<Packet> q_ GUARDED_BY(mu_);
  int producers_ GUARDED_BY(mu_);
  bool aborted_ GUARDED_BY(mu_) = false;
};

// ---------------------------------------------------------------------------
// Worker crew: thread lifecycle + statement-trace propagation. Each
// worker installs the owning statement's trace (so waits inside morsels
// — pool misses, lock conflicts, WAL — land in the statement's tallies,
// DESIGN.md §11/§13) and brackets itself with a detached span; the first
// error any worker hits is kept for the coordinator.
// ---------------------------------------------------------------------------

class Crew {
 public:
  explicit Crew(obs::StatementTrace* trace) : trace_(trace) {}
  ~Crew() { Join(); }

  void Launch(int workers, std::function<Status(int)> body) {
    for (int w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w, body] {
        obs::ScopedCurrentTrace install(trace_);
        uint32_t span = 0;
        if (trace_ != nullptr) {
          span = trace_->OpenDetachedSpan(obs::kSpanOpParallelWorker,
                                          "w" + std::to_string(w));
        }
        const Status s = body(w);
        if (trace_ != nullptr && span != 0) trace_->CloseSpan(span);
        if (!s.ok()) {
          LockGuard lock(mu_);
          if (error_.ok()) error_ = s;
        }
      });
    }
  }

  void Join() {
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  /// Joins, then returns the first worker error (OK when all succeeded).
  Status TakeError() {
    Join();
    LockGuard lock(mu_);
    return error_;
  }

 private:
  obs::StatementTrace* trace_;
  std::vector<std::thread> threads_;
  RankedMutex<LockRank::kParallelMerge> mu_;
  Status error_ GUARDED_BY(mu_);
};

/// Installs the morsel-boundary revocation probe (paper §4.4: "the
/// number of threads can easily be changed during execution") on every
/// worker context. The scan polls it right before pulling a NEW morsel
/// (executor.cc), so a revoked worker never drops dispensed rows: it
/// sees end-of-input and winds down through its normal drain path.
/// Worker 0 always runs to completion so the pipeline cannot starve;
/// other workers stand down once the governor's target drops below
/// their index. `revoked` counts stand-downs for exec.parallel.*.
void InstallRevocationProbes(
    std::vector<ExecContext>* wctxs, ParallelismGovernor* gov,
    const std::shared_ptr<ParallelismGovernor::Pipeline>& pipeline,
    std::atomic<int>* revoked) {
  for (size_t w = 0; w < wctxs->size(); ++w) {
    ExecContext* wc = &(*wctxs)[w];
    if (w == 0 || gov == nullptr || pipeline == nullptr) {
      wc->morsel_revoked = nullptr;
      continue;
    }
    wc->morsel_revoked = [w, wc, gov, pipeline, revoked] {
      if (static_cast<int>(w) <
          gov->Reassess(pipeline.get(), wc->memory)) {
        return false;
      }
      revoked->fetch_add(1, std::memory_order_relaxed);
      return true;
    };
  }
}

// ---------------------------------------------------------------------------
// Streaming exchange base: coordinator-side packet cursor shared by the
// scan/filter/project exchange and the hash-join probe. Subclasses own
// the crew; Finish() joins it, folds stats, and surfaces worker errors.
// ---------------------------------------------------------------------------

class StreamingExchangeOp : public Operator {
 public:
  Result<bool> NextBatch(RowBatch* b) override {
    b->Reset();
    for (;;) {
      if (pos_ < packet_.count) {
        const size_t n = std::min(b->capacity(), packet_.count - pos_);
        for (size_t si = 0; si < packet_.slots.size(); ++si) {
          const table::Row** col = b->BindSlot(packet_.slots[si]);
          for (size_t i = 0; i < n; ++i) {
            col[i] = &packet_.rows[si][pos_ + i];
          }
        }
        if (packet_.has_output) {
          table::Row* out = b->OutputColumn();
          for (size_t i = 0; i < n; ++i) {
            out[i] = std::move(packet_.output[pos_ + i]);
          }
        }
        pos_ += n;
        b->SetSize(n);
        return true;
      }
      // The drained packet stays alive until this pop replaces it — the
      // parent's slot pointers from the previous batch point into it.
      if (queue_ == nullptr || !queue_->Pop(&packet_)) {
        packet_ = Packet();
        pos_ = 0;
        HDB_RETURN_IF_ERROR(Finish());
        return false;
      }
      pos_ = 0;
    }
  }

  Result<bool> Next(RowContext* ctx) override {
    for (;;) {
      if (pos_ < packet_.count) {
        for (size_t si = 0; si < packet_.slots.size(); ++si) {
          ctx->rows[packet_.slots[si]] = &packet_.rows[si][pos_];
        }
        if (packet_.has_output) ctx->output = packet_.output[pos_];
        ++pos_;
        return true;
      }
      if (queue_ == nullptr || !queue_->Pop(&packet_)) {
        packet_ = Packet();
        pos_ = 0;
        HDB_RETURN_IF_ERROR(Finish());
        return false;
      }
      pos_ = 0;
    }
  }

 protected:
  /// Joins the crew and surfaces the first worker error. Must tolerate
  /// repeated calls (NextBatch keeps returning false after end).
  virtual Status Finish() = 0;

  std::unique_ptr<PacketQueue> queue_;
  Packet packet_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// ExchangeScanOp: parallel scan/filter/project. Workers run private
// copies of the fragment over the shared dispenser and stream packets.
// ---------------------------------------------------------------------------

class ExchangeScanOp : public StreamingExchangeOp {
 public:
  ExchangeScanOp(const PlanNode* plan, ExecContext* ec, int workers)
      : plan_(plan), ec_(ec), workers_(workers),
        produces_output_(FragmentProducesOutput(plan)) {}

  ~ExchangeScanOp() override { Shutdown(); }

  Status Open() override {
    const PlanNode* scan = FragmentScan(plan_);
    if (scan == nullptr || scan->table == nullptr || scan->table->is_virtual) {
      return Status::Internal("parallel fragment without a base-table scan");
    }
    table::TableHeap* heap = ec_->table_heap(scan->table->oid);
    if (heap == nullptr) return Status::Internal("missing table heap");
    Shutdown();  // NL-join parents re-open: tear down any previous crew
    finished_ = false;
    folded_ = false;
    revoked_.store(0, std::memory_order_relaxed);
    dispenser_ = std::make_unique<MorselDispenser>(
        heap, ec_->parallel != nullptr ? ec_->parallel->options().morsel_rows
                                       : 0);
    queue_ = std::make_unique<PacketQueue>(2 * static_cast<size_t>(workers_),
                                           workers_);
    pipeline_ =
        ec_->parallel != nullptr ? ec_->parallel->StartPipeline(workers_)
                                 : nullptr;
    ec_->stats.parallel_pipelines++;
    ec_->stats.parallel_workers_started += static_cast<uint64_t>(workers_);
    RecordActualWorkers(ec_, plan_, workers_);
    slots_ = {static_cast<uint16_t>(scan->quantifier)};
    wctxs_.clear();
    wctxs_.reserve(workers_);
    for (int w = 0; w < workers_; ++w) {
      wctxs_.push_back(
          MakeWorkerContext(*ec_, dispenser_.get(), scan->quantifier));
    }
    InstallRevocationProbes(&wctxs_, ec_->parallel, pipeline_, &revoked_);
    crew_ = std::make_unique<Crew>(obs::CurrentStatementTrace());
    crew_->Launch(workers_, [this](int w) { return Worker(w); });
    return Status::OK();
  }

  void Close() override {
    Shutdown();
    FoldStats();
  }

  bool ProducesOutput() const override { return produces_output_; }

 private:
  Status Worker(int w) {
    const Status s = WorkerBody(w);
    queue_->ProducerDone();
    return s;
  }

  Status WorkerBody(int w) {
    ExecContext* wc = &wctxs_[w];
    HDB_ASSIGN_OR_RETURN(auto root, BuildExecutor(plan_, wc));
    Status s = Produce(wc, root.get());
    root->Close();
    return s;
  }

  // Revocation happens inside the scan, at morsel boundaries (the
  // morsel_revoked probe): a revoked worker simply sees end-of-input.
  Status Produce(ExecContext* wc, Operator* root) {
    HDB_RETURN_IF_ERROR(root->Open());
    RowBatch batch(wc->num_quantifiers + 1, WorkerBatchCap(*wc), wc->params);
    RowContext ctx;
    ctx.rows.assign(wc->num_quantifiers + 1, nullptr);
    ctx.params = wc->params;
    for (;;) {
      HDB_ASSIGN_OR_RETURN(const bool more, root->NextBatch(&batch));
      if (!more) return Status::OK();
      const size_t n = batch.ActiveCount();
      if (n == 0) continue;
      Packet p;
      for (size_t i = 0; i < n; ++i) {
        batch.BindRow(batch.Active(i), &ctx, produces_output_);
        AppendToPacket(&p, ctx, slots_, produces_output_);
      }
      if (!queue_->Push(std::move(p))) return Status::OK();
    }
  }

  Status Finish() override {
    if (finished_) return finish_status_;
    finished_ = true;
    finish_status_ = crew_ != nullptr ? crew_->TakeError() : Status::OK();
    FoldStats();
    return finish_status_;
  }

  void Shutdown() {
    if (queue_ != nullptr) queue_->Abort();
    if (crew_ != nullptr) crew_->Join();
  }

  void FoldStats() {
    if (folded_) return;
    folded_ = true;
    for (const ExecContext& wc : wctxs_) FoldWorkerStats(ec_, wc.stats);
    ec_->stats.parallel_workers_revoked +=
        static_cast<uint64_t>(revoked_.load(std::memory_order_relaxed));
    if (dispenser_ != nullptr) {
      ec_->stats.parallel_morsels += dispenser_->morsels();
    }
  }

  const PlanNode* plan_;
  ExecContext* ec_;
  const int workers_;
  const bool produces_output_;
  std::vector<uint16_t> slots_;
  std::unique_ptr<MorselDispenser> dispenser_;
  std::shared_ptr<ParallelismGovernor::Pipeline> pipeline_;
  std::vector<ExecContext> wctxs_;
  std::unique_ptr<Crew> crew_;
  std::atomic<int> revoked_{0};
  bool finished_ = false;
  bool folded_ = false;
  Status finish_status_;
};

// ---------------------------------------------------------------------------
// ExchangeHashJoinOp: parallel partitioned hash join (peloton
// exchange_hash_executor lineage). Build: workers stage (hash, key, row)
// triples per partition from FCFS inner-fragment morsels. Merge: probe
// workers each merge a disjoint subset of partitions (partition-parallel,
// lock-free) and meet at a barrier. Probe: workers pull outer-fragment
// morsels, probe the shared partitioned table, and stream matched rows
// as packets. Parallel joins never spill — the governor's memory clamp
// is the admission control — but Eq. (4) kills still fire from workers.
// ---------------------------------------------------------------------------

class ExchangeHashJoinOp : public StreamingExchangeOp {
 public:
  static constexpr int kPartitions = 32;

  ExchangeHashJoinOp(const PlanNode* plan, ExecContext* ec, int workers)
      : plan_(plan), ec_(ec), workers_(workers) {}

  ~ExchangeHashJoinOp() override { Shutdown(); }

  Status Open() override {
    const PlanNode* inner_scan = FragmentScan(plan_->children[1].get());
    const PlanNode* outer_scan = FragmentScan(plan_->children[0].get());
    if (inner_scan == nullptr || outer_scan == nullptr) {
      return Status::Internal("parallel join fragment without a seq scan");
    }
    table::TableHeap* inner_heap = ec_->table_heap(inner_scan->table->oid);
    table::TableHeap* outer_heap = ec_->table_heap(outer_scan->table->oid);
    if (inner_heap == nullptr || outer_heap == nullptr) {
      return Status::Internal("missing table heap");
    }
    Shutdown();
    build_q_ = inner_scan->quantifier;
    slots_ = {static_cast<uint16_t>(outer_scan->quantifier),
              static_cast<uint16_t>(build_q_)};
    const size_t morsel_rows =
        ec_->parallel != nullptr ? ec_->parallel->options().morsel_rows : 0;
    pipeline_ =
        ec_->parallel != nullptr ? ec_->parallel->StartPipeline(workers_)
                                 : nullptr;
    ec_->stats.parallel_pipelines++;
    RecordActualWorkers(ec_, plan_, workers_);

    // --- Phase 1: parallel partitioned build (blocking) ---
    build_dispenser_ =
        std::make_unique<MorselDispenser>(inner_heap, morsel_rows);
    staged_.assign(workers_, std::vector<std::vector<BuildEntry>>(
                                 kPartitions, std::vector<BuildEntry>()));
    wctxs_.clear();
    wctxs_.reserve(workers_);
    for (int w = 0; w < workers_; ++w) {
      wctxs_.push_back(MakeWorkerContext(*ec_, build_dispenser_.get(),
                                         inner_scan->quantifier));
    }
    InstallRevocationProbes(&wctxs_, ec_->parallel, pipeline_, &revoked_);
    ec_->stats.parallel_workers_started += static_cast<uint64_t>(workers_);
    {
      Crew build_crew(obs::CurrentStatementTrace());
      build_crew.Launch(workers_,
                        [this](int w) { return BuildWorker(w); });
      HDB_RETURN_IF_ERROR(build_crew.TakeError());
    }
    for (const ExecContext& wc : wctxs_) FoldWorkerStats(ec_, wc.stats);
    ec_->stats.parallel_morsels += build_dispenser_->morsels();

    // --- Phase 2: partition-parallel merge + streaming probe ---
    // Revocation during the build may have lowered the target; the probe
    // crew starts at the surviving count.
    probe_workers_ = workers_;
    if (pipeline_ != nullptr) {
      probe_workers_ = std::max(
          1, std::min(workers_, pipeline_->target.load(std::memory_order_relaxed)));
    }
    parts_ = std::make_unique<Partition[]>(kPartitions);
    probe_dispenser_ =
        std::make_unique<MorselDispenser>(outer_heap, morsel_rows);
    wctxs_.clear();
    wctxs_.reserve(probe_workers_);
    for (int w = 0; w < probe_workers_; ++w) {
      wctxs_.push_back(MakeWorkerContext(*ec_, probe_dispenser_.get(),
                                         outer_scan->quantifier));
    }
    InstallRevocationProbes(&wctxs_, ec_->parallel, pipeline_, &revoked_);
    queue_ = std::make_unique<PacketQueue>(
        2 * static_cast<size_t>(probe_workers_), probe_workers_);
    merge_barrier_ = std::make_unique<Barrier>(probe_workers_);
    ec_->stats.parallel_workers_started +=
        static_cast<uint64_t>(probe_workers_);
    finished_ = false;
    folded_ = false;
    crew_ = std::make_unique<Crew>(obs::CurrentStatementTrace());
    crew_->Launch(probe_workers_, [this](int w) { return ProbeWorker(w); });
    return Status::OK();
  }

  void Close() override {
    Shutdown();
    FoldStats();
    ReleaseMemory();
    parts_.reset();
    staged_.clear();
  }

  bool ProducesOutput() const override { return false; }
  uint64_t MemoryBytes() const override {
    return charged_.load(std::memory_order_relaxed);
  }

 private:
  struct BuildEntry {
    uint64_t h;
    Value key;
    table::Row row;
  };

  /// One shared build partition, written by exactly one merging worker
  /// (partition-parallel assignment) and immutable during the probe.
  struct Partition {
    std::unordered_map<uint64_t, std::vector<uint32_t>> table;
    std::vector<Value> keys;
    std::vector<table::Row> rows;
  };

  class Barrier {
   public:
    explicit Barrier(int n) : remaining_(n) {}
    void ArriveAndWait() {
      UniqueLock lock(mu_);
      if (--remaining_ == 0) {
        cv_.notify_all();
        return;
      }
      while (remaining_ > 0) cv_.wait(lock);
    }

   private:
    RankedMutex<LockRank::kParallelMerge> mu_;
    std::condition_variable_any cv_;
    int remaining_ GUARDED_BY(mu_);
  };

  Status BuildWorker(int w) {
    ExecContext* wc = &wctxs_[w];
    HDB_ASSIGN_OR_RETURN(auto root,
                         BuildExecutor(plan_->children[1].get(), wc));
    Status s = BuildLoop(w, wc, root.get());
    root->Close();
    return s;
  }

  // A revoked build worker's staged rows are still merged — only
  // un-dispensed morsels shift to the surviving workers (revocation is
  // the scan's morsel_revoked probe; the loop just sees end-of-input).
  Status BuildLoop(int w, ExecContext* wc, Operator* root) {
    HDB_RETURN_IF_ERROR(root->Open());
    RowBatch batch(wc->num_quantifiers + 1, WorkerBatchCap(*wc), wc->params);
    RowContext ctx;
    ctx.rows.assign(wc->num_quantifiers + 1, nullptr);
    ctx.params = wc->params;
    Value key;
    for (;;) {
      HDB_ASSIGN_OR_RETURN(const bool more, root->NextBatch(&batch));
      if (!more) return Status::OK();
      const size_t n = batch.ActiveCount();
      uint64_t batch_bytes = 0;
      for (size_t i = 0; i < n; ++i) {
        batch.BindRow(batch.Active(i), &ctx);
        HDB_ASSIGN_OR_RETURN(key, plan_->inner_key->Evaluate(ctx));
        if (key.is_null()) continue;
        const uint64_t h = key.Hash();
        const int p = static_cast<int>(h % kPartitions);
        const table::Row& row = *ctx.rows[build_q_];
        batch_bytes += 48 * row.size() + 96;
        staged_[w][p].push_back(BuildEntry{h, key, row});
      }
      if (batch_bytes > 0 && wc->memory != nullptr) {
        // One charge per fragment batch, not per row, to keep latch
        // traffic off the hot path. Never runs the spill scheduler
        // (memory_governor.h worker contract); Eq. (4) aborts the
        // statement from here.
        HDB_RETURN_IF_ERROR(wc->memory->ChargeBytesFromWorker(batch_bytes));
        charged_.fetch_add(batch_bytes, std::memory_order_relaxed);
      }
    }
  }

  Status ProbeWorker(int w) {
    // Merge this worker's disjoint partition subset, then wait for every
    // sibling — the table must be complete and immutable before any
    // probe begins.
    for (int p = w; p < kPartitions; p += probe_workers_) {
      Partition& part = parts_[p];
      for (auto& staged_worker : staged_) {
        for (BuildEntry& e : staged_worker[p]) {
          const auto idx = static_cast<uint32_t>(part.rows.size());
          part.table[e.h].push_back(idx);
          part.keys.push_back(std::move(e.key));
          part.rows.push_back(std::move(e.row));
        }
      }
    }
    merge_barrier_->ArriveAndWait();
    const Status s = ProbeBody(w);
    queue_->ProducerDone();
    return s;
  }

  Status ProbeBody(int w) {
    ExecContext* wc = &wctxs_[w];
    HDB_ASSIGN_OR_RETURN(auto root,
                         BuildExecutor(plan_->children[0].get(), wc));
    Status s = ProbeLoop(wc, root.get());
    root->Close();
    return s;
  }

  Status ProbeLoop(ExecContext* wc, Operator* root) {
    HDB_RETURN_IF_ERROR(root->Open());
    const size_t cap = WorkerBatchCap(*wc);
    RowBatch batch(wc->num_quantifiers + 1, cap, wc->params);
    RowContext ctx;
    ctx.rows.assign(wc->num_quantifiers + 1, nullptr);
    ctx.params = wc->params;
    Value key;
    Packet pkt;
    for (;;) {
      HDB_ASSIGN_OR_RETURN(const bool more, root->NextBatch(&batch));
      if (!more) break;
      const size_t n = batch.ActiveCount();
      for (size_t i = 0; i < n; ++i) {
        batch.BindRow(batch.Active(i), &ctx);
        HDB_ASSIGN_OR_RETURN(key, plan_->outer_key->Evaluate(ctx));
        if (key.is_null()) continue;
        const uint64_t h = key.Hash();
        const Partition& part = parts_[h % kPartitions];
        const auto it = part.table.find(h);
        if (it == part.table.end()) continue;
        for (const uint32_t idx : it->second) {
          if (part.keys[idx].Compare(key) != 0) continue;
          ctx.rows[build_q_] = &part.rows[idx];
          if (plan_->extra_condition != nullptr) {
            HDB_ASSIGN_OR_RETURN(
                const bool ok, plan_->extra_condition->EvaluatesToTrue(ctx));
            if (!ok) continue;
          }
          AppendToPacket(&pkt, ctx, slots_, /*with_output=*/false);
          if (pkt.count >= cap) {
            if (!queue_->Push(std::move(pkt))) return Status::OK();
            pkt = Packet();
          }
        }
        ctx.rows[build_q_] = nullptr;
      }
    }
    if (pkt.count > 0) queue_->Push(std::move(pkt));
    return Status::OK();
  }

  Status Finish() override {
    if (finished_) return finish_status_;
    finished_ = true;
    finish_status_ = crew_ != nullptr ? crew_->TakeError() : Status::OK();
    FoldStats();
    return finish_status_;
  }

  void Shutdown() {
    if (queue_ != nullptr) queue_->Abort();
    if (crew_ != nullptr) crew_->Join();
  }

  void FoldStats() {
    if (folded_) return;
    folded_ = true;
    for (const ExecContext& wc : wctxs_) FoldWorkerStats(ec_, wc.stats);
    ec_->stats.parallel_workers_revoked +=
        static_cast<uint64_t>(revoked_.exchange(0, std::memory_order_relaxed));
    if (probe_dispenser_ != nullptr) {
      ec_->stats.parallel_morsels += probe_dispenser_->morsels();
    }
  }

  void ReleaseMemory() {
    const uint64_t charged = charged_.exchange(0, std::memory_order_relaxed);
    if (charged > 0 && ec_->memory != nullptr) {
      ec_->memory->ReleaseBytes(charged);
    }
  }

  const PlanNode* plan_;
  ExecContext* ec_;
  const int workers_;
  int probe_workers_ = 1;
  int build_q_ = -1;
  std::vector<uint16_t> slots_;
  std::unique_ptr<MorselDispenser> build_dispenser_;
  std::unique_ptr<MorselDispenser> probe_dispenser_;
  std::shared_ptr<ParallelismGovernor::Pipeline> pipeline_;
  std::vector<std::vector<std::vector<BuildEntry>>> staged_;  // [w][part]
  std::unique_ptr<Partition[]> parts_;
  std::unique_ptr<Barrier> merge_barrier_;
  std::vector<ExecContext> wctxs_;
  std::unique_ptr<Crew> crew_;
  std::atomic<int> revoked_{0};
  std::atomic<uint64_t> charged_{0};
  bool finished_ = false;
  bool folded_ = false;
  Status finish_status_;
};

// ---------------------------------------------------------------------------
// Parallel pre-aggregation (hash group by / distinct): workers build
// per-worker partial maps from FCFS morsels, merge them under the merge
// latch at the barrier (AggMerge — the same partial-merge the spill
// replay uses), and the coordinator emits serially. The merged map is a
// std::map keyed by the encoded group key, so emission order matches the
// serial HashGroupByOp exactly.
// ---------------------------------------------------------------------------

class ExchangeGroupByOp : public Operator {
 public:
  ExchangeGroupByOp(const PlanNode* plan, ExecContext* ec, int workers)
      : plan_(plan), ec_(ec), workers_(workers) {}

  Status Open() override {
    const PlanNode* scan = FragmentScan(plan_->children[0].get());
    if (scan == nullptr) {
      return Status::Internal("parallel fragment without a seq scan");
    }
    table::TableHeap* heap = ec_->table_heap(scan->table->oid);
    if (heap == nullptr) return Status::Internal("missing table heap");
    merged_.clear();
    results_.clear();
    dispenser_ = std::make_unique<MorselDispenser>(
        heap, ec_->parallel != nullptr ? ec_->parallel->options().morsel_rows
                                       : 0);
    pipeline_ =
        ec_->parallel != nullptr ? ec_->parallel->StartPipeline(workers_)
                                 : nullptr;
    ec_->stats.parallel_pipelines++;
    ec_->stats.parallel_workers_started += static_cast<uint64_t>(workers_);
    RecordActualWorkers(ec_, plan_, workers_);
    wctxs_.clear();
    wctxs_.reserve(workers_);
    for (int w = 0; w < workers_; ++w) {
      wctxs_.push_back(
          MakeWorkerContext(*ec_, dispenser_.get(), scan->quantifier));
    }
    InstallRevocationProbes(&wctxs_, ec_->parallel, pipeline_, &revoked_);
    {
      Crew crew(obs::CurrentStatementTrace());
      crew.Launch(workers_, [this](int w) { return Worker(w); });
      HDB_RETURN_IF_ERROR(crew.TakeError());
    }
    for (const ExecContext& wc : wctxs_) FoldWorkerStats(ec_, wc.stats);
    ec_->stats.parallel_workers_revoked +=
        static_cast<uint64_t>(revoked_.exchange(0, std::memory_order_relaxed));
    ec_->stats.parallel_morsels += dispenser_->morsels();
    Finalize();
    pos_ = results_.begin();
    return Status::OK();
  }

  Result<bool> Next(RowContext* ctx) override {
    const size_t group_slot = ec_->num_quantifiers;
    while (pos_ != results_.end()) {
      current_ = pos_->second;
      ++pos_;
      ctx->rows[group_slot] = &current_;
      if (plan_->having != nullptr) {
        HDB_ASSIGN_OR_RETURN(const bool ok,
                             plan_->having->EvaluatesToTrue(*ctx));
        if (!ok) continue;
      }
      return true;
    }
    ctx->rows[group_slot] = nullptr;
    return false;
  }

  Result<bool> NextBatch(RowBatch* b) override {
    b->Reset();
    const size_t group_slot = ec_->num_quantifiers;
    const table::Row** col = b->BindSlot(group_slot);
    size_t n = 0;
    while (n < b->capacity() && pos_ != results_.end()) {
      col[n++] = &pos_->second;
      ++pos_;
    }
    if (n == 0) return false;
    b->SetSize(n);
    if (plan_->having != nullptr) {
      if (emit_ctx_.rows.size() != b->num_slots()) {
        emit_ctx_.rows.assign(b->num_slots(), nullptr);
        emit_ctx_.params = b->params();
      }
      uint16_t* sel = b->MutableSel();
      size_t k = 0;
      for (size_t i = 0; i < n; ++i) {
        const size_t pos = b->Active(i);
        b->BindRow(pos, &emit_ctx_);
        HDB_ASSIGN_OR_RETURN(const bool ok,
                             plan_->having->EvaluatesToTrue(emit_ctx_));
        if (ok) sel[k++] = static_cast<uint16_t>(pos);
      }
      b->SetSelection(k);
    }
    return true;
  }

  void Close() override {
    const uint64_t charged = charged_.exchange(0, std::memory_order_relaxed);
    if (charged > 0 && ec_->memory != nullptr) {
      ec_->memory->ReleaseBytes(charged);
    }
    merged_.clear();
    results_.clear();
  }

  uint64_t MemoryBytes() const override {
    return charged_.load(std::memory_order_relaxed);
  }

 private:
  struct GroupEntry {
    std::vector<Value> key_values;
    std::vector<AggState> states;
  };
  using LocalMap = std::unordered_map<std::string, GroupEntry,
                                      TransparentStringHash, std::equal_to<>>;

  Status Worker(int w) {
    ExecContext* wc = &wctxs_[w];
    HDB_ASSIGN_OR_RETURN(auto root,
                         BuildExecutor(plan_->children[0].get(), wc));
    LocalMap local;
    Status s = AggregateLoop(wc, root.get(), &local);
    root->Close();
    if (s.ok()) MergeLocal(&local);  // revoked workers still merge partials
    return s;
  }

  Status AggregateLoop(ExecContext* wc, Operator* root, LocalMap* local) {
    HDB_RETURN_IF_ERROR(root->Open());
    RowBatch batch(wc->num_quantifiers + 1, WorkerBatchCap(*wc), wc->params);
    RowContext ctx;
    ctx.rows.assign(wc->num_quantifiers + 1, nullptr);
    ctx.params = wc->params;
    const size_t nkeys = plan_->group_keys.size();
    const size_t naggs = plan_->aggregates.size();
    std::vector<Value> keys(nkeys);
    std::vector<Value> args(naggs);
    std::string key_buf;
    for (;;) {
      HDB_ASSIGN_OR_RETURN(const bool more, root->NextBatch(&batch));
      if (!more) return Status::OK();
      const size_t n = batch.ActiveCount();
      for (size_t i = 0; i < n; ++i) {
        batch.BindRow(batch.Active(i), &ctx);
        for (size_t ki = 0; ki < nkeys; ++ki) {
          HDB_ASSIGN_OR_RETURN(keys[ki],
                               plan_->group_keys[ki]->Evaluate(ctx));
        }
        for (size_t a = 0; a < naggs; ++a) {
          const auto& spec = plan_->aggregates[a];
          if (spec.arg != nullptr) {
            HDB_ASSIGN_OR_RETURN(args[a], spec.arg->Evaluate(ctx));
          } else {
            args[a] = Value();
          }
        }
        EncodeValuesTo(keys, &key_buf);
        auto it = local->find(std::string_view(key_buf));
        if (it == local->end()) {
          auto [it2, inserted] = local->try_emplace(key_buf);
          it = it2;
          it->second.key_values = keys;
          it->second.states.resize(naggs);
          const uint64_t bytes = key_buf.size() + 64 * naggs + 64;
          if (wc->memory != nullptr) {
            HDB_RETURN_IF_ERROR(wc->memory->ChargeBytesFromWorker(bytes));
          }
          charged_.fetch_add(bytes, std::memory_order_relaxed);
        }
        for (size_t a = 0; a < naggs; ++a) {
          AggUpdate(it->second.states[a], plan_->aggregates[a].kind, args[a]);
        }
      }
    }
  }

  void MergeLocal(LocalMap* local) {
    LockGuard lock(merge_mu_);
    for (auto& [key, entry] : *local) {
      auto [it, inserted] = merged_.try_emplace(key, std::move(entry));
      if (!inserted) {
        for (size_t a = 0; a < it->second.states.size(); ++a) {
          AggMerge(it->second.states[a], entry.states[a]);
        }
      }
    }
  }

  void Finalize() {
    for (auto& [key, e] : merged_) {
      std::vector<Value> row = std::move(e.key_values);
      for (size_t a = 0; a < plan_->aggregates.size(); ++a) {
        row.push_back(AggFinalize(e.states[a], plan_->aggregates[a].kind));
      }
      results_.emplace(key, std::move(row));
    }
    merged_.clear();
    // Scalar aggregation over zero rows still yields one row.
    if (plan_->group_keys.empty() && results_.empty() &&
        !plan_->aggregates.empty()) {
      std::vector<Value> row;
      for (const auto& spec : plan_->aggregates) {
        row.push_back(AggFinalize(AggState{}, spec.kind));
      }
      results_[""] = std::move(row);
    }
  }

  const PlanNode* plan_;
  ExecContext* ec_;
  const int workers_;
  std::unique_ptr<MorselDispenser> dispenser_;
  std::shared_ptr<ParallelismGovernor::Pipeline> pipeline_;
  std::vector<ExecContext> wctxs_;
  RankedMutex<LockRank::kParallelMerge> merge_mu_;
  std::map<std::string, GroupEntry> merged_ GUARDED_BY(merge_mu_);
  std::atomic<int> revoked_{0};
  std::atomic<uint64_t> charged_{0};

  std::map<std::string, std::vector<Value>> results_;
  std::map<std::string, std::vector<Value>>::iterator pos_;
  std::vector<Value> current_;
  RowContext emit_ctx_;
};

/// Parallel DISTINCT: per-worker dedup maps (encoded output row → first
/// occurrence) merged at the barrier. Emission is in encoded-key order —
/// deterministic, but different from the serial streaming operator's
/// arrival order; DISTINCT without ORDER BY is unordered by contract
/// (and ORDER BY below DISTINCT makes the fragment ineligible, so the
/// parallel path never has an order to preserve).
class ExchangeDistinctOp : public Operator {
 public:
  ExchangeDistinctOp(const PlanNode* plan, ExecContext* ec, int workers)
      : plan_(plan), ec_(ec), workers_(workers) {}

  Status Open() override {
    const PlanNode* scan = FragmentScan(plan_->children[0].get());
    if (scan == nullptr) {
      return Status::Internal("parallel fragment without a seq scan");
    }
    if (!FragmentProducesOutput(plan_->children[0].get())) {
      return Status::Internal("parallel distinct fragment without projection");
    }
    table::TableHeap* heap = ec_->table_heap(scan->table->oid);
    if (heap == nullptr) return Status::Internal("missing table heap");
    merged_.clear();
    dispenser_ = std::make_unique<MorselDispenser>(
        heap, ec_->parallel != nullptr ? ec_->parallel->options().morsel_rows
                                       : 0);
    pipeline_ =
        ec_->parallel != nullptr ? ec_->parallel->StartPipeline(workers_)
                                 : nullptr;
    ec_->stats.parallel_pipelines++;
    ec_->stats.parallel_workers_started += static_cast<uint64_t>(workers_);
    RecordActualWorkers(ec_, plan_, workers_);
    wctxs_.clear();
    wctxs_.reserve(workers_);
    for (int w = 0; w < workers_; ++w) {
      wctxs_.push_back(
          MakeWorkerContext(*ec_, dispenser_.get(), scan->quantifier));
    }
    InstallRevocationProbes(&wctxs_, ec_->parallel, pipeline_, &revoked_);
    {
      Crew crew(obs::CurrentStatementTrace());
      crew.Launch(workers_, [this](int w) { return Worker(w); });
      HDB_RETURN_IF_ERROR(crew.TakeError());
    }
    for (const ExecContext& wc : wctxs_) FoldWorkerStats(ec_, wc.stats);
    ec_->stats.parallel_workers_revoked +=
        static_cast<uint64_t>(revoked_.exchange(0, std::memory_order_relaxed));
    ec_->stats.parallel_morsels += dispenser_->morsels();
    pos_ = merged_.begin();
    return Status::OK();
  }

  Result<bool> Next(RowContext* ctx) override {
    if (pos_ == merged_.end()) return false;
    ctx->output = pos_->second;
    ++pos_;
    return true;
  }

  Result<bool> NextBatch(RowBatch* b) override {
    b->Reset();
    table::Row* out = b->OutputColumn();
    size_t n = 0;
    while (n < b->capacity() && pos_ != merged_.end()) {
      out[n++] = pos_->second;
      ++pos_;
    }
    if (n == 0) return false;
    b->SetSize(n);
    return true;
  }

  void Close() override {
    const uint64_t charged = charged_.exchange(0, std::memory_order_relaxed);
    if (charged > 0 && ec_->memory != nullptr) {
      ec_->memory->ReleaseBytes(charged);
    }
    merged_.clear();
  }

  bool ProducesOutput() const override { return true; }
  uint64_t MemoryBytes() const override {
    return charged_.load(std::memory_order_relaxed);
  }

 private:
  using LocalMap = std::unordered_map<std::string, std::vector<Value>,
                                      TransparentStringHash, std::equal_to<>>;

  Status Worker(int w) {
    ExecContext* wc = &wctxs_[w];
    HDB_ASSIGN_OR_RETURN(auto root,
                         BuildExecutor(plan_->children[0].get(), wc));
    LocalMap local;
    Status s = DedupLoop(wc, root.get(), &local);
    root->Close();
    if (s.ok()) MergeLocal(&local);
    return s;
  }

  Status DedupLoop(ExecContext* wc, Operator* root, LocalMap* local) {
    HDB_RETURN_IF_ERROR(root->Open());
    RowBatch batch(wc->num_quantifiers + 1, WorkerBatchCap(*wc), wc->params);
    std::string key_buf;
    for (;;) {
      HDB_ASSIGN_OR_RETURN(const bool more, root->NextBatch(&batch));
      if (!more) return Status::OK();
      const size_t n = batch.ActiveCount();
      for (size_t i = 0; i < n; ++i) {
        const size_t pos = batch.Active(i);
        EncodeValuesTo(batch.output(pos), &key_buf);
        if (local->find(std::string_view(key_buf)) != local->end()) continue;
        local->emplace(key_buf, batch.output(pos));
        const uint64_t bytes = key_buf.size() + 32;
        if (wc->memory != nullptr) {
          HDB_RETURN_IF_ERROR(wc->memory->ChargeBytesFromWorker(bytes));
        }
        charged_.fetch_add(bytes, std::memory_order_relaxed);
      }
    }
  }

  void MergeLocal(LocalMap* local) {
    LockGuard lock(merge_mu_);
    for (auto& [key, row] : *local) {
      merged_.try_emplace(key, std::move(row));
    }
  }

  const PlanNode* plan_;
  ExecContext* ec_;
  const int workers_;
  std::unique_ptr<MorselDispenser> dispenser_;
  std::shared_ptr<ParallelismGovernor::Pipeline> pipeline_;
  std::vector<ExecContext> wctxs_;
  RankedMutex<LockRank::kParallelMerge> merge_mu_;
  std::map<std::string, std::vector<Value>> merged_ GUARDED_BY(merge_mu_);
  std::atomic<int> revoked_{0};
  std::atomic<uint64_t> charged_{0};
  std::map<std::string, std::vector<Value>>::iterator pos_;
};

}  // namespace

Result<std::unique_ptr<Operator>> MakeExchangeOp(const PlanNode* plan,
                                                 ExecContext* ctx,
                                                 int workers) {
  switch (plan->kind) {
    case PlanKind::kSeqScan:
    case PlanKind::kFilter:
    case PlanKind::kProject:
      return std::unique_ptr<Operator>(
          new ExchangeScanOp(plan, ctx, workers));
    case PlanKind::kHashJoin:
      return std::unique_ptr<Operator>(
          new ExchangeHashJoinOp(plan, ctx, workers));
    case PlanKind::kHashGroupBy:
      return std::unique_ptr<Operator>(
          new ExchangeGroupByOp(plan, ctx, workers));
    case PlanKind::kHashDistinct:
      return std::unique_ptr<Operator>(
          new ExchangeDistinctOp(plan, ctx, workers));
    default:
      return Status::Internal("plan kind is not parallel-eligible");
  }
}

}  // namespace hdb::exec
