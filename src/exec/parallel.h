#ifndef HDB_EXEC_PARALLEL_H_
#define HDB_EXEC_PARALLEL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "catalog/schema.h"
#include "table/table_heap.h"

#include "common/lock_rank.h"

namespace hdb::exec {

/// Adaptive intra-query parallelism (paper §4.4, after Manegold et al.):
/// a pipeline of hash joins driven by one probe scan. Worker threads fetch
/// rows first-come-first-served from the single scan feeding the pipeline
/// — preserving the sequential disk pattern — and run each row through
/// every hash table. The build phase is parallelized the same way:
/// workers build per-worker hash tables from FCFS-dispatched build rows,
/// merged into one table per join before probing. Bloom filters and a
/// partial hash group by ride the pipeline per the paper's extensions.
///
/// The worker count can be *reduced while the query runs*
/// (ReduceWorkers); with one worker the total cost is only slightly worse
/// than a serial plan — the adaptivity property the paper highlights.
class ParallelHashPipeline {
 public:
  struct JoinSpec {
    const catalog::TableDef* build_table = nullptr;
    int build_key_column = 0;
    /// Column of the probe table joined against build_key_column.
    int probe_key_column = 0;
    bool use_bloom_filter = true;
  };

  struct Spec {
    const catalog::TableDef* probe_table = nullptr;
    std::vector<JoinSpec> joins;
    /// Optional grouping on a probe-table column; each worker aggregates
    /// partially and partials merge at the end. -1 = global count only.
    int group_by_column = -1;
  };

  struct Stats {
    uint64_t probe_rows = 0;
    uint64_t output_rows = 0;  // probe rows surviving every join
    uint64_t bloom_rejects = 0;
    int workers_started = 0;
    int workers_at_finish = 0;
    double build_wall_micros = 0;
    double probe_wall_micros = 0;
    std::map<std::string, int64_t> groups;  // group key -> count
  };

  using HeapProvider = std::function<table::TableHeap*(uint32_t)>;

  ParallelHashPipeline(HeapProvider heaps, Spec spec, int num_workers);

  /// Runs build then probe; blocking.
  Result<Stats> Run();

  /// Dynamically lowers the worker target; takes effect at the next batch
  /// boundary. Safe to call from another thread while Run() executes.
  void ReduceWorkers(int target);

 private:
  struct HashTable {
    // key hash -> indexes into keys/rows
    std::vector<std::vector<uint32_t>> buckets;
    std::vector<Value> keys;
    std::vector<uint64_t> bloom;
    uint64_t bloom_mask = 0;
    bool use_bloom = false;

    void Reserve(size_t buckets_pow2);
    void Insert(const Value& key);
    bool MaybeContains(uint64_t h) const;
    bool Contains(const Value& key, uint64_t h) const;
  };

  /// FCFS batch dispenser over a table scan (the "single scan feeding the
  /// pipeline"); a short critical section hands out row batches in scan
  /// order so disk access stays sequential.
  class RowDispenser {
   public:
    RowDispenser(table::TableHeap* heap, size_t batch_rows);
    /// Fills `batch`; returns false at end of table.
    bool NextBatch(std::vector<std::string>* batch);

   private:
    RankedMutex<LockRank::kParallelDispenser> mu_;
    table::TableHeap::Iterator it_ GUARDED_BY(mu_);
    size_t batch_rows_;  // construction-time constant
    // Scratch for the batched copy.
    std::vector<Rid> rids_ GUARDED_BY(mu_);
    bool done_ GUARDED_BY(mu_) = false;
  };

  HeapProvider heaps_;
  Spec spec_;
  int num_workers_;
  std::atomic<int> target_workers_;
  std::vector<HashTable> tables_;
  Stats stats_;
};

}  // namespace hdb::exec

#endif  // HDB_EXEC_PARALLEL_H_
