#ifndef HDB_EXEC_ADMISSION_GATE_H_
#define HDB_EXEC_ADMISSION_GATE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/status.h"
#include "exec/memory_governor.h"
#include "obs/metrics.h"

#include "common/lock_rank.h"

namespace hdb::exec {

struct AdmissionGateOptions {
  /// Wall-clock bound on how long a request may sit in the admission
  /// queue before it is rejected with kResourceExhausted. Wall time, not
  /// virtual time: a queued thread is genuinely blocked and nothing else
  /// advances the virtual clock on its behalf.
  int64_t queue_timeout_micros = 5'000'000;
  /// When false, Admit() always succeeds immediately (single-session
  /// embedders pay nothing).
  bool enabled = true;
};

struct AdmissionGateStats {
  uint64_t admitted_immediately = 0;
  uint64_t admitted_after_wait = 0;
  uint64_t timed_out = 0;
  uint64_t active = 0;   // requests currently admitted
  uint64_t waiting = 0;  // requests currently queued
};

/// Concurrency throttle in front of the executor. At most
/// `MemoryGovernor::multiprogramming_level()` requests run at once — the
/// same MPL that is the denominator of the memory governor's soft limit,
/// Eq. (5) = pool size / MPL. Gating admission on the MPL is what makes
/// Eq. (5) honest: the per-request soft limit assumes at most MPL
/// requests share the pool, so the gate enforces that assumption. Excess
/// requests queue on a condition variable and time out after
/// `queue_timeout_micros`.
///
/// The capacity is read from the governor on every admission check, so an
/// MplController raising the MPL takes effect immediately; lowering it
/// never cancels already-admitted requests, it only delays new ones.
///
/// Thread safety: fully thread-safe; this class exists to be shared.
class AdmissionGate {
 public:
  /// RAII admission slot. Releasing (destruction) wakes one queued
  /// waiter. A default-constructed ticket holds nothing.
  class Ticket {
   public:
    Ticket() = default;
    explicit Ticket(AdmissionGate* gate) : gate_(gate) {}
    ~Ticket() { Release(); }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    Ticket(Ticket&& other) noexcept : gate_(other.gate_) {
      other.gate_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        gate_ = other.gate_;
        other.gate_ = nullptr;
      }
      return *this;
    }
    void Release();
    bool holds_slot() const { return gate_ != nullptr; }

   private:
    AdmissionGate* gate_ = nullptr;
  };

  AdmissionGate(MemoryGovernor* governor, AdmissionGateOptions options = {});

  /// Blocks until a slot is free (or one frees within the timeout).
  /// Returns kOverloaded when the queue wait times out — the
  /// machine-readable "server past its MPL" signal (also counted as
  /// admission.timeouts), distinct from a per-statement memory kill.
  Result<Ticket> Admit();

  /// Wakes all waiters so they re-check capacity; call after raising the
  /// MPL (slot releases wake waiters on their own).
  void Poke();

  /// Current capacity = the governor's multiprogramming level.
  int capacity() const { return governor_->multiprogramming_level(); }

  AdmissionGateStats stats() const;
  const AdmissionGateOptions& options() const { return options_; }

  /// Wires the gate into the engine's telemetry (DESIGN.md §6): queue-wait
  /// latency histogram into `registry`. The admitted/timed-out counts are
  /// published by the owner as callback gauges over stats().
  void AttachTelemetry(obs::MetricsRegistry* registry);

 private:
  friend class Ticket;
  void ReleaseSlot();

  MemoryGovernor* governor_;
  AdmissionGateOptions options_;

  mutable RankedMutex<LockRank::kAdmissionGate> mu_;
  std::condition_variable_any cv_;
  uint64_t active_ GUARDED_BY(mu_) = 0;
  uint64_t waiting_ GUARDED_BY(mu_) = 0;
  uint64_t admitted_immediately_ GUARDED_BY(mu_) = 0;
  uint64_t admitted_after_wait_ GUARDED_BY(mu_) = 0;
  uint64_t timed_out_ GUARDED_BY(mu_) = 0;

  // Telemetry (optional; null when not attached). Published under mu_ by
  // AttachTelemetry and only ever read inside Admit()'s critical section,
  // so these are genuinely mu_-guarded (unlike the set-once pointers
  // elsewhere — DESIGN.md §8.4).
  obs::LatencyHistogram* wait_hist_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* timeout_counter_ GUARDED_BY(mu_) = nullptr;
};

}  // namespace hdb::exec

#endif  // HDB_EXEC_ADMISSION_GATE_H_
