#ifndef HDB_EXEC_EXCHANGE_H_
#define HDB_EXEC_EXCHANGE_H_

#include <memory>

#include "common/result.h"
#include "exec/executor.h"
#include "optimizer/plan.h"

namespace hdb::exec {

/// Builds the exchange (morsel-parallel) operator for a plan node the
/// optimizer marked parallel-eligible (plan->parallel_workers > 1) and
/// the ParallelismGovernor granted `workers` > 1 workers (DESIGN.md §13,
/// paper §4.4). Dispatch by kind:
///
///  * kSeqScan / kFilter / kProject — ExchangeScanOp: workers each run a
///    private copy of the fragment over a shared MorselDispenser and
///    stream row packets to the coordinator through a bounded queue.
///  * kHashJoin — ExchangeHashJoinOp: parallel partitioned build over the
///    inner fragment (per-worker staging, partition-parallel merge), then
///    parallel probe over the outer fragment.
///  * kHashGroupBy / kHashDistinct — parallel pre-aggregation: per-worker
///    partial maps merged at the barrier, serial emission.
///
/// The caller (BuildExecutorNode) is responsible for falling back to the
/// serial operator when the grant is a single worker, so the parallel
/// machinery adds zero overhead to serial plans. Fragments never spill —
/// the governor's memory clamp is the admission control — but Eq. (4)
/// hard-limit kills still fire from any worker via ChargeBytesFromWorker.
Result<std::unique_ptr<Operator>> MakeExchangeOp(
    const optimizer::PlanNode* plan, ExecContext* ctx, int workers);

}  // namespace hdb::exec

#endif  // HDB_EXEC_EXCHANGE_H_
