#ifndef HDB_EXEC_RECURSIVE_UNION_H_
#define HDB_EXEC_RECURSIVE_UNION_H_

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace hdb::exec {

enum class RecursiveStrategy { kHashProbe, kSortMerge };

struct RecursiveUnionOptions {
  size_t max_iterations = 1000;
  /// Force one strategy (adaptive when unset).
  std::optional<RecursiveStrategy> force;
};

/// Adaptive RECURSIVE UNION evaluation (paper §4.3: "a special operator
/// for execution of RECURSIVE UNION is able to switch between several
/// alternative strategies, possibly using a different one for each
/// recursive iteration, and also possibly sharing work from iteration to
/// iteration").
///
/// Semantics: result = seed ∪ step(delta_0) ∪ step(delta_1) ∪ ... with
/// set-union deduplication, iterating until the delta is empty. Two
/// deduplication strategies are available and chosen per iteration by a
/// simple cost model:
///  * kHashProbe — probe each candidate against a hash set of everything
///    seen (cost ~ |candidates|); the hash set is the work shared across
///    iterations;
///  * kSortMerge — sort the candidate batch and merge against the sorted
///    history (cost ~ |candidates| log |candidates| + |history| fraction),
///    which wins for very large candidate batches relative to history.
class RecursiveUnion {
 public:
  using Options = RecursiveUnionOptions;
  using Strategy = RecursiveStrategy;

  struct IterationInfo {
    size_t candidates = 0;
    size_t new_rows = 0;
    Strategy used = Strategy::kHashProbe;
  };

  using Row = std::vector<Value>;
  /// Produces the next candidate rows from the last iteration's new rows.
  using StepFn = std::function<std::vector<Row>(const std::vector<Row>&)>;

  explicit RecursiveUnion(Options options = {}) : options_(options) {}

  Result<std::vector<Row>> Run(const std::vector<Row>& seed,
                               const StepFn& step);

  const std::vector<IterationInfo>& iterations() const { return iterations_; }

 private:
  Strategy Choose(size_t candidates, size_t history) const;

  Options options_;
  std::vector<IterationInfo> iterations_;
};

}  // namespace hdb::exec

#endif  // HDB_EXEC_RECURSIVE_UNION_H_
