#include "exec/morsel.h"

namespace hdb::exec {

MorselDispenser::MorselDispenser(table::TableHeap* heap, size_t morsel_rows)
    : morsel_rows_(morsel_rows == 0 ? kDefaultMorselRows : morsel_rows),
      it_(heap->Scan()) {}

Result<size_t> MorselDispenser::Next(std::vector<std::string>* bytes,
                                     std::vector<Rid>* rids) {
  // NextBytes resizes the buffers up and reuses their string capacity, so
  // callers recycle the same pair across pulls; entries past the returned
  // count are stale.
  LockGuard lock(mu_);
  if (done_) return 0;
  HDB_ASSIGN_OR_RETURN(const size_t n, it_.NextBytes(morsel_rows_, bytes, rids));
  if (n == 0) {
    done_ = true;
    return 0;
  }
  first_pages_.push_back((*rids)[0].page_id);
  morsels_.fetch_add(1, std::memory_order_relaxed);
  return n;
}

std::vector<uint32_t> MorselDispenser::DispatchedPages() const {
  LockGuard lock(mu_);
  return first_pages_;
}

}  // namespace hdb::exec
