#ifndef HDB_ENGINE_PARSER_H_
#define HDB_ENGINE_PARSER_H_

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "engine/lexer.h"
#include "optimizer/query.h"

namespace hdb::engine {

// --- Parse-tree expressions (column names unresolved) ---

struct AstExpr;
using AstExprPtr = std::shared_ptr<AstExpr>;

struct AstExpr {
  enum Kind {
    kLiteral,
    kColumn,   // [table.]column
    kParam,
    kCompare,
    kAnd,
    kOr,
    kNot,
    kIsNull,   // negated flag for IS NOT NULL
    kBetween,
    kLike,
    kInList,
    kArith,
    kAggregate,
    kStar,     // only inside COUNT(*)
  };

  Kind kind = kLiteral;
  Value literal;
  std::string table;   // qualifier, may be empty
  std::string column;  // column or parameter name
  optimizer::CompareOp cmp = optimizer::CompareOp::kEq;
  optimizer::ArithOp arith = optimizer::ArithOp::kAdd;
  optimizer::AggKind agg = optimizer::AggKind::kCountStar;
  std::string pattern;
  bool negated = false;
  std::vector<AstExprPtr> children;
};

// --- Statements ---

struct TableRef {
  std::string table;
  std::string alias;  // empty = table name
};

struct SelectAst {
  struct Item {
    AstExprPtr expr;  // null for '*'
    std::string alias;
    bool star = false;
  };
  struct Order {
    AstExprPtr expr;
    bool ascending = true;
  };
  bool distinct = false;
  std::vector<Item> items;
  std::vector<TableRef> from;
  AstExprPtr where;  // JOIN ... ON conditions are folded in
  std::vector<AstExprPtr> group_by;
  AstExprPtr having;
  std::vector<Order> order_by;
  int64_t limit = -1;
};

struct InsertAst {
  std::string table;
  std::vector<std::string> columns;  // empty = all, in table order
  std::vector<std::vector<AstExprPtr>> rows;
};

struct UpdateAst {
  std::string table;
  std::vector<std::pair<std::string, AstExprPtr>> sets;
  AstExprPtr where;
};

struct DeleteAst {
  std::string table;
  AstExprPtr where;
};

struct CreateTableAst {
  struct Column {
    std::string name;
    TypeId type;
    bool not_null = false;
  };
  struct Fk {
    std::string column;
    std::string ref_table;
    std::string ref_column;
  };
  std::string name;
  std::vector<Column> columns;
  std::vector<Fk> foreign_keys;
};

struct CreateIndexAst {
  std::string name;
  std::string table;
  std::vector<std::string> columns;
  bool unique = false;
};

struct CreateStatisticsAst {
  std::string table;
  std::vector<std::string> columns;  // empty = all columns
};

struct CreateProcedureAst {
  std::string name;
  std::vector<std::string> params;
  /// One or more statements (';'-separated in the source), each of which
  /// may reference :params. A CALL returns the last statement's result.
  std::vector<std::string> body_statements;
};

struct CallAst {
  std::string name;
  std::vector<Value> args;
};

struct SetOptionAst {
  std::string name;
  std::string value;
};

struct SimpleAst {
  enum Kind { kBegin, kCommit, kRollback, kCalibrate } kind;
};

struct DropAst {
  enum Kind { kTable, kIndex } kind;
  std::string name;
};

struct ExplainAst {
  std::shared_ptr<SelectAst> select;
  /// EXPLAIN ANALYZE: execute the plan and render per-operator actual
  /// rows/invocations/time/memory next to the optimizer's estimates.
  bool analyze = false;
};

using StatementAst =
    std::variant<SelectAst, InsertAst, UpdateAst, DeleteAst, CreateTableAst,
                 CreateIndexAst, CreateStatisticsAst, CreateProcedureAst,
                 CallAst, SetOptionAst, SimpleAst, DropAst, ExplainAst>;

/// Parses exactly one statement (a trailing ';' is allowed).
Result<StatementAst> Parse(const std::string& sql);

/// Normalizes a SQL text to its *statement shape*: literals replaced by
/// '?', whitespace canonicalized, keywords uppercased. Statements that
/// differ only in constants normalize identically (paper §5; used by the
/// request tracer and the `sys.statements` virtual table).
std::string NormalizeStatement(const std::string& sql);

}  // namespace hdb::engine

#endif  // HDB_ENGINE_PARSER_H_
