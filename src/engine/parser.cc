#include "engine/parser.h"

#include <cstdlib>

namespace hdb::engine {

namespace {

using optimizer::AggKind;
using optimizer::ArithOp;
using optimizer::CompareOp;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<StatementAst> ParseStatement();

 private:
  const Token& Peek(int ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Is(const std::string& word) const {
    return (Peek().kind == TokenKind::kIdent ||
            Peek().kind == TokenKind::kSymbol) &&
           Peek().text == word;
  }
  bool Accept(const std::string& word) {
    if (Is(word)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(const std::string& word) {
    if (Accept(word)) return Status::OK();
    return Status::SyntaxError("expected '" + word + "' near '" +
                               Peek().raw + "'");
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::SyntaxError("expected identifier near '" + Peek().raw +
                                 "'");
    }
    return Advance().raw;
  }
  /// Table name, optionally schema-qualified: `ident` or `ident.ident`.
  /// The only schema today is the reserved virtual `sys.` one.
  Result<std::string> ExpectTableName() {
    HDB_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    if (Is(".")) {
      Advance();
      HDB_ASSIGN_OR_RETURN(const std::string rest, ExpectIdent());
      name += "." + rest;
    }
    return name;
  }

  Result<SelectAst> ParseSelect();
  Result<InsertAst> ParseInsert();
  Result<UpdateAst> ParseUpdate();
  Result<DeleteAst> ParseDelete();
  Result<StatementAst> ParseCreate();
  Result<CallAst> ParseCall();

  Result<AstExprPtr> ParseExpr() { return ParseOr(); }
  Result<AstExprPtr> ParseOr();
  Result<AstExprPtr> ParseAnd();
  Result<AstExprPtr> ParseNot();
  Result<AstExprPtr> ParsePredicate();
  Result<AstExprPtr> ParseAdditive();
  Result<AstExprPtr> ParseMultiplicative();
  Result<AstExprPtr> ParsePrimary();

  Result<Value> ParseLiteralValue();
  Result<TypeId> ParseType();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

AstExprPtr MakeNode(AstExpr::Kind k) {
  auto e = std::make_shared<AstExpr>();
  e->kind = k;
  return e;
}

Result<Value> NumberToValue(const Token& t) {
  if (t.is_double) return Value::Double(std::strtod(t.text.c_str(), nullptr));
  return Value::Bigint(std::strtoll(t.text.c_str(), nullptr, 10));
}

Result<AstExprPtr> Parser::ParseOr() {
  HDB_ASSIGN_OR_RETURN(AstExprPtr left, ParseAnd());
  while (Accept("OR")) {
    HDB_ASSIGN_OR_RETURN(AstExprPtr right, ParseAnd());
    auto e = MakeNode(AstExpr::kOr);
    e->children = {left, right};
    left = e;
  }
  return left;
}

Result<AstExprPtr> Parser::ParseAnd() {
  HDB_ASSIGN_OR_RETURN(AstExprPtr left, ParseNot());
  while (Accept("AND")) {
    HDB_ASSIGN_OR_RETURN(AstExprPtr right, ParseNot());
    auto e = MakeNode(AstExpr::kAnd);
    e->children = {left, right};
    left = e;
  }
  return left;
}

Result<AstExprPtr> Parser::ParseNot() {
  if (Accept("NOT")) {
    HDB_ASSIGN_OR_RETURN(AstExprPtr inner, ParseNot());
    auto e = MakeNode(AstExpr::kNot);
    e->children = {inner};
    return e;
  }
  return ParsePredicate();
}

Result<AstExprPtr> Parser::ParsePredicate() {
  HDB_ASSIGN_OR_RETURN(AstExprPtr left, ParseAdditive());

  if (Accept("IS")) {
    const bool negated = Accept("NOT");
    HDB_RETURN_IF_ERROR(Expect("NULL"));
    auto e = MakeNode(AstExpr::kIsNull);
    e->negated = negated;
    e->children = {left};
    return e;
  }
  bool negated = false;
  if (Is("NOT") && (Peek(1).text == "BETWEEN" || Peek(1).text == "LIKE" ||
                    Peek(1).text == "IN")) {
    Advance();
    negated = true;
  }
  if (Accept("BETWEEN")) {
    HDB_ASSIGN_OR_RETURN(AstExprPtr lo, ParseAdditive());
    HDB_RETURN_IF_ERROR(Expect("AND"));
    HDB_ASSIGN_OR_RETURN(AstExprPtr hi, ParseAdditive());
    auto e = MakeNode(AstExpr::kBetween);
    e->children = {left, lo, hi};
    if (!negated) return e;
    auto n = MakeNode(AstExpr::kNot);
    n->children = {e};
    return n;
  }
  if (Accept("LIKE")) {
    if (Peek().kind != TokenKind::kString) {
      return Status::SyntaxError("LIKE requires a string literal pattern");
    }
    auto e = MakeNode(AstExpr::kLike);
    e->pattern = Advance().text;
    e->children = {left};
    if (!negated) return e;
    auto n = MakeNode(AstExpr::kNot);
    n->children = {e};
    return n;
  }
  if (Accept("IN")) {
    HDB_RETURN_IF_ERROR(Expect("("));
    auto e = MakeNode(AstExpr::kInList);
    e->children.push_back(left);
    do {
      HDB_ASSIGN_OR_RETURN(AstExprPtr item, ParseAdditive());
      e->children.push_back(item);
    } while (Accept(","));
    HDB_RETURN_IF_ERROR(Expect(")"));
    if (!negated) return e;
    auto n = MakeNode(AstExpr::kNot);
    n->children = {e};
    return n;
  }

  static const std::pair<const char*, CompareOp> kOps[] = {
      {"=", CompareOp::kEq},  {"<>", CompareOp::kNe}, {"<=", CompareOp::kLe},
      {">=", CompareOp::kGe}, {"<", CompareOp::kLt},  {">", CompareOp::kGt},
  };
  for (const auto& [sym, op] : kOps) {
    if (Accept(sym)) {
      HDB_ASSIGN_OR_RETURN(AstExprPtr right, ParseAdditive());
      auto e = MakeNode(AstExpr::kCompare);
      e->cmp = op;
      e->children = {left, right};
      return e;
    }
  }
  return left;
}

Result<AstExprPtr> Parser::ParseAdditive() {
  HDB_ASSIGN_OR_RETURN(AstExprPtr left, ParseMultiplicative());
  for (;;) {
    ArithOp op;
    if (Accept("+")) {
      op = ArithOp::kAdd;
    } else if (Accept("-")) {
      op = ArithOp::kSub;
    } else {
      return left;
    }
    HDB_ASSIGN_OR_RETURN(AstExprPtr right, ParseMultiplicative());
    auto e = MakeNode(AstExpr::kArith);
    e->arith = op;
    e->children = {left, right};
    left = e;
  }
}

Result<AstExprPtr> Parser::ParseMultiplicative() {
  HDB_ASSIGN_OR_RETURN(AstExprPtr left, ParsePrimary());
  for (;;) {
    ArithOp op;
    if (Accept("*")) {
      op = ArithOp::kMul;
    } else if (Accept("/")) {
      op = ArithOp::kDiv;
    } else {
      return left;
    }
    HDB_ASSIGN_OR_RETURN(AstExprPtr right, ParsePrimary());
    auto e = MakeNode(AstExpr::kArith);
    e->arith = op;
    e->children = {left, right};
    left = e;
  }
}

Result<AstExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  if (t.kind == TokenKind::kNumber) {
    Advance();
    auto e = MakeNode(AstExpr::kLiteral);
    HDB_ASSIGN_OR_RETURN(e->literal, NumberToValue(t));
    return e;
  }
  if (t.kind == TokenKind::kString) {
    Advance();
    auto e = MakeNode(AstExpr::kLiteral);
    e->literal = Value::String(t.text);
    return e;
  }
  if (t.kind == TokenKind::kParam) {
    Advance();
    auto e = MakeNode(AstExpr::kParam);
    e->column = t.text;
    return e;
  }
  if (Accept("(")) {
    HDB_ASSIGN_OR_RETURN(AstExprPtr inner, ParseExpr());
    HDB_RETURN_IF_ERROR(Expect(")"));
    return inner;
  }
  if (Accept("-")) {
    HDB_ASSIGN_OR_RETURN(AstExprPtr inner, ParsePrimary());
    if (inner->kind == AstExpr::kLiteral) {
      if (inner->literal.type() == TypeId::kDouble) {
        inner->literal = Value::Double(-inner->literal.AsDouble());
      } else {
        inner->literal = Value::Bigint(-inner->literal.AsInt());
      }
      return inner;
    }
    auto zero = MakeNode(AstExpr::kLiteral);
    zero->literal = Value::Bigint(0);
    auto e = MakeNode(AstExpr::kArith);
    e->arith = ArithOp::kSub;
    e->children = {zero, inner};
    return e;
  }
  if (t.kind == TokenKind::kIdent) {
    // TRUE/FALSE/NULL literals.
    if (t.text == "TRUE" || t.text == "FALSE") {
      Advance();
      auto e = MakeNode(AstExpr::kLiteral);
      e->literal = Value::Boolean(t.text == "TRUE");
      return e;
    }
    if (t.text == "NULL") {
      Advance();
      auto e = MakeNode(AstExpr::kLiteral);
      e->literal = Value::Null();
      return e;
    }
    // Aggregates.
    static const std::pair<const char*, AggKind> kAggs[] = {
        {"COUNT", AggKind::kCount}, {"SUM", AggKind::kSum},
        {"MIN", AggKind::kMin},     {"MAX", AggKind::kMax},
        {"AVG", AggKind::kAvg},
    };
    for (const auto& [name, kind] : kAggs) {
      if (t.text == name && Peek(1).text == "(") {
        Advance();
        Advance();
        auto e = MakeNode(AstExpr::kAggregate);
        e->agg = kind;
        if (kind == AggKind::kCount && Accept("*")) {
          e->agg = AggKind::kCountStar;
        } else {
          HDB_ASSIGN_OR_RETURN(AstExprPtr arg, ParseExpr());
          e->children = {arg};
        }
        HDB_RETURN_IF_ERROR(Expect(")"));
        return e;
      }
    }
    // Column reference, optionally qualified.
    Advance();
    auto e = MakeNode(AstExpr::kColumn);
    if (Is(".")) {
      Advance();
      HDB_ASSIGN_OR_RETURN(const std::string col, ExpectIdent());
      e->table = t.raw;
      e->column = col;
    } else {
      e->column = t.raw;
    }
    return e;
  }
  return Status::SyntaxError("unexpected token '" + t.raw + "'");
}

Result<Value> Parser::ParseLiteralValue() {
  HDB_ASSIGN_OR_RETURN(AstExprPtr e, ParsePrimary());
  if (e->kind != AstExpr::kLiteral) {
    return Status::SyntaxError("literal expected");
  }
  return e->literal;
}

Result<TypeId> Parser::ParseType() {
  HDB_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
  for (char& c : name) c = static_cast<char>(std::toupper(c));
  TypeId t;
  if (name == "INT" || name == "INTEGER") {
    t = TypeId::kInt;
  } else if (name == "BIGINT") {
    t = TypeId::kBigint;
  } else if (name == "DOUBLE" || name == "REAL" || name == "FLOAT") {
    t = TypeId::kDouble;
  } else if (name == "VARCHAR" || name == "CHAR" || name == "TEXT") {
    t = TypeId::kVarchar;
  } else if (name == "BOOLEAN" || name == "BOOL") {
    t = TypeId::kBoolean;
  } else if (name == "DATE") {
    t = TypeId::kDate;
  } else if (name == "TIMESTAMP") {
    t = TypeId::kTimestamp;
  } else {
    return Status::SyntaxError("unknown type " + name);
  }
  // Optional length, e.g. VARCHAR(40) — accepted and ignored.
  if (Accept("(")) {
    while (!Is(")") && Peek().kind != TokenKind::kEnd) Advance();
    HDB_RETURN_IF_ERROR(Expect(")"));
  }
  return t;
}

Result<SelectAst> Parser::ParseSelect() {
  SelectAst sel;
  HDB_RETURN_IF_ERROR(Expect("SELECT"));
  sel.distinct = Accept("DISTINCT");
  do {
    SelectAst::Item item;
    if (Accept("*")) {
      item.star = true;
    } else {
      HDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (Accept("AS")) {
        HDB_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
      } else if (Peek().kind == TokenKind::kIdent && !Is("FROM")) {
        // Bare alias.
        item.alias = Advance().raw;
      }
    }
    sel.items.push_back(std::move(item));
  } while (Accept(","));

  HDB_RETURN_IF_ERROR(Expect("FROM"));
  std::vector<AstExprPtr> on_conditions;
  auto parse_table_ref = [&]() -> Result<TableRef> {
    TableRef tr;
    HDB_ASSIGN_OR_RETURN(tr.table, ExpectTableName());
    if (Accept("AS")) {
      HDB_ASSIGN_OR_RETURN(tr.alias, ExpectIdent());
    } else if (Peek().kind == TokenKind::kIdent && !Is("WHERE") &&
               !Is("GROUP") && !Is("ORDER") && !Is("LIMIT") && !Is("JOIN") &&
               !Is("INNER") && !Is("ON") && !Is("HAVING")) {
      tr.alias = Advance().raw;
    }
    if (tr.alias.empty()) tr.alias = tr.table;
    return tr;
  };
  HDB_ASSIGN_OR_RETURN(TableRef first, parse_table_ref());
  sel.from.push_back(first);
  for (;;) {
    if (Accept(",")) {
      HDB_ASSIGN_OR_RETURN(TableRef tr, parse_table_ref());
      sel.from.push_back(tr);
      continue;
    }
    if (Accept("INNER")) {
      HDB_RETURN_IF_ERROR(Expect("JOIN"));
    } else if (!Accept("JOIN")) {
      break;
    }
    HDB_ASSIGN_OR_RETURN(TableRef tr, parse_table_ref());
    sel.from.push_back(tr);
    HDB_RETURN_IF_ERROR(Expect("ON"));
    HDB_ASSIGN_OR_RETURN(AstExprPtr cond, ParseExpr());
    on_conditions.push_back(cond);
  }

  if (Accept("WHERE")) {
    HDB_ASSIGN_OR_RETURN(sel.where, ParseExpr());
  }
  for (const AstExprPtr& cond : on_conditions) {
    if (sel.where == nullptr) {
      sel.where = cond;
    } else {
      auto e = MakeNode(AstExpr::kAnd);
      e->children = {sel.where, cond};
      sel.where = e;
    }
  }
  if (Accept("GROUP")) {
    HDB_RETURN_IF_ERROR(Expect("BY"));
    do {
      HDB_ASSIGN_OR_RETURN(AstExprPtr e, ParseExpr());
      sel.group_by.push_back(e);
    } while (Accept(","));
    if (Accept("HAVING")) {
      HDB_ASSIGN_OR_RETURN(sel.having, ParseExpr());
    }
  }
  if (Accept("ORDER")) {
    HDB_RETURN_IF_ERROR(Expect("BY"));
    do {
      SelectAst::Order o;
      HDB_ASSIGN_OR_RETURN(o.expr, ParseExpr());
      if (Accept("DESC")) {
        o.ascending = false;
      } else {
        Accept("ASC");
      }
      sel.order_by.push_back(std::move(o));
    } while (Accept(","));
  }
  if (Accept("LIMIT")) {
    if (Peek().kind != TokenKind::kNumber) {
      return Status::SyntaxError("LIMIT requires a number");
    }
    HDB_ASSIGN_OR_RETURN(const Value v, NumberToValue(Advance()));
    sel.limit = v.AsInt();
  }
  return sel;
}

Result<InsertAst> Parser::ParseInsert() {
  InsertAst ins;
  HDB_RETURN_IF_ERROR(Expect("INSERT"));
  HDB_RETURN_IF_ERROR(Expect("INTO"));
  HDB_ASSIGN_OR_RETURN(ins.table, ExpectTableName());
  if (Accept("(")) {
    do {
      HDB_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      ins.columns.push_back(std::move(col));
    } while (Accept(","));
    HDB_RETURN_IF_ERROR(Expect(")"));
  }
  HDB_RETURN_IF_ERROR(Expect("VALUES"));
  do {
    HDB_RETURN_IF_ERROR(Expect("("));
    std::vector<AstExprPtr> row;
    do {
      HDB_ASSIGN_OR_RETURN(AstExprPtr e, ParseExpr());
      row.push_back(std::move(e));
    } while (Accept(","));
    HDB_RETURN_IF_ERROR(Expect(")"));
    ins.rows.push_back(std::move(row));
  } while (Accept(","));
  return ins;
}

Result<UpdateAst> Parser::ParseUpdate() {
  UpdateAst up;
  HDB_RETURN_IF_ERROR(Expect("UPDATE"));
  HDB_ASSIGN_OR_RETURN(up.table, ExpectTableName());
  HDB_RETURN_IF_ERROR(Expect("SET"));
  do {
    HDB_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
    HDB_RETURN_IF_ERROR(Expect("="));
    HDB_ASSIGN_OR_RETURN(AstExprPtr e, ParseExpr());
    up.sets.emplace_back(std::move(col), std::move(e));
  } while (Accept(","));
  if (Accept("WHERE")) {
    HDB_ASSIGN_OR_RETURN(up.where, ParseExpr());
  }
  return up;
}

Result<DeleteAst> Parser::ParseDelete() {
  DeleteAst del;
  HDB_RETURN_IF_ERROR(Expect("DELETE"));
  HDB_RETURN_IF_ERROR(Expect("FROM"));
  HDB_ASSIGN_OR_RETURN(del.table, ExpectTableName());
  if (Accept("WHERE")) {
    HDB_ASSIGN_OR_RETURN(del.where, ParseExpr());
  }
  return del;
}

Result<StatementAst> Parser::ParseCreate() {
  HDB_RETURN_IF_ERROR(Expect("CREATE"));
  if (Accept("TABLE")) {
    CreateTableAst ct;
    HDB_ASSIGN_OR_RETURN(ct.name, ExpectIdent());
    HDB_RETURN_IF_ERROR(Expect("("));
    do {
      if (Accept("FOREIGN")) {
        HDB_RETURN_IF_ERROR(Expect("KEY"));
        HDB_RETURN_IF_ERROR(Expect("("));
        CreateTableAst::Fk fk;
        HDB_ASSIGN_OR_RETURN(fk.column, ExpectIdent());
        HDB_RETURN_IF_ERROR(Expect(")"));
        HDB_RETURN_IF_ERROR(Expect("REFERENCES"));
        HDB_ASSIGN_OR_RETURN(fk.ref_table, ExpectIdent());
        HDB_RETURN_IF_ERROR(Expect("("));
        HDB_ASSIGN_OR_RETURN(fk.ref_column, ExpectIdent());
        HDB_RETURN_IF_ERROR(Expect(")"));
        ct.foreign_keys.push_back(std::move(fk));
        continue;
      }
      CreateTableAst::Column col;
      HDB_ASSIGN_OR_RETURN(col.name, ExpectIdent());
      HDB_ASSIGN_OR_RETURN(col.type, ParseType());
      if (Accept("NOT")) {
        HDB_RETURN_IF_ERROR(Expect("NULL"));
        col.not_null = true;
      }
      if (Accept("PRIMARY")) {  // accepted, treated as NOT NULL
        HDB_RETURN_IF_ERROR(Expect("KEY"));
        col.not_null = true;
      }
      ct.columns.push_back(std::move(col));
    } while (Accept(","));
    HDB_RETURN_IF_ERROR(Expect(")"));
    return StatementAst{std::move(ct)};
  }
  if (Is("UNIQUE") || Is("INDEX")) {
    CreateIndexAst ci;
    ci.unique = Accept("UNIQUE");
    HDB_RETURN_IF_ERROR(Expect("INDEX"));
    HDB_ASSIGN_OR_RETURN(ci.name, ExpectIdent());
    HDB_RETURN_IF_ERROR(Expect("ON"));
    HDB_ASSIGN_OR_RETURN(ci.table, ExpectIdent());
    HDB_RETURN_IF_ERROR(Expect("("));
    do {
      HDB_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      ci.columns.push_back(std::move(col));
    } while (Accept(","));
    HDB_RETURN_IF_ERROR(Expect(")"));
    return StatementAst{std::move(ci)};
  }
  if (Accept("STATISTICS")) {
    CreateStatisticsAst cs;
    HDB_ASSIGN_OR_RETURN(cs.table, ExpectIdent());
    if (Accept("(")) {
      do {
        HDB_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        cs.columns.push_back(std::move(col));
      } while (Accept(","));
      HDB_RETURN_IF_ERROR(Expect(")"));
    }
    return StatementAst{std::move(cs)};
  }
  if (Accept("PROCEDURE")) {
    CreateProcedureAst cp;
    HDB_ASSIGN_OR_RETURN(cp.name, ExpectIdent());
    if (Accept("(")) {
      if (!Is(")")) {
        do {
          if (Peek().kind != TokenKind::kParam) {
            return Status::SyntaxError("procedure parameters are :names");
          }
          cp.params.push_back(Advance().text);
        } while (Accept(","));
      }
      HDB_RETURN_IF_ERROR(Expect(")"));
    }
    HDB_RETURN_IF_ERROR(Expect("AS"));
    // The body is the remainder of the statement text; ';' separates
    // multiple statements inside the procedure.
    std::string body;
    while (Peek().kind != TokenKind::kEnd) {
      if (Is(";")) {
        Advance();
        if (!body.empty()) {
          cp.body_statements.push_back(body);
          body.clear();
        }
        continue;
      }
      const Token& t = Advance();
      if (!body.empty()) body += " ";
      if (t.kind == TokenKind::kString) {
        std::string esc;
        for (const char ch : t.text) {
          esc += ch;
          if (ch == '\'') esc += '\'';
        }
        body += "'" + esc + "'";
      } else if (t.kind == TokenKind::kParam) {
        body += ":" + t.text;
      } else {
        body += t.raw;
      }
    }
    if (!body.empty()) cp.body_statements.push_back(body);
    if (cp.body_statements.empty()) {
      return Status::SyntaxError("empty procedure body");
    }
    return StatementAst{std::move(cp)};
  }
  return Status::SyntaxError("unsupported CREATE statement");
}

Result<CallAst> Parser::ParseCall() {
  CallAst call;
  HDB_RETURN_IF_ERROR(Expect("CALL"));
  HDB_ASSIGN_OR_RETURN(call.name, ExpectIdent());
  if (Accept("(")) {
    if (!Is(")")) {
      do {
        HDB_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        call.args.push_back(std::move(v));
      } while (Accept(","));
    }
    HDB_RETURN_IF_ERROR(Expect(")"));
  }
  return call;
}

Result<StatementAst> Parser::ParseStatement() {
  StatementAst out{SimpleAst{SimpleAst::kCommit}};
  if (Is("SELECT")) {
    HDB_ASSIGN_OR_RETURN(SelectAst s, ParseSelect());
    out = std::move(s);
  } else if (Is("EXPLAIN")) {
    Advance();
    ExplainAst ex;
    ex.analyze = Accept("ANALYZE");
    HDB_ASSIGN_OR_RETURN(SelectAst s, ParseSelect());
    ex.select = std::make_shared<SelectAst>(std::move(s));
    out = std::move(ex);
  } else if (Is("INSERT")) {
    HDB_ASSIGN_OR_RETURN(InsertAst s, ParseInsert());
    out = std::move(s);
  } else if (Is("UPDATE")) {
    HDB_ASSIGN_OR_RETURN(UpdateAst s, ParseUpdate());
    out = std::move(s);
  } else if (Is("DELETE")) {
    HDB_ASSIGN_OR_RETURN(DeleteAst s, ParseDelete());
    out = std::move(s);
  } else if (Is("CREATE")) {
    HDB_ASSIGN_OR_RETURN(out, ParseCreate());
  } else if (Is("CALL")) {
    HDB_ASSIGN_OR_RETURN(CallAst s, ParseCall());
    out = std::move(s);
  } else if (Accept("DROP")) {
    DropAst d;
    if (Accept("TABLE")) {
      d.kind = DropAst::kTable;
    } else if (Accept("INDEX")) {
      d.kind = DropAst::kIndex;
    } else {
      return Status::SyntaxError("DROP TABLE or DROP INDEX expected");
    }
    HDB_ASSIGN_OR_RETURN(d.name, ExpectTableName());
    out = std::move(d);
  } else if (Accept("SET")) {
    HDB_RETURN_IF_ERROR(Expect("OPTION"));
    SetOptionAst so;
    HDB_ASSIGN_OR_RETURN(so.name, ExpectIdent());
    HDB_RETURN_IF_ERROR(Expect("="));
    if (Peek().kind == TokenKind::kString ||
        Peek().kind == TokenKind::kNumber ||
        Peek().kind == TokenKind::kIdent) {
      so.value = Advance().text;
    } else {
      return Status::SyntaxError("option value expected");
    }
    out = std::move(so);
  } else if (Accept("BEGIN")) {
    out = SimpleAst{SimpleAst::kBegin};
  } else if (Accept("COMMIT")) {
    out = SimpleAst{SimpleAst::kCommit};
  } else if (Accept("ROLLBACK")) {
    out = SimpleAst{SimpleAst::kRollback};
  } else if (Accept("CALIBRATE")) {
    HDB_RETURN_IF_ERROR(Expect("DATABASE"));
    out = SimpleAst{SimpleAst::kCalibrate};
  } else {
    return Status::SyntaxError("unrecognized statement near '" + Peek().raw +
                               "'");
  }
  Accept(";");
  if (Peek().kind != TokenKind::kEnd) {
    return Status::SyntaxError("trailing input near '" + Peek().raw + "'");
  }
  return out;
}

}  // namespace

Result<StatementAst> Parse(const std::string& sql) {
  HDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

std::string NormalizeStatement(const std::string& sql) {
  auto tokens = Lex(sql);
  if (!tokens.ok()) return sql;
  std::string out;
  for (const Token& t : *tokens) {
    if (t.kind == TokenKind::kEnd) break;
    if (!out.empty()) out += " ";
    switch (t.kind) {
      case TokenKind::kNumber:
      case TokenKind::kString:
        out += "?";
        break;
      case TokenKind::kParam:
        out += ":?";
        break;
      default:
        out += t.text;  // uppercased idents/symbols
    }
  }
  return out;
}

}  // namespace hdb::engine
