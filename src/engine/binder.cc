#include "engine/binder.h"

#include <algorithm>

namespace hdb::engine {

using optimizer::AggKind;
using optimizer::AggSpec;
using optimizer::Expr;
using optimizer::ExprPtr;
using optimizer::Query;
using optimizer::SelectItem;

Result<Value> CoerceValue(const Value& v, TypeId target) {
  if (v.is_null()) return Value::Null(target);
  if (v.type() == target) return v;
  switch (target) {
    case TypeId::kInt:
      if (v.type() == TypeId::kBigint) {
        return Value::Int(static_cast<int32_t>(v.AsInt()));
      }
      if (v.type() == TypeId::kDouble) {
        return Value::Int(static_cast<int32_t>(v.AsDouble()));
      }
      break;
    case TypeId::kBigint:
      if (v.type() == TypeId::kInt) return Value::Bigint(v.AsInt());
      if (v.type() == TypeId::kDouble) {
        return Value::Bigint(static_cast<int64_t>(v.AsDouble()));
      }
      break;
    case TypeId::kDouble:
      if (v.type() == TypeId::kInt || v.type() == TypeId::kBigint) {
        return Value::Double(static_cast<double>(v.AsInt()));
      }
      break;
    case TypeId::kDate:
      if (v.type() == TypeId::kInt || v.type() == TypeId::kBigint) {
        return Value::Date(v.AsInt());
      }
      break;
    case TypeId::kTimestamp:
      if (v.type() == TypeId::kInt || v.type() == TypeId::kBigint) {
        return Value::Timestamp(v.AsInt());
      }
      break;
    case TypeId::kBoolean:
      if (v.type() == TypeId::kInt || v.type() == TypeId::kBigint) {
        return Value::Boolean(v.AsInt() != 0);
      }
      break;
    case TypeId::kVarchar:
      break;
  }
  return Status::InvalidArgument("cannot coerce " +
                                 std::string(TypeName(v.type())) + " to " +
                                 std::string(TypeName(target)));
}

Result<ExprPtr> Binder::ResolveColumn(const AstExpr& ast,
                                      const Scope& scope) {
  int found_q = -1, found_c = -1;
  TypeId type = TypeId::kInt;
  std::string display;
  for (size_t q = 0; q < scope.quantifiers.size(); ++q) {
    const auto& quant = scope.quantifiers[q];
    if (!ast.table.empty() && quant.alias != ast.table &&
        quant.table->name != ast.table) {
      continue;
    }
    const int c = quant.table->ColumnIndex(ast.column);
    if (c < 0) continue;
    if (found_q >= 0) {
      return Status::InvalidArgument("ambiguous column " + ast.column);
    }
    found_q = static_cast<int>(q);
    found_c = c;
    type = quant.table->columns[c].type;
    display = quant.alias + "." + ast.column;
  }
  if (found_q < 0) {
    return Status::NotFound("column " + ast.column);
  }
  return Expr::Column(found_q, found_c, type, display);
}

Result<ExprPtr> Binder::BindExpr(const AstExprPtr& ast, const Scope& scope,
                                 Query* query_for_aggs) {
  switch (ast->kind) {
    case AstExpr::kLiteral:
      return Expr::Literal(ast->literal);
    case AstExpr::kParam:
      return Expr::Param(ast->column);
    case AstExpr::kColumn:
      return ResolveColumn(*ast, scope);
    case AstExpr::kCompare: {
      HDB_ASSIGN_OR_RETURN(ExprPtr l,
                           BindExpr(ast->children[0], scope, query_for_aggs));
      HDB_ASSIGN_OR_RETURN(ExprPtr r,
                           BindExpr(ast->children[1], scope, query_for_aggs));
      return Expr::Compare(ast->cmp, std::move(l), std::move(r));
    }
    case AstExpr::kAnd: {
      HDB_ASSIGN_OR_RETURN(ExprPtr l,
                           BindExpr(ast->children[0], scope, query_for_aggs));
      HDB_ASSIGN_OR_RETURN(ExprPtr r,
                           BindExpr(ast->children[1], scope, query_for_aggs));
      return Expr::And(std::move(l), std::move(r));
    }
    case AstExpr::kOr: {
      HDB_ASSIGN_OR_RETURN(ExprPtr l,
                           BindExpr(ast->children[0], scope, query_for_aggs));
      HDB_ASSIGN_OR_RETURN(ExprPtr r,
                           BindExpr(ast->children[1], scope, query_for_aggs));
      return Expr::Or(std::move(l), std::move(r));
    }
    case AstExpr::kNot: {
      HDB_ASSIGN_OR_RETURN(ExprPtr c,
                           BindExpr(ast->children[0], scope, query_for_aggs));
      return Expr::Not(std::move(c));
    }
    case AstExpr::kIsNull: {
      HDB_ASSIGN_OR_RETURN(ExprPtr c,
                           BindExpr(ast->children[0], scope, query_for_aggs));
      return Expr::IsNull(std::move(c), ast->negated);
    }
    case AstExpr::kBetween: {
      HDB_ASSIGN_OR_RETURN(ExprPtr v,
                           BindExpr(ast->children[0], scope, query_for_aggs));
      HDB_ASSIGN_OR_RETURN(ExprPtr lo,
                           BindExpr(ast->children[1], scope, query_for_aggs));
      HDB_ASSIGN_OR_RETURN(ExprPtr hi,
                           BindExpr(ast->children[2], scope, query_for_aggs));
      return Expr::Between(std::move(v), std::move(lo), std::move(hi));
    }
    case AstExpr::kLike: {
      HDB_ASSIGN_OR_RETURN(ExprPtr v,
                           BindExpr(ast->children[0], scope, query_for_aggs));
      return Expr::Like(std::move(v), ast->pattern);
    }
    case AstExpr::kInList: {
      HDB_ASSIGN_OR_RETURN(ExprPtr v,
                           BindExpr(ast->children[0], scope, query_for_aggs));
      std::vector<ExprPtr> items;
      for (size_t i = 1; i < ast->children.size(); ++i) {
        HDB_ASSIGN_OR_RETURN(
            ExprPtr item, BindExpr(ast->children[i], scope, query_for_aggs));
        items.push_back(std::move(item));
      }
      return Expr::InList(std::move(v), std::move(items));
    }
    case AstExpr::kArith: {
      HDB_ASSIGN_OR_RETURN(ExprPtr l,
                           BindExpr(ast->children[0], scope, query_for_aggs));
      HDB_ASSIGN_OR_RETURN(ExprPtr r,
                           BindExpr(ast->children[1], scope, query_for_aggs));
      return Expr::Arith(ast->arith, std::move(l), std::move(r));
    }
    case AstExpr::kAggregate: {
      if (query_for_aggs == nullptr) {
        return Status::InvalidArgument("aggregate not allowed here");
      }
      AggSpec spec;
      spec.kind = ast->agg;
      if (!ast->children.empty()) {
        HDB_ASSIGN_OR_RETURN(
            spec.arg, BindExpr(ast->children[0], scope, nullptr));
      }
      // Dedupe identical aggregates.
      const std::string repr =
          std::to_string(static_cast<int>(spec.kind)) +
          (spec.arg != nullptr ? spec.arg->ToString() : "*");
      int idx = -1;
      for (size_t i = 0; i < query_for_aggs->aggregates.size(); ++i) {
        const auto& a = query_for_aggs->aggregates[i];
        const std::string other =
            std::to_string(static_cast<int>(a.kind)) +
            (a.arg != nullptr ? a.arg->ToString() : "*");
        if (other == repr) {
          idx = static_cast<int>(i);
          break;
        }
      }
      if (idx < 0) {
        idx = static_cast<int>(query_for_aggs->aggregates.size());
        spec.name = repr;
        query_for_aggs->aggregates.push_back(spec);
      }
      TypeId out_type = TypeId::kDouble;
      if (spec.kind == AggKind::kCount || spec.kind == AggKind::kCountStar) {
        out_type = TypeId::kBigint;
      } else if ((spec.kind == AggKind::kMin || spec.kind == AggKind::kMax) &&
                 spec.arg != nullptr) {
        out_type = spec.arg->type();
      }
      const int col = static_cast<int>(query_for_aggs->group_by.size()) + idx;
      return Expr::Column(query_for_aggs->group_quantifier(), col, out_type,
                          "agg" + std::to_string(idx));
    }
    case AstExpr::kStar:
      return Status::InvalidArgument("'*' not allowed here");
  }
  return Status::Internal("unhandled AST node");
}

ExprPtr Binder::ReplaceGroupKeys(const ExprPtr& e,
                                 const std::vector<std::string>& key_strs,
                                 int group_quantifier) {
  if (e == nullptr) return nullptr;
  // Already a group-output reference (an aggregate rewritten by BindExpr)?
  if (e->kind() == optimizer::ExprKind::kColumnRef &&
      e->quantifier() == group_quantifier) {
    return e;
  }
  const std::string repr = e->ToString();
  for (size_t i = 0; i < key_strs.size(); ++i) {
    if (repr == key_strs[i]) {
      return Expr::Column(group_quantifier, static_cast<int>(i), e->type(),
                          repr);
    }
  }
  if (e->children().empty()) return e;
  // Rebuild with rewritten children.
  std::vector<ExprPtr> kids;
  bool changed = false;
  for (const ExprPtr& c : e->children()) {
    ExprPtr nc = ReplaceGroupKeys(c, key_strs, group_quantifier);
    changed = changed || nc != c;
    kids.push_back(std::move(nc));
  }
  if (!changed) return e;
  switch (e->kind()) {
    case optimizer::ExprKind::kCompare:
      return Expr::Compare(e->compare_op(), kids[0], kids[1]);
    case optimizer::ExprKind::kAnd:
      return Expr::And(kids[0], kids[1]);
    case optimizer::ExprKind::kOr:
      return Expr::Or(kids[0], kids[1]);
    case optimizer::ExprKind::kNot:
      return Expr::Not(kids[0]);
    case optimizer::ExprKind::kIsNull:
      return Expr::IsNull(kids[0], e->negated());
    case optimizer::ExprKind::kBetween:
      return Expr::Between(kids[0], kids[1], kids[2]);
    case optimizer::ExprKind::kLike:
      return Expr::Like(kids[0], e->pattern());
    case optimizer::ExprKind::kInList: {
      std::vector<ExprPtr> rest(kids.begin() + 1, kids.end());
      return Expr::InList(kids[0], std::move(rest));
    }
    case optimizer::ExprKind::kArith:
      return Expr::Arith(e->arith_op(), kids[0], kids[1]);
    default:
      return e;
  }
}

Result<Query> Binder::BindSelect(const SelectAst& ast) {
  Query q;
  Scope scope;
  for (const TableRef& tr : ast.from) {
    HDB_ASSIGN_OR_RETURN(catalog::TableDef * def,
                         catalog_->GetTable(tr.table));
    optimizer::Quantifier quant;
    quant.table = def;
    quant.alias = tr.alias;
    scope.quantifiers.push_back(quant);
  }
  q.quantifiers = scope.quantifiers;

  if (ast.where != nullptr) {
    HDB_ASSIGN_OR_RETURN(ExprPtr where, BindExpr(ast.where, scope, nullptr));
    optimizer::SplitConjuncts(where, &q.conjuncts);
  }

  // GROUP BY keys bind first so select/having can be rewritten over them.
  std::vector<std::string> key_strs;
  for (const AstExprPtr& g : ast.group_by) {
    HDB_ASSIGN_OR_RETURN(ExprPtr key, BindExpr(g, scope, nullptr));
    key_strs.push_back(key->ToString());
    q.group_by.push_back(std::move(key));
  }

  q.distinct = ast.distinct;
  q.limit = ast.limit;

  // Select list.
  for (const SelectAst::Item& item : ast.items) {
    if (item.star) {
      if (!ast.group_by.empty()) {
        return Status::InvalidArgument("SELECT * with GROUP BY");
      }
      for (size_t qi = 0; qi < scope.quantifiers.size(); ++qi) {
        const auto& quant = scope.quantifiers[qi];
        for (size_t c = 0; c < quant.table->columns.size(); ++c) {
          SelectItem si;
          si.expr = Expr::Column(static_cast<int>(qi), static_cast<int>(c),
                                 quant.table->columns[c].type,
                                 quant.table->columns[c].name);
          si.name = quant.table->columns[c].name;
          q.select.push_back(std::move(si));
        }
      }
      continue;
    }
    SelectItem si;
    HDB_ASSIGN_OR_RETURN(si.expr, BindExpr(item.expr, scope, &q));
    if (!item.alias.empty()) {
      si.name = item.alias;
    } else if (item.expr->kind == AstExpr::kColumn) {
      si.name = item.expr->column;  // bare column name, unqualified
    } else {
      si.name = si.expr->ToString();
    }
    q.select.push_back(std::move(si));
  }

  if (ast.having != nullptr) {
    HDB_ASSIGN_OR_RETURN(q.having, BindExpr(ast.having, scope, &q));
  }
  for (const SelectAst::Order& o : ast.order_by) {
    optimizer::OrderItem oi;
    HDB_ASSIGN_OR_RETURN(oi.expr, BindExpr(o.expr, scope, &q));
    oi.ascending = o.ascending;
    q.order_by.push_back(std::move(oi));
  }

  // With grouping, rewrite select/having/order over the grouped output.
  if (q.has_grouping()) {
    const int gq = q.group_quantifier();
    for (SelectItem& si : q.select) {
      si.expr = ReplaceGroupKeys(si.expr, key_strs, gq);
      // Validate: no base-column references may survive.
      std::vector<bool> mask;
      si.expr->CollectQuantifiers(&mask);
      for (size_t i = 0; i < mask.size() && i < q.quantifiers.size(); ++i) {
        if (mask[i]) {
          return Status::InvalidArgument(
              "select item references a column outside GROUP BY: " +
              si.expr->ToString());
        }
      }
    }
    if (q.having != nullptr) {
      q.having = ReplaceGroupKeys(q.having, key_strs, gq);
    }
    for (optimizer::OrderItem& oi : q.order_by) {
      oi.expr = ReplaceGroupKeys(oi.expr, key_strs, gq);
    }
  }
  return q;
}

Result<BoundInsert> Binder::BindInsert(const InsertAst& ast) {
  BoundInsert out;
  HDB_ASSIGN_OR_RETURN(out.table, catalog_->GetTable(ast.table));
  if (out.table->is_virtual) {
    return Status::InvalidArgument("cannot INSERT into virtual table " +
                                   ast.table);
  }
  const size_t ncols = out.table->columns.size();

  std::vector<int> targets;
  if (ast.columns.empty()) {
    for (size_t i = 0; i < ncols; ++i) targets.push_back(static_cast<int>(i));
  } else {
    for (const std::string& name : ast.columns) {
      const int c = out.table->ColumnIndex(name);
      if (c < 0) return Status::NotFound("column " + name);
      targets.push_back(c);
    }
  }

  Scope empty;
  for (const auto& row_ast : ast.rows) {
    if (row_ast.size() != targets.size()) {
      return Status::InvalidArgument("INSERT arity mismatch");
    }
    table::Row row(ncols, Value::Null());
    for (size_t i = 0; i < ncols; ++i) {
      row[i] = Value::Null(out.table->columns[i].type);
    }
    for (size_t i = 0; i < targets.size(); ++i) {
      HDB_ASSIGN_OR_RETURN(ExprPtr e, BindExpr(row_ast[i], empty, nullptr));
      optimizer::RowContext ctx;
      HDB_ASSIGN_OR_RETURN(const Value v, e->Evaluate(ctx));
      HDB_ASSIGN_OR_RETURN(
          row[targets[i]],
          CoerceValue(v, out.table->columns[targets[i]].type));
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

Result<BoundUpdate> Binder::BindUpdate(const UpdateAst& ast) {
  BoundUpdate out;
  HDB_ASSIGN_OR_RETURN(out.table, catalog_->GetTable(ast.table));
  if (out.table->is_virtual) {
    return Status::InvalidArgument("cannot UPDATE virtual table " + ast.table);
  }
  Scope scope;
  optimizer::Quantifier quant;
  quant.table = out.table;
  quant.alias = ast.table;
  scope.quantifiers.push_back(quant);
  out.scan.quantifiers = scope.quantifiers;
  for (const auto& [col_name, expr_ast] : ast.sets) {
    const int c = out.table->ColumnIndex(col_name);
    if (c < 0) return Status::NotFound("column " + col_name);
    HDB_ASSIGN_OR_RETURN(ExprPtr e, BindExpr(expr_ast, scope, nullptr));
    out.sets.emplace_back(c, std::move(e));
  }
  if (ast.where != nullptr) {
    HDB_ASSIGN_OR_RETURN(ExprPtr where, BindExpr(ast.where, scope, nullptr));
    optimizer::SplitConjuncts(where, &out.scan.conjuncts);
  }
  return out;
}

Result<BoundDelete> Binder::BindDelete(const DeleteAst& ast) {
  BoundDelete out;
  HDB_ASSIGN_OR_RETURN(out.table, catalog_->GetTable(ast.table));
  if (out.table->is_virtual) {
    return Status::InvalidArgument("cannot DELETE from virtual table " +
                                   ast.table);
  }
  Scope scope;
  optimizer::Quantifier quant;
  quant.table = out.table;
  quant.alias = ast.table;
  scope.quantifiers.push_back(quant);
  out.scan.quantifiers = scope.quantifiers;
  if (ast.where != nullptr) {
    HDB_ASSIGN_OR_RETURN(ExprPtr where, BindExpr(ast.where, scope, nullptr));
    optimizer::SplitConjuncts(where, &out.scan.conjuncts);
  }
  return out;
}

}  // namespace hdb::engine
