#include "engine/lexer.h"

#include <cctype>

namespace hdb::engine {

namespace {
char Upper(char c) {
  return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
}
bool IdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

Result<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token t;
    t.pos = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && IdentChar(sql[j])) ++j;
      t.kind = TokenKind::kIdent;
      t.raw = sql.substr(i, j - i);
      t.text = t.raw;
      for (char& ch : t.text) ch = Upper(ch);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool is_double = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E' ||
                       ((sql[j] == '+' || sql[j] == '-') && j > i &&
                        (sql[j - 1] == 'e' || sql[j - 1] == 'E')))) {
        if (sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E') is_double = true;
        ++j;
      }
      t.kind = TokenKind::kNumber;
      t.raw = sql.substr(i, j - i);
      t.text = t.raw;
      t.is_double = is_double;
      i = j;
    } else if (c == '\'') {
      std::string s;
      size_t j = i + 1;
      for (;;) {
        if (j >= n) return Status::SyntaxError("unterminated string literal");
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // escaped quote
            s.push_back('\'');
            j += 2;
            continue;
          }
          break;
        }
        s.push_back(sql[j]);
        ++j;
      }
      t.kind = TokenKind::kString;
      t.text = s;
      t.raw = sql.substr(i, j + 1 - i);
      i = j + 1;
    } else if (c == ':' && i + 1 < n && IdentChar(sql[i + 1])) {
      size_t j = i + 1;
      while (j < n && IdentChar(sql[j])) ++j;
      t.kind = TokenKind::kParam;
      t.text = sql.substr(i + 1, j - i - 1);
      t.raw = sql.substr(i, j - i);
      i = j;
    } else {
      // Multi-char operators first.
      static const char* kTwo[] = {"<=", ">=", "<>", "!="};
      std::string two = sql.substr(i, 2);
      bool matched = false;
      for (const char* op : kTwo) {
        if (two == op) {
          t.kind = TokenKind::kSymbol;
          t.text = (two == "!=") ? "<>" : two;
          t.raw = two;
          i += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        t.kind = TokenKind::kSymbol;
        t.text = std::string(1, c);
        t.raw = t.text;
        ++i;
      }
    }
    out.push_back(std::move(t));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.pos = n;
  out.push_back(end);
  return out;
}

}  // namespace hdb::engine
