#ifndef HDB_ENGINE_DATABASE_H_
#define HDB_ENGINE_DATABASE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "engine/binder.h"
#include "engine/parser.h"
#include "exec/admission_gate.h"
#include "exec/executor.h"
#include "exec/memory_governor.h"
#include "exec/mpl_controller.h"
#include "index/btree.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_cache.h"
#include "os/memory_env.h"
#include "os/stable_storage.h"
#include "os/virtual_clock.h"
#include "os/virtual_disk.h"
#include "stats/feedback.h"
#include "stats/proc_stats.h"
#include "stats/stats_registry.h"
#include "storage/buffer_pool.h"
#include "storage/pool_governor.h"
#include "table/table_heap.h"
#include "txn/transaction.h"
#include "wal/checkpoint_governor.h"
#include "wal/recovery.h"
#include "wal/wal_manager.h"

#include "common/lock_rank.h"

namespace hdb::engine {

/// Simulated device backing the database's I/O cost (DESIGN.md
/// substitution #2).
enum class DeviceKind { kNone, kRotational, kFlash };

struct DatabaseOptions {
  uint32_t page_bytes = storage::kDefaultPageBytes;
  size_t initial_pool_frames = 512;
  uint64_t physical_memory_bytes = 256ull << 20;

  DeviceKind device = DeviceKind::kNone;
  os::RotationalDiskOptions rotational;
  os::FlashDiskOptions flash;

  storage::PoolGovernorOptions pool_governor;
  exec::MemoryGovernorOptions memory_governor;
  exec::MplControllerOptions mpl_controller;
  exec::AdmissionGateOptions admission_gate;
  optimizer::GovernorOptions optimizer_governor;
  size_t optimizer_arena_bytes = 0;
  optimizer::PlanCacheOptions plan_cache;

  /// Collect statistics from query execution feedback (paper §3).
  bool auto_feedback = true;

  /// Statement lifecycle tracing (DESIGN.md §11): slow-statement ring size
  /// and threshold floor. Tests set slow_floor_micros = 0 to capture every
  /// statement deterministically.
  obs::StatementRegistryOptions statement_registry;

  /// Rows per execution batch for the vectorized executor (DESIGN.md §9);
  /// 0 = the executor default (exec::kDefaultBatchCap). 1 degenerates to
  /// row-at-a-time — the batch-parity tests sweep this.
  size_t exec_batch_cap = 0;

  /// Intra-query parallelism (paper §4.4, DESIGN.md §13). The default
  /// max_workers = 1 keeps every statement on the serial operators; raise
  /// it to let the optimizer mark exchange-eligible fragments and the
  /// ParallelismGovernor grant workers per pipeline.
  exec::ParallelExecOptions parallel;

  /// Durable medium (DESIGN.md §7). Null = volatile database (all pre-WAL
  /// behavior: nothing survives the Database object). Non-null = the
  /// database's pages live in this StableStorage, which outlives the
  /// Database — reopening over the same media runs crash recovery, so
  /// destroy-without-checkpoint + reopen is exactly kill -9 + restart.
  std::shared_ptr<os::StableStorage> media;

  /// Write-ahead log switches. Forced off when `media` is null (a log
  /// without a durable medium has nothing to recover); additionally forced
  /// off by HDB_WAL=OFF in the environment (the bench's no-WAL baseline).
  wal::WalOptions wal;
};

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;
  uint64_t rows_affected = 0;
  exec::RuntimeStats exec_stats;
  optimizer::OptimizeDiagnostics diag;
  std::string explain;
  bool used_cached_plan = false;
};

/// One request observed by the engine; the Application Profiling module
/// subscribes to these (paper §5 — the "detailed trace of all server
/// activity", transported in-process instead of over TCP/IP).
struct TraceEvent {
  std::string sql;
  double elapsed_micros = 0;
  uint64_t rows_returned = 0;
  uint64_t rows_scanned = 0;
  std::string plan_fingerprint;
  bool bypassed_optimizer = false;
  bool from_procedure = false;
};

class Connection;

/// An embedded HolisticDB server instance: storage, governors, statistics,
/// optimizer and SQL front end wired together (the paper's thesis is that
/// these only work *in concert*). Databases start on first Connect and can
/// be dropped when the last connection closes — the zero-administration
/// embedding model of §1.
///
/// Thread safety: a Database is shared by concurrently executing
/// Connections (one thread per connection). Queries and DML run under a
/// shared DDL latch; DDL (CREATE/DROP/statistics rebuilds/CALIBRATE) runs
/// exclusive, so it never races object lookups. The heap/btree maps have
/// their own mutex; counters are atomic. A Connection itself is NOT
/// thread-safe — each belongs to one thread at a time.
class Database {
 public:
  static Result<std::unique_ptr<Database>> Open(DatabaseOptions options = {});
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Result<std::unique_ptr<Connection>> Connect();
  int connection_count() const {
    return connections_.load(std::memory_order_relaxed);
  }

  // --- Subsystem access (benches, tests, profiler) ---
  catalog::Catalog& catalog() { return *catalog_; }
  storage::BufferPool& pool() { return *pool_; }
  storage::DiskManager& disk() { return *disk_; }
  storage::PoolGovernor& pool_governor() { return *pool_governor_; }
  exec::MemoryGovernor& memory_governor() { return *memory_governor_; }
  exec::MplController& mpl_controller() { return *mpl_controller_; }
  exec::AdmissionGate& admission_gate() { return *admission_gate_; }
  exec::ParallelismGovernor& parallel_governor() { return *parallel_governor_; }
  os::VirtualClock& clock() { return clock_; }
  os::MemoryEnv& memory_env() { return *memory_env_; }
  stats::StatsRegistry& stats() { return stats_; }
  stats::ProcStatsRegistry& proc_stats() { return proc_stats_; }
  txn::TransactionManager& txn_manager() { return *txn_manager_; }
  txn::LockManager& lock_manager() { return *lock_manager_; }
  wal::WalManager& wal() { return *wal_; }
  wal::CheckpointGovernor& checkpoint_governor() {
    return *checkpoint_governor_;
  }
  /// What restart recovery found and did at Open (zeroes for a volatile
  /// database or a fresh media).
  const wal::RecoveryStats& recovery_stats() const { return recovery_stats_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  obs::DecisionLog& decision_log() { return decision_log_; }
  obs::StatementRegistry& statement_registry() { return statement_registry_; }
  const DatabaseOptions& options() const { return options_; }

  /// Full telemetry snapshot (counters, histogram rollups, governor
  /// decisions, top statement shapes) as a JSON object — what the benches
  /// embed into their BENCH_*.json artifacts.
  std::string TelemetrySnapshotJson();

  /// Chrome/Perfetto trace-event JSON of the captured slow statements and
  /// the spans of everything currently running — open the output in
  /// ui.perfetto.dev (DESIGN.md §11).
  std::string TraceExportJson() {
    return statement_registry_.ExportChromeTraceJson();
  }

  table::TableHeap* heap(uint32_t table_oid);
  index::BTree* btree(uint32_t index_oid);
  const index::IndexStats* index_stats(uint32_t index_oid);

  /// Advances virtual time and runs the periodic self-management work
  /// (buffer-pool governor polling, MPL adaptation). Safe to call from any
  /// session thread while others execute SQL.
  void Tick(int64_t micros);

  /// Bulk load: appends rows and (re)builds statistics for every column —
  /// the paper's LOAD TABLE histogram-creation path (§3.2).
  Status LoadTable(const std::string& table, const std::vector<table::Row>& rows);

  /// CREATE STATISTICS path: full-column statistics (re)build.
  Status BuildStatistics(const std::string& table, int column);

  /// CALIBRATE DATABASE: probes the device, stores the model in the
  /// catalog (paper §4.2).
  Status Calibrate(const os::CalibrationOptions& opts = {});

  /// Subscribe to request traces (Application Profiling, §5). May be
  /// called while other threads execute; the hook itself must be
  /// thread-safe (it runs on whichever session thread finished a request).
  using TraceHook = std::function<void(const TraceEvent&)>;
  void set_trace_hook(TraceHook hook) {
    LockGuard lock(trace_mu_);
    trace_hook_ = std::move(hook);
  }

  /// One row of sys.connections, produced by the network front end (the
  /// engine knows nothing about sockets; net/ knows nothing about virtual
  /// tables — this struct is the seam).
  struct NetConnectionInfo {
    uint64_t conn_id = 0;
    std::string peer;
    std::string state;  // "handshake" / "ready" / "executing" / "draining"
    bool in_txn = false;
    uint64_t prepared = 0;
    uint64_t statements = 0;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
  };
  using NetConnectionProvider = std::function<std::vector<NetConnectionInfo>()>;
  /// Installed by net::Server at Start, cleared at Stop. The provider is
  /// copied out and invoked UNLOCKED (same discipline as EmitTrace): it
  /// takes the server's own mutex, which ranks below trace_mu_.
  void set_net_connection_provider(NetConnectionProvider provider) {
    LockGuard lock(trace_mu_);
    net_conn_provider_ = std::move(provider);
  }

  /// Index statistics provider for the optimizer.
  optimizer::IndexStatsProvider IndexStatsProvider();

  /// Index-probing callback for the selectivity estimator (paper §3).
  optimizer::IndexProber IndexProber();

 private:
  friend class Connection;

  explicit Database(DatabaseOptions options);
  Status Init();

  /// Registers engine-level metrics (statement counters, phase latencies)
  /// plus pull callbacks over the pool/gate/lock stats structs.
  void RegisterEngineTelemetry();
  /// Registers the `sys.*` virtual tables in the catalog.
  Status RegisterSysTables();
  /// Materializes the live rows of one `sys.*` table (executor callback).
  Result<std::vector<std::vector<Value>>> VirtualTableRows(uint32_t oid);
  /// Per-shape statement statistics (sys.statements, paper §5's workload
  /// view). `shape` is engine::NormalizeStatement(sql).
  void RecordStatementShape(const std::string& shape, double micros,
                            uint64_t rows);

  // DDL bodies; callers hold ddl_mu_ exclusively. The REQUIRES makes that
  // contract machine-checked everywhere except Connection::ExecuteParsed,
  // whose latch mode is branch-dependent (DESIGN.md §8.4).
  Status CreateTableImpl(const CreateTableAst& ast) REQUIRES(ddl_mu_);
  Status CreateIndexImpl(const CreateIndexAst& ast) REQUIRES(ddl_mu_);
  Status DropTableImpl(const std::string& name) REQUIRES(ddl_mu_);
  Status DropIndexImpl(const std::string& name) REQUIRES(ddl_mu_);
  Status LoadTableLocked(const std::string& table,
                         const std::vector<table::Row>& rows)
      REQUIRES(ddl_mu_);
  Status BuildStatisticsLocked(const std::string& table, int column)
      REQUIRES(ddl_mu_);
  Status CalibrateLocked(const os::CalibrationOptions& opts)
      REQUIRES(ddl_mu_);

  /// Appends one DDL record and forces it durable — DDL is a barrier, not
  /// part of group commit. No-op when the WAL is off.
  Status LogDdl(wal::WalRecordType type, std::string payload);
  /// Post-recovery derived state: indexes are rebuilt from the heaps (index
  /// pages are not logged) and row counts re-derived by scanning.
  Status RebuildAfterRecovery();

  void EmitTrace(const TraceEvent& ev) {
    TraceHook hook;
    {
      LockGuard lock(trace_mu_);
      hook = trace_hook_;
    }
    if (hook) hook(ev);
  }

  DatabaseOptions options_;
  os::VirtualClock clock_;

  /// Declared before the subsystems that hold pointers into them, so the
  /// registry and log are destroyed last.
  obs::MetricsRegistry metrics_;
  obs::DecisionLog decision_log_;
  obs::StatementRegistry statement_registry_;

  std::unique_ptr<os::MemoryEnv> memory_env_;
  std::unique_ptr<storage::DiskManager> disk_;
  /// Declared before the pool: the pool's flush barrier calls into the WAL,
  /// so the WAL must outlive any pool flush (including destruction).
  std::unique_ptr<wal::WalManager> wal_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<storage::PoolGovernor> pool_governor_;
  std::unique_ptr<exec::MemoryGovernor> memory_governor_;
  std::unique_ptr<exec::MplController> mpl_controller_;
  std::unique_ptr<exec::AdmissionGate> admission_gate_;
  std::unique_ptr<exec::ParallelismGovernor> parallel_governor_;
  std::unique_ptr<catalog::Catalog> catalog_;
  std::unique_ptr<txn::LockManager> lock_manager_;
  std::unique_ptr<txn::TransactionManager> txn_manager_;
  std::unique_ptr<wal::CheckpointGovernor> checkpoint_governor_;
  wal::RecoveryStats recovery_stats_;
  stats::StatsRegistry stats_;
  stats::ProcStatsRegistry proc_stats_;

  /// Statement-level DDL latch: queries and DML hold it shared, DDL holds
  /// it exclusive. Guarantees heap()/btree() pointers stay valid for the
  /// duration of a statement without per-row object locking.
  mutable RankedSharedMutex<LockRank::kCatalogDdl> ddl_mu_;

  /// Guards the lazily populated object maps below (lookup + creation).
  /// The mapped objects themselves carry their own latches.
  mutable RankedMutex<LockRank::kEngineObjects> objects_mu_;
  std::map<uint32_t, std::unique_ptr<table::TableHeap>> heaps_
      GUARDED_BY(objects_mu_);
  std::map<uint32_t, std::unique_ptr<index::BTree>> btrees_
      GUARDED_BY(objects_mu_);

  mutable RankedMutex<LockRank::kTraceHook> trace_mu_;
  TraceHook trace_hook_ GUARDED_BY(trace_mu_);
  NetConnectionProvider net_conn_provider_ GUARDED_BY(trace_mu_);
  std::atomic<int> connections_{0};
  std::atomic<uint64_t> next_conn_id_{1};

  // --- Telemetry (DESIGN.md §6) ---
  /// Virtual-table oid → sys table index (order of kSysTableNames).
  std::map<uint32_t, int> sys_tables_;

  struct ShapeStats {
    uint64_t count = 0;
    double total_micros = 0;
    uint64_t rows_returned = 0;
  };
  mutable RankedMutex<LockRank::kStatementShapes> shapes_mu_;
  std::map<std::string, ShapeStats> statement_shapes_ GUARDED_BY(shapes_mu_);

  // Statement counters and phase-latency histograms (registered in Init;
  // stable pointers for the Database's lifetime).
  obs::Counter* stmt_select_ = nullptr;
  obs::Counter* stmt_insert_ = nullptr;
  obs::Counter* stmt_update_ = nullptr;
  obs::Counter* stmt_delete_ = nullptr;
  obs::Counter* stmt_call_ = nullptr;
  obs::Counter* stmt_ddl_ = nullptr;
  obs::Counter* stmt_txn_ = nullptr;
  obs::Counter* stmt_explain_ = nullptr;
  obs::Counter* stmt_other_ = nullptr;
  obs::Counter* stmt_errors_ = nullptr;
  obs::LatencyHistogram* parse_hist_ = nullptr;
  obs::LatencyHistogram* optimize_hist_ = nullptr;
  obs::LatencyHistogram* execute_hist_ = nullptr;
  obs::Counter* exec_rows_scanned_ = nullptr;
  obs::Counter* exec_rows_output_ = nullptr;
  obs::Counter* exec_spilled_tuples_ = nullptr;
  obs::Counter* exec_partitions_evicted_ = nullptr;
  obs::Counter* exec_sort_runs_spilled_ = nullptr;
  obs::Counter* exec_group_by_spilled_groups_ = nullptr;
  obs::Counter* exec_spill_bytes_written_ = nullptr;
  obs::Counter* exec_spill_bytes_read_ = nullptr;
  obs::Counter* exec_spill_repartitions_ = nullptr;
  obs::Counter* exec_spill_decisions_ = nullptr;
  obs::Counter* exec_batches_ = nullptr;
  obs::Counter* exec_batch_rows_ = nullptr;
  obs::Counter* exec_batch_arena_bytes_ = nullptr;
  obs::Counter* exec_batch_cap_shrinks_ = nullptr;
  obs::Counter* exec_parallel_pipelines_ = nullptr;
  obs::Counter* exec_parallel_workers_started_ = nullptr;
  obs::Counter* exec_parallel_workers_revoked_ = nullptr;
  obs::Counter* exec_parallel_morsels_ = nullptr;
};

/// A client connection: SQL execution, per-connection plan cache,
/// autocommit transactions.
///
/// A Connection is single-threaded (one owning thread at a time), but any
/// number of Connections on the same Database may Execute concurrently.
/// Each top-level statement takes the database's DDL latch (shared or
/// exclusive) and — for queries/DML/CALL — an admission-gate slot bounded
/// by the current multiprogramming level.
class Connection {
 public:
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Parses and executes one statement. May block in the admission gate;
  /// returns kOverloaded if the queue wait times out.
  Result<QueryResult> Execute(const std::string& sql);

  /// EXPLAIN convenience: optimizes and renders without executing.
  Result<std::string> Explain(const std::string& select_sql);

  Database* database() { return db_; }
  const optimizer::PlanCache& plan_cache() const { return plan_cache_; }

  /// Stable id surfaced in sys.active_statements / sys.connections.
  uint64_t conn_id() const { return conn_id_; }
  /// True between an explicit BEGIN and its COMMIT/ROLLBACK. Owning-thread
  /// read only (net/ mirrors it into an atomic for sys.connections).
  bool in_explicit_txn() const { return txn_ != nullptr; }

  /// Network front end mode: the caller (a net/ worker) owns the
  /// statement-registry handle and installs the trace on its thread
  /// itself, so the trace also covers result serialization and
  /// write-backpressure stalls after Execute returns. Execute then skips
  /// Begin at depth 0 and attributes to the caller's installed trace.
  void set_external_statement_trace(bool external) {
    external_trace_ = external;
  }

 private:
  friend class Database;
  explicit Connection(Database* db);

  /// Dispatches a parsed statement. Assumes the caller already holds the
  /// appropriate DDL latch and admission slot (Execute at depth 0 does;
  /// procedure-body recursion inherits the outer statement's).
  ///
  /// Opted out of the analysis: the latch mode is branch-dependent —
  /// Execute takes ddl_mu_ exclusive for DDL, shared for everything
  /// else, and only the DDL branches here call REQUIRES(ddl_mu_)
  /// bodies. That dispatch invariant is not expressible to the strictly
  /// intra-procedural analysis (DESIGN.md §8.4); the runtime rank
  /// checker still covers the latch itself.
  Result<QueryResult> ExecuteParsed(StatementAst& stmt,
                                    const std::string& sql)
      NO_THREAD_SAFETY_ANALYSIS;

  Result<QueryResult> ExecuteSelect(
      const SelectAst& ast,
      const std::vector<std::pair<std::string, Value>>* params,
      const std::string& cache_key, QueryResult* out);
  /// EXPLAIN ANALYZE: executes the plan with per-operator instrumentation
  /// and renders actual rows/time/memory next to the estimates.
  Result<QueryResult> ExecuteExplainAnalyze(const SelectAst& ast,
                                            QueryResult* out);
  Result<QueryResult> ExecuteInsert(const InsertAst& ast);
  Result<QueryResult> ExecuteUpdate(const UpdateAst& ast);
  Result<QueryResult> ExecuteDelete(const DeleteAst& ast);
  Result<QueryResult> ExecuteCall(const CallAst& ast);

  /// Runs a single-table scan collecting matching (rid, row) pairs — the
  /// DML victim scan, planned by the heuristic bypass (paper §4.1).
  Result<std::vector<std::pair<Rid, table::Row>>> CollectDmlVictims(
      const optimizer::Query& scan, optimizer::OptimizeDiagnostics* diag);

  /// Transaction helpers (autocommit when no explicit BEGIN).
  txn::Transaction* CurrentTxn(bool* auto_started);
  Status FinishAuto(txn::Transaction* txn, bool auto_started, bool ok);
  Status ApplyUndo(const txn::UndoRecord& rec);
  /// Undo applier for Abort: runs ApplyUndo under a CLR TxnScope so the
  /// heap ops it performs log as compensation records of `txn`.
  txn::TransactionManager::UndoApplier MakeUndoApplier(txn::Transaction* txn);

  /// Index + statistics maintenance on DML.
  Status MaintainOnInsert(catalog::TableDef* table, Rid rid,
                          const table::Row& row);
  Status MaintainOnDelete(catalog::TableDef* table, Rid rid,
                          const table::Row& row);

  optimizer::OptimizerContext MakeOptimizerContext();

  Database* db_;
  /// Stable id surfaced in sys.active_statements (not the live count).
  uint64_t conn_id_ = 0;
  optimizer::PlanCache plan_cache_;
  txn::Transaction* txn_ = nullptr;  // explicit transaction, if any
  /// Scratch row reused by ApplyUndo across undo records (decode-into,
  /// no per-record allocation churn). Connections are single-threaded.
  table::Row undo_scratch_row_;
  /// Statement nesting depth: >0 inside a procedure body, where locks and
  /// the admission slot are inherited from the top-level statement.
  int exec_depth_ = 0;
  /// See set_external_statement_trace().
  bool external_trace_ = false;
  /// Trace events collected while the DDL latch is held; emitted by the
  /// top-level Execute after the latch drops, so a trace hook may itself
  /// execute SQL (the profiler's same-database sink does).
  std::vector<TraceEvent> pending_traces_;
};

}  // namespace hdb::engine

#endif  // HDB_ENGINE_DATABASE_H_
