#ifndef HDB_ENGINE_LEXER_H_
#define HDB_ENGINE_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace hdb::engine {

enum class TokenKind : uint8_t {
  kIdent,     // bare identifier or keyword (uppercased in `text`)
  kNumber,    // integer or decimal literal
  kString,    // quoted string, quotes stripped
  kParam,     // :name
  kSymbol,    // punctuation / operator in `text` ("<=", ",", "(", ...)
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // uppercased for idents/symbols; verbatim otherwise
  std::string raw;      // original spelling
  bool is_double = false;  // for kNumber
  size_t pos = 0;
};

/// Tokenizes a SQL string. Keywords are not distinguished from
/// identifiers at this level; the parser compares uppercased text.
Result<std::vector<Token>> Lex(const std::string& sql);

}  // namespace hdb::engine

#endif  // HDB_ENGINE_LEXER_H_
