#include "engine/database.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "common/ophash.h"
#include "obs/metric_names.h"
#include "table/row_codec.h"
#include "wal/ddl_record.h"

namespace hdb::engine {

namespace {

/// Row-materializer dispatch indexes for the sys.* virtual tables.
enum SysTable : int {
  kSysCounters = 0,
  kSysPool,
  kSysGovernors,
  kSysLocks,
  kSysStatements,
  kSysWal,
  kSysActiveStatements,
  kSysSlowStatements,
  kSysConnections,
};

/// HDB_WAL=OFF|off|0 disables the write-ahead log even on durable media —
/// the bench's no-WAL baseline and an escape hatch, not a tuning knob.
bool WalDisabledByEnv() {
  const char* env = std::getenv("HDB_WAL");
  if (env == nullptr) return false;
  const std::string_view v(env);
  return v == "OFF" || v == "off" || v == "0";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

double WallMicros() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t HashParams(const std::vector<Value>& args) {
  uint64_t h = 1469598103934665603ull;
  for (const Value& v : args) h = h * 1099511628211ull ^ v.Hash();
  return h;
}

/// Renders a value as a SQL literal (procedure DML substitution).
std::string ToSqlLiteral(const Value& v) {
  if (v.is_null()) return "NULL";
  if (v.type() == TypeId::kVarchar) {
    std::string out = "'";
    for (const char c : v.AsString()) {
      out += c;
      if (c == '\'') out += '\'';
    }
    out += "'";
    return out;
  }
  if (v.type() == TypeId::kBoolean) return v.AsBool() ? "TRUE" : "FALSE";
  return v.ToString();
}

/// RAII statement-nesting counter (see Connection::exec_depth_).
struct DepthGuard {
  explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
  ~DepthGuard() { --*depth_; }
  int* depth_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

Database::Database(DatabaseOptions options)
    : options_(options), statement_registry_(options_.statement_registry) {}

Database::~Database() {
  if (wal_ != nullptr && wal_->enabled()) {
    // Clean shutdown: checkpoint so the next open has (almost) no redo
    // work, then stop the flusher. Skipped on crashed media — errors here
    // would mask the fault-injection result, and recovery handles the rest.
    if (checkpoint_governor_ != nullptr && disk_->media() != nullptr &&
        !disk_->media()->crashed()) {
      IgnoreError(checkpoint_governor_->ForceCheckpoint("shutdown"));
    }
    wal_->Shutdown();
  }
}

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  auto db = std::unique_ptr<Database>(new Database(options));
  HDB_RETURN_IF_ERROR(db->Init());
  return db;
}

Status Database::Init() {
  memory_env_ =
      std::make_unique<os::MemoryEnv>(options_.physical_memory_bytes);

  std::unique_ptr<os::VirtualDisk> device;
  switch (options_.device) {
    case DeviceKind::kRotational:
      options_.rotational.page_bytes = options_.page_bytes;
      device = std::make_unique<os::RotationalDisk>(options_.rotational);
      break;
    case DeviceKind::kFlash:
      options_.flash.page_bytes = options_.page_bytes;
      device = std::make_unique<os::FlashDisk>(options_.flash);
      break;
    case DeviceKind::kNone:
      break;
  }
  disk_ = std::make_unique<storage::DiskManager>(
      options_.page_bytes, std::move(device), &clock_, options_.media);

  wal::WalOptions wal_opts = options_.wal;
  if (options_.media == nullptr || WalDisabledByEnv()) {
    wal_opts.enabled = false;
  }
  wal_ = std::make_unique<wal::WalManager>(disk_.get(), wal_opts);

  storage::BufferPoolOptions pool_opts;
  pool_opts.initial_frames = options_.initial_pool_frames;
  pool_ = std::make_unique<storage::BufferPool>(disk_.get(), pool_opts);
  pool_governor_ = std::make_unique<storage::PoolGovernor>(
      pool_.get(), memory_env_.get(), &clock_, options_.pool_governor);

  options_.memory_governor.max_pool_pages =
      std::max<uint64_t>(1, options_.pool_governor.max_bytes /
                                options_.page_bytes);
  memory_governor_ = std::make_unique<exec::MemoryGovernor>(
      pool_.get(), options_.memory_governor);

  mpl_controller_ = std::make_unique<exec::MplController>(
      memory_governor_.get(), &clock_, options_.mpl_controller);
  admission_gate_ = std::make_unique<exec::AdmissionGate>(
      memory_governor_.get(), options_.admission_gate);
  parallel_governor_ = std::make_unique<exec::ParallelismGovernor>(
      memory_governor_.get(), admission_gate_.get(), options_.parallel);

  catalog_ = std::make_unique<catalog::Catalog>();
  lock_manager_ = std::make_unique<txn::LockManager>(pool_.get());
  txn_manager_ = std::make_unique<txn::TransactionManager>(
      pool_.get(), lock_manager_.get());
  txn_manager_->SetWal(wal_.get());

  // Telemetry (DESIGN.md §6): every governor writes counters into the
  // shared registry and decisions into the shared ring, then the sys.*
  // virtual tables make both queryable from any connection.
  pool_governor_->AttachTelemetry(&metrics_, &decision_log_);
  memory_governor_->AttachTelemetry(&metrics_, &decision_log_, &clock_);
  mpl_controller_->AttachTelemetry(&metrics_, &decision_log_);
  admission_gate_->AttachTelemetry(&metrics_);
  parallel_governor_->AttachTelemetry(&decision_log_, &clock_);
  lock_manager_->AttachTelemetry(&metrics_);
  wal_->AttachTelemetry(&metrics_);
  RegisterEngineTelemetry();
  // Before recovery: sys.* tables consume the first catalog oids at every
  // open in the same order, so replayed user DDL (which carries forced
  // oids) lands past them identically.
  HDB_RETURN_IF_ERROR(RegisterSysTables());

  if (wal_->enabled()) {
    wal::Recovery recovery(disk_.get(), wal_.get(), catalog_.get());
    HDB_ASSIGN_OR_RETURN(recovery_stats_, recovery.Run());
    txn_manager_->SeedNextTxnId(recovery_stats_.max_txn_id + 1);
    HDB_RETURN_IF_ERROR(RebuildAfterRecovery());
    metrics_.RegisterCounter(obs::kRecoveryRuns)
        ->Add(recovery_stats_.log_found ? 1 : 0);
    metrics_.RegisterCounter(obs::kRecoveryRedoRecords)
        ->Add(recovery_stats_.redo_records);
    metrics_.RegisterCounter(obs::kRecoveryRedoSkipped)
        ->Add(recovery_stats_.redo_skipped);
    metrics_.RegisterCounter(obs::kRecoveryRedoBytes)
        ->Add(recovery_stats_.redo_bytes);
    metrics_.RegisterCounter(obs::kRecoveryUndoRecords)
        ->Add(recovery_stats_.undo_records);
    metrics_.RegisterCounter(obs::kRecoveryLoserTxns)
        ->Add(recovery_stats_.loser_txns);
    metrics_.RegisterCounter(obs::kRecoveryTornPages)
        ->Add(recovery_stats_.torn_pages);
  }

  // WAL-before-data: the pool may not write back a logged page whose
  // changes are not yet durable in the log. Unlogged pages (index, temp)
  // carry no LSN and bypass the barrier.
  pool_->SetFlushBarrier(
      [this](storage::Lsn lsn) { return wal_->EnsureDurable(lsn); });
  checkpoint_governor_ = std::make_unique<wal::CheckpointGovernor>(
      wal_.get(), pool_.get(), &clock_);
  checkpoint_governor_->AttachTelemetry(&metrics_, &decision_log_);
  if (wal_->enabled()) {
    if (recovery_stats_.log_found) {
      // Bound the next open's redo work to what happens after this point.
      HDB_RETURN_IF_ERROR(checkpoint_governor_->ForceCheckpoint("recovery"));
    }
    wal_->StartFlusher();
  }
  return Status::OK();
}

Status Database::RebuildAfterRecovery() {
  for (catalog::TableDef* def : catalog_->AllTables()) {
    if (def->is_virtual) continue;
    table::TableHeap* h = heap(def->oid);
    if (h == nullptr) continue;

    // Row count is derived state (not logged); the same scan feeds the
    // index rebuilds so each heap is read once.
    std::vector<std::pair<Rid, table::Row>> rows;
    Status decode_status = Status::OK();
    HDB_RETURN_IF_ERROR(h->ScanAll([&](Rid rid, std::string_view bytes) {
      auto row = table::DecodeRow(*def, bytes.data(), bytes.size());
      if (!row.ok()) {
        decode_status = row.status();
        return false;
      }
      rows.emplace_back(rid, std::move(*row));
      return true;
    }));
    HDB_RETURN_IF_ERROR(decode_status);
    def->row_count = rows.size();

    // Index pages are never logged: recovery leaves the replayed IndexDefs
    // rootless and each tree is rebuilt from its heap. (The pre-crash index
    // pages leak on the media — append-only allocation tolerates that.)
    for (catalog::IndexDef* idx : catalog_->TableIndexes(def->oid)) {
      auto tree = std::make_unique<index::BTree>(pool_.get(), idx);
      HDB_RETURN_IF_ERROR(tree->Init());
      for (const auto& [rid, row] : rows) {
        HDB_RETURN_IF_ERROR(
            tree->Insert(OrderPreservingHash(row[idx->column_indexes[0]]),
                         rid));
      }
      LockGuard lock(objects_mu_);
      btrees_[idx->oid] = std::move(tree);
    }
  }
  return Status::OK();
}

Status Database::LogDdl(wal::WalRecordType type, std::string payload) {
  if (!wal_->enabled()) return Status::OK();
  HDB_ASSIGN_OR_RETURN(const storage::Lsn lsn,
                       wal_->Append(type, 0, std::move(payload)));
  return wal_->EnsureDurable(lsn);
}

void Database::RegisterEngineTelemetry() {
  stmt_select_ = metrics_.RegisterCounter(obs::kStmtSelect);
  stmt_insert_ = metrics_.RegisterCounter(obs::kStmtInsert);
  stmt_update_ = metrics_.RegisterCounter(obs::kStmtUpdate);
  stmt_delete_ = metrics_.RegisterCounter(obs::kStmtDelete);
  stmt_call_ = metrics_.RegisterCounter(obs::kStmtCall);
  stmt_ddl_ = metrics_.RegisterCounter(obs::kStmtDdl);
  stmt_txn_ = metrics_.RegisterCounter(obs::kStmtTxn);
  stmt_explain_ = metrics_.RegisterCounter(obs::kStmtExplain);
  stmt_other_ = metrics_.RegisterCounter(obs::kStmtOther);
  stmt_errors_ = metrics_.RegisterCounter(obs::kStmtErrors);
  parse_hist_ = metrics_.RegisterHistogram(obs::kLatencyParseMicros);
  optimize_hist_ = metrics_.RegisterHistogram(obs::kLatencyOptimizeMicros);
  execute_hist_ = metrics_.RegisterHistogram(obs::kLatencyExecuteMicros);
  exec_rows_scanned_ = metrics_.RegisterCounter(obs::kExecRowsScanned);
  exec_rows_output_ = metrics_.RegisterCounter(obs::kExecRowsOutput);
  exec_spilled_tuples_ = metrics_.RegisterCounter(obs::kExecSpilledTuples);
  exec_partitions_evicted_ =
      metrics_.RegisterCounter(obs::kExecPartitionsEvicted);
  exec_sort_runs_spilled_ =
      metrics_.RegisterCounter(obs::kExecSortRunsSpilled);
  exec_group_by_spilled_groups_ =
      metrics_.RegisterCounter(obs::kExecGroupBySpilledGroups);
  exec_spill_bytes_written_ =
      metrics_.RegisterCounter(obs::kExecSpillBytesWritten);
  exec_spill_bytes_read_ = metrics_.RegisterCounter(obs::kExecSpillBytesRead);
  exec_spill_repartitions_ =
      metrics_.RegisterCounter(obs::kExecSpillRepartitions);
  exec_spill_decisions_ = metrics_.RegisterCounter(obs::kExecSpillDecisions);
  exec_batches_ = metrics_.RegisterCounter(obs::kExecBatches);
  exec_batch_rows_ = metrics_.RegisterCounter(obs::kExecBatchRows);
  exec_batch_arena_bytes_ = metrics_.RegisterCounter(obs::kExecBatchArenaBytes);
  exec_batch_cap_shrinks_ = metrics_.RegisterCounter(obs::kExecBatchCapShrinks);
  exec_parallel_pipelines_ =
      metrics_.RegisterCounter(obs::kExecParallelPipelines);
  exec_parallel_workers_started_ =
      metrics_.RegisterCounter(obs::kExecParallelWorkersStarted);
  exec_parallel_workers_revoked_ =
      metrics_.RegisterCounter(obs::kExecParallelWorkersRevoked);
  exec_parallel_morsels_ = metrics_.RegisterCounter(obs::kExecParallelMorsels);

  // Pull callbacks: the pool and the gate already maintain these under
  // their own latches, so the registry reads them at snapshot time instead
  // of double-counting.
  metrics_.RegisterCallback(obs::kPoolHits, [this] {
    return static_cast<double>(pool_->stats().hits);
  });
  metrics_.RegisterCallback(obs::kPoolMisses, [this] {
    return static_cast<double>(pool_->stats().misses);
  });
  metrics_.RegisterCallback(obs::kPoolEvictions, [this] {
    return static_cast<double>(pool_->stats().evictions);
  });
  metrics_.RegisterCallback(obs::kPoolHeapSteals, [this] {
    return static_cast<double>(pool_->stats().heap_steals);
  });
  metrics_.RegisterCallback(obs::kPoolLookasideReuses, [this] {
    return static_cast<double>(pool_->stats().lookaside_reuses);
  });
  metrics_.RegisterCallback(obs::kPoolCurrentFrames, [this] {
    return static_cast<double>(pool_->CurrentFrames());
  });
  metrics_.RegisterCallback(obs::kPoolPinnedFrames, [this] {
    return static_cast<double>(pool_->stats().pinned_frames);
  });
  metrics_.RegisterCallback(obs::kPoolFreeFrames, [this] {
    return static_cast<double>(pool_->stats().free_frames);
  });
  metrics_.RegisterCallback(obs::kPoolCurrentBytes, [this] {
    return static_cast<double>(pool_->CurrentBytes());
  });
  metrics_.RegisterCallback(obs::kGateAdmittedImmediately, [this] {
    return static_cast<double>(admission_gate_->stats().admitted_immediately);
  });
  metrics_.RegisterCallback(obs::kGateAdmittedAfterWait, [this] {
    return static_cast<double>(admission_gate_->stats().admitted_after_wait);
  });
  metrics_.RegisterCallback(obs::kGateTimedOut, [this] {
    return static_cast<double>(admission_gate_->stats().timed_out);
  });
  metrics_.RegisterCallback(obs::kGateActive, [this] {
    return static_cast<double>(admission_gate_->stats().active);
  });
  metrics_.RegisterCallback(obs::kGateWaiting, [this] {
    return static_cast<double>(admission_gate_->stats().waiting);
  });
  metrics_.RegisterCallback(obs::kGovDecisions, [this] {
    return static_cast<double>(decision_log_.total_recorded());
  });

  // Statement lifecycle tracing (DESIGN.md §11): the registry reads the
  // execute-latency histogram to auto-tune its slow-statement threshold.
  statement_registry_.AttachTelemetry(&metrics_, execute_hist_);
}

Status Database::RegisterSysTables() {
  using catalog::ColumnDef;
  const auto add = [this](const std::string& name,
                          std::vector<ColumnDef> cols, int which) -> Status {
    HDB_ASSIGN_OR_RETURN(catalog::TableDef * def,
                         catalog_->CreateVirtualTable(name, std::move(cols)));
    sys_tables_[def->oid] = which;
    return Status::OK();
  };
  HDB_RETURN_IF_ERROR(add("sys.counters",
                          {{"name", TypeId::kVarchar, false},
                           {"value", TypeId::kBigint, false}},
                          kSysCounters));
  HDB_RETURN_IF_ERROR(add("sys.pool",
                          {{"metric", TypeId::kVarchar, false},
                           {"value", TypeId::kBigint, false}},
                          kSysPool));
  HDB_RETURN_IF_ERROR(add("sys.governors",
                          {{"seq", TypeId::kBigint, false},
                           {"at_micros", TypeId::kBigint, false},
                           {"governor", TypeId::kVarchar, false},
                           {"action", TypeId::kVarchar, false},
                           {"reason", TypeId::kVarchar, false},
                           {"input", TypeId::kDouble, false},
                           {"output", TypeId::kDouble, false}},
                          kSysGovernors));
  HDB_RETURN_IF_ERROR(add("sys.locks",
                          {{"metric", TypeId::kVarchar, false},
                           {"value", TypeId::kBigint, false}},
                          kSysLocks));
  HDB_RETURN_IF_ERROR(add("sys.statements",
                          {{"shape", TypeId::kVarchar, false},
                           {"count", TypeId::kBigint, false},
                           {"total_micros", TypeId::kDouble, false},
                           {"avg_micros", TypeId::kDouble, false},
                           {"rows_returned", TypeId::kBigint, false}},
                          kSysStatements));
  HDB_RETURN_IF_ERROR(add("sys.wal",
                          {{"metric", TypeId::kVarchar, false},
                           {"value", TypeId::kBigint, false}},
                          kSysWal));
  // New sys tables go at the END: the oid-order comment in Init() — sys
  // tables consume the first catalog oids at every open in this exact
  // order, so appending keeps replayed user DDL landing past them.
  HDB_RETURN_IF_ERROR(add("sys.active_statements",
                          {{"stmt_id", TypeId::kBigint, false},
                           {"conn_id", TypeId::kBigint, false},
                           {"sql", TypeId::kVarchar, false},
                           {"current_span", TypeId::kVarchar, false},
                           {"elapsed_micros", TypeId::kBigint, false},
                           {"wait_admission_micros", TypeId::kBigint, false},
                           {"wait_lock_micros", TypeId::kBigint, false},
                           {"wait_wal_micros", TypeId::kBigint, false},
                           {"wait_spill_micros", TypeId::kBigint, false},
                           {"wait_pool_micros", TypeId::kBigint, false},
                           {"spilled_bytes", TypeId::kBigint, false},
                           {"quota_pages", TypeId::kBigint, false}},
                          kSysActiveStatements));
  HDB_RETURN_IF_ERROR(add("sys.slow_statements",
                          {{"stmt_id", TypeId::kBigint, false},
                           {"conn_id", TypeId::kBigint, false},
                           {"sql", TypeId::kVarchar, false},
                           {"ok", TypeId::kBoolean, false},
                           {"total_micros", TypeId::kBigint, false},
                           {"threshold_micros", TypeId::kBigint, false},
                           {"wait_admission_micros", TypeId::kBigint, false},
                           {"wait_lock_micros", TypeId::kBigint, false},
                           {"wait_wal_micros", TypeId::kBigint, false},
                           {"wait_spill_micros", TypeId::kBigint, false},
                           {"wait_pool_micros", TypeId::kBigint, false},
                           {"spilled_bytes", TypeId::kBigint, false},
                           {"rows_scanned", TypeId::kBigint, false},
                           {"rows_output", TypeId::kBigint, false},
                           {"spans", TypeId::kVarchar, false},
                           {"plan", TypeId::kVarchar, false}},
                          kSysSlowStatements));
  HDB_RETURN_IF_ERROR(add("sys.connections",
                          {{"conn_id", TypeId::kBigint, false},
                           {"peer", TypeId::kVarchar, false},
                           {"state", TypeId::kVarchar, false},
                           {"in_txn", TypeId::kBoolean, false},
                           {"prepared", TypeId::kBigint, false},
                           {"statements", TypeId::kBigint, false},
                           {"bytes_in", TypeId::kBigint, false},
                           {"bytes_out", TypeId::kBigint, false}},
                          kSysConnections));
  return Status::OK();
}

Result<std::vector<std::vector<Value>>> Database::VirtualTableRows(
    uint32_t oid) {
  const auto it = sys_tables_.find(oid);
  if (it == sys_tables_.end()) {
    return Status::Internal("unknown virtual table oid");
  }
  std::vector<std::vector<Value>> rows;
  switch (it->second) {
    case kSysCounters: {
      for (const obs::MetricSample& m : metrics_.Snapshot()) {
        if (m.kind == obs::MetricKind::kHistogram) {
          // Flatten histogram rollups into the (name, value) shape.
          rows.push_back({Value::String(m.name + ".count"),
                          Value::Bigint(static_cast<int64_t>(m.count))});
          rows.push_back({Value::String(m.name + ".mean"),
                          Value::Bigint(static_cast<int64_t>(m.value))});
          rows.push_back({Value::String(m.name + ".p50"),
                          Value::Bigint(static_cast<int64_t>(m.p50_micros))});
          rows.push_back({Value::String(m.name + ".p95"),
                          Value::Bigint(static_cast<int64_t>(m.p95_micros))});
          rows.push_back({Value::String(m.name + ".p99"),
                          Value::Bigint(static_cast<int64_t>(m.p99_micros))});
        } else {
          rows.push_back({Value::String(m.name),
                          Value::Bigint(static_cast<int64_t>(m.value))});
        }
      }
      break;
    }
    case kSysPool: {
      const storage::BufferPoolStats s = pool_->stats();
      const auto row = [&rows](const char* metric, uint64_t v) {
        rows.push_back({Value::String(metric),
                        Value::Bigint(static_cast<int64_t>(v))});
      };
      row("hits", s.hits);
      row("misses", s.misses);
      row("evictions", s.evictions);
      row("heap_steals", s.heap_steals);
      row("lookaside_reuses", s.lookaside_reuses);
      row("current_frames", s.current_frames);
      row("pinned_frames", s.pinned_frames);
      row("free_frames", s.free_frames);
      row("current_bytes", pool_->CurrentBytes());
      break;
    }
    case kSysGovernors: {
      for (const obs::Decision& d : decision_log_.Snapshot()) {
        rows.push_back({Value::Bigint(static_cast<int64_t>(d.seq)),
                        Value::Bigint(d.at_micros), Value::String(d.governor),
                        Value::String(d.action), Value::String(d.reason),
                        Value::Double(d.input), Value::Double(d.output)});
      }
      break;
    }
    case kSysLocks: {
      rows.push_back({Value::String("held"),
                      Value::Bigint(static_cast<int64_t>(
                          lock_manager_->held_locks()))});
      rows.push_back({Value::String("table_pages"),
                      Value::Bigint(static_cast<int64_t>(
                          lock_manager_->lock_table_pages()))});
      rows.push_back(
          {Value::String("conflicts"),
           Value::Bigint(static_cast<int64_t>(
               metrics_.RegisterCounter(obs::kLockConflicts)->value()))});
      break;
    }
    case kSysWal: {
      const auto row = [&rows](const char* metric, uint64_t v) {
        rows.push_back({Value::String(metric),
                        Value::Bigint(static_cast<int64_t>(v))});
      };
      const wal::WalStats ws = wal_->stats();
      row("enabled", wal_->enabled() ? 1 : 0);
      row("group_commit", wal_->group_commit() ? 1 : 0);
      row("appends", ws.appends);
      row("bytes", ws.bytes);
      row("fsyncs", ws.syncs);
      row("group_commit_batches", ws.group_batches);
      row("clr_records", ws.clr_records);
      row("appended_lsn", ws.appended_lsn);
      row("durable_lsn", ws.durable_lsn);
      row("bytes_since_checkpoint", ws.bytes_since_checkpoint);
      if (checkpoint_governor_ != nullptr) {
        const wal::CheckpointStats cs = checkpoint_governor_->stats();
        row("checkpoints", cs.checkpoints);
        row("checkpoint_pages_flushed", cs.pages_flushed);
        row("checkpoint_micros", cs.micros);
        row("checkpoint_target_log_bytes", cs.target_log_bytes);
      }
      row("recovery_redo_records", recovery_stats_.redo_records);
      row("recovery_undo_records", recovery_stats_.undo_records);
      row("recovery_loser_txns", recovery_stats_.loser_txns);
      row("recovery_torn_pages", recovery_stats_.torn_pages);
      break;
    }
    case kSysStatements: {
      LockGuard lock(shapes_mu_);
      for (const auto& [shape, s] : statement_shapes_) {
        rows.push_back(
            {Value::String(shape),
             Value::Bigint(static_cast<int64_t>(s.count)),
             Value::Double(s.total_micros),
             Value::Double(s.count == 0 ? 0 : s.total_micros / s.count),
             Value::Bigint(static_cast<int64_t>(s.rows_returned))});
      }
      break;
    }
    case kSysActiveStatements: {
      const uint64_t now = obs::TraceNowMicros();
      const auto big = [](uint64_t v) {
        return Value::Bigint(static_cast<int64_t>(v));
      };
      for (const auto& t : statement_registry_.ActiveSnapshot()) {
        rows.push_back(
            {big(t->stmt_id()), big(t->conn_id()), Value::String(t->shape()),
             Value::String(t->current_span()),
             big(now > t->start_micros() ? now - t->start_micros() : 0),
             big(t->wait_micros(obs::WaitCause::kAdmission)),
             big(t->wait_micros(obs::WaitCause::kLock)),
             big(t->wait_micros(obs::WaitCause::kWalDurable)),
             big(t->wait_micros(obs::WaitCause::kSpillWrite) +
                 t->wait_micros(obs::WaitCause::kSpillRead)),
             big(t->wait_micros(obs::WaitCause::kPoolMiss)),
             big(t->spilled_bytes()), big(t->quota_pages())});
      }
      break;
    }
    case kSysSlowStatements: {
      const auto big = [](uint64_t v) {
        return Value::Bigint(static_cast<int64_t>(v));
      };
      const auto wait = [&](const obs::SlowStatement& s, obs::WaitCause c) {
        return s.wait_micros[static_cast<size_t>(c)];
      };
      for (const obs::SlowStatement& s : statement_registry_.SlowSnapshot()) {
        rows.push_back(
            {big(s.stmt_id), big(s.conn_id), Value::String(s.shape),
             Value::Boolean(s.ok), big(s.total_micros),
             big(s.threshold_micros),
             big(wait(s, obs::WaitCause::kAdmission)),
             big(wait(s, obs::WaitCause::kLock)),
             big(wait(s, obs::WaitCause::kWalDurable)),
             big(wait(s, obs::WaitCause::kSpillWrite) +
                 wait(s, obs::WaitCause::kSpillRead)),
             big(wait(s, obs::WaitCause::kPoolMiss)), big(s.spilled_bytes),
             big(s.rows_scanned), big(s.rows_output),
             Value::String(s.span_tree), Value::String(s.plan)});
      }
      break;
    }
    case kSysConnections: {
      // Copy the provider under trace_mu_, invoke unlocked (the provider
      // takes the net server's mutex, which ranks below trace_mu_ — the
      // EmitTrace discipline). Empty when no network front end runs.
      NetConnectionProvider provider;
      {
        LockGuard lock(trace_mu_);
        provider = net_conn_provider_;
      }
      if (provider) {
        const auto big = [](uint64_t v) {
          return Value::Bigint(static_cast<int64_t>(v));
        };
        for (const NetConnectionInfo& c : provider()) {
          rows.push_back({big(c.conn_id), Value::String(c.peer),
                          Value::String(c.state), Value::Boolean(c.in_txn),
                          big(c.prepared), big(c.statements), big(c.bytes_in),
                          big(c.bytes_out)});
        }
      }
      break;
    }
  }
  return rows;
}

void Database::RecordStatementShape(const std::string& shape, double micros,
                                    uint64_t rows) {
  LockGuard lock(shapes_mu_);
  // Bounded: an adversarial workload of unique shapes must not grow the
  // map without limit.
  if (statement_shapes_.size() >= 512 &&
      statement_shapes_.find(shape) == statement_shapes_.end()) {
    return;
  }
  ShapeStats& s = statement_shapes_[shape];
  s.count++;
  s.total_micros += micros;
  s.rows_returned += rows;
}

std::string Database::TelemetrySnapshotJson() {
  char buf[256];
  std::string out = "{\n  \"metrics\": {";
  bool first = true;
  for (const obs::MetricSample& m : metrics_.Snapshot()) {
    if (!first) out += ",";
    first = false;
    if (m.kind == obs::MetricKind::kHistogram) {
      std::snprintf(buf, sizeof(buf),
                    "\n    \"%s\": {\"count\": %llu, \"mean_micros\": %.3f, "
                    "\"p50_micros\": %.1f, \"p95_micros\": %.1f, "
                    "\"p99_micros\": %.1f}",
                    m.name.c_str(), static_cast<unsigned long long>(m.count),
                    m.value, m.p50_micros, m.p95_micros, m.p99_micros);
    } else {
      std::snprintf(buf, sizeof(buf), "\n    \"%s\": %.17g", m.name.c_str(),
                    m.value);
    }
    out += buf;
  }
  out += "\n  },\n  \"decisions\": [";
  first = true;
  for (const obs::Decision& d : decision_log_.Snapshot()) {
    if (!first) out += ",";
    first = false;
    std::snprintf(
        buf, sizeof(buf),
        "\n    {\"seq\": %llu, \"at_micros\": %lld, \"governor\": \"%s\", "
        "\"action\": \"%s\", \"reason\": \"%s\", \"input\": %.17g, "
        "\"output\": %.17g}",
        static_cast<unsigned long long>(d.seq),
        static_cast<long long>(d.at_micros), d.governor.c_str(),
        d.action.c_str(), d.reason.c_str(), d.input, d.output);
    out += buf;
  }
  out += "\n  ],\n  \"statements\": [";
  first = true;
  {
    LockGuard lock(shapes_mu_);
    for (const auto& [shape, s] : statement_shapes_) {
      if (!first) out += ",";
      first = false;
      std::snprintf(buf, sizeof(buf),
                    ", \"count\": %llu, \"total_micros\": %.3f, "
                    "\"rows_returned\": %llu}",
                    static_cast<unsigned long long>(s.count), s.total_micros,
                    static_cast<unsigned long long>(s.rows_returned));
      out += "\n    {\"shape\": \"" + JsonEscape(shape) + "\"";
      out += buf;
    }
  }
  out += "\n  ]\n}";
  return out;
}

Result<std::unique_ptr<Connection>> Database::Connect() {
  connections_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Connection>(new Connection(this));
}

table::TableHeap* Database::heap(uint32_t table_oid) {
  LockGuard lock(objects_mu_);
  auto it = heaps_.find(table_oid);
  if (it != heaps_.end()) return it->second.get();
  auto def = catalog_->GetTableByOid(table_oid);
  if (!def.ok() || (*def)->is_virtual) return nullptr;
  auto heap = std::make_unique<table::TableHeap>(pool_.get(), *def, wal_.get());
  table::TableHeap* raw = heap.get();
  heaps_[table_oid] = std::move(heap);
  return raw;
}

index::BTree* Database::btree(uint32_t index_oid) {
  LockGuard lock(objects_mu_);
  auto it = btrees_.find(index_oid);
  return it == btrees_.end() ? nullptr : it->second.get();
}

const index::IndexStats* Database::index_stats(uint32_t index_oid) {
  index::BTree* tree = btree(index_oid);
  return tree == nullptr ? nullptr : &tree->stats();
}

optimizer::IndexStatsProvider Database::IndexStatsProvider() {
  return [this](uint32_t oid) { return index_stats(oid); };
}

optimizer::IndexProber Database::IndexProber() {
  return [this](uint32_t oid, double lo,
                double hi) -> std::optional<double> {
    index::BTree* tree = btree(oid);
    if (tree == nullptr || tree->stats().num_entries == 0) {
      return std::nullopt;
    }
    const auto count = tree->CountRange(lo, hi);
    if (!count.ok()) return std::nullopt;
    return static_cast<double>(*count) /
           static_cast<double>(tree->stats().num_entries);
  };
}

void Database::Tick(int64_t micros) {
  clock_.Advance(micros);
  pool_governor_->MaybePoll();
  // A raised MPL frees admission slots: wake queued requests.
  if (mpl_controller_->MaybeAdapt()) admission_gate_->Poke();
  if (checkpoint_governor_ != nullptr) checkpoint_governor_->MaybeCheckpoint();
}

Status Database::LoadTable(const std::string& table,
                           const std::vector<table::Row>& rows) {
  UniqueLock ddl(ddl_mu_);
  return LoadTableLocked(table, rows);
}

Status Database::LoadTableLocked(const std::string& table,
                                 const std::vector<table::Row>& rows) {
  HDB_ASSIGN_OR_RETURN(catalog::TableDef * def, catalog_->GetTable(table));
  if (def->is_virtual) {
    return Status::InvalidArgument("cannot LOAD into virtual table " + table);
  }
  table::TableHeap* h = heap(def->oid);
  const auto indexes = catalog_->TableIndexes(def->oid);
  // The whole load is one transaction in the WAL: its inserts log under
  // one txn id and the closing commit makes them durable in a single
  // barrier. Each insert also records an undo entry so a mid-load failure
  // rolls the partial load back for real — the deletes run under a CLR
  // scope, so the live database and a post-crash recovery agree the load
  // never happened.
  txn::Transaction* txn = txn_manager_->Begin();
  const Status load_status = [&]() -> Status {
    const wal::WalManager::TxnScope scope(txn->id());
    for (const table::Row& row : rows) {
      HDB_ASSIGN_OR_RETURN(const std::string bytes,
                           table::EncodeRow(*def, row));
      HDB_ASSIGN_OR_RETURN(const Rid rid, h->Insert(bytes));
      txn::UndoRecord undo;
      undo.op = txn::UndoOp::kInsert;
      undo.table_oid = def->oid;
      undo.rid = rid;
      undo.before_image.assign(bytes.begin(), bytes.end());
      txn->RecordUndo(std::move(undo));
      for (catalog::IndexDef* idx : indexes) {
        index::BTree* tree = btree(idx->oid);
        if (tree == nullptr) continue;
        const Value& key = row[idx->column_indexes[0]];
        HDB_RETURN_IF_ERROR(tree->Insert(OrderPreservingHash(key), rid));
      }
    }
    return Status::OK();
  }();
  if (!load_status.ok()) {
    // If an undo step itself fails, Abort returns without the kAbort
    // record and recovery classifies the transaction as a loser, undoing
    // the remainder from the log — both exits are consistent.
    table::Row undo_row;  // reused across undo records: decode-into, no churn
    IgnoreError(txn_manager_->Abort(txn, [&](const txn::UndoRecord& rec) -> Status {
      const wal::WalManager::TxnScope clr_scope(txn->id(), /*clr=*/true);
      const Status st = table::DecodeRowInto(*def, rec.before_image.data(),
                                             rec.before_image.size(), &undo_row);
      if (st.ok()) {
        for (catalog::IndexDef* idx : indexes) {
          index::BTree* tree = btree(idx->oid);
          if (tree == nullptr) continue;
          // Best-effort unhook: the row may never have been indexed.
          IgnoreError(tree->Remove(
              OrderPreservingHash(undo_row[idx->column_indexes[0]]), rec.rid));
        }
      }
      return h->Delete(rec.rid);
    }));
    return load_status;
  }
  HDB_RETURN_IF_ERROR(txn_manager_->Commit(txn));
  // LOAD TABLE (re)creates histograms for every column (paper §3.2).
  for (size_t c = 0; c < def->columns.size(); ++c) {
    HDB_RETURN_IF_ERROR(BuildStatisticsLocked(table, static_cast<int>(c)));
  }
  return Status::OK();
}

Status Database::BuildStatistics(const std::string& table, int column) {
  UniqueLock ddl(ddl_mu_);
  return BuildStatisticsLocked(table, column);
}

Status Database::BuildStatisticsLocked(const std::string& table, int column) {
  HDB_ASSIGN_OR_RETURN(catalog::TableDef * def, catalog_->GetTable(table));
  if (def->is_virtual) {
    return Status::InvalidArgument(
        "cannot build statistics on virtual table " + table);
  }
  if (column < 0 || column >= static_cast<int>(def->columns.size())) {
    return Status::InvalidArgument("bad column index");
  }
  table::TableHeap* h = heap(def->oid);
  std::vector<Value> values;
  values.reserve(def->row_count);
  Status scan_status = Status::OK();
  table::Row row;  // reused across rows: decode-into, no churn
  HDB_RETURN_IF_ERROR(h->ScanAll([&](Rid, std::string_view bytes) {
    const Status st =
        table::DecodeRowInto(*def, bytes.data(), bytes.size(), &row);
    if (!st.ok()) {
      scan_status = st;
      return false;
    }
    values.push_back(row[column]);
    return true;
  }));
  HDB_RETURN_IF_ERROR(scan_status);
  stats_.BuildColumn(*def, column, values);
  return Status::OK();
}

Status Database::Calibrate(const os::CalibrationOptions& opts) {
  UniqueLock ddl(ddl_mu_);
  return CalibrateLocked(opts);
}

Status Database::CalibrateLocked(const os::CalibrationOptions& opts) {
  os::VirtualDisk* device = disk_->device();
  if (device == nullptr) {
    return Status::NotSupported("no device attached to calibrate");
  }
  catalog_->SetDttModel(os::CalibrateDisk(*device, opts));
  return Status::OK();
}

Status Database::CreateTableImpl(const CreateTableAst& ast) {
  std::vector<catalog::ColumnDef> cols;
  for (const auto& c : ast.columns) {
    cols.push_back(catalog::ColumnDef{c.name, c.type, !c.not_null});
  }
  HDB_ASSIGN_OR_RETURN(catalog::TableDef * def,
                       catalog_->CreateTable(ast.name, std::move(cols)));
  HDB_RETURN_IF_ERROR(LogDdl(wal::WalRecordType::kDdlCreateTable,
                             wal::EncodeDdlCreateTable(*def)));
  for (const auto& fk : ast.foreign_keys) {
    HDB_ASSIGN_OR_RETURN(catalog::TableDef * ref,
                         catalog_->GetTable(fk.ref_table));
    catalog::ForeignKey cfk;
    cfk.table_oid = def->oid;
    cfk.column_index = def->ColumnIndex(fk.column);
    cfk.ref_table_oid = ref->oid;
    cfk.ref_column_index = ref->ColumnIndex(fk.ref_column);
    if (cfk.column_index < 0 || cfk.ref_column_index < 0) {
      return Status::InvalidArgument("foreign key column not found");
    }
    HDB_RETURN_IF_ERROR(catalog_->AddForeignKey(cfk));
    HDB_RETURN_IF_ERROR(LogDdl(wal::WalRecordType::kDdlForeignKey,
                               wal::EncodeDdlForeignKey(cfk)));
  }
  return Status::OK();
}

Status Database::CreateIndexImpl(const CreateIndexAst& ast) {
  HDB_ASSIGN_OR_RETURN(catalog::TableDef * def, catalog_->GetTable(ast.table));
  std::vector<int> cols;
  for (const std::string& name : ast.columns) {
    const int c = def->ColumnIndex(name);
    if (c < 0) return Status::NotFound("column " + name);
    cols.push_back(c);
  }
  HDB_ASSIGN_OR_RETURN(
      catalog::IndexDef * idx,
      catalog_->CreateIndex(ast.name, ast.table, cols, ast.unique));
  HDB_RETURN_IF_ERROR(LogDdl(wal::WalRecordType::kDdlCreateIndex,
                             wal::EncodeDdlCreateIndex(*idx)));
  auto tree = std::make_unique<index::BTree>(pool_.get(), idx);
  HDB_RETURN_IF_ERROR(tree->Init());

  // Populate from existing rows.
  table::TableHeap* h = heap(def->oid);
  Status status = Status::OK();
  table::Row row;  // reused across rows: decode-into, no churn
  HDB_RETURN_IF_ERROR(h->ScanAll([&](Rid rid, std::string_view bytes) {
    const Status st =
        table::DecodeRowInto(*def, bytes.data(), bytes.size(), &row);
    if (!st.ok()) {
      status = st;
      return false;
    }
    const Value& key = row[cols[0]];
    if (idx->unique) {
      auto exists = tree->Contains(OrderPreservingHash(key));
      if (exists.ok() && *exists) {
        // A unique index over existing duplicates: tolerate (collisions on
        // the hash make exactness impossible anyway); real enforcement
        // happens on DML via value comparison.
      }
    }
    status = tree->Insert(OrderPreservingHash(key), rid);
    return status.ok();
  }));
  HDB_RETURN_IF_ERROR(status);
  {
    LockGuard lock(objects_mu_);
    btrees_[idx->oid] = std::move(tree);
  }

  // Index creation also creates the leading column's histogram (§3.2).
  return BuildStatisticsLocked(ast.table, cols[0]);
}

Status Database::DropTableImpl(const std::string& name) {
  HDB_ASSIGN_OR_RETURN(catalog::TableDef * def, catalog_->GetTable(name));
  const uint32_t oid = def->oid;
  // Log-before-apply, like every other DDL path: the drop record is made
  // durable before any in-memory state changes, so a crash can only lose
  // the whole drop — it can never resurrect a table the live catalog
  // already forgot, nor leave the catalog diverged from the log after a
  // failed append.
  HDB_RETURN_IF_ERROR(LogDdl(wal::WalRecordType::kDdlDropTable,
                             wal::EncodeDdlDropName(name)));
  {
    LockGuard lock(objects_mu_);
    for (catalog::IndexDef* idx : catalog_->TableIndexes(oid)) {
      btrees_.erase(idx->oid);
    }
    heaps_.erase(oid);
  }
  stats_.DropTable(oid);
  return catalog_->DropTable(name);
}

Status Database::DropIndexImpl(const std::string& name) {
  HDB_ASSIGN_OR_RETURN(catalog::IndexDef * idx, catalog_->GetIndex(name));
  const uint32_t oid = idx->oid;
  // Log-before-apply; see DropTableImpl.
  HDB_RETURN_IF_ERROR(LogDdl(wal::WalRecordType::kDdlDropIndex,
                             wal::EncodeDdlDropName(name)));
  {
    LockGuard lock(objects_mu_);
    btrees_.erase(oid);
  }
  return catalog_->DropIndex(name);
}

// ---------------------------------------------------------------------------
// Connection
// ---------------------------------------------------------------------------

Connection::Connection(Database* db)
    : db_(db),
      conn_id_(db->next_conn_id_.fetch_add(1, std::memory_order_relaxed)),
      plan_cache_(db->options().plan_cache) {}

Connection::~Connection() {
  if (txn_ != nullptr) {
    // Rollback touches table heaps: hold the DDL latch shared like any
    // other statement would.
    SharedLock ddl(db_->ddl_mu_);
    // Destructor rollback is best-effort (no error channel); if an undo
    // step fails, recovery finishes the job from the log.
    IgnoreError(db_->txn_manager().Abort(txn_, MakeUndoApplier(txn_)));
  }
  db_->connections_.fetch_sub(1, std::memory_order_relaxed);
}

txn::TransactionManager::UndoApplier Connection::MakeUndoApplier(
    txn::Transaction* txn) {
  return [this, id = txn->id()](const txn::UndoRecord& rec) {
    const wal::WalManager::TxnScope scope(id, /*clr=*/true);
    return ApplyUndo(rec);
  };
}

optimizer::OptimizerContext Connection::MakeOptimizerContext() {
  optimizer::OptimizerContext ctx;
  ctx.catalog = &db_->catalog();
  ctx.stats = &db_->stats();
  ctx.pool = &db_->pool();
  ctx.index_stats = db_->IndexStatsProvider();
  ctx.index_prober = db_->IndexProber();
  ctx.predicted_soft_limit_pages =
      static_cast<double>(db_->memory_governor().PredictedSoftLimitPages());
  ctx.governor = db_->options().optimizer_governor;
  ctx.arena_budget_bytes = db_->options().optimizer_arena_bytes;
  ctx.parallel_max_workers = db_->options().parallel.max_workers;
  ctx.parallel_rows_per_worker = db_->options().parallel.rows_per_worker;
  ctx.parallel_min_table_rows = db_->options().parallel.min_table_rows;
  return ctx;
}

txn::Transaction* Connection::CurrentTxn(bool* auto_started) {
  if (txn_ != nullptr) {
    *auto_started = false;
    return txn_;
  }
  *auto_started = true;
  return db_->txn_manager().Begin();
}

Status Connection::FinishAuto(txn::Transaction* txn, bool auto_started,
                              bool ok) {
  if (!auto_started) return Status::OK();
  if (ok) {
    // Covers commit bookkeeping + the WAL WaitDurable underneath.
    obs::ScopedSpan commit_span(obs::kSpanCommit);
    return db_->txn_manager().Commit(txn);
  }
  return db_->txn_manager().Abort(txn, MakeUndoApplier(txn));
}

Status Connection::MaintainOnInsert(catalog::TableDef* table, Rid rid,
                                    const table::Row& row) {
  for (catalog::IndexDef* idx : db_->catalog().TableIndexes(table->oid)) {
    index::BTree* tree = db_->btree(idx->oid);
    if (tree == nullptr) continue;
    HDB_RETURN_IF_ERROR(
        tree->Insert(OrderPreservingHash(row[idx->column_indexes[0]]), rid));
  }
  for (size_t c = 0; c < row.size(); ++c) {
    db_->stats().OnInsertValue(table->oid, static_cast<int>(c), row[c]);
  }
  return Status::OK();
}

Status Connection::MaintainOnDelete(catalog::TableDef* table, Rid rid,
                                    const table::Row& row) {
  for (catalog::IndexDef* idx : db_->catalog().TableIndexes(table->oid)) {
    index::BTree* tree = db_->btree(idx->oid);
    if (tree == nullptr) continue;
    // Index unhook is best-effort: a missing entry means nothing to remove.
    IgnoreError(
        tree->Remove(OrderPreservingHash(row[idx->column_indexes[0]]), rid));
  }
  for (size_t c = 0; c < row.size(); ++c) {
    db_->stats().OnDeleteValue(table->oid, static_cast<int>(c), row[c]);
  }
  return Status::OK();
}

Status Connection::ApplyUndo(const txn::UndoRecord& rec) {
  HDB_ASSIGN_OR_RETURN(catalog::TableDef * table,
                       db_->catalog().GetTableByOid(rec.table_oid));
  table::TableHeap* h = db_->heap(rec.table_oid);
  // One scratch row serves every decode in this record: each image is
  // consumed (index maintenance) before the next decode overwrites it.
  table::Row& row = undo_scratch_row_;
  switch (rec.op) {
    case txn::UndoOp::kInsert: {
      HDB_RETURN_IF_ERROR(table::DecodeRowInto(
          *table, rec.before_image.data(), rec.before_image.size(), &row));
      HDB_RETURN_IF_ERROR(MaintainOnDelete(table, rec.rid, row));
      return h->Delete(rec.rid);
    }
    case txn::UndoOp::kDelete: {
      HDB_ASSIGN_OR_RETURN(
          const Rid rid,
          h->Insert(std::string_view(rec.before_image.data(),
                                     rec.before_image.size())));
      HDB_RETURN_IF_ERROR(table::DecodeRowInto(
          *table, rec.before_image.data(), rec.before_image.size(), &row));
      return MaintainOnInsert(table, rid, row);
    }
    case txn::UndoOp::kUpdate: {
      HDB_ASSIGN_OR_RETURN(const std::string cur_bytes, h->Get(rec.rid));
      HDB_RETURN_IF_ERROR(table::DecodeRowInto(*table, cur_bytes.data(),
                                               cur_bytes.size(), &row));
      HDB_RETURN_IF_ERROR(MaintainOnDelete(table, rec.rid, row));
      HDB_ASSIGN_OR_RETURN(
          const Rid new_rid,
          h->Update(rec.rid, std::string_view(rec.before_image.data(),
                                              rec.before_image.size())));
      HDB_RETURN_IF_ERROR(table::DecodeRowInto(
          *table, rec.before_image.data(), rec.before_image.size(), &row));
      return MaintainOnInsert(table, new_rid, row);
    }
  }
  return Status::Internal("unknown undo op");
}

Result<std::vector<std::pair<Rid, table::Row>>> Connection::CollectDmlVictims(
    const optimizer::Query& scan, optimizer::OptimizeDiagnostics* diag) {
  optimizer::Optimizer opt(MakeOptimizerContext());
  HDB_ASSIGN_OR_RETURN(optimizer::PlanPtr plan,
                       opt.Optimize(scan, /*allow_bypass=*/true, diag));
  // Find the scan node under the (Project) root.
  const optimizer::PlanNode* node = plan.get();
  while (node->kind != optimizer::PlanKind::kSeqScan &&
         node->kind != optimizer::PlanKind::kIndexScan) {
    if (node->children.empty()) {
      return Status::Internal("DML plan has no scan");
    }
    node = node->children[0].get();
  }
  const catalog::TableDef* table = scan.quantifiers[0].table;
  table::TableHeap* h = db_->heap(table->oid);

  std::vector<std::pair<Rid, table::Row>> victims;
  optimizer::RowContext ctx;
  ctx.rows.assign(1, nullptr);

  // Decode into one scratch row; only rows surviving the residual are
  // copied into `victims`, so filtered-out rows allocate nothing.
  table::Row row;
  auto consider = [&](Rid rid, std::string_view bytes) -> Result<bool> {
    HDB_RETURN_IF_ERROR(
        table::DecodeRowInto(*table, bytes.data(), bytes.size(), &row));
    ctx.rows[0] = &row;
    if (node->residual != nullptr) {
      HDB_ASSIGN_OR_RETURN(const bool ok,
                           node->residual->EvaluatesToTrue(ctx));
      if (!ok) return false;
    }
    victims.emplace_back(rid, row);
    return true;
  };

  if (node->kind == optimizer::PlanKind::kIndexScan) {
    index::BTree* tree = db_->btree(node->index->oid);
    if (tree == nullptr) return Status::Internal("missing index");
    std::vector<Rid> rids;
    const double lo = node->index_lo.value_or(
        -std::numeric_limits<double>::infinity());
    const double hi =
        node->index_hi.value_or(std::numeric_limits<double>::infinity());
    HDB_RETURN_IF_ERROR(tree->ScanRange(lo, node->index_lo_inclusive, hi,
                                        node->index_hi_inclusive,
                                        [&rids](double, Rid rid) {
                                          rids.push_back(rid);
                                          return true;
                                        }));
    for (const Rid rid : rids) {
      HDB_ASSIGN_OR_RETURN(const std::string bytes, h->Get(rid));
      HDB_RETURN_IF_ERROR(consider(rid, bytes).status());
    }
  } else {
    Status inner = Status::OK();
    HDB_RETURN_IF_ERROR(h->ScanAll([&](Rid rid, std::string_view bytes) {
      auto r = consider(rid, bytes);
      if (!r.ok()) {
        inner = r.status();
        return false;
      }
      return true;
    }));
    HDB_RETURN_IF_ERROR(inner);
  }
  return victims;
}

Result<QueryResult> Connection::ExecuteSelect(
    const SelectAst& ast,
    const std::vector<std::pair<std::string, Value>>* params,
    const std::string& cache_key, QueryResult* out) {
  Binder binder(&db_->catalog());
  HDB_ASSIGN_OR_RETURN(optimizer::Query q, binder.BindSelect(ast));

  auto task = db_->memory_governor().BeginTask();

  std::shared_ptr<const optimizer::PlanNode> plan_to_run;
  if (cache_key.empty()) {
    // Re-optimize at every invocation (paper §4.1).
    const double opt_start = WallMicros();
    obs::ScopedSpan optimize_span(obs::kSpanOptimize);
    optimizer::Optimizer opt(MakeOptimizerContext());
    HDB_ASSIGN_OR_RETURN(optimizer::PlanPtr plan,
                         opt.Optimize(q, /*allow_bypass=*/false, &out->diag));
    db_->optimize_hist_->Record(
        static_cast<uint64_t>(std::max(0.0, WallMicros() - opt_start)));
    plan_to_run = std::shared_ptr<const optimizer::PlanNode>(std::move(plan));
  } else {
    const auto decision = plan_cache_.OnInvocation(cache_key);
    if (decision.action == optimizer::PlanCache::Action::kUseCached) {
      plan_to_run = decision.plan;
      out->used_cached_plan = true;
    } else {
      const double opt_start = WallMicros();
      obs::ScopedSpan optimize_span(obs::kSpanOptimize);
      optimizer::Optimizer opt(MakeOptimizerContext());
      HDB_ASSIGN_OR_RETURN(
          optimizer::PlanPtr plan,
          opt.Optimize(q, /*allow_bypass=*/false, &out->diag));
      db_->optimize_hist_->Record(
          static_cast<uint64_t>(std::max(0.0, WallMicros() - opt_start)));
      plan_to_run = plan_cache_.OnPlanReady(
          cache_key,
          std::shared_ptr<const optimizer::PlanNode>(std::move(plan)));
    }
  }

  // Feedback from a sys.* scan would pollute column statistics with
  // telemetry rows that have no backing histograms.
  bool any_virtual = false;
  for (const optimizer::Quantifier& quant : q.quantifiers) {
    if (quant.table != nullptr && quant.table->is_virtual) any_virtual = true;
  }

  stats::FeedbackCollector feedback;
  exec::ExecContext ec;
  ec.pool = &db_->pool();
  ec.table_heap = [this](uint32_t oid) { return db_->heap(oid); };
  ec.index = [this](uint32_t oid) { return db_->btree(oid); };
  ec.virtual_rows = [this](uint32_t oid) {
    return db_->VirtualTableRows(oid);
  };
  ec.feedback =
      db_->options().auto_feedback && !any_virtual ? &feedback : nullptr;
  ec.memory = task.get();
  ec.num_quantifiers = q.quantifiers.size();
  ec.params = params;
  ec.batch_cap = db_->options().exec_batch_cap;
  if (db_->options().parallel.max_workers > 1) {
    ec.parallel = &db_->parallel_governor();
  }

  HDB_ASSIGN_OR_RETURN(out->rows,
                       exec::ExecuteToRows(plan_to_run.get(), &ec));
  // Victim picks live in the task context (the scheduler made them, not
  // an operator); fold them into the statement's stats before copying.
  if (ec.memory != nullptr) {
    ec.stats.spill_decisions = ec.memory->spill_decisions();
  }
  out->exec_stats = ec.stats;
  if (obs::StatementTrace* trace = obs::CurrentStatementTrace();
      trace != nullptr) {
    trace->SetQuotaPages(db_->memory_governor().SoftLimitPages());
    trace->SetRows(ec.stats.rows_scanned, ec.stats.rows_output);
    // Materializing the plan text costs an allocation per statement, so
    // only statements already past the slow threshold pay for it.
    const uint64_t elapsed = obs::TraceNowMicros() - trace->start_micros();
    if (db_->statement_registry().LikelySlow(elapsed)) {
      trace->SetPlan(plan_to_run->Explain(0, nullptr));
    }
  }
  for (const auto& item : q.select) out->columns.push_back(item.name);
  if (ec.feedback != nullptr) feedback.Flush(&db_->stats());
  db_->exec_rows_scanned_->Add(ec.stats.rows_scanned);
  db_->exec_rows_output_->Add(ec.stats.rows_output);
  db_->exec_spilled_tuples_->Add(ec.stats.hash_spilled_tuples);
  db_->exec_partitions_evicted_->Add(ec.stats.hash_partitions_evicted);
  db_->exec_sort_runs_spilled_->Add(ec.stats.sort_runs_spilled);
  db_->exec_group_by_spilled_groups_->Add(ec.stats.group_by_spilled_groups);
  db_->exec_spill_bytes_written_->Add(ec.stats.spill_bytes_written);
  db_->exec_spill_bytes_read_->Add(ec.stats.spill_bytes_read);
  db_->exec_spill_repartitions_->Add(ec.stats.spill_repartitions);
  db_->exec_spill_decisions_->Add(ec.stats.spill_decisions);
  db_->exec_batches_->Add(ec.stats.batches);
  db_->exec_batch_rows_->Add(ec.stats.batch_rows);
  db_->exec_batch_arena_bytes_->Add(ec.stats.batch_arena_peak_bytes);
  db_->exec_batch_cap_shrinks_->Add(ec.stats.batch_cap_shrinks);
  db_->exec_parallel_pipelines_->Add(ec.stats.parallel_pipelines);
  db_->exec_parallel_workers_started_->Add(ec.stats.parallel_workers_started);
  db_->exec_parallel_workers_revoked_->Add(ec.stats.parallel_workers_revoked);
  db_->exec_parallel_morsels_->Add(ec.stats.parallel_morsels);
  // Move, don't copy: the caller re-assigns the returned value into *out,
  // so the result set (possibly large) takes two moves instead of a deep
  // copy per row.
  return std::move(*out);
}

Result<QueryResult> Connection::ExecuteExplainAnalyze(const SelectAst& ast,
                                                      QueryResult* out) {
  Binder binder(&db_->catalog());
  HDB_ASSIGN_OR_RETURN(optimizer::Query q, binder.BindSelect(ast));

  auto task = db_->memory_governor().BeginTask();
  optimizer::Optimizer opt(MakeOptimizerContext());
  HDB_ASSIGN_OR_RETURN(optimizer::PlanPtr plan,
                       opt.Optimize(q, /*allow_bypass=*/false, &out->diag));

  bool any_virtual = false;
  for (const optimizer::Quantifier& quant : q.quantifiers) {
    if (quant.table != nullptr && quant.table->is_virtual) any_virtual = true;
  }

  stats::FeedbackCollector feedback;
  optimizer::OpActualsMap actuals;
  exec::ExecContext ec;
  ec.pool = &db_->pool();
  ec.table_heap = [this](uint32_t oid) { return db_->heap(oid); };
  ec.index = [this](uint32_t oid) { return db_->btree(oid); };
  ec.virtual_rows = [this](uint32_t oid) {
    return db_->VirtualTableRows(oid);
  };
  ec.feedback =
      db_->options().auto_feedback && !any_virtual ? &feedback : nullptr;
  ec.memory = task.get();
  ec.num_quantifiers = q.quantifiers.size();
  ec.actuals = &actuals;
  ec.batch_cap = db_->options().exec_batch_cap;
  if (db_->options().parallel.max_workers > 1) {
    ec.parallel = &db_->parallel_governor();
  }

  // The statement runs in full; the result set is discarded and the
  // annotated plan is the output (estimates vs. actuals, §4's cost-model
  // validation loop made visible).
  HDB_ASSIGN_OR_RETURN(const auto rows, exec::ExecuteToRows(plan.get(), &ec));
  out->rows_affected = rows.size();
  if (ec.memory != nullptr) {
    ec.stats.spill_decisions = ec.memory->spill_decisions();
  }
  out->exec_stats = ec.stats;
  out->explain = plan->Explain(0, &actuals);
  if (ec.feedback != nullptr) feedback.Flush(&db_->stats());
  return std::move(*out);
}

Result<QueryResult> Connection::ExecuteInsert(const InsertAst& ast) {
  Binder binder(&db_->catalog());
  HDB_ASSIGN_OR_RETURN(BoundInsert bound, binder.BindInsert(ast));
  table::TableHeap* h = db_->heap(bound.table->oid);

  bool auto_started = false;
  txn::Transaction* txn = CurrentTxn(&auto_started);
  // Heap mutations below log WAL records under this statement's txn id.
  const wal::WalManager::TxnScope wal_scope(txn->id());
  QueryResult out;
  for (const table::Row& row : bound.rows) {
    auto status = [&]() -> Status {
      HDB_ASSIGN_OR_RETURN(const std::string bytes,
                           table::EncodeRow(*bound.table, row));
      HDB_ASSIGN_OR_RETURN(const Rid rid, h->Insert(bytes));
      const uint64_t key = txn::LockManager::RowKey(bound.table->oid, rid);
      HDB_RETURN_IF_ERROR(db_->lock_manager().LockRow(
          txn->id(), bound.table->oid, rid, txn::LockMode::kExclusive));
      txn->RecordLock(key);
      txn::UndoRecord undo;
      undo.op = txn::UndoOp::kInsert;
      undo.table_oid = bound.table->oid;
      undo.rid = rid;
      undo.before_image.assign(bytes.begin(), bytes.end());
      txn->RecordUndo(std::move(undo));
      HDB_RETURN_IF_ERROR(MaintainOnInsert(bound.table, rid, row));
      HDB_RETURN_IF_ERROR(
          db_->txn_manager().AppendRedo(txn->id(), "I " + bytes));
      return Status::OK();
    }();
    if (!status.ok()) {
      // The statement's own error wins; an abort-side failure is
      // finished by recovery from the log.
      IgnoreError(FinishAuto(txn, auto_started, /*ok=*/false));
      return status;
    }
    out.rows_affected++;
  }
  HDB_RETURN_IF_ERROR(FinishAuto(txn, auto_started, /*ok=*/true));
  return out;
}

Result<QueryResult> Connection::ExecuteUpdate(const UpdateAst& ast) {
  Binder binder(&db_->catalog());
  HDB_ASSIGN_OR_RETURN(BoundUpdate bound, binder.BindUpdate(ast));
  QueryResult out;
  HDB_ASSIGN_OR_RETURN(auto victims, CollectDmlVictims(bound.scan, &out.diag));
  table::TableHeap* h = db_->heap(bound.table->oid);

  bool auto_started = false;
  txn::Transaction* txn = CurrentTxn(&auto_started);
  const wal::WalManager::TxnScope wal_scope(txn->id());
  for (const auto& [rid, old_row] : victims) {
    auto status = [&, rid = rid, &old_row = old_row]() -> Status {
      HDB_RETURN_IF_ERROR(db_->lock_manager().LockRow(
          txn->id(), bound.table->oid, rid, txn::LockMode::kExclusive));
      txn->RecordLock(txn::LockManager::RowKey(bound.table->oid, rid));

      table::Row new_row = old_row;
      optimizer::RowContext ctx;
      ctx.rows.assign(1, &old_row);
      for (const auto& [col, expr] : bound.sets) {
        HDB_ASSIGN_OR_RETURN(const Value v, expr->Evaluate(ctx));
        HDB_ASSIGN_OR_RETURN(
            new_row[col],
            CoerceValue(v, bound.table->columns[col].type));
      }
      HDB_ASSIGN_OR_RETURN(const std::string old_bytes,
                           table::EncodeRow(*bound.table, old_row));
      HDB_ASSIGN_OR_RETURN(const std::string new_bytes,
                           table::EncodeRow(*bound.table, new_row));

      txn::UndoRecord undo;
      undo.op = txn::UndoOp::kUpdate;
      undo.table_oid = bound.table->oid;
      undo.rid = rid;
      undo.before_image.assign(old_bytes.begin(), old_bytes.end());

      HDB_ASSIGN_OR_RETURN(const Rid new_rid, h->Update(rid, new_bytes));
      undo.rid = new_rid;  // undo targets wherever the row lives now
      txn->RecordUndo(std::move(undo));

      // Index maintenance: re-key where the key or location changed.
      for (catalog::IndexDef* idx :
           db_->catalog().TableIndexes(bound.table->oid)) {
        index::BTree* tree = db_->btree(idx->oid);
        if (tree == nullptr) continue;
        const double old_key =
            OrderPreservingHash(old_row[idx->column_indexes[0]]);
        const double new_key =
            OrderPreservingHash(new_row[idx->column_indexes[0]]);
        if (old_key != new_key || !(rid == new_rid)) {
          // Best-effort unhook, as in MaintainOnDelete.
          IgnoreError(tree->Remove(old_key, rid));
          HDB_RETURN_IF_ERROR(tree->Insert(new_key, new_rid));
        }
      }
      // Histogram maintenance for changed columns (paper §3.2: UPDATE
      // statements update the histograms for the modified columns).
      for (size_t c = 0; c < new_row.size(); ++c) {
        if (old_row[c].Compare(new_row[c]) != 0) {
          db_->stats().OnDeleteValue(bound.table->oid, static_cast<int>(c),
                                     old_row[c]);
          db_->stats().OnInsertValue(bound.table->oid, static_cast<int>(c),
                                     new_row[c]);
        }
      }
      return db_->txn_manager().AppendRedo(txn->id(), "U " + new_bytes);
    }();
    if (!status.ok()) {
      // The statement's own error wins; an abort-side failure is
      // finished by recovery from the log.
      IgnoreError(FinishAuto(txn, auto_started, /*ok=*/false));
      return status;
    }
    out.rows_affected++;
  }
  HDB_RETURN_IF_ERROR(FinishAuto(txn, auto_started, /*ok=*/true));
  return out;
}

Result<QueryResult> Connection::ExecuteDelete(const DeleteAst& ast) {
  Binder binder(&db_->catalog());
  HDB_ASSIGN_OR_RETURN(BoundDelete bound, binder.BindDelete(ast));
  QueryResult out;
  HDB_ASSIGN_OR_RETURN(auto victims, CollectDmlVictims(bound.scan, &out.diag));
  table::TableHeap* h = db_->heap(bound.table->oid);

  bool auto_started = false;
  txn::Transaction* txn = CurrentTxn(&auto_started);
  const wal::WalManager::TxnScope wal_scope(txn->id());
  for (const auto& [rid, row] : victims) {
    auto status = [&, rid = rid, &row = row]() -> Status {
      HDB_RETURN_IF_ERROR(db_->lock_manager().LockRow(
          txn->id(), bound.table->oid, rid, txn::LockMode::kExclusive));
      txn->RecordLock(txn::LockManager::RowKey(bound.table->oid, rid));
      HDB_ASSIGN_OR_RETURN(const std::string bytes,
                           table::EncodeRow(*bound.table, row));
      txn::UndoRecord undo;
      undo.op = txn::UndoOp::kDelete;
      undo.table_oid = bound.table->oid;
      undo.rid = rid;
      undo.before_image.assign(bytes.begin(), bytes.end());
      txn->RecordUndo(std::move(undo));
      HDB_RETURN_IF_ERROR(MaintainOnDelete(bound.table, rid, row));
      HDB_RETURN_IF_ERROR(h->Delete(rid));
      return db_->txn_manager().AppendRedo(txn->id(), "D " + bytes);
    }();
    if (!status.ok()) {
      // The statement's own error wins; an abort-side failure is
      // finished by recovery from the log.
      IgnoreError(FinishAuto(txn, auto_started, /*ok=*/false));
      return status;
    }
    out.rows_affected++;
  }
  HDB_RETURN_IF_ERROR(FinishAuto(txn, auto_started, /*ok=*/true));
  return out;
}

Result<QueryResult> Connection::ExecuteCall(const CallAst& ast) {
  HDB_ASSIGN_OR_RETURN(const catalog::ProcedureDef* proc,
                       db_->catalog().GetProcedure(ast.name));
  if (ast.args.size() != proc->param_names.size()) {
    return Status::InvalidArgument("procedure argument count mismatch");
  }
  std::vector<std::pair<std::string, Value>> params;
  for (size_t i = 0; i < ast.args.size(); ++i) {
    params.emplace_back(proc->param_names[i], ast.args[i]);
  }

  const double start = WallMicros();
  QueryResult out;
  for (size_t s = 0; s < proc->statements.size(); ++s) {
    const std::string& body = proc->statements[s];
    HDB_ASSIGN_OR_RETURN(StatementAst stmt, Parse(body));
    if (std::holds_alternative<SelectAst>(stmt)) {
      // Cache-eligible class: statements inside procedures (paper §4.1).
      const std::string key =
          "proc:" + proc->name + ":" + std::to_string(s);
      QueryResult r;
      HDB_ASSIGN_OR_RETURN(
          r, ExecuteSelect(std::get<SelectAst>(stmt), &params, key, &r));
      out = std::move(r);
    } else {
      // DML inside procedures: substitute parameters textually and run.
      std::string sql = body;
      for (const auto& [name, value] : params) {
        const std::string needle = ":" + name;
        for (size_t pos = sql.find(needle); pos != std::string::npos;
             pos = sql.find(needle, pos)) {
          sql.replace(pos, needle.size(), ToSqlLiteral(value));
        }
      }
      HDB_ASSIGN_OR_RETURN(out, Execute(sql));
    }
  }
  // Procedure invocation statistics: moving average + per-parameter
  // variants (paper §3.2).
  db_->proc_stats().Record(proc->name, HashParams(ast.args),
                           WallMicros() - start,
                           static_cast<double>(out.rows.size()));
  return out;
}

Result<QueryResult> Connection::Execute(const std::string& sql) {
  // Statement lifecycle trace (DESIGN.md §11): one per top-level
  // statement. Procedure-body recursion (exec_depth_ > 0) gets an empty
  // handle, and the null-aware ScopedCurrentTrace leaves the outer
  // statement's trace installed, so nested spans land in the outer tree.
  obs::StatementRegistry::Handle stmt_trace;
  if (exec_depth_ == 0 && !external_trace_) {
    stmt_trace =
        db_->statement_registry().Begin(conn_id_, NormalizeStatement(sql));
  }
  obs::ScopedCurrentTrace trace_scope(stmt_trace.trace());

  const double parse_start = WallMicros();
  Result<StatementAst> parsed = [&] {
    obs::ScopedSpan parse_span(obs::kSpanParse);
    return Parse(sql);
  }();
  if (exec_depth_ == 0) {
    db_->parse_hist_->Record(
        static_cast<uint64_t>(std::max(0.0, WallMicros() - parse_start)));
  }
  if (!parsed.ok()) {
    db_->stmt_errors_->Add();
    stmt_trace.set_ok(false);
    return parsed.status();
  }
  StatementAst stmt = std::move(*parsed);

  // Procedure-body recursion: the top-level statement already holds the
  // DDL latch and the admission slot; just dispatch.
  if (exec_depth_ > 0) return ExecuteParsed(stmt, sql);

  // DDL runs exclusive against every other statement; queries, DML and
  // transaction control run shared. CALIBRATE rewrites the catalog's cost
  // model, so it counts as DDL.
  const bool is_ddl =
      std::holds_alternative<CreateTableAst>(stmt) ||
      std::holds_alternative<CreateIndexAst>(stmt) ||
      std::holds_alternative<CreateStatisticsAst>(stmt) ||
      std::holds_alternative<CreateProcedureAst>(stmt) ||
      std::holds_alternative<DropAst>(stmt) ||
      std::holds_alternative<SetOptionAst>(stmt) ||
      (std::holds_alternative<SimpleAst>(stmt) &&
       std::get<SimpleAst>(stmt).kind == SimpleAst::kCalibrate);

  // Statement-kind counters (sys.counters / TelemetrySnapshotJson).
  if (std::holds_alternative<SelectAst>(stmt)) {
    db_->stmt_select_->Add();
  } else if (std::holds_alternative<InsertAst>(stmt)) {
    db_->stmt_insert_->Add();
  } else if (std::holds_alternative<UpdateAst>(stmt)) {
    db_->stmt_update_->Add();
  } else if (std::holds_alternative<DeleteAst>(stmt)) {
    db_->stmt_delete_->Add();
  } else if (std::holds_alternative<CallAst>(stmt)) {
    db_->stmt_call_->Add();
  } else if (std::holds_alternative<ExplainAst>(stmt)) {
    db_->stmt_explain_->Add();
  } else if (is_ddl) {
    db_->stmt_ddl_->Add();
  } else if (std::holds_alternative<SimpleAst>(stmt)) {
    db_->stmt_txn_->Add();
  } else {
    db_->stmt_other_->Add();
  }

  // EXPLAIN ANALYZE runs the statement for real, so it is gated and
  // counted like the SELECT it wraps.
  const bool analyze = std::holds_alternative<ExplainAst>(stmt) &&
                       std::get<ExplainAst>(stmt).analyze;

  // Workload statements pass the admission gate: at most MPL of them run
  // at once, which is what makes the memory governor's per-request soft
  // limit (Eq. (5) = pool / MPL) a real bound.
  const bool gated = std::holds_alternative<SelectAst>(stmt) ||
                     std::holds_alternative<InsertAst>(stmt) ||
                     std::holds_alternative<UpdateAst>(stmt) ||
                     std::holds_alternative<DeleteAst>(stmt) ||
                     std::holds_alternative<CallAst>(stmt) || analyze;

  exec::AdmissionGate::Ticket ticket;
  if (gated) {
    auto admitted = [&] {
      obs::ScopedSpan admission_span(obs::kSpanAdmission);
      return db_->admission_gate().Admit();
    }();
    if (!admitted.ok()) {
      db_->stmt_errors_->Add();
      stmt_trace.set_ok(false);
      return admitted.status();
    }
    ticket = std::move(*admitted);
  }

  const double exec_start = WallMicros();
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    obs::ScopedSpan execute_span(obs::kSpanExecute);
    DepthGuard depth(&exec_depth_);
    if (is_ddl) {
      UniqueLock ddl(db_->ddl_mu_);
      return ExecuteParsed(stmt, sql);
    }
    SharedLock ddl(db_->ddl_mu_);
    return ExecuteParsed(stmt, sql);
  }();
  const double exec_micros = WallMicros() - exec_start;
  db_->execute_hist_->Record(
      static_cast<uint64_t>(std::max(0.0, exec_micros)));
  if (result.ok()) {
    db_->RecordStatementShape(NormalizeStatement(sql), exec_micros,
                              result->rows.size());
  } else {
    db_->stmt_errors_->Add();
  }
  stmt_trace.set_ok(result.ok());

  if (gated) {
    // Release the slot before reporting completion so a queued request
    // can start inside the interval its predecessor just finished in.
    ticket.Release();
    db_->mpl_controller().OnRequestComplete();
    if (db_->mpl_controller().MaybeAdapt()) db_->admission_gate().Poke();
  }

  // Emit traces only now, with latch and slot released: the hook may run
  // SQL of its own (e.g. the profiler's same-database trace sink).
  for (const TraceEvent& ev : pending_traces_) db_->EmitTrace(ev);
  pending_traces_.clear();
  return result;
}

Result<QueryResult> Connection::ExecuteParsed(StatementAst& stmt,
                                              const std::string& sql) {
  const double start = WallMicros();
  QueryResult out;
  TraceEvent ev;
  ev.sql = sql;

  if (std::holds_alternative<SelectAst>(stmt)) {
    HDB_ASSIGN_OR_RETURN(
        out, ExecuteSelect(std::get<SelectAst>(stmt), nullptr, "", &out));
  } else if (std::holds_alternative<ExplainAst>(stmt)) {
    const auto& ex = std::get<ExplainAst>(stmt);
    if (ex.analyze) {
      HDB_ASSIGN_OR_RETURN(out, ExecuteExplainAnalyze(*ex.select, &out));
    } else {
      Binder binder(&db_->catalog());
      HDB_ASSIGN_OR_RETURN(optimizer::Query q, binder.BindSelect(*ex.select));
      optimizer::Optimizer opt(MakeOptimizerContext());
      HDB_ASSIGN_OR_RETURN(optimizer::PlanPtr plan,
                           opt.Optimize(q, false, &out.diag));
      out.explain = plan->Explain();
    }
  } else if (std::holds_alternative<InsertAst>(stmt)) {
    HDB_ASSIGN_OR_RETURN(out, ExecuteInsert(std::get<InsertAst>(stmt)));
  } else if (std::holds_alternative<UpdateAst>(stmt)) {
    HDB_ASSIGN_OR_RETURN(out, ExecuteUpdate(std::get<UpdateAst>(stmt)));
  } else if (std::holds_alternative<DeleteAst>(stmt)) {
    HDB_ASSIGN_OR_RETURN(out, ExecuteDelete(std::get<DeleteAst>(stmt)));
  } else if (std::holds_alternative<CreateTableAst>(stmt)) {
    HDB_RETURN_IF_ERROR(db_->CreateTableImpl(std::get<CreateTableAst>(stmt)));
  } else if (std::holds_alternative<CreateIndexAst>(stmt)) {
    HDB_RETURN_IF_ERROR(db_->CreateIndexImpl(std::get<CreateIndexAst>(stmt)));
  } else if (std::holds_alternative<CreateStatisticsAst>(stmt)) {
    const auto& cs = std::get<CreateStatisticsAst>(stmt);
    HDB_ASSIGN_OR_RETURN(catalog::TableDef * def,
                         db_->catalog().GetTable(cs.table));
    if (cs.columns.empty()) {
      for (size_t c = 0; c < def->columns.size(); ++c) {
        HDB_RETURN_IF_ERROR(
            db_->BuildStatisticsLocked(cs.table, static_cast<int>(c)));
      }
    } else {
      for (const std::string& col : cs.columns) {
        const int c = def->ColumnIndex(col);
        if (c < 0) return Status::NotFound("column " + col);
        HDB_RETURN_IF_ERROR(db_->BuildStatisticsLocked(cs.table, c));
      }
    }
  } else if (std::holds_alternative<CreateProcedureAst>(stmt)) {
    const auto& cp = std::get<CreateProcedureAst>(stmt);
    catalog::ProcedureDef def;
    def.name = cp.name;
    def.param_names = cp.params;
    def.statements = cp.body_statements;
    HDB_RETURN_IF_ERROR(db_->LogDdl(wal::WalRecordType::kDdlCreateProcedure,
                                    wal::EncodeDdlCreateProcedure(def)));
    HDB_RETURN_IF_ERROR(db_->catalog().CreateProcedure(std::move(def)));
  } else if (std::holds_alternative<CallAst>(stmt)) {
    HDB_ASSIGN_OR_RETURN(out, ExecuteCall(std::get<CallAst>(stmt)));
    ev.from_procedure = true;
  } else if (std::holds_alternative<DropAst>(stmt)) {
    const auto& d = std::get<DropAst>(stmt);
    if (d.kind == DropAst::kTable) {
      HDB_RETURN_IF_ERROR(db_->DropTableImpl(d.name));
    } else {
      HDB_RETURN_IF_ERROR(db_->DropIndexImpl(d.name));
    }
  } else if (std::holds_alternative<SetOptionAst>(stmt)) {
    const auto& so = std::get<SetOptionAst>(stmt);
    db_->catalog().SetOption(so.name, so.value);
    HDB_RETURN_IF_ERROR(db_->LogDdl(wal::WalRecordType::kDdlSetOption,
                                    wal::EncodeDdlSetOption(so.name, so.value)));
  } else if (std::holds_alternative<SimpleAst>(stmt)) {
    switch (std::get<SimpleAst>(stmt).kind) {
      case SimpleAst::kBegin:
        if (txn_ != nullptr) {
          return Status::InvalidArgument("transaction already active");
        }
        txn_ = db_->txn_manager().Begin();
        break;
      case SimpleAst::kCommit:
        if (txn_ != nullptr) {
          obs::ScopedSpan commit_span(obs::kSpanCommit);
          HDB_RETURN_IF_ERROR(db_->txn_manager().Commit(txn_));
          txn_ = nullptr;
        }
        break;
      case SimpleAst::kRollback:
        if (txn_ != nullptr) {
          HDB_RETURN_IF_ERROR(
              db_->txn_manager().Abort(txn_, MakeUndoApplier(txn_)));
          txn_ = nullptr;
        }
        break;
      case SimpleAst::kCalibrate:
        HDB_RETURN_IF_ERROR(db_->CalibrateLocked({}));
        break;
    }
  }

  ev.elapsed_micros = WallMicros() - start;
  ev.rows_returned = out.rows.size();
  ev.rows_scanned = out.exec_stats.rows_scanned;
  ev.bypassed_optimizer = out.diag.bypassed;
  pending_traces_.push_back(std::move(ev));
  return out;
}

Result<std::string> Connection::Explain(const std::string& select_sql) {
  HDB_ASSIGN_OR_RETURN(QueryResult r, Execute("EXPLAIN " + select_sql));
  return r.explain;
}

}  // namespace hdb::engine
