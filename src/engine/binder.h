#ifndef HDB_ENGINE_BINDER_H_
#define HDB_ENGINE_BINDER_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "engine/parser.h"
#include "optimizer/query.h"
#include "table/row_codec.h"

namespace hdb::engine {

struct BoundInsert {
  catalog::TableDef* table = nullptr;
  std::vector<table::Row> rows;
};

struct BoundUpdate {
  catalog::TableDef* table = nullptr;
  std::vector<std::pair<int, optimizer::ExprPtr>> sets;
  optimizer::Query scan;  // single-quantifier query selecting victim rows
};

struct BoundDelete {
  catalog::TableDef* table = nullptr;
  optimizer::Query scan;
};

/// Coerces a literal/computed value to a column type (e.g. BIGINT literal
/// into an INT column). Returns InvalidArgument on impossible coercions.
Result<Value> CoerceValue(const Value& v, TypeId target);

/// Name resolution and semantic analysis: parse trees in, optimizer
/// Queries out. When the query groups, select/having/order expressions are
/// rewritten over the grouped-output pseudo-quantifier (see
/// optimizer/query.h).
class Binder {
 public:
  explicit Binder(catalog::Catalog* catalog) : catalog_(catalog) {}

  Result<optimizer::Query> BindSelect(const SelectAst& ast);
  Result<BoundInsert> BindInsert(const InsertAst& ast);
  Result<BoundUpdate> BindUpdate(const UpdateAst& ast);
  Result<BoundDelete> BindDelete(const DeleteAst& ast);

 private:
  struct Scope {
    std::vector<optimizer::Quantifier> quantifiers;
  };

  Result<optimizer::ExprPtr> BindExpr(const AstExprPtr& ast,
                                      const Scope& scope,
                                      optimizer::Query* query_for_aggs);
  Result<optimizer::ExprPtr> ResolveColumn(const AstExpr& ast,
                                           const Scope& scope);
  /// Replaces subtrees equal to a group key with group-output references.
  static optimizer::ExprPtr ReplaceGroupKeys(
      const optimizer::ExprPtr& e, const std::vector<std::string>& key_strs,
      int group_quantifier);

  catalog::Catalog* catalog_;
};

}  // namespace hdb::engine

#endif  // HDB_ENGINE_BINDER_H_
