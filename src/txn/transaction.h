#ifndef HDB_TXN_TRANSACTION_H_
#define HDB_TXN_TRANSACTION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/buffer_pool.h"
#include "txn/lock_manager.h"
#include "wal/wal_manager.h"

#include "common/lock_rank.h"

namespace hdb::txn {

enum class TxnState : uint8_t { kActive, kCommitted, kAborted };

enum class UndoOp : uint8_t { kInsert, kDelete, kUpdate };

/// One rollback action. The engine interprets these (it owns the table
/// heaps); the txn layer only records and replays them in reverse order.
struct UndoRecord {
  UndoOp op = UndoOp::kInsert;
  uint32_t table_oid = 0;
  Rid rid;
  std::vector<char> before_image;  // row bytes for kDelete / kUpdate
};

/// A transaction: lock set + undo chain. Redo records stream to the log
/// space through the TransactionManager so undo and redo log pages are
/// live residents of the heterogeneous buffer pool (paper §2.1).
class Transaction {
 public:
  explicit Transaction(uint64_t id) : id_(id) {}

  uint64_t id() const { return id_; }
  TxnState state() const { return state_; }
  void set_state(TxnState s) { state_ = s; }

  void RecordLock(uint64_t lock_key) { lock_keys_.push_back(lock_key); }
  const std::vector<uint64_t>& lock_keys() const { return lock_keys_; }

  void RecordUndo(UndoRecord rec) { undo_.push_back(std::move(rec)); }
  const std::vector<UndoRecord>& undo_chain() const { return undo_; }

 private:
  uint64_t id_;
  TxnState state_ = TxnState::kActive;
  std::vector<uint64_t> lock_keys_;
  std::vector<UndoRecord> undo_;
};

/// Creates transactions, appends their redo records to the log space, and
/// releases locks at end of transaction. Rollback *application* is
/// delegated to a callback because row re-insertion needs the table layer.
///
/// With a WalManager attached (SetWal), end-of-transaction records go to
/// the write-ahead log instead: Commit appends a kCommit record and blocks
/// on group commit until it is durable *before* releasing any lock, and
/// the legacy pool-resident redo stream (AppendRedo) becomes a no-op —
/// heap-level WAL records carry the redo content.
class TransactionManager {
 public:
  TransactionManager(storage::BufferPool* pool, LockManager* locks);

  /// Attaches the write-ahead log (engine wiring; before any Begin).
  void SetWal(wal::WalManager* wal) { wal_ = wal; }

  /// Seeds the transaction-id counter past recovery's watermark so new
  /// transactions never reuse an id that appears in the durable log.
  void SeedNextTxnId(uint64_t next);

  Transaction* Begin();

  /// Writes a commit record to the redo log and releases all locks. With a
  /// WAL attached the commit record must be durable before this returns.
  Status Commit(Transaction* txn);

  /// Calls `apply_undo` for each undo record in reverse order, then
  /// releases all locks.
  using UndoApplier = std::function<Status(const UndoRecord&)>;
  Status Abort(Transaction* txn, const UndoApplier& apply_undo);

  /// Appends an opaque redo payload for `txn` to the log.
  Status AppendRedo(uint64_t txn_id, std::string_view payload);

  LockManager* lock_manager() { return locks_; }
  uint64_t active_count() const;
  uint64_t log_bytes() const {
    return log_bytes_.load(std::memory_order_relaxed);
  }

 private:
  void ReleaseLocks(Transaction* txn);

  storage::BufferPool* pool_;
  LockManager* locks_;
  wal::WalManager* wal_ = nullptr;

  mutable RankedMutex<LockRank::kTxnManager> mu_;
  uint64_t next_txn_id_ GUARDED_BY(mu_) = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Transaction>> txns_
      GUARDED_BY(mu_);
  uint64_t active_ GUARDED_BY(mu_) = 0;

  // Redo log cursor (log_bytes_ is atomic for the unlatched log_bytes()
  // statistic read).
  storage::PageId log_page_ GUARDED_BY(mu_) = storage::kInvalidPageId;
  uint32_t log_offset_ GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> log_bytes_{0};
};

}  // namespace hdb::txn

#endif  // HDB_TXN_TRANSACTION_H_
