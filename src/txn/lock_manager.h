#ifndef HDB_TXN_LOCK_MANAGER_H_
#define HDB_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <mutex>

#include "common/status.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "storage/ext_hash.h"

#include "common/lock_rank.h"

namespace hdb::txn {

enum class LockMode : uint8_t { kShared = 0, kExclusive = 1 };

/// Long-term (transaction-duration) row and table locks, stored in a
/// disk-based extendible hash table (paper §2.1): there is no lock-table
/// size to configure and no lock-escalation threshold — the table simply
/// grows on disk through the buffer pool.
///
/// Conflict policy is no-wait: a conflicting request returns kAborted and
/// the caller (TransactionManager) rolls the transaction back. This keeps
/// the engine deadlock-free and deterministic.
class LockManager {
 public:
  explicit LockManager(storage::BufferPool* pool);

  /// Acquires a lock on (table, rid) for `txn_id`. Re-acquisition and
  /// shared/shared coexistence succeed; shared→exclusive upgrade succeeds
  /// when `txn_id` is the only holder.
  Status LockRow(uint64_t txn_id, uint32_t table_oid, Rid rid, LockMode mode);

  /// Table-level lock (used by DDL and LOAD TABLE).
  Status LockTable(uint64_t txn_id, uint32_t table_oid, LockMode mode);

  /// Releases every lock `txn_id` holds on the given key. Called by the
  /// transaction's release loop at commit/abort.
  void Unlock(uint64_t txn_id, uint64_t lock_key);

  /// Builds the hash key for a row / table lock (exposed so transactions
  /// can remember what to release).
  static uint64_t RowKey(uint32_t table_oid, Rid rid);
  static uint64_t TableKey(uint32_t table_oid);

  uint64_t held_locks() const {
    LockGuard lock(mu_);
    return table_.size();
  }
  size_t lock_table_pages() const {
    LockGuard lock(mu_);
    return table_.bucket_pages();
  }

  /// Wires the lock manager into the engine's telemetry (DESIGN.md §6):
  /// conflict counter and held-lock gauges into `registry`.
  void AttachTelemetry(obs::MetricsRegistry* registry);

 private:
  Status Acquire(uint64_t txn_id, uint64_t key, LockMode mode);

  mutable RankedMutex<LockRank::kLockManager> mu_;
  storage::ExtHashTable table_ GUARDED_BY(mu_);

  // Telemetry (optional; null when not attached).
  obs::Counter* conflicts_counter_ GUARDED_BY(mu_) = nullptr;
};

}  // namespace hdb::txn

#endif  // HDB_TXN_LOCK_MANAGER_H_
