#include "txn/transaction.h"

#include <cstring>

namespace hdb::txn {

TransactionManager::TransactionManager(storage::BufferPool* pool,
                                       LockManager* locks)
    : pool_(pool), locks_(locks) {}

Transaction* TransactionManager::Begin() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_txn_id_++;
  auto txn = std::make_unique<Transaction>(id);
  Transaction* raw = txn.get();
  txns_[id] = std::move(txn);
  ++active_;
  return raw;
}

Status TransactionManager::AppendRedo(uint64_t txn_id,
                                      std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  // Record: [u64 txn][u32 len][bytes]; records never span pages (payloads
  // are small — row images); a fresh page is started when needed.
  const uint32_t need = 12 + static_cast<uint32_t>(payload.size());
  const uint32_t capacity = pool_->page_bytes();
  if (need > capacity) return Status::InvalidArgument("redo record too large");
  if (log_page_ == storage::kInvalidPageId || log_offset_ + need > capacity) {
    storage::PageId id = storage::kInvalidPageId;
    HDB_ASSIGN_OR_RETURN(
        storage::PageHandle h,
        pool_->NewPage(storage::SpaceId::kLog, storage::PageType::kRedoLog,
                       /*owner=*/0, &id));
    h.MarkDirty();
    log_page_ = id;
    log_offset_ = 0;
  }
  HDB_ASSIGN_OR_RETURN(
      storage::PageHandle h,
      pool_->FetchPage(
          storage::SpacePageId{storage::SpaceId::kLog, log_page_},
          storage::PageType::kRedoLog, /*owner=*/0));
  char* base = h.data() + log_offset_;
  std::memcpy(base, &txn_id, 8);
  const auto len = static_cast<uint32_t>(payload.size());
  std::memcpy(base + 8, &len, 4);
  std::memcpy(base + 12, payload.data(), payload.size());
  h.MarkDirty();
  log_offset_ += need;
  log_bytes_ += need;
  return Status::OK();
}

void TransactionManager::ReleaseLocks(Transaction* txn) {
  for (const uint64_t key : txn->lock_keys()) {
    locks_->Unlock(txn->id(), key);
  }
}

Status TransactionManager::Commit(Transaction* txn) {
  if (txn->state() != TxnState::kActive) {
    return Status::InvalidArgument("commit of non-active transaction");
  }
  HDB_RETURN_IF_ERROR(AppendRedo(txn->id(), "COMMIT"));
  ReleaseLocks(txn);
  txn->set_state(TxnState::kCommitted);
  std::lock_guard<std::mutex> lock(mu_);
  if (active_ > 0) --active_;
  return Status::OK();
}

Status TransactionManager::Abort(Transaction* txn,
                                 const UndoApplier& apply_undo) {
  if (txn->state() != TxnState::kActive) {
    return Status::InvalidArgument("abort of non-active transaction");
  }
  const auto& chain = txn->undo_chain();
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    HDB_RETURN_IF_ERROR(apply_undo(*it));
  }
  HDB_RETURN_IF_ERROR(AppendRedo(txn->id(), "ROLLBACK"));
  ReleaseLocks(txn);
  txn->set_state(TxnState::kAborted);
  std::lock_guard<std::mutex> lock(mu_);
  if (active_ > 0) --active_;
  return Status::OK();
}

uint64_t TransactionManager::active_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

}  // namespace hdb::txn
