#include "txn/transaction.h"

#include <cstring>

namespace hdb::txn {

TransactionManager::TransactionManager(storage::BufferPool* pool,
                                       LockManager* locks)
    : pool_(pool), locks_(locks) {}

void TransactionManager::SeedNextTxnId(uint64_t next) {
  LockGuard lock(mu_);
  if (next > next_txn_id_) next_txn_id_ = next;
}

Transaction* TransactionManager::Begin() {
  LockGuard lock(mu_);
  const uint64_t id = next_txn_id_++;
  auto txn = std::make_unique<Transaction>(id);
  Transaction* raw = txn.get();
  txns_[id] = std::move(txn);
  ++active_;
  return raw;
}

Status TransactionManager::AppendRedo(uint64_t txn_id,
                                      std::string_view payload) {
  // With the WAL attached, heap-level records already carry the redo
  // content; this legacy stream would interleave foreign pages into the
  // WAL's strictly sequential kLog space, so it must stay off.
  if (wal_ != nullptr && wal_->enabled()) return Status::OK();
  LockGuard lock(mu_);
  // Record: [u64 txn][u32 len][bytes]; records never span pages (payloads
  // are small — row images); a fresh page is started when needed.
  const uint32_t need = 12 + static_cast<uint32_t>(payload.size());
  const uint32_t capacity = pool_->page_bytes();
  if (need > capacity) return Status::InvalidArgument("redo record too large");
  if (log_page_ == storage::kInvalidPageId || log_offset_ + need > capacity) {
    storage::PageId id = storage::kInvalidPageId;
    HDB_ASSIGN_OR_RETURN(
        storage::PageHandle h,
        pool_->NewPage(storage::SpaceId::kLog, storage::PageType::kRedoLog,
                       /*owner=*/0, &id));
    h.MarkDirty();
    log_page_ = id;
    log_offset_ = 0;
  }
  HDB_ASSIGN_OR_RETURN(
      storage::PageHandle h,
      pool_->FetchPage(
          storage::SpacePageId{storage::SpaceId::kLog, log_page_},
          storage::PageType::kRedoLog, /*owner=*/0));
  char* base = h.data() + log_offset_;
  std::memcpy(base, &txn_id, 8);
  const auto len = static_cast<uint32_t>(payload.size());
  std::memcpy(base + 8, &len, 4);
  std::memcpy(base + 12, payload.data(), payload.size());
  h.MarkDirty();
  log_offset_ += need;
  log_bytes_ += need;
  return Status::OK();
}

void TransactionManager::ReleaseLocks(Transaction* txn) {
  for (const uint64_t key : txn->lock_keys()) {
    locks_->Unlock(txn->id(), key);
  }
}

Status TransactionManager::Commit(Transaction* txn) {
  if (txn->state() != TxnState::kActive) {
    return Status::InvalidArgument("commit of non-active transaction");
  }
  if (wal_ != nullptr && wal_->enabled()) {
    // WAL commit protocol: the commit record must be durable before any
    // lock is released (once another transaction can read our writes, a
    // crash must not un-commit us). WaitDurable parks on the group-commit
    // flusher, batching fsyncs across concurrently committing sessions.
    HDB_ASSIGN_OR_RETURN(
        const storage::Lsn lsn,
        wal_->Append(wal::WalRecordType::kCommit, txn->id(), std::string()));
    HDB_RETURN_IF_ERROR(wal_->WaitDurable(lsn));
  } else {
    HDB_RETURN_IF_ERROR(AppendRedo(txn->id(), "COMMIT"));
  }
  ReleaseLocks(txn);
  txn->set_state(TxnState::kCommitted);
  LockGuard lock(mu_);
  if (active_ > 0) --active_;
  return Status::OK();
}

Status TransactionManager::Abort(Transaction* txn,
                                 const UndoApplier& apply_undo) {
  if (txn->state() != TxnState::kActive) {
    return Status::InvalidArgument("abort of non-active transaction");
  }
  const auto& chain = txn->undo_chain();
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    HDB_RETURN_IF_ERROR(apply_undo(*it));
  }
  if (wal_ != nullptr && wal_->enabled()) {
    // The undo applier ran under a CLR TxnScope, so the compensation
    // records are already in the log; kAbort just closes the transaction.
    // No durability wait: if the abort record is lost, recovery re-undoes
    // from the CLRs, which is idempotent.
    HDB_RETURN_IF_ERROR(
        wal_->Append(wal::WalRecordType::kAbort, txn->id(), std::string())
            .status());
  } else {
    HDB_RETURN_IF_ERROR(AppendRedo(txn->id(), "ROLLBACK"));
  }
  ReleaseLocks(txn);
  txn->set_state(TxnState::kAborted);
  LockGuard lock(mu_);
  if (active_ > 0) --active_;
  return Status::OK();
}

uint64_t TransactionManager::active_count() const {
  LockGuard lock(mu_);
  return active_;
}

}  // namespace hdb::txn
