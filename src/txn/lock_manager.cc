#include "txn/lock_manager.h"

#include "obs/metric_names.h"
#include "obs/trace.h"

namespace hdb::txn {

namespace {
// Lock-table values pack (txn_id << 1 | mode).
uint64_t PackValue(uint64_t txn_id, LockMode mode) {
  return (txn_id << 1) | static_cast<uint64_t>(mode);
}
uint64_t ValueTxn(uint64_t v) { return v >> 1; }
LockMode ValueMode(uint64_t v) {
  return static_cast<LockMode>(v & 1);
}
}  // namespace

LockManager::LockManager(storage::BufferPool* pool)
    : table_(pool, /*owner_oid=*/0) {}

uint64_t LockManager::RowKey(uint32_t table_oid, Rid rid) {
  return (static_cast<uint64_t>(table_oid) << 48) ^
         (static_cast<uint64_t>(rid.page_id) << 16) ^ rid.slot;
}

uint64_t LockManager::TableKey(uint32_t table_oid) {
  return 0x8000000000000000ull | table_oid;
}

Status LockManager::Acquire(uint64_t txn_id, uint64_t key, LockMode mode) {
  // No-wait policy: a conflict aborts instead of blocking, so the "lock
  // wait" a tracing statement sees is the failed acquire itself — record
  // its duration and the contended key as the wait resource.
  obs::StatementTrace* trace = obs::CurrentStatementTrace();
  const uint64_t acquire_start = trace != nullptr ? obs::TraceNowMicros() : 0;
  LockGuard lock(mu_);
  bool already_held = false;
  bool upgradable = true;
  bool conflict = false;
  HDB_RETURN_IF_ERROR(table_.ForEach(key, [&](uint64_t v) {
    const uint64_t holder = ValueTxn(v);
    const LockMode held = ValueMode(v);
    if (holder == txn_id) {
      if (held == LockMode::kExclusive || held == mode) already_held = true;
    } else {
      upgradable = false;
      if (mode == LockMode::kExclusive || held == LockMode::kExclusive) {
        conflict = true;
      }
    }
    return true;
  }));
  if (already_held) return Status::OK();
  if (conflict || (mode == LockMode::kExclusive && !upgradable)) {
    if (conflicts_counter_ != nullptr) conflicts_counter_->Add();
    if (trace != nullptr) {
      trace->RecordWait(obs::WaitCause::kLock, key,
                        obs::TraceNowMicros() - acquire_start);
    }
    return conflict ? Status::Aborted("lock conflict (no-wait policy)")
                    : Status::Aborted("lock upgrade conflict");
  }
  return table_.Insert(key, PackValue(txn_id, mode));
}

Status LockManager::LockRow(uint64_t txn_id, uint32_t table_oid, Rid rid,
                            LockMode mode) {
  return Acquire(txn_id, RowKey(table_oid, rid), mode);
}

Status LockManager::LockTable(uint64_t txn_id, uint32_t table_oid,
                              LockMode mode) {
  return Acquire(txn_id, TableKey(table_oid), mode);
}

void LockManager::AttachTelemetry(obs::MetricsRegistry* registry) {
  // Register before taking mu_: the callbacks registered here take mu_
  // (via held_locks()) under the registry mutex, so registering while
  // holding mu_ would invert that order.
  obs::Counter* conflicts = nullptr;
  if (registry != nullptr) {
    conflicts = registry->RegisterCounter(obs::kLockConflicts);
    registry->RegisterCallback(obs::kLockHeld, [this] {
      return static_cast<double>(held_locks());
    });
    registry->RegisterCallback(obs::kLockTablePages, [this] {
      return static_cast<double>(lock_table_pages());
    });
  }
  LockGuard lock(mu_);
  conflicts_counter_ = conflicts;
}

void LockManager::Unlock(uint64_t txn_id, uint64_t lock_key) {
  LockGuard lock(mu_);
  // Remove every value this transaction holds under the key (it may hold
  // both a shared lock and an upgraded exclusive one).
  for (const LockMode mode : {LockMode::kShared, LockMode::kExclusive}) {
    while (table_.Remove(lock_key, PackValue(txn_id, mode)).ok()) {
    }
  }
}

}  // namespace hdb::txn
