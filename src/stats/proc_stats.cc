#include "stats/proc_stats.h"

#include <cmath>

namespace hdb::stats {

namespace {
void Blend(ProcInvocationStats& s, double alpha, double cpu, double card) {
  if (s.invocations == 0) {
    s.avg_cpu_micros = cpu;
    s.avg_cardinality = card;
  } else {
    s.avg_cpu_micros = (1 - alpha) * s.avg_cpu_micros + alpha * cpu;
    s.avg_cardinality = (1 - alpha) * s.avg_cardinality + alpha * card;
  }
  s.invocations++;
}

bool DiffersSufficiently(const ProcInvocationStats& avg, double cpu,
                         double card, double factor) {
  const auto off = [factor](double a, double b) {
    const double lo = std::min(a, b), hi = std::max(a, b);
    return lo <= 0 ? hi > 0 : hi / lo > factor;
  };
  return off(avg.avg_cpu_micros, cpu) || off(avg.avg_cardinality, card);
}
}  // namespace

void ProcStatsRegistry::Record(const std::string& proc, uint64_t param_hash,
                               double cpu_micros, double cardinality) {
  LockGuard lock(mu_);
  Entry& e = procs_[proc];
  // A parameter signature with its own entry is "managed separately"
  // (paper §3.2): its invocations update the variant, not the average.
  auto vit = e.variants.find(param_hash);
  if (vit != e.variants.end()) {
    Blend(vit->second, options_.ewma_alpha, cpu_micros, cardinality);
    return;
  }
  const bool had_history = e.average.invocations > 0;
  const bool outlier =
      had_history && DiffersSufficiently(e.average, cpu_micros, cardinality,
                                         options_.outlier_factor);
  if (outlier && param_hash != 0 &&
      e.variants.size() < options_.max_param_variants) {
    Blend(e.variants[param_hash], options_.ewma_alpha, cpu_micros,
          cardinality);
    return;
  }
  Blend(e.average, options_.ewma_alpha, cpu_micros, cardinality);
}

ProcInvocationStats ProcStatsRegistry::Estimate(const std::string& proc,
                                                uint64_t param_hash,
                                                bool* found) const {
  LockGuard lock(mu_);
  const auto it = procs_.find(proc);
  if (it == procs_.end() || it->second.average.invocations == 0) {
    *found = false;
    return {};
  }
  *found = true;
  const auto vit = it->second.variants.find(param_hash);
  if (vit != it->second.variants.end()) return vit->second;
  return it->second.average;
}

size_t ProcStatsRegistry::variant_count(const std::string& proc) const {
  LockGuard lock(mu_);
  const auto it = procs_.find(proc);
  return it == procs_.end() ? 0 : it->second.variants.size();
}

}  // namespace hdb::stats
