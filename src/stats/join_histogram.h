#ifndef HDB_STATS_JOIN_HISTOGRAM_H_
#define HDB_STATS_JOIN_HISTOGRAM_H_

#include <vector>

#include "stats/histogram.h"

namespace hdb::stats {

/// Join histogram over a single attribute, computed on the fly during
/// query optimization (paper §3.2): aligns the two columns' histograms on
/// the overlap of their domains and estimates, per aligned region, how
/// many (left, right) row pairs agree on the join key.
class JoinHistogram {
 public:
  JoinHistogram(const Histogram& left, const Histogram& right);

  /// Fraction of the cross product |L| x |R| that joins.
  double selectivity() const { return selectivity_; }

  /// Expected join cardinality given the base row counts.
  double EstimateCardinality(double left_rows, double right_rows) const {
    return selectivity_ * left_rows * right_rows;
  }

  /// Diagnostic decomposition.
  double singleton_singleton_pairs() const { return ss_pairs_; }
  double singleton_bucket_pairs() const { return sb_pairs_; }
  double bucket_bucket_pairs() const { return bb_pairs_; }

 private:
  double selectivity_ = 0;
  double ss_pairs_ = 0;
  double sb_pairs_ = 0;
  double bb_pairs_ = 0;
};

}  // namespace hdb::stats

#endif  // HDB_STATS_JOIN_HISTOGRAM_H_
