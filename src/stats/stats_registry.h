#ifndef HDB_STATS_STATS_REGISTRY_H_
#define HDB_STATS_STATS_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/value.h"
#include "catalog/schema.h"
#include "stats/histogram.h"
#include "stats/string_stats.h"

#include "common/lock_rank.h"

namespace hdb::stats {

/// Statistics kept for one column: a histogram over the order-preserving
/// hash domain and — for string columns — the observed-predicate/word
/// statistics. A column observed to hold long strings abandons its
/// histogram for the string infrastructure (paper §3.1).
struct ColumnStats {
  TypeId type = TypeId::kInt;
  bool long_string = false;
  std::unique_ptr<Histogram> histogram;
  std::unique_ptr<StringStats> strings;
};

/// Default guesses used when a column has no statistics yet; chosen to be
/// deliberately conservative, like any commercial optimizer's magic
/// numbers.
struct DefaultSelectivity {
  static constexpr double kEquals = 0.01;
  static constexpr double kRange = 0.25;
  static constexpr double kIsNull = 0.05;
  static constexpr double kLike = 0.05;
};

/// Owner of all column statistics, the target of both bulk construction
/// (LOAD TABLE / CREATE INDEX / CREATE STATISTICS, §3.2) and the
/// execution-feedback pipeline (§3).
class StatsRegistry {
 public:
  StatsRegistry() = default;

  /// Bulk (re)build of one column's statistics from its values. Uses the
  /// exact builder for small columns and the Greenwald sketch path above
  /// `sketch_threshold` rows.
  void BuildColumn(const catalog::TableDef& table, int col,
                   const std::vector<Value>& values,
                   size_t sketch_threshold = 50000);

  /// Drops every statistic belonging to `table_oid`.
  void DropTable(uint32_t table_oid);

  bool HasStats(uint32_t table_oid, int col) const;

  /// Mutable access (feedback application, tests). Creates empty stats on
  /// demand.
  ColumnStats& Ensure(uint32_t table_oid, int col, TypeId type);
  /// Read access; nullptr when absent.
  const ColumnStats* Get(uint32_t table_oid, int col) const;

  // --- Estimation over typed values (fractions of table rows) ---
  double SelEquals(uint32_t table_oid, int col, const Value& v) const;
  /// Open bounds passed as nullptr.
  double SelRange(uint32_t table_oid, int col, const Value* lo,
                  bool lo_inclusive, const Value* hi, bool hi_inclusive) const;
  double SelIsNull(uint32_t table_oid, int col) const;
  /// LIKE estimation: '%word%' uses word statistics, 'prefix%' uses a
  /// histogram range over the hash domain, anything else the default.
  double SelLike(uint32_t table_oid, int col, const std::string& pattern) const;

  // --- DML maintenance (paper §3.2) ---
  void OnInsertValue(uint32_t table_oid, int col, const Value& v);
  void OnDeleteValue(uint32_t table_oid, int col, const Value& v);

  // --- Execution feedback (paper §3) ---
  void FeedbackEquals(uint32_t table_oid, int col, const Value& v,
                      double observed);
  void FeedbackRange(uint32_t table_oid, int col, const Value* lo,
                     const Value* hi, double observed);
  void FeedbackIsNull(uint32_t table_oid, int col, double observed);
  void FeedbackString(uint32_t table_oid, int col, StringPredicate pred,
                      const std::string& operand, double observed);

  size_t column_count() const;

 private:
  using Key = std::pair<uint32_t, int>;

  mutable RankedMutex<LockRank::kStatsRegistry> mu_;
  std::map<Key, ColumnStats> columns_ GUARDED_BY(mu_);
};

}  // namespace hdb::stats

#endif  // HDB_STATS_STATS_REGISTRY_H_
