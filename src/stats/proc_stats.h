#ifndef HDB_STATS_PROC_STATS_H_
#define HDB_STATS_PROC_STATS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/lock_rank.h"

namespace hdb::stats {

/// Summary of prior invocations: exponentially-weighted moving averages of
/// total CPU time and result cardinality (paper §3.2).
struct ProcInvocationStats {
  double avg_cpu_micros = 0;
  double avg_cardinality = 0;
  uint64_t invocations = 0;
};

struct ProcStatsOptions {
  double ewma_alpha = 0.25;
  /// A parameter-specific observation that differs from the moving
  /// average by more than this factor gets its own entry.
  double outlier_factor = 4.0;
  size_t max_param_variants = 32;
};

/// Statistics for stored procedures used in FROM clauses (paper §3.2):
/// a moving average per procedure, plus per-parameter-value variants that
/// are "saved and managed separately if they differ sufficiently from the
/// moving average".
class ProcStatsRegistry {
 public:
  using Options = ProcStatsOptions;

  explicit ProcStatsRegistry(Options options = {}) : options_(options) {}

  /// Records an invocation of `proc` with parameter signature
  /// `param_hash` (0 when parameters are unknown/irrelevant).
  void Record(const std::string& proc, uint64_t param_hash,
              double cpu_micros, double cardinality);

  /// Best estimate for the upcoming invocation: the parameter-specific
  /// variant when one exists, otherwise the moving average. `found` is
  /// false when the procedure has never run.
  ProcInvocationStats Estimate(const std::string& proc, uint64_t param_hash,
                               bool* found) const;

  size_t variant_count(const std::string& proc) const;

 private:
  struct Entry {
    ProcInvocationStats average;
    std::map<uint64_t, ProcInvocationStats> variants;
  };

  Options options_;
  mutable RankedMutex<LockRank::kProcStats> mu_;
  std::map<std::string, Entry> procs_ GUARDED_BY(mu_);
};

}  // namespace hdb::stats

#endif  // HDB_STATS_PROC_STATS_H_
