#include "stats/stats_registry.h"

#include <algorithm>

#include "common/ophash.h"
#include "stats/greenwald.h"

namespace hdb::stats {

void StatsRegistry::BuildColumn(const catalog::TableDef& table, int col,
                                const std::vector<Value>& values,
                                size_t sketch_threshold) {
  const TypeId type = table.columns[col].type;
  ColumnStats stats;
  stats.type = type;

  double null_count = 0;
  std::vector<double> hashes;
  hashes.reserve(values.size());
  bool long_string = false;
  for (const Value& v : values) {
    if (v.is_null()) {
      null_count += 1;
      continue;
    }
    if (type == TypeId::kVarchar &&
        v.AsString().size() > kLongStringThreshold) {
      long_string = true;
    }
    hashes.push_back(OrderPreservingHash(v));
  }

  if (type == TypeId::kVarchar) {
    stats.strings = std::make_unique<StringStats>();
    for (const Value& v : values) {
      if (!v.is_null()) stats.strings->RecordValue(v.AsString());
    }
  }
  stats.long_string = long_string;

  if (!long_string) {
    if (hashes.size() > sketch_threshold) {
      // Greenwald path: boundaries from the sketch; frequent values from a
      // sample (the paper's "marginal reduction in quality").
      GreenwaldSketch sketch;
      for (const double h : hashes) sketch.Insert(h);
      const auto bounds = sketch.EquiDepthBoundaries(20);
      const double per_bucket =
          bounds.size() > 1
              ? static_cast<double>(hashes.size()) /
                    static_cast<double>(bounds.size() - 1)
              : static_cast<double>(hashes.size());
      auto hist = Histogram::FromBoundaries(type, bounds, per_bucket,
                                            null_count);
      // Frequent-value pass over a 10% stride sample, fed as feedback.
      std::map<double, size_t> sample_counts;
      size_t sampled = 0;
      for (size_t i = 0; i < hashes.size(); i += 10) {
        sample_counts[hashes[i]]++;
        ++sampled;
      }
      for (const auto& [v, c] : sample_counts) {
        const double frac = static_cast<double>(c) / sampled;
        if (frac >= 0.01) hist.FeedbackEquals(v, frac);
      }
      stats.histogram = std::make_unique<Histogram>(std::move(hist));
    } else {
      stats.histogram = std::make_unique<Histogram>(
          Histogram::Build(type, std::move(hashes), null_count));
    }
  }

  LockGuard lock(mu_);
  columns_[{table.oid, col}] = std::move(stats);
}

void StatsRegistry::DropTable(uint32_t table_oid) {
  LockGuard lock(mu_);
  for (auto it = columns_.begin(); it != columns_.end();) {
    if (it->first.first == table_oid) {
      it = columns_.erase(it);
    } else {
      ++it;
    }
  }
}

bool StatsRegistry::HasStats(uint32_t table_oid, int col) const {
  LockGuard lock(mu_);
  const auto it = columns_.find({table_oid, col});
  return it != columns_.end() &&
         (it->second.histogram != nullptr || it->second.strings != nullptr);
}

ColumnStats& StatsRegistry::Ensure(uint32_t table_oid, int col, TypeId type) {
  LockGuard lock(mu_);
  ColumnStats& s = columns_[{table_oid, col}];
  if (s.histogram == nullptr && s.strings == nullptr) {
    s.type = type;
    s.histogram = std::make_unique<Histogram>(type);
    if (type == TypeId::kVarchar) {
      s.strings = std::make_unique<StringStats>();
    }
  }
  return s;
}

const ColumnStats* StatsRegistry::Get(uint32_t table_oid, int col) const {
  LockGuard lock(mu_);
  const auto it = columns_.find({table_oid, col});
  return it == columns_.end() ? nullptr : &it->second;
}

double StatsRegistry::SelEquals(uint32_t table_oid, int col,
                                const Value& v) const {
  LockGuard lock(mu_);
  const auto it = columns_.find({table_oid, col});
  if (it == columns_.end()) return DefaultSelectivity::kEquals;
  const ColumnStats& s = it->second;
  if (s.long_string && s.strings != nullptr && v.type() == TypeId::kVarchar) {
    bool found = false;
    const double est =
        s.strings->Estimate(StringPredicate::kEquals, v.AsString(), &found);
    return found ? est : DefaultSelectivity::kEquals;
  }
  if (s.histogram == nullptr) return DefaultSelectivity::kEquals;
  return s.histogram->EstimateEquals(OrderPreservingHash(v));
}

double StatsRegistry::SelRange(uint32_t table_oid, int col, const Value* lo,
                               bool lo_inclusive, const Value* hi,
                               bool hi_inclusive) const {
  LockGuard lock(mu_);
  const auto it = columns_.find({table_oid, col});
  if (it == columns_.end() || it->second.histogram == nullptr) {
    return DefaultSelectivity::kRange;
  }
  const Histogram& h = *it->second.histogram;
  const double l = lo != nullptr ? OrderPreservingHash(*lo) : h.min_value();
  const double r = hi != nullptr ? OrderPreservingHash(*hi) : h.max_value();
  return h.EstimateRange(l, lo == nullptr || lo_inclusive, r,
                         hi == nullptr || hi_inclusive);
}

double StatsRegistry::SelIsNull(uint32_t table_oid, int col) const {
  LockGuard lock(mu_);
  const auto it = columns_.find({table_oid, col});
  if (it == columns_.end() || it->second.histogram == nullptr) {
    return DefaultSelectivity::kIsNull;
  }
  return it->second.histogram->EstimateIsNull();
}

double StatsRegistry::SelLike(uint32_t table_oid, int col,
                              const std::string& pattern) const {
  LockGuard lock(mu_);
  const auto it = columns_.find({table_oid, col});
  if (it == columns_.end()) return DefaultSelectivity::kLike;
  const ColumnStats& s = it->second;

  // '%word%' -> word statistics.
  if (pattern.size() > 2 && pattern.front() == '%' && pattern.back() == '%' &&
      pattern.find('%', 1) == pattern.size() - 1 &&
      pattern.find('_') == std::string::npos) {
    if (s.strings != nullptr) {
      bool found = false;
      const double est = s.strings->EstimateLikeWord(
          pattern.substr(1, pattern.size() - 2), &found);
      if (found) return est;
    }
    return DefaultSelectivity::kLike;
  }
  // 'prefix%' -> histogram range on the hash domain.
  const size_t pct = pattern.find('%');
  if (pct != std::string::npos && pct > 0 &&
      pattern.find('_') == std::string::npos && s.histogram != nullptr) {
    const std::string prefix = pattern.substr(0, pct);
    std::string upper = prefix;
    upper.back() = static_cast<char>(upper.back() + 1);
    return s.histogram->EstimateRange(
        OrderPreservingHash(Value::String(prefix)), true,
        OrderPreservingHash(Value::String(upper)), false);
  }
  if (s.strings != nullptr) {
    bool found = false;
    const double est =
        s.strings->Estimate(StringPredicate::kLike, pattern, &found);
    if (found) return est;
  }
  return DefaultSelectivity::kLike;
}

void StatsRegistry::OnInsertValue(uint32_t table_oid, int col,
                                  const Value& v) {
  LockGuard lock(mu_);
  const auto it = columns_.find({table_oid, col});
  if (it == columns_.end()) return;  // no stats yet: nothing to maintain
  ColumnStats& s = it->second;
  if (s.histogram != nullptr) {
    s.histogram->OnInsert(v.is_null() ? 0 : OrderPreservingHash(v),
                          v.is_null());
  }
  if (s.strings != nullptr && !v.is_null() &&
      v.type() == TypeId::kVarchar) {
    s.strings->RecordValue(v.AsString());
    if (v.AsString().size() > kLongStringThreshold) s.long_string = true;
  }
}

void StatsRegistry::OnDeleteValue(uint32_t table_oid, int col,
                                  const Value& v) {
  LockGuard lock(mu_);
  const auto it = columns_.find({table_oid, col});
  if (it == columns_.end()) return;
  ColumnStats& s = it->second;
  if (s.histogram != nullptr) {
    s.histogram->OnDelete(v.is_null() ? 0 : OrderPreservingHash(v),
                          v.is_null());
  }
  if (s.strings != nullptr && !v.is_null() &&
      v.type() == TypeId::kVarchar) {
    s.strings->RecordDelete(v.AsString());
  }
}

void StatsRegistry::FeedbackEquals(uint32_t table_oid, int col,
                                   const Value& v, double observed) {
  LockGuard lock(mu_);
  const auto it = columns_.find({table_oid, col});
  if (it == columns_.end()) return;
  ColumnStats& s = it->second;
  if (s.long_string && s.strings != nullptr &&
      v.type() == TypeId::kVarchar) {
    s.strings->RecordPredicate(StringPredicate::kEquals, v.AsString(),
                               observed);
    return;
  }
  if (s.histogram != nullptr) {
    s.histogram->FeedbackEquals(OrderPreservingHash(v), observed);
  }
}

void StatsRegistry::FeedbackRange(uint32_t table_oid, int col,
                                  const Value* lo, const Value* hi,
                                  double observed) {
  LockGuard lock(mu_);
  const auto it = columns_.find({table_oid, col});
  if (it == columns_.end() || it->second.histogram == nullptr) return;
  Histogram& h = *it->second.histogram;
  const double l = lo != nullptr ? OrderPreservingHash(*lo) : h.min_value();
  const double r = hi != nullptr ? OrderPreservingHash(*hi) : h.max_value();
  h.FeedbackRange(l, r, observed);
}

void StatsRegistry::FeedbackIsNull(uint32_t table_oid, int col,
                                   double observed) {
  LockGuard lock(mu_);
  const auto it = columns_.find({table_oid, col});
  if (it == columns_.end() || it->second.histogram == nullptr) return;
  it->second.histogram->FeedbackIsNull(observed);
}

void StatsRegistry::FeedbackString(uint32_t table_oid, int col,
                                   StringPredicate pred,
                                   const std::string& operand,
                                   double observed) {
  LockGuard lock(mu_);
  const auto it = columns_.find({table_oid, col});
  if (it == columns_.end() || it->second.strings == nullptr) return;
  it->second.strings->RecordPredicate(pred, operand, observed);
}

size_t StatsRegistry::column_count() const {
  LockGuard lock(mu_);
  return columns_.size();
}

}  // namespace hdb::stats
