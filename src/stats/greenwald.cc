#include "stats/greenwald.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hdb::stats {

GreenwaldSketch::GreenwaldSketch(double epsilon, size_t buffer_size)
    : epsilon_(epsilon), buffer_capacity_(std::max<size_t>(1, buffer_size)) {
  buffer_.reserve(buffer_capacity_);
}

void GreenwaldSketch::Insert(double v) {
  buffer_.push_back(v);
  if (buffer_.size() >= buffer_capacity_) FlushBuffer();
}

void GreenwaldSketch::FlushBuffer() const {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());
  // Merge the sorted batch into the tuple list.
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + buffer_.size());
  size_t ti = 0;
  for (const double v : buffer_) {
    while (ti < tuples_.size() && tuples_[ti].v <= v) {
      merged.push_back(tuples_[ti++]);
    }
    // New tuple: g = 1; delta = floor(2*eps*n) except at the extremes.
    const bool extreme = merged.empty() || ti >= tuples_.size();
    const size_t delta =
        extreme ? 0
                : static_cast<size_t>(std::floor(2.0 * epsilon_ *
                                                 static_cast<double>(n_)));
    merged.push_back(Tuple{v, 1, delta});
    ++n_;
  }
  while (ti < tuples_.size()) merged.push_back(tuples_[ti++]);
  tuples_ = std::move(merged);
  buffer_.clear();
  Compress();
}

void GreenwaldSketch::Compress() const {
  if (tuples_.size() < 3) return;
  const auto threshold =
      static_cast<size_t>(std::floor(2.0 * epsilon_ * static_cast<double>(n_)));
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  out.push_back(tuples_.front());
  for (size_t i = 1; i + 1 < tuples_.size(); ++i) {
    const Tuple& t = tuples_[i];
    Tuple& prev = out.back();
    // Merge t into its successor when band capacity allows; here we use
    // the simpler pairwise rule: fold t into prev when the combined
    // uncertainty stays within threshold.
    if (prev.g + t.g + t.delta <= threshold && out.size() > 1) {
      prev.g += t.g;
      prev.v = t.v;
      prev.delta = t.delta;
    } else {
      out.push_back(t);
    }
  }
  out.push_back(tuples_.back());
  tuples_ = std::move(out);
}

double GreenwaldSketch::Quantile(double phi) const {
  FlushBuffer();
  if (tuples_.empty()) return 0.0;
  phi = std::clamp(phi, 0.0, 1.0);
  const double target = phi * static_cast<double>(n_);
  const auto bound = static_cast<double>(
      std::floor(epsilon_ * static_cast<double>(n_)));
  double rmin = 0;
  for (const Tuple& t : tuples_) {
    rmin += static_cast<double>(t.g);
    const double rmax = rmin + static_cast<double>(t.delta);
    if (rmax >= target - bound && rmin <= target + bound) return t.v;
    if (rmin > target + bound) return t.v;
  }
  return tuples_.back().v;
}

std::vector<double> GreenwaldSketch::EquiDepthBoundaries(size_t k) const {
  FlushBuffer();
  std::vector<double> bounds;
  if (tuples_.empty() || k == 0) return bounds;
  bounds.reserve(k + 1);
  for (size_t i = 0; i <= k; ++i) {
    bounds.push_back(Quantile(static_cast<double>(i) / static_cast<double>(k)));
  }
  // Boundaries must strictly increase where possible.
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  return bounds;
}

}  // namespace hdb::stats
