#ifndef HDB_STATS_GREENWALD_H_
#define HDB_STATS_GREENWALD_H_

#include <cstddef>
#include <vector>

namespace hdb::stats {

/// Greenwald-style self-scaling quantile sketch (paper §3.2: "a modified
/// version of Greenwald's algorithm is used to create the cumulative
/// distribution function for each table column").
///
/// This is the GK (Greenwald-Khanna) summary with the paper's spirit of
/// modification for lower overhead: inserts are buffered and merged in
/// sorted batches, and compression runs every batch rather than every
/// insert — a large constant-factor saving for "a marginal reduction in
/// quality". Guarantees rank error <= epsilon * n at query time.
class GreenwaldSketch {
 public:
  explicit GreenwaldSketch(double epsilon = 0.005, size_t buffer_size = 1024);

  void Insert(double v);

  /// Number of values inserted.
  size_t count() const { return n_ + buffer_.size(); }

  /// Value with approximate rank `phi * n`, phi in [0, 1].
  double Quantile(double phi) const;

  /// k+1 boundaries for k equi-depth buckets (min, q_1/k, ..., max).
  std::vector<double> EquiDepthBoundaries(size_t k) const;

  /// Sketch size, for overhead accounting.
  size_t tuple_count() const { return tuples_.size(); }

 private:
  struct Tuple {
    double v;
    size_t g;      // rank gap to the previous tuple
    size_t delta;  // rank uncertainty
  };

  void FlushBuffer() const;
  void Compress() const;

  double epsilon_;
  size_t buffer_capacity_;
  // Mutable: Quantile() must flush pending inserts; logically const.
  mutable std::vector<Tuple> tuples_;
  mutable std::vector<double> buffer_;
  mutable size_t n_ = 0;
};

}  // namespace hdb::stats

#endif  // HDB_STATS_GREENWALD_H_
