#include "stats/join_histogram.h"

#include <algorithm>
#include <cmath>
#include <mutex>

namespace hdb::stats {

JoinHistogram::JoinHistogram(const Histogram& left, const Histogram& right) {
  // Pin both inputs for the whole computation (singleton_buckets() is
  // iterated directly). Lock in address order to avoid deadlocking against
  // a concurrent JoinHistogram(right, left); a self-join locks only once
  // (the recursive mutex would allow it, but there is only one mutex).
  const Histogram* first = &left < &right ? &left : &right;
  const Histogram* second = &left < &right ? &right : &left;
  auto first_lock = first->Lock();
  auto second_lock = first == second ? decltype(second->Lock())()
                                     : second->Lock();

  const double ltotal = left.total_rows();
  const double rtotal = right.total_rows();
  if (ltotal < 1 || rtotal < 1) {
    selectivity_ = 0;
    return;
  }

  // 1. Singleton x (singleton or bucket): exact frequent-value matching.
  //    EstimateEquals on the other side covers both cases (it consults the
  //    other side's singletons first, then its density).
  double pairs = 0;
  for (const auto& [v, lcount] : left.singleton_buckets()) {
    const double rfrac = right.EstimateEquals(v);
    const double p = lcount * rfrac * rtotal;
    pairs += p;
    if (right.singleton_buckets().count(v) != 0) {
      ss_pairs_ += p;
    } else {
      sb_pairs_ += p;
    }
  }
  // 2. Right singletons against the left's non-singleton mass (the left's
  //    own singletons were already handled above; EstimateEquals excludes
  //    them here by construction since v is not a left singleton).
  for (const auto& [v, rcount] : right.singleton_buckets()) {
    if (left.singleton_buckets().count(v) != 0) continue;
    const double lfrac = left.EstimateEquals(v);
    const double p = rcount * lfrac * ltotal;
    pairs += p;
    sb_pairs_ += p;
  }

  // 3. Non-singleton x non-singleton over the domain overlap: containment
  //    assumption — every value on the smaller-distinct side finds a
  //    partner; expected pairs = (l_rows * r_rows) / max(distincts).
  const double lo = std::max(left.min_value(), right.min_value());
  const double hi = std::min(left.max_value(), right.max_value());
  if (lo <= hi) {
    const double lrows = left.NonSingletonRangeRows(lo, hi);
    const double rrows = right.NonSingletonRangeRows(lo, hi);
    // Scale each side's distinct count by the fraction of its domain that
    // overlaps (uniform-spread assumption).
    const auto domain_frac = [lo, hi](const Histogram& h) {
      const double w = h.max_value() - h.min_value();
      if (w <= 0) return 1.0;
      return std::clamp((hi - lo) / w, 0.0, 1.0);
    };
    const double ld = std::max(1.0, left.NonSingletonDistinct() * domain_frac(left));
    const double rd = std::max(1.0, right.NonSingletonDistinct() * domain_frac(right));
    const double p = lrows * rrows / std::max(ld, rd);
    pairs += p;
    bb_pairs_ = p;
  }

  selectivity_ = std::clamp(pairs / (ltotal * rtotal), 0.0, 1.0);
}

}  // namespace hdb::stats
