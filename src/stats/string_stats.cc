#include "stats/string_stats.h"

#include <algorithm>

#include "common/ophash.h"

namespace hdb::stats {

uint64_t StringStats::BucketKey(StringPredicate pred,
                                std::string_view operand) {
  return LongStringHash(operand) ^
         (0x517cc1b727220a95ull * (static_cast<uint64_t>(pred) + 1));
}

void StringStats::Touch(uint64_t key) {
  auto it = lru_pos_.find(key);
  if (it != lru_pos_.end()) lru_.erase(it->second);
  lru_.push_front(key);
  lru_pos_[key] = lru_.begin();
}

void StringStats::EvictIfNeeded() {
  while (buckets_.size() > max_buckets_ && !lru_.empty()) {
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    lru_pos_.erase(victim);
    buckets_.erase(victim);
  }
}

void StringStats::RecordPredicate(StringPredicate pred,
                                  std::string_view operand,
                                  double observed_fraction) {
  const uint64_t key = BucketKey(pred, operand);
  Bucket& b = buckets_[key];
  // Damped update so a single unusual execution does not erase history.
  b.selectivity = b.hits == 0
                      ? observed_fraction
                      : 0.5 * b.selectivity + 0.5 * observed_fraction;
  b.hits++;
  Touch(key);
  EvictIfNeeded();
}

void StringStats::RecordValue(std::string_view value) {
  ++rows_seen_;
  for (const std::string& w : ExtractWords(value)) {
    words_[LongStringHash(w)] += 1.0;
  }
}

void StringStats::RecordDelete(std::string_view value) {
  if (rows_seen_ > 0) --rows_seen_;
  for (const std::string& w : ExtractWords(value)) {
    auto it = words_.find(LongStringHash(w));
    if (it != words_.end()) {
      it->second = std::max(0.0, it->second - 1.0);
      if (it->second == 0.0) words_.erase(it);
    }
  }
}

double StringStats::Estimate(StringPredicate pred, std::string_view operand,
                             bool* found) const {
  const auto it = buckets_.find(BucketKey(pred, operand));
  if (it == buckets_.end()) {
    *found = false;
    return 0.0;
  }
  *found = true;
  return it->second.selectivity;
}

double StringStats::EstimateLikeWord(std::string_view word,
                                     bool* found) const {
  // Exact predicate bucket first.
  double est = Estimate(StringPredicate::kLike, word, found);
  if (*found) return est;
  // Word document frequency.
  const auto it = words_.find(LongStringHash(word));
  if (it != words_.end() && rows_seen_ > 0) {
    *found = true;
    return std::min(1.0, it->second / static_cast<double>(rows_seen_));
  }
  *found = false;
  return 0.0;
}

}  // namespace hdb::stats
