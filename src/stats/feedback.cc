#include "stats/feedback.h"

#include "common/ophash.h"

namespace hdb::stats {

void FeedbackCollector::ObserveEquals(uint32_t table_oid, int col,
                                      const Value& operand, bool matched) {
  AggKey key;
  key.table_oid = table_oid;
  key.col = col;
  key.kind = Kind::kEquals;
  key.lo = OrderPreservingHash(operand);
  key.has_lo = true;
  if (operand.type() == TypeId::kVarchar && !operand.is_null()) {
    key.text = operand.AsString();
  }
  Agg& a = aggregates_[key];
  if (a.seen == 0) a.lo_value = operand;
  a.seen++;
  if (matched) a.matched++;
}

void FeedbackCollector::ObserveRange(uint32_t table_oid, int col,
                                     const std::optional<Value>& lo,
                                     const std::optional<Value>& hi,
                                     bool matched) {
  AggKey key;
  key.table_oid = table_oid;
  key.col = col;
  key.kind = Kind::kRange;
  if (lo.has_value()) {
    key.lo = OrderPreservingHash(*lo);
    key.has_lo = true;
  }
  if (hi.has_value()) {
    key.hi = OrderPreservingHash(*hi);
    key.has_hi = true;
  }
  Agg& a = aggregates_[key];
  if (a.seen == 0) {
    a.lo_value = lo;
    a.hi_value = hi;
  }
  a.seen++;
  if (matched) a.matched++;
}

void FeedbackCollector::ObserveIsNull(uint32_t table_oid, int col,
                                      bool matched) {
  AggKey key;
  key.table_oid = table_oid;
  key.col = col;
  key.kind = Kind::kIsNull;
  Agg& a = aggregates_[key];
  a.seen++;
  if (matched) a.matched++;
}

void FeedbackCollector::ObserveLike(uint32_t table_oid, int col,
                                    const std::string& pattern,
                                    bool matched) {
  AggKey key;
  key.table_oid = table_oid;
  key.col = col;
  key.kind = Kind::kLike;
  key.text = pattern;
  Agg& a = aggregates_[key];
  a.seen++;
  if (matched) a.matched++;
}

void FeedbackCollector::Flush(StatsRegistry* registry) {
  for (const auto& [key, agg] : aggregates_) {
    if (agg.seen < options_.min_rows) continue;
    const double observed =
        static_cast<double>(agg.matched) / static_cast<double>(agg.seen);
    switch (key.kind) {
      case Kind::kEquals:
        if (agg.lo_value.has_value()) {
          registry->FeedbackEquals(key.table_oid, key.col, *agg.lo_value,
                                   observed);
        }
        break;
      case Kind::kRange: {
        const Value* lo =
            agg.lo_value.has_value() ? &*agg.lo_value : nullptr;
        const Value* hi =
            agg.hi_value.has_value() ? &*agg.hi_value : nullptr;
        registry->FeedbackRange(key.table_oid, key.col, lo, hi, observed);
        break;
      }
      case Kind::kIsNull:
        registry->FeedbackIsNull(key.table_oid, key.col, observed);
        break;
      case Kind::kLike:
        registry->FeedbackString(key.table_oid, key.col,
                                 StringPredicate::kLike, key.text, observed);
        break;
    }
  }
  aggregates_.clear();
}

}  // namespace hdb::stats
