#ifndef HDB_STATS_HISTOGRAM_H_
#define HDB_STATS_HISTOGRAM_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/types.h"

#include "common/lock_rank.h"

namespace hdb::stats {

struct HistogramOptions {
  int target_buckets = 20;
  int max_buckets = 64;
  int max_singletons = 100;
  double singleton_threshold = 0.01;
  /// EWMA weight of new feedback against the stored estimate.
  double feedback_gain = 0.5;
  /// Restructure (split/merge/promote/demote) every this many updates.
  int restructure_period = 64;
};

/// Self-managing single-column histogram (paper §3.1).
///
/// Combines equi-depth buckets with frequent-value "singleton" buckets:
///  * a value holding at least `singleton_threshold` (default 1%) of the
///    rows — or ranking in the top N — is kept as a singleton bucket, up to
///    `max_singletons` (the paper's range [0, 100]);
///  * remaining values live in equi-depth buckets over the
///    order-preserving-hash domain, interpolated uniformly with the
///    column's *value width* keeping the domain discrete;
///  * a *density* value — the average selectivity of one non-singleton
///    value — guides equality and join estimates;
///  * the bucket set expands and contracts dynamically as feedback and DML
///    reveal distribution change; a histogram may degenerate to the
///    compressed all-singletons form.
///
/// All counts are stored as doubles; estimates are fractions of the
/// table's rows (including NULLs, which never satisfy comparisons).
///
/// Thread safety: the optimizer estimates against a histogram while DML
/// maintenance mutates it concurrently, so every public entry point takes
/// an internal lock. It is recursive because public methods call each
/// other (e.g. FeedbackEquals -> EstimateEquals, OnInsert -> density).
class Histogram {
 public:
  using Options = HistogramOptions;

  explicit Histogram(TypeId type, Options options = {});

  // Movable (factories return by value); a moved-from histogram must not
  // be used concurrently with the move itself.
  Histogram(Histogram&& other) noexcept;
  Histogram& operator=(Histogram&& other) noexcept;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Builds from a full value sample (NULLs passed via `null_count`).
  /// Values are order-preserving hash codes; need not be sorted.
  static Histogram Build(TypeId type, std::vector<double> values,
                         double null_count = 0, Options options = {});

  /// Builds from pre-computed equi-depth boundaries (the Greenwald path),
  /// with `rows_per_bucket` rows in each.
  static Histogram FromBoundaries(TypeId type,
                                  const std::vector<double>& boundaries,
                                  double rows_per_bucket,
                                  double null_count = 0, Options options = {});

  // --- Estimation (fractions in [0, 1] of all rows) ---
  double EstimateEquals(double v) const;
  double EstimateRange(double lo, bool lo_inclusive, double hi,
                       bool hi_inclusive) const;
  double EstimateIsNull() const;
  double density() const;
  /// Estimated number of distinct non-null values.
  double EstimateDistinct() const;

  // --- DML maintenance (paper §3.2) ---
  void OnInsert(double v, bool is_null);
  void OnDelete(double v, bool is_null);

  // --- Query-feedback maintenance (paper §3, since 1992) ---
  void FeedbackEquals(double v, double observed_fraction);
  void FeedbackRange(double lo, double hi, double observed_fraction);
  void FeedbackIsNull(double observed_fraction);

  // --- Introspection ---
  double total_rows() const {
    LockGuard lock(mu_);
    return total_;
  }
  size_t bucket_count() const {
    LockGuard lock(mu_);
    return buckets_.size();
  }
  size_t singleton_count() const {
    LockGuard lock(mu_);
    return singletons_.size();
  }
  /// Compressed representation: only singleton buckets remain.
  bool all_singletons() const;
  /// Domain bounds, covering both equi-depth buckets and singleton
  /// buckets (a compressed all-singleton histogram has no buckets).
  double min_value() const {
    LockGuard lock(mu_);
    double lo = lo_;
    if (!singletons_.empty()) lo = std::min(lo, singletons_.begin()->first);
    return lo;
  }
  double max_value() const {
    LockGuard lock(mu_);
    double hi = buckets_.empty() ? lo_ : buckets_.back().hi;
    if (!singletons_.empty()) hi = std::max(hi, singletons_.rbegin()->first);
    return hi;
  }
  TypeId type() const { return type_; }

  /// Pins the histogram across several calls (the lock is recursive, so
  /// the individual calls still locking internally is fine). JoinHistogram
  /// uses this to read a consistent snapshot of both input histograms.
  /// The returned scoped capability transfers to the caller (copy-elided),
  /// which is how the analysis sees the pin.
  UniqueLock<RankedRecursiveMutex<LockRank::kHistogram>> Lock(
      LockSite site = HDB_LOCK_SITE) const ACQUIRE(mu_) {
    return UniqueLock<RankedRecursiveMutex<LockRank::kHistogram>>(mu_, site);
  }

  // --- Join-histogram support (paper §3.2) ---
  /// The frequent-value (singleton) buckets: value -> row count.
  /// Caller must hold Lock() while iterating.
  const std::map<double, double>& singleton_buckets() const REQUIRES(mu_) {
    return singletons_;
  }
  /// Interpolated non-singleton rows in [lo, hi].
  double NonSingletonRangeRows(double lo, double hi) const;
  /// Estimated distinct non-null, non-singleton values.
  double NonSingletonDistinct() const;

 private:
  struct Bucket {
    double hi;     // inclusive upper boundary
    double count;  // non-singleton rows in (previous hi, hi]
  };

  double BucketLo(size_t i) const REQUIRES(mu_) {
    return i == 0 ? lo_ : buckets_[i - 1].hi;
  }
  /// Index of the bucket containing v, or -1 when outside the domain.
  int FindBucket(double v) const REQUIRES(mu_);
  void ExtendDomain(double v) REQUIRES(mu_);
  void AddToBuckets(double v, double count) REQUIRES(mu_);
  void MaybeRestructure() REQUIRES(mu_);
  void Restructure() REQUIRES(mu_);
  double NonNullCount() const REQUIRES(mu_);
  double SingletonTotal() const REQUIRES(mu_);

  /// Guards every field below against concurrent estimate / maintenance.
  mutable RankedRecursiveMutex<LockRank::kHistogram> mu_;

  // Construction-time state: written only by the ctor and the (externally
  // serialized) move operations, read without the lock by type().
  TypeId type_;
  Options options_;
  double value_width_;

  // Inclusive lower bound of bucket domain.
  double lo_ GUARDED_BY(mu_) = 0;
  std::vector<Bucket> buckets_ GUARDED_BY(mu_);
  // Value -> row count.
  std::map<double, double> singletons_ GUARDED_BY(mu_);
  double null_count_ GUARDED_BY(mu_) = 0;
  double total_ GUARDED_BY(mu_) = 0;
  // Non-null distinct values.
  double distinct_estimate_ GUARDED_BY(mu_) = 0;
  int updates_since_restructure_ GUARDED_BY(mu_) = 0;
};

}  // namespace hdb::stats

#endif  // HDB_STATS_HISTOGRAM_H_
