#ifndef HDB_STATS_FEEDBACK_H_
#define HDB_STATS_FEEDBACK_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/value.h"
#include "stats/stats_registry.h"

namespace hdb::stats {

struct FeedbackOptions {
  /// Minimum rows observed before an aggregate is trusted.
  uint64_t min_rows = 16;
};

/// Gathers per-row predicate outcomes during query execution and folds
/// them into the StatsRegistry at statement end (paper §3: "the server
/// automatically collects statistics as part of query execution").
///
/// Per-row calls only aggregate counters in a small map; the histogram
/// updates happen once per (column, predicate) at Flush() — the paper's
/// "overhead ... must be carefully managed" constraint.
class FeedbackCollector {
 public:
  using Options = FeedbackOptions;

  explicit FeedbackCollector(Options options = {}) : options_(options) {}

  // Per-row observation hooks (hot path: map upsert + two increments).
  void ObserveEquals(uint32_t table_oid, int col, const Value& operand,
                     bool matched);
  void ObserveRange(uint32_t table_oid, int col,
                    const std::optional<Value>& lo,
                    const std::optional<Value>& hi, bool matched);
  void ObserveIsNull(uint32_t table_oid, int col, bool matched);
  void ObserveLike(uint32_t table_oid, int col, const std::string& pattern,
                   bool matched);

  /// Applies every aggregate with >= min_rows observations to `registry`
  /// and clears the collector.
  void Flush(StatsRegistry* registry);

  size_t pending() const { return aggregates_.size(); }

 private:
  enum class Kind : uint8_t { kEquals, kRange, kIsNull, kLike };

  struct AggKey {
    uint32_t table_oid;
    int col;
    Kind kind;
    // Operand identity: hash codes for values, text for LIKE.
    double lo = 0, hi = 0;
    bool has_lo = false, has_hi = false;
    std::string text;

    bool operator<(const AggKey& o) const {
      if (table_oid != o.table_oid) return table_oid < o.table_oid;
      if (col != o.col) return col < o.col;
      if (kind != o.kind) return kind < o.kind;
      if (lo != o.lo) return lo < o.lo;
      if (hi != o.hi) return hi < o.hi;
      if (has_lo != o.has_lo) return has_lo < o.has_lo;
      if (has_hi != o.has_hi) return has_hi < o.has_hi;
      return text < o.text;
    }
  };

  struct Agg {
    uint64_t seen = 0;
    uint64_t matched = 0;
    // Retained typed operands for registry calls.
    std::optional<Value> lo_value;
    std::optional<Value> hi_value;
  };

  Options options_;
  std::map<AggKey, Agg> aggregates_;
};

}  // namespace hdb::stats

#endif  // HDB_STATS_FEEDBACK_H_
