#ifndef HDB_STATS_STRING_STATS_H_
#define HDB_STATS_STRING_STATS_H_

#include <cstdint>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>

namespace hdb::stats {

/// Relational predicate kinds a long-string bucket can describe (paper
/// §3.1: equality, non-equality, BETWEEN, IS NULL, or LIKE).
enum class StringPredicate : uint8_t {
  kEquals = 0,
  kNotEquals,
  kBetween,
  kIsNull,
  kLike,
};

/// Statistics for long string/binary columns (paper §3.1).
///
/// Instead of bucket boundaries (which would store very long values), the
/// column keeps a bounded, LRU-evicted list of *observed predicates*: each
/// bucket is a non-order-preserving hash of the operand, the predicate
/// kind, and the selectivity last observed for it. In addition, when
/// values are collected, buckets are created for each *word* of the string
/// (any whitespace-separated run), which makes LIKE '%word%' estimable —
/// the pattern the paper found dominant in applications.
class StringStats {
 public:
  explicit StringStats(size_t max_buckets = 256) : max_buckets_(max_buckets) {}

  /// Records the observed selectivity of (predicate, operand) — query
  /// execution feedback.
  void RecordPredicate(StringPredicate pred, std::string_view operand,
                       double observed_fraction);

  /// Collects statistics from a stored value (INSERT / LOAD): maintains
  /// the word document frequencies.
  void RecordValue(std::string_view value);
  void RecordDelete(std::string_view value);

  /// Estimate for (predicate, operand); `found` reports whether a bucket
  /// existed (callers fall back to defaults otherwise).
  double Estimate(StringPredicate pred, std::string_view operand,
                  bool* found) const;

  /// Estimate for LIKE '%word%': word document frequency when known,
  /// otherwise falls back to any recorded LIKE bucket, else `found=false`.
  double EstimateLikeWord(std::string_view word, bool* found) const;

  uint64_t rows_seen() const { return rows_seen_; }
  size_t bucket_count() const { return buckets_.size(); }
  size_t word_count() const { return words_.size(); }

 private:
  struct Bucket {
    double selectivity = 0;
    uint64_t hits = 0;
  };
  static uint64_t BucketKey(StringPredicate pred, std::string_view operand);
  void Touch(uint64_t key);
  void EvictIfNeeded();

  size_t max_buckets_;
  uint64_t rows_seen_ = 0;
  std::unordered_map<uint64_t, Bucket> buckets_;
  // LRU order of bucket keys: front = most recent.
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> lru_pos_;
  // Word hash -> number of rows containing the word.
  std::unordered_map<uint64_t, double> words_;
};

}  // namespace hdb::stats

#endif  // HDB_STATS_STRING_STATS_H_
