#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/ophash.h"

namespace hdb::stats {

namespace {
constexpr double kEps = 1e-12;
}

Histogram::Histogram(TypeId type, Options options)
    : type_(type),
      options_(options),
      value_width_(OrderPreservingHashWidth(type)) {}

Histogram::Histogram(Histogram&& other) noexcept
    : type_(other.type_), options_(other.options_) {
  LockGuard lock(other.mu_);
  value_width_ = other.value_width_;
  lo_ = other.lo_;
  buckets_ = std::move(other.buckets_);
  singletons_ = std::move(other.singletons_);
  null_count_ = other.null_count_;
  total_ = other.total_;
  distinct_estimate_ = other.distinct_estimate_;
  updates_since_restructure_ = other.updates_since_restructure_;
}

// Opted out of the analysis: the address-ordered dual acquisition below
// locks through conditional aliases the analysis cannot map back to
// this->mu_ / other.mu_. The runtime rank checker still covers it.
Histogram& Histogram::operator=(Histogram&& other) noexcept
    NO_THREAD_SAFETY_ANALYSIS {
  if (this == &other) return *this;
  // Address-ordered like JoinHistogram: the recursive rank permits the
  // same-rank pair, ordering prevents an A=B / B=A deadlock.
  RankedRecursiveMutex<LockRank::kHistogram>* lo =
      this < &other ? &mu_ : &other.mu_;
  RankedRecursiveMutex<LockRank::kHistogram>* hi =
      this < &other ? &other.mu_ : &mu_;
  LockGuard lock_lo(*lo);
  LockGuard lock_hi(*hi);
  type_ = other.type_;
  options_ = other.options_;
  value_width_ = other.value_width_;
  lo_ = other.lo_;
  buckets_ = std::move(other.buckets_);
  singletons_ = std::move(other.singletons_);
  null_count_ = other.null_count_;
  total_ = other.total_;
  distinct_estimate_ = other.distinct_estimate_;
  updates_since_restructure_ = other.updates_since_restructure_;
  return *this;
}

Histogram Histogram::Build(TypeId type, std::vector<double> values,
                           double null_count, Options options) {
  Histogram h(type, options);
  // h is local, but its fields are annotated as mu_-guarded; hold the
  // (uncontended) lock so the builder is analyzed like everything else.
  LockGuard lock(h.mu_);
  h.null_count_ = null_count;
  h.total_ = null_count + static_cast<double>(values.size());
  if (values.empty()) return h;
  std::sort(values.begin(), values.end());

  // Pass 1: frequency count (values are sorted, so runs are adjacent).
  struct Run {
    double v;
    double count;
  };
  std::vector<Run> runs;
  for (size_t i = 0; i < values.size();) {
    size_t j = i;
    while (j < values.size() && values[j] == values[i]) ++j;
    runs.push_back(Run{values[i], static_cast<double>(j - i)});
    i = j;
  }
  h.distinct_estimate_ = static_cast<double>(runs.size());

  // Singletons: >= threshold of rows, or top-N, capped at max_singletons.
  const double n = static_cast<double>(values.size());
  std::vector<size_t> order(runs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&runs](size_t a, size_t b) {
    return runs[a].count > runs[b].count;
  });
  std::vector<bool> is_singleton(runs.size(), false);
  int taken = 0;
  for (const size_t idx : order) {
    if (taken >= options.max_singletons) break;
    if (runs[idx].count / n >= options.singleton_threshold) {
      is_singleton[idx] = true;
      ++taken;
    } else {
      break;  // sorted by count: nothing later qualifies
    }
  }
  double rest_total = 0;
  std::vector<Run> rest;
  for (size_t i = 0; i < runs.size(); ++i) {
    if (is_singleton[i]) {
      h.singletons_[runs[i].v] = runs[i].count;
    } else {
      rest.push_back(runs[i]);
      rest_total += runs[i].count;
    }
  }

  if (rest.empty()) {
    // Compressed all-singleton histogram.
    h.lo_ = runs.front().v;
    return h;
  }

  // Equi-depth buckets over the remaining values.
  h.lo_ = rest.front().v;
  const int nb = std::max(
      1, std::min(options.target_buckets, static_cast<int>(rest.size())));
  const double per_bucket = rest_total / nb;
  double acc = 0;
  Bucket cur{rest.front().v, 0};
  for (const Run& r : rest) {
    cur.count += r.count;
    cur.hi = r.v;
    acc += r.count;
    if (cur.count >= per_bucket && static_cast<int>(h.buckets_.size()) + 1 < nb) {
      h.buckets_.push_back(cur);
      cur = Bucket{r.v, 0};
    }
  }
  if (cur.count > 0 || h.buckets_.empty()) h.buckets_.push_back(cur);
  return h;
}

Histogram Histogram::FromBoundaries(TypeId type,
                                    const std::vector<double>& boundaries,
                                    double rows_per_bucket, double null_count,
                                    Options options) {
  Histogram h(type, options);
  // See Build: uncontended lock on the local so the analysis applies here.
  LockGuard lock(h.mu_);
  h.null_count_ = null_count;
  if (boundaries.size() < 2) {
    h.total_ = null_count;
    if (!boundaries.empty()) h.lo_ = boundaries[0];
    return h;
  }
  h.lo_ = boundaries.front();
  for (size_t i = 1; i < boundaries.size(); ++i) {
    h.buckets_.push_back(Bucket{boundaries[i], rows_per_bucket});
  }
  const double nrows = rows_per_bucket * (boundaries.size() - 1);
  h.total_ = null_count + nrows;
  // Without frequency information, assume a moderately distinct column.
  h.distinct_estimate_ = std::max(1.0, nrows / 4.0);
  return h;
}

double Histogram::NonNullCount() const {
  return std::max(0.0, total_ - null_count_);
}

double Histogram::SingletonTotal() const {
  double s = 0;
  for (const auto& [v, c] : singletons_) s += c;
  return s;
}

bool Histogram::all_singletons() const {
  LockGuard lock(mu_);
  if (singletons_.empty()) return false;
  double b = 0;
  for (const Bucket& bk : buckets_) b += bk.count;
  return b < 0.5;
}

int Histogram::FindBucket(double v) const {
  if (buckets_.empty() || v < lo_ || v > buckets_.back().hi) return -1;
  // Binary search over inclusive upper bounds.
  size_t lo = 0, hi = buckets_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (buckets_[mid].hi < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<int>(lo);
}

double Histogram::density() const {
  LockGuard lock(mu_);
  // Average selectivity of one non-singleton value.
  const double nonsingleton_rows = std::max(0.0, NonNullCount() - SingletonTotal());
  const double nonsingleton_distinct =
      std::max(1.0, distinct_estimate_ - static_cast<double>(singletons_.size()));
  if (total_ < kEps) return 0.0;
  return (nonsingleton_rows / nonsingleton_distinct) / total_;
}

double Histogram::EstimateDistinct() const {
  LockGuard lock(mu_);
  return std::max(distinct_estimate_, static_cast<double>(singletons_.size()));
}

double Histogram::EstimateIsNull() const {
  LockGuard lock(mu_);
  return total_ < kEps ? 0.0 : null_count_ / total_;
}

double Histogram::EstimateEquals(double v) const {
  LockGuard lock(mu_);
  if (total_ < kEps) return 0.0;
  const auto it = singletons_.find(v);
  if (it != singletons_.end()) return it->second / total_;
  const int b = FindBucket(v);
  if (b < 0) return 0.0;
  // Density, but never more than the whole bucket.
  const double bucket_frac = buckets_[b].count / total_;
  return std::min(density(), bucket_frac);
}

double Histogram::EstimateRange(double lo, bool lo_inclusive, double hi,
                                bool hi_inclusive) const {
  LockGuard lock(mu_);
  if (total_ < kEps || hi < lo) return 0.0;
  double rows = 0;

  // Singletons inside the range.
  for (auto it = singletons_.lower_bound(lo); it != singletons_.end(); ++it) {
    if (it->first > hi) break;
    if (it->first == lo && !lo_inclusive) continue;
    if (it->first == hi && !hi_inclusive) continue;
    rows += it->second;
  }

  // Buckets, with uniform interpolation; value width keeps the domain
  // discrete so [v, v] on an INT column means one value, not zero width.
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const double blo = BucketLo(i);
    const double bhi = buckets_[i].hi;
    if (bhi < lo || blo > hi) continue;
    const double cover_lo = std::max(lo, blo);
    const double cover_hi = std::min(hi, bhi);
    const double width = std::max(bhi - blo, value_width_);
    double frac = (cover_hi - cover_lo + value_width_) / (width + value_width_);
    frac = std::clamp(frac, 0.0, 1.0);
    rows += buckets_[i].count * frac;
  }
  return std::clamp(rows / total_, 0.0, 1.0);
}

double Histogram::NonSingletonRangeRows(double lo, double hi) const {
  LockGuard lock(mu_);
  double rows = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const double blo = BucketLo(i);
    const double bhi = buckets_[i].hi;
    if (bhi < lo || blo > hi) continue;
    const double width = std::max(bhi - blo, value_width_);
    const double cover =
        std::clamp((std::min(hi, bhi) - std::max(lo, blo) + value_width_) /
                       (width + value_width_),
                   0.0, 1.0);
    rows += buckets_[i].count * cover;
  }
  return rows;
}

double Histogram::NonSingletonDistinct() const {
  LockGuard lock(mu_);
  return std::max(
      1.0, distinct_estimate_ - static_cast<double>(singletons_.size()));
}

void Histogram::ExtendDomain(double v) {
  if (buckets_.empty()) {
    lo_ = v;
    buckets_.push_back(Bucket{v, 0});
    return;
  }
  if (v < lo_) lo_ = v;
  if (v > buckets_.back().hi) buckets_.back().hi = v;
}

void Histogram::AddToBuckets(double v, double count) {
  ExtendDomain(v);
  const int b = FindBucket(v);
  if (b >= 0) buckets_[b].count += count;
}

void Histogram::OnInsert(double v, bool is_null) {
  LockGuard lock(mu_);
  total_ += 1;
  if (is_null) {
    null_count_ += 1;
    return;
  }
  auto it = singletons_.find(v);
  if (it != singletons_.end()) {
    it->second += 1;
  } else {
    AddToBuckets(v, 1.0);
    // A fraction of inserts introduce new values; nudge the distinct
    // estimate with the long-run expectation 1/(1 + count(v)) ~ density.
    distinct_estimate_ += 1.0 / (1.0 + std::max(0.0, density() * total_));
  }
  ++updates_since_restructure_;
  MaybeRestructure();
}

void Histogram::OnDelete(double v, bool is_null) {
  LockGuard lock(mu_);
  if (total_ >= 1) total_ -= 1;
  if (is_null) {
    if (null_count_ >= 1) null_count_ -= 1;
    return;
  }
  auto it = singletons_.find(v);
  if (it != singletons_.end()) {
    it->second = std::max(0.0, it->second - 1);
  } else {
    const int b = FindBucket(v);
    if (b >= 0) buckets_[b].count = std::max(0.0, buckets_[b].count - 1);
  }
  ++updates_since_restructure_;
  MaybeRestructure();
}

void Histogram::FeedbackEquals(double v, double observed_fraction) {
  LockGuard lock(mu_);
  if (total_ < kEps) return;
  const double observed_rows = observed_fraction * total_;
  auto it = singletons_.find(v);
  const double gain = options_.feedback_gain;
  const double current = EstimateEquals(v);
  // A value whose observed frequency is far from its current estimate is
  // worth remembering individually, whether or not it crosses the 1%
  // threshold — the paper's top-N side of "at least 1% or 'top N'".
  const bool surprising =
      std::abs(observed_fraction - current) >
      0.5 * std::max({observed_fraction, current, 1e-6});
  if (it != singletons_.end()) {
    it->second = (1 - gain) * it->second + gain * observed_rows;
  } else if ((observed_fraction >= options_.singleton_threshold ||
              (surprising && observed_rows >= 1.0)) &&
             static_cast<int>(singletons_.size()) < options_.max_singletons) {
    // Promote to a singleton bucket; remove its mass from the bucket.
    singletons_[v] = observed_rows;
    const int b = FindBucket(v);
    if (b >= 0) {
      buckets_[b].count = std::max(0.0, buckets_[b].count - observed_rows);
    }
  } else if (!surprising) {
    // The observation is consistent with the density model: refine the
    // density estimate toward it, gently (one value must not whipsaw the
    // whole column's density).
    const double implied_distinct =
        observed_fraction > kEps
            ? (NonNullCount() - SingletonTotal()) / observed_rows
            : distinct_estimate_;
    const double gentle = 0.15;
    distinct_estimate_ =
        (1 - gentle) * distinct_estimate_ +
        gentle * std::max(1.0, implied_distinct +
                                   static_cast<double>(singletons_.size()));
  }
  ++updates_since_restructure_;
  MaybeRestructure();
}

void Histogram::FeedbackRange(double lo, double hi,
                              double observed_fraction) {
  LockGuard lock(mu_);
  if (total_ < kEps || buckets_.empty()) return;
  const double est = EstimateRange(lo, true, hi, true);
  if (est < kEps && observed_fraction < kEps) return;
  // Scale the overlapped portions of buckets by a damped correction
  // factor, leaving the rest of the distribution untouched (the
  // self-tuning-histogram update of Aboulnaga & Chaudhuri, which the paper
  // cites as the related rediscovery of its 1992 technique).
  double factor = (observed_fraction + kEps) / (est + kEps);
  const double gain = options_.feedback_gain;
  factor = (1 - gain) + gain * factor;
  factor = std::clamp(factor, 0.2, 5.0);
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const double blo = BucketLo(i);
    const double bhi = buckets_[i].hi;
    if (bhi < lo || blo > hi) continue;
    const double width = std::max(bhi - blo, value_width_);
    const double cover =
        std::clamp((std::min(hi, bhi) - std::max(lo, blo) + value_width_) /
                       (width + value_width_),
                   0.0, 1.0);
    const double affected = buckets_[i].count * cover;
    buckets_[i].count += affected * (factor - 1.0);
  }
  ++updates_since_restructure_;
  MaybeRestructure();
}

void Histogram::FeedbackIsNull(double observed_fraction) {
  LockGuard lock(mu_);
  const double gain = options_.feedback_gain;
  null_count_ =
      (1 - gain) * null_count_ + gain * observed_fraction * total_;
}

void Histogram::MaybeRestructure() {
  if (updates_since_restructure_ < options_.restructure_period) return;
  updates_since_restructure_ = 0;
  Restructure();
}

void Histogram::Restructure() {
  // Demote cold singletons, but only under budget pressure: sub-threshold
  // values planted by equality feedback (the top-N side of §3.1) are kept
  // while the [0, 100] budget has room.
  const bool crowded =
      static_cast<int>(singletons_.size()) > options_.max_singletons * 3 / 4;
  if (crowded) {
    for (auto it = singletons_.begin(); it != singletons_.end();) {
      if (total_ > kEps &&
          it->second / total_ < options_.singleton_threshold / 2) {
        AddToBuckets(it->first, it->second);
        it = singletons_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (buckets_.empty()) return;

  double bucket_total = 0;
  for (const Bucket& b : buckets_) bucket_total += b.count;
  if (bucket_total < kEps) return;
  const double target = bucket_total / options_.target_buckets;

  // Split overweight buckets (dynamic expansion).
  std::vector<Bucket> out;
  out.reserve(buckets_.size() + 4);
  double prev = lo_;
  for (const Bucket& b : buckets_) {
    if (b.count > 2 * target &&
        static_cast<int>(buckets_.size()) < options_.max_buckets &&
        b.hi - prev > 2 * value_width_) {
      const double mid = prev + (b.hi - prev) / 2;
      out.push_back(Bucket{mid, b.count / 2});
      out.push_back(Bucket{b.hi, b.count / 2});
    } else {
      out.push_back(b);
    }
    prev = b.hi;
  }
  // Merge adjacent underweight buckets (dynamic contraction).
  std::vector<Bucket> merged;
  merged.reserve(out.size());
  for (const Bucket& b : out) {
    if (!merged.empty() && merged.back().count + b.count < target / 2) {
      merged.back().count += b.count;
      merged.back().hi = b.hi;
    } else {
      merged.push_back(b);
    }
  }
  buckets_ = std::move(merged);
}

}  // namespace hdb::stats
