#ifndef HDB_TABLE_HEAP_PAGE_H_
#define HDB_TABLE_HEAP_PAGE_H_

#include <cstdint>
#include <cstring>

#include "storage/page.h"

namespace hdb::table {

// Slotted page layout, shared by TableHeap (the runtime mutator) and
// wal/recovery (which replays and inverts heap operations at exact
// page/slot positions, without going through TableHeap's append-anywhere
// API):
//   [HeapPageHeader][slot 0][slot 1]...        (grows up)
//   ...free space...
//   [row k bytes]...[row 1 bytes][row 0 bytes] (grows down)
//
// The LSN is the first field so the generic storage::PageLsn() stamp
// convention (storage/page.h) applies to heap pages.
struct HeapPageHeader {
  storage::Lsn lsn;
  storage::PageId next_page;
  uint16_t slot_count;
  uint16_t free_end;  // offset one past the end of free space (row data start)
};

struct HeapSlot {
  uint16_t offset;
  uint16_t len;  // 0 => deleted
};

inline constexpr size_t kHeapHeaderBytes = sizeof(HeapPageHeader);
inline constexpr size_t kHeapSlotBytes = sizeof(HeapSlot);

inline HeapPageHeader ReadHeapHeader(const char* page) {
  HeapPageHeader h;
  std::memcpy(&h, page, kHeapHeaderBytes);
  return h;
}

inline void WriteHeapHeader(char* page, const HeapPageHeader& h) {
  std::memcpy(page, &h, kHeapHeaderBytes);
}

inline HeapSlot ReadHeapSlot(const char* page, uint16_t i) {
  HeapSlot s;
  std::memcpy(&s, page + kHeapHeaderBytes + i * kHeapSlotBytes,
              kHeapSlotBytes);
  return s;
}

inline void WriteHeapSlot(char* page, uint16_t i, const HeapSlot& s) {
  std::memcpy(page + kHeapHeaderBytes + i * kHeapSlotBytes, &s,
              kHeapSlotBytes);
}

/// Initializes an empty heap page image of `page_bytes` capacity.
inline void InitHeapPage(char* page, uint32_t page_bytes) {
  HeapPageHeader h{storage::kNullLsn, storage::kInvalidPageId, 0,
                   static_cast<uint16_t>(page_bytes)};
  WriteHeapHeader(page, h);
}

}  // namespace hdb::table

#endif  // HDB_TABLE_HEAP_PAGE_H_
