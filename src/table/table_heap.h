#ifndef HDB_TABLE_TABLE_HEAP_H_
#define HDB_TABLE_TABLE_HEAP_H_

#include <functional>
#include <shared_mutex>
#include <string>
#include <string_view>

#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "catalog/schema.h"
#include "storage/buffer_pool.h"
#include "table/row_codec.h"
#include "wal/wal_manager.h"

#include "common/lock_rank.h"

namespace hdb::table {

/// Heap file of slotted pages holding one table's rows. Pages are chained
/// in allocation order (main space, PageType::kTable), so a full scan is a
/// sequential sweep — the access pattern the DTT model prices at band
/// size 1. Row count and page count are maintained live on the TableDef
/// (the paper's real-time table statistics, §3.2).
///
/// Thread safety: the heap carries a table-level reader/writer latch.
/// Page *frames* are latched by the buffer pool, but page *bytes* are
/// written through pinned handles after the pool latch is dropped, so
/// concurrent connections mutating one table's pages must be serialized
/// here. Readers (Get/Scan) take the latch shared, writers
/// (Insert/Delete/Update) exclusive; the latch is held per call, not per
/// statement — transaction-duration isolation is the LockManager's job.
class TableHeap {
 public:
  /// `wal` is nullable: without it (or with logging disabled) the heap
  /// mutates pages silently, which is the pre-WAL behavior and the
  /// HDB_WAL=OFF path. With it, every mutation appends a physiological
  /// record — page/slot position plus row payload — *before* the page
  /// bytes change, stamps the page LSN, and tags the frame so the buffer
  /// pool holds it behind the WAL flush barrier. Transaction attribution
  /// comes from the thread's wal::WalManager::TxnScope.
  TableHeap(storage::BufferPool* pool, catalog::TableDef* def,
            wal::WalManager* wal = nullptr);

  /// Appends an encoded row; returns its Rid.
  Result<Rid> Insert(std::string_view row_bytes);

  /// Reads the row at `rid`.
  Result<std::string> Get(Rid rid) const;

  /// Marks the row deleted. Returns NotFound for dead/invalid rids.
  Status Delete(Rid rid);

  /// In-place update when the new image fits in the old slot; otherwise
  /// delete + re-insert, returning the (possibly new) Rid.
  Result<Rid> Update(Rid rid, std::string_view row_bytes);

  /// Pull-based full scan.
  class Iterator {
   public:
    /// Advances to the next live row; false at end of table.
    bool Next(Rid* rid, std::string* row_bytes);

    /// Batched step: decodes up to `max_rows` live rows into
    /// `rows`/`rids`, reusing their Value buffers. One shared-latch
    /// acquisition and one page pin per *page* visited instead of one per
    /// row, and one codec call per row straight off the pinned page —
    /// this is the scan fast path. Returns the number of rows produced
    /// (0 at end of table); `rows`/`rids` are grown to `max_rows` but
    /// only the first n entries are meaningful. `decoder` (optional) is a
    /// prepared RowDecoder — column pruning plus fixed-offset decode for
    /// scans that reference a subset of the row.
    Result<size_t> NextRows(size_t max_rows, std::vector<Row>* rows,
                            std::vector<Rid>* rids,
                            const RowDecoder* decoder = nullptr);

    /// Same batched step, but hands out the raw encoded bytes (string
    /// capacity reused) for consumers that decode elsewhere — the
    /// parallel-scan RowDispenser.
    Result<size_t> NextBytes(size_t max_rows,
                             std::vector<std::string>* bytes,
                             std::vector<Rid>* rids);

   private:
    friend class TableHeap;
    Iterator(const TableHeap* heap, storage::PageId page)
        : heap_(heap), page_(page) {}
    const TableHeap* heap_;
    storage::PageId page_;
    uint16_t slot_ = 0;
  };

  Iterator Scan() const;

  /// Scans calling `fn(rid, bytes)`; stops early when fn returns false.
  Status ScanAll(
      const std::function<bool(Rid, std::string_view)>& fn) const;

  /// Batched point reads: decodes the rows at `rids[0..n)` into
  /// `(*rows)[0..n)` (buffers reused) under a single shared-latch
  /// acquisition, keeping the current page pinned across consecutive
  /// rids that hit it. NotFound if any rid is dead/invalid.
  Status GetMany(const Rid* rids, size_t n, std::vector<Row>* rows) const;

  catalog::TableDef* def() { return def_; }
  const catalog::TableDef* def() const { return def_; }

 private:
  friend class Iterator;

  // Unlatched bodies; public methods take latch_ and delegate here so
  // Update can compose Delete + Insert under one exclusive acquisition.
  Result<Rid> InsertLocked(std::string_view row_bytes) REQUIRES(latch_);
  Status DeleteLocked(Rid rid) REQUIRES(latch_);

  // Page layout lives in table/heap_page.h, shared with wal/recovery.
  Result<Rid> InsertIntoPage(storage::PageId page_id,
                             std::string_view row_bytes, bool* fit)
      REQUIRES(latch_);
  Status AppendPage() REQUIRES(latch_);

  /// Appends a WAL record for a mutation about to be applied, attributed
  /// to the calling thread's transaction, registering the LSN as in-flight
  /// in `inflight` until the caller has published it to the touched
  /// frame(s) via MarkDirty(lsn) (checkpoint race, see
  /// wal::WalManager::InflightLsn). Returns kNullLsn when logging is off.
  Result<storage::Lsn> LogOp(wal::WalRecordType type, std::string payload,
                             wal::WalManager::InflightLsn* inflight)
      REQUIRES(latch_);

  storage::BufferPool* pool_;
  catalog::TableDef* def_;
  wal::WalManager* wal_;
  mutable RankedSharedMutex<LockRank::kTableHeap> latch_;
};

}  // namespace hdb::table

#endif  // HDB_TABLE_TABLE_HEAP_H_
