#include "table/table_heap.h"

#include <cstring>
#include <optional>
#include <utility>

#include "table/heap_page.h"
#include "wal/wal_record.h"

namespace hdb::table {

// Slotted page layout: see table/heap_page.h (shared with wal/recovery).
//
// WAL protocol for every mutator below: encode the physiological record,
// append it to the log *before* touching the page bytes, then apply the
// change, stamp the page LSN, and MarkDirty(lsn) so the buffer pool's
// flush barrier orders the page write behind the log. All of this happens
// under the heap's exclusive latch, so record order in the log matches
// byte order on the page. The append-to-MarkDirty window is bracketed by
// a wal::WalManager::InflightLsn guard: a fuzzy checkpoint firing from
// another connection inside that window would otherwise see the pinned
// frame as clean, record a redo start past our LSN, and lose the change
// if the process crashed before the frame was flushed.

TableHeap::TableHeap(storage::BufferPool* pool, catalog::TableDef* def,
                     wal::WalManager* wal)
    : pool_(pool), def_(def), wal_(wal) {}

Result<storage::Lsn> TableHeap::LogOp(wal::WalRecordType type,
                                      std::string payload,
                                      wal::WalManager::InflightLsn* inflight) {
  if (wal_ == nullptr || !wal_->enabled()) return storage::kNullLsn;
  const wal::WalManager::TxnContext ctx = wal::WalManager::CurrentTxn();
  return wal_->Append(type, ctx.txn_id, std::move(payload),
                      ctx.clr ? wal::kWalFlagClr : uint8_t{0}, inflight);
}

Status TableHeap::AppendPage() {
  storage::PageId id = storage::kInvalidPageId;
  HDB_ASSIGN_OR_RETURN(
      storage::PageHandle h,
      pool_->NewPage(storage::SpaceId::kMain, storage::PageType::kTable,
                     def_->oid, &id));
  wal::WalManager::InflightLsn inflight;
  HDB_ASSIGN_OR_RETURN(
      const storage::Lsn lsn,
      LogOp(wal::WalRecordType::kHeapAppendPage,
            wal::EncodeHeapAppendPage(def_->oid, id, def_->last_page),
            &inflight));
  InitHeapPage(h.data(), pool_->page_bytes());
  storage::SetPageLsn(h.data(), lsn);
  h.MarkDirty(lsn);

  if (def_->last_page != storage::kInvalidPageId) {
    HDB_ASSIGN_OR_RETURN(
        storage::PageHandle prev,
        pool_->FetchPage(
            storage::SpacePageId{storage::SpaceId::kMain, def_->last_page},
            storage::PageType::kTable, def_->oid));
    HeapPageHeader ph = ReadHeapHeader(prev.data());
    ph.next_page = id;
    // One record covers both pages: replay re-links prev the same way.
    if (lsn > ph.lsn) ph.lsn = lsn;
    WriteHeapHeader(prev.data(), ph);
    prev.MarkDirty(lsn);
  } else {
    def_->first_page = id;
  }
  def_->last_page = id;
  def_->page_count++;
  return Status::OK();
}

Result<Rid> TableHeap::InsertIntoPage(storage::PageId page_id,
                                      std::string_view row_bytes, bool* fit) {
  HDB_ASSIGN_OR_RETURN(
      storage::PageHandle h,
      pool_->FetchPage(storage::SpacePageId{storage::SpaceId::kMain, page_id},
                       storage::PageType::kTable, def_->oid));
  HeapPageHeader header = ReadHeapHeader(h.data());
  const size_t used_top = kHeapHeaderBytes + header.slot_count * kHeapSlotBytes;
  const size_t need = row_bytes.size() + kHeapSlotBytes;
  if (used_top + need > header.free_end) {
    *fit = false;
    return Rid{};
  }
  *fit = true;
  const auto new_end =
      static_cast<uint16_t>(header.free_end - row_bytes.size());
  const uint16_t slot_index = header.slot_count;
  wal::WalManager::InflightLsn inflight;
  HDB_ASSIGN_OR_RETURN(
      const storage::Lsn lsn,
      LogOp(wal::WalRecordType::kHeapInsert,
            wal::EncodeHeapInsert(def_->oid, page_id, slot_index, new_end,
                                  row_bytes),
            &inflight));
  std::memcpy(h.data() + new_end, row_bytes.data(), row_bytes.size());
  WriteHeapSlot(h.data(), slot_index,
                HeapSlot{new_end, static_cast<uint16_t>(row_bytes.size())});
  header.slot_count++;
  header.free_end = new_end;
  if (lsn > header.lsn) header.lsn = lsn;
  WriteHeapHeader(h.data(), header);
  h.MarkDirty(lsn);
  return Rid{page_id, slot_index};
}

Result<Rid> TableHeap::Insert(std::string_view row_bytes) {
  UniqueLock latch(latch_);
  return InsertLocked(row_bytes);
}

Result<Rid> TableHeap::InsertLocked(std::string_view row_bytes) {
  if (row_bytes.size() + kHeapHeaderBytes + kHeapSlotBytes >
      pool_->page_bytes()) {
    return Status::InvalidArgument("row larger than a page");
  }
  if (row_bytes.empty()) return Status::InvalidArgument("empty row");
  if (def_->last_page == storage::kInvalidPageId) {
    HDB_RETURN_IF_ERROR(AppendPage());
  }
  bool fit = false;
  HDB_ASSIGN_OR_RETURN(Rid rid,
                       InsertIntoPage(def_->last_page, row_bytes, &fit));
  if (!fit) {
    HDB_RETURN_IF_ERROR(AppendPage());
    HDB_ASSIGN_OR_RETURN(rid, InsertIntoPage(def_->last_page, row_bytes, &fit));
    if (!fit) return Status::Internal("row does not fit in a fresh page");
  }
  def_->row_count++;
  return rid;
}

Result<std::string> TableHeap::Get(Rid rid) const {
  SharedLock latch(latch_);
  HDB_ASSIGN_OR_RETURN(
      storage::PageHandle h,
      pool_->FetchPage(
          storage::SpacePageId{storage::SpaceId::kMain, rid.page_id},
          storage::PageType::kTable, def_->oid));
  const HeapPageHeader header = ReadHeapHeader(h.data());
  if (rid.slot >= header.slot_count) return Status::NotFound("bad rid slot");
  const HeapSlot s = ReadHeapSlot(h.data(), rid.slot);
  if (s.len == 0) return Status::NotFound("deleted row");
  return std::string(h.data() + s.offset, s.len);
}

Status TableHeap::Delete(Rid rid) {
  UniqueLock latch(latch_);
  return DeleteLocked(rid);
}

Status TableHeap::DeleteLocked(Rid rid) {
  HDB_ASSIGN_OR_RETURN(
      storage::PageHandle h,
      pool_->FetchPage(
          storage::SpacePageId{storage::SpaceId::kMain, rid.page_id},
          storage::PageType::kTable, def_->oid));
  HeapPageHeader header = ReadHeapHeader(h.data());
  if (rid.slot >= header.slot_count) return Status::NotFound("bad rid slot");
  HeapSlot s = ReadHeapSlot(h.data(), rid.slot);
  if (s.len == 0) return Status::NotFound("row already deleted");
  wal::WalManager::InflightLsn inflight;
  HDB_ASSIGN_OR_RETURN(
      const storage::Lsn lsn,
      LogOp(wal::WalRecordType::kHeapDelete,
            wal::EncodeHeapDelete(
                def_->oid, rid.page_id, rid.slot, s.offset,
                std::string_view(h.data() + s.offset, s.len)),
            &inflight));
  s.len = 0;
  WriteHeapSlot(h.data(), rid.slot, s);
  if (lsn > header.lsn) {
    header.lsn = lsn;
    WriteHeapHeader(h.data(), header);
  }
  h.MarkDirty(lsn);
  if (def_->row_count > 0) def_->row_count--;
  return Status::OK();
}

Result<Rid> TableHeap::Update(Rid rid, std::string_view row_bytes) {
  UniqueLock latch(latch_);
  {
    HDB_ASSIGN_OR_RETURN(
        storage::PageHandle h,
        pool_->FetchPage(
            storage::SpacePageId{storage::SpaceId::kMain, rid.page_id},
            storage::PageType::kTable, def_->oid));
    HeapPageHeader header = ReadHeapHeader(h.data());
    if (rid.slot >= header.slot_count) {
      return Status::NotFound("bad rid slot");
    }
    HeapSlot s = ReadHeapSlot(h.data(), rid.slot);
    if (s.len == 0) return Status::NotFound("deleted row");
    if (row_bytes.size() <= s.len) {
      wal::WalManager::InflightLsn inflight;
      HDB_ASSIGN_OR_RETURN(
          const storage::Lsn lsn,
          LogOp(wal::WalRecordType::kHeapUpdate,
                wal::EncodeHeapUpdate(
                    def_->oid, rid.page_id, rid.slot, s.offset,
                    std::string_view(h.data() + s.offset, s.len), row_bytes),
                &inflight));
      std::memcpy(h.data() + s.offset, row_bytes.data(), row_bytes.size());
      s.len = static_cast<uint16_t>(row_bytes.size());
      WriteHeapSlot(h.data(), rid.slot, s);
      if (lsn > header.lsn) {
        header.lsn = lsn;
        WriteHeapHeader(h.data(), header);
      }
      h.MarkDirty(lsn);
      return rid;
    }
  }
  // Grown row: delete + re-insert, two records, both inverted on undo.
  HDB_RETURN_IF_ERROR(DeleteLocked(rid));
  return InsertLocked(row_bytes);
}

TableHeap::Iterator TableHeap::Scan() const {
  SharedLock latch(latch_);
  return Iterator(this, def_->first_page);
}

bool TableHeap::Iterator::Next(Rid* rid, std::string* row_bytes) {
  // Latched per step, not per scan: a long scan must not starve writers,
  // and the executor's pull loop may interleave DML on other tables.
  SharedLock latch(heap_->latch_);
  while (page_ != storage::kInvalidPageId) {
    auto h = heap_->pool_->FetchPage(
        storage::SpacePageId{storage::SpaceId::kMain, page_},
        storage::PageType::kTable, heap_->def_->oid);
    if (!h.ok()) return false;
    const HeapPageHeader header = ReadHeapHeader(h->data());
    while (slot_ < header.slot_count) {
      const HeapSlot s = ReadHeapSlot(h->data(), slot_);
      const uint16_t current = slot_++;
      if (s.len == 0) continue;
      *rid = Rid{page_, current};
      row_bytes->assign(h->data() + s.offset, s.len);
      return true;
    }
    page_ = header.next_page;
    slot_ = 0;
  }
  return false;
}

Result<size_t> TableHeap::Iterator::NextRows(size_t max_rows,
                                             std::vector<Row>* rows,
                                             std::vector<Rid>* rids,
                                             const RowDecoder* decoder) {
  if (rows->size() < max_rows) rows->resize(max_rows);
  if (rids->size() < max_rows) rids->resize(max_rows);
  SharedLock latch(heap_->latch_);
  size_t n = 0;
  while (n < max_rows && page_ != storage::kInvalidPageId) {
    HDB_ASSIGN_OR_RETURN(
        storage::PageHandle h,
        heap_->pool_->FetchPage(
            storage::SpacePageId{storage::SpaceId::kMain, page_},
            storage::PageType::kTable, heap_->def_->oid));
    const HeapPageHeader header = ReadHeapHeader(h.data());
    while (n < max_rows && slot_ < header.slot_count) {
      const HeapSlot s = ReadHeapSlot(h.data(), slot_);
      const uint16_t current = slot_++;
      if (s.len == 0) continue;
      if (decoder != nullptr) {
        HDB_RETURN_IF_ERROR(
            decoder->DecodeInto(h.data() + s.offset, s.len, &(*rows)[n]));
      } else {
        HDB_RETURN_IF_ERROR(DecodeRowInto(*heap_->def_, h.data() + s.offset,
                                          s.len, &(*rows)[n]));
      }
      (*rids)[n] = Rid{page_, current};
      ++n;
    }
    if (slot_ >= header.slot_count) {
      page_ = header.next_page;
      slot_ = 0;
    }
  }
  return n;
}

Result<size_t> TableHeap::Iterator::NextBytes(size_t max_rows,
                                              std::vector<std::string>* bytes,
                                              std::vector<Rid>* rids) {
  if (bytes->size() < max_rows) bytes->resize(max_rows);
  if (rids->size() < max_rows) rids->resize(max_rows);
  SharedLock latch(heap_->latch_);
  size_t n = 0;
  while (n < max_rows && page_ != storage::kInvalidPageId) {
    HDB_ASSIGN_OR_RETURN(
        storage::PageHandle h,
        heap_->pool_->FetchPage(
            storage::SpacePageId{storage::SpaceId::kMain, page_},
            storage::PageType::kTable, heap_->def_->oid));
    const HeapPageHeader header = ReadHeapHeader(h.data());
    while (n < max_rows && slot_ < header.slot_count) {
      const HeapSlot s = ReadHeapSlot(h.data(), slot_);
      const uint16_t current = slot_++;
      if (s.len == 0) continue;
      (*bytes)[n].assign(h.data() + s.offset, s.len);
      (*rids)[n] = Rid{page_, current};
      ++n;
    }
    if (slot_ >= header.slot_count) {
      page_ = header.next_page;
      slot_ = 0;
    }
  }
  return n;
}

Status TableHeap::GetMany(const Rid* rids, size_t n,
                          std::vector<Row>* rows) const {
  if (rows->size() < n) rows->resize(n);
  SharedLock latch(latch_);
  storage::PageId cur = storage::kInvalidPageId;
  std::optional<storage::PageHandle> h;
  for (size_t i = 0; i < n; ++i) {
    const Rid rid = rids[i];
    if (rid.page_id != cur || !h.has_value()) {
      HDB_ASSIGN_OR_RETURN(
          storage::PageHandle fetched,
          pool_->FetchPage(
              storage::SpacePageId{storage::SpaceId::kMain, rid.page_id},
              storage::PageType::kTable, def_->oid));
      h.emplace(std::move(fetched));
      cur = rid.page_id;
    }
    const HeapPageHeader header = ReadHeapHeader(h->data());
    if (rid.slot >= header.slot_count) return Status::NotFound("bad rid slot");
    const HeapSlot s = ReadHeapSlot(h->data(), rid.slot);
    if (s.len == 0) return Status::NotFound("deleted row");
    HDB_RETURN_IF_ERROR(
        DecodeRowInto(*def_, h->data() + s.offset, s.len, &(*rows)[i]));
  }
  return Status::OK();
}

Status TableHeap::ScanAll(
    const std::function<bool(Rid, std::string_view)>& fn) const {
  Iterator it = Scan();
  Rid rid;
  std::string bytes;
  while (it.Next(&rid, &bytes)) {
    if (!fn(rid, bytes)) break;
  }
  return Status::OK();
}

}  // namespace hdb::table
