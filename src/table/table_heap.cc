#include "table/table_heap.h"

#include <cstring>

namespace hdb::table {

namespace {

// Slotted page layout:
//   [PageHeader][slot 0][slot 1]...            (grows up)
//   ...free space...
//   [row k bytes]...[row 1 bytes][row 0 bytes] (grows down)
struct PageHeader {
  storage::PageId next_page;
  uint16_t slot_count;
  uint16_t free_end;  // offset one past the end of free space (row data start)
};

struct Slot {
  uint16_t offset;
  uint16_t len;  // 0 => deleted
};

constexpr size_t kHeaderBytes = sizeof(PageHeader);
constexpr size_t kSlotBytes = sizeof(Slot);

PageHeader ReadHeader(const char* page) {
  PageHeader h;
  std::memcpy(&h, page, kHeaderBytes);
  return h;
}

void WriteHeader(char* page, const PageHeader& h) {
  std::memcpy(page, &h, kHeaderBytes);
}

Slot ReadSlot(const char* page, uint16_t i) {
  Slot s;
  std::memcpy(&s, page + kHeaderBytes + i * kSlotBytes, kSlotBytes);
  return s;
}

void WriteSlot(char* page, uint16_t i, const Slot& s) {
  std::memcpy(page + kHeaderBytes + i * kSlotBytes, &s, kSlotBytes);
}

}  // namespace

TableHeap::TableHeap(storage::BufferPool* pool, catalog::TableDef* def)
    : pool_(pool), def_(def) {}

Status TableHeap::AppendPage() {
  storage::PageId id = storage::kInvalidPageId;
  HDB_ASSIGN_OR_RETURN(
      storage::PageHandle h,
      pool_->NewPage(storage::SpaceId::kMain, storage::PageType::kTable,
                     def_->oid, &id));
  PageHeader header{storage::kInvalidPageId, 0,
                    static_cast<uint16_t>(pool_->page_bytes())};
  WriteHeader(h.data(), header);
  h.MarkDirty();

  if (def_->last_page != storage::kInvalidPageId) {
    HDB_ASSIGN_OR_RETURN(
        storage::PageHandle prev,
        pool_->FetchPage(
            storage::SpacePageId{storage::SpaceId::kMain, def_->last_page},
            storage::PageType::kTable, def_->oid));
    PageHeader ph = ReadHeader(prev.data());
    ph.next_page = id;
    WriteHeader(prev.data(), ph);
    prev.MarkDirty();
  } else {
    def_->first_page = id;
  }
  def_->last_page = id;
  def_->page_count++;
  return Status::OK();
}

Result<Rid> TableHeap::InsertIntoPage(storage::PageId page_id,
                                      std::string_view row_bytes, bool* fit) {
  HDB_ASSIGN_OR_RETURN(
      storage::PageHandle h,
      pool_->FetchPage(storage::SpacePageId{storage::SpaceId::kMain, page_id},
                       storage::PageType::kTable, def_->oid));
  PageHeader header = ReadHeader(h.data());
  const size_t used_top = kHeaderBytes + header.slot_count * kSlotBytes;
  const size_t need = row_bytes.size() + kSlotBytes;
  if (used_top + need > header.free_end) {
    *fit = false;
    return Rid{};
  }
  *fit = true;
  const auto new_end =
      static_cast<uint16_t>(header.free_end - row_bytes.size());
  std::memcpy(h.data() + new_end, row_bytes.data(), row_bytes.size());
  const uint16_t slot_index = header.slot_count;
  WriteSlot(h.data(), slot_index,
            Slot{new_end, static_cast<uint16_t>(row_bytes.size())});
  header.slot_count++;
  header.free_end = new_end;
  WriteHeader(h.data(), header);
  h.MarkDirty();
  return Rid{page_id, slot_index};
}

Result<Rid> TableHeap::Insert(std::string_view row_bytes) {
  std::unique_lock<std::shared_mutex> latch(latch_);
  return InsertLocked(row_bytes);
}

Result<Rid> TableHeap::InsertLocked(std::string_view row_bytes) {
  if (row_bytes.size() + kHeaderBytes + kSlotBytes > pool_->page_bytes()) {
    return Status::InvalidArgument("row larger than a page");
  }
  if (row_bytes.empty()) return Status::InvalidArgument("empty row");
  if (def_->last_page == storage::kInvalidPageId) {
    HDB_RETURN_IF_ERROR(AppendPage());
  }
  bool fit = false;
  HDB_ASSIGN_OR_RETURN(Rid rid,
                       InsertIntoPage(def_->last_page, row_bytes, &fit));
  if (!fit) {
    HDB_RETURN_IF_ERROR(AppendPage());
    HDB_ASSIGN_OR_RETURN(rid, InsertIntoPage(def_->last_page, row_bytes, &fit));
    if (!fit) return Status::Internal("row does not fit in a fresh page");
  }
  def_->row_count++;
  return rid;
}

Result<std::string> TableHeap::Get(Rid rid) const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  HDB_ASSIGN_OR_RETURN(
      storage::PageHandle h,
      pool_->FetchPage(
          storage::SpacePageId{storage::SpaceId::kMain, rid.page_id},
          storage::PageType::kTable, def_->oid));
  const PageHeader header = ReadHeader(h.data());
  if (rid.slot >= header.slot_count) return Status::NotFound("bad rid slot");
  const Slot s = ReadSlot(h.data(), rid.slot);
  if (s.len == 0) return Status::NotFound("deleted row");
  return std::string(h.data() + s.offset, s.len);
}

Status TableHeap::Delete(Rid rid) {
  std::unique_lock<std::shared_mutex> latch(latch_);
  return DeleteLocked(rid);
}

Status TableHeap::DeleteLocked(Rid rid) {
  HDB_ASSIGN_OR_RETURN(
      storage::PageHandle h,
      pool_->FetchPage(
          storage::SpacePageId{storage::SpaceId::kMain, rid.page_id},
          storage::PageType::kTable, def_->oid));
  const PageHeader header = ReadHeader(h.data());
  if (rid.slot >= header.slot_count) return Status::NotFound("bad rid slot");
  Slot s = ReadSlot(h.data(), rid.slot);
  if (s.len == 0) return Status::NotFound("row already deleted");
  s.len = 0;
  WriteSlot(h.data(), rid.slot, s);
  h.MarkDirty();
  if (def_->row_count > 0) def_->row_count--;
  return Status::OK();
}

Result<Rid> TableHeap::Update(Rid rid, std::string_view row_bytes) {
  std::unique_lock<std::shared_mutex> latch(latch_);
  {
    HDB_ASSIGN_OR_RETURN(
        storage::PageHandle h,
        pool_->FetchPage(
            storage::SpacePageId{storage::SpaceId::kMain, rid.page_id},
            storage::PageType::kTable, def_->oid));
    const PageHeader header = ReadHeader(h.data());
    if (rid.slot >= header.slot_count) {
      return Status::NotFound("bad rid slot");
    }
    Slot s = ReadSlot(h.data(), rid.slot);
    if (s.len == 0) return Status::NotFound("deleted row");
    if (row_bytes.size() <= s.len) {
      std::memcpy(h.data() + s.offset, row_bytes.data(), row_bytes.size());
      s.len = static_cast<uint16_t>(row_bytes.size());
      WriteSlot(h.data(), rid.slot, s);
      h.MarkDirty();
      return rid;
    }
  }
  HDB_RETURN_IF_ERROR(DeleteLocked(rid));
  return InsertLocked(row_bytes);
}

TableHeap::Iterator TableHeap::Scan() const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  return Iterator(this, def_->first_page);
}

bool TableHeap::Iterator::Next(Rid* rid, std::string* row_bytes) {
  // Latched per step, not per scan: a long scan must not starve writers,
  // and the executor's pull loop may interleave DML on other tables.
  std::shared_lock<std::shared_mutex> latch(heap_->latch_);
  while (page_ != storage::kInvalidPageId) {
    auto h = heap_->pool_->FetchPage(
        storage::SpacePageId{storage::SpaceId::kMain, page_},
        storage::PageType::kTable, heap_->def_->oid);
    if (!h.ok()) return false;
    const PageHeader header = ReadHeader(h->data());
    while (slot_ < header.slot_count) {
      const Slot s = ReadSlot(h->data(), slot_);
      const uint16_t current = slot_++;
      if (s.len == 0) continue;
      *rid = Rid{page_, current};
      row_bytes->assign(h->data() + s.offset, s.len);
      return true;
    }
    page_ = header.next_page;
    slot_ = 0;
  }
  return false;
}

Status TableHeap::ScanAll(
    const std::function<bool(Rid, std::string_view)>& fn) const {
  Iterator it = Scan();
  Rid rid;
  std::string bytes;
  while (it.Next(&rid, &bytes)) {
    if (!fn(rid, bytes)) break;
  }
  return Status::OK();
}

}  // namespace hdb::table
