#ifndef HDB_TABLE_ROW_CODEC_H_
#define HDB_TABLE_ROW_CODEC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "catalog/schema.h"

namespace hdb::table {

/// A materialized row.
using Row = std::vector<Value>;

/// Serializes `row` (one Value per schema column) into a compact byte
/// string: null bitmap followed by fixed-width numerics and
/// length-prefixed strings.
Result<std::string> EncodeRow(const catalog::TableDef& schema,
                              const Row& row);

/// Decodes bytes produced by EncodeRow back into typed Values.
Result<Row> DecodeRow(const catalog::TableDef& schema,
                      const char* data, size_t len);

}  // namespace hdb::table

#endif  // HDB_TABLE_ROW_CODEC_H_
