#ifndef HDB_TABLE_ROW_CODEC_H_
#define HDB_TABLE_ROW_CODEC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "catalog/schema.h"

namespace hdb::table {

/// A materialized row.
using Row = std::vector<Value>;

/// Serializes `row` (one Value per schema column) into a compact byte
/// string: null bitmap followed by fixed-width numerics and
/// length-prefixed strings.
Result<std::string> EncodeRow(const catalog::TableDef& schema,
                              const Row& row);

/// Decodes bytes produced by EncodeRow back into typed Values.
Result<Row> DecodeRow(const catalog::TableDef& schema,
                      const char* data, size_t len);

/// Decodes into `row` in place, reusing its Value slots (and their string
/// capacity) instead of allocating a fresh Row per call. This is the hot
/// path for batch scans; DecodeRow above delegates here.
///
/// `needed` (optional, length >= column count when non-null) selects which
/// columns to materialize: columns with needed[i] == 0 are skipped over in
/// the byte stream and their Value slots set to NULL, so a scan that only
/// feeds `k` and `v` never copies the wide VARCHAR next to them. Callers
/// own the guarantee that skipped columns are never read (the executor
/// derives the mask from every expression in the plan).
Status DecodeRowInto(const catalog::TableDef& schema, const char* data,
                     size_t len, Row* row, const uint8_t* needed = nullptr);

/// Precompiled decoder for one (schema, column mask) pair — the scan fast
/// path. Columns ahead of the first VARCHAR sit at fixed byte offsets
/// whenever a row has no NULLs (null values are omitted from the stream),
/// so a prepared decoder turns the per-row column walk into a handful of
/// direct memcpys of just the needed columns. Rows with NULLs, or masks
/// needing a column behind a VARCHAR, fall back to the generic walk.
class RowDecoder {
 public:
  RowDecoder() = default;

  /// Compiles the decoder. `needed` selects columns as in DecodeRowInto
  /// (nullptr = all); the pointer is not retained.
  void Prepare(const catalog::TableDef& schema, const uint8_t* needed);

  /// Decodes like DecodeRowInto(schema, ..., needed) for the prepared
  /// schema/mask. Requires Prepare() first.
  Status DecodeInto(const char* data, size_t len, Row* row) const;

 private:
  struct FixedCol {
    uint32_t column = 0;
    uint32_t offset = 0;  // byte offset when the null bitmap is all-zero
    TypeId type = TypeId::kInt;
  };

  const catalog::TableDef* schema_ = nullptr;
  std::vector<uint8_t> needed_;     // copied mask (empty = decode all)
  std::vector<FixedCol> fixed_;     // needed columns at fixed offsets
  std::vector<uint32_t> nulled_;    // unneeded columns (set NULL, skip)
  size_t bitmap_bytes_ = 0;
  size_t min_len_ = 0;              // bytes a no-NULL fixed row must have
  bool fast_ok_ = false;            // every needed column is fixed-offset
};

}  // namespace hdb::table

#endif  // HDB_TABLE_ROW_CODEC_H_
