#include "table/row_codec.h"

#include <algorithm>
#include <cstring>

namespace hdb::table {

Result<std::string> EncodeRow(const catalog::TableDef& schema,
                              const Row& row) {
  if (row.size() != schema.columns.size()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  const size_t ncols = schema.columns.size();
  std::string out;
  out.resize((ncols + 7) / 8, '\0');
  for (size_t i = 0; i < ncols; ++i) {
    const Value& v = row[i];
    if (v.is_null()) {
      if (!schema.columns[i].nullable) {
        return Status::ConstraintViolation("NULL in NOT NULL column " +
                                           schema.columns[i].name);
      }
      out[i / 8] |= static_cast<char>(1 << (i % 8));
      continue;
    }
    switch (schema.columns[i].type) {
      case TypeId::kBoolean: {
        out.push_back(v.AsBool() ? 1 : 0);
        break;
      }
      case TypeId::kInt:
      case TypeId::kBigint:
      case TypeId::kDate:
      case TypeId::kTimestamp: {
        const int64_t x = v.AsInt();
        out.append(reinterpret_cast<const char*>(&x), 8);
        break;
      }
      case TypeId::kDouble: {
        const double d = v.AsDouble();
        out.append(reinterpret_cast<const char*>(&d), 8);
        break;
      }
      case TypeId::kVarchar: {
        const std::string& s = v.AsString();
        if (s.size() > 0xffff) {
          return Status::InvalidArgument("string longer than 64 KiB");
        }
        const auto len = static_cast<uint16_t>(s.size());
        out.append(reinterpret_cast<const char*>(&len), 2);
        out.append(s);
        break;
      }
    }
  }
  return out;
}

Status DecodeRowInto(const catalog::TableDef& schema, const char* data,
                     size_t len, Row* row, const uint8_t* needed) {
  const size_t ncols = schema.columns.size();
  const size_t bitmap_bytes = (ncols + 7) / 8;
  if (len < bitmap_bytes) return Status::Internal("row underflow");
  row->resize(ncols);
  size_t pos = bitmap_bytes;
  for (size_t i = 0; i < ncols; ++i) {
    const bool is_null = (data[i / 8] >> (i % 8)) & 1;
    const TypeId t = schema.columns[i].type;
    Value& v = (*row)[i];
    if (is_null) {
      v.SetNull(t);
      continue;
    }
    if (needed != nullptr && needed[i] == 0) {
      // Unreferenced column: skip its bytes without materializing. NULLing
      // the slot makes a bad mask fail deterministically, not read stale
      // data from the previous row in the pool.
      v.SetNull(t);
      switch (t) {
        case TypeId::kBoolean:
          pos += 1;
          break;
        case TypeId::kInt:
        case TypeId::kBigint:
        case TypeId::kDate:
        case TypeId::kTimestamp:
        case TypeId::kDouble:
          pos += 8;
          break;
        case TypeId::kVarchar: {
          if (pos + 2 > len) return Status::Internal("row underflow");
          uint16_t slen = 0;
          std::memcpy(&slen, data + pos, 2);
          pos += 2 + slen;
          break;
        }
      }
      if (pos > len) return Status::Internal("row underflow");
      continue;
    }
    switch (t) {
      case TypeId::kBoolean: {
        if (pos + 1 > len) return Status::Internal("row underflow");
        v.SetBoolean(data[pos] != 0);
        pos += 1;
        break;
      }
      case TypeId::kInt:
      case TypeId::kBigint:
      case TypeId::kDate:
      case TypeId::kTimestamp: {
        if (pos + 8 > len) return Status::Internal("row underflow");
        int64_t x = 0;
        std::memcpy(&x, data + pos, 8);
        pos += 8;
        v.SetInt64(t, t == TypeId::kInt ? static_cast<int32_t>(x) : x);
        break;
      }
      case TypeId::kDouble: {
        if (pos + 8 > len) return Status::Internal("row underflow");
        double d = 0;
        std::memcpy(&d, data + pos, 8);
        pos += 8;
        v.SetDouble(d);
        break;
      }
      case TypeId::kVarchar: {
        if (pos + 2 > len) return Status::Internal("row underflow");
        uint16_t slen = 0;
        std::memcpy(&slen, data + pos, 2);
        pos += 2;
        if (pos + slen > len) return Status::Internal("row underflow");
        v.SetString(std::string_view(data + pos, slen));
        pos += slen;
        break;
      }
    }
  }
  return Status::OK();
}

Result<Row> DecodeRow(const catalog::TableDef& schema, const char* data,
                      size_t len) {
  Row row;
  Status s = DecodeRowInto(schema, data, len, &row);
  if (!s.ok()) return s;
  return row;
}

void RowDecoder::Prepare(const catalog::TableDef& schema,
                         const uint8_t* needed) {
  schema_ = &schema;
  const size_t ncols = schema.columns.size();
  if (needed != nullptr) {
    needed_.assign(needed, needed + ncols);
  } else {
    needed_.clear();
  }
  fixed_.clear();
  nulled_.clear();
  bitmap_bytes_ = (ncols + 7) / 8;
  min_len_ = bitmap_bytes_;
  fast_ok_ = true;
  uint32_t off = static_cast<uint32_t>(bitmap_bytes_);
  bool fixed_prefix = true;  // no VARCHAR seen yet: offsets are static
  for (size_t i = 0; i < ncols; ++i) {
    const TypeId t = schema.columns[i].type;
    const bool want = needed == nullptr || needed[i] != 0;
    if (!want) {
      nulled_.push_back(static_cast<uint32_t>(i));
    } else if (!fixed_prefix) {
      fast_ok_ = false;  // needed column behind a VARCHAR: generic walk
    } else {
      fixed_.push_back(FixedCol{static_cast<uint32_t>(i), off, t});
      const size_t width = t == TypeId::kBoolean ? 1
                           : t == TypeId::kVarchar ? 2  // length prefix
                                                   : 8;
      min_len_ = std::max(min_len_, static_cast<size_t>(off) + width);
    }
    switch (t) {
      case TypeId::kBoolean:
        off += 1;
        break;
      case TypeId::kInt:
      case TypeId::kBigint:
      case TypeId::kDate:
      case TypeId::kTimestamp:
      case TypeId::kDouble:
        off += 8;
        break;
      case TypeId::kVarchar:
        fixed_prefix = false;  // row-dependent length from here on
        break;
    }
  }
}

Status RowDecoder::DecodeInto(const char* data, size_t len, Row* row) const {
  if (fast_ok_ && len >= min_len_) {
    bool no_nulls = true;
    for (size_t b = 0; b < bitmap_bytes_; ++b) no_nulls &= data[b] == 0;
    if (no_nulls) {
      row->resize(schema_->columns.size());
      for (const FixedCol& f : fixed_) {
        Value& v = (*row)[f.column];
        switch (f.type) {
          case TypeId::kBoolean:
            v.SetBoolean(data[f.offset] != 0);
            break;
          case TypeId::kInt:
          case TypeId::kBigint:
          case TypeId::kDate:
          case TypeId::kTimestamp: {
            int64_t x = 0;
            std::memcpy(&x, data + f.offset, 8);
            v.SetInt64(f.type,
                       f.type == TypeId::kInt ? static_cast<int32_t>(x) : x);
            break;
          }
          case TypeId::kDouble: {
            double d = 0;
            std::memcpy(&d, data + f.offset, 8);
            v.SetDouble(d);
            break;
          }
          case TypeId::kVarchar: {
            uint16_t slen = 0;
            std::memcpy(&slen, data + f.offset, 2);
            if (f.offset + 2 + slen > len) {
              return Status::Internal("row underflow");
            }
            v.SetString(std::string_view(data + f.offset + 2, slen));
            break;
          }
        }
      }
      for (const uint32_t c : nulled_) {
        (*row)[c].SetNull(schema_->columns[c].type);
      }
      return Status::OK();
    }
  }
  return DecodeRowInto(*schema_, data, len, row,
                       needed_.empty() ? nullptr : needed_.data());
}

}  // namespace hdb::table
