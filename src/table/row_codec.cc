#include "table/row_codec.h"

#include <cstring>

namespace hdb::table {

Result<std::string> EncodeRow(const catalog::TableDef& schema,
                              const Row& row) {
  if (row.size() != schema.columns.size()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  const size_t ncols = schema.columns.size();
  std::string out;
  out.resize((ncols + 7) / 8, '\0');
  for (size_t i = 0; i < ncols; ++i) {
    const Value& v = row[i];
    if (v.is_null()) {
      if (!schema.columns[i].nullable) {
        return Status::ConstraintViolation("NULL in NOT NULL column " +
                                           schema.columns[i].name);
      }
      out[i / 8] |= static_cast<char>(1 << (i % 8));
      continue;
    }
    switch (schema.columns[i].type) {
      case TypeId::kBoolean: {
        out.push_back(v.AsBool() ? 1 : 0);
        break;
      }
      case TypeId::kInt:
      case TypeId::kBigint:
      case TypeId::kDate:
      case TypeId::kTimestamp: {
        const int64_t x = v.AsInt();
        out.append(reinterpret_cast<const char*>(&x), 8);
        break;
      }
      case TypeId::kDouble: {
        const double d = v.AsDouble();
        out.append(reinterpret_cast<const char*>(&d), 8);
        break;
      }
      case TypeId::kVarchar: {
        const std::string& s = v.AsString();
        if (s.size() > 0xffff) {
          return Status::InvalidArgument("string longer than 64 KiB");
        }
        const auto len = static_cast<uint16_t>(s.size());
        out.append(reinterpret_cast<const char*>(&len), 2);
        out.append(s);
        break;
      }
    }
  }
  return out;
}

Result<Row> DecodeRow(const catalog::TableDef& schema, const char* data,
                      size_t len) {
  const size_t ncols = schema.columns.size();
  const size_t bitmap_bytes = (ncols + 7) / 8;
  if (len < bitmap_bytes) return Status::Internal("row underflow");
  Row row;
  row.reserve(ncols);
  size_t pos = bitmap_bytes;
  for (size_t i = 0; i < ncols; ++i) {
    const bool is_null = (data[i / 8] >> (i % 8)) & 1;
    const TypeId t = schema.columns[i].type;
    if (is_null) {
      row.push_back(Value::Null(t));
      continue;
    }
    switch (t) {
      case TypeId::kBoolean: {
        if (pos + 1 > len) return Status::Internal("row underflow");
        row.push_back(Value::Boolean(data[pos] != 0));
        pos += 1;
        break;
      }
      case TypeId::kInt:
      case TypeId::kBigint:
      case TypeId::kDate:
      case TypeId::kTimestamp: {
        if (pos + 8 > len) return Status::Internal("row underflow");
        int64_t x = 0;
        std::memcpy(&x, data + pos, 8);
        pos += 8;
        switch (t) {
          case TypeId::kInt:
            row.push_back(Value::Int(static_cast<int32_t>(x)));
            break;
          case TypeId::kBigint:
            row.push_back(Value::Bigint(x));
            break;
          case TypeId::kDate:
            row.push_back(Value::Date(x));
            break;
          default:
            row.push_back(Value::Timestamp(x));
            break;
        }
        break;
      }
      case TypeId::kDouble: {
        if (pos + 8 > len) return Status::Internal("row underflow");
        double d = 0;
        std::memcpy(&d, data + pos, 8);
        pos += 8;
        row.push_back(Value::Double(d));
        break;
      }
      case TypeId::kVarchar: {
        if (pos + 2 > len) return Status::Internal("row underflow");
        uint16_t slen = 0;
        std::memcpy(&slen, data + pos, 2);
        pos += 2;
        if (pos + slen > len) return Status::Internal("row underflow");
        row.push_back(Value::String(std::string(data + pos, slen)));
        pos += slen;
        break;
      }
    }
  }
  return row;
}

}  // namespace hdb::table
