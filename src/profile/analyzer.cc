#include "profile/analyzer.h"

#include <map>

namespace hdb::profile {

std::vector<Finding> WorkloadAnalyzer::Analyze(
    const std::vector<engine::TraceEvent>& events,
    engine::Database* db) const {
  std::vector<Finding> findings;

  // --- Client-side join detection (paper §5) ---
  struct ShapeStats {
    uint64_t count = 0;
    uint64_t distinct_texts = 0;
    std::map<std::string, int> texts;
    double elapsed = 0;
    uint64_t scanned = 0;
    uint64_t returned = 0;
  };
  std::map<std::string, ShapeStats> shapes;
  for (const engine::TraceEvent& ev : events) {
    if (ev.sql.rfind("SELECT", 0) != 0 && ev.sql.rfind("select", 0) != 0) {
      continue;
    }
    ShapeStats& s = shapes[NormalizeStatement(ev.sql)];
    s.count++;
    s.texts[ev.sql]++;
    s.elapsed += ev.elapsed_micros;
    s.scanned += ev.rows_scanned;
    s.returned += ev.rows_returned;
  }
  for (const auto& [shape, s] : shapes) {
    const uint64_t distinct = s.texts.size();
    if (s.count >= options_.client_join_threshold && distinct > s.count / 2 &&
        shape.find("?") != std::string::npos &&
        shape.find(" JOIN ") == std::string::npos &&
        shape.find(",") == std::string::npos) {
      Finding f;
      f.kind = FindingKind::kClientSideJoin;
      f.subject = shape;
      f.occurrences = s.count;
      f.total_elapsed_micros = s.elapsed;
      f.message =
          "statement executed " + std::to_string(s.count) +
          " times with " + std::to_string(distinct) +
          " distinct constants; this application-side loop would be more "
          "efficient as a single set-oriented statement (e.g. a join or an "
          "IN list)";
      findings.push_back(std::move(f));
    }
    if (s.count > 0 && s.returned > 0 &&
        s.scanned >= options_.expensive_scan_min_rows &&
        static_cast<double>(s.scanned) / static_cast<double>(s.returned) >=
            options_.expensive_scan_ratio) {
      Finding f;
      f.kind = FindingKind::kExpensiveScan;
      f.subject = shape;
      f.occurrences = s.count;
      f.total_elapsed_micros = s.elapsed;
      f.message = "statement scans " + std::to_string(s.scanned) +
                  " rows to return " + std::to_string(s.returned) +
                  "; consider an index (see the Index Consultant)";
      findings.push_back(std::move(f));
    }
  }

  // --- Known-flaw database for option settings (paper §5) ---
  if (db != nullptr) {
    const auto& cat = db->catalog();
    if (cat.GetOption("collect_statistics_on_dml", "on") == "off") {
      Finding f;
      f.kind = FindingKind::kSuspiciousOption;
      f.subject = "collect_statistics_on_dml";
      f.message =
          "automatic statistics collection is disabled; the optimizer will "
          "drift as data changes";
      findings.push_back(std::move(f));
    }
    if (cat.GetOption("max_query_tasks", "0") == "1") {
      Finding f;
      f.kind = FindingKind::kSuspiciousOption;
      f.subject = "max_query_tasks";
      f.message =
          "intra-query parallelism is limited to one task; the server "
          "cannot use multiple cores for a single request";
      findings.push_back(std::move(f));
    }
    const std::string goal = cat.GetOption("optimization_goal", "all-rows");
    if (goal != "all-rows" && goal != "first-row") {
      Finding f;
      f.kind = FindingKind::kSuspiciousOption;
      f.subject = "optimization_goal";
      f.message = "unknown optimization_goal value '" + goal + "'";
      findings.push_back(std::move(f));
    }
  }
  return findings;
}

}  // namespace hdb::profile
