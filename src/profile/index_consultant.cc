#include "profile/index_consultant.h"

#include <algorithm>
#include <set>

#include "engine/binder.h"
#include "engine/parser.h"
#include "optimizer/optimizer.h"

namespace hdb::profile {

namespace {

void CollectUsedIndexes(const optimizer::PlanNode* n,
                        std::set<uint32_t>* used) {
  if (n->index != nullptr && !n->index_is_virtual) {
    used->insert(n->index->oid);
  }
  if (n->alt_index != nullptr) used->insert(n->alt_index->oid);
  for (const auto& c : n->children) CollectUsedIndexes(c.get(), used);
}

}  // namespace

Result<IndexConsultant::Analysis> IndexConsultant::Analyze(
    const std::vector<std::string>& workload) {
  Analysis analysis;
  optimizer::VirtualIndexCollector collector(/*what_if=*/true);
  engine::Binder binder(&db_->catalog());
  std::set<uint32_t> used_indexes;

  // Bind once, optimize twice per statement: a baseline pass (virtual
  // paths visible to the collector but not choosable) and a what-if pass
  // (the optimizer may pick virtual indexes).
  for (const std::string& sql : workload) {
    HDB_ASSIGN_OR_RETURN(engine::StatementAst stmt, engine::Parse(sql));
    if (!std::holds_alternative<engine::SelectAst>(stmt)) continue;
    HDB_ASSIGN_OR_RETURN(
        optimizer::Query q,
        binder.BindSelect(std::get<engine::SelectAst>(stmt)));

    optimizer::OptimizerContext base_ctx;
    base_ctx.catalog = &db_->catalog();
    base_ctx.stats = &db_->stats();
    base_ctx.pool = &db_->pool();
    base_ctx.index_stats = db_->IndexStatsProvider();
    base_ctx.virtual_indexes = &collector;
    base_ctx.use_virtual_indexes = false;

    optimizer::Optimizer baseline(base_ctx);
    optimizer::OptimizeDiagnostics diag;
    HDB_ASSIGN_OR_RETURN(optimizer::PlanPtr plan,
                         baseline.Optimize(q, false, &diag));
    analysis.workload_cost_before += diag.enumeration.best_cost;
    CollectUsedIndexes(plan.get(), &used_indexes);

    optimizer::OptimizerContext what_if_ctx = base_ctx;
    what_if_ctx.use_virtual_indexes = true;
    optimizer::Optimizer what_if(what_if_ctx);
    optimizer::OptimizeDiagnostics diag2;
    HDB_ASSIGN_OR_RETURN(optimizer::PlanPtr plan2,
                         what_if.Optimize(q, false, &diag2));
    analysis.workload_cost_after += diag2.enumeration.best_cost;
  }

  analysis.raw_specs = collector.specs();

  // Impose the physical composition and ordering on surviving specs
  // (paper §5: "when the Index Consultant is finished, a physical
  // composition and ordering is imposed on the index").
  std::vector<optimizer::VirtualIndexSpec> specs = analysis.raw_specs;
  std::sort(specs.begin(), specs.end(),
            [](const auto& a, const auto& b) {
              return a.benefit_micros > b.benefit_micros;
            });
  for (const auto& spec : specs) {
    if (spec.benefit_micros < options_.min_benefit_micros) continue;
    if (analysis.recommendations.size() >= options_.max_recommendations) {
      break;
    }
    auto table = db_->catalog().GetTableByOid(spec.table_oid);
    if (!table.ok()) continue;
    Recommendation rec;
    rec.kind = Recommendation::Kind::kCreateIndex;
    rec.table = spec.table_name;
    rec.benefit_micros = spec.benefit_micros;
    rec.requests = spec.requests;
    std::string cols;
    for (const int c : spec.columns) {
      const std::string& name = (*table)->columns[c].name;
      rec.columns.push_back(name);
      if (!cols.empty()) cols += ", ";
      cols += name;
    }
    rec.index_name = "idx_" + spec.table_name + "_" + rec.columns.front();
    rec.ddl = "CREATE INDEX " + rec.index_name + " ON " + spec.table_name +
              " (" + cols + ")";
    analysis.recommendations.push_back(std::move(rec));
  }

  // Drop recommendations: physical indexes never chosen by any plan.
  for (catalog::TableDef* table : db_->catalog().AllTables()) {
    for (catalog::IndexDef* idx : db_->catalog().TableIndexes(table->oid)) {
      if (used_indexes.count(idx->oid) != 0) continue;
      Recommendation rec;
      rec.kind = Recommendation::Kind::kDropIndex;
      rec.table = table->name;
      rec.index_name = idx->name;
      rec.ddl = "DROP INDEX " + idx->name;
      analysis.recommendations.push_back(std::move(rec));
    }
  }
  return analysis;
}

}  // namespace hdb::profile
