#include "profile/tracer.h"

#include "engine/lexer.h"

namespace hdb::profile {

std::string NormalizeStatement(const std::string& sql) {
  auto tokens = engine::Lex(sql);
  if (!tokens.ok()) return sql;
  std::string out;
  for (const engine::Token& t : *tokens) {
    if (t.kind == engine::TokenKind::kEnd) break;
    if (!out.empty()) out += " ";
    switch (t.kind) {
      case engine::TokenKind::kNumber:
      case engine::TokenKind::kString:
        out += "?";
        break;
      case engine::TokenKind::kParam:
        out += ":?";
        break;
      default:
        out += t.text;  // uppercased idents/symbols
    }
  }
  return out;
}

Status RequestTracer::Attach(engine::Database* monitored,
                             engine::Database* sink) {
  monitored_ = monitored;
  sink_ = sink;
  if (sink_ != nullptr) {
    HDB_ASSIGN_OR_RETURN(sink_conn_, sink_->Connect());
    // Trace schema: one row per request.
    const auto r = sink_conn_->Execute(
        "CREATE TABLE profile_trace (sql VARCHAR, shape VARCHAR, "
        "elapsed_us DOUBLE, rows_returned BIGINT, rows_scanned BIGINT, "
        "bypassed BOOLEAN)");
    if (!r.ok() && r.status().code() != StatusCode::kAlreadyExists) {
      return r.status();
    }
  }
  monitored_->set_trace_hook(
      [this](const engine::TraceEvent& ev) { OnEvent(ev); });
  return Status::OK();
}

void RequestTracer::Detach() {
  if (monitored_ != nullptr) monitored_->set_trace_hook(nullptr);
  monitored_ = nullptr;
}

void RequestTracer::OnEvent(const engine::TraceEvent& ev) {
  if (in_sink_write_) return;  // ignore our own inserts when sink == source
  events_.push_back(ev);
  if (sink_conn_ == nullptr) return;
  in_sink_write_ = true;
  std::string esc;
  for (const char c : ev.sql) {
    esc += c;
    if (c == '\'') esc += '\'';
  }
  std::string shape_esc;
  for (const char c : NormalizeStatement(ev.sql)) {
    shape_esc += c;
    if (c == '\'') shape_esc += '\'';
  }
  const std::string insert =
      "INSERT INTO profile_trace VALUES ('" + esc + "', '" + shape_esc +
      "', " + std::to_string(ev.elapsed_micros) + ", " +
      std::to_string(ev.rows_returned) + ", " +
      std::to_string(ev.rows_scanned) + ", " +
      (ev.bypassed_optimizer ? "TRUE" : "FALSE") + ")";
  if (!sink_conn_->Execute(insert).ok()) ++dropped_;
  in_sink_write_ = false;
}

}  // namespace hdb::profile
