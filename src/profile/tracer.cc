#include "profile/tracer.h"

#include "engine/parser.h"
#include "obs/metric_names.h"

namespace hdb::profile {

namespace {

/// Per-thread reentrancy latch: when the sink is the monitored database
/// itself, the flush's own INSERT fires the trace hook on the same thread;
/// the latch makes that a no-op *before* any tracer mutex is taken, so
/// self-tracing can neither recurse nor deadlock.
thread_local bool tl_in_sink_write = false;

std::string EscapeSqlString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    out += c;
    if (c == '\'') out += '\'';
  }
  return out;
}

}  // namespace

std::string NormalizeStatement(const std::string& sql) {
  return engine::NormalizeStatement(sql);
}

RequestTracer::RequestTracer(size_t batch_size, size_t ring_capacity)
    : batch_size_(batch_size == 0 ? 1 : batch_size),
      ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

Status RequestTracer::Attach(engine::Database* monitored,
                             engine::Database* sink) {
  monitored_ = monitored;
  sink_ = sink;
  events_counter_ = monitored_->metrics().RegisterCounter(obs::kTraceEvents);
  dropped_counter_ =
      monitored_->metrics().RegisterCounter(obs::kTraceDroppedSinkWrites);
  dropped_ring_counter_ =
      monitored_->metrics().RegisterCounter(obs::kTraceDroppedRing);
  if (sink_ != nullptr) {
    HDB_ASSIGN_OR_RETURN(sink_conn_, sink_->Connect());
    // Trace schema: one row per request.
    const auto r = sink_conn_->Execute(
        "CREATE TABLE profile_trace (sql VARCHAR, shape VARCHAR, "
        "elapsed_us DOUBLE, rows_returned BIGINT, rows_scanned BIGINT, "
        "bypassed BOOLEAN)");
    if (!r.ok() && r.status().code() != StatusCode::kAlreadyExists) {
      return r.status();
    }
  }
  monitored_->set_trace_hook(
      [this](const engine::TraceEvent& ev) { OnEvent(ev); });
  return Status::OK();
}

void RequestTracer::Detach() {
  if (monitored_ != nullptr) monitored_->set_trace_hook(nullptr);
  monitored_ = nullptr;
  Flush();
}

std::vector<engine::TraceEvent> RequestTracer::events() const {
  LockGuard lock(mu_);
  if (event_seq_ <= ring_capacity_) return events_;
  // Wrapped: rebuild recording order, oldest surviving event first.
  std::vector<engine::TraceEvent> out;
  out.reserve(events_.size());
  for (uint64_t seq = event_seq_ - ring_capacity_; seq < event_seq_; ++seq) {
    out.push_back(events_[seq % ring_capacity_]);
  }
  return out;
}

void RequestTracer::Flush() {
  std::vector<std::string> batch;
  {
    LockGuard lock(mu_);
    batch.swap(pending_tuples_);
  }
  if (!batch.empty()) WriteBatch(std::move(batch));
}

void RequestTracer::WriteBatch(std::vector<std::string> tuples) {
  if (sink_conn_ == nullptr) return;
  std::string insert = "INSERT INTO profile_trace VALUES ";
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i > 0) insert += ", ";
    insert += tuples[i];
  }
  tl_in_sink_write = true;
  const auto r = sink_conn_->Execute(insert);
  tl_in_sink_write = false;
  if (!r.ok()) {
    // Per-event accounting: a failed batch of N rows is N dropped writes.
    dropped_.fetch_add(tuples.size(), std::memory_order_relaxed);
    if (dropped_counter_ != nullptr) dropped_counter_->Add(tuples.size());
  }
}

void RequestTracer::OnEvent(const engine::TraceEvent& ev) {
  if (tl_in_sink_write) return;  // our own insert when sink == source
  if (events_counter_ != nullptr) events_counter_->Add();

  std::vector<std::string> batch;
  {
    LockGuard lock(mu_);
    if (events_.size() < ring_capacity_) {
      events_.push_back(ev);
    } else {
      // Ring full: overwrite the oldest event. The sink database (when
      // configured) is the unbounded record; in memory the trace stays
      // O(ring_capacity_) forever.
      events_[event_seq_ % ring_capacity_] = ev;
      dropped_ring_.fetch_add(1, std::memory_order_relaxed);
      if (dropped_ring_counter_ != nullptr) dropped_ring_counter_->Add();
    }
    ++event_seq_;
    if (sink_conn_ != nullptr) {
      pending_tuples_.push_back(
          "('" + EscapeSqlString(ev.sql) + "', '" +
          EscapeSqlString(NormalizeStatement(ev.sql)) + "', " +
          std::to_string(ev.elapsed_micros) + ", " +
          std::to_string(ev.rows_returned) + ", " +
          std::to_string(ev.rows_scanned) + ", " +
          (ev.bypassed_optimizer ? "TRUE" : "FALSE") + ")");
      if (pending_tuples_.size() >= batch_size_) batch.swap(pending_tuples_);
    }
  }
  if (!batch.empty()) WriteBatch(std::move(batch));
}

}  // namespace hdb::profile
