#ifndef HDB_PROFILE_INDEX_CONSULTANT_H_
#define HDB_PROFILE_INDEX_CONSULTANT_H_

#include <string>
#include <vector>

#include "engine/database.h"
#include "optimizer/virtual_index.h"

namespace hdb::profile {

struct Recommendation {
  enum class Kind { kCreateIndex, kDropIndex };
  Kind kind = Kind::kCreateIndex;
  std::string table;
  std::vector<std::string> columns;  // create: key columns in final order
  std::string index_name;            // drop: victim index
  double benefit_micros = 0;         // predicted workload cost saved
  int requests = 0;
  std::string ddl;                   // ready-to-run statement
};

/// The Index Consultant (paper §5): replays a workload through the
/// optimizer letting it generate virtual-index specifications (the
/// "indexes it would like to have"), costs the workload with and without
/// those indexes available, imposes a physical composition and ordering on
/// the surviving specs, and also flags physical indexes no plan used.
class IndexConsultant {
 public:
  struct Options {
    /// Keep recommendations predicted to save at least this much.
    double min_benefit_micros = 1.0;
    size_t max_recommendations = 10;
  };

  IndexConsultant(engine::Database* db, Options options)
      : db_(db), options_(options) {}
  explicit IndexConsultant(engine::Database* db)
      : IndexConsultant(db, Options{}) {}

  struct Analysis {
    std::vector<Recommendation> recommendations;
    double workload_cost_before = 0;
    double workload_cost_after = 0;  // with virtual indexes usable
    std::vector<optimizer::VirtualIndexSpec> raw_specs;
  };

  /// Analyzes a workload of SELECT statements.
  Result<Analysis> Analyze(const std::vector<std::string>& workload);

 private:
  engine::Database* db_;
  Options options_;
};

}  // namespace hdb::profile

#endif  // HDB_PROFILE_INDEX_CONSULTANT_H_
