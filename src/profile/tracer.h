#ifndef HDB_PROFILE_TRACER_H_
#define HDB_PROFILE_TRACER_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"

namespace hdb::profile {

/// Captures a detailed trace of all server activity (paper §5). The trace
/// can be held in memory and/or *written into another HolisticDB
/// database* — the paper's architecture, where the trace streams (there,
/// over TCP/IP; here, in process — DESIGN.md substitution #5) into any SQL
/// Anywhere database for analysis, including the monitored database
/// itself (convenience) or a separate one (performance).
class RequestTracer {
 public:
  RequestTracer() = default;

  /// Starts capturing `monitored`'s requests. If `sink` is non-null, each
  /// event is also inserted into a `profile_trace` table there.
  Status Attach(engine::Database* monitored, engine::Database* sink);

  /// Stops capturing (clears the hook).
  void Detach();

  const std::vector<engine::TraceEvent>& events() const { return events_; }
  uint64_t dropped_sink_writes() const { return dropped_; }

 private:
  void OnEvent(const engine::TraceEvent& ev);

  engine::Database* monitored_ = nullptr;
  engine::Database* sink_ = nullptr;
  std::unique_ptr<engine::Connection> sink_conn_;
  std::vector<engine::TraceEvent> events_;
  uint64_t dropped_ = 0;
  bool in_sink_write_ = false;
};

/// Normalizes a SQL text to its *statement shape*: literals replaced by
/// '?', whitespace canonicalized, keywords uppercased. Statements that
/// differ only in constants — the client-side join signature — normalize
/// identically.
std::string NormalizeStatement(const std::string& sql);

}  // namespace hdb::profile

#endif  // HDB_PROFILE_TRACER_H_
