#ifndef HDB_PROFILE_TRACER_H_
#define HDB_PROFILE_TRACER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/database.h"
#include "obs/metrics.h"

#include "common/lock_rank.h"

namespace hdb::profile {

/// Captures a detailed trace of all server activity (paper §5). The trace
/// can be held in memory and/or *written into another HolisticDB
/// database* — the paper's architecture, where the trace streams (there,
/// over TCP/IP; here, in process — DESIGN.md substitution #5) into any SQL
/// Anywhere database for analysis, including the monitored database
/// itself (convenience) or a separate one (performance).
///
/// Thread safety: the hook runs on whichever session thread finished a
/// request, so any number of threads may deliver events concurrently.
/// Sink writes are batched (one multi-row INSERT per `batch_size` events)
/// to keep the per-request overhead down; Detach flushes the remainder.
/// A failed batch of N rows counts N dropped writes — droppage is
/// per-event, never per-batch.
///
/// The in-memory event buffer is a bounded ring (`ring_capacity` events):
/// a tracer left attached for days stays O(1) in memory. Overwritten
/// events count into trace.dropped_ring — the sink database, when
/// configured, remains the unbounded record.
class RequestTracer {
 public:
  explicit RequestTracer(size_t batch_size = 16,
                         size_t ring_capacity = 4096);

  /// Starts capturing `monitored`'s requests. If `sink` is non-null, each
  /// event is also inserted into a `profile_trace` table there. Registers
  /// trace.events / trace.dropped_sink_writes in the monitored database's
  /// metrics registry.
  Status Attach(engine::Database* monitored, engine::Database* sink);

  /// Stops capturing (clears the hook) and flushes buffered sink rows.
  void Detach();

  /// Writes any buffered sink rows now. Safe from any thread.
  void Flush();

  /// Snapshot of the buffered events in recording order (oldest surviving
  /// first once the ring has wrapped). By value: the ring keeps moving
  /// while callers iterate.
  std::vector<engine::TraceEvent> events() const;
  uint64_t dropped_sink_writes() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Events overwritten by ring wrap-around (never includes sink drops).
  uint64_t dropped_ring_events() const {
    return dropped_ring_.load(std::memory_order_relaxed);
  }

 private:
  void OnEvent(const engine::TraceEvent& ev);
  /// Executes one multi-row INSERT for `tuples`; on failure every tuple
  /// counts as one dropped sink write.
  void WriteBatch(std::vector<std::string> tuples);

  const size_t batch_size_;
  const size_t ring_capacity_;
  // Set by Attach before it installs the trace hook (i.e. before any
  // concurrent event delivery), read lock-free afterwards — deliberately
  // not GUARDED_BY (DESIGN.md §8.4 set-once contract). Detach clears the
  // hook first for the same reason.
  engine::Database* monitored_ = nullptr;
  engine::Database* sink_ = nullptr;
  std::unique_ptr<engine::Connection> sink_conn_;

  /// Guards events_/event_seq_ and pending_tuples_; never held across a
  /// sink write.
  mutable RankedMutex<LockRank::kTracer> mu_;
  std::vector<engine::TraceEvent> events_ GUARDED_BY(mu_);  // bounded ring
  uint64_t event_seq_ GUARDED_BY(mu_) = 0;  // events ever delivered
  // Rendered "(...)" row tuples awaiting a batch INSERT.
  std::vector<std::string> pending_tuples_ GUARDED_BY(mu_);
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> dropped_ring_{0};

  // Telemetry (registered on Attach; null when the monitored database is
  // gone or Attach was never called). Same set-once-before-hook contract
  // as monitored_ above.
  obs::Counter* events_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
  obs::Counter* dropped_ring_counter_ = nullptr;
};

/// Normalizes a SQL text to its *statement shape*: literals replaced by
/// '?', whitespace canonicalized, keywords uppercased. Statements that
/// differ only in constants — the client-side join signature — normalize
/// identically. Delegates to engine::NormalizeStatement (the engine uses
/// the same shapes for sys.statements).
std::string NormalizeStatement(const std::string& sql);

}  // namespace hdb::profile

#endif  // HDB_PROFILE_TRACER_H_
