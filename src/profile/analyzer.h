#ifndef HDB_PROFILE_ANALYZER_H_
#define HDB_PROFILE_ANALYZER_H_

#include <string>
#include <vector>

#include "engine/database.h"
#include "profile/tracer.h"

namespace hdb::profile {

enum class FindingKind {
  /// Many identical statements differing only in a constant — the
  /// application is performing a join client-side, one probe at a time
  /// (paper §5); a single set-oriented statement would be cheaper.
  kClientSideJoin,
  /// A database option is set to a value from the known-flaws database.
  kSuspiciousOption,
  /// A statement repeatedly scans many rows to return few — an index or a
  /// rewritten predicate is probably missing.
  kExpensiveScan,
};

struct Finding {
  FindingKind kind;
  std::string subject;  // statement shape or option name
  std::string message;
  uint64_t occurrences = 0;
  double total_elapsed_micros = 0;
};

/// Application Profiling analysis over a captured trace (paper §5): a
/// database of commonly seen design flaws, applied to the trace and the
/// database's option settings.
class WorkloadAnalyzer {
 public:
  struct Options {
    /// A shape this frequent with distinct constants is a client-side
    /// join candidate.
    uint64_t client_join_threshold = 8;
    /// Scan-to-result ratio flagged as expensive.
    double expensive_scan_ratio = 100.0;
    uint64_t expensive_scan_min_rows = 1000;
  };

  explicit WorkloadAnalyzer(Options options) : options_(options) {}
  WorkloadAnalyzer() : WorkloadAnalyzer(Options{}) {}

  /// Analyzes trace events plus the database's options.
  std::vector<Finding> Analyze(const std::vector<engine::TraceEvent>& events,
                               engine::Database* db) const;

 private:
  Options options_;
};

}  // namespace hdb::profile

#endif  // HDB_PROFILE_ANALYZER_H_
