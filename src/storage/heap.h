#ifndef HDB_STORAGE_HEAP_H_
#define HDB_STORAGE_HEAP_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace hdb::storage {

/// Handle to an object inside a ConnectionHeap: (page index within the
/// heap, byte offset). Handles stay valid across unlock/re-lock cycles even
/// though the backing frames move; raw pointers do not — that is the
/// pointer-swizzling contract of paper §2.1.
struct HeapPtr {
  uint32_t page_index = 0xffffffffu;
  uint32_t offset = 0;

  bool valid() const { return page_index != 0xffffffffu; }
  bool operator==(const HeapPtr&) const = default;
};

/// A connection-scoped, page-backed memory heap (paper §2.1).
///
/// Query-processing data structures (hash tables, cursors, prepared
/// statements) are allocated in heaps whose pages are ordinary buffer-pool
/// pages in the temporary space. While a heap is *locked*, its pages are
/// pinned and raw pointers are stable. When the request is idle (e.g.
/// awaiting the next FETCH) the heap is *unlocked*: its pages become
/// evictable, and the buffer pool may steal the frames — swapping dirty
/// pages out to the temporary file — for table or index pages. Re-locking
/// reloads stolen pages into (possibly different) frames; Resolve()
/// re-binds ("swizzles") handles to the new addresses and a swizzle epoch
/// lets cached raw pointers detect staleness.
class ConnectionHeap {
 public:
  ConnectionHeap(BufferPool* pool, uint32_t owner_oid = 0);
  ~ConnectionHeap();

  ConnectionHeap(const ConnectionHeap&) = delete;
  ConnectionHeap& operator=(const ConnectionHeap&) = delete;

  /// Pins all heap pages, reloading any stolen ones. Idempotent.
  Status Lock();

  /// Unpins all pages, making them stealable. Idempotent.
  void Unlock();

  bool locked() const { return locked_; }

  /// Allocates `n` bytes (n <= page capacity) aligned to 8. The heap must
  /// be locked. Allocation is arena-style: individual objects are not
  /// freed; Reset() releases everything.
  Result<HeapPtr> Allocate(uint32_t n);

  /// Address of `p` — valid only while the heap is locked, and only until
  /// the next unlock.
  void* Resolve(HeapPtr p);

  /// Convenience: allocate + default-construct a trivially-destructible T.
  template <typename T>
  Result<HeapPtr> New() {
    HDB_ASSIGN_OR_RETURN(HeapPtr p, Allocate(sizeof(T)));
    new (Resolve(p)) T();
    return p;
  }
  template <typename T>
  T* Get(HeapPtr p) {
    return static_cast<T*>(Resolve(p));
  }

  /// Discards all pages (they go to the buffer pool's lookaside queue for
  /// immediate reuse). The heap returns to the locked-empty state.
  void Reset();

  /// Incremented on every re-lock that may have moved frames; consumers
  /// caching raw pointers compare epochs (the swizzling protocol).
  uint64_t swizzle_epoch() const { return epoch_; }

  size_t page_count() const { return pages_.size(); }
  uint64_t allocated_bytes() const { return allocated_bytes_; }
  /// Pages currently resident because the heap is locked.
  size_t pinned_pages() const { return locked_ ? handles_.size() : 0; }

 private:
  Status AddPage();

  BufferPool* pool_;
  uint32_t owner_oid_;
  bool locked_ = true;
  uint64_t epoch_ = 0;
  std::vector<PageId> pages_;          // temp-space page ids
  std::vector<PageHandle> handles_;    // pins, only while locked
  uint32_t bump_offset_ = 0;           // within the last page
  uint64_t allocated_bytes_ = 0;
};

/// A cached, swizzle-aware pointer to a T inside a heap. `get` re-resolves
/// (re-swizzles) automatically when the heap's epoch has advanced.
template <typename T>
class SwizzledPtr {
 public:
  SwizzledPtr() = default;
  explicit SwizzledPtr(HeapPtr target) : target_(target) {}

  T* get(ConnectionHeap& heap) {
    if (cached_ == nullptr || epoch_ != heap.swizzle_epoch()) {
      cached_ = static_cast<T*>(heap.Resolve(target_));
      epoch_ = heap.swizzle_epoch();
    }
    return cached_;
  }

  HeapPtr target() const { return target_; }

 private:
  HeapPtr target_;
  T* cached_ = nullptr;
  uint64_t epoch_ = 0;
};

}  // namespace hdb::storage

#endif  // HDB_STORAGE_HEAP_H_
