#include "storage/lookaside_queue.h"

namespace hdb::storage {

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

LookasideQueue::LookasideQueue(size_t capacity_pow2)
    : capacity_(RoundUpPow2(capacity_pow2 == 0 ? 2 : capacity_pow2)),
      mask_(capacity_ - 1),
      cells_(new Cell[capacity_]) {
  for (size_t i = 0; i < capacity_; ++i) {
    cells_[i].sequence.store(i, std::memory_order_relaxed);
  }
}

bool LookasideQueue::Push(uint32_t frame_id) {
  uint64_t pos = tail_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const uint64_t seq = cell.sequence.load(std::memory_order_acquire);
    const auto diff = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
    if (diff == 0) {
      if (tail_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        cell.value = frame_id;
        cell.sequence.store(pos + 1, std::memory_order_release);
        pushes_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    } else if (diff < 0) {
      return false;  // full
    } else {
      pos = tail_.load(std::memory_order_relaxed);
    }
  }
}

std::optional<uint32_t> LookasideQueue::Pop() {
  uint64_t pos = head_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const uint64_t seq = cell.sequence.load(std::memory_order_acquire);
    const auto diff =
        static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1);
    if (diff == 0) {
      if (head_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        const uint32_t v = cell.value;
        cell.sequence.store(pos + capacity_, std::memory_order_release);
        pops_.fetch_add(1, std::memory_order_relaxed);
        return v;
      }
    } else if (diff < 0) {
      return std::nullopt;  // empty
    } else {
      pos = head_.load(std::memory_order_relaxed);
    }
  }
}

size_t LookasideQueue::ApproxSize() const {
  const uint64_t t = tail_.load(std::memory_order_relaxed);
  const uint64_t h = head_.load(std::memory_order_relaxed);
  return t > h ? static_cast<size_t>(t - h) : 0;
}

}  // namespace hdb::storage
