#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "obs/trace.h"

namespace hdb::storage {

PageHandle::PageHandle(BufferPool* pool, uint32_t frame_id, char* data,
                       SpacePageId spid)
    : pool_(pool), frame_id_(frame_id), data_(data), spid_(spid) {}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_id_ = other.frame_id_;
    data_ = other.data_;
    spid_ = other.spid_;
    dirty_ = other.dirty_;
    lsn_ = other.lsn_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->UnpinFrame(frame_id_, dirty_, lsn_);
    pool_ = nullptr;
    data_ = nullptr;
    dirty_ = false;
    lsn_ = kNullLsn;
  }
}

void PageHandle::MarkDirty(Lsn lsn) {
  dirty_ = true;
  if (lsn > lsn_) lsn_ = lsn;
  // Publish now, not at unpin: a fuzzy checkpoint between the WAL append
  // and the handle's release must see this frame's recLSN, or its end
  // record could place the redo start past a change that never reached the
  // media. (The unpin re-publish is then a no-op.)
  if (pool_ != nullptr && lsn != kNullLsn) {
    pool_->PublishFrameLsn(frame_id_, lsn);
  }
}

BufferPool::BufferPool(DiskManager* disk, BufferPoolOptions options)
    : disk_(disk),
      options_(options),
      replacer_(options.initial_frames),
      lookaside_(options.lookaside_capacity) {
  frames_.resize(std::max<size_t>(1, options.initial_frames));
  replacer_.Resize(frames_.size());
  for (size_t i = 0; i < frames_.size(); ++i) {
    frames_[i].data = std::make_unique<char[]>(disk_->page_bytes());
    free_frames_.push_back(static_cast<uint32_t>(i));
  }
}

void BufferPool::AdjustOwnerResidency(uint32_t owner, int delta) {
  if (owner == 0) return;
  size_t& count = owner_residency_[owner];
  if (delta < 0 && count < static_cast<size_t>(-delta)) {
    count = 0;
  } else {
    count += delta;
  }
}

Status BufferPool::FlushFrameLocked(uint32_t frame_id) {
  Frame& f = frames_[frame_id];
  if (!f.valid || !f.dirty) return Status::OK();
  // WAL-before-data: a logged page may not reach the media before its log
  // records do. The barrier both flushes and fsyncs the WAL, so the rule
  // holds even when the media later syncs an arbitrary subset of pending
  // writes (crash-during-sync).
  if (f.lsn != kNullLsn && flush_barrier_) {
    HDB_RETURN_IF_ERROR(flush_barrier_(f.lsn));
  }
  HDB_RETURN_IF_ERROR(disk_->WritePage(f.spid.space, f.spid.page, f.data.get()));
  f.dirty = false;
  f.lsn = kNullLsn;
  return Status::OK();
}

void BufferPool::EvictFrameLocked(uint32_t frame_id) {
  Frame& f = frames_[frame_id];
  if (!f.valid) return;
  // Dirty pages are written back; for an unlocked connection heap this is
  // precisely the paper's "stolen pages are swapped out to the temporary
  // file" (heap pages live in the temp space). A flush failure (crashed
  // fault-injection media) drops the page without writing it — the
  // WAL-before-data invariant is preserved precisely because the write was
  // NOT issued.
  IgnoreError(FlushFrameLocked(frame_id));
  if (f.type == PageType::kHeap) ++heap_steals_;
  ++evictions_;
  page_table_.erase(f.spid);
  AdjustOwnerResidency(f.owner, -1);
  f.valid = false;
  f.type = PageType::kFree;
  f.owner = 0;
  replacer_.Remove(frame_id);
}

Result<uint32_t> BufferPool::GetVictimFrame(
    UniqueLock<RankedMutex<LockRank::kBufferPool>>& lock)
    NO_THREAD_SAFETY_ANALYSIS {
  while (true) {
    if (!free_frames_.empty()) {
      const uint32_t id = free_frames_.back();
      free_frames_.pop_back();
      return id;
    }
    // Fast path: lock-free lookaside queue of dead frames. Entries may be
    // stale (frame re-used since push); validate under the latch.
    while (auto id = lookaside_.Pop()) {
      if (*id >= frames_.size()) continue;  // stale entry from a shrink
      Frame& f = frames_[*id];
      if (!f.valid && f.pin_count == 0) {
        ++lookaside_reuses_;
        return *id;
      }
    }
    auto victim = replacer_.Victim();
    if (!victim) {
      return Status::ResourceExhausted(
          "buffer pool exhausted: all frames pinned");
    }
    Frame& f = frames_[*victim];
    if (f.valid && f.dirty && f.lsn != kNullLsn && flush_barrier_) {
      // The victim needs the WAL flush barrier (tail write + fsync) before
      // its image may be written back. Run it without mu_ so concurrent
      // pool traffic is not stalled behind the fsync; the pin keeps the
      // frame (and its index) from being evicted, discarded, or truncated
      // away meanwhile. Barrier failure is handled by FlushFrameLocked
      // inside EvictFrameLocked (the page is dropped unwritten, which
      // preserves WAL-before-data).
      const Lsn barrier_lsn = f.lsn;
      // Copy the barrier out before dropping the latch (it is guarded by
      // mu_; invoking the member unlocked would race SetFlushBarrier).
      const std::function<Status(Lsn)> barrier = flush_barrier_;
      f.pin_count++;
      replacer_.SetEvictable(*victim, false);
      lock.unlock();
      IgnoreError(barrier(barrier_lsn));
      lock.lock();
      Frame& g = frames_[*victim];  // frames_ may have been reallocated
      g.pin_count--;
      if (g.pin_count > 0) {
        // Re-pinned while the log flushed: the page is hot again. Leave it
        // (its holder restores evictability at unpin) and pick another.
        continue;
      }
      replacer_.SetEvictable(*victim, true);
      // The frame's LSN may have advanced past barrier_lsn while unlocked;
      // FlushFrameLocked's own (now usually no-op) barrier covers that.
    }
    EvictFrameLocked(*victim);
    return *victim;
  }
}

Result<PageHandle> BufferPool::FetchPage(SpacePageId spid, PageType type,
                                         uint32_t owner) {
  UniqueLock lock(mu_);
  auto it = page_table_.find(spid);
  if (it != page_table_.end()) {
    ++hits_;
    Frame& f = frames_[it->second];
    f.pin_count++;
    replacer_.RecordReference(it->second);
    replacer_.SetEvictable(it->second, false);
    return PageHandle(this, it->second, f.data.get(), spid);
  }
  ++misses_;
  ++misses_since_poll_;
  // Miss attribution is accumulate-only (per-miss ring events would drown
  // the discrete waits); the tally covers eviction + the disk read.
  obs::StatementTrace* trace = obs::CurrentStatementTrace();
  const uint64_t miss_start = trace != nullptr ? obs::TraceNowMicros() : 0;
  HDB_ASSIGN_OR_RETURN(const uint32_t frame_id, GetVictimFrame(lock));
  // GetVictimFrame may have dropped the latch: the page could have been
  // loaded by a racing fetch in that window. Re-check before reading it in
  // twice (two frames for one page would let their images diverge).
  it = page_table_.find(spid);
  if (it != page_table_.end()) {
    Frame& f = frames_[it->second];
    f.pin_count++;
    replacer_.RecordReference(it->second);
    replacer_.SetEvictable(it->second, false);
    free_frames_.push_back(frame_id);  // return the victim unused
    if (trace != nullptr) {
      trace->AccumulateWait(obs::WaitCause::kPoolMiss,
                            obs::TraceNowMicros() - miss_start);
    }
    return PageHandle(this, it->second, f.data.get(), spid);
  }
  Frame& f = frames_[frame_id];
  HDB_RETURN_IF_ERROR(disk_->ReadPage(spid.space, spid.page, f.data.get()));
  f.spid = spid;
  f.type = type;
  f.owner = owner;
  f.pin_count = 1;
  f.dirty = false;
  f.valid = true;
  f.lsn = kNullLsn;
  page_table_[spid] = frame_id;
  AdjustOwnerResidency(owner, +1);
  replacer_.RecordReference(frame_id);
  replacer_.SetEvictable(frame_id, false);
  if (trace != nullptr) {
    trace->AccumulateWait(obs::WaitCause::kPoolMiss,
                          obs::TraceNowMicros() - miss_start);
  }
  return PageHandle(this, frame_id, f.data.get(), spid);
}

Result<PageHandle> BufferPool::NewPage(SpaceId space, PageType type,
                                       uint32_t owner, PageId* out_page_id) {
  UniqueLock lock(mu_);
  // A fresh page is by definition not resident: it counts as a miss for
  // the pool governor's growth-gating signal.
  ++misses_;
  ++misses_since_poll_;
  HDB_ASSIGN_OR_RETURN(const uint32_t frame_id, GetVictimFrame(lock));
  const PageId page_id = disk_->AllocatePage(space);
  if (out_page_id != nullptr) *out_page_id = page_id;
  Frame& f = frames_[frame_id];
  std::memset(f.data.get(), 0, disk_->page_bytes());
  f.spid = SpacePageId{space, page_id};
  f.type = type;
  f.owner = owner;
  f.pin_count = 1;
  f.dirty = true;  // must reach disk at least once
  f.valid = true;
  f.lsn = kNullLsn;
  page_table_[f.spid] = frame_id;
  AdjustOwnerResidency(owner, +1);
  replacer_.RecordReference(frame_id);
  replacer_.SetEvictable(frame_id, false);
  return PageHandle(this, frame_id, f.data.get(), f.spid);
}

void BufferPool::DiscardPage(SpacePageId spid) {
  LockGuard lock(mu_);
  auto it = page_table_.find(spid);
  if (it != page_table_.end()) {
    const uint32_t frame_id = it->second;
    Frame& f = frames_[frame_id];
    if (f.pin_count > 0) return;  // caller bug; keep the page
    page_table_.erase(it);
    AdjustOwnerResidency(f.owner, -1);
    f.valid = false;
    f.dirty = false;
    f.lsn = kNullLsn;
    f.type = PageType::kFree;
    f.owner = 0;
    replacer_.Remove(frame_id);
    // Dead content: immediately reusable without the clock (paper §2.2).
    if (!lookaside_.Push(frame_id)) {
      free_frames_.push_back(frame_id);
    }
  }
  disk_->DeallocatePage(spid.space, spid.page);
}

Status BufferPool::FlushPage(SpacePageId spid) {
  LockGuard lock(mu_);
  auto it = page_table_.find(spid);
  if (it == page_table_.end()) return Status::OK();
  return FlushFrameLocked(it->second);
}

Status BufferPool::FlushAll() {
  UniqueLock lock(mu_);
  // Hoist the WAL barrier out of the pool latch: one EnsureDurable for the
  // highest logged LSN among flushable frames, instead of a potential
  // fsync per frame while every concurrent FetchPage waits on mu_. The
  // per-frame barrier inside FlushFrameLocked stays — it is the
  // correctness point — but after this it only pays an fsync for a frame
  // whose LSN advanced in the window.
  if (flush_barrier_) {
    Lsn max_lsn = kNullLsn;
    for (const Frame& f : frames_) {
      if (f.valid && f.dirty && f.pin_count == 0 && f.lsn != kNullLsn &&
          (max_lsn == kNullLsn || f.lsn > max_lsn)) {
        max_lsn = f.lsn;
      }
    }
    if (max_lsn != kNullLsn) {
      const std::function<Status(Lsn)> barrier = flush_barrier_;
      lock.unlock();
      HDB_RETURN_IF_ERROR(barrier(max_lsn));
      lock.lock();
    }
  }
  for (size_t i = 0; i < frames_.size(); ++i) {
    // Skip pinned frames: their holder may be mutating the page bytes
    // right now (page content is only guarded by the owner's table/index
    // latch, not the pool latch). They reach disk on eviction or on the
    // next FlushAll after release; the checkpoint covers them through
    // MinDirtyLsn and the WAL's in-flight LSN registry.
    if (frames_[i].pin_count > 0) continue;
    HDB_RETURN_IF_ERROR(FlushFrameLocked(static_cast<uint32_t>(i)));
  }
  return Status::OK();
}

size_t BufferPool::Resize(size_t target_frames) {
  LockGuard lock(mu_);
  target_frames = std::max<size_t>(1, target_frames);
  if (target_frames > frames_.size()) {
    const size_t old = frames_.size();
    frames_.resize(target_frames);
    for (size_t i = old; i < target_frames; ++i) {
      frames_[i].data = std::make_unique<char[]>(disk_->page_bytes());
      free_frames_.push_back(static_cast<uint32_t>(i));
    }
    replacer_.Resize(target_frames);
    return frames_.size();
  }
  // Shrink: evict from the tail so the vector can be truncated. Pinned
  // frames block shrinking past them.
  size_t new_size = frames_.size();
  while (new_size > target_frames) {
    Frame& f = frames_[new_size - 1];
    if (f.pin_count > 0) break;
    if (f.valid) EvictFrameLocked(static_cast<uint32_t>(new_size - 1));
    --new_size;
  }
  if (new_size != frames_.size()) {
    frames_.resize(new_size);
    // Drop free-list / lookaside entries that point past the end.
    std::erase_if(free_frames_,
                  [new_size](uint32_t id) { return id >= new_size; });
    // The lookaside queue may contain stale ids; Pop() validation plus the
    // bounds check below handles them.
    replacer_.Resize(new_size);
  }
  return frames_.size();
}

size_t BufferPool::CurrentFrames() const {
  LockGuard lock(mu_);
  return frames_.size();
}

uint64_t BufferPool::CurrentBytes() const {
  return static_cast<uint64_t>(CurrentFrames()) * disk_->page_bytes();
}

BufferPoolStats BufferPool::stats() const {
  LockGuard lock(mu_);
  BufferPoolStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.heap_steals = heap_steals_;
  s.lookaside_reuses = lookaside_reuses_;
  s.current_frames = frames_.size();
  s.free_frames = free_frames_.size();
  for (const Frame& f : frames_) {
    if (f.pin_count > 0) s.pinned_frames++;
    if (f.valid && f.dirty) s.dirty_frames++;
  }
  return s;
}

uint64_t BufferPool::TakeMissesSinceLastPoll() {
  LockGuard lock(mu_);
  const uint64_t m = misses_since_poll_;
  misses_since_poll_ = 0;
  return m;
}

size_t BufferPool::ResidentPages(uint32_t owner) const {
  LockGuard lock(mu_);
  const auto it = owner_residency_.find(owner);
  return it == owner_residency_.end() ? 0 : it->second;
}

void BufferPool::PublishFrameLsn(uint32_t frame_id, Lsn lsn) {
  LockGuard lock(mu_);
  if (frame_id >= frames_.size()) return;
  Frame& f = frames_[frame_id];
  f.dirty = true;
  if (lsn > f.lsn) f.lsn = lsn;
}

void BufferPool::UnpinFrame(uint32_t frame_id, bool dirty, Lsn lsn) {
  LockGuard lock(mu_);
  if (frame_id >= frames_.size()) return;  // frame vanished in a shrink
  Frame& f = frames_[frame_id];
  if (f.pin_count > 0) f.pin_count--;
  if (dirty) f.dirty = true;
  if (lsn > f.lsn) f.lsn = lsn;
  if (f.pin_count == 0) replacer_.SetEvictable(frame_id, true);
}

void BufferPool::SetFlushBarrier(std::function<Status(Lsn)> barrier) {
  LockGuard lock(mu_);
  flush_barrier_ = std::move(barrier);
}

Lsn BufferPool::MinDirtyLsn() const {
  LockGuard lock(mu_);
  Lsn min_lsn = kNullLsn;
  for (const Frame& f : frames_) {
    if (!f.valid || !f.dirty || f.lsn == kNullLsn) continue;
    if (min_lsn == kNullLsn || f.lsn < min_lsn) min_lsn = f.lsn;
  }
  return min_lsn;
}

}  // namespace hdb::storage
