#ifndef HDB_STORAGE_CLOCK_REPLACER_H_
#define HDB_STORAGE_CLOCK_REPLACER_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace hdb::storage {

/// Modified generalized CLOCK replacement (paper §2.2).
///
/// Conceptually the pool is ordered by time of last reference and divided
/// into eight *segments* of that reference-time series. A page's score is
/// incremented only when it is re-referenced from a *different* segment
/// than its previous reference — so the burst of adjacent references a
/// table scan makes to one page raises the score just once, while genuinely
/// hot pages re-referenced across segments accumulate score. Scores decay
/// exponentially with age (one halving per un-referenced window), ensuring
/// every page eventually becomes a replacement candidate. The clock hand
/// sweeps frames and evicts the first frame whose decayed score reaches
/// zero, writing back the decayed score (and stepping it down) otherwise.
///
/// The replacer is not internally synchronized; the buffer pool calls it
/// under its latch. (The fast path that avoids this latch entirely is the
/// LookasideQueue.)
class ClockReplacer {
 public:
  /// `num_segments` = 8 in the paper; `max_score` caps accumulation so a
  /// formerly-hot page cannot stay irreplaceable forever.
  explicit ClockReplacer(size_t num_frames = 0, uint32_t num_segments = 8,
                         uint32_t max_score = 7);

  /// Grows/shrinks the frame-id domain to [0, n).
  void Resize(size_t n);

  /// Notes a reference to `frame_id` (fetch hit or page load).
  void RecordReference(uint32_t frame_id);

  /// Pinned frames are never victims.
  void SetEvictable(uint32_t frame_id, bool evictable);

  /// Forgets a frame's history (frame freed or repurposed).
  void Remove(uint32_t frame_id);

  /// Chooses a victim frame, or nullopt when nothing is evictable.
  std::optional<uint32_t> Victim();

  /// Decayed score of a frame, for tests and introspection.
  uint32_t EffectiveScore(uint32_t frame_id) const;

  uint64_t ticks() const { return tick_; }

 private:
  struct Entry {
    uint64_t last_ref_tick = 0;
    uint32_t score = 0;
    bool evictable = false;
    bool tracked = false;
  };

  /// Reference-time segment width, in ticks: one eighth of a window that
  /// spans roughly one full sweep of the pool.
  uint64_t SegmentWidth() const;
  uint32_t DecayedScore(const Entry& e) const;

  uint32_t num_segments_;
  uint32_t max_score_;
  uint64_t tick_ = 0;
  size_t hand_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace hdb::storage

#endif  // HDB_STORAGE_CLOCK_REPLACER_H_
