#ifndef HDB_STORAGE_LOOKASIDE_QUEUE_H_
#define HDB_STORAGE_LOOKASIDE_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

namespace hdb::storage {

/// Lock-free bounded MPMC queue of frame ids (paper §2.2).
///
/// The buffer pool pushes frames whose contents are dead — freed connection
/// heap pages and dropped temporary-table pages — so that a frame can be
/// reused "immediately", without running the clock algorithm or taking the
/// pool latch. The paper stresses the queue must be lock-free because
/// semaphores are expensive on most hardware; this is a Vyukov-style
/// bounded array queue using only atomics.
class LookasideQueue {
 public:
  explicit LookasideQueue(size_t capacity_pow2 = 1024);

  LookasideQueue(const LookasideQueue&) = delete;
  LookasideQueue& operator=(const LookasideQueue&) = delete;

  /// Attempts to enqueue; returns false when full (caller just leaves the
  /// frame to the clock algorithm).
  bool Push(uint32_t frame_id);

  /// Attempts to dequeue; empty optional when no frame is available.
  std::optional<uint32_t> Pop();

  /// Approximate occupancy (racy, for stats only).
  size_t ApproxSize() const;

  uint64_t push_count() const { return pushes_.load(std::memory_order_relaxed); }
  uint64_t pop_count() const { return pops_.load(std::memory_order_relaxed); }

 private:
  struct Cell {
    std::atomic<uint64_t> sequence;
    uint32_t value;
  };

  size_t capacity_;
  size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::atomic<uint64_t> tail_{0};
  std::atomic<uint64_t> pushes_{0};
  std::atomic<uint64_t> pops_{0};
};

}  // namespace hdb::storage

#endif  // HDB_STORAGE_LOOKASIDE_QUEUE_H_
