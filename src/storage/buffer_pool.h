#ifndef HDB_STORAGE_BUFFER_POOL_H_
#define HDB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/clock_replacer.h"
#include "storage/disk_manager.h"
#include "storage/lookaside_queue.h"
#include "storage/page.h"

#include "common/lock_rank.h"

namespace hdb::storage {

class BufferPool;

/// RAII pin on a buffer-pool frame. While a PageHandle is live the page is
/// pinned in memory and `data()` is stable. Destroying (or Release()-ing)
/// the handle unpins, propagating the dirty flag.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, uint32_t frame_id, char* data,
             SpacePageId spid);
  ~PageHandle() { Release(); }

  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;

  bool valid() const { return pool_ != nullptr; }
  char* data() { return data_; }
  const char* data() const { return data_; }
  SpacePageId spid() const { return spid_; }
  uint32_t frame_id() const { return frame_id_; }

  /// Marks the page modified; it will be written back before its frame is
  /// reused.
  void MarkDirty() { dirty_ = true; }

  /// Marks the page modified by a WAL-logged operation whose record got
  /// `lsn`. The pool will not write the page back until the WAL is durable
  /// up to the frame's highest such LSN (the WAL-before-data rule). The
  /// dirty flag and recLSN are published to the frame immediately (under
  /// the pool latch), not deferred to unpin, so a concurrent fuzzy
  /// checkpoint's MinDirtyLsn() sees the change as soon as it is applied.
  void MarkDirty(Lsn lsn);

  /// Unpins now (idempotent).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  uint32_t frame_id_ = 0;
  char* data_ = nullptr;
  SpacePageId spid_;
  bool dirty_ = false;
  Lsn lsn_ = kNullLsn;
};

struct BufferPoolOptions {
  size_t initial_frames = 256;
  size_t lookaside_capacity = 1024;
};

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t heap_steals = 0;     // evictions of kHeap pages (paper §2.1)
  uint64_t lookaside_reuses = 0;
  size_t current_frames = 0;
  size_t pinned_frames = 0;
  size_t free_frames = 0;
  size_t dirty_frames = 0;  // checkpoint-governor input (DESIGN.md §7)
};

/// The single heterogeneous buffer pool (paper §2, §2.1, §2.2).
///
/// All page types — table, index, undo/redo log, bitmap, free and
/// connection-heap pages — live in one pool of uniformly-sized frames. The
/// pool can grow and shrink on demand (Resize), which is what the
/// PoolGovernor's feedback loop drives. Replacement combines the segmented
/// clock algorithm with a lock-free lookaside queue of immediately
/// reusable (dead-content) frames.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, BufferPoolOptions options = {});

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  uint32_t page_bytes() const { return disk_->page_bytes(); }
  DiskManager* disk() { return disk_; }

  /// Pins the page, reading it from disk on a miss. `type` and `owner`
  /// (a table/index oid, or 0) tag the frame for accounting.
  Result<PageHandle> FetchPage(SpacePageId spid, PageType type,
                               uint32_t owner = 0);

  /// Allocates a fresh zeroed page in `space` and pins it.
  Result<PageHandle> NewPage(SpaceId space, PageType type, uint32_t owner,
                             PageId* out_page_id);

  /// Declares the page's contents dead (freed heap page, dropped temp
  /// table): the frame goes to the lookaside queue for immediate reuse and
  /// the disk page is deallocated. The page must be unpinned.
  void DiscardPage(SpacePageId spid);

  /// Writes back one page / all dirty pages.
  Status FlushPage(SpacePageId spid);
  Status FlushAll();

  /// Installs the WAL-before-data barrier: called with a frame's highest
  /// logged LSN before that frame's page image is written back, and must
  /// not return until the log is durable up to it (WalManager::
  /// EnsureDurable). Frames dirtied only through the plain MarkDirty()
  /// (index, temp, log-less runs) bypass the barrier. Set once at open,
  /// before concurrent traffic.
  void SetFlushBarrier(std::function<Status(Lsn)> barrier);

  /// Smallest LSN among frames still dirty from logged operations —
  /// typically pages FlushAll had to skip because they were pinned. The
  /// checkpoint records it so redo starts early enough to cover them
  /// (ARIES would call this the dirty-page table's min recLSN). kNullLsn
  /// when no such frame exists.
  Lsn MinDirtyLsn() const;

  /// Grows or shrinks the pool toward `target_frames`, evicting unpinned
  /// pages as needed. Returns the frame count actually achieved (shrink is
  /// limited by pinned pages).
  size_t Resize(size_t target_frames);

  size_t CurrentFrames() const;
  uint64_t CurrentBytes() const;

  BufferPoolStats stats() const;

  /// Misses since the previous call — the PoolGovernor's "buffer pool miss
  /// rate between polling times" input (paper §2).
  uint64_t TakeMissesSinceLastPoll();

  /// Number of `owner`'s pages currently resident — drives the live
  /// "percentage of a table in the buffer pool" statistic (paper §3.2).
  size_t ResidentPages(uint32_t owner) const;

 private:
  struct Frame {
    std::unique_ptr<char[]> data;
    SpacePageId spid;
    PageType type = PageType::kFree;
    uint32_t owner = 0;
    int pin_count = 0;
    bool dirty = false;
    bool valid = false;  // holds a live page image
    Lsn lsn = kNullLsn;  // highest WAL LSN among unflushed changes
  };

  friend class PageHandle;

  // GetVictimFrame requires `lock` (over mu_) held on entry and holds it
  // again on return, but may drop it to run the WAL flush barrier for a
  // dirty victim (an fsync under mu_ would stall every concurrent
  // FetchPage). The drop/relock window is the documented §8.4 analysis
  // boundary: callers see REQUIRES(mu_); the body — which releases and
  // reacquires through the caller's guard, a transfer the analysis cannot
  // follow — opts out, and stays covered by the runtime rank checker plus
  // the TSan matrix.
  Result<uint32_t> GetVictimFrame(
      UniqueLock<RankedMutex<LockRank::kBufferPool>>& lock) REQUIRES(mu_);
  void EvictFrameLocked(uint32_t frame_id) REQUIRES(mu_);
  Status FlushFrameLocked(uint32_t frame_id) REQUIRES(mu_);
  void UnpinFrame(uint32_t frame_id, bool dirty, Lsn lsn) EXCLUDES(mu_);
  void PublishFrameLsn(uint32_t frame_id, Lsn lsn) EXCLUDES(mu_);
  void AdjustOwnerResidency(uint32_t owner, int delta) REQUIRES(mu_);

  DiskManager* disk_;
  BufferPoolOptions options_;

  mutable RankedMutex<LockRank::kBufferPool> mu_;
  /// Invoked with mu_ *dropped* (fsync under the pool latch would stall
  /// every fetch): readers copy it out under mu_ first.
  std::function<Status(Lsn)> flush_barrier_ GUARDED_BY(mu_);
  std::vector<Frame> frames_ GUARDED_BY(mu_);
  std::vector<uint32_t> free_frames_ GUARDED_BY(mu_);
  std::unordered_map<SpacePageId, uint32_t, SpacePageIdHash> page_table_
      GUARDED_BY(mu_);
  ClockReplacer replacer_ GUARDED_BY(mu_);
  LookasideQueue lookaside_;  // lock-free by design (validated under mu_)
  std::map<uint32_t, size_t> owner_residency_ GUARDED_BY(mu_);

  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
  uint64_t evictions_ GUARDED_BY(mu_) = 0;
  uint64_t heap_steals_ GUARDED_BY(mu_) = 0;
  uint64_t lookaside_reuses_ GUARDED_BY(mu_) = 0;
  uint64_t misses_since_poll_ GUARDED_BY(mu_) = 0;
};

}  // namespace hdb::storage

#endif  // HDB_STORAGE_BUFFER_POOL_H_
