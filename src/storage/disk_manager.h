#ifndef HDB_STORAGE_DISK_MANAGER_H_
#define HDB_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "os/stable_storage.h"
#include "os/virtual_clock.h"
#include "os/virtual_disk.h"
#include "storage/page.h"

#include "common/lock_rank.h"

namespace hdb::storage {

/// Page store for the database's spaces (main / temp / log).
///
/// Two backing modes:
///  - Volatile (default, `media == nullptr`): page images live in memory;
///    databases are hermetic and vanish with the process. All pre-WAL
///    behavior.
///  - Durable (`media != nullptr`): images live in an os::StableStorage
///    that outlives the DiskManager. Writes are buffered by the media and
///    become durable only at Sync() — the WAL layer builds its
///    flush-ordering rules on exactly this boundary. Reopening a
///    DiskManager over the same media resumes from whatever survived the
///    last sync (plus injected faults).
///
/// In both modes I/O *cost* is simulated through an optional
/// os::VirtualDisk: each read/write/sync asks the device for a service
/// time, accumulates it, and advances the virtual clock. This gives the
/// DTT cost model something real to predict (Eq. (3)) without depending on
/// host hardware.
class DiskManager {
 public:
  /// `device` may be null, in which case I/O is free (unit tests).
  /// `clock` may be null; otherwise simulated service time advances it.
  /// `media` may be null (volatile mode, see above).
  DiskManager(uint32_t page_bytes, std::unique_ptr<os::VirtualDisk> device,
              os::VirtualClock* clock,
              std::shared_ptr<os::StableStorage> media = nullptr);

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  uint32_t page_bytes() const { return page_bytes_; }

  /// Allocates a zeroed page in `space` and returns its id. Volatile mode
  /// reuses deallocated pages; durable mode is append-only (a freed page's
  /// media image may still hold pre-crash bytes, so ids are never recycled
  /// into fresh content without a rewrite).
  PageId AllocatePage(SpaceId space);

  /// Returns `page` to the space's free list (volatile mode only; durable
  /// mode just drops the live count — leaked page images are reclaimed by
  /// no one, which recovery tolerates).
  void DeallocatePage(SpaceId space, PageId page);

  /// Extends `space` so that `page` is a valid id — recovery replaying a
  /// page-allocation record against media that never saw the page flushed.
  void EnsureAllocated(SpaceId space, PageId page);

  /// Copies the page image into `out` (page_bytes() bytes). A page that
  /// was allocated but never written back reads as zeros in durable mode.
  Status ReadPage(SpaceId space, PageId page, char* out);

  /// Like ReadPage but tolerates a torn image: bytes are returned with
  /// *torn = true instead of an error. The WAL scan uses this to salvage
  /// the valid prefix of a torn log tail; recovery uses it to detect torn
  /// data pages and fall back to full-log replay.
  Status ReadPageAllowTorn(SpaceId space, PageId page, char* out, bool* torn);

  /// Copies `in` (page_bytes() bytes) into the page image. In durable mode
  /// the write is buffered by the media until the next Sync().
  Status WritePage(SpaceId space, PageId page, const char* in);

  /// Makes all buffered media writes durable (no-op in volatile mode),
  /// accruing the device's fsync service time.
  Status Sync();

  /// Number of pages ever allocated in `space` (including freed ones).
  uint64_t NumPages(SpaceId space) const;

  /// Live (allocated minus freed) pages in `space`.
  uint64_t LivePages(SpaceId space) const;

  /// Bytes across all spaces — the paper's Eq. (1) "database size includes
  /// the size of the temporary files used for intermediate results".
  uint64_t TotalDatabaseBytes() const;

  /// Simulated I/O statistics.
  uint64_t read_count() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t write_count() const { return writes_.load(std::memory_order_relaxed); }
  uint64_t sync_count() const { return syncs_.load(std::memory_order_relaxed); }
  double io_micros() const { return io_micros_.load(std::memory_order_relaxed); }
  void ResetIoStats();

  os::VirtualDisk* device() { return device_.get(); }
  os::StableStorage* media() { return media_.get(); }

 private:
  struct Space {
    std::vector<std::unique_ptr<char[]>> pages;  // volatile mode images
    std::vector<PageId> free_list;               // volatile mode only
    uint64_t count = 0;                          // pages ever allocated
    uint64_t live = 0;
  };

  // Maps a (space, page) to a position on the single virtual device:
  // spaces occupy disjoint fixed regions.
  uint64_t DevicePage(SpaceId space, PageId page) const;

  void AccrueDevice(double us);

  const uint32_t page_bytes_;
  std::unique_ptr<os::VirtualDisk> device_;
  os::VirtualClock* clock_;
  std::shared_ptr<os::StableStorage> media_;

  mutable RankedMutex<LockRank::kDiskManager> mu_;
  Space spaces_[kNumSpaces] GUARDED_BY(mu_);

  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<double> io_micros_{0.0};
};

}  // namespace hdb::storage

#endif  // HDB_STORAGE_DISK_MANAGER_H_
