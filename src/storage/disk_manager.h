#ifndef HDB_STORAGE_DISK_MANAGER_H_
#define HDB_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "os/virtual_clock.h"
#include "os/virtual_disk.h"
#include "storage/page.h"

namespace hdb::storage {

/// Page store for the database's spaces (main / temp / log).
///
/// Page images live in memory (databases here are "ordinary OS files" in
/// spirit; in-memory backing keeps experiments hermetic), while I/O *cost*
/// is simulated through an optional os::VirtualDisk: each read/write asks
/// the device for a service time, accumulates it, and advances the virtual
/// clock. This gives the DTT cost model something real to predict (Eq. (3))
/// without depending on host hardware.
class DiskManager {
 public:
  /// `device` may be null, in which case I/O is free (unit tests).
  /// `clock` may be null; otherwise simulated service time advances it.
  DiskManager(uint32_t page_bytes, std::unique_ptr<os::VirtualDisk> device,
              os::VirtualClock* clock);

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  uint32_t page_bytes() const { return page_bytes_; }

  /// Allocates a zeroed page in `space` and returns its id (reuses
  /// deallocated pages first).
  PageId AllocatePage(SpaceId space);

  /// Returns `page` to the space's free list.
  void DeallocatePage(SpaceId space, PageId page);

  /// Copies the page image into `out` (page_bytes() bytes).
  Status ReadPage(SpaceId space, PageId page, char* out);

  /// Copies `in` (page_bytes() bytes) into the page image.
  Status WritePage(SpaceId space, PageId page, const char* in);

  /// Number of pages ever allocated in `space` (including freed ones).
  uint64_t NumPages(SpaceId space) const;

  /// Live (allocated minus freed) pages in `space`.
  uint64_t LivePages(SpaceId space) const;

  /// Bytes across all spaces — the paper's Eq. (1) "database size includes
  /// the size of the temporary files used for intermediate results".
  uint64_t TotalDatabaseBytes() const;

  /// Simulated I/O statistics.
  uint64_t read_count() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t write_count() const { return writes_.load(std::memory_order_relaxed); }
  double io_micros() const { return io_micros_.load(std::memory_order_relaxed); }
  void ResetIoStats();

  os::VirtualDisk* device() { return device_.get(); }

 private:
  struct Space {
    std::vector<std::unique_ptr<char[]>> pages;
    std::vector<PageId> free_list;
    uint64_t live = 0;
  };

  // Maps a (space, page) to a position on the single virtual device:
  // spaces occupy disjoint fixed regions.
  uint64_t DevicePage(SpaceId space, PageId page) const;

  const uint32_t page_bytes_;
  std::unique_ptr<os::VirtualDisk> device_;
  os::VirtualClock* clock_;

  mutable std::mutex mu_;
  Space spaces_[kNumSpaces];

  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<double> io_micros_{0.0};
};

}  // namespace hdb::storage

#endif  // HDB_STORAGE_DISK_MANAGER_H_
