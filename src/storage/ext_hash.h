#ifndef HDB_STORAGE_EXT_HASH_H_
#define HDB_STORAGE_EXT_HASH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace hdb::storage {

/// Disk-based extendible hash multimap from uint64 keys to uint64 values
/// (paper §2.1): SQL Anywhere stores long-term locks in such a table so
/// that no lock-table size or lock-escalation threshold ever needs tuning.
/// Bucket pages live in the buffer pool's temporary space and split by
/// directory doubling; duplicate-heavy keys chain into overflow pages, so
/// capacity is bounded only by disk.
class ExtHashTable {
 public:
  explicit ExtHashTable(BufferPool* pool, uint32_t owner_oid = 0);
  ~ExtHashTable();

  ExtHashTable(const ExtHashTable&) = delete;
  ExtHashTable& operator=(const ExtHashTable&) = delete;

  /// Inserts (key, value); duplicates (same key, same value) are allowed.
  Status Insert(uint64_t key, uint64_t value);

  /// Removes one occurrence of (key, value); returns NotFound if absent.
  Status Remove(uint64_t key, uint64_t value);

  /// Invokes `fn` for every value stored under `key`; stops early when fn
  /// returns false.
  Status ForEach(uint64_t key,
                 const std::function<bool(uint64_t)>& fn) const;

  /// All values under `key`.
  Result<std::vector<uint64_t>> Lookup(uint64_t key) const;

  uint64_t size() const { return size_; }
  uint32_t global_depth() const { return global_depth_; }
  size_t bucket_pages() const;

 private:
  struct BucketHeader {
    uint32_t local_depth;
    uint32_t count;
    PageId overflow;  // kInvalidPageId if none
  };
  struct Entry {
    uint64_t key;
    uint64_t value;
  };

  uint32_t EntriesPerPage() const;
  size_t DirIndex(uint64_t key) const;
  Status SplitBucket(size_t dir_index);
  Result<PageId> NewBucketPage(uint32_t local_depth);

  BufferPool* pool_;
  uint32_t owner_oid_;
  uint32_t global_depth_ = 0;
  std::vector<PageId> directory_;  // 2^global_depth entries
  uint64_t size_ = 0;
};

}  // namespace hdb::storage

#endif  // HDB_STORAGE_EXT_HASH_H_
