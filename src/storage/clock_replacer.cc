#include "storage/clock_replacer.h"

#include <algorithm>

namespace hdb::storage {

ClockReplacer::ClockReplacer(size_t num_frames, uint32_t num_segments,
                             uint32_t max_score)
    : num_segments_(num_segments == 0 ? 8 : num_segments),
      max_score_(max_score),
      entries_(num_frames) {}

void ClockReplacer::Resize(size_t n) {
  entries_.resize(n);
  if (hand_ >= entries_.size()) hand_ = 0;
}

uint64_t ClockReplacer::SegmentWidth() const {
  // One segment spans roughly one reference per frame, so the full
  // reference-time window (num_segments_ segments) covers several sweeps
  // of the pool. A shorter window would let a single table scan age the
  // whole hot set to zero — exactly what the paper's segmented design
  // avoids.
  return std::max<uint64_t>(num_segments_, entries_.size());
}

void ClockReplacer::RecordReference(uint32_t frame_id) {
  if (frame_id >= entries_.size()) return;
  ++tick_;
  Entry& e = entries_[frame_id];
  const uint64_t width = SegmentWidth();
  if (!e.tracked) {
    e.tracked = true;
    e.score = 1;
  } else if (tick_ / width != e.last_ref_tick / width) {
    // Re-reference from a different segment of the reference-time series:
    // genuine re-use, not the adjacent references of a scan.
    e.score = std::min(DecayedScore(e) + 1, max_score_);
  }
  e.last_ref_tick = tick_;
}

void ClockReplacer::SetEvictable(uint32_t frame_id, bool evictable) {
  if (frame_id >= entries_.size()) return;
  entries_[frame_id].evictable = evictable;
}

void ClockReplacer::Remove(uint32_t frame_id) {
  if (frame_id >= entries_.size()) return;
  entries_[frame_id] = Entry{};
}

uint32_t ClockReplacer::DecayedScore(const Entry& e) const {
  const uint64_t width = SegmentWidth();
  const uint64_t age = tick_ >= e.last_ref_tick ? tick_ - e.last_ref_tick : 0;
  // One halving per full window (num_segments_ segments) of non-reference.
  const uint64_t halvings = age / (width * num_segments_);
  if (halvings >= 32) return 0;
  return e.score >> halvings;
}

std::optional<uint32_t> ClockReplacer::Victim() {
  if (entries_.empty()) return std::nullopt;
  const size_t n = entries_.size();
  // "Pages with lower scores are candidates for replacement": one sweep
  // from the hand, evicting the first zero-score frame immediately (the
  // common case once cold pages have decayed) and otherwise the
  // minimum-score frame. Selecting the minimum — rather than decrementing
  // scores until something reaches zero — keeps hot pages hot through
  // eviction bursts like table scans; decay alone ages them (paper §2.2).
  int best = -1;
  uint32_t best_eff = 0;
  for (size_t step = 0; step < n; ++step) {
    const size_t current = (hand_ + step) % n;
    Entry& e = entries_[current];
    if (!e.tracked || !e.evictable) continue;
    const uint32_t eff = DecayedScore(e);
    if (eff == 0) {
      e = Entry{};
      hand_ = (current + 1) % n;
      return static_cast<uint32_t>(current);
    }
    if (best < 0 || eff < best_eff) {
      best = static_cast<int>(current);
      best_eff = eff;
    }
  }
  if (best < 0) return std::nullopt;
  entries_[best] = Entry{};
  hand_ = (static_cast<size_t>(best) + 1) % n;
  return static_cast<uint32_t>(best);
}

uint32_t ClockReplacer::EffectiveScore(uint32_t frame_id) const {
  if (frame_id >= entries_.size() || !entries_[frame_id].tracked) return 0;
  return DecayedScore(entries_[frame_id]);
}

}  // namespace hdb::storage
