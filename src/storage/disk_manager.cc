#include "storage/disk_manager.h"

#include <algorithm>
#include <cstring>

namespace hdb::storage {

namespace {
// Each space owns a fixed region of the virtual device; 2^26 pages (256 GiB
// of 4K pages) per space is far beyond any experiment here.
constexpr uint64_t kSpaceRegionPages = 1ull << 26;

void AtomicAddDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}
}  // namespace

DiskManager::DiskManager(uint32_t page_bytes,
                         std::unique_ptr<os::VirtualDisk> device,
                         os::VirtualClock* clock,
                         std::shared_ptr<os::StableStorage> media)
    : page_bytes_(page_bytes),
      device_(std::move(device)),
      clock_(clock),
      media_(std::move(media)) {
  if (media_ == nullptr) return;
  // Reopen over durable media: page counts resume past the highest page
  // that ever reached the platter. Free lists are not persisted — pages
  // freed before a crash leak, which recovery tolerates (and a checkpoint
  // rewrite would reclaim in a real system).
  for (int i = 0; i < kNumSpaces; ++i) {
    const auto space = static_cast<SpaceId>(i);
    const uint64_t begin = DevicePage(space, 0);
    if (space == SpaceId::kTemp) {
      // Temp contents have no meaning across a restart.
      media_->DropRange(begin, begin + kSpaceRegionPages);
      continue;
    }
    const int64_t max_page =
        media_->MaxDurablePage(begin, begin + kSpaceRegionPages);
    if (max_page >= 0) {
      Space& s = spaces_[i];
      s.count = static_cast<uint64_t>(max_page) - begin + 1;
      s.live = s.count;
    }
  }
}

uint64_t DiskManager::DevicePage(SpaceId space, PageId page) const {
  return static_cast<uint64_t>(space) * kSpaceRegionPages + page;
}

void DiskManager::AccrueDevice(double us) {
  AtomicAddDouble(io_micros_, us);
  if (clock_ != nullptr) clock_->Advance(static_cast<int64_t>(us));
}

PageId DiskManager::AllocatePage(SpaceId space) {
  LockGuard lock(mu_);
  Space& s = spaces_[static_cast<int>(space)];
  s.live++;
  if (media_ == nullptr && !s.free_list.empty()) {
    const PageId id = s.free_list.back();
    s.free_list.pop_back();
    std::memset(s.pages[id].get(), 0, page_bytes_);
    return id;
  }
  const auto id = static_cast<PageId>(s.count);
  s.count++;
  if (media_ == nullptr) {
    s.pages.push_back(std::make_unique<char[]>(page_bytes_));
    std::memset(s.pages.back().get(), 0, page_bytes_);
  }
  return id;
}

void DiskManager::DeallocatePage(SpaceId space, PageId page) {
  LockGuard lock(mu_);
  Space& s = spaces_[static_cast<int>(space)];
  if (page < s.count) {
    if (media_ == nullptr) s.free_list.push_back(page);
    if (s.live > 0) s.live--;
  }
}

void DiskManager::EnsureAllocated(SpaceId space, PageId page) {
  LockGuard lock(mu_);
  Space& s = spaces_[static_cast<int>(space)];
  while (s.count <= page) {
    s.count++;
    s.live++;
    if (media_ == nullptr) {
      s.pages.push_back(std::make_unique<char[]>(page_bytes_));
      std::memset(s.pages.back().get(), 0, page_bytes_);
    }
  }
}

Status DiskManager::ReadPage(SpaceId space, PageId page, char* out) {
  return ReadPageAllowTorn(space, page, out, nullptr);
}

Status DiskManager::ReadPageAllowTorn(SpaceId space, PageId page, char* out,
                                      bool* torn) {
  if (torn != nullptr) *torn = false;
  {
    LockGuard lock(mu_);
    Space& s = spaces_[static_cast<int>(space)];
    if (page >= s.count) {
      return Status::IOError("read of unallocated page");
    }
    if (media_ == nullptr) {
      std::memcpy(out, s.pages[page].get(), page_bytes_);
    }
  }
  if (media_ != nullptr) {
    const Status st = media_->Read(DevicePage(space, page), out, torn);
    if (st.code() == StatusCode::kNotFound) {
      // Allocated but never written back before the last crash: logically
      // all zeros (recovery redo rebuilds any contents from the log).
      std::memset(out, 0, page_bytes_);
    } else if (!st.ok()) {
      return st;
    }
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  if (device_ != nullptr) {
    AccrueDevice(device_->ReadMicros(DevicePage(space, page)));
  }
  return Status::OK();
}

Status DiskManager::WritePage(SpaceId space, PageId page, const char* in) {
  {
    LockGuard lock(mu_);
    Space& s = spaces_[static_cast<int>(space)];
    if (page >= s.count) {
      return Status::IOError("write of unallocated page");
    }
    if (media_ == nullptr) {
      std::memcpy(s.pages[page].get(), in, page_bytes_);
    }
  }
  if (media_ != nullptr) {
    HDB_RETURN_IF_ERROR(media_->Write(DevicePage(space, page), in));
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  if (device_ != nullptr) {
    AccrueDevice(device_->WriteMicros(DevicePage(space, page)));
  }
  return Status::OK();
}

Status DiskManager::Sync() {
  if (media_ == nullptr) return Status::OK();
  const uint64_t pending = media_->pending_page_count();
  const Status st = media_->Sync();
  syncs_.fetch_add(1, std::memory_order_relaxed);
  if (device_ != nullptr) {
    AccrueDevice(device_->SyncMicros(pending));
  }
  return st;
}

uint64_t DiskManager::NumPages(SpaceId space) const {
  LockGuard lock(mu_);
  return spaces_[static_cast<int>(space)].count;
}

uint64_t DiskManager::LivePages(SpaceId space) const {
  LockGuard lock(mu_);
  return spaces_[static_cast<int>(space)].live;
}

uint64_t DiskManager::TotalDatabaseBytes() const {
  LockGuard lock(mu_);
  uint64_t pages = 0;
  for (const auto& s : spaces_) pages += s.count;
  return pages * page_bytes_;
}

void DiskManager::ResetIoStats() {
  reads_.store(0, std::memory_order_relaxed);
  writes_.store(0, std::memory_order_relaxed);
  syncs_.store(0, std::memory_order_relaxed);
  io_micros_.store(0.0, std::memory_order_relaxed);
}

}  // namespace hdb::storage
