#include "storage/disk_manager.h"

#include <cstring>

namespace hdb::storage {

namespace {
// Each space owns a fixed region of the virtual device; 2^26 pages (256 GiB
// of 4K pages) per space is far beyond any experiment here.
constexpr uint64_t kSpaceRegionPages = 1ull << 26;

void AtomicAddDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}
}  // namespace

DiskManager::DiskManager(uint32_t page_bytes,
                         std::unique_ptr<os::VirtualDisk> device,
                         os::VirtualClock* clock)
    : page_bytes_(page_bytes), device_(std::move(device)), clock_(clock) {}

uint64_t DiskManager::DevicePage(SpaceId space, PageId page) const {
  return static_cast<uint64_t>(space) * kSpaceRegionPages + page;
}

PageId DiskManager::AllocatePage(SpaceId space) {
  std::lock_guard<std::mutex> lock(mu_);
  Space& s = spaces_[static_cast<int>(space)];
  s.live++;
  if (!s.free_list.empty()) {
    const PageId id = s.free_list.back();
    s.free_list.pop_back();
    std::memset(s.pages[id].get(), 0, page_bytes_);
    return id;
  }
  const auto id = static_cast<PageId>(s.pages.size());
  s.pages.push_back(std::make_unique<char[]>(page_bytes_));
  std::memset(s.pages.back().get(), 0, page_bytes_);
  return id;
}

void DiskManager::DeallocatePage(SpaceId space, PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  Space& s = spaces_[static_cast<int>(space)];
  if (page < s.pages.size()) {
    s.free_list.push_back(page);
    if (s.live > 0) s.live--;
  }
}

Status DiskManager::ReadPage(SpaceId space, PageId page, char* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Space& s = spaces_[static_cast<int>(space)];
    if (page >= s.pages.size()) {
      return Status::IOError("read of unallocated page");
    }
    std::memcpy(out, s.pages[page].get(), page_bytes_);
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  if (device_ != nullptr) {
    const double us = device_->ReadMicros(DevicePage(space, page));
    AtomicAddDouble(io_micros_, us);
    if (clock_ != nullptr) clock_->Advance(static_cast<int64_t>(us));
  }
  return Status::OK();
}

Status DiskManager::WritePage(SpaceId space, PageId page, const char* in) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Space& s = spaces_[static_cast<int>(space)];
    if (page >= s.pages.size()) {
      return Status::IOError("write of unallocated page");
    }
    std::memcpy(s.pages[page].get(), in, page_bytes_);
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  if (device_ != nullptr) {
    const double us = device_->WriteMicros(DevicePage(space, page));
    AtomicAddDouble(io_micros_, us);
    if (clock_ != nullptr) clock_->Advance(static_cast<int64_t>(us));
  }
  return Status::OK();
}

uint64_t DiskManager::NumPages(SpaceId space) const {
  std::lock_guard<std::mutex> lock(mu_);
  return spaces_[static_cast<int>(space)].pages.size();
}

uint64_t DiskManager::LivePages(SpaceId space) const {
  std::lock_guard<std::mutex> lock(mu_);
  return spaces_[static_cast<int>(space)].live;
}

uint64_t DiskManager::TotalDatabaseBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t pages = 0;
  for (const auto& s : spaces_) pages += s.pages.size();
  return pages * page_bytes_;
}

void DiskManager::ResetIoStats() {
  reads_.store(0, std::memory_order_relaxed);
  writes_.store(0, std::memory_order_relaxed);
  io_micros_.store(0.0, std::memory_order_relaxed);
}

}  // namespace hdb::storage
