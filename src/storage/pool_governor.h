#ifndef HDB_STORAGE_POOL_GOVERNOR_H_
#define HDB_STORAGE_POOL_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "os/memory_env.h"
#include "os/virtual_clock.h"
#include "storage/buffer_pool.h"

#include "common/lock_rank.h"

namespace hdb::storage {

/// Configuration of the buffer-pool feedback controller (paper §2).
struct PoolGovernorOptions {
  /// Hard lower / upper bounds, fixed for the server's lifetime; defaults
  /// can be overridden at server start (paper §2).
  uint64_t min_bytes = 2ull << 20;
  uint64_t max_bytes = 1ull << 30;

  /// Real memory kept in reserve for the OS (paper: 5 MB).
  uint64_t os_reserve_bytes = 5ull << 20;

  /// Dead zone: if |target - current| is below this, do nothing (paper:
  /// 64 KB).
  uint64_t dead_zone_bytes = 64ull << 10;

  /// Damping factor d of Eq. (2): resize to d*ideal + (1-d)*current.
  double damping = 0.9;

  /// Nominal sampling period (paper: one minute).
  int64_t poll_period_micros = 60ll * 1000 * 1000;
  /// Accelerated period used at startup and after significant database
  /// growth (paper: 20 seconds).
  int64_t fast_poll_period_micros = 20ll * 1000 * 1000;
  /// Number of initial polls taken at the fast period.
  int startup_fast_polls = 5;
  /// Database growth (relative to the size seen at the previous poll) that
  /// re-arms fast polling.
  double significant_growth_fraction = 0.10;

  /// Windows CE mode (paper §2 final paragraph): the OS cannot report a
  /// working-set size, so the reference input is the current pool size;
  /// the pool grows only when device free memory has increased, but may
  /// always shrink when other applications allocate memory.
  bool ce_mode = false;

  /// §6 future-work extension: anti-hysteresis guard. After a shrink, a
  /// re-grow within `hysteresis_polls` polls is capped to
  /// `hysteresis_growth_cap` of the shrink amount, damping grow/shrink
  /// oscillation under a cyclic external load. 0 disables.
  int hysteresis_polls = 0;
  double hysteresis_growth_cap = 0.5;

  /// Fixed server overhead (code, stacks, ...) counted as part of the
  /// process allocation reported to the MemoryEnv.
  uint64_t fixed_overhead_bytes = 4ull << 20;

  /// Process name registered with the MemoryEnv.
  std::string process_name = "hdb-server";
};

/// One governor decision, recorded for tests/benches (Figure 1 traces).
struct PoolGovernorSample {
  int64_t at_micros = 0;
  uint64_t working_set = 0;
  uint64_t free_physical = 0;
  uint64_t misses_since_last = 0;
  uint64_t target_bytes = 0;   // clamped ideal size
  uint64_t new_size_bytes = 0; // after damping/dead-zone
  bool grew = false;
  bool shrank = false;
  bool growth_blocked_no_misses = false;
  bool in_dead_zone = false;
};

/// Feedback controller that sizes the buffer pool to fit overall system
/// requirements (paper §2, Figure 1).
///
/// ideal = working_set + free_physical - os_reserve         (non-CE)
/// soft upper bound = min(db_size + main_heap, max_bytes)    Eq. (1)
/// new  = damping*ideal + (1-damping)*current                Eq. (2)
/// growth requires buffer misses since the last poll; shrinking is always
/// permitted; changes inside the 64 KB dead zone are skipped.
///
/// The governor is polled explicitly (`MaybePoll`) against the virtual
/// clock; a background driver is a policy choice left to the embedding
/// application, exactly like the paper's one-minute OS poll.
///
/// Thread safety: any session thread may call Tick/MaybePoll while others
/// execute SQL; all controller state is guarded by an internal mutex (the
/// pool it resizes has its own latch, taken strictly after this one).
class PoolGovernor {
 public:
  PoolGovernor(BufferPool* pool, os::MemoryEnv* env, os::VirtualClock* clock,
               PoolGovernorOptions options = {});

  /// Polls if the sampling period has elapsed. Returns true if a poll ran.
  bool MaybePoll();

  /// Forces a poll now (tests).
  PoolGovernorSample PollNow();

  /// Bytes of connection-heap memory currently locked; counted into the
  /// Eq. (1) soft bound's "main heap size" term. Maintained by heaps.
  void AddMainHeapBytes(int64_t delta);

  /// Pool+overhead bytes the governor reports to the MemoryEnv as the
  /// server's memory demand.
  uint64_t ReportedAllocation() const;

  /// Wires the governor into the engine's telemetry (DESIGN.md §6): poll
  /// and resize counters into `registry`, one Decision per poll into
  /// `decisions`. Call before concurrent polling starts.
  void AttachTelemetry(obs::MetricsRegistry* registry,
                       obs::DecisionLog* decisions);

  const PoolGovernorOptions& options() const { return options_; }
  /// Snapshot of the decision trace (copied: concurrent polls may append).
  std::vector<PoolGovernorSample> history() const;
  int64_t next_poll_micros() const {
    return next_poll_micros_.load(std::memory_order_relaxed);
  }

 private:
  PoolGovernorSample PollNowLocked() REQUIRES(mu_);
  uint64_t SoftUpperBoundLocked() const REQUIRES(mu_);
  void PublishAllocation();

  BufferPool* pool_;
  os::MemoryEnv* env_;
  os::VirtualClock* clock_;
  PoolGovernorOptions options_;

  /// Guards the controller state below; never held while a session thread
  /// is inside the buffer pool other than the Resize/stat calls the poll
  /// itself makes.
  mutable RankedMutex<LockRank::kPoolGovernor> mu_;
  int polls_done_ GUARDED_BY(mu_) = 0;
  std::atomic<int64_t> next_poll_micros_{0};
  uint64_t last_db_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t last_free_physical_ GUARDED_BY(mu_) = 0;
  int fast_polls_remaining_ GUARDED_BY(mu_) = 0;
  std::atomic<int64_t> main_heap_bytes_{0};
  // Anti-hysteresis state.
  int polls_since_shrink_ GUARDED_BY(mu_) = 1 << 20;
  uint64_t last_shrink_amount_ GUARDED_BY(mu_) = 0;

  // Telemetry (optional; null when not attached).
  obs::Counter* polls_counter_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* grows_counter_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* shrinks_counter_ GUARDED_BY(mu_) = nullptr;
  obs::DecisionLog* decisions_ GUARDED_BY(mu_) = nullptr;

  std::vector<PoolGovernorSample> history_ GUARDED_BY(mu_);
};

}  // namespace hdb::storage

#endif  // HDB_STORAGE_POOL_GOVERNOR_H_
