#include "storage/heap.h"

namespace hdb::storage {

ConnectionHeap::ConnectionHeap(BufferPool* pool, uint32_t owner_oid)
    : pool_(pool), owner_oid_(owner_oid) {}

ConnectionHeap::~ConnectionHeap() {
  handles_.clear();  // unpin first
  for (const PageId id : pages_) {
    pool_->DiscardPage(SpacePageId{SpaceId::kTemp, id});
  }
}

Status ConnectionHeap::AddPage() {
  PageId id = kInvalidPageId;
  HDB_ASSIGN_OR_RETURN(
      PageHandle h,
      pool_->NewPage(SpaceId::kTemp, PageType::kHeap, owner_oid_, &id));
  h.MarkDirty();
  pages_.push_back(id);
  handles_.push_back(std::move(h));
  bump_offset_ = 0;
  return Status::OK();
}

Status ConnectionHeap::Lock() {
  if (locked_) return Status::OK();
  handles_.reserve(pages_.size());
  for (const PageId id : pages_) {
    HDB_ASSIGN_OR_RETURN(
        PageHandle h, pool_->FetchPage(SpacePageId{SpaceId::kTemp, id},
                                       PageType::kHeap, owner_oid_));
    handles_.push_back(std::move(h));
  }
  locked_ = true;
  // Frames may differ from the pre-unlock ones: cached raw pointers are
  // invalid; bump the swizzle epoch.
  ++epoch_;
  return Status::OK();
}

void ConnectionHeap::Unlock() {
  if (!locked_) return;
  // Heap contents must survive stealing: mark dirty so eviction swaps the
  // page to the temporary file rather than dropping it.
  for (PageHandle& h : handles_) h.MarkDirty();
  handles_.clear();
  locked_ = false;
}

Result<HeapPtr> ConnectionHeap::Allocate(uint32_t n) {
  if (!locked_) return Status::Internal("Allocate on unlocked heap");
  if (n == 0) n = 1;
  n = (n + 7u) & ~7u;
  const uint32_t capacity = pool_->page_bytes();
  if (n > capacity) {
    return Status::InvalidArgument("heap allocation larger than a page");
  }
  if (handles_.empty() || bump_offset_ + n > capacity) {
    HDB_RETURN_IF_ERROR(AddPage());
  }
  HeapPtr p;
  p.page_index = static_cast<uint32_t>(pages_.size() - 1);
  p.offset = bump_offset_;
  bump_offset_ += n;
  allocated_bytes_ += n;
  handles_.back().MarkDirty();
  return p;
}

void* ConnectionHeap::Resolve(HeapPtr p) {
  if (!locked_ || !p.valid() || p.page_index >= handles_.size()) {
    return nullptr;
  }
  return handles_[p.page_index].data() + p.offset;
}

void ConnectionHeap::Reset() {
  handles_.clear();
  for (const PageId id : pages_) {
    pool_->DiscardPage(SpacePageId{SpaceId::kTemp, id});
  }
  pages_.clear();
  bump_offset_ = 0;
  allocated_bytes_ = 0;
  locked_ = true;
  ++epoch_;
}

}  // namespace hdb::storage
